// Package yashme is a Go reproduction of "Yashme: Detecting Persistency
// Races" (Gorjiara, Xu, Demsky — ASPLOS 2022).
//
// A persistency race is a new class of crash-consistency bug: a post-crash
// execution reads from a non-atomic pre-crash store that was not persistency
// ordered before the read, so compiler optimizations (store tearing, store
// inventing, memset/memcpy substitution) can leave the value partially
// persistent. Yashme detects these races by simulating the Px86 persistency
// model, injecting crashes, and — crucially — checking races against every
// consistent prefix of the pre-crash execution, which expands the detection
// window far beyond the injected crash point.
//
// This package is the public facade. A workload is a Program: a Setup
// function allocating named persistent objects, pre-crash Workers issuing
// loads/stores/flushes/fences through a Thread, and a PostCrash recovery
// procedure whose loads are checked for races:
//
//	mk := func() yashme.Program {
//		var val yashme.Addr
//		return yashme.Program{
//			Name: "figure1",
//			Setup: func(h *yashme.Heap) {
//				val = h.AllocStruct("pmobj", yashme.Layout{{Name: "val", Size: 8}}).F("val")
//			},
//			Workers: []func(*yashme.Thread){func(t *yashme.Thread) {
//				t.Store64(val, 0x1234567812345678)
//				t.CLFlush(val)
//			}},
//			PostCrash: func(t *yashme.Thread) { t.Load64(val) },
//		}
//	}
//	res := yashme.Run(mk, yashme.Options{Mode: yashme.ModelCheck, Prefix: true})
//	for _, race := range res.Report.Races() {
//		fmt.Println(race)
//	}
//
// The ready-made reproductions of the paper's benchmarks live under
// internal/progs (RECIPE indexes, CCEH, FAST_FAIR), internal/pmdk,
// internal/memcachedpm and internal/redispm, and are runnable through
// cmd/yashme and cmd/yashme-tables.
package yashme

import (
	"yashme/internal/engine"
	"yashme/internal/pmm"
	"yashme/internal/report"
)

// Re-exported program-model types; see internal/pmm for documentation.
type (
	// Program describes one workload (setup, pre-crash workers, recovery).
	Program = pmm.Program
	// Thread is the operation surface workload functions receive.
	Thread = pmm.Thread
	// Heap allocates named persistent objects.
	Heap = pmm.Heap
	// Addr is a simulated persistent-memory byte address.
	Addr = pmm.Addr
	// Layout declares the fields of a persistent struct.
	Layout = pmm.Layout
	// FieldDef is one field of a Layout.
	FieldDef = pmm.FieldDef
	// Struct is a handle to an allocated struct instance.
	Struct = pmm.Struct
	// Array is a handle to an allocated struct array.
	Array = pmm.Array
)

// Re-exported engine configuration; see internal/engine.
type (
	// Options configures a detection run.
	Options = engine.Options
	// Result is a detection run's outcome.
	Result = engine.Result
	// PassResult is one analysis pass's report within a Result (see
	// Options.Analyses; blank-import yashme/internal/analysis/all to link
	// the built-in non-default passes).
	PassResult = engine.PassResult
	// Mode selects model checking or random execution.
	Mode = engine.Mode
	// PersistPolicy selects the persisted-image derivation per cache line.
	PersistPolicy = engine.PersistPolicy
)

// Modes of operation (paper §4).
const (
	// ModelCheck injects a crash before every flush/fence point.
	ModelCheck = engine.ModelCheck
	// RandomMode runs seeded random executions with random crash points.
	RandomMode = engine.RandomMode
)

// Persist policies for deriving the post-crash image.
const (
	PersistLatest  = engine.PersistLatest
	PersistMinimal = engine.PersistMinimal
	PersistRandom  = engine.PersistRandom
)

// Race is one deduplicated persistency-race report.
type Race = report.Race

// ReportSet is the deduplicated collection of race reports from a run.
type ReportSet = report.Set

// Run explores the program per the options and returns merged race reports.
// makeProg must return a fresh Program per call: the engine re-instantiates
// the workload for every crash scenario it explores. Scenarios run on a
// worker pool (Options.Workers, default GOMAXPROCS) with results merged
// deterministically — set Workers to 1 for fully sequential execution
// (identical results) if the program records observations through shared
// captured variables.
func Run(makeProg func() Program, opts Options) *Result {
	return engine.Run(makeProg, opts)
}

// RunOnce executes exactly one scenario: the workload runs to the given
// crash point (0 = completion), the image is derived under the persist
// policy, and recovery runs once. Useful for functional verification and
// for the paper's single-execution experiments.
func RunOnce(makeProg func() Program, opts Options, crashPoint int, policy PersistPolicy, seed int64) *Result {
	return engine.RunOne(makeProg, opts, crashPoint, policy, seed)
}

// CacheLineSize is the simulated cache-line size in bytes.
const CacheLineSize = pmm.CacheLineSize
