module yashme

go 1.22
