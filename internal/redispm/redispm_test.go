package redispm

import (
	"sort"
	"testing"

	"yashme/internal/engine"
	"yashme/internal/progs/progtest"
)

func TestNoHarmfulRaces(t *testing.T) {
	// Table 5 row "Redis": zero harmful races — everything Redis reads from
	// PM is checksum-validated, and its dictionary updates are fully
	// transactional.
	res := engine.Run(New(4, nil), engine.Options{Mode: engine.ModelCheck, Prefix: true, MaxCrashPoints: 60})
	if res.Report.Count() != 0 {
		t.Fatalf("harmful races in Redis:\n%s", res.Report)
	}
}

func TestBenignGuardedLogRaces(t *testing.T) {
	res := engine.Run(New(4, nil), engine.Options{Mode: engine.ModelCheck, Prefix: true, MaxCrashPoints: 60})
	var got []string
	for _, r := range res.Report.Benign() {
		got = append(got, r.Field)
	}
	sort.Strings(got)
	if len(got) != len(ExpectedBenign) {
		t.Fatalf("benign = %v, want %v", got, ExpectedBenign)
	}
	for i := range got {
		if got[i] != ExpectedBenign[i] {
			t.Fatalf("benign = %v, want %v", got, ExpectedBenign)
		}
	}
}

func TestFunctionalFullRun(t *testing.T) {
	var stats Stats
	progtest.RunFull(t, New(6, &stats))
	if stats.Found != 6 || stats.Missing != 0 || stats.Wrong != 0 {
		t.Fatalf("full-run stats = %+v, want 6/0/0", stats)
	}
}

// Across all crash points, recovery never serves a wrong value (rollback
// keeps the dictionary transactionally consistent).
func TestNoWrongValuesAtAnyCrashPoint(t *testing.T) {
	var stats Stats
	// Workers: 1 — the program writes the shared stats.
	engine.Run(New(3, &stats), engine.Options{Mode: engine.ModelCheck, Prefix: true, MaxCrashPoints: 60, Workers: 1})
	if stats.Wrong != 0 {
		t.Fatalf("recovery observed %d wrong values", stats.Wrong)
	}
}

func TestSetUpdateGet(t *testing.T) {
	var stats Stats
	mk := New(3, &stats)
	progtest.RunFull(t, mk)
	if stats.Found != 3 {
		t.Fatalf("stats = %+v", stats)
	}
}

func TestSingleRandomExecutionFindsNothing(t *testing.T) {
	// The Table 5 configuration: one random execution, prefix on.
	res := engine.Run(New(4, nil), engine.Options{Mode: engine.RandomMode, Prefix: true, Seed: 5, Executions: 1})
	if res.Report.Count() != 0 {
		t.Fatalf("single random execution found harmful races:\n%s", res.Report)
	}
}

// The client/server driver keeps the Redis guarantees: zero harmful races
// and transactional consistency at every crash point.
func TestClientServerNoHarmfulRaces(t *testing.T) {
	res := engine.Run(NewClientServer(3, nil), engine.Options{Mode: engine.ModelCheck, Prefix: true, MaxCrashPoints: 40})
	if res.Report.Count() != 0 {
		t.Fatalf("client/server Redis raced:\n%s", res.Report)
	}
}

func TestClientServerFunctional(t *testing.T) {
	var stats Stats
	progtest.RunFull(t, NewClientServer(5, &stats))
	if stats.Found != 5 || stats.Missing != 0 || stats.Wrong != 0 {
		t.Fatalf("client/server full run: %+v", stats)
	}
}

func TestClientServerNoWrongValues(t *testing.T) {
	var stats Stats
	// Workers: 1 — the program writes the shared stats.
	engine.Run(NewClientServer(3, &stats), engine.Options{Mode: engine.ModelCheck, Prefix: true, MaxCrashPoints: 40, Workers: 1})
	if stats.Wrong != 0 {
		t.Fatalf("client/server recovery observed %d wrong values", stats.Wrong)
	}
}
