package redispm

import "yashme/internal/workload"

// The paper's Redis evaluation: part of the Table 4 random-mode sweep
// (0 races), a Table 5 row (seed 1, 0 prefix / 0 baseline), and a §7.5
// benign-race program (crash points capped at 60 in that run).
func init() {
	workload.Register(workload.Spec{
		Name:              "Redis",
		Order:             11,
		Make:              New(4, nil),
		Table5Seed:        1,
		BenignCrashPoints: 60,
		Tags:              []string{workload.TagTable4, workload.TagTable5, workload.TagBenign, workload.TagFramework},
	})
}
