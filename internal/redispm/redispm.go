// Package redispm reproduces the persistent-memory port of Redis
// (pmem/redis) the paper evaluates. Redis stores its dictionary through
// PMDK's libpmemobj transaction API and validates everything it reads from
// persistent memory against checksums before use, which is why Yashme's
// single-execution run reports zero harmful races for it (Table 5, row
// "Redis") — the races it does observe are the benign checksum-guarded kind
// (§7.5). The paper notes most PMDK pool races "could be revealed by Redis
// as well"; they deduplicate into the PMDK row of Table 4.
package redispm

import (
	"yashme/internal/pmdk"
	"yashme/internal/pmm"
)

// DictSize is the (downsized) number of dictionary slots.
const DictSize = 16

// ExpectedBenign are the checksum-guarded benign races Redis exposes: the
// ulog reads performed by its guarded pool-open path.
var ExpectedBenign = []string{
	"ulog.checksum",
	"ulog.entry_ptr",
	"ulog_entry.offset",
	"ulog_entry.value",
}

// Server is a miniature pmem-Redis: a dictionary of key/value slots whose
// mutations run through PMDK transactions.
type Server struct {
	pool *pmdk.Pool
	dict pmm.Array // "dictEntry" {key, value, used}
}

// NewServer allocates the dictionary during Setup.
func NewServer(p *pmdk.Pool) *Server {
	return &Server{
		pool: p,
		dict: p.Heap().AllocArray("dictEntry", pmm.Layout{
			{Name: "key", Size: 8}, {Name: "value", Size: 8}, {Name: "used", Size: 8},
		}, DictSize),
	}
}

func slotOf(key uint64) int { return int((key * 0x9E3779B97F4A7C15) % DictSize) }

// Set inserts or updates a key inside one PMDK transaction.
func (s *Server) Set(t *pmm.Thread, key, value uint64) bool {
	for probe := 0; probe < DictSize; probe++ {
		e := s.dict.At((slotOf(key) + probe) % DictSize)
		used := t.Load64(e.F("used"))
		if used == 1 && t.Load64(e.F("key")) != key {
			continue
		}
		tx := s.pool.TxBegin(t)
		tx.Set(e.F("key"), key)
		tx.Set(e.F("value"), value)
		tx.Set(e.F("used"), 1)
		tx.Commit()
		return true
	}
	return false
}

// Get looks a key up.
func (s *Server) Get(t *pmm.Thread, key uint64) (uint64, bool) {
	for probe := 0; probe < DictSize; probe++ {
		e := s.dict.At((slotOf(key) + probe) % DictSize)
		if t.Load64(e.F("used")) != 1 {
			return 0, false
		}
		if t.Load64(e.F("key")) == key {
			return t.Load64(e.F("value")), true
		}
	}
	return 0, false
}

// Restart is the post-crash open path: the guarded PMDK recovery (all log
// reads under the checksum guard) followed by dictionary readback.
func (s *Server) Restart(t *pmm.Thread) (rolledBack int, valid bool) {
	return s.pool.RecoverGuarded(t)
}

// Stats captures what recovery observed.
type Stats struct {
	Found      int
	Missing    int
	Wrong      int
	RolledBack int
}

// ValueFor is the deterministic value the driver stores for a key.
func ValueFor(key uint64) uint64 { return key*13 + 5 }

// New returns the benchmark driver: a client thread issues SET commands;
// the restart path recovers the pool and issues GETs.
func New(numKeys int, stats *Stats) func() pmm.Program {
	return func() pmm.Program {
		var srv *Server
		return pmm.Program{
			Name: "Redis",
			Setup: func(h *pmm.Heap) {
				srv = NewServer(pmdk.NewPool(h))
			},
			Workers: []func(*pmm.Thread){func(t *pmm.Thread) {
				for k := uint64(1); k <= uint64(numKeys); k++ {
					srv.Set(t, k, ValueFor(k))
				}
			}},
			PostCrash: func(t *pmm.Thread) {
				rb, _ := srv.Restart(t)
				if stats != nil {
					stats.RolledBack += rb
				}
				for k := uint64(1); k <= uint64(numKeys); k++ {
					v, ok := srv.Get(t, k)
					if stats == nil {
						continue
					}
					switch {
					case !ok:
						stats.Missing++
					case v != ValueFor(k):
						stats.Wrong++
					default:
						stats.Found++
					}
				}
			},
		}
	}
}

// redisCommand is one client request in the volatile command queue.
type redisCommand struct {
	op  int // 0 = SET, 1 = QUIT
	key uint64
	val uint64
}

// NewClientServer returns the paper's client/server shape for Redis (§7.1:
// "We developed our own client to modify the database server using
// insertion and lookup operations"): a client thread issues SET commands
// through a volatile queue (the socket stand-in) and the server thread
// applies them transactionally. The restart path is the guarded pool open
// plus GET readback, exactly as in the sequential driver.
func NewClientServer(numKeys int, stats *Stats) func() pmm.Program {
	return func() pmm.Program {
		var srv *Server
		var queue []redisCommand
		mu := make(chan struct{}, 1)
		mu <- struct{}{}
		push := func(c redisCommand) {
			<-mu
			queue = append(queue, c)
			mu <- struct{}{}
		}
		pop := func() (redisCommand, bool) {
			<-mu
			defer func() { mu <- struct{}{} }()
			if len(queue) == 0 {
				return redisCommand{}, false
			}
			c := queue[0]
			queue = queue[1:]
			return c, true
		}
		return pmm.Program{
			Name: "Redis",
			Setup: func(h *pmm.Heap) {
				srv = NewServer(pmdk.NewPool(h))
			},
			Workers: []func(*pmm.Thread){
				// Server event loop.
				func(t *pmm.Thread) {
					for {
						c, ok := pop()
						if !ok {
							t.Yield()
							continue
						}
						if c.op == 1 {
							return
						}
						srv.Set(t, c.key, c.val)
					}
				},
				// Client.
				func(t *pmm.Thread) {
					for k := uint64(1); k <= uint64(numKeys); k++ {
						push(redisCommand{op: 0, key: k, val: ValueFor(k)})
						t.Yield()
					}
					push(redisCommand{op: 1})
				},
			},
			PostCrash: func(t *pmm.Thread) {
				rb, _ := srv.Restart(t)
				if stats != nil {
					stats.RolledBack += rb
				}
				for k := uint64(1); k <= uint64(numKeys); k++ {
					v, ok := srv.Get(t, k)
					if stats == nil {
						continue
					}
					switch {
					case !ok:
						stats.Missing++
					case v != ValueFor(k):
						stats.Wrong++
					default:
						stats.Found++
					}
				}
			},
		}
	}
}
