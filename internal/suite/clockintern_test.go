package suite

import (
	"bytes"
	"fmt"
	"testing"

	"yashme/internal/engine"
)

// TestClockInternMatchesOwned: the interned clock arena with the epoch fast
// path and the owned one-clock-per-record escape hatch produce identical
// canonical JSON — races, windows, workload stats — across every fast-path
// combination the engine offers. Only the clock-arena cost counters may
// differ: the owned mode interns one snapshot per commit and never takes
// the epoch path, which is exactly what the counters exist to show.
func TestClockInternMatchesOwned(t *testing.T) {
	clocks := func(s *engine.Stats) {
		s.ClockInterned, s.EpochHits, s.EpochMisses = 0, 0, 0
	}
	canon := func(r *Result) []byte {
		c := r.Canonical()
		for i := range c.Benchmarks {
			for j := range c.Benchmarks[i].Runs {
				clocks(&c.Benchmarks[i].Runs[j].Stats)
			}
		}
		data, err := c.JSON()
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	for _, ck := range []engine.CheckpointMode{engine.CheckpointOn, engine.CheckpointOff} {
		for _, dr := range []engine.DirectRunMode{engine.DirectRunOn, engine.DirectRunOff} {
			for _, dd := range []engine.DedupMode{engine.DedupOn, engine.DedupOff} {
				for _, workers := range []int{1, 4} {
					name := fmt.Sprintf("ck=%d/dr=%d/dd=%d/w=%d", ck, dr, dd, workers)
					cfg := Config{
						Names:      []string{"CCEH", "P-ART"},
						Variants:   []string{VariantRaces},
						Checkpoint: ck,
						DirectRun:  dr,
						Dedup:      dd,
						Workers:    workers,
					}
					interned := Run(cfg)

					owned := cfg
					owned.ClockIntern = engine.ClockInternOff
					ownedRes := Run(owned)

					if ij, oj := canon(interned), canon(ownedRes); !bytes.Equal(ij, oj) {
						t.Fatalf("%s: interned != owned canonical JSON:\n%s\nvs\n%s", name, ij, oj)
					}
					if h := interned.TotalStats().EpochHits; h == 0 {
						t.Errorf("%s: interned run took the epoch fast path 0 times", name)
					}
					if st := ownedRes.TotalStats(); st.EpochHits != 0 || st.EpochMisses != 0 {
						t.Errorf("%s: owned run used the epoch fast path: %+v", name, st)
					}
				}
			}
		}
	}
}
