// Package suite runs fleets of registered workloads (internal/workload)
// and produces one machine-readable Result. It is the orchestration layer
// the paper's evaluation tables are generated from — but unlike the old
// per-table driver loops it runs benchmarks concurrently under a shared
// worker budget, supports deterministic sharding across processes or CI
// jobs, and emits every race, stat and per-benchmark runtime exactly once;
// internal/tables only renders what a Result already holds.
//
// Three invariants make the layer safe to parallelize and shard:
//
//   - determinism: every run of a benchmark is an engine.Run, whose Result
//     is byte-identical for every worker count, so a suite Result —
//     wall-clock fields aside, which Canonical zeroes — does not depend on
//     whether benchmarks ran sequentially or concurrently;
//   - budget: all engine runs of a suite share one engine.Budget, so
//     suite-level × scenario-level parallelism keeps the total in-flight
//     simulations at Config.Workers (default GOMAXPROCS) instead of
//     multiplying;
//   - sharding: a spec's shard is a pure function of its name, so shard
//     i/n runs a fixed subset and the union of all n shards' Canonical
//     results is byte-identical to an unsharded run (Merge reassembles
//     paper order).
package suite

import (
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"yashme/internal/engine"
	"yashme/internal/report"
	"yashme/internal/workload"

	// Importing suite links every built-in benchmark's registration.
	_ "yashme/internal/workload/all"
)

// Variant groups selectable through Config.Variants. Which runs a
// benchmark actually gets is the intersection of the selected groups with
// the benchmark's tags: "races" covers the Table 3/4 primary sweeps,
// "table5" the three single-execution runs per Table 5 row, "benign" the
// §7.5 capped model-check run, "window" the baseline histogram run of the
// detection-window figure.
const (
	VariantRaces  = "races"
	VariantTable5 = "table5"
	VariantBenign = "benign"
	VariantWindow = "window"
)

// variantGroups is every group in canonical order.
var variantGroups = []string{VariantRaces, VariantTable5, VariantBenign, VariantWindow}

// Per-run variant names as they appear in Result (the table5 group fans
// out into three runs).
const (
	RunRaces          = "races"
	RunTable5Prefix   = "table5-prefix"
	RunTable5Baseline = "table5-baseline"
	RunTable5Jaaru    = "table5-jaaru"
	RunBenign         = "benign"
	RunWindow         = "window-baseline"
)

// Config selects and configures a suite run. The zero value runs every
// registered workload through every variant group on a GOMAXPROCS-sized
// shared worker budget with the engine's default fast paths.
type Config struct {
	// Specs is the workload list (nil = the full registry, paper order).
	// Ad-hoc specs — script-file programs, test programs — can be run by
	// listing them here without registering.
	Specs []workload.Spec
	// Tags keeps only specs carrying at least one of these tags (nil =
	// all).
	Tags []string
	// Names keeps only specs with these exact names (nil = all). Applied
	// after Tags.
	Names []string
	// Variants selects the variant groups to run (nil = all; see the
	// Variant constants).
	Variants []string
	// Shard/ShardCount select a deterministic 1-based shard: a spec is
	// assigned by a hash of its name alone, so assignments never move when
	// other specs come or go, and the union of all shards equals the
	// unsharded run. ShardCount <= 1 disables sharding.
	Shard, ShardCount int
	// Workers is the shared scenario-worker budget for the whole suite
	// (0 = GOMAXPROCS): every engine run draws from one engine.Budget of
	// this size, so concurrent benchmarks never oversubscribe the machine.
	Workers int
	// Budget, when non-nil, is an externally owned worker budget the suite
	// draws from instead of creating its own — the mechanism a layer above
	// (the job service, internal/service) uses to share one machine-wide
	// semaphore across several concurrent suite runs, so suite × job
	// parallelism never oversubscribes GOMAXPROCS either. Workers is
	// ignored when set; Summary.Workers echoes the budget's size.
	Budget *engine.Budget
	// Seed, when non-zero, replaces every run's scheduler/crash-point seed
	// (the paper's per-variant seeds otherwise: 1 for the Table 4 sweeps,
	// the spec's Table5Seed for Table 5). Model-checked runs are seed-
	// insensitive by construction (one deterministic schedule), so this is
	// the random-mode reproducibility knob — and part of a detection job's
	// cache identity in internal/service.
	Seed int64
	// Checkpoint and DirectRun select the engine fast-path modes for every
	// run (defaults on; results identical either way).
	Checkpoint engine.CheckpointMode
	DirectRun  engine.DirectRunMode
	// Keyframe is the full-clone interval for delta checkpoints (0 = the
	// engine default; 1 = every snapshot a full clone) and Dedup toggles
	// crash-image memoization — both forwarded to every engine run
	// (results identical at any setting).
	Keyframe int
	Dedup    engine.DedupMode
	// ClockIntern toggles the interned clock arena + epoch fast path —
	// forwarded to every engine run (results identical at either setting,
	// the owned representation is the debugging escape hatch).
	ClockIntern engine.ClockInternMode
	// Analyses selects the analysis passes every engine run executes (nil =
	// the engine default, yashme alone). The first selected pass is primary:
	// each RunResult's top-level Races/RaceCount are its report, and when
	// more than one pass runs, RunResult.Analyses carries the per-pass
	// breakdown. Non-default passes must be linked into the binary
	// (blank-import yashme/internal/analysis/all).
	Analyses []string
	// Sequential runs benchmarks one at a time instead of concurrently.
	// Results are identical (the determinism tests prove it); wall-clock
	// fields are the only observable difference, so use it when per-run
	// timings must not overlap (the paper's Table 5 runtime columns).
	Sequential bool
}

// Summary echoes the configuration a Result was produced under.
type Summary struct {
	Workers    int      `json:"workers"`
	Checkpoint bool     `json:"checkpoint"`
	DirectRun  bool     `json:"directrun"`
	Shard      string   `json:"shard,omitempty"`
	Tags       []string `json:"tags,omitempty"`
	Names      []string `json:"names,omitempty"`
	Variants   []string `json:"variants"`
	Analyses   []string `json:"analyses,omitempty"`
	Seed       int64    `json:"seed,omitempty"`
}

// AnalysisResult is one analysis pass's deduplicated report within a run
// (only emitted when a run executes more than one pass; the primary pass's
// report is also the RunResult's top-level Races/RaceCount).
type AnalysisResult struct {
	Name      string        `json:"name"`
	Races     []report.Race `json:"races,omitempty"`
	Benign    []report.Race `json:"benign,omitempty"`
	RaceCount int           `json:"race_count"`
}

// RunResult is the outcome of one engine run of one benchmark.
type RunResult struct {
	// Variant names the run (see the Run constants).
	Variant string `json:"variant"`
	// Races and Benign are the deduplicated reports in the report set's
	// stable (benchmark, field) order.
	Races  []report.Race `json:"races"`
	Benign []report.Race `json:"benign,omitempty"`
	// RaceCount is len(Races), denormalized for cheap consumers
	// (cmd/benchguard's canary reads it without touching the race rows).
	RaceCount int `json:"race_count"`
	// Analyses is the per-pass breakdown when the run executed more than
	// one analysis pass (Config.Analyses), in pass order; empty on
	// single-pass runs, whose report IS the top-level Races.
	Analyses    []AnalysisResult   `json:"analyses,omitempty"`
	Executions  int                `json:"executions"`
	CrashPoints int                `json:"crash_points"`
	Stats       engine.Stats       `json:"stats"`
	Window      []engine.PointStat `json:"window,omitempty"`
	// ElapsedNs is the run's wall-clock time. It is the one
	// non-deterministic field of a Result; Canonical zeroes it.
	ElapsedNs int64 `json:"elapsed_ns"`
	// Cancelled marks a run the context cut short: the reports and stats
	// are a well-formed partial result (every merged scenario completed)
	// but unexplored crash points were skipped. Never set on runs that
	// completed, so the field is invisible in their JSON.
	Cancelled bool `json:"cancelled,omitempty"`
}

// Analysis returns the run's per-pass result for a named pass, or nil —
// including on single-pass runs, where the top-level Races are the only
// report.
func (r *RunResult) Analysis(name string) *AnalysisResult {
	for i := range r.Analyses {
		if r.Analyses[i].Name == name {
			return &r.Analyses[i]
		}
	}
	return nil
}

// Bench is every run of one benchmark.
type Bench struct {
	Name       string      `json:"name"`
	Order      int         `json:"order"`
	ModelCheck bool        `json:"model_check"`
	Tags       []string    `json:"tags,omitempty"`
	Runs       []RunResult `json:"runs"`
}

// HasTag reports whether the bench's workload carries the tag.
func (b *Bench) HasTag(tag string) bool {
	for _, t := range b.Tags {
		if t == tag {
			return true
		}
	}
	return false
}

// Run returns the bench's run for a variant, or nil if it wasn't part of
// the suite's selection.
func (b *Bench) Run(variant string) *RunResult {
	for i := range b.Runs {
		if b.Runs[i].Variant == variant {
			return &b.Runs[i]
		}
	}
	return nil
}

// Result is the unified outcome of a suite run: one Bench per selected
// workload, in paper order.
type Result struct {
	Config     Summary `json:"config"`
	Benchmarks []Bench `json:"benchmarks"`
	// Cancelled marks a suite run its context cut short: some runs may be
	// partial (their own Cancelled is set) or missing entirely. Absent
	// from the JSON of completed runs.
	Cancelled bool `json:"cancelled,omitempty"`
}

// Bench returns the named benchmark's results, or nil if it wasn't part
// of the suite's selection (wrong tags, or another shard's).
func (r *Result) Bench(name string) *Bench {
	for i := range r.Benchmarks {
		if r.Benchmarks[i].Name == name {
			return &r.Benchmarks[i]
		}
	}
	return nil
}

// TotalRaces sums RaceCount over one variant's runs across all
// benchmarks.
func (r *Result) TotalRaces(variant string) int {
	n := 0
	for i := range r.Benchmarks {
		if run := r.Benchmarks[i].Run(variant); run != nil {
			n += run.RaceCount
		}
	}
	return n
}

// TotalStats sums the operation stats over every run of the result.
func (r *Result) TotalStats() engine.Stats {
	var s engine.Stats
	for _, b := range r.Benchmarks {
		for _, run := range b.Runs {
			s.Stores += run.Stats.Stores
			s.Loads += run.Stats.Loads
			s.Flushes += run.Stats.Flushes
			s.Fences += run.Stats.Fences
			s.RMWs += run.Stats.RMWs
			s.SimulatedOps += run.Stats.SimulatedOps
			s.Handoffs += run.Stats.Handoffs
			s.DirectOps += run.Stats.DirectOps
			s.SnapshotBytes += run.Stats.SnapshotBytes
			s.JournalOps += run.Stats.JournalOps
			s.ClockInterned += run.Stats.ClockInterned
			s.EpochHits += run.Stats.EpochHits
			s.EpochMisses += run.Stats.EpochMisses
			s.DedupedScenarios += run.Stats.DedupedScenarios
		}
	}
	return s
}

// Canonical returns a copy with every wall-clock field zeroed: the
// deterministic identity of the result. Two runs of the same Config —
// sequential or concurrent, sharded (after Merge) or not — have
// byte-identical Canonical JSON.
func (r *Result) Canonical() *Result {
	c := &Result{Config: r.Config, Benchmarks: make([]Bench, len(r.Benchmarks)), Cancelled: r.Cancelled}
	for i, b := range r.Benchmarks {
		nb := b
		nb.Runs = make([]RunResult, len(b.Runs))
		for j, run := range b.Runs {
			run.ElapsedNs = 0
			nb.Runs[j] = run
		}
		c.Benchmarks[i] = nb
	}
	return c
}

// JSON renders the result as indented JSON (the CLIs' -json output).
func (r *Result) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// Merge reassembles shard results into one: benchmarks are concatenated
// and re-sorted into paper order, and the shard marker is cleared so the
// merged result's Canonical JSON is byte-identical to an unsharded run of
// the same selection.
func Merge(parts ...*Result) *Result {
	merged := &Result{}
	for i, p := range parts {
		if i == 0 {
			merged.Config = p.Config
			merged.Config.Shard = ""
		}
		merged.Benchmarks = append(merged.Benchmarks, p.Benchmarks...)
	}
	sort.SliceStable(merged.Benchmarks, func(i, j int) bool {
		a, b := &merged.Benchmarks[i], &merged.Benchmarks[j]
		if a.Order != b.Order {
			return a.Order < b.Order
		}
		return a.Name < b.Name
	})
	return merged
}

// ParseShard parses a -shard flag value "i/n" (1 <= i <= n). The empty
// string means unsharded.
func ParseShard(s string) (shard, count int, err error) {
	if s == "" {
		return 0, 0, nil
	}
	i := strings.IndexByte(s, '/')
	if i < 0 {
		return 0, 0, fmt.Errorf("shard %q: want i/n", s)
	}
	shard, err1 := strconv.Atoi(s[:i])
	count, err2 := strconv.Atoi(s[i+1:])
	if err1 != nil || err2 != nil || count < 1 || shard < 1 || shard > count {
		return 0, 0, fmt.Errorf("shard %q: want i/n with 1 <= i <= n", s)
	}
	return shard, count, nil
}

// shardOf assigns a spec name to one of n shards (0-based) by name alone,
// so the assignment is stable no matter which other specs are selected.
func shardOf(name string, n int) int {
	h := fnv.New32a()
	h.Write([]byte(name))
	return int(h.Sum32() % uint32(n))
}

// selected applies the Config's Tags, Names and shard filters to its spec
// list, preserving paper order.
func (cfg Config) selected() []workload.Spec {
	specs := cfg.Specs
	if specs == nil {
		specs = workload.All()
	}
	if cfg.ShardCount > 1 && (cfg.Shard < 1 || cfg.Shard > cfg.ShardCount) {
		panic(fmt.Sprintf("suite: shard %d/%d out of range", cfg.Shard, cfg.ShardCount))
	}
	var names map[string]bool
	if len(cfg.Names) > 0 {
		names = make(map[string]bool, len(cfg.Names))
		for _, n := range cfg.Names {
			names[n] = true
		}
	}
	var out []workload.Spec
	for _, s := range specs {
		if !s.HasAnyTag(cfg.Tags) {
			continue
		}
		if names != nil && !names[s.Name] {
			continue
		}
		if cfg.ShardCount > 1 && shardOf(s.Name, cfg.ShardCount) != cfg.Shard-1 {
			continue
		}
		out = append(out, s)
	}
	return out
}

// variants resolves the selected variant groups (nil = all) into
// canonical order.
func (cfg Config) variants() []string {
	if len(cfg.Variants) == 0 {
		return append([]string(nil), variantGroups...)
	}
	want := make(map[string]bool, len(cfg.Variants))
	for _, v := range cfg.Variants {
		want[v] = true
	}
	var out []string
	for _, v := range variantGroups {
		if want[v] {
			out = append(out, v)
		}
	}
	return out
}

// job is one planned engine run of one benchmark.
type job struct {
	variant string
	opts    engine.Options
}

// jobsFor derives a spec's runs from its tags and the selected variant
// groups, in fixed variant order. The options mirror the paper's
// configurations exactly (formerly hardcoded per table in
// internal/tables).
func jobsFor(spec workload.Spec, groups []string) []job {
	on := make(map[string]bool, len(groups))
	for _, g := range groups {
		on[g] = true
	}
	var jobs []job
	if on[VariantRaces] {
		switch {
		case spec.HasTag(workload.TagTable3):
			// Table 3: systematic model checking (§7.1).
			jobs = append(jobs, job{RunRaces, engine.Options{Mode: engine.ModelCheck, Prefix: true}})
		case spec.HasTag(workload.TagTable4):
			// Table 4: 40 seeded random executions (§7.1).
			jobs = append(jobs, job{RunRaces, engine.Options{Mode: engine.RandomMode, Prefix: true, Seed: 1, Executions: 40}})
		}
	}
	if on[VariantTable5] && spec.HasTag(workload.TagTable5) {
		// Table 5: one random execution per variant (§7.3).
		base := engine.Options{Mode: engine.RandomMode, Seed: spec.Table5Seed, Executions: 1}
		prefix, baseline, jaaru := base, base, base
		prefix.Prefix = true
		jaaru.Prefix = true
		jaaru.DetectorOff = true
		jobs = append(jobs,
			job{RunTable5Prefix, prefix},
			job{RunTable5Baseline, baseline},
			job{RunTable5Jaaru, jaaru})
	}
	if on[VariantBenign] && spec.HasTag(workload.TagBenign) {
		// §7.5: model-check the checksum-using frameworks, capped.
		jobs = append(jobs, job{RunBenign, engine.Options{Mode: engine.ModelCheck, Prefix: true, MaxCrashPoints: spec.BenignCrashPoints}})
	}
	if on[VariantWindow] && spec.HasTag(workload.TagWindow) {
		// Detection-window histogram baseline (the prefix histogram comes
		// from the races run's Window).
		jobs = append(jobs, job{RunWindow, engine.Options{Mode: engine.ModelCheck, Prefix: false}})
	}
	return jobs
}

// Run executes the configured suite: the selected benchmarks run
// concurrently (unless Config.Sequential), every engine run drawing from
// one shared worker budget, and the per-benchmark results are assembled
// in paper order regardless of completion order.
func Run(cfg Config) *Result {
	return RunContext(context.Background(), cfg)
}

// RunContext is Run under a context. Cancellation (or deadline expiry) is
// honored at the engine's scenario boundaries: runs already simulating
// finish their in-flight scenarios and merge what completed, jobs not yet
// started are skipped, and the Result comes back promptly with Cancelled
// set on itself and on every cut-short run. A partial Result is
// well-formed — its Canonical JSON is a valid (if truncated) suite result
// — but only complete runs are byte-comparable across invocations.
func RunContext(ctx context.Context, cfg Config) *Result {
	specs := cfg.selected()
	groups := cfg.variants()
	budget := cfg.Budget
	if budget == nil {
		budget = engine.NewBudget(cfg.Workers)
	}

	res := &Result{
		Config: Summary{
			Workers:    budget.Size(),
			Checkpoint: cfg.Checkpoint == engine.CheckpointOn,
			DirectRun:  cfg.DirectRun == engine.DirectRunOn,
			Tags:       cfg.Tags,
			Names:      cfg.Names,
			Variants:   groups,
			Analyses:   cfg.Analyses,
			Seed:       cfg.Seed,
		},
		Benchmarks: make([]Bench, len(specs)),
	}
	if cfg.ShardCount > 1 {
		res.Config.Shard = fmt.Sprintf("%d/%d", cfg.Shard, cfg.ShardCount)
	}

	runBench := func(i int, spec workload.Spec) {
		bench := Bench{Name: spec.Name, Order: spec.Order, ModelCheck: spec.ModelCheck, Tags: spec.Tags}
		defer func() { res.Benchmarks[i] = bench }()
		for _, j := range jobsFor(spec, groups) {
			if ctx.Err() != nil {
				return
			}
			opts := j.opts
			opts.Workers = budget.Size()
			opts.Checkpoint = cfg.Checkpoint
			opts.DirectRun = cfg.DirectRun
			opts.Keyframe = cfg.Keyframe
			opts.Dedup = cfg.Dedup
			opts.ClockIntern = cfg.ClockIntern
			opts.Analyses = cfg.Analyses
			opts.Budget = budget
			if cfg.Seed != 0 {
				opts.Seed = cfg.Seed
			}
			start := time.Now()
			er := engine.RunContext(ctx, spec.Make, opts)
			run := RunResult{
				Variant:     j.variant,
				Races:       er.Report.Races(),
				Benign:      er.Report.Benign(),
				RaceCount:   er.Report.Count(),
				Executions:  er.ExecutionsRun,
				CrashPoints: er.CrashPoints,
				Stats:       er.Stats,
				Window:      er.Window,
				ElapsedNs:   time.Since(start).Nanoseconds(),
				Cancelled:   er.Cancelled,
			}
			if len(er.Passes) > 1 {
				run.Analyses = make([]AnalysisResult, len(er.Passes))
				for k, p := range er.Passes {
					run.Analyses[k] = AnalysisResult{
						Name:      p.Name,
						Races:     p.Report.Races(),
						Benign:    p.Report.Benign(),
						RaceCount: p.Report.Count(),
					}
				}
			}
			bench.Runs = append(bench.Runs, run)
		}
	}

	if cfg.Sequential {
		for i, spec := range specs {
			runBench(i, spec)
		}
		if ctx.Err() != nil {
			res.Cancelled = true
		}
		return res
	}
	// Workload panics are re-raised on the caller after every benchmark
	// goroutine has drained, lowest spec index first — the same
	// deterministic precedence the engine's own worker pool applies.
	panics := make([]any, len(specs))
	var wg sync.WaitGroup
	for i, spec := range specs {
		i, spec := i, spec
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { panics[i] = recover() }()
			runBench(i, spec)
		}()
	}
	wg.Wait()
	for _, p := range panics {
		if p != nil {
			panic(p)
		}
	}
	if ctx.Err() != nil {
		res.Cancelled = true
	}
	return res
}
