package suite

import (
	"context"
	"runtime"
	"sync"
	"testing"
	"time"

	"yashme/internal/engine"
	"yashme/internal/pmm"
	"yashme/internal/workload"
)

// cancelSpec is an ad-hoc table3-shaped workload whose pre-crash body
// fires onWorker — the hook the tests use to cancel mid-suite from a point
// that is deterministically inside a run.
func cancelSpec(name string, onWorker func()) workload.Spec {
	return workload.Spec{
		Name:       name,
		ModelCheck: true,
		Tags:       []string{workload.TagTable3},
		Make: func() pmm.Program {
			var val pmm.Addr
			return pmm.Program{
				Name: name,
				Setup: func(h *pmm.Heap) {
					val = h.AllocStruct("o", pmm.Layout{{Name: "v", Size: 8}}).F("v")
				},
				Workers: []func(*pmm.Thread){func(t *pmm.Thread) {
					if onWorker != nil {
						onWorker()
					}
					for i := 0; i < 6; i++ {
						t.Store64(val, uint64(i))
						t.CLFlush(val)
						t.SFence()
					}
				}},
				PostCrash: func(t *pmm.Thread) { t.Load64(val) },
			}
		},
	}
}

func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= base+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutine leak: %d live, baseline %d", runtime.NumGoroutine(), base)
}

// A pre-cancelled suite run returns promptly: every benchmark slot exists
// (named, paper-ordered) but no engine run started, and the result is
// marked Cancelled.
func TestSuiteRunContextPreCancelled(t *testing.T) {
	base := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res := RunContext(ctx, smallCfg())
	if !res.Cancelled {
		t.Fatal("pre-cancelled suite not marked Cancelled")
	}
	for _, b := range res.Benchmarks {
		if b.Name == "" {
			t.Fatal("benchmark slot left unnamed")
		}
		if len(b.Runs) != 0 {
			t.Fatalf("benchmark %s ran %d jobs under a cancelled context", b.Name, len(b.Runs))
		}
	}
	waitGoroutines(t, base)
}

// Cancelling mid-suite cuts the in-flight run at a scenario boundary and
// skips the rest: the cut run carries Cancelled, the partial Result is
// well-formed (valid Canonical JSON), and no goroutines outlive the call.
// Both orchestration paths are exercised.
func TestSuiteRunContextCancelMidRun(t *testing.T) {
	for _, seq := range []bool{false, true} {
		base := runtime.NumGoroutine()
		ctx, cancel := context.WithCancel(context.Background())
		var once sync.Once
		cfg := Config{
			Specs:      []workload.Spec{cancelSpec("ctx-cancel", func() { once.Do(cancel) })},
			Variants:   []string{VariantRaces},
			Sequential: seq,
		}
		res := RunContext(ctx, cfg)
		cancel()
		if !res.Cancelled {
			t.Fatalf("seq=%v: cancelled suite not marked Cancelled", seq)
		}
		run := res.Benchmarks[0].Run(RunRaces)
		if run == nil {
			t.Fatalf("seq=%v: the started run is missing from the partial result", seq)
		}
		if !run.Cancelled {
			t.Fatalf("seq=%v: cut run not marked Cancelled", seq)
		}
		if _, err := res.Canonical().JSON(); err != nil {
			t.Fatalf("seq=%v: partial result does not marshal: %v", seq, err)
		}
		waitGoroutines(t, base)
	}
}

// An external Budget is honored (Workers ignored) and a Seed override
// lands in every run's options and in the Summary.
func TestSuiteExternalBudgetAndSeed(t *testing.T) {
	cfg := smallCfg()
	cfg.Budget = engine.NewBudget(3)
	cfg.Workers = 64 // must be ignored in favor of the budget's size
	cfg.Seed = 42
	res := Run(cfg)
	if res.Config.Workers != 3 {
		t.Fatalf("Summary.Workers = %d, want the external budget's 3", res.Config.Workers)
	}
	if res.Config.Seed != 42 {
		t.Fatalf("Summary.Seed = %d, want 42", res.Config.Seed)
	}
	if res.Cancelled {
		t.Fatal("complete run marked Cancelled")
	}
}
