package suite

import (
	"bytes"
	"testing"

	"yashme/internal/engine"
	"yashme/internal/workload"
)

// smallCfg is a fast cross-section of the registry: two model-checked
// indexes, a PMDK example and Redis, through the single-execution Table 5
// variant (three engine runs each).
func smallCfg() Config {
	return Config{
		Names:    []string{"CCEH", "P-ART", "Btree", "Redis"},
		Variants: []string{VariantTable5},
	}
}

func canonicalJSON(t *testing.T, r *Result) []byte {
	t.Helper()
	data, err := r.Canonical().JSON()
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return data
}

// Concurrent and sequential suite runs must be byte-identical after
// Canonical strips wall-clock fields.
func TestSuiteDeterminism(t *testing.T) {
	par := Run(smallCfg())
	cfg := smallCfg()
	cfg.Sequential = true
	seq := Run(cfg)
	pj, sj := canonicalJSON(t, par), canonicalJSON(t, seq)
	if !bytes.Equal(pj, sj) {
		t.Fatalf("parallel != sequential canonical JSON:\n%s\nvs\n%s", pj, sj)
	}
}

// The union of the shards, merged, must be byte-identical to the unsharded
// run of the same selection.
func TestSuiteShardsReassemble(t *testing.T) {
	full := Run(smallCfg())
	var parts []*Result
	benches := 0
	for shard := 1; shard <= 2; shard++ {
		cfg := smallCfg()
		cfg.Shard, cfg.ShardCount = shard, 2
		part := Run(cfg)
		if part.Config.Shard == "" {
			t.Fatalf("shard %d: result not marked", shard)
		}
		benches += len(part.Benchmarks)
		parts = append(parts, part)
	}
	if benches != len(full.Benchmarks) {
		t.Fatalf("shards cover %d benchmarks, full run has %d", benches, len(full.Benchmarks))
	}
	merged := Merge(parts...)
	mj, fj := canonicalJSON(t, merged), canonicalJSON(t, full)
	if !bytes.Equal(mj, fj) {
		t.Fatalf("merged shards != full run canonical JSON:\n%s\nvs\n%s", mj, fj)
	}
}

// Shard assignment is a pure function of the name: it never moves when
// other specs come or go, and every registered spec lands in exactly one
// shard.
func TestShardPartition(t *testing.T) {
	for _, n := range []int{2, 3, 5} {
		seen := map[string]int{}
		for shard := 1; shard <= n; shard++ {
			for _, s := range (Config{Shard: shard, ShardCount: n}).selected() {
				if prev, dup := seen[s.Name]; dup {
					t.Fatalf("n=%d: %s in shards %d and %d", n, s.Name, prev, shard)
				}
				seen[s.Name] = shard
			}
		}
		if len(seen) != len(workload.All()) {
			t.Fatalf("n=%d: shards cover %d specs, registry has %d", n, len(seen), len(workload.All()))
		}
	}
}

func TestParseShard(t *testing.T) {
	if s, n, err := ParseShard("2/3"); err != nil || s != 2 || n != 3 {
		t.Fatalf("ParseShard(2/3) = %d, %d, %v", s, n, err)
	}
	if s, n, err := ParseShard(""); err != nil || s != 0 || n != 0 {
		t.Fatalf("ParseShard(\"\") = %d, %d, %v", s, n, err)
	}
	for _, bad := range []string{"3/2", "0/2", "x/2", "2", "1/0", "-1/2"} {
		if _, _, err := ParseShard(bad); err == nil {
			t.Errorf("ParseShard(%q): no error", bad)
		}
	}
}

// The variant groups translate tags into exactly the paper's runs.
func TestJobsForVariants(t *testing.T) {
	cceh, _ := workload.Lookup("CCEH")
	names := func(jobs []job) []string {
		var out []string
		for _, j := range jobs {
			out = append(out, j.variant)
		}
		return out
	}
	got := names(jobsFor(cceh, variantGroups))
	want := []string{RunRaces, RunTable5Prefix, RunTable5Baseline, RunTable5Jaaru, RunWindow}
	if len(got) != len(want) {
		t.Fatalf("CCEH jobs = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("CCEH jobs = %v, want %v", got, want)
		}
	}
	redis, _ := workload.Lookup("Redis")
	got = names(jobsFor(redis, []string{VariantRaces}))
	if len(got) != 1 || got[0] != RunRaces {
		t.Fatalf("Redis races jobs = %v, want [races]", got)
	}
	if jobs := jobsFor(redis, []string{VariantWindow}); len(jobs) != 0 {
		t.Fatalf("Redis window jobs = %v, want none", names(jobs))
	}
}

// A selected-but-empty shard still yields a mergeable empty result.
func TestEmptySelection(t *testing.T) {
	res := Run(Config{Names: []string{"no-such-benchmark"}})
	if len(res.Benchmarks) != 0 {
		t.Fatalf("benchmarks = %d, want 0", len(res.Benchmarks))
	}
	if merged := Merge(res); len(merged.Benchmarks) != 0 {
		t.Fatalf("merged benchmarks = %d, want 0", len(merged.Benchmarks))
	}
}

// Delta checkpoints and crash-image memoization are pure mechanism: on a
// model-check sweep, keyframing every snapshot (Keyframe=1, the full-clone
// escape hatch) must be byte-identical to the default delta run modulo the
// capture-accounting fields, and turning memoization off must be identical
// modulo those plus the work counters its skipped scenarios no longer
// accrue. Races, windows, executions and per-kind operation counts can
// never differ.
func TestDeltaMatchesFullClone(t *testing.T) {
	cfg := Config{
		Names:      []string{"CCEH", "P-ART"},
		Variants:   []string{VariantRaces},
		Checkpoint: engine.CheckpointOn,
	}
	deltas := Run(cfg)

	kf1 := cfg
	kf1.Keyframe = 1
	fullClones := Run(kf1)

	nodedup := cfg
	nodedup.Dedup = engine.DedupOff
	scratch := Run(nodedup)

	if d := deltas.TotalStats().DedupedScenarios; d == 0 {
		t.Error("default run deduplicated no scenarios; memoization is inert on the sweep")
	}
	if d := scratch.TotalStats().DedupedScenarios; d != 0 {
		t.Errorf("dedup-off run reports %d deduplicated scenarios", d)
	}

	// The capture-accounting fields measure how state was captured, not
	// what was explored; work counters measure how much simulation ran.
	capture := func(s *engine.Stats) {
		s.SnapshotBytes, s.JournalOps, s.DedupedScenarios = 0, 0, 0
		// Clock-arena counters follow the capture mechanics too: a journal
		// replay re-runs its segment's joins, a keyframe resume does not.
		s.ClockInterned, s.EpochHits, s.EpochMisses = 0, 0, 0
	}
	work := func(s *engine.Stats) {
		s.SimulatedOps, s.Handoffs, s.DirectOps = 0, 0, 0
	}
	canon := func(r *Result, norm ...func(*engine.Stats)) []byte {
		c := r.Canonical()
		for i := range c.Benchmarks {
			for j := range c.Benchmarks[i].Runs {
				for _, f := range norm {
					f(&c.Benchmarks[i].Runs[j].Stats)
				}
			}
		}
		data, err := c.JSON()
		if err != nil {
			t.Fatal(err)
		}
		return data
	}

	if dj, fj := canon(deltas, capture), canon(fullClones, capture); !bytes.Equal(dj, fj) {
		t.Fatalf("delta run != keyframe-1 run canonical JSON:\n%s\nvs\n%s", dj, fj)
	}
	if dj, sj := canon(deltas, capture, work), canon(scratch, capture, work); !bytes.Equal(dj, sj) {
		t.Fatalf("memoized run != dedup-off run canonical JSON:\n%s\nvs\n%s", dj, sj)
	}
	// And memoization must actually save simulation work.
	if on, off := deltas.TotalStats().SimulatedOps, scratch.TotalStats().SimulatedOps; on >= off {
		t.Errorf("memoization saved nothing: %d simulated ops with dedup, %d without", on, off)
	}
}
