// Package trace records simulated executions as event logs and builds the
// race witnesses Yashme reports: "the pre-crash execution prefix E+
// combined with the post-crash execution E'" (paper §5.1). The recorder
// sits between the TSO machine and the detector (it implements
// tso.Listener and forwards every event), so the log is exactly the global
// commit order the detector reasoned about.
package trace

import (
	"encoding/json"
	"fmt"
	"strings"

	"yashme/internal/pmm"
	"yashme/internal/tso"
	"yashme/internal/vclock"
)

// Kind classifies a trace event.
type Kind int

// Event kinds, in the vocabulary of the paper's algorithm.
const (
	KStore Kind = iota
	KCLFlush
	KCLWBBuffered
	KCLWBPersisted
	KFence
	KCrash
	KLoad // post-crash observation of a pre-crash store
)

func (k Kind) String() string {
	switch k {
	case KStore:
		return "store"
	case KCLFlush:
		return "clflush"
	case KCLWBBuffered:
		return "clwb"
	case KCLWBPersisted:
		return "clwb-persisted"
	case KFence:
		return "fence"
	case KCrash:
		return "CRASH"
	case KLoad:
		return "read"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Event is one entry of the commit-order log.
type Event struct {
	Exec    int // execution index in the crash stack
	Seq     vclock.Seq
	TID     vclock.TID
	Kind    Kind
	Addr    pmm.Addr
	Size    int
	Val     uint64
	Atomic  bool
	Release bool
	// FromExec/FromSeq identify the store a KLoad observed.
	FromExec int
	FromSeq  vclock.Seq
	// Guarded marks checksum-validation loads.
	Guarded bool
}

// render prints one event with the labeler applied.
func (e Event) render(label func(pmm.Addr) string) string {
	switch e.Kind {
	case KStore:
		attr := ""
		if e.Atomic {
			attr = " atomic"
			if e.Release {
				attr = " atomic-release"
			}
		}
		return fmt.Sprintf("e%d σ%-4d t%d store%s %s = %#x", e.Exec, e.Seq, e.TID, attr, label(e.Addr), e.Val)
	case KCLFlush:
		return fmt.Sprintf("e%d σ%-4d t%d clflush line(%s)", e.Exec, e.Seq, e.TID, label(e.Addr))
	case KCLWBBuffered:
		return fmt.Sprintf("e%d --    t%d clwb line(%s) [buffered]", e.Exec, e.TID, label(e.Addr))
	case KCLWBPersisted:
		return fmt.Sprintf("e%d σ%-4d t%d clwb line(%s) persisted by fence", e.Exec, e.Seq, e.TID, label(e.Addr))
	case KFence:
		return fmt.Sprintf("e%d σ%-4d t%d fence", e.Exec, e.Seq, e.TID)
	case KCrash:
		return fmt.Sprintf("e%d ===== CRASH at σ%d =====", e.Exec, e.Seq)
	case KLoad:
		g := ""
		if e.Guarded {
			g = " [checksum-guarded]"
		}
		return fmt.Sprintf("e%d       t%d read %s -> %#x (from e%d σ%d)%s",
			e.Exec, e.TID, label(e.Addr), e.Val, e.FromExec, e.FromSeq, g)
	}
	return fmt.Sprintf("e%d ? %v", e.Exec, e.Kind)
}

// Recorder captures the event log. It implements tso.Listener and forwards
// every event to Inner (the detector), so installing it is transparent.
type Recorder struct {
	Inner   tso.Listener
	Labeler func(pmm.Addr) string

	events []Event
	exec   int
}

// NewRecorder wraps inner. labeler may be nil (hex addresses).
func NewRecorder(inner tso.Listener, labeler func(pmm.Addr) string) *Recorder {
	if inner == nil {
		inner = tso.NopListener{}
	}
	if labeler == nil {
		labeler = func(a pmm.Addr) string { return fmt.Sprintf("0x%x", uint64(a)) }
	}
	return &Recorder{Inner: inner, Labeler: labeler}
}

// Clone returns a recorder with a copy of the event log and the current
// execution index, forwarding subsequent events to inner with labeler (both
// may be nil, as in NewRecorder). The engine's checkpoint layer clones the
// log at a snapshot point and rewires each resumed scenario's copy to that
// scenario's own detector and heap.
func (r *Recorder) Clone(inner tso.Listener, labeler func(pmm.Addr) string) *Recorder {
	c := NewRecorder(inner, labeler)
	c.events = append([]Event(nil), r.events...)
	c.exec = r.exec
	return c
}

// SetExec switches the execution index for subsequent events.
func (r *Recorder) SetExec(i int) { r.exec = i }

// Events returns the recorded log.
func (r *Recorder) Events() []Event { return r.events }

// StoreCommitted implements tso.Listener.
func (r *Recorder) StoreCommitted(rec *tso.CommittedStore) {
	r.events = append(r.events, Event{
		Exec: r.exec, Seq: rec.Seq, TID: rec.TID, Kind: KStore,
		Addr: rec.Addr, Size: rec.Size, Val: rec.Val,
		Atomic: rec.Atomic, Release: rec.Release,
	})
	r.Inner.StoreCommitted(rec)
}

// CLFlushCommitted implements tso.Listener.
func (r *Recorder) CLFlushCommitted(tid vclock.TID, addr pmm.Addr, seq vclock.Seq, cv vclock.Stamp) {
	r.events = append(r.events, Event{Exec: r.exec, Seq: seq, TID: tid, Kind: KCLFlush, Addr: addr})
	r.Inner.CLFlushCommitted(tid, addr, seq, cv)
}

// CLWBBuffered implements tso.Listener.
func (r *Recorder) CLWBBuffered(tid vclock.TID, addr pmm.Addr, cv vclock.Stamp) {
	r.events = append(r.events, Event{Exec: r.exec, TID: tid, Kind: KCLWBBuffered, Addr: addr})
	r.Inner.CLWBBuffered(tid, addr, cv)
}

// CLWBPersisted implements tso.Listener.
func (r *Recorder) CLWBPersisted(flush tso.FBEntry, fenceTID vclock.TID, fenceSeq vclock.Seq, fenceCV vclock.Stamp) {
	r.events = append(r.events, Event{Exec: r.exec, Seq: fenceSeq, TID: flush.TID, Kind: KCLWBPersisted, Addr: flush.Addr})
	r.Inner.CLWBPersisted(flush, fenceTID, fenceSeq, fenceCV)
}

// FenceCommitted implements tso.Listener.
func (r *Recorder) FenceCommitted(tid vclock.TID, seq vclock.Seq, cv vclock.Stamp) {
	r.events = append(r.events, Event{Exec: r.exec, Seq: seq, TID: tid, Kind: KFence})
	r.Inner.FenceCommitted(tid, seq, cv)
}

var _ tso.Listener = (*Recorder)(nil)

// Crash records the crash ending the current execution.
func (r *Recorder) Crash(seq vclock.Seq) {
	r.events = append(r.events, Event{Exec: r.exec, Seq: seq, Kind: KCrash})
}

// Observe records a post-crash load reading a pre-crash store.
func (r *Recorder) Observe(tid vclock.TID, addr pmm.Addr, val uint64, fromExec int, fromSeq vclock.Seq, guarded bool) {
	r.events = append(r.events, Event{
		Exec: r.exec, TID: tid, Kind: KLoad, Addr: addr, Val: val,
		FromExec: fromExec, FromSeq: fromSeq, Guarded: guarded,
	})
}

// Render prints the whole log.
func (r *Recorder) Render() string {
	var b strings.Builder
	for _, e := range r.events {
		b.WriteString(e.render(r.Labeler))
		b.WriteByte('\n')
	}
	return b.String()
}

// Witness builds the race witness for a racing store: every pre-crash event
// touching the store's cache line in the store's execution (the relevant
// slice of the derivable prefix E+), the crash, and the post-crash
// observations of the store (E'). This matches §5.1: the report is the
// race-revealing pre-crash prefix combined with the post-crash execution.
func (r *Recorder) Witness(storeExec int, storeSeq vclock.Seq, addr pmm.Addr) string {
	line := pmm.LineOf(addr)
	var b strings.Builder
	fmt.Fprintf(&b, "witness for racing store σ%d on %s:\n", storeSeq, r.Labeler(addr))
	for _, e := range r.events {
		switch e.Kind {
		case KStore, KCLFlush, KCLWBBuffered, KCLWBPersisted:
			if e.Exec == storeExec && pmm.LineOf(e.Addr) == line {
				mark := "  "
				if e.Kind == KStore && e.Seq == storeSeq {
					mark = "* " // the racing store
				}
				b.WriteString(mark + e.render(r.Labeler) + "\n")
			}
		case KCrash:
			if e.Exec == storeExec {
				b.WriteString("  " + e.render(r.Labeler) + "\n")
			}
		case KLoad:
			if e.FromExec == storeExec && e.FromSeq == storeSeq {
				b.WriteString("> " + e.render(r.Labeler) + "\n")
			}
		}
	}
	return b.String()
}

// jsonEvent is the export shape of one event.
type jsonEvent struct {
	Exec    int    `json:"exec"`
	Seq     uint64 `json:"seq,omitempty"`
	TID     int    `json:"tid"`
	Kind    string `json:"kind"`
	Addr    string `json:"addr,omitempty"`
	Size    int    `json:"size,omitempty"`
	Val     uint64 `json:"val,omitempty"`
	Atomic  bool   `json:"atomic,omitempty"`
	Release bool   `json:"release,omitempty"`
	From    string `json:"from,omitempty"`
	Guarded bool   `json:"guarded,omitempty"`
}

// MarshalJSON exports the event log as a JSON array for external tooling
// (trace viewers, diffing runs).
func (r *Recorder) MarshalJSON() ([]byte, error) {
	out := make([]jsonEvent, 0, len(r.events))
	for _, e := range r.events {
		je := jsonEvent{
			Exec: e.Exec, Seq: uint64(e.Seq), TID: int(e.TID), Kind: e.Kind.String(),
			Size: e.Size, Val: e.Val, Atomic: e.Atomic, Release: e.Release, Guarded: e.Guarded,
		}
		if e.Kind != KFence && e.Kind != KCrash {
			je.Addr = r.Labeler(e.Addr)
		}
		if e.Kind == KLoad {
			je.From = fmt.Sprintf("e%d/σ%d", e.FromExec, e.FromSeq)
		}
		out = append(out, je)
	}
	return json.Marshal(out)
}
