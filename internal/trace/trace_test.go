package trace

import (
	"encoding/json"
	"strings"
	"testing"

	"yashme/internal/pmm"
	"yashme/internal/tso"
	"yashme/internal/vclock"
)

func TestRecorderForwardsAndRecords(t *testing.T) {
	r := NewRecorder(nil, nil)
	m := tso.NewMachine(r)
	m.EnqueueStore(0, 0x100, 8, 42, false, false)
	m.EnqueueCLFlush(0, 0x100)
	m.EnqueueCLWB(0, 0x140)
	m.EnqueueSFence(0)
	m.DrainSB(0)

	kinds := map[Kind]int{}
	for _, e := range r.Events() {
		kinds[e.Kind]++
	}
	if kinds[KStore] != 1 || kinds[KCLFlush] != 1 || kinds[KCLWBBuffered] != 1 ||
		kinds[KCLWBPersisted] != 1 || kinds[KFence] != 1 {
		t.Fatalf("event kinds = %v", kinds)
	}
}

func TestRecorderUsesLabeler(t *testing.T) {
	h := pmm.NewHeap()
	s := h.AllocStruct("obj", pmm.Layout{{Name: "x", Size: 8}})
	r := NewRecorder(nil, h.LabelFor)
	m := tso.NewMachine(r)
	m.EnqueueStore(0, s.F("x"), 8, 7, false, false)
	m.DrainSB(0)
	out := r.Render()
	if !strings.Contains(out, "obj.x") {
		t.Fatalf("render missing field label:\n%s", out)
	}
}

func TestCrashAndObserveEvents(t *testing.T) {
	r := NewRecorder(nil, nil)
	r.SetExec(0)
	m := tso.NewMachine(r)
	m.EnqueueStore(0, 0x100, 8, 1, false, false)
	m.DrainSB(0)
	r.Crash(m.CurSeq())
	r.SetExec(1)
	r.Observe(0, 0x100, 1, 0, 1, false)

	out := r.Render()
	if !strings.Contains(out, "CRASH") {
		t.Fatalf("missing crash marker:\n%s", out)
	}
	if !strings.Contains(out, "read 0x100 -> 0x1 (from e0 σ1)") {
		t.Fatalf("missing observation:\n%s", out)
	}
}

func TestWitnessSelectsLineEvents(t *testing.T) {
	r := NewRecorder(nil, nil)
	m := tso.NewMachine(r)
	m.EnqueueStore(0, 0x100, 8, 1, false, false)  // same line as racing store
	m.EnqueueStore(0, 0x108, 8, 2, false, false)  // the racing store (σ2)
	m.EnqueueStore(0, 0x4000, 8, 3, false, false) // unrelated line
	m.EnqueueCLFlush(0, 0x100)
	m.DrainSB(0)
	r.Crash(m.CurSeq())
	r.SetExec(1)
	r.Observe(0, 0x108, 2, 0, 2, false)

	w := r.Witness(0, 2, 0x108)
	if !strings.Contains(w, "* ") {
		t.Fatalf("racing store not marked:\n%s", w)
	}
	if strings.Contains(w, "0x4000") {
		t.Fatalf("unrelated line leaked into witness:\n%s", w)
	}
	if !strings.Contains(w, "clflush") || !strings.Contains(w, "CRASH") || !strings.Contains(w, "> ") {
		t.Fatalf("witness missing flush/crash/observation:\n%s", w)
	}
}

func TestGuardedObservationMarked(t *testing.T) {
	r := NewRecorder(nil, nil)
	r.Observe(0, 0x100, 5, 0, 1, true)
	if !strings.Contains(r.Render(), "checksum-guarded") {
		t.Fatal("guarded observation not marked")
	}
}

func TestKindStrings(t *testing.T) {
	for k, want := range map[Kind]string{
		KStore: "store", KCLFlush: "clflush", KCLWBBuffered: "clwb",
		KCLWBPersisted: "clwb-persisted", KFence: "fence", KCrash: "CRASH", KLoad: "read",
	} {
		if k.String() != want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), k.String(), want)
		}
	}
	if Kind(99).String() == "" {
		t.Error("unknown kind renders empty")
	}
}

func TestAtomicReleaseRendering(t *testing.T) {
	r := NewRecorder(nil, nil)
	m := tso.NewMachine(r)
	m.EnqueueStore(0, 0x100, 8, 1, true, true)
	m.DrainSB(0)
	if !strings.Contains(r.Render(), "atomic-release") {
		t.Fatalf("release store not annotated:\n%s", r.Render())
	}
}

func TestRecorderForwardsToInner(t *testing.T) {
	var got int
	inner := countingListener{&got}
	r := NewRecorder(inner, nil)
	m := tso.NewMachine(r)
	m.EnqueueStore(0, 0x100, 8, 1, false, false)
	m.DrainSB(0)
	if got != 1 {
		t.Fatalf("inner listener saw %d stores, want 1", got)
	}
}

type countingListener struct{ stores *int }

func (c countingListener) StoreCommitted(*tso.CommittedStore)                           { *c.stores++ }
func (c countingListener) CLFlushCommitted(vclock.TID, pmm.Addr, vclock.Seq, vclock.Stamp) {}
func (c countingListener) CLWBBuffered(vclock.TID, pmm.Addr, vclock.Stamp)                 {}
func (c countingListener) CLWBPersisted(tso.FBEntry, vclock.TID, vclock.Seq, vclock.Stamp) {}
func (c countingListener) FenceCommitted(vclock.TID, vclock.Seq, vclock.Stamp)             {}

func TestJSONExport(t *testing.T) {
	r := NewRecorder(nil, nil)
	m := tso.NewMachine(r)
	m.EnqueueStore(0, 0x100, 8, 42, true, true)
	m.EnqueueCLFlush(0, 0x100)
	m.DrainSB(0)
	r.Crash(m.CurSeq())
	r.SetExec(1)
	r.Observe(0, 0x100, 42, 0, 1, false)

	data, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	var events []map[string]interface{}
	if err := json.Unmarshal(data, &events); err != nil {
		t.Fatal(err)
	}
	if len(events) != 4 {
		t.Fatalf("exported %d events, want 4", len(events))
	}
	if events[0]["kind"] != "store" || events[0]["atomic"] != true {
		t.Fatalf("first event = %v", events[0])
	}
	if events[3]["kind"] != "read" || events[3]["from"] != "e0/σ1" {
		t.Fatalf("load event = %v", events[3])
	}
}
