package pmdk

import (
	"yashme/internal/pmm"
)

// RedoLog is the second logging flavour libpmemobj uses (its internal
// "operation" log for allocator metadata): staged (offset, value) pairs are
// persisted first, then marked valid, then applied. Unlike the undo log —
// whose entry pointer carries the Table 4 race — this implementation is
// written the way the paper says the bug should be FIXED (§7.2): the
// validity word is an atomic release store, which on x86 compiles to a
// plain mov but forbids store tearing/inventing, so the detector finds no
// races in it. Recovery re-applies a valid log idempotently.
type RedoLog struct {
	pool    *Pool
	hdr     pmm.Struct // "redo" {nentries (atomic), checksum}
	entries pmm.Array  // "redo_entry" {offset, value}
	staged  int
}

// RedoCap is the redo-log capacity in entries.
const RedoCap = 16

// NewRedoLog allocates a redo log in the pool during Setup.
func NewRedoLog(p *Pool) *RedoLog {
	return &RedoLog{
		pool: p,
		hdr: p.h.AllocStruct("redo", pmm.Layout{
			{Name: "nentries", Size: 8},
			{Name: "checksum", Size: 8},
		}),
		entries: p.h.AllocArray("redo_entry", pmm.Layout{
			{Name: "offset", Size: 8},
			{Name: "value", Size: 8},
		}, RedoCap),
	}
}

// Stage records one deferred store. Entries are plain writes to
// not-yet-valid log space (unreachable until the atomic publication), then
// persisted.
func (r *RedoLog) Stage(t *pmm.Thread, addr pmm.Addr, val uint64) {
	if r.staged >= RedoCap {
		panic("pmdk: redo log full")
	}
	e := r.entries.At(r.staged)
	t.Store64(e.F("offset"), uint64(addr))
	t.Store64(e.F("value"), val)
	t.Persist(e.Base(), e.Size())
	r.staged++
}

// Process publishes the staged entries (atomic release — the FIXED
// protocol), applies them in place, persists the data, and retires the log.
func (r *RedoLog) Process(t *pmm.Thread) {
	if r.staged == 0 {
		return
	}
	t.Store64(r.hdr.F("checksum"), r.checksum(t, r.staged))
	t.Persist(r.hdr.F("checksum"), 8)
	// The fix: atomic release publication of the valid-entry count.
	t.StoreRelease64(r.hdr.F("nentries"), uint64(r.staged))
	t.Persist(r.hdr.F("nentries"), 8)
	r.apply(t, r.staged)
	// Retire: atomic clear, persisted.
	t.StoreRelease64(r.hdr.F("nentries"), 0)
	t.Persist(r.hdr.F("nentries"), 8)
	r.staged = 0
}

func (r *RedoLog) apply(t *pmm.Thread, n int) {
	for i := 0; i < n; i++ {
		e := r.entries.At(i)
		off := t.Load64(e.F("offset"))
		val := t.Load64(e.F("value"))
		t.Store64(pmm.Addr(off), val)
		t.Persist(pmm.Addr(off), 8)
	}
}

func (r *RedoLog) checksum(t *pmm.Thread, n int) uint64 {
	sum := uint64(0xCBF29CE484222325)
	for i := 0; i < n; i++ {
		e := r.entries.At(i)
		sum = (sum ^ t.Load64(e.F("offset"))) * 0x100000001B3
		sum = (sum ^ t.Load64(e.F("value"))) * 0x100000001B3
	}
	return sum
}

// Recover replays a published-but-unretired redo log. The count is read
// with an acquire load (atomic — no race); entry contents are validated
// under the checksum guard before being applied.
func (r *RedoLog) Recover(t *pmm.Thread) (applied int, valid bool) {
	n := t.LoadAcquire64(r.hdr.F("nentries"))
	if n == 0 || n > RedoCap {
		return 0, true
	}
	valid = false
	t.ChecksumGuard(func() {
		stored := t.Load64(r.hdr.F("checksum"))
		valid = stored == r.checksum(t, int(n))
	})
	if !valid {
		return 0, false
	}
	r.apply(t, int(n))
	t.StoreRelease64(r.hdr.F("nentries"), 0)
	t.Persist(r.hdr.F("nentries"), 8)
	return int(n), true
}
