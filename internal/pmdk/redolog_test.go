package pmdk

import (
	"testing"

	"yashme/internal/engine"
	"yashme/internal/pmm"
	"yashme/internal/progs/progtest"
)

// redoDriver stages counter updates through the redo log; recovery replays
// the log and reads the counters back.
func redoDriver(stats *Stats) func() pmm.Program {
	return func() pmm.Program {
		var pool *Pool
		var rl *RedoLog
		var a, b pmm.Addr
		return pmm.Program{
			Name: "redo",
			Setup: func(h *pmm.Heap) {
				pool = NewPool(h)
				rl = NewRedoLog(pool)
				obj := h.AllocStruct("counters", pmm.Layout{{Name: "a", Size: 8}, {Name: "b", Size: 8}})
				a, b = obj.F("a"), obj.F("b")
			},
			Workers: []func(*pmm.Thread){func(t *pmm.Thread) {
				rl.Stage(t, a, 11)
				rl.Stage(t, b, 22)
				rl.Process(t)
				rl.Stage(t, a, 33)
				rl.Process(t)
			}},
			PostCrash: func(t *pmm.Thread) {
				applied, valid := rl.Recover(t)
				va, vb := t.Load64(a), t.Load64(b)
				if stats == nil {
					return
				}
				stats.RolledBack += applied
				stats.LogValid = valid
				// a is 0, 11 or 33; b is 0 or 22 — anything else is
				// corruption.
				okA := va == 0 || va == 11 || va == 33
				okB := vb == 0 || vb == 22
				if okA && okB {
					stats.Found++
				} else {
					stats.Wrong++
				}
			},
		}
	}
}

// The redo log is written with the paper's FIX (atomic release publication)
// and must be completely race-free — harmful and benign alike — across
// every crash point.
func TestRedoLogNoRaces(t *testing.T) {
	res := engine.Run(redoDriver(nil), engine.Options{Mode: engine.ModelCheck, Prefix: true})
	if res.Report.Count() != 0 {
		t.Fatalf("redo log raced:\n%s", res.Report)
	}
	if res.Report.BenignCount() != 0 {
		t.Fatalf("redo log produced benign races:\n%s", res.Report)
	}
}

// Across every crash point, recovery never observes a corrupt counter: the
// values are always a consistent prefix of the applied updates.
func TestRedoLogNoCorruptionAtAnyCrashPoint(t *testing.T) {
	var stats Stats
	// Workers: 1 — the driver writes the shared stats.
	engine.Run(redoDriver(&stats), engine.Options{Mode: engine.ModelCheck, Prefix: true, Workers: 1})
	if stats.Wrong != 0 {
		t.Fatalf("recovery observed %d corrupt counter states", stats.Wrong)
	}
	if stats.Found == 0 {
		t.Fatal("no scenarios validated")
	}
}

func TestRedoLogFullRunAppliesEverything(t *testing.T) {
	var got uint64
	mk := func() pmm.Program {
		var pool *Pool
		var rl *RedoLog
		var a pmm.Addr
		return pmm.Program{
			Name: "redo-full",
			Setup: func(h *pmm.Heap) {
				pool = NewPool(h)
				rl = NewRedoLog(pool)
				a = h.AllocStruct("obj", pmm.Layout{{Name: "a", Size: 8}}).F("a")
			},
			Workers: []func(*pmm.Thread){func(t *pmm.Thread) {
				rl.Stage(t, a, 99)
				rl.Process(t)
			}},
			PostCrash: func(t *pmm.Thread) {
				rl.Recover(t)
				got = t.Load64(a)
			},
		}
	}
	progtest.RunFull(t, mk)
	if got != 99 {
		t.Fatalf("counter = %d, want 99", got)
	}
}

// A log published but not retired before the crash is replayed by recovery.
func TestRedoLogReplayAfterMidProcessCrash(t *testing.T) {
	var observed uint64
	mk := func() pmm.Program {
		var pool *Pool
		var rl *RedoLog
		var a pmm.Addr
		return pmm.Program{
			Name: "redo-replay",
			Setup: func(h *pmm.Heap) {
				pool = NewPool(h)
				rl = NewRedoLog(pool)
				a = h.AllocStruct("obj", pmm.Layout{{Name: "a", Size: 8}}).F("a")
			},
			Workers: []func(*pmm.Thread){func(t *pmm.Thread) {
				rl.Stage(t, a, 7)
				// Publish but crash before applying: stage+checksum+publish
				// are the first 3 Persist points; the plan below crashes
				// right after publication.
				rl.Process(t)
			}},
			PostCrash: func(t *pmm.Thread) {
				rl.Recover(t)
				observed = t.Load64(a)
			},
		}
	}
	// Crash before the 4th flush/fence point: after nentries was published
	// (Stage persist, checksum persist, nentries persist = points 1..6 as
	// clwb+sfence pairs; scan a few and require at least one replay run
	// where recovery produced the value WITHOUT the worker's apply).
	sawReplay := false
	for c := 1; c <= 10; c++ {
		observed = 0
		res := engine.RunOne(mk, engine.Options{Prefix: true}, c, engine.PersistMinimal, 1)
		_ = res
		if observed == 7 {
			sawReplay = true
		}
	}
	if !sawReplay {
		t.Fatal("no crash point exercised the redo replay path")
	}
}

func TestRedoLogStageOverflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("overflow did not panic")
		}
	}()
	mk := func() pmm.Program {
		var pool *Pool
		var rl *RedoLog
		var a pmm.Addr
		return pmm.Program{
			Name: "redo-overflow",
			Setup: func(h *pmm.Heap) {
				pool = NewPool(h)
				rl = NewRedoLog(pool)
				a = h.AllocStruct("obj", pmm.Layout{{Name: "a", Size: 8}}).F("a")
			},
			Workers: []func(*pmm.Thread){func(t *pmm.Thread) {
				for i := 0; i <= RedoCap; i++ {
					rl.Stage(t, a, uint64(i))
				}
			}},
		}
	}
	engine.RunOne(mk, engine.Options{Prefix: true}, 0, engine.PersistLatest, 1)
}
