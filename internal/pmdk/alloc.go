package pmdk

import (
	"yashme/internal/pmm"
)

// Allocator is a miniature pmemobj object allocator: a persistent bump
// pointer over a pre-reserved arena, with the bump-pointer update staged
// through the redo log so allocation survives crashes atomically
// (libpmemobj routes its allocator metadata through exactly this kind of
// internal operation log). The paper notes that "some of the persistency
// races were found in memory allocators" (§7.2) — this allocator is built
// with the atomic-publication fix, so it contributes none; the deliberately
// broken counterexample lives in P-ART's Epoche code.
//
// A crash between staging and processing leaks at most the in-flight
// object (the classic persistent-allocator tradeoff); the bump pointer
// itself is never torn.
type Allocator struct {
	pool *Pool
	log  *RedoLog
	// hdr: {bump} — the persistent offset of the next free byte.
	hdr   pmm.Struct
	arena pmm.Addr
	size  int
}

// ArenaSize is the default arena capacity in bytes.
const ArenaSize = 4096

// NewAllocator reserves the arena and its metadata during Setup.
func NewAllocator(p *Pool) *Allocator {
	a := &Allocator{
		pool:  p,
		log:   NewRedoLog(p),
		hdr:   p.h.AllocStruct("palloc", pmm.Layout{{Name: "bump", Size: 8}}),
		arena: p.h.AllocRaw("palloc_arena", ArenaSize),
		size:  ArenaSize,
	}
	return a
}

// Alloc reserves size bytes (rounded up to 16 for alignment) and returns
// the arena address, or 0 if the arena is exhausted. The bump update is
// staged and processed through the redo log: recovery either sees the old
// or the new bump value, never a torn one.
func (a *Allocator) Alloc(t *pmm.Thread, size int) pmm.Addr {
	size = (size + 15) &^ 15
	cur := t.LoadAcquire64(a.hdr.F("bump"))
	if int(cur)+size > a.size {
		return 0
	}
	a.log.Stage(t, a.hdr.F("bump"), cur+uint64(size))
	a.log.Process(t)
	return a.arena + pmm.Addr(cur)
}

// Used returns the persistent bump offset.
func (a *Allocator) Used(t *pmm.Thread) uint64 { return t.LoadAcquire64(a.hdr.F("bump")) }

// Recover replays an interrupted bump update.
func (a *Allocator) Recover(t *pmm.Thread) (applied int, valid bool) {
	return a.log.Recover(t)
}
