package pmdk

import (
	"sort"
	"testing"

	"yashme/internal/engine"
	"yashme/internal/pmm"
	"yashme/internal/progs/progtest"
)

func modelCheck(t *testing.T, mk func() pmm.Program) *engine.Result {
	t.Helper()
	return engine.Run(mk, engine.Options{Mode: engine.ModelCheck, Prefix: true, MaxCrashPoints: 60})
}

// Every PMDK example structure exposes exactly one harmful race: the ulog
// entry pointer (Table 4 bug #1, Table 5's per-structure "1" rows).
func TestEachStructureExposesOnlyULogRace(t *testing.T) {
	cases := map[string]func() pmm.Program{
		"Btree":          NewBTreeProg(5, nil),
		"Ctree":          NewCTreeProg(5, nil),
		"RBtree":         NewRBTreeProg(5, nil),
		"hashmap-tx":     NewHashmapTXProg(5, nil),
		"hashmap-atomic": NewHashmapAtomicProg(5, nil),
	}
	for name, mk := range cases {
		res := modelCheck(t, mk)
		fields := res.Report.Fields()
		if len(fields) != 1 || fields[0] != "ulog.entry_ptr" {
			t.Errorf("%s harmful races = %v, want [ulog.entry_ptr]\n%s", name, fields, res.Report)
		}
	}
}

func TestWholeFrameworkDeduplicatesToOneRace(t *testing.T) {
	res := modelCheck(t, NewPMDKProg(3, nil))
	fields := res.Report.Fields()
	if len(fields) != 1 || fields[0] != "ulog.entry_ptr" {
		t.Fatalf("PMDK harmful races = %v, want [ulog.entry_ptr]", fields)
	}
}

// The checksum-guarded log reads are benign races (§7.5).
func TestBenignChecksumRaces(t *testing.T) {
	res := modelCheck(t, NewBTreeProg(5, nil))
	var got []string
	for _, r := range res.Report.Benign() {
		got = append(got, r.Field)
	}
	sort.Strings(got)
	want := append([]string(nil), ExpectedBenign...)
	sort.Strings(want)
	if len(got) != len(want) {
		t.Fatalf("benign races = %v, want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("benign races = %v, want %v", got, want)
		}
	}
}

// Functional: every structure retains all data across a full run.
func TestFunctionalFullRuns(t *testing.T) {
	cases := map[string]func(*Stats) func() pmm.Program{
		"Btree":          func(s *Stats) func() pmm.Program { return NewBTreeProg(8, s) },
		"Ctree":          func(s *Stats) func() pmm.Program { return NewCTreeProg(8, s) },
		"RBtree":         func(s *Stats) func() pmm.Program { return NewRBTreeProg(8, s) },
		"hashmap-tx":     func(s *Stats) func() pmm.Program { return NewHashmapTXProg(8, s) },
		"hashmap-atomic": func(s *Stats) func() pmm.Program { return NewHashmapAtomicProg(8, s) },
	}
	for name, mk := range cases {
		var stats Stats
		progtest.RunFull(t, mk(&stats))
		if stats.Found != 8 || stats.Missing != 0 || stats.Wrong != 0 {
			t.Errorf("%s full-run stats = %+v, want 8/0/0", name, stats)
		}
		if !stats.LogValid {
			t.Errorf("%s log invalid after clean run", name)
		}
	}
}

// Crash consistency: across every crash point and image policy, recovery
// must never observe a WRONG value — a key either round-trips or its
// transaction was rolled back (missing is acceptable mid-insert).
func TestNoWrongValuesAtAnyCrashPoint(t *testing.T) {
	var stats Stats
	// Workers: 1 — the program writes the shared stats.
	res := engine.Run(NewHashmapTXProg(4, &stats),
		engine.Options{Mode: engine.ModelCheck, Prefix: true, MaxCrashPoints: 80, Workers: 1})
	if stats.Wrong != 0 {
		t.Fatalf("recovery observed %d wrong values across %d executions", stats.Wrong, res.ExecutionsRun)
	}
}

// The undo log rolls back uncommitted transactions.
func TestRollbackRestoresPreTxState(t *testing.T) {
	var observed uint64
	var rolledBack int
	mk := func() pmm.Program {
		var pool *Pool
		var x pmm.Addr
		return pmm.Program{
			Name: "rollback",
			Setup: func(h *pmm.Heap) {
				pool = NewPool(h)
				x = h.AllocStruct("obj", pmm.Layout{{Name: "x", Size: 8}}).F("x")
				h.Init(x, 8, 100)
			},
			Workers: []func(*pmm.Thread){func(t *pmm.Thread) {
				tx := pool.TxBegin(t)
				tx.Set(x, 200)
				// No commit: the run ends with the tx open; recovery must
				// roll x back to 100.
			}},
			PostCrash: func(t *pmm.Thread) {
				rb, _ := pool.Recover(t)
				rolledBack = rb
				observed = t.Load64(x)
			},
		}
	}
	progtest.RunFull(t, mk)
	if rolledBack != 1 || observed != 100 {
		t.Fatalf("rollback=%d observed=%d, want 1 and 100", rolledBack, observed)
	}
}

// Committed transactions survive recovery untouched.
func TestCommittedTxSurvives(t *testing.T) {
	var observed uint64
	mk := func() pmm.Program {
		var pool *Pool
		var x pmm.Addr
		return pmm.Program{
			Name: "committed",
			Setup: func(h *pmm.Heap) {
				pool = NewPool(h)
				x = h.AllocStruct("obj", pmm.Layout{{Name: "x", Size: 8}}).F("x")
			},
			Workers: []func(*pmm.Thread){func(t *pmm.Thread) {
				tx := pool.TxBegin(t)
				tx.Set(x, 42)
				tx.Commit()
			}},
			PostCrash: func(t *pmm.Thread) {
				pool.Recover(t)
				observed = t.Load64(x)
			},
		}
	}
	progtest.RunFull(t, mk)
	if observed != 42 {
		t.Fatalf("committed value = %d, want 42", observed)
	}
}

func TestBTreeSplitAndLookup(t *testing.T) {
	var stats Stats
	progtest.RunFull(t, NewBTreeProg(6, &stats)) // > BTreeOrder forces a split
	if stats.Found != 6 {
		t.Fatalf("btree after split found %d of 6: %+v", stats.Found, stats)
	}
}

func TestRBTreeColorsAndUpdates(t *testing.T) {
	var v1, v2 uint64
	mk := func() pmm.Program {
		var pool *Pool
		var rb *RBTree
		return pmm.Program{
			Name: "rb-sem",
			Setup: func(h *pmm.Heap) {
				pool = NewPool(h)
				rb = NewRBTree(pool)
			},
			Workers: []func(*pmm.Thread){func(t *pmm.Thread) {
				rb.Insert(t, 5, 50)
				rb.Insert(t, 3, 30)
				rb.Insert(t, 5, 55) // update
				v1, _ = rb.Get(t, 5)
				v2, _ = rb.Get(t, 3)
			}},
		}
	}
	progtest.RunFull(t, mk)
	if v1 != 55 || v2 != 30 {
		t.Fatalf("rbtree get = %d/%d, want 55/30", v1, v2)
	}
}

func TestHashmapAtomicCount(t *testing.T) {
	var count uint64
	mk := func() pmm.Program {
		var pool *Pool
		var hm *HashmapAtomic
		return pmm.Program{
			Name: "hma-count",
			Setup: func(h *pmm.Heap) {
				pool = NewPool(h)
				hm = NewHashmapAtomic(pool)
			},
			Workers: []func(*pmm.Thread){func(t *pmm.Thread) {
				for k := uint64(1); k <= 5; k++ {
					hm.Put(t, k, k)
				}
				hm.Put(t, 3, 33) // update must not bump the count
				count = hm.Count(t)
			}},
		}
	}
	progtest.RunFull(t, mk)
	if count != 5 {
		t.Fatalf("count = %d, want 5", count)
	}
}

func TestPrefixBeatsBaselineOnSingleExecution(t *testing.T) {
	best := 0
	for seed := int64(1); seed <= 8; seed++ {
		p, b := progtest.BaselineFindsFewer(t, NewBTreeProg(4, nil), seed)
		if d := p - b; d > best {
			best = d
		}
	}
	if best < 1 {
		t.Fatal("no seed exposed prefix-only races on the PMDK btree")
	}
}

// Explicit transaction abort (pmemobj_tx_abort) restores the snapshots in
// place and leaves the pool clean for recovery.
func TestTxAbortRestoresInPlace(t *testing.T) {
	var during, after, recovered uint64
	var rolledBack int
	mk := func() pmm.Program {
		var pool *Pool
		var x pmm.Addr
		return pmm.Program{
			Name: "abort",
			Setup: func(h *pmm.Heap) {
				pool = NewPool(h)
				x = h.AllocStruct("obj", pmm.Layout{{Name: "x", Size: 8}}).F("x")
				h.Init(x, 8, 100)
			},
			Workers: []func(*pmm.Thread){func(t *pmm.Thread) {
				tx := pool.TxBegin(t)
				tx.Set(x, 200)
				during = t.Load64(x)
				tx.Abort()
				after = t.Load64(x)
			}},
			PostCrash: func(t *pmm.Thread) {
				rb, _ := pool.Recover(t)
				rolledBack = rb
				recovered = t.Load64(x)
			},
		}
	}
	progtest.RunFull(t, mk)
	if during != 200 || after != 100 {
		t.Fatalf("during=%d after=%d, want 200 then 100", during, after)
	}
	if rolledBack != 0 {
		t.Fatalf("recovery rolled back %d entries after a clean abort", rolledBack)
	}
	if recovered != 100 {
		t.Fatalf("recovered value = %d, want 100", recovered)
	}
}

// The pool header is validated at open; creation-time fields never race.
func TestPoolHeaderValidation(t *testing.T) {
	var err error
	mk := func() pmm.Program {
		var pool *Pool
		return pmm.Program{
			Name:  "hdr",
			Setup: func(h *pmm.Heap) { pool = NewPool(h) },
			Workers: []func(*pmm.Thread){func(t *pmm.Thread) {
				err = pool.ValidateHeader(t)
			}},
			PostCrash: func(t *pmm.Thread) {
				if e := pool.ValidateHeader(t); e != nil {
					err = e
				}
			},
		}
	}
	// Workers: 1 — the program writes the shared err variable.
	res := engine.Run(mk, engine.Options{Mode: engine.ModelCheck, Prefix: true, Workers: 1})
	if err != nil {
		t.Fatalf("header validation failed: %v", err)
	}
	if res.Report.Count() != 0 || res.Report.BenignCount() != 0 {
		t.Fatalf("header reads raced:\n%s", res.Report)
	}
}
