package pmdk

import (
	"testing"

	"yashme/internal/engine"
	"yashme/internal/pmm"
	"yashme/internal/progs/progtest"
)

// allocDriver allocates objects, writes a sentinel into each, and has
// recovery replay the allocator log and validate the bump pointer.
func allocDriver(nAllocs int, bumpSeen *[]uint64) func() pmm.Program {
	return func() pmm.Program {
		var pool *Pool
		var alloc *Allocator
		return pmm.Program{
			Name: "palloc",
			Setup: func(h *pmm.Heap) {
				pool = NewPool(h)
				alloc = NewAllocator(pool)
			},
			Workers: []func(*pmm.Thread){func(t *pmm.Thread) {
				for i := 0; i < nAllocs; i++ {
					obj := alloc.Alloc(t, 24)
					if obj == 0 {
						break
					}
					// Initialize the object and persist before any use.
					t.Store64(obj, uint64(i)+1)
					t.Persist(obj, 8)
				}
			}},
			PostCrash: func(t *pmm.Thread) {
				alloc.Recover(t)
				if bumpSeen != nil {
					*bumpSeen = append(*bumpSeen, alloc.Used(t))
				}
			},
		}
	}
}

// The allocator is built with the atomic-publication fix: no harmful and
// no benign races at any crash point.
func TestAllocatorNoRaces(t *testing.T) {
	res := engine.Run(allocDriver(4, nil), engine.Options{Mode: engine.ModelCheck, Prefix: true, MaxCrashPoints: 60})
	if res.Report.Count() != 0 {
		t.Fatalf("allocator raced:\n%s", res.Report)
	}
}

// The bump pointer is never torn: across every crash point it is always a
// multiple of the rounded allocation size and within the arena.
func TestAllocatorBumpNeverTorn(t *testing.T) {
	var seen []uint64
	// Workers: 1 — the driver appends to the shared seen slice.
	engine.Run(allocDriver(4, &seen), engine.Options{Mode: engine.ModelCheck, Prefix: true, MaxCrashPoints: 60, Workers: 1})
	if len(seen) == 0 {
		t.Fatal("no recoveries observed")
	}
	for _, b := range seen {
		if b%32 != 0 || b > ArenaSize {
			t.Fatalf("torn or out-of-range bump pointer: %d", b)
		}
	}
}

func TestAllocatorFullRun(t *testing.T) {
	var seen []uint64
	progtest.RunFull(t, allocDriver(3, &seen))
	if len(seen) != 1 || seen[0] != 3*32 {
		t.Fatalf("bump after 3 x 24-byte (rounded 32) allocs = %v, want [96]", seen)
	}
}

func TestAllocatorExhaustion(t *testing.T) {
	var got pmm.Addr = 1
	mk := func() pmm.Program {
		var pool *Pool
		var alloc *Allocator
		return pmm.Program{
			Name: "palloc-full",
			Setup: func(h *pmm.Heap) {
				pool = NewPool(h)
				alloc = NewAllocator(pool)
			},
			Workers: []func(*pmm.Thread){func(t *pmm.Thread) {
				for i := 0; i < ArenaSize/16+1; i++ {
					got = alloc.Alloc(t, 16)
				}
			}},
		}
	}
	progtest.RunFull(t, mk)
	if got != 0 {
		t.Fatal("exhausted arena did not return 0")
	}
}

func TestAllocatorAlignment(t *testing.T) {
	var a1, a2 pmm.Addr
	mk := func() pmm.Program {
		var pool *Pool
		var alloc *Allocator
		return pmm.Program{
			Name: "palloc-align",
			Setup: func(h *pmm.Heap) {
				pool = NewPool(h)
				alloc = NewAllocator(pool)
			},
			Workers: []func(*pmm.Thread){func(t *pmm.Thread) {
				a1 = alloc.Alloc(t, 1)  // rounds to 16
				a2 = alloc.Alloc(t, 17) // rounds to 32
			}},
		}
	}
	progtest.RunFull(t, mk)
	if a2-a1 != 16 {
		t.Fatalf("second allocation offset = %d, want 16", a2-a1)
	}
	if a1%16 != 0 || a2%16 != 0 {
		t.Fatal("allocations not 16-byte aligned")
	}
}
