package pmdk

import "yashme/internal/workload"

// The paper's PMDK evaluation: the five example programs are Table 5 rows
// (random mode, seed 1, 1 prefix / 0 baseline each), and the combined
// "PMDK" workload is the Table 4 random-mode sweep (1 race) and a §7.5
// benign-race program (crash points capped at 60 in that run).
func init() {
	workload.Register(workload.Spec{
		Name: "Btree", Order: 6, Make: NewBTreeProg(4, nil),
		Table5Seed: 1, PaperPrefix: 1,
		Tags: []string{workload.TagTable5, workload.TagPMDK},
	})
	workload.Register(workload.Spec{
		Name: "Ctree", Order: 7, Make: NewCTreeProg(4, nil),
		Table5Seed: 1, PaperPrefix: 1,
		Tags: []string{workload.TagTable5, workload.TagPMDK},
	})
	workload.Register(workload.Spec{
		Name: "RBtree", Order: 8, Make: NewRBTreeProg(4, nil),
		Table5Seed: 1, PaperPrefix: 1,
		Tags: []string{workload.TagTable5, workload.TagPMDK},
	})
	workload.Register(workload.Spec{
		Name: "hashmap-atomic", Order: 9, Make: NewHashmapAtomicProg(4, nil),
		Table5Seed: 1, PaperPrefix: 1,
		Tags: []string{workload.TagTable5, workload.TagPMDK},
	})
	workload.Register(workload.Spec{
		Name: "hashmap-tx", Order: 10, Make: NewHashmapTXProg(4, nil),
		Table5Seed: 1, PaperPrefix: 1,
		Tags: []string{workload.TagTable5, workload.TagPMDK},
	})
	workload.Register(workload.Spec{
		Name: "PMDK", Order: 13, Make: NewPMDKProg(3, nil),
		BenignCrashPoints: 60,
		Tags:              []string{workload.TagTable4, workload.TagBenign, workload.TagFramework},
	})
}
