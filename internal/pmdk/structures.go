package pmdk

import (
	"yashme/internal/pmm"
)

// This file implements the five PMDK example data structures the paper's
// evaluation drives (§7.1): BTree, CTree, RBTree, Hashmap-atomic and
// Hashmap-TX. All persistent mutations of reachable state go through the
// undo-log transaction (tx.Set) or an atomic publication; freshly allocated
// nodes are initialized with plain stores and persisted BEFORE they are
// linked in, which keeps their fields persistency-safe (the link read pulls
// the construction flush into every consistent prefix). The only harmful
// race these structures expose is therefore the pool's ulog entry pointer —
// exactly the paper's Table 4 row and the per-structure "1" entries in
// Table 5.

// nodeRegistry resolves persistent "pointers" (addresses) back to struct
// handles after a crash, playing the role of the fixed PM mapping.
type nodeRegistry map[uint64]pmm.Struct

func (r nodeRegistry) put(s pmm.Struct) uint64 {
	r[uint64(s.Base())] = s
	return uint64(s.Base())
}

func (r nodeRegistry) get(addr uint64) (pmm.Struct, bool) {
	s, ok := r[addr]
	return s, ok
}

// --- BTree (order-4, tx-logged) ---

// BTreeOrder is the number of keys per node in the mini BTree.
const BTreeOrder = 4

var btreeNodeLayout = func() pmm.Layout {
	l := pmm.Layout{{Name: "n", Size: 8}, {Name: "leaf", Size: 8}}
	for i := 0; i < BTreeOrder; i++ {
		l = append(l,
			pmm.FieldDef{Name: bKey(i), Size: 8},
			pmm.FieldDef{Name: bVal(i), Size: 8})
	}
	for i := 0; i <= BTreeOrder; i++ {
		l = append(l, pmm.FieldDef{Name: bChild(i), Size: 8})
	}
	return l
}()

func bKey(i int) string   { return "key" + string(rune('0'+i)) }
func bVal(i int) string   { return "val" + string(rune('0'+i)) }
func bChild(i int) string { return "child" + string(rune('0'+i)) }

// BTree is the PMDK btree example: a single-root order-4 tree where every
// reachable mutation is transaction-logged.
type BTree struct {
	pool  *Pool
	meta  pmm.Struct // "btree_meta" {root}
	nodes nodeRegistry
}

// NewBTree allocates the tree metadata and an empty leaf root during Setup.
func NewBTree(p *Pool) *BTree {
	bt := &BTree{pool: p, meta: p.h.AllocStruct("btree_meta", pmm.Layout{{Name: "root", Size: 8}}), nodes: nodeRegistry{}}
	root := p.h.AllocStruct("btree_node", btreeNodeLayout)
	p.h.Init(root.F("leaf"), 8, 1)
	bt.nodes.put(root)
	p.h.Init(bt.meta.F("root"), 8, uint64(root.Base()))
	return bt
}

// newNode allocates and persists a fresh node (unreachable until linked).
func (bt *BTree) newNode(t *pmm.Thread, leaf bool) pmm.Struct {
	n := bt.pool.h.AllocStruct("btree_node", btreeNodeLayout)
	var lv uint64
	if leaf {
		lv = 1
	}
	t.Store64(n.F("leaf"), lv)
	t.Store64(n.F("n"), 0)
	t.Persist(n.Base(), n.Size())
	bt.nodes.put(n)
	return n
}

// Insert adds a key/value pair. For simplicity the mini BTree splits only
// leaves hanging off a one-level root, which is all the small drivers need.
func (bt *BTree) Insert(t *pmm.Thread, key, val uint64) {
	rootAddr := t.Load64(bt.meta.F("root"))
	root, _ := bt.nodes.get(rootAddr)
	if t.Load64(root.F("leaf")) == 1 {
		if int(t.Load64(root.F("n"))) < BTreeOrder {
			bt.leafInsert(t, root, key, val)
			return
		}
		bt.splitRoot(t, root, key, val)
		return
	}
	// One-level interior root: route to the child, splitting it if full.
	pos, child := bt.routeChild(t, root, key)
	if int(t.Load64(child.F("n"))) >= BTreeOrder {
		bt.splitChild(t, root, child, pos)
		pos, child = bt.routeChild(t, root, key)
	}
	bt.leafInsert(t, child, key, val)
}

func (bt *BTree) routeChild(t *pmm.Thread, root pmm.Struct, key uint64) (int, pmm.Struct) {
	n := int(t.Load64(root.F("n")))
	idx := 0
	for ; idx < n; idx++ {
		if key <= t.Load64(root.F(bKey(idx))) {
			break
		}
	}
	childAddr := t.Load64(root.F(bChild(idx)))
	c, _ := bt.nodes.get(childAddr)
	return idx, c
}

// splitChild splits the full leaf at child position pos, moving its upper
// half into a fresh sibling and tx-logging the interior-node shift.
func (bt *BTree) splitChild(t *pmm.Thread, root, child pmm.Struct, pos int) {
	half := BTreeOrder / 2
	sib := bt.newNode(t, true)
	for i := half; i < BTreeOrder; i++ {
		t.Store64(sib.F(bKey(i-half)), t.Load64(child.F(bKey(i))))
		t.Store64(sib.F(bVal(i-half)), t.Load64(child.F(bVal(i))))
	}
	t.Store64(sib.F("n"), uint64(BTreeOrder-half))
	t.Persist(sib.Base(), sib.Size())
	sep := t.Load64(child.F(bKey(half - 1)))

	tx := bt.pool.TxBegin(t)
	n := int(t.Load64(root.F("n")))
	// Shift interior keys/children right of pos up by one.
	for i := n - 1; i >= pos; i-- {
		tx.Set(root.F(bKey(i+1)), t.Load64(root.F(bKey(i))))
		tx.Set(root.F(bChild(i+2)), t.Load64(root.F(bChild(i+1))))
	}
	tx.Set(root.F(bKey(pos)), sep)
	tx.Set(root.F(bChild(pos+1)), uint64(sib.Base()))
	tx.Set(root.F("n"), uint64(n+1))
	tx.Set(child.F("n"), uint64(half))
	tx.Commit()
}

// leafInsert shifts larger keys right and installs the pair, all tx-logged.
func (bt *BTree) leafInsert(t *pmm.Thread, leaf pmm.Struct, key, val uint64) {
	tx := bt.pool.TxBegin(t)
	n := int(t.Load64(leaf.F("n")))
	i := n - 1
	for ; i >= 0; i-- {
		k := t.Load64(leaf.F(bKey(i)))
		if k <= key {
			break
		}
		tx.Set(leaf.F(bKey(i+1)), k)
		tx.Set(leaf.F(bVal(i+1)), t.Load64(leaf.F(bVal(i))))
	}
	tx.Set(leaf.F(bKey(i+1)), key)
	tx.Set(leaf.F(bVal(i+1)), val)
	tx.Set(leaf.F("n"), uint64(n+1))
	tx.Commit()
}

// splitRoot turns a full leaf root into an interior root with two leaves.
func (bt *BTree) splitRoot(t *pmm.Thread, old pmm.Struct, key, val uint64) {
	left := bt.newNode(t, true)
	right := bt.newNode(t, true)
	half := BTreeOrder / 2
	// Copy halves into the fresh (unreachable) leaves with plain stores.
	for i := 0; i < half; i++ {
		t.Store64(left.F(bKey(i)), t.Load64(old.F(bKey(i))))
		t.Store64(left.F(bVal(i)), t.Load64(old.F(bVal(i))))
	}
	for i := half; i < BTreeOrder; i++ {
		t.Store64(right.F(bKey(i-half)), t.Load64(old.F(bKey(i))))
		t.Store64(right.F(bVal(i-half)), t.Load64(old.F(bVal(i))))
	}
	t.Store64(left.F("n"), uint64(half))
	t.Store64(right.F("n"), uint64(BTreeOrder-half))
	t.Persist(left.Base(), left.Size())
	t.Persist(right.Base(), right.Size())

	sep := t.Load64(old.F(bKey(half - 1)))
	interior := bt.newNode(t, false)
	t.Store64(interior.F("n"), 1)
	t.Store64(interior.F(bKey(0)), sep)
	t.Store64(interior.F(bChild(0)), uint64(left.Base()))
	t.Store64(interior.F(bChild(1)), uint64(right.Base()))
	t.Persist(interior.Base(), interior.Size())

	tx := bt.pool.TxBegin(t)
	tx.Set(bt.meta.F("root"), uint64(interior.Base()))
	tx.Commit()

	if key <= sep {
		bt.leafInsert(t, left, key, val)
	} else {
		bt.leafInsert(t, right, key, val)
	}
}

// Get looks a key up.
func (bt *BTree) Get(t *pmm.Thread, key uint64) (uint64, bool) {
	rootAddr := t.Load64(bt.meta.F("root"))
	n, ok := bt.nodes.get(rootAddr)
	if !ok {
		return 0, false
	}
	for t.Load64(n.F("leaf")) == 0 {
		_, n = bt.routeChild(t, n, key)
	}
	cnt := int(t.Load64(n.F("n")))
	if cnt > BTreeOrder {
		cnt = BTreeOrder
	}
	for i := 0; i < cnt; i++ {
		if t.Load64(n.F(bKey(i))) == key {
			return t.Load64(n.F(bVal(i))), true
		}
	}
	return 0, false
}

// --- CTree (crit-bit-style binary tree, tx-logged) ---

var ctreeNodeLayout = pmm.Layout{
	{Name: "key", Size: 8}, {Name: "value", Size: 8},
	{Name: "left", Size: 8}, {Name: "right", Size: 8},
}

// CTree is the PMDK ctree example: a binary tree keyed by comparison, with
// tx-logged link updates.
type CTree struct {
	pool  *Pool
	meta  pmm.Struct // "ctree_meta" {root}
	nodes nodeRegistry
}

// NewCTree allocates the tree metadata during Setup.
func NewCTree(p *Pool) *CTree {
	return &CTree{pool: p, meta: p.h.AllocStruct("ctree_meta", pmm.Layout{{Name: "root", Size: 8}}), nodes: nodeRegistry{}}
}

func (ct *CTree) newNode(t *pmm.Thread, key, val uint64) uint64 {
	n := ct.pool.h.AllocStruct("ctree_node", ctreeNodeLayout)
	t.Store64(n.F("key"), key)
	t.Store64(n.F("value"), val)
	t.Persist(n.Base(), n.Size())
	return ct.nodes.put(n)
}

// Insert adds or updates a key.
func (ct *CTree) Insert(t *pmm.Thread, key, val uint64) {
	cur := t.Load64(ct.meta.F("root"))
	if cur == 0 {
		addr := ct.newNode(t, key, val)
		tx := ct.pool.TxBegin(t)
		tx.Set(ct.meta.F("root"), addr)
		tx.Commit()
		return
	}
	for {
		n, _ := ct.nodes.get(cur)
		k := t.Load64(n.F("key"))
		if k == key {
			tx := ct.pool.TxBegin(t)
			tx.Set(n.F("value"), val)
			tx.Commit()
			return
		}
		side := "left"
		if key > k {
			side = "right"
		}
		next := t.Load64(n.F(side))
		if next == 0 {
			addr := ct.newNode(t, key, val)
			tx := ct.pool.TxBegin(t)
			tx.Set(n.F(side), addr)
			tx.Commit()
			return
		}
		cur = next
	}
}

// Get looks a key up.
func (ct *CTree) Get(t *pmm.Thread, key uint64) (uint64, bool) {
	cur := t.Load64(ct.meta.F("root"))
	for cur != 0 {
		n, ok := ct.nodes.get(cur)
		if !ok {
			return 0, false
		}
		k := t.Load64(n.F("key"))
		if k == key {
			return t.Load64(n.F("value")), true
		}
		if key < k {
			cur = t.Load64(n.F("left"))
		} else {
			cur = t.Load64(n.F("right"))
		}
	}
	return 0, false
}

// --- RBTree (red-black-flavoured BST, tx-logged) ---

const (
	colorRed   = 0
	colorBlack = 1
)

var rbNodeLayout = pmm.Layout{
	{Name: "key", Size: 8}, {Name: "value", Size: 8},
	{Name: "left", Size: 8}, {Name: "right", Size: 8},
	{Name: "parent", Size: 8}, {Name: "color", Size: 8},
}

// RBTree is the PMDK rbtree example, reproduced as a BST with tx-logged
// color maintenance (full rotation rebalancing is omitted; the persistence
// protocol — which is what races — is the same).
type RBTree struct {
	pool  *Pool
	meta  pmm.Struct // "rbtree_meta" {root}
	nodes nodeRegistry
}

// NewRBTree allocates the tree metadata during Setup.
func NewRBTree(p *Pool) *RBTree {
	return &RBTree{pool: p, meta: p.h.AllocStruct("rbtree_meta", pmm.Layout{{Name: "root", Size: 8}}), nodes: nodeRegistry{}}
}

func (rb *RBTree) newNode(t *pmm.Thread, key, val, parent uint64) uint64 {
	n := rb.pool.h.AllocStruct("rbtree_node", rbNodeLayout)
	t.Store64(n.F("key"), key)
	t.Store64(n.F("value"), val)
	t.Store64(n.F("parent"), parent)
	t.Store64(n.F("color"), colorRed)
	t.Persist(n.Base(), n.Size())
	return rb.nodes.put(n)
}

// Insert adds or updates a key, then recolors the insertion path.
func (rb *RBTree) Insert(t *pmm.Thread, key, val uint64) {
	cur := t.Load64(rb.meta.F("root"))
	if cur == 0 {
		addr := rb.newNode(t, key, val, 0)
		tx := rb.pool.TxBegin(t)
		tx.Set(rb.meta.F("root"), addr)
		n, _ := rb.nodes.get(addr)
		tx.Set(n.F("color"), colorBlack) // root is black
		tx.Commit()
		return
	}
	for {
		n, _ := rb.nodes.get(cur)
		k := t.Load64(n.F("key"))
		if k == key {
			tx := rb.pool.TxBegin(t)
			tx.Set(n.F("value"), val)
			tx.Commit()
			return
		}
		side := "left"
		if key > k {
			side = "right"
		}
		next := t.Load64(n.F(side))
		if next == 0 {
			addr := rb.newNode(t, key, val, cur)
			tx := rb.pool.TxBegin(t)
			tx.Set(n.F(side), addr)
			// Recolor: if the parent was red, blacken it (flattened
			// fix-up; the logged multi-word update is what matters).
			if t.Load64(n.F("color")) == colorRed {
				tx.Set(n.F("color"), colorBlack)
			}
			tx.Commit()
			return
		}
		cur = next
	}
}

// Get looks a key up.
func (rb *RBTree) Get(t *pmm.Thread, key uint64) (uint64, bool) {
	cur := t.Load64(rb.meta.F("root"))
	for cur != 0 {
		n, ok := rb.nodes.get(cur)
		if !ok {
			return 0, false
		}
		k := t.Load64(n.F("key"))
		if k == key {
			return t.Load64(n.F("value")), true
		}
		if key < k {
			cur = t.Load64(n.F("left"))
		} else {
			cur = t.Load64(n.F("right"))
		}
	}
	return 0, false
}

// --- Hashmap-TX (chained buckets, tx-logged) ---

// HashBuckets is the bucket count of both hashmap variants.
const HashBuckets = 8

var hashEntryLayout = pmm.Layout{
	{Name: "key", Size: 8}, {Name: "value", Size: 8}, {Name: "next", Size: 8},
}

// HashmapTX is the PMDK hashmap_tx example: chained buckets where the
// bucket-head publication is tx-logged.
type HashmapTX struct {
	pool    *Pool
	buckets pmm.Array // "hashmap_tx_bucket" {head}
	nodes   nodeRegistry
}

// NewHashmapTX allocates the bucket array during Setup.
func NewHashmapTX(p *Pool) *HashmapTX {
	return &HashmapTX{
		pool:    p,
		buckets: p.h.AllocArray("hashmap_tx_bucket", pmm.Layout{{Name: "head", Size: 8}}, HashBuckets),
		nodes:   nodeRegistry{},
	}
}

func hashBucket(key uint64) int { return int((key * 0x9E3779B97F4A7C15) % HashBuckets) }

// Put inserts or updates a key.
func (hm *HashmapTX) Put(t *pmm.Thread, key, val uint64) {
	b := hm.buckets.At(hashBucket(key))
	cur := t.Load64(b.F("head"))
	for addr := cur; addr != 0; {
		n, _ := hm.nodes.get(addr)
		if t.Load64(n.F("key")) == key {
			tx := hm.pool.TxBegin(t)
			tx.Set(n.F("value"), val)
			tx.Commit()
			return
		}
		addr = t.Load64(n.F("next"))
	}
	n := hm.pool.h.AllocStruct("hashmap_tx_entry", hashEntryLayout)
	t.Store64(n.F("key"), key)
	t.Store64(n.F("value"), val)
	t.Store64(n.F("next"), cur)
	t.Persist(n.Base(), n.Size())
	addr := hm.nodes.put(n)
	tx := hm.pool.TxBegin(t)
	tx.Set(b.F("head"), addr)
	tx.Commit()
}

// Get looks a key up.
func (hm *HashmapTX) Get(t *pmm.Thread, key uint64) (uint64, bool) {
	b := hm.buckets.At(hashBucket(key))
	for addr := t.Load64(b.F("head")); addr != 0; {
		n, ok := hm.nodes.get(addr)
		if !ok {
			return 0, false
		}
		if t.Load64(n.F("key")) == key {
			return t.Load64(n.F("value")), true
		}
		addr = t.Load64(n.F("next"))
	}
	return 0, false
}

// --- Hashmap-atomic (atomic publication + logged element count) ---

// HashmapAtomic is the PMDK hashmap_atomic example: entries are persisted
// and then published with a single atomic release store; the persistent
// element counter, however, goes through the pool's internal log — which is
// how this "atomic" structure still exposes the ulog race (Table 5's
// hashmap-atomic row).
type HashmapAtomic struct {
	pool    *Pool
	buckets pmm.Array  // "hashmap_atomic_bucket" {head}
	count   pmm.Struct // "hashmap_atomic_meta" {count}
	nodes   nodeRegistry
}

// NewHashmapAtomic allocates the bucket array and counter during Setup.
func NewHashmapAtomic(p *Pool) *HashmapAtomic {
	return &HashmapAtomic{
		pool:    p,
		buckets: p.h.AllocArray("hashmap_atomic_bucket", pmm.Layout{{Name: "head", Size: 8}}, HashBuckets),
		count:   p.h.AllocStruct("hashmap_atomic_meta", pmm.Layout{{Name: "count", Size: 8}}),
		nodes:   nodeRegistry{},
	}
}

// Put inserts or updates a key.
func (hm *HashmapAtomic) Put(t *pmm.Thread, key, val uint64) {
	b := hm.buckets.At(hashBucket(key))
	cur := t.LoadAcquire64(b.F("head"))
	for addr := cur; addr != 0; {
		n, _ := hm.nodes.get(addr)
		if t.Load64(n.F("key")) == key {
			t.StoreRelease64(n.F("value"), val)
			t.Persist(n.F("value"), 8)
			return
		}
		addr = t.Load64(n.F("next"))
	}
	n := hm.pool.h.AllocStruct("hashmap_atomic_entry", hashEntryLayout)
	t.Store64(n.F("key"), key)
	t.Store64(n.F("value"), val)
	t.Store64(n.F("next"), cur)
	t.Persist(n.Base(), n.Size())
	addr := hm.nodes.put(n)
	// Atomic publication: release store + persist.
	t.StoreRelease64(b.F("head"), addr)
	t.Persist(b.F("head"), 8)
	// The element counter update uses the pool's internal log.
	tx := hm.pool.TxBegin(t)
	tx.Set(hm.count.F("count"), t.Load64(hm.count.F("count"))+1)
	tx.Commit()
}

// Get looks a key up (acquire-loading the published head).
func (hm *HashmapAtomic) Get(t *pmm.Thread, key uint64) (uint64, bool) {
	b := hm.buckets.At(hashBucket(key))
	for addr := t.LoadAcquire64(b.F("head")); addr != 0; {
		n, ok := hm.nodes.get(addr)
		if !ok {
			return 0, false
		}
		if t.Load64(n.F("key")) == key {
			return t.Load64(n.F("value")), true
		}
		addr = t.Load64(n.F("next"))
	}
	return 0, false
}

// Count reads the logged element counter.
func (hm *HashmapAtomic) Count(t *pmm.Thread) uint64 { return t.Load64(hm.count.F("count")) }
