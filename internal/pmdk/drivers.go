package pmdk

import (
	"yashme/internal/pmm"
)

// Stats captures what a driver's post-crash recovery observed.
type Stats struct {
	Found      int
	Missing    int
	Wrong      int
	RolledBack int
	LogValid   bool
}

// ValueFor is the deterministic value the drivers insert for a key.
func ValueFor(key uint64) uint64 { return key*7 + 3 }

type kvStore interface {
	put(t *pmm.Thread, key, val uint64)
	get(t *pmm.Thread, key uint64) (uint64, bool)
}

// driver builds the common Program shape: insert keys pre-crash, then
// recover the pool and look every key up post-crash. A key may legitimately
// be missing after a crash (the transaction was rolled back); Wrong counts
// the real failures — values that exist but differ.
func driver(name string, numKeys int, stats *Stats, build func(p *Pool) kvStore) func() pmm.Program {
	return func() pmm.Program {
		var pool *Pool
		var store kvStore
		return pmm.Program{
			Name: name,
			Setup: func(h *pmm.Heap) {
				pool = NewPool(h)
				store = build(pool)
			},
			Workers: []func(*pmm.Thread){func(t *pmm.Thread) {
				for k := uint64(1); k <= uint64(numKeys); k++ {
					store.put(t, k, ValueFor(k))
				}
			}},
			PostCrash: func(t *pmm.Thread) {
				rb, valid := pool.Recover(t)
				if stats != nil {
					stats.RolledBack += rb
					stats.LogValid = valid
				}
				for k := uint64(1); k <= uint64(numKeys); k++ {
					v, ok := store.get(t, k)
					if stats == nil {
						continue
					}
					switch {
					case !ok:
						stats.Missing++
					case v != ValueFor(k):
						stats.Wrong++
					default:
						stats.Found++
					}
				}
			},
		}
	}
}

type btreeStore struct{ bt *BTree }

func (s btreeStore) put(t *pmm.Thread, k, v uint64)             { s.bt.Insert(t, k, v) }
func (s btreeStore) get(t *pmm.Thread, k uint64) (uint64, bool) { return s.bt.Get(t, k) }

type ctreeStore struct{ ct *CTree }

func (s ctreeStore) put(t *pmm.Thread, k, v uint64)             { s.ct.Insert(t, k, v) }
func (s ctreeStore) get(t *pmm.Thread, k uint64) (uint64, bool) { return s.ct.Get(t, k) }

type rbtreeStore struct{ rb *RBTree }

func (s rbtreeStore) put(t *pmm.Thread, k, v uint64)             { s.rb.Insert(t, k, v) }
func (s rbtreeStore) get(t *pmm.Thread, k uint64) (uint64, bool) { return s.rb.Get(t, k) }

type hashTXStore struct{ hm *HashmapTX }

func (s hashTXStore) put(t *pmm.Thread, k, v uint64)             { s.hm.Put(t, k, v) }
func (s hashTXStore) get(t *pmm.Thread, k uint64) (uint64, bool) { return s.hm.Get(t, k) }

type hashAtomicStore struct{ hm *HashmapAtomic }

func (s hashAtomicStore) put(t *pmm.Thread, k, v uint64)             { s.hm.Put(t, k, v) }
func (s hashAtomicStore) get(t *pmm.Thread, k uint64) (uint64, bool) { return s.hm.Get(t, k) }

// NewBTreeProg returns the Btree benchmark driver (paper Table 5 row
// "Btree").
func NewBTreeProg(numKeys int, stats *Stats) func() pmm.Program {
	return driver("Btree", numKeys, stats, func(p *Pool) kvStore { return btreeStore{NewBTree(p)} })
}

// NewCTreeProg returns the Ctree benchmark driver.
func NewCTreeProg(numKeys int, stats *Stats) func() pmm.Program {
	return driver("Ctree", numKeys, stats, func(p *Pool) kvStore { return ctreeStore{NewCTree(p)} })
}

// NewRBTreeProg returns the RBtree benchmark driver.
func NewRBTreeProg(numKeys int, stats *Stats) func() pmm.Program {
	return driver("RBtree", numKeys, stats, func(p *Pool) kvStore { return rbtreeStore{NewRBTree(p)} })
}

// NewHashmapTXProg returns the hashmap-tx benchmark driver.
func NewHashmapTXProg(numKeys int, stats *Stats) func() pmm.Program {
	return driver("hashmap-tx", numKeys, stats, func(p *Pool) kvStore { return hashTXStore{NewHashmapTX(p)} })
}

// NewHashmapAtomicProg returns the hashmap-atomic benchmark driver.
func NewHashmapAtomicProg(numKeys int, stats *Stats) func() pmm.Program {
	return driver("hashmap-atomic", numKeys, stats, func(p *Pool) kvStore { return hashAtomicStore{NewHashmapAtomic(p)} })
}

// NewPMDKProg returns the whole-framework driver used for Table 4: all five
// example structures against one pool under the single benchmark name
// "PMDK" (races deduplicate across structures, leaving the one ulog bug).
func NewPMDKProg(numKeys int, stats *Stats) func() pmm.Program {
	return func() pmm.Program {
		var pool *Pool
		var stores []kvStore
		return pmm.Program{
			Name: "PMDK",
			Setup: func(h *pmm.Heap) {
				pool = NewPool(h)
				stores = []kvStore{
					btreeStore{NewBTree(pool)},
					ctreeStore{NewCTree(pool)},
					rbtreeStore{NewRBTree(pool)},
					hashTXStore{NewHashmapTX(pool)},
					hashAtomicStore{NewHashmapAtomic(pool)},
				}
			},
			Workers: []func(*pmm.Thread){func(t *pmm.Thread) {
				for k := uint64(1); k <= uint64(numKeys); k++ {
					for _, s := range stores {
						s.put(t, k, ValueFor(k))
					}
				}
			}},
			PostCrash: func(t *pmm.Thread) {
				rb, valid := pool.Recover(t)
				if stats != nil {
					stats.RolledBack += rb
					stats.LogValid = valid
				}
				for k := uint64(1); k <= uint64(numKeys); k++ {
					for _, s := range stores {
						v, ok := s.get(t, k)
						if stats == nil {
							continue
						}
						switch {
						case !ok:
							stats.Missing++
						case v != ValueFor(k):
							stats.Wrong++
						default:
							stats.Found++
						}
					}
				}
			},
		}
	}
}
