// Package pmdk is a miniature reproduction of the parts of Intel's
// Persistent Memory Development Kit that Yashme exercised (paper §7,
// Table 4): a pool with an undo log (libpmemobj's ulog), the transactional
// API the example data structures use, and checksum validation of log
// contents.
//
// Table 4 bug #1 is here: the pointer to the current ulog entry (ulog.c:561)
// is advanced with a plain 64-bit store. Recovery reads that pointer before
// any checksum can vouch for it — a harmful persistency race. The log
// entries themselves and the log checksum are also written with plain
// stores, but recovery only consumes them inside the checksum validation
// procedure, so Yashme classifies those races as benign (§7.5).
//
// The five example data structures the paper drives PMDK with (BTree,
// CTree, RBTree, Hashmap-atomic, Hashmap-TX) live in structures.go, and
// their benchmark drivers in drivers.go.
package pmdk

import (
	"fmt"

	"yashme/internal/pmm"
)

// ULogCap is the undo-log capacity in entries.
const ULogCap = 64

// LayoutVersion is the pool-format version stamped into the header.
const LayoutVersion = 1

// poolHdrMagic identifies a yashme-pmdk pool (pmemobj's POOL_HDR_SIG).
const poolHdrMagic = uint64(0x504D454D4F424A31) // "PMEMOBJ1"

// Pool is a miniature libpmemobj pool: a versioned header, an undo log and
// a bump allocator over the simulated persistent heap.
type Pool struct {
	h *pmm.Heap
	// hdr: {magic, version} — written at creation, validated at open.
	hdr pmm.Struct
	// ulog header: {entry_ptr, checksum}. entry_ptr is the Table 4 bug.
	ulog pmm.Struct
	// entries: the undo-log records {offset, value, size8}.
	entries pmm.Array
}

// NewPool allocates the pool metadata during Setup. The header is part of
// the initial (fully persisted) image, exactly like pmemobj_create writes
// and syncs it before any transaction runs.
func NewPool(h *pmm.Heap) *Pool {
	p := &Pool{
		h: h,
		hdr: h.AllocStruct("pool_hdr", pmm.Layout{
			{Name: "magic", Size: 8},
			{Name: "version", Size: 8},
		}),
		ulog: h.AllocStruct("ulog", pmm.Layout{
			{Name: "entry_ptr", Size: 8},
			{Name: "checksum", Size: 8},
		}),
		entries: h.AllocArray("ulog_entry", pmm.Layout{
			{Name: "offset", Size: 8},
			{Name: "value", Size: 8},
			{Name: "size8", Size: 8},
		}, ULogCap),
	}
	h.Init(p.hdr.F("magic"), 8, poolHdrMagic)
	h.Init(p.hdr.F("version"), 8, LayoutVersion)
	return p
}

// ValidateHeader is the pool-open sanity check: magic and layout version
// must match. Header fields are creation-time initial values (never
// rewritten), so these reads can never race.
func (p *Pool) ValidateHeader(t *pmm.Thread) error {
	if got := t.Load64(p.hdr.F("magic")); got != poolHdrMagic {
		return fmt.Errorf("pmdk: bad pool magic %#x", got)
	}
	if got := t.Load64(p.hdr.F("version")); got != LayoutVersion {
		return fmt.Errorf("pmdk: unsupported layout version %d", got)
	}
	return nil
}

// Heap exposes the underlying heap for structure allocation.
func (p *Pool) Heap() *pmm.Heap { return p.h }

// Tx is an in-flight undo-log transaction. PMDK transactions snapshot
// ranges before modifying them; on an unclean shutdown the recovery path
// rolls the snapshots back.
type Tx struct {
	pool *Pool
	t    *pmm.Thread
	n    int
}

// TxBegin opens a transaction. The mini-pool supports one transaction at a
// time (the paper's drivers are sequential too).
func (p *Pool) TxBegin(t *pmm.Thread) *Tx {
	return &Tx{pool: p, t: t}
}

// Add snapshots the 8-byte word at addr into the undo log before the caller
// modifies it. The entry is persisted first; then the entry pointer —
// Table 4 bug #1 — is advanced with a PLAIN store (ulog.c:561) and
// persisted.
func (tx *Tx) Add(addr pmm.Addr) {
	if tx.n >= ULogCap {
		panic("pmdk: undo log full")
	}
	t := tx.t
	e := tx.pool.entries.At(tx.n)
	old := t.Load64(addr)
	// Benign races (checksum-guarded consumers): plain entry stores.
	t.Store64(e.F("offset"), uint64(addr))
	t.Store64(e.F("value"), old)
	t.Store64(e.F("size8"), 8)
	t.Persist(e.Base(), e.Size())
	// Benign race: plain checksum store, validated before use.
	t.Store64(tx.pool.ulog.F("checksum"), tx.pool.computeChecksum(t, tx.n+1))
	t.Persist(tx.pool.ulog.F("checksum"), 8)
	// BUG (Table 4 #1): plain store to the ulog entry pointer.
	t.Store64(tx.pool.ulog.F("entry_ptr"), uint64(tx.n+1))
	t.Persist(tx.pool.ulog.F("entry_ptr"), 8)
	tx.n++
}

// Set logs the destination and stores the new value in place (PMDK's
// TX_SET idiom), persisting the data.
func (tx *Tx) Set(addr pmm.Addr, val uint64) {
	tx.Add(addr)
	tx.t.Store64(addr, val)
	tx.t.Persist(addr, 8)
}

// Commit persists all transaction data and invalidates the log by clearing
// the entry pointer. After the clear is persisted, recovery treats the pool
// as clean.
func (tx *Tx) Commit() {
	t := tx.t
	t.Store64(tx.pool.ulog.F("entry_ptr"), 0)
	t.Persist(tx.pool.ulog.F("entry_ptr"), 8)
	tx.n = 0
}

// Abort rolls the transaction back in place (pmemobj_tx_abort): the logged
// snapshots are re-applied newest-first and the log is retired. Unlike a
// crash-time rollback this runs in the same execution, so the restores are
// ordinary stores.
func (tx *Tx) Abort() {
	t := tx.t
	for i := tx.n - 1; i >= 0; i-- {
		e := tx.pool.entries.At(i)
		off := t.Load64(e.F("offset"))
		val := t.Load64(e.F("value"))
		t.Store64(pmm.Addr(off), val)
		t.Persist(pmm.Addr(off), 8)
	}
	t.Store64(tx.pool.ulog.F("entry_ptr"), 0)
	t.Persist(tx.pool.ulog.F("entry_ptr"), 8)
	tx.n = 0
}

// computeChecksum folds the first n log entries into a checksum word using
// loads issued through the thread (so the reads are simulated too).
func (p *Pool) computeChecksum(t *pmm.Thread, n int) uint64 {
	sum := uint64(0xCBF29CE484222325)
	for i := 0; i < n; i++ {
		e := p.entries.At(i)
		sum = (sum ^ t.Load64(e.F("offset"))) * 0x100000001B3
		sum = (sum ^ t.Load64(e.F("value"))) * 0x100000001B3
	}
	return sum
}

// Recover is the post-crash pool-open path. It first reads the undo-log
// entry pointer — the race-observing load for Table 4 bug #1, performed
// BEFORE any checksum can vouch for it — then validates the log under the
// checksum guard and rolls back uncommitted snapshots if the log is intact.
func (p *Pool) Recover(t *pmm.Thread) (rolledBack int, valid bool) {
	if err := p.ValidateHeader(t); err != nil {
		return 0, false
	}
	// Harmful race: entry_ptr read with no guard (pmemobj must read it to
	// find the log before it can validate anything).
	n := t.Load64(p.ulog.F("entry_ptr"))
	if n == 0 || n > ULogCap {
		return 0, true // clean shutdown (or garbage pointer: nothing to do)
	}
	valid = false
	t.ChecksumGuard(func() {
		stored := t.Load64(p.ulog.F("checksum"))
		valid = stored == p.computeChecksum(t, int(n))
		// Sanity-scan the rest of the log region, as pmemobj does when it
		// validates a ulog block: these reads can observe the in-flight
		// entry a crash interrupted — benign races, caught right here.
		for i := int(n); i < ULogCap; i++ {
			e := p.entries.At(i)
			_ = t.Load64(e.F("offset"))
			_ = t.Load64(e.F("value"))
		}
	})
	if !valid {
		return 0, false // corrupt log: discard (data loss, but no bad reads)
	}
	// Roll back newest-first.
	for i := int(n) - 1; i >= 0; i-- {
		e := p.entries.At(i)
		var off, val uint64
		t.ChecksumGuard(func() {
			off = t.Load64(e.F("offset"))
			val = t.Load64(e.F("value"))
		})
		t.Store64(pmm.Addr(off), val)
		t.Persist(pmm.Addr(off), 8)
		rolledBack++
	}
	t.Store64(p.ulog.F("entry_ptr"), 0)
	t.Persist(p.ulog.F("entry_ptr"), 8)
	return rolledBack, true
}

// RecoverGuarded is the Redis-style open path: Redis validates everything
// it reads from persistent memory against checksums before use, so even the
// entry-pointer read happens under the guard (its races are benign; paper
// Table 5 reports zero harmful races for Redis).
func (p *Pool) RecoverGuarded(t *pmm.Thread) (rolledBack int, valid bool) {
	var n uint64
	t.ChecksumGuard(func() {
		n = t.Load64(p.ulog.F("entry_ptr"))
	})
	if n == 0 || n > ULogCap {
		return 0, true
	}
	valid = false
	t.ChecksumGuard(func() {
		stored := t.Load64(p.ulog.F("checksum"))
		valid = stored == p.computeChecksum(t, int(n))
		// Same whole-region sanity scan as Recover, still under the guard:
		// the reads can observe the in-flight entry a crash interrupted.
		for i := int(n); i < ULogCap; i++ {
			e := p.entries.At(i)
			_ = t.Load64(e.F("offset"))
			_ = t.Load64(e.F("value"))
		}
	})
	if !valid {
		return 0, false
	}
	for i := int(n) - 1; i >= 0; i-- {
		e := p.entries.At(i)
		var off, val uint64
		t.ChecksumGuard(func() {
			off = t.Load64(e.F("offset"))
			val = t.Load64(e.F("value"))
		})
		if off == 0 {
			continue
		}
		t.Store64(pmm.Addr(off), val)
		t.Persist(pmm.Addr(off), 8)
		rolledBack++
	}
	t.Store64(p.ulog.F("entry_ptr"), 0)
	t.Persist(p.ulog.F("entry_ptr"), 8)
	return rolledBack, true
}

// ExpectedHarmful is the deduplicated harmful race the paper reports for
// PMDK (Table 4 #1).
var ExpectedHarmful = []string{"ulog.entry_ptr"}

// ExpectedBenign are the checksum-guarded benign races in the PMDK pool
// (§7.5): the log entries and the checksum word itself.
var ExpectedBenign = []string{
	"ulog.checksum",
	"ulog_entry.offset",
	"ulog_entry.value",
}
