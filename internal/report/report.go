// Package report collects, deduplicates and renders persistency-race
// reports. The paper's Tables 3 and 4 identify each bug by the program and
// the field (root cause) that races; races are therefore deduplicated by
// (benchmark, field), matching the paper's manual deduplication ("one
// variable can participate in multiple buggy scenarios", §7.2).
package report

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Race is one persistency-race report: a post-crash load observed a
// non-atomic pre-crash store that a derivable pre-crash execution prefix
// leaves unpersisted.
type Race struct {
	// Benchmark is the program under test.
	Benchmark string `json:"benchmark"`
	// Field is the root cause: the named persistent field the racing store
	// wrote (e.g. "Pair.key").
	Field string `json:"field"`
	// Addr is the racing store's address.
	Addr uint64 `json:"addr"`
	// StoreSeq and StoreTID identify the racing store in the pre-crash
	// commit order.
	StoreSeq uint64 `json:"store_seq"`
	StoreTID int    `json:"store_tid"`
	// ExecID is the pre-crash execution (in the execution stack) that the
	// racing store belongs to.
	ExecID int `json:"exec_id"`
	// Benign marks a race observed only by checksum-validation loads
	// (§7.5): a true persistency race by definition, but the program
	// rejects the corrupt data before use.
	Benign bool `json:"benign,omitempty"`
	// Flushed reports whether the store had been flushed before the crash
	// (true exactly when only the prefix expansion could reveal the race).
	Flushed bool `json:"flushed"`
	// Witness, when execution tracing is enabled, is the race-revealing
	// pre-crash prefix combined with the post-crash observation (§5.1).
	Witness string `json:"witness,omitempty"`
}

func (r Race) String() string {
	kind := "persistency race"
	if r.Benign {
		kind = "benign (checksum-guarded) persistency race"
	}
	return fmt.Sprintf("%s: %s on %s (store seq=%d tid=%d exec=%d flushed-pre-crash=%v)",
		kind, r.Benchmark, r.Field, r.StoreSeq, r.StoreTID, r.ExecID, r.Flushed)
}

// Key renders the dedup identity of a race. Deduplication itself keys on
// the (benchmark, field, benignness) triple directly — see raceKey — so the
// hot path never materializes this string.
func (r Race) Key() string { return r.Benchmark + "\x00" + r.Field + "\x00" + benignTag(r.Benign) }

func benignTag(b bool) string {
	if b {
		return "benign"
	}
	return "harmful"
}

// raceKey is the dedup identity of a race as a comparable value: map
// lookups with it allocate nothing, which matters because every racy
// candidate of every crash scenario passes through Add on its way to the
// handful of deduplicated reports.
type raceKey struct {
	benchmark, field string
	benign           bool
}

func keyOf(r Race) raceKey {
	return raceKey{benchmark: r.Benchmark, field: r.Field, benign: r.Benign}
}

// normCache memoizes NormalizeField for labels that actually carry array
// indices: the same few field labels arrive with every racy candidate of
// every crash scenario, concurrently across worker goroutines. The label
// space is bounded by the workloads' heaps, so the cache is too.
var normCache sync.Map // string → string

// NormalizeField strips array indices from a field label ("seg[3].key" →
// "seg.key"): the paper's tables identify bugs by struct field, not by
// element instance.
func NormalizeField(field string) string {
	if !strings.ContainsRune(field, '[') {
		return field
	}
	if v, ok := normCache.Load(field); ok {
		return v.(string)
	}
	var b strings.Builder
	depth := 0
	for _, r := range field {
		switch {
		case r == '[':
			depth++
		case r == ']' && depth > 0:
			depth--
		case depth == 0:
			b.WriteRune(r)
		}
	}
	n := b.String()
	normCache.Store(field, n)
	return n
}

// Set accumulates deduplicated race reports.
//
// A Set is single-goroutine, merge-only state: it is built by one owner
// (the engine gives every crash scenario its own Set and folds them with
// Merge on the merging goroutine) and is not safe for concurrent use.
// Read accessors (Races, Benign, Fields, String) order races by the
// stable key (Benchmark, Field, benignness) rather than by insertion, and
// duplicate reports keep a canonical representative, so the observable
// output is independent of the order in which sets were merged:
// Merge(a, b) and Merge(b, a) render identically.
type Set struct {
	// keys and races hold the deduplicated races in first-seen insertion
	// order, as parallel slices. Deduplicated sets are tiny (a handful of
	// (benchmark, field) pairs), so a linear scan beats a map — and, more
	// to the point, an empty Set costs nothing: the engine builds one per
	// crash scenario, and a per-scenario map bucket (a Race is >100 bytes)
	// was a measurable share of the exploration's allocations.
	keys  []raceKey
	races []Race
	// idx accelerates lookup if a set ever outgrows the linear scan; built
	// lazily by find, dropped by Clone.
	idx map[raceKey]int
	// RawCount counts every reported race before deduplication.
	RawCount int
}

// smallSetScan is the set size up to which dedup lookups linear-scan
// instead of building idx.
const smallSetScan = 16

// NewSet returns an empty report set.
func NewSet() *Set { return &Set{} }

// find returns the slot of k, or -1 if the set does not contain it.
func (s *Set) find(k raceKey) int {
	if s.idx == nil && len(s.keys) > smallSetScan {
		s.idx = make(map[raceKey]int, len(s.keys))
		for i, kk := range s.keys {
			s.idx[kk] = i
		}
	}
	if s.idx != nil {
		if i, ok := s.idx[k]; ok {
			return i
		}
		return -1
	}
	for i, kk := range s.keys {
		if kk == k {
			return i
		}
	}
	return -1
}

// canonicalBefore reports whether a is the preferred representative over b
// for the same dedup key, making deduplication commutative across merge
// orders. A flushed-pre-crash instance wins (it is the witness that only
// the prefix expansion could reveal the race); ties fall to the earliest
// racing store in the execution stack.
func canonicalBefore(a, b Race) bool {
	if a.Flushed != b.Flushed {
		return a.Flushed
	}
	if a.ExecID != b.ExecID {
		return a.ExecID < b.ExecID
	}
	if a.StoreSeq != b.StoreSeq {
		return a.StoreSeq < b.StoreSeq
	}
	if a.StoreTID != b.StoreTID {
		return a.StoreTID < b.StoreTID
	}
	return a.Addr < b.Addr
}

// Add records a race, deduplicating by (benchmark, field, benignness).
// The field is normalized (array indices stripped) first. A duplicate
// keeps the canonical representative (earliest store) regardless of the
// order reports arrive in. It reports whether the race was new.
func (s *Set) Add(r Race) bool {
	s.RawCount++
	r.Field = NormalizeField(r.Field)
	k := keyOf(r)
	if i := s.find(k); i >= 0 {
		if canonicalBefore(r, s.races[i]) {
			if r.Witness == "" {
				r.Witness = s.races[i].Witness
			}
			s.races[i] = r
		}
		return false
	}
	s.keys = append(s.keys, k)
	s.races = append(s.races, r)
	if s.idx != nil {
		s.idx[k] = len(s.keys) - 1
	}
	return true
}

// Races returns the deduplicated non-benign races in stable (benchmark,
// field) order.
func (s *Set) Races() []Race { return s.filter(false) }

// Benign returns the deduplicated benign (checksum-guarded) races.
func (s *Set) Benign() []Race { return s.filter(true) }

func (s *Set) filter(benign bool) []Race {
	var out []Race
	for i := range s.races {
		if s.races[i].Benign == benign {
			out = append(out, s.races[i])
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Benchmark != out[j].Benchmark {
			return out[i].Benchmark < out[j].Benchmark
		}
		return out[i].Field < out[j].Field
	})
	return out
}

// Count returns the number of deduplicated non-benign races. It allocates
// nothing: the engine polls it after every crash scenario.
func (s *Set) Count() int { return s.count(false) }

// BenignCount returns the number of deduplicated benign races.
func (s *Set) BenignCount() int { return s.count(true) }

func (s *Set) count(benign bool) int {
	n := 0
	for i := range s.races {
		if s.races[i].Benign == benign {
			n++
		}
	}
	return n
}

// Fields returns the sorted set of non-benign racing field names.
func (s *Set) Fields() []string {
	var out []string
	for _, r := range s.Races() {
		out = append(out, r.Field)
	}
	sort.Strings(out)
	return out
}

// AttachWitnesses fills the Witness of every race that lacks one, using the
// supplied builder (typically trace.Recorder.Witness).
func (s *Set) AttachWitnesses(build func(Race) string) {
	for i := range s.races {
		if s.races[i].Witness == "" {
			s.races[i].Witness = build(s.races[i])
		}
	}
}

// Clone returns an independent copy of the set: mutating either side
// afterwards (Add, Merge, AttachWitnesses) leaves the other untouched. The
// engine's checkpoint layer clones the set captured at a snapshot point so
// every resumed scenario starts from the same accumulated reports.
func (s *Set) Clone() *Set {
	c := &Set{RawCount: s.RawCount}
	if len(s.keys) > 0 {
		c.keys = append([]raceKey(nil), s.keys...)
		c.races = append([]Race(nil), s.races...)
	}
	return c
}

// Merge adds every race from other into s. Merging is commutative up to
// the observable output: whatever order sets are merged in, Races(),
// Benign(), Fields() and String() render the same races with the same
// canonical representatives (see Add). s and other must not be mutated
// concurrently; the engine merges on a single goroutine.
func (s *Set) Merge(other *Set) {
	for i := range other.races {
		s.Add(other.races[i])
	}
	s.RawCount += other.RawCount - len(other.races)
}

// String renders the set, one race per line, non-benign first.
func (s *Set) String() string {
	var b strings.Builder
	for _, r := range s.Races() {
		fmt.Fprintln(&b, r)
	}
	for _, r := range s.Benign() {
		fmt.Fprintln(&b, r)
	}
	return b.String()
}
