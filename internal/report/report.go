// Package report collects, deduplicates and renders persistency-race
// reports. The paper's Tables 3 and 4 identify each bug by the program and
// the field (root cause) that races; races are therefore deduplicated by
// (benchmark, field), matching the paper's manual deduplication ("one
// variable can participate in multiple buggy scenarios", §7.2).
package report

import (
	"fmt"
	"sort"
	"strings"
)

// Race is one persistency-race report: a post-crash load observed a
// non-atomic pre-crash store that a derivable pre-crash execution prefix
// leaves unpersisted.
type Race struct {
	// Benchmark is the program under test.
	Benchmark string `json:"benchmark"`
	// Field is the root cause: the named persistent field the racing store
	// wrote (e.g. "Pair.key").
	Field string `json:"field"`
	// Addr is the racing store's address.
	Addr uint64 `json:"addr"`
	// StoreSeq and StoreTID identify the racing store in the pre-crash
	// commit order.
	StoreSeq uint64 `json:"store_seq"`
	StoreTID int    `json:"store_tid"`
	// ExecID is the pre-crash execution (in the execution stack) that the
	// racing store belongs to.
	ExecID int `json:"exec_id"`
	// Benign marks a race observed only by checksum-validation loads
	// (§7.5): a true persistency race by definition, but the program
	// rejects the corrupt data before use.
	Benign bool `json:"benign,omitempty"`
	// Flushed reports whether the store had been flushed before the crash
	// (true exactly when only the prefix expansion could reveal the race).
	Flushed bool `json:"flushed"`
	// Witness, when execution tracing is enabled, is the race-revealing
	// pre-crash prefix combined with the post-crash observation (§5.1).
	Witness string `json:"witness,omitempty"`
}

func (r Race) String() string {
	kind := "persistency race"
	if r.Benign {
		kind = "benign (checksum-guarded) persistency race"
	}
	return fmt.Sprintf("%s: %s on %s (store seq=%d tid=%d exec=%d flushed-pre-crash=%v)",
		kind, r.Benchmark, r.Field, r.StoreSeq, r.StoreTID, r.ExecID, r.Flushed)
}

// Key is the dedup identity of a race.
func (r Race) Key() string { return r.Benchmark + "\x00" + r.Field + "\x00" + benignTag(r.Benign) }

func benignTag(b bool) string {
	if b {
		return "benign"
	}
	return "harmful"
}

// NormalizeField strips array indices from a field label ("seg[3].key" →
// "seg.key"): the paper's tables identify bugs by struct field, not by
// element instance.
func NormalizeField(field string) string {
	if !strings.ContainsRune(field, '[') {
		return field
	}
	var b strings.Builder
	depth := 0
	for _, r := range field {
		switch {
		case r == '[':
			depth++
		case r == ']' && depth > 0:
			depth--
		case depth == 0:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// Set accumulates deduplicated race reports.
//
// A Set is single-goroutine, merge-only state: it is built by one owner
// (the engine gives every crash scenario its own Set and folds them with
// Merge on the merging goroutine) and is not safe for concurrent use.
// Read accessors (Races, Benign, Fields, String) order races by the
// stable key (Benchmark, Field, benignness) rather than by insertion, and
// duplicate reports keep a canonical representative, so the observable
// output is independent of the order in which sets were merged:
// Merge(a, b) and Merge(b, a) render identically.
type Set struct {
	byKey map[string]Race
	// order is the first-seen insertion order, kept so Merge can iterate
	// deterministically; reads use the stable-key order instead.
	order []string
	// RawCount counts every reported race before deduplication.
	RawCount int
}

// NewSet returns an empty report set.
func NewSet() *Set { return &Set{byKey: make(map[string]Race)} }

// canonicalBefore reports whether a is the preferred representative over b
// for the same dedup key, making deduplication commutative across merge
// orders. A flushed-pre-crash instance wins (it is the witness that only
// the prefix expansion could reveal the race); ties fall to the earliest
// racing store in the execution stack.
func canonicalBefore(a, b Race) bool {
	if a.Flushed != b.Flushed {
		return a.Flushed
	}
	if a.ExecID != b.ExecID {
		return a.ExecID < b.ExecID
	}
	if a.StoreSeq != b.StoreSeq {
		return a.StoreSeq < b.StoreSeq
	}
	if a.StoreTID != b.StoreTID {
		return a.StoreTID < b.StoreTID
	}
	return a.Addr < b.Addr
}

// Add records a race, deduplicating by (benchmark, field, benignness).
// The field is normalized (array indices stripped) first. A duplicate
// keeps the canonical representative (earliest store) regardless of the
// order reports arrive in. It reports whether the race was new.
func (s *Set) Add(r Race) bool {
	s.RawCount++
	r.Field = NormalizeField(r.Field)
	k := r.Key()
	if prev, seen := s.byKey[k]; seen {
		if canonicalBefore(r, prev) {
			if r.Witness == "" {
				r.Witness = prev.Witness
			}
			s.byKey[k] = r
		}
		return false
	}
	s.byKey[k] = r
	s.order = append(s.order, k)
	return true
}

// Races returns the deduplicated non-benign races in stable (benchmark,
// field) order.
func (s *Set) Races() []Race { return s.filter(false) }

// Benign returns the deduplicated benign (checksum-guarded) races.
func (s *Set) Benign() []Race { return s.filter(true) }

func (s *Set) filter(benign bool) []Race {
	var out []Race
	for _, k := range s.order {
		if r := s.byKey[k]; r.Benign == benign {
			out = append(out, r)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Benchmark != out[j].Benchmark {
			return out[i].Benchmark < out[j].Benchmark
		}
		return out[i].Field < out[j].Field
	})
	return out
}

// Count returns the number of deduplicated non-benign races.
func (s *Set) Count() int { return len(s.Races()) }

// BenignCount returns the number of deduplicated benign races.
func (s *Set) BenignCount() int { return len(s.Benign()) }

// Fields returns the sorted set of non-benign racing field names.
func (s *Set) Fields() []string {
	var out []string
	for _, r := range s.Races() {
		out = append(out, r.Field)
	}
	sort.Strings(out)
	return out
}

// AttachWitnesses fills the Witness of every race that lacks one, using the
// supplied builder (typically trace.Recorder.Witness).
func (s *Set) AttachWitnesses(build func(Race) string) {
	for k, r := range s.byKey {
		if r.Witness == "" {
			r.Witness = build(r)
			s.byKey[k] = r
		}
	}
}

// Clone returns an independent copy of the set: mutating either side
// afterwards (Add, Merge, AttachWitnesses) leaves the other untouched. The
// engine's checkpoint layer clones the set captured at a snapshot point so
// every resumed scenario starts from the same accumulated reports.
func (s *Set) Clone() *Set {
	c := &Set{
		byKey:    make(map[string]Race, len(s.byKey)),
		order:    append([]string(nil), s.order...),
		RawCount: s.RawCount,
	}
	for k, r := range s.byKey {
		c.byKey[k] = r
	}
	return c
}

// Merge adds every race from other into s. Merging is commutative up to
// the observable output: whatever order sets are merged in, Races(),
// Benign(), Fields() and String() render the same races with the same
// canonical representatives (see Add). s and other must not be mutated
// concurrently; the engine merges on a single goroutine.
func (s *Set) Merge(other *Set) {
	for _, k := range other.order {
		s.Add(other.byKey[k])
	}
	s.RawCount += other.RawCount - len(other.order)
}

// String renders the set, one race per line, non-benign first.
func (s *Set) String() string {
	var b strings.Builder
	for _, r := range s.Races() {
		fmt.Fprintln(&b, r)
	}
	for _, r := range s.Benign() {
		fmt.Fprintln(&b, r)
	}
	return b.String()
}
