package report

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestNormalizeField(t *testing.T) {
	cases := map[string]string{
		"Pair.key":      "Pair.key",
		"seg[3].key":    "seg.key",
		"a[12].b[0].c":  "a.b.c",
		"noindex":       "noindex",
		"trailing[7]":   "trailing",
		"weird]bracket": "weird]bracket",
	}
	for in, want := range cases {
		if got := NormalizeField(in); got != want {
			t.Errorf("NormalizeField(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestAddDeduplicatesByField(t *testing.T) {
	s := NewSet()
	if !s.Add(Race{Benchmark: "b", Field: "seg[0].key"}) {
		t.Fatal("first add not new")
	}
	if s.Add(Race{Benchmark: "b", Field: "seg[5].key"}) {
		t.Fatal("array elements of the same field not deduplicated")
	}
	if !s.Add(Race{Benchmark: "b", Field: "seg[5].value"}) {
		t.Fatal("different field wrongly deduplicated")
	}
	if s.Count() != 2 || s.RawCount != 3 {
		t.Fatalf("count=%d raw=%d", s.Count(), s.RawCount)
	}
}

func TestBenignSeparation(t *testing.T) {
	s := NewSet()
	s.Add(Race{Benchmark: "b", Field: "x", Benign: true})
	s.Add(Race{Benchmark: "b", Field: "y"})
	if s.Count() != 1 || s.BenignCount() != 1 {
		t.Fatalf("count=%d benign=%d", s.Count(), s.BenignCount())
	}
	if s.Races()[0].Field != "y" || s.Benign()[0].Field != "x" {
		t.Fatal("benign/harmful misfiled")
	}
}

func TestDifferentBenchmarksNotDeduplicated(t *testing.T) {
	s := NewSet()
	s.Add(Race{Benchmark: "a", Field: "x"})
	s.Add(Race{Benchmark: "b", Field: "x"})
	if s.Count() != 2 {
		t.Fatalf("count = %d, want 2", s.Count())
	}
}

func TestFieldsSorted(t *testing.T) {
	s := NewSet()
	s.Add(Race{Benchmark: "b", Field: "zz"})
	s.Add(Race{Benchmark: "b", Field: "aa"})
	f := s.Fields()
	if len(f) != 2 || f[0] != "aa" || f[1] != "zz" {
		t.Fatalf("Fields = %v", f)
	}
}

func TestMergePreservesDedup(t *testing.T) {
	a, b := NewSet(), NewSet()
	a.Add(Race{Benchmark: "p", Field: "x"})
	b.Add(Race{Benchmark: "p", Field: "x"})
	b.Add(Race{Benchmark: "p", Field: "y"})
	a.Merge(b)
	if a.Count() != 2 {
		t.Fatalf("merged count = %d, want 2", a.Count())
	}
}

func TestRaceString(t *testing.T) {
	r := Race{Benchmark: "cceh", Field: "Pair.key", StoreSeq: 5, StoreTID: 1, ExecID: 0, Flushed: true}
	s := r.String()
	for _, want := range []string{"cceh", "Pair.key", "seq=5", "flushed-pre-crash=true"} {
		if !strings.Contains(s, want) {
			t.Errorf("Race.String() = %q missing %q", s, want)
		}
	}
	b := Race{Benign: true}
	if !strings.Contains(b.String(), "benign") {
		t.Error("benign race string missing 'benign'")
	}
}

func TestSetString(t *testing.T) {
	s := NewSet()
	s.Add(Race{Benchmark: "b", Field: "x"})
	s.Add(Race{Benchmark: "b", Field: "g", Benign: true})
	out := s.String()
	if !strings.Contains(out, "x") || !strings.Contains(out, "g") {
		t.Fatalf("Set.String = %q", out)
	}
}

// Property: Add is idempotent per normalized key and Count never exceeds
// RawCount.
func TestAddProperties(t *testing.T) {
	f := func(fields []string) bool {
		s := NewSet()
		for _, fl := range fields {
			s.Add(Race{Benchmark: "b", Field: fl})
		}
		if s.Count()+s.BenignCount() > s.RawCount && len(fields) > 0 {
			return false
		}
		before := s.Count()
		for _, fl := range fields {
			s.Add(Race{Benchmark: "b", Field: fl})
		}
		return s.Count() == before
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBenignAndHarmfulSameFieldCoexist(t *testing.T) {
	s := NewSet()
	s.Add(Race{Benchmark: "b", Field: "x", Benign: true})
	s.Add(Race{Benchmark: "b", Field: "x"})
	if s.Count() != 1 || s.BenignCount() != 1 {
		t.Fatalf("counts = %d/%d, want 1/1 (benign and harmful are distinct keys)", s.Count(), s.BenignCount())
	}
}

func TestWitnessSurvivesDedupButNotOverwritten(t *testing.T) {
	s := NewSet()
	s.Add(Race{Benchmark: "b", Field: "x", Witness: "first"})
	s.Add(Race{Benchmark: "b", Field: "x", Witness: "second"})
	if got := s.Races()[0].Witness; got != "first" {
		t.Fatalf("witness = %q, want the first-seen one", got)
	}
	s.AttachWitnesses(func(r Race) string { return "attached" })
	if got := s.Races()[0].Witness; got != "first" {
		t.Fatalf("AttachWitnesses overwrote an existing witness: %q", got)
	}
	s.Add(Race{Benchmark: "b", Field: "y"})
	s.AttachWitnesses(func(r Race) string { return "attached-" + r.Field })
	for _, r := range s.Races() {
		if r.Field == "y" && r.Witness != "attached-y" {
			t.Fatalf("missing witness not attached: %+v", r)
		}
	}
}

// Merge is commutative up to the observable output: whatever order two
// sets are folded in, the races, their canonical representatives, the
// field lists and the raw counts come out identical.
func TestMergeIsCommutative(t *testing.T) {
	mkRace := func(bench, field string, exec int, seq uint64, flushed, benign bool) Race {
		return Race{Benchmark: bench, Field: field, ExecID: exec, StoreSeq: seq,
			Flushed: flushed, Benign: benign, Addr: seq * 8, StoreTID: exec % 2}
	}
	// Overlapping keys with differing representatives, plus disjoint keys
	// and a benign/harmful pair on the same field.
	aRaces := []Race{
		mkRace("cceh", "Pair.key", 0, 10, false, false),
		mkRace("cceh", "Pair.value", 1, 20, true, false),
		mkRace("fastfair", "header.ptr", 0, 5, false, false),
		mkRace("cceh", "Pair.key", 2, 30, true, true),
	}
	bRaces := []Race{
		mkRace("cceh", "Pair.key", 0, 4, true, false),
		mkRace("cceh", "Pair.value", 0, 2, false, false),
		mkRace("memcached", "item.sum", 3, 7, false, true),
		mkRace("fastfair", "header.ptr", 1, 50, true, false),
	}
	build := func(races []Race) *Set {
		s := NewSet()
		for _, r := range races {
			s.Add(r)
		}
		return s
	}
	ab := build(aRaces)
	ab.Merge(build(bRaces))
	ba := build(bRaces)
	ba.Merge(build(aRaces))

	if ab.String() != ba.String() {
		t.Fatalf("Merge(a,b) and Merge(b,a) render differently:\n%s\nvs\n%s", ab, ba)
	}
	abR, baR := ab.Races(), ba.Races()
	if len(abR) != len(baR) {
		t.Fatalf("race counts differ: %d vs %d", len(abR), len(baR))
	}
	for i := range abR {
		if abR[i] != baR[i] {
			t.Errorf("race %d differs: %+v vs %+v", i, abR[i], baR[i])
		}
	}
	abF, baF := ab.Fields(), ba.Fields()
	for i := range abF {
		if abF[i] != baF[i] {
			t.Errorf("field %d differs: %q vs %q", i, abF[i], baF[i])
		}
	}
	if ab.RawCount != ba.RawCount {
		t.Errorf("raw counts differ: %d vs %d", ab.RawCount, ba.RawCount)
	}
}

// The canonical representative is merge-order independent: a flushed
// instance beats an unflushed one, then the earliest store wins.
func TestCanonicalRepresentativePrefersFlushedThenEarliest(t *testing.T) {
	early := Race{Benchmark: "b", Field: "x", ExecID: 0, StoreSeq: 1}
	flushed := Race{Benchmark: "b", Field: "x", ExecID: 5, StoreSeq: 99, Flushed: true}
	for _, order := range [][]Race{{early, flushed}, {flushed, early}} {
		s := NewSet()
		for _, r := range order {
			s.Add(r)
		}
		if got := s.Races()[0]; !got.Flushed || got.StoreSeq != 99 {
			t.Fatalf("representative = %+v, want the flushed instance", got)
		}
	}
}
