package fuzzprog

import (
	"testing"

	"yashme/internal/engine"
	"yashme/internal/report"

	_ "yashme/internal/analysis/all"
)

const fuzzSeeds = 60

// Property: all-atomic programs can never race (Definition 5.1 cond 1):
// any report would be a false positive.
func TestNoFalsePositivesOnAtomicPrograms(t *testing.T) {
	cfg := Default()
	cfg.AllAtomic = true
	for seed := int64(1); seed <= fuzzSeeds; seed++ {
		mk, _ := Generate(cfg, seed)
		res := engine.Run(mk, engine.Options{Mode: engine.ModelCheck, Prefix: true, MaxCrashPoints: 20})
		if res.Report.Count() != 0 || res.Report.BenignCount() != 0 {
			t.Fatalf("seed %d: false positive on all-atomic program:\n%s", seed, res.Report)
		}
	}
}

// Property: every reported race names a field the program actually stored
// to non-atomically.
func TestRacesOnlyOnNonAtomicFields(t *testing.T) {
	for seed := int64(1); seed <= fuzzSeeds; seed++ {
		mk, legal := Generate(Default(), seed)
		res := engine.Run(mk, engine.Options{Mode: engine.ModelCheck, Prefix: true, MaxCrashPoints: 20})
		for _, r := range res.Report.Races() {
			if !legal[report.NormalizeField(r.Field)] {
				t.Fatalf("seed %d: race on %q, which was never stored non-atomically", seed, r.Field)
			}
		}
	}
}

// Property: the baseline (no prefix expansion) never finds races the prefix
// detector misses.
func TestBaselineSubsetOfPrefix(t *testing.T) {
	for seed := int64(1); seed <= fuzzSeeds; seed++ {
		mk, _ := Generate(Default(), seed)
		p := engine.Run(mk, engine.Options{Mode: engine.ModelCheck, Prefix: true, MaxCrashPoints: 15})
		b := engine.Run(mk, engine.Options{Mode: engine.ModelCheck, Prefix: false, MaxCrashPoints: 15})
		pf := map[string]bool{}
		for _, f := range p.Report.Fields() {
			pf[f] = true
		}
		for _, f := range b.Report.Fields() {
			if !pf[f] {
				t.Fatalf("seed %d: baseline-only race on %q", seed, f)
			}
		}
	}
}

// Property: eADR races are a subset of default-mode races (§7.5: "the
// absence of races on a non-eADR system implies the absence of races on
// eADR systems").
func TestEADRSubsetOfDefault(t *testing.T) {
	for seed := int64(1); seed <= fuzzSeeds; seed++ {
		mk, _ := Generate(Default(), seed)
		d := engine.Run(mk, engine.Options{Mode: engine.ModelCheck, Prefix: true, MaxCrashPoints: 15})
		e := engine.Run(mk, engine.Options{Mode: engine.ModelCheck, Prefix: true, EADR: true, MaxCrashPoints: 15})
		df := map[string]bool{}
		for _, f := range d.Report.Fields() {
			df[f] = true
		}
		for _, f := range e.Report.Fields() {
			if !df[f] {
				t.Fatalf("seed %d: eADR-only race on %q", seed, f)
			}
		}
	}
}

// Property: identical seeds produce identical reports (full determinism of
// the scheduler, crash injection and image derivation).
func TestDeterminismAcrossRuns(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		mk, _ := Generate(Default(), seed)
		a := engine.Run(mk, engine.Options{Mode: engine.RandomMode, Prefix: true, Seed: seed, Executions: 3})
		b := engine.Run(mk, engine.Options{Mode: engine.RandomMode, Prefix: true, Seed: seed, Executions: 3})
		if a.Report.String() != b.Report.String() || a.Stats != b.Stats {
			t.Fatalf("seed %d: nondeterministic results", seed)
		}
	}
}

// Robustness: the engine neither panics nor deadlocks on any generated
// program, across modes, policies and multi-crash exploration.
func TestEngineRobustness(t *testing.T) {
	cfg := Config{Objects: 4, Workers: 3, OpsPerWorker: 16}
	for seed := int64(1); seed <= 30; seed++ {
		mk, _ := Generate(cfg, seed)
		engine.Run(mk, engine.Options{Mode: engine.ModelCheck, Prefix: true, MaxCrashPoints: 10,
			RecoveryCrashes: 2, TornValues: true,
			PersistPolicies: []engine.PersistPolicy{engine.PersistLatest, engine.PersistMinimal, engine.PersistRandom}})
		engine.Run(mk, engine.Options{Mode: engine.RandomMode, Prefix: true, Seed: seed, Executions: 5})
	}
}

// Generator sanity: the same seed generates the same program structure.
func TestGeneratorDeterminism(t *testing.T) {
	_, fieldsA := Generate(Default(), 7)
	_, fieldsB := Generate(Default(), 7)
	if len(fieldsA) != len(fieldsB) {
		t.Fatal("generator nondeterministic")
	}
	for f := range fieldsA {
		if !fieldsB[f] {
			t.Fatalf("field sets differ on %q", f)
		}
	}
}

// Property: on programs with no atomic stores, every cross-failure race
// (XFDetector baseline) is also a Yashme persistency race — reading an
// unpersisted non-atomic store violates Definition 5.1 conditions 3/4 a
// fortiori. Neither inclusion holds in general: Yashme alone sees
// flushed-store races, while the cross-failure detector alone flags
// unpersisted ATOMIC stores (which can never be persistency races) — the
// "different bug classes" point of §1.
func TestCrossFailureSubsetOfYashme(t *testing.T) {
	cfg := Default()
	cfg.Workers = 1 // the baseline checks a single given execution
	cfg.NoAtomics = true
	for seed := int64(1); seed <= 40; seed++ {
		mk, _ := Generate(cfg, seed)
		xfdRes := engine.Run(mk, engine.Options{
			Mode:            engine.ModelCheck,
			PersistPolicies: []engine.PersistPolicy{engine.PersistLatest},
			Analyses:        []string{"xfd"},
			Seed:            1,
		})
		xfdFields := map[string]bool{}
		for _, r := range xfdRes.Report.Races() {
			xfdFields[r.Field] = true
		}
		res := engine.Run(mk, engine.Options{Mode: engine.ModelCheck, Prefix: true})
		yashmeFields := map[string]bool{}
		for _, f := range res.Report.Fields() {
			yashmeFields[f] = true
		}
		for f := range xfdFields {
			if !yashmeFields[f] {
				t.Fatalf("seed %d: cross-failure race on %q not found by yashme", seed, f)
			}
		}
	}
}
