// Package fuzzprog generates random persistent-memory programs for
// property-based testing of the engine and detector. The generator can be
// constrained to produce programs with known ground truth:
//
//   - AllAtomic programs perform only atomic stores and locked RMWs, so any
//     race report is a false positive (Definition 5.1 condition 1);
//   - unconstrained programs exercise the full operation surface, where the
//     invariants are relational: the baseline never finds more than the
//     prefix detector, eADR never finds more than the default mode, every
//     reported race names a field the program actually stored to
//     non-atomically, and identical seeds yield identical reports.
package fuzzprog

import (
	"fmt"
	"math/rand"

	"yashme/internal/pmm"
)

// Config bounds the generated program.
type Config struct {
	// Objects is the number of 4-field persistent structs.
	Objects int
	// Workers is the number of pre-crash threads.
	Workers int
	// OpsPerWorker bounds each thread's operation count.
	OpsPerWorker int
	// AllAtomic restricts stores to atomic operations (ground truth: no
	// persistency races can exist).
	AllAtomic bool
	// NoAtomics replaces every atomic operation with its plain counterpart
	// (ground truth: cross-failure races coincide with unflushed-read
	// persistency races, so the XFDetector baseline's findings are a
	// subset of Yashme's).
	NoAtomics bool
}

// Default returns a moderate configuration.
func Default() Config {
	return Config{Objects: 3, Workers: 2, OpsPerWorker: 12}
}

// fieldNames are the per-object field labels.
var fieldNames = [4]string{"f0", "f1", "f2", "f3"}

// op is one generated operation. Kinds: 0 store, 1 atomic store, 2 release
// store, 3 load, 4 clflush, 5 clwb, 6 sfence, 7 mfence, 8 cas, 9 memset.
type op struct {
	kind  int
	obj   int
	field int
	val   uint64
}

// Generate builds a random program for the seed. The returned constructor
// is engine-compatible: every call rebuilds identical closure state, so the
// engine can re-instantiate scenarios. NonAtomicFields lists the normalized
// labels the program may store to non-atomically (the only legal race
// subjects).
func Generate(cfg Config, seed int64) (mk func() pmm.Program, nonAtomicFields map[string]bool) {
	// Pre-generate the op scripts so every instantiation is identical.
	rng := rand.New(rand.NewSource(seed))
	nonAtomicFields = make(map[string]bool)
	scripts := make([][]op, cfg.Workers)
	for w := range scripts {
		n := 1 + rng.Intn(cfg.OpsPerWorker)
		for i := 0; i < n; i++ {
			o := op{
				kind:  rng.Intn(10),
				obj:   rng.Intn(cfg.Objects),
				field: rng.Intn(len(fieldNames)),
				val:   rng.Uint64(),
			}
			if cfg.AllAtomic {
				switch o.kind {
				case 0:
					o.kind = 1 // plain store → atomic store
				case 9:
					o.kind = 2 // memset → release store
				}
			}
			if cfg.NoAtomics {
				switch o.kind {
				case 1, 2, 8:
					o.kind = 0 // atomic store / release / CAS → plain store
				}
			}
			if o.kind == 0 || o.kind == 9 {
				if o.kind == 9 {
					for _, f := range fieldNames {
						nonAtomicFields[objLabel(o.obj)+"."+f] = true
					}
				} else {
					nonAtomicFields[objLabel(o.obj)+"."+fieldNames[o.field]] = true
				}
			}
			scripts[w] = append(scripts[w], o)
		}
	}
	// The recovery script reads every field of every object.
	mk = func() pmm.Program {
		objs := make([]pmm.Struct, cfg.Objects)
		return pmm.Program{
			Name: fmt.Sprintf("fuzz-%d", seed),
			Setup: func(h *pmm.Heap) {
				layout := pmm.Layout{
					{Name: "f0", Size: 8}, {Name: "f1", Size: 8},
					{Name: "f2", Size: 8}, {Name: "f3", Size: 8},
				}
				for i := range objs {
					objs[i] = h.AllocStruct(objLabel(i), layout)
				}
			},
			Workers: workersFor(scripts, &objs),
			PostCrash: func(t *pmm.Thread) {
				for _, o := range objs {
					for _, f := range fieldNames {
						t.Load64(o.F(f))
					}
				}
			},
		}
	}
	return mk, nonAtomicFields
}

func objLabel(i int) string { return fmt.Sprintf("obj%d", i) }

// workersFor turns op scripts into thread functions over the shared objs
// slice (filled during Setup).
func workersFor(scripts [][]op, objs *[]pmm.Struct) []func(*pmm.Thread) {
	var fns []func(*pmm.Thread)
	for _, script := range scripts {
		script := script
		fns = append(fns, func(t *pmm.Thread) {
			for _, o := range script {
				obj := (*objs)[o.obj]
				addr := obj.F(fieldNames[o.field])
				switch o.kind {
				case 0:
					t.Store64(addr, o.val)
				case 1:
					t.StoreAtomic(addr, 8, o.val)
				case 2:
					t.StoreRelease64(addr, o.val)
				case 3:
					t.Load64(addr)
				case 4:
					t.CLFlush(addr)
				case 5:
					t.CLWB(addr)
				case 6:
					t.SFence()
				case 7:
					t.MFence()
				case 8:
					t.CAS64(addr, 0, o.val)
				case 9:
					t.Memset(obj.Base(), obj.Size(), byte(o.val))
				}
			}
		})
	}
	return fns
}
