// Interned copy-on-write clock storage.
//
// Yashme's σ is globally unique and strictly increasing (§6), which buys
// two representation wins over one-heap-clock-per-store:
//
//   - Epoch: a store commit is fully identified by the pair (τ, σ) of the
//     committing thread and its global sequence number. Every clock in the
//     simulation is a join of commit-time thread-clock snapshots, and
//     thread clocks are monotone, so any clock whose τ-component reaches σ
//     necessarily includes the ENTIRE clock of the commit (τ, σ) — the
//     commit-closure property. A packed 64-bit epoch compare therefore
//     answers "is this store's whole clock already covered?" in O(1),
//     letting the detector skip the component-wise join outright.
//
//   - Interning: a thread's clock only changes at synchronizing events
//     (acquire loads, fences, spawns), so all stores it commits between two
//     such events share one immutable snapshot. The Arena deduplicates
//     those snapshots and hands out dense int32 Refs; records, the
//     detector's per-line flush clocks and the machine's per-thread state
//     carry Refs, making Detector.Clone and Machine.Clone flat slice
//     copies (the same capped-view trick as the store arena).
//
// A Stamp pairs a Ref with the one component that differs from the
// snapshot — the committing store's own epoch — so a commit allocates
// nothing at all: the logical clock of Stamp{Base, Self} is
// At(Base) ⊔ {Self.TID(): Self.Seq()}.
package vclock

import (
	"encoding/binary"
	"fmt"
)

// Epoch packs a store commit's identity (τ, σ) into one word:
// tid in the top 16 bits, seq in the low 48. The zero Epoch means "no
// component" (thread 0's seq 0, which never names a real operation).
type Epoch uint64

const (
	epochSeqBits = 48
	maxEpochSeq  = Seq(1)<<epochSeqBits - 1
)

// NewEpoch packs (t, s). It panics when either half would not round-trip —
// the simulator never runs 2^16 threads or 2^48 operations, so an
// out-of-range value is a corrupt input, not a clock.
func NewEpoch(t TID, s Seq) Epoch {
	if t < 0 || t >= maxTID {
		panic(fmt.Sprintf("vclock: epoch thread id %d out of range [0, %d)", t, maxTID))
	}
	if s > maxEpochSeq {
		panic(fmt.Sprintf("vclock: epoch seq %d exceeds %d", s, maxEpochSeq))
	}
	return Epoch(uint64(t)<<epochSeqBits | uint64(s))
}

// TID returns the packed thread id.
func (e Epoch) TID() TID { return TID(e >> epochSeqBits) }

// Seq returns the packed sequence number. Zero means "no component".
func (e Epoch) Seq() Seq { return Seq(e) & maxEpochSeq }

// HappensBefore reports whether the operation the epoch names is included
// in v — the O(1) compare that replaces a component-wise walk whenever the
// question is about a single commit.
func (e Epoch) HappensBefore(v VC) bool { return e.Seq() <= v.Get(e.TID()) }

// Ref addresses an immutable clock snapshot in an Arena. Ref 0 is always
// the empty clock, so the zero value of every Ref-carrying structure is a
// valid "never synchronized" state.
type Ref int32

// Stamp is a logical clock in interned form: the snapshot Base joined with
// the single component Self. Self is the committing operation's own epoch
// (zero when the stamp is a plain snapshot), and by construction
// Self.Seq() >= At(Base).Get(Self.TID()) — a thread's own component in its
// snapshot can never be ahead of its latest operation.
type Stamp struct {
	Base Ref
	Self Epoch
}

// Arena holds deduplicated immutable clock snapshots. Entries are
// append-only and never mutated after interning, so Clone is a capped
// slice view and clones share backing storage until either side appends.
//
// An owned Arena (the -clockintern=false escape hatch) appends a private
// materialized copy on every Intern instead of deduplicating, reproducing
// the one-clock-per-record cost model of the previous representation; the
// epoch join fast path is disabled there so the two modes differ only in
// cost counters, never in observable results.
type Arena struct {
	entries []VC // entries[0] is the canonical empty clock (nil)
	// lookup maps canonical clock bytes to their Ref. It is rebuilt lazily
	// after Clone/AdoptView (lookupN is the high-water mark of indexed
	// entries), so snapshot clones that never intern pay nothing.
	lookup  map[string]Ref
	lookupN int
	key     []byte // scratch for canonical keys
	buf     VC     // scratch: join left operand / materialized stamps
	buf2    VC     // scratch: join right operand
	owned   bool

	// Cost counters, harvested (and reset) via TakeCounters. Clones start
	// at zero so resumed scenarios count only their own work.
	interned    int64
	epochHits   int64
	epochMisses int64
}

// NewArena returns an empty arena. owned selects the always-append escape
// hatch over interning.
func NewArena(owned bool) *Arena {
	return &Arena{entries: make([]VC, 1, 16), lookupN: 1, owned: owned}
}

// Owned reports whether the arena is in the always-append mode.
func (a *Arena) Owned() bool { return a.owned }

// Len returns the number of snapshots, counting the canonical empty clock.
func (a *Arena) Len() int { return len(a.entries) }

// At returns the snapshot a Ref addresses. The result is immutable — it is
// shared by every holder of the Ref and by every clone of the arena.
func (a *Arena) At(r Ref) VC { return a.entries[r] }

// canonical trims trailing zero components, the unique dense form of a
// clock (zero and absent components are indistinguishable).
func canonical(v VC) VC {
	n := len(v)
	for n > 0 && v[n-1] == 0 {
		n--
	}
	return v[:n]
}

// keyOf renders the canonical form into the scratch key buffer.
func (a *Arena) keyOf(v VC) []byte {
	need := 8 * len(v)
	if cap(a.key) < need {
		a.key = make([]byte, need)
	}
	k := a.key[:need]
	for i, s := range v {
		binary.LittleEndian.PutUint64(k[8*i:], uint64(s))
	}
	return k
}

// index brings the lookup map up to date with entries appended since the
// last rebuild (or since a Clone/AdoptView dropped the map).
func (a *Arena) index() {
	if a.lookup == nil {
		a.lookup = make(map[string]Ref, len(a.entries))
		a.lookupN = 1
	}
	for ; a.lookupN < len(a.entries); a.lookupN++ {
		a.lookup[string(a.keyOf(a.entries[a.lookupN]))] = Ref(a.lookupN)
	}
}

// Intern returns the Ref of v's canonical form, appending a private copy
// if (in interning mode) no identical snapshot exists yet. v is not
// retained; the caller may keep mutating it.
func (a *Arena) Intern(v VC) Ref {
	w := canonical(v)
	if len(w) == 0 {
		return 0
	}
	if !a.owned {
		a.index()
		if r, ok := a.lookup[string(a.keyOf(w))]; ok {
			return r
		}
	}
	r := Ref(len(a.entries))
	a.entries = append(a.entries, w.Clone())
	a.interned++
	if !a.owned {
		a.lookup[string(a.keyOf(w))] = r
		a.lookupN = len(a.entries)
	}
	return r
}

// Reintern materializes a stamp and appends it as a private snapshot —
// the owned mode's per-record clock copy. The returned stamp addresses the
// new snapshot with the same self epoch (now redundantly folded in).
func (a *Arena) Reintern(st Stamp) Stamp {
	a.buf = a.MaterializeInto(a.buf[:0], st)
	return Stamp{Base: a.Intern(a.buf), Self: st.Self}
}

// Get returns the component for t of the clock a stamp denotes.
func (a *Arena) Get(st Stamp, t TID) Seq {
	s := a.entries[st.Base].Get(t)
	if st.Self.TID() == t && st.Self.Seq() > s {
		s = st.Self.Seq()
	}
	return s
}

// Contains reports whether operation (t, s) is included in the clock a
// stamp denotes, consulting the self epoch before the snapshot.
func (a *Arena) Contains(st Stamp, t TID, s Seq) bool {
	if s == 0 {
		return true
	}
	if st.Self.TID() == t && s <= st.Self.Seq() {
		return true
	}
	return s <= a.entries[st.Base].Get(t)
}

// RefGet returns the component for t of the snapshot r addresses.
func (a *Arena) RefGet(r Ref, t TID) Seq { return a.entries[r].Get(t) }

// RefContains reports whether operation (t, s) is included in snapshot r.
func (a *Arena) RefContains(r Ref, t TID, s Seq) bool {
	return a.entries[r].Contains(t, s)
}

// MaterializeInto writes the full clock a stamp denotes into buf
// (reusing its capacity) and returns it.
func (a *Arena) MaterializeInto(buf VC, st Stamp) VC {
	base := a.entries[st.Base]
	n := len(base)
	if t := int(st.Self.TID()); st.Self.Seq() != 0 && t >= n {
		n = t + 1
	}
	if cap(buf) < n {
		buf = make(VC, n)
	} else {
		buf = buf[:n]
		for i := range buf {
			buf[i] = 0
		}
	}
	copy(buf, base)
	if s := st.Self.Seq(); s != 0 && s > buf[st.Self.TID()] {
		buf[st.Self.TID()] = s
	}
	return buf
}

// Materialize returns a freshly allocated full clock for a stamp.
func (a *Arena) Materialize(st Stamp) VC {
	return a.MaterializeInto(nil, st).Clone()
}

// JoinStamp joins the clock of stamp st into snapshot r and returns the
// Ref of the result. The epoch fast path: when st's self epoch is already
// included in At(r), the commit-closure property guarantees st's whole
// clock is too, so the join is a no-op and no vector is touched.
func (a *Arena) JoinStamp(r Ref, st Stamp) Ref {
	if !a.owned && st.Self.Seq() != 0 {
		if st.Self.HappensBefore(a.entries[r]) {
			a.epochHits++
			return r
		}
		a.epochMisses++
	}
	return a.joinSlow(a.entries[r], st)
}

// JoinThread joins stamp st into a thread's clock (snapshot base plus the
// thread's own latest seq) and returns the new base Ref. Same epoch fast
// path as JoinStamp, additionally covered by the thread's self component.
func (a *Arena) JoinThread(base Ref, t TID, self Seq, st Stamp) Ref {
	if !a.owned && st.Self.Seq() != 0 {
		covered := st.Self.HappensBefore(a.entries[base])
		if !covered && st.Self.TID() == t {
			covered = st.Self.Seq() <= self
		}
		if covered {
			a.epochHits++
			return base
		}
		a.epochMisses++
	}
	return a.joinSlow(a.entries[base], st)
}

// joinSlow materializes st, joins it with left in scratch space and
// interns the result.
func (a *Arena) joinSlow(left VC, st Stamp) Ref {
	a.buf2 = a.MaterializeInto(a.buf2[:0], st)
	a.buf = append(a.buf[:0], left...)
	v := a.buf
	v.Join(a.buf2)
	a.buf = v
	return a.Intern(a.buf)
}

// Clone returns an arena sharing this one's snapshots read-only: the entry
// slice is capped so either side's next append reallocates privately, the
// lookup map is rebuilt lazily on the clone's first Intern, and the cost
// counters start at zero so a resumed scenario counts only its own work.
func (a *Arena) Clone() *Arena {
	return &Arena{
		entries: a.entries[:len(a.entries):len(a.entries)],
		lookupN: 1,
		owned:   a.owned,
	}
}

// View returns the current snapshot list as a capped read-only slice, for
// freezing into a checkpoint journal.
func (a *Arena) View() []VC { return a.entries[:len(a.entries):len(a.entries)] }

// AdoptView replaces the arena's snapshots with a frozen View — the
// checkpoint-replay graft. Refs recorded by the journal's producer resolve
// identically in the adopting arena because entries are append-only.
func (a *Arena) AdoptView(entries []VC) {
	a.entries = entries
	a.lookup = nil
	a.lookupN = 1
}

// FootprintBytes estimates the heap bytes the arena's snapshots retain
// (for checkpoint accounting).
func (a *Arena) FootprintBytes() int64 {
	n := int64(len(a.entries)) * int64(24) // slice headers
	for _, e := range a.entries {
		n += int64(len(e)) * 8
	}
	return n
}

// TakeCounters returns the interned/epoch-hit/epoch-miss counts
// accumulated since the last call and resets them, so harvesting at every
// absorb point never double-counts.
func (a *Arena) TakeCounters() (interned, hits, misses int64) {
	interned, hits, misses = a.interned, a.epochHits, a.epochMisses
	a.interned, a.epochHits, a.epochMisses = 0, 0, 0
	return
}
