package vclock

import (
	"testing"
	"testing/quick"
)

func TestGetOnNilAndEmpty(t *testing.T) {
	var nilVC VC
	if got := nilVC.Get(3); got != 0 {
		t.Fatalf("nil VC Get = %d, want 0", got)
	}
	if got := New().Get(0); got != 0 {
		t.Fatalf("empty VC Get = %d, want 0", got)
	}
}

func TestSetAndGet(t *testing.T) {
	v := New()
	v.Set(1, 10)
	v.Set(2, 5)
	if v.Get(1) != 10 || v.Get(2) != 5 || v.Get(3) != 0 {
		t.Fatalf("unexpected components: %v", v)
	}
	v.Set(1, 10) // equal is fine
	v.Set(1, 11)
	if v.Get(1) != 11 {
		t.Fatalf("Set did not raise component: %v", v)
	}
}

func TestSetRegressionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Set lowering a component did not panic")
		}
	}()
	v := New()
	v.Set(1, 10)
	v.Set(1, 9)
}

func TestJoin(t *testing.T) {
	a := VC{1: 5, 2: 9}
	b := VC{1: 7, 3: 2}
	a.Join(b)
	want := VC{1: 7, 2: 9, 3: 2}
	for tid, s := range want {
		if a.Get(TID(tid)) != s {
			t.Fatalf("after join, component %d = %d, want %d", tid, a.Get(TID(tid)), s)
		}
	}
}

func TestCloneIsIndependent(t *testing.T) {
	a := VC{1: 5}
	c := a.Clone()
	c.Set(1, 6)
	if a.Get(1) != 5 {
		t.Fatalf("mutating clone changed original: %v", a)
	}
}

func TestContains(t *testing.T) {
	v := VC{1: 5}
	cases := []struct {
		tid  TID
		seq  Seq
		want bool
	}{
		{1, 5, true},
		{1, 4, true},
		{1, 6, false},
		{2, 1, false},
		{2, 0, true}, // seq 0 = never happened, trivially contained
	}
	for _, c := range cases {
		if got := v.Contains(c.tid, c.seq); got != c.want {
			t.Errorf("Contains(%d,%d) = %v, want %v", c.tid, c.seq, got, c.want)
		}
	}
}

func TestLeqAll(t *testing.T) {
	a := VC{1: 3, 2: 4}
	b := VC{1: 3, 2: 5, 3: 1}
	if !a.LeqAll(b) {
		t.Fatal("a should be <= b")
	}
	if b.LeqAll(a) {
		t.Fatal("b should not be <= a")
	}
	if !New().LeqAll(a) {
		t.Fatal("empty clock should be <= anything")
	}
}

func TestMax(t *testing.T) {
	if got := New().Max(); got != 0 {
		t.Fatalf("Max of empty = %d, want 0", got)
	}
	if got := (VC{1: 3, 2: 9, 3: 4}).Max(); got != 9 {
		t.Fatalf("Max = %d, want 9", got)
	}
}

func TestStringDeterministic(t *testing.T) {
	v := VC{3: 1, 1: 2, 2: 3}
	want := "{1:2 2:3 3:1}"
	if got := v.String(); got != want {
		t.Fatalf("String = %q, want %q", got, want)
	}
	if got := New().String(); got != "{}" {
		t.Fatalf("empty String = %q", got)
	}
}

// Property: Join is idempotent, commutative in effect, and monotone.
func TestJoinProperties(t *testing.T) {
	mk := func(xs []uint8) VC {
		v := New()
		for i, x := range xs {
			if x > 0 {
				v.Set(TID(i), Seq(x))
			}
		}
		return v
	}
	idempotent := func(xs []uint8) bool {
		a := mk(xs)
		b := a.Clone()
		a.Join(b)
		return a.LeqAll(b) && b.LeqAll(a)
	}
	if err := quick.Check(idempotent, nil); err != nil {
		t.Errorf("join not idempotent: %v", err)
	}
	commutative := func(xs, ys []uint8) bool {
		ab := mk(xs)
		ab.Join(mk(ys))
		ba := mk(ys)
		ba.Join(mk(xs))
		return ab.LeqAll(ba) && ba.LeqAll(ab)
	}
	if err := quick.Check(commutative, nil); err != nil {
		t.Errorf("join not commutative: %v", err)
	}
	monotone := func(xs, ys []uint8) bool {
		a := mk(xs)
		joined := a.Clone()
		joined.Join(mk(ys))
		return a.LeqAll(joined)
	}
	if err := quick.Check(monotone, nil); err != nil {
		t.Errorf("join not monotone: %v", err)
	}
}

// Property: Contains agrees with a direct component comparison.
func TestContainsProperty(t *testing.T) {
	f := func(comp uint8, seq uint8) bool {
		v := New()
		if comp > 0 {
			v.Set(1, Seq(comp))
		}
		want := seq == 0 || Seq(seq) <= v.Get(1)
		return v.Contains(1, Seq(seq)) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// BenchmarkVCJoin measures the single-pass join on the two shapes that
// matter: growing (other is longer, one allocation) and in-place (other
// fits, zero allocations).
func BenchmarkVCJoin(b *testing.B) {
	long := New()
	for t := TID(0); t < 8; t++ {
		long.Set(t, Seq(t+1))
	}
	short := New()
	short.Set(1, 100)
	b.Run("grow", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			v := VC{5}
			v.Join(long)
		}
	})
	b.Run("in-place", func(b *testing.B) {
		b.ReportAllocs()
		v := long.Clone()
		for i := 0; i < b.N; i++ {
			v.Join(short)
		}
	})
}
