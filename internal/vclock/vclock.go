// Package vclock implements vector clocks over thread identifiers.
//
// Yashme (ASPLOS '22, §6) orders store-buffer evictions with a single global
// sequence counter σ and summarizes happens-before with clock vectors that
// map a thread identifier τ to the largest σ of an operation by τ that is
// ordered before the current point. Because σ is globally unique and strictly
// increasing, a component-wise comparison against a clock vector answers
// "does operation (τ, σ) happen before this point?" in O(1).
package vclock

import (
	"fmt"
	"strings"
)

// TID identifies a simulated thread. Thread 0 is the main thread. TIDs are
// small and dense — the simulator spawns threads 0..n-1 — which is what lets
// VC index components directly instead of hashing them.
type TID int

// Seq is a global sequence number assigned to an operation when it takes
// effect on the (simulated) cache. Zero means "never happened"; the first
// operation receives Seq 1.
type Seq uint64

// maxTID bounds clock growth: a component index beyond this is a corrupt TID
// (the simulator never runs more than a handful of threads), not a clock.
const maxTID = 1 << 16

// VC is a vector clock: for each thread τ, the largest Seq of an operation by
// τ known to happen before the point the clock describes. It is a dense slice
// indexed by TID; a component beyond len(v) — or equal to zero — means "never
// happened". The zero value (nil) is an empty clock ready for use.
//
// Set and Join take pointer receivers because raising a component for a TID
// past the current length grows the slice; Get, Contains, LeqAll, Max and
// String work on values and accept nil.
type VC []Seq

// New returns an empty vector clock.
func New() VC { return nil }

// Get returns the component for τ, zero if absent.
func (v VC) Get(t TID) Seq {
	if int(t) < 0 || int(t) >= len(v) {
		return 0
	}
	return v[t]
}

// grow extends v so that component t is addressable.
func (v *VC) grow(t TID) {
	if t < 0 || t >= maxTID {
		panic(fmt.Sprintf("vclock: thread id %d out of range [0, %d)", t, maxTID))
	}
	if int(t) < len(*v) {
		return
	}
	n := make(VC, t+1)
	copy(n, *v)
	*v = n
}

// Set raises the component for τ to s. Lowering is not permitted; Set panics
// if s is smaller than the current component, because clock components are
// monotone by construction (σ increases globally).
func (v *VC) Set(t TID, s Seq) {
	if cur := v.Get(t); s < cur {
		panic(fmt.Sprintf("vclock: component for thread %d would regress from %d to %d", t, cur, s))
	}
	v.grow(t)
	(*v)[t] = s
}

// Join merges other into v, component-wise maximum. When other is longer
// the merged clock is built in one pass — copy other, then fold v's old
// components over it — instead of growing first and walking other twice.
func (v *VC) Join(other VC) {
	d := *v
	if len(other) > len(d) {
		if t := TID(len(other) - 1); t >= maxTID {
			panic(fmt.Sprintf("vclock: thread id %d out of range [0, %d)", t, maxTID))
		}
		n := make(VC, len(other))
		copy(n, other)
		for t, s := range d {
			if s > n[t] {
				n[t] = s
			}
		}
		*v = n
		return
	}
	for t, s := range other {
		if s > d[t] {
			d[t] = s
		}
	}
}

// Clone returns an independent copy of v.
func (v VC) Clone() VC {
	if len(v) == 0 {
		return nil
	}
	c := make(VC, len(v))
	copy(c, v)
	return c
}

// Contains reports whether the operation (t, s) is included in the prefix
// described by v, i.e. s <= v[t]. An operation with Seq 0 never happened and
// is trivially contained.
func (v VC) Contains(t TID, s Seq) bool {
	if s == 0 {
		return true
	}
	return s <= v.Get(t)
}

// LeqAll reports whether every component of v is <= the matching component of
// other (v happens-before-or-equal other).
func (v VC) LeqAll(other VC) bool {
	for t, s := range v {
		if s > other.Get(TID(t)) {
			return false
		}
	}
	return true
}

// Max returns the largest component in v (the newest operation it covers).
func (v VC) Max() Seq {
	var m Seq
	for _, s := range v {
		if s > m {
			m = s
		}
	}
	return m
}

// String renders the clock deterministically, for logs and tests. Zero
// components are omitted: they are indistinguishable from absent ones in
// every operation the clock supports.
func (v VC) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	for t, s := range v {
		if s == 0 {
			continue
		}
		if !first {
			b.WriteByte(' ')
		}
		first = false
		fmt.Fprintf(&b, "%d:%d", t, s)
	}
	b.WriteByte('}')
	return b.String()
}
