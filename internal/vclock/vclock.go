// Package vclock implements vector clocks over thread identifiers.
//
// Yashme (ASPLOS '22, §6) orders store-buffer evictions with a single global
// sequence counter σ and summarizes happens-before with clock vectors that
// map a thread identifier τ to the largest σ of an operation by τ that is
// ordered before the current point. Because σ is globally unique and strictly
// increasing, a component-wise comparison against a clock vector answers
// "does operation (τ, σ) happen before this point?" in O(1).
package vclock

import (
	"fmt"
	"sort"
	"strings"
)

// TID identifies a simulated thread. Thread 0 is the main thread.
type TID int

// Seq is a global sequence number assigned to an operation when it takes
// effect on the (simulated) cache. Zero means "never happened"; the first
// operation receives Seq 1.
type Seq uint64

// VC is a vector clock: for each thread τ, the largest Seq of an operation by
// τ known to happen before the point the clock describes. The zero value is
// an empty clock ready for use, but callers typically use New.
//
// VC values are small maps; Clone before sharing across events.
type VC map[TID]Seq

// New returns an empty vector clock.
func New() VC { return make(VC) }

// Get returns the component for τ, zero if absent.
func (v VC) Get(t TID) Seq {
	if v == nil {
		return 0
	}
	return v[t]
}

// Set raises the component for τ to s. Lowering is not permitted; Set panics
// if s is smaller than the current component, because clock components are
// monotone by construction (σ increases globally).
func (v VC) Set(t TID, s Seq) {
	if cur := v[t]; s < cur {
		panic(fmt.Sprintf("vclock: component for thread %d would regress from %d to %d", t, cur, s))
	}
	v[t] = s
}

// Join merges other into v, component-wise maximum.
func (v VC) Join(other VC) {
	for t, s := range other {
		if s > v[t] {
			v[t] = s
		}
	}
}

// Clone returns an independent copy of v.
func (v VC) Clone() VC {
	c := make(VC, len(v))
	for t, s := range v {
		c[t] = s
	}
	return c
}

// Contains reports whether the operation (t, s) is included in the prefix
// described by v, i.e. s <= v[t]. An operation with Seq 0 never happened and
// is trivially contained.
func (v VC) Contains(t TID, s Seq) bool {
	if s == 0 {
		return true
	}
	return s <= v.Get(t)
}

// LeqAll reports whether every component of v is <= the matching component of
// other (v happens-before-or-equal other).
func (v VC) LeqAll(other VC) bool {
	for t, s := range v {
		if s > other.Get(t) {
			return false
		}
	}
	return true
}

// Max returns the largest component in v (the newest operation it covers).
func (v VC) Max() Seq {
	var m Seq
	for _, s := range v {
		if s > m {
			m = s
		}
	}
	return m
}

// String renders the clock deterministically, for logs and tests.
func (v VC) String() string {
	if len(v) == 0 {
		return "{}"
	}
	tids := make([]int, 0, len(v))
	for t := range v {
		tids = append(tids, int(t))
	}
	sort.Ints(tids)
	var b strings.Builder
	b.WriteByte('{')
	for i, t := range tids {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%d:%d", t, v[TID(t)])
	}
	b.WriteByte('}')
	return b.String()
}
