package vclock

// The dense slice-backed VC replaced an earlier map-based implementation.
// This file keeps the map version as a test-only reference and checks, on
// random operation sequences, that the two agree on every observable:
// component reads, joins, ordering predicates, Max and String.

import (
	"fmt"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

// mapVC is the original map-based vector clock, verbatim semantics.
type mapVC map[TID]Seq

func (v mapVC) Get(t TID) Seq {
	if v == nil {
		return 0
	}
	return v[t]
}

func (v mapVC) Set(t TID, s Seq) {
	if cur := v[t]; s < cur {
		panic("mapVC: component regression")
	}
	v[t] = s
}

func (v mapVC) Join(other mapVC) {
	for t, s := range other {
		if s > v[t] {
			v[t] = s
		}
	}
}

func (v mapVC) Contains(t TID, s Seq) bool {
	return s == 0 || s <= v.Get(t)
}

func (v mapVC) LeqAll(other mapVC) bool {
	for t, s := range v {
		if s > other.Get(t) {
			return false
		}
	}
	return true
}

func (v mapVC) Max() Seq {
	var m Seq
	for _, s := range v {
		if s > m {
			m = s
		}
	}
	return m
}

func (v mapVC) String() string {
	tids := make([]int, 0, len(v))
	for t := range v {
		if v[t] != 0 {
			tids = append(tids, int(t))
		}
	}
	sort.Ints(tids)
	var b strings.Builder
	b.WriteByte('{')
	for i, t := range tids {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%d:%d", t, v[TID(t)])
	}
	b.WriteByte('}')
	return b.String()
}

// refOp is one randomly generated operation. quick fills the fields; apply
// interprets them. Kind 0 = Set, 1 = Join (with a clock built from Arg
// pairs), 2 = Clone-and-continue (checks the copy detaches).
type refOp struct {
	Kind uint8
	T    uint8
	S    uint16
	Arg  [3]uint16 // Join operand: component for TIDs 0..2
}

const refTIDs = 8 // dense range the harness exercises

// apply runs one op against both implementations, keeping them panic-free by
// raising Set targets to at least the current component.
func (op refOp) apply(d *VC, m mapVC) mapVC {
	switch op.Kind % 3 {
	case 0:
		t := TID(op.T % refTIDs)
		s := Seq(op.S)
		if cur := m.Get(t); s < cur {
			s = cur
		}
		d.Set(t, s)
		m.Set(t, s)
	case 1:
		other := New()
		otherRef := make(mapVC)
		for i, c := range op.Arg {
			if c == 0 {
				continue
			}
			other.Set(TID(i), Seq(c))
			otherRef.Set(TID(i), Seq(c))
		}
		d.Join(other)
		m.Join(otherRef)
	case 2:
		c := d.Clone()
		cm := make(mapVC, len(m))
		for t, s := range m {
			cm[t] = s
		}
		*d = c
		m = cm
	}
	return m
}

// agree compares every observable of the two implementations.
func agree(d VC, m mapVC) error {
	for t := TID(0); t < refTIDs+2; t++ {
		if d.Get(t) != m.Get(t) {
			return fmt.Errorf("Get(%d): dense %d, map %d", t, d.Get(t), m.Get(t))
		}
		for _, s := range []Seq{0, 1, d.Get(t), d.Get(t) + 1} {
			if d.Contains(t, s) != m.Contains(t, s) {
				return fmt.Errorf("Contains(%d,%d): dense %v, map %v", t, s, d.Contains(t, s), m.Contains(t, s))
			}
		}
	}
	if d.Max() != m.Max() {
		return fmt.Errorf("Max: dense %d, map %d", d.Max(), m.Max())
	}
	if d.String() != m.String() {
		return fmt.Errorf("String: dense %q, map %q", d.String(), m.String())
	}
	return nil
}

// Property: after any op sequence, the dense VC and the map reference agree
// on Get, Contains, Max and String.
func TestDenseMatchesMapReference(t *testing.T) {
	f := func(ops []refOp) bool {
		d := New()
		m := make(mapVC)
		for _, op := range ops {
			m = op.apply(&d, m)
			if err := agree(d, m); err != nil {
				t.Logf("after %+v: %v", op, err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// Property: LeqAll (the happens-before predicate conditions 2–4 are built
// on) agrees between the two implementations for independently generated
// clock pairs, in both directions.
func TestLeqAllMatchesMapReference(t *testing.T) {
	build := func(ops []refOp) (VC, mapVC) {
		d := New()
		m := make(mapVC)
		for _, op := range ops {
			m = op.apply(&d, m)
		}
		return d, m
	}
	f := func(xs, ys []refOp) bool {
		dx, mx := build(xs)
		dy, my := build(ys)
		return dx.LeqAll(dy) == mx.LeqAll(my) && dy.LeqAll(dx) == my.LeqAll(mx)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}
