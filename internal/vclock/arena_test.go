package vclock

// Arena equivalence harness: a mini-simulation drives the interned arena,
// the owned (always-append) arena and the map-based reference oracle from
// reference_test.go through the same operation sequence, respecting the σ
// invariant the epoch fast path depends on — sequence numbers are globally
// unique and strictly increasing, and every clock is a join of commit-time
// thread-clock snapshots. The three must agree on every observable.

import (
	"fmt"
	"testing"
	"testing/quick"
)

const arenaTIDs = 4

// arenaSim drives one arena through commit/acquire/flush-join events while
// mirroring every clock in map form.
type arenaSim struct {
	a    *Arena
	seq  Seq
	base []Ref   // per-thread snapshot base
	self []Seq   // per-thread own latest σ
	ref  []mapVC // per-thread full clock, map form

	// stamps is the pool of commit stamps later events may join with.
	stamps []Stamp
	srefs  []mapVC // parallel map form of each stamp's clock

	// lf mirrors the detector's lastflush/CVpre use: a snapshot Ref joined
	// with commit stamps via JoinStamp.
	lf    Ref
	lfRef mapVC
}

func newArenaSim(owned bool) *arenaSim {
	s := &arenaSim{
		a:     NewArena(owned),
		base:  make([]Ref, arenaTIDs),
		self:  make([]Seq, arenaTIDs),
		ref:   make([]mapVC, arenaTIDs),
		lfRef: make(mapVC),
	}
	for t := range s.ref {
		s.ref[t] = make(mapVC)
	}
	return s
}

// arenaOp is one generated event. Kind selects commit / acquire / flush-join;
// T names the acting thread and Pick selects a stamp from the pool.
type arenaOp struct {
	Kind uint8
	T    uint8
	Pick uint8
}

func (s *arenaSim) apply(op arenaOp) {
	t := TID(op.T % arenaTIDs)
	switch op.Kind % 3 {
	case 0: // commit: mint the thread's next stamp, record it in the pool
		s.seq++
		s.self[t] = s.seq
		st := Stamp{Base: s.base[t], Self: NewEpoch(t, s.seq)}
		if s.a.Owned() {
			st = s.a.Reintern(st)
		}
		s.ref[t][t] = s.seq
		m := make(mapVC, len(s.ref[t]))
		for u, q := range s.ref[t] {
			m[u] = q
		}
		s.stamps = append(s.stamps, st)
		s.srefs = append(s.srefs, m)
	case 1: // acquire: join a pooled stamp into the thread's clock
		if len(s.stamps) == 0 {
			return
		}
		i := int(op.Pick) % len(s.stamps)
		s.base[t] = s.a.JoinThread(s.base[t], t, s.self[t], s.stamps[i])
		s.ref[t].Join(s.srefs[i])
	case 2: // flush-cover: join a pooled stamp into the lastflush snapshot
		if len(s.stamps) == 0 {
			return
		}
		i := int(op.Pick) % len(s.stamps)
		s.lf = s.a.JoinStamp(s.lf, s.stamps[i])
		s.lfRef.Join(s.srefs[i])
	}
}

// check compares every observable of the arena state against the map oracle.
func (s *arenaSim) check() error {
	for t := TID(0); t < arenaTIDs; t++ {
		st := Stamp{Base: s.base[t], Self: NewEpoch(t, s.self[t])}
		for u := TID(0); u < arenaTIDs+1; u++ {
			if got, want := s.a.Get(st, u), s.ref[t].Get(u); got != want {
				return fmt.Errorf("thread %d clock Get(%d) = %d, oracle %d", t, u, got, want)
			}
			for _, q := range []Seq{0, 1, s.ref[t].Get(u), s.ref[t].Get(u) + 1} {
				if got, want := s.a.Contains(st, u, q), s.ref[t].Contains(u, q); got != want {
					return fmt.Errorf("thread %d Contains(%d,%d) = %v, oracle %v", t, u, q, got, want)
				}
			}
		}
	}
	for i, st := range s.stamps {
		m := s.a.Materialize(st)
		for u := TID(0); u < arenaTIDs; u++ {
			if m.Get(u) != s.srefs[i].Get(u) {
				return fmt.Errorf("stamp %d materialized %v, oracle %v", i, m, s.srefs[i])
			}
		}
	}
	for u := TID(0); u < arenaTIDs; u++ {
		if got, want := s.a.RefGet(s.lf, u), s.lfRef.Get(u); got != want {
			return fmt.Errorf("lastflush RefGet(%d) = %d, oracle %d", u, got, want)
		}
		for _, q := range []Seq{0, 1, s.lfRef.Get(u), s.lfRef.Get(u) + 1} {
			if got, want := s.a.RefContains(s.lf, u, q), s.lfRef.Contains(u, q); got != want {
				return fmt.Errorf("lastflush RefContains(%d,%d) = %v, oracle %v", u, q, got, want)
			}
		}
	}
	return nil
}

// Property: under the simulator's σ discipline, the interned arena (epoch
// fast path on) and the owned arena (fast path off, one private snapshot
// per commit) both agree with the map oracle after every event.
func TestArenaMatchesMapReference(t *testing.T) {
	f := func(ops []arenaOp) bool {
		interned, owned := newArenaSim(false), newArenaSim(true)
		for _, op := range ops {
			interned.apply(op)
			owned.apply(op)
			if err := interned.check(); err != nil {
				t.Logf("interned, after %+v: %v", op, err)
				return false
			}
			if err := owned.check(); err != nil {
				t.Logf("owned, after %+v: %v", op, err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
		t.Error(err)
	}
}

// Property: the epoch fast path fires under the discipline, and never on
// the owned arena.
func TestArenaEpochCounters(t *testing.T) {
	f := func(ops []arenaOp) bool {
		interned, owned := newArenaSim(false), newArenaSim(true)
		joins := 0
		for _, op := range ops {
			if op.Kind%3 != 0 && len(interned.stamps) > 0 {
				joins++
			}
			interned.apply(op)
			owned.apply(op)
		}
		ih, ihits, imiss := interned.a.TakeCounters()
		_, ohits, omiss := owned.a.TakeCounters()
		_ = ih
		if ohits != 0 || omiss != 0 {
			t.Logf("owned arena used the epoch fast path: hits=%d misses=%d", ohits, omiss)
			return false
		}
		if int(ihits+imiss) != joins {
			t.Logf("interned arena: %d hits + %d misses != %d joins", ihits, imiss, joins)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestArenaCloneNoAliasing: a clone shares the original's snapshots
// read-only; either side's later interns stay private, shared Refs resolve
// identically on both sides, and the clone's cost counters start at zero.
func TestArenaCloneNoAliasing(t *testing.T) {
	a := NewArena(false)
	r1 := a.Intern(VC{1, 2})
	r2 := a.Intern(VC{3})
	n := a.Len()

	c := a.Clone()
	if got, _, _ := c.TakeCounters(); got != 0 {
		t.Fatalf("clone starts with %d interned, want 0", got)
	}

	// Diverge: each side interns a different new clock.
	ra := a.Intern(VC{1, 2, 3})
	rc := c.Intern(VC{4, 4})
	if ra != Ref(n) || rc != Ref(n) {
		t.Fatalf("post-clone interns got refs %d/%d, want both %d (independent appends)", ra, rc, n)
	}
	if got := a.At(ra).Get(2); got != 3 {
		t.Errorf("original's new entry = %v", a.At(ra))
	}
	if got := c.At(rc).Get(0); got != 4 {
		t.Errorf("clone's new entry = %v (original's append leaked in)", c.At(rc))
	}

	// Shared prefix refs resolve identically.
	for _, r := range []Ref{0, r1, r2} {
		for u := TID(0); u < 3; u++ {
			if a.RefGet(r, u) != c.RefGet(r, u) {
				t.Errorf("ref %d component %d diverged: %d vs %d", r, u, a.RefGet(r, u), c.RefGet(r, u))
			}
		}
	}

	// Re-interning an old clock on the clone finds the shared entry (the
	// lazily rebuilt lookup covers the shared prefix).
	if got := c.Intern(VC{1, 2}); got != r1 {
		t.Errorf("clone re-interned {1 2} as %d, want shared %d", got, r1)
	}

	// The original's scratch buffers and counters are untouched by clone use.
	if got, _, _ := a.TakeCounters(); got != 3 {
		t.Errorf("original interned counter = %d, want 3", got)
	}
}
