package part

import "yashme/internal/workload"

// The paper's P-ART evaluation: model-checked in Table 3 (7 races), seed 3
// for the Table 5 row (0 prefix / 0 baseline).
func init() {
	workload.Register(workload.Spec{
		Name:       "P-ART",
		Order:      2,
		Make:       New(6, nil),
		ModelCheck: true,
		Table5Seed: 3,
		Tags:       []string{workload.TagTable3, workload.TagTable5, workload.TagIndex, workload.TagXFD},
	})
}
