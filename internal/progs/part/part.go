// Package part reproduces P-ART, the persistent Adaptive Radix Tree from
// the RECIPE suite, with the seven persistency races Yashme reports for it
// (paper Table 3, bugs 9–15):
//
//	#9   compactCount        in N class (N.h)
//	#10  count               in N class (N.h)
//	#11  deletitionListCount in DeletionList class (Epoche.h)
//	#12  headDeletionList    in DeletionList class (Epoche.h)
//	#13  nodesCount          in LabelDelete struct (Epoche.h)
//	#14  added               in DeletionList class (Epoche.h)
//	#15  thresholdCounter    in DeletionList class (Epoche.h)
//
// The tree is a two-level radix over the low 16 bits of the key: each level
// is an adaptive node (N4, grown to N16 on overflow) holding compact
// (key-byte, child) slots. P-ART stores its children and key bytes through
// std::atomic (it is a lock-free design), but the node occupancy counters
// compactCount/count are plain uint16 fields updated in place — torn counts
// let recovery scan uninitialized slots. The Epoche-based memory
// reclamation (DeletionList, LabelDelete) belongs to an allocator that
// RECIPE's authors acknowledge is not crash consistent at all: none of its
// fields are flushed (bugs 11–15; the authors declined to fix those because
// the allocator needs replacing wholesale, §7.4). Note "deletitionList" is
// the original source's spelling.
package part

import (
	"fmt"

	"yashme/internal/pmm"
)

// Node capacities of the two reproduced node types.
const (
	N4Cap  = 4
	N16Cap = 16
)

// EmptyKey marks an unused slot's key byte.
const EmptyKey = uint64(0xFF)

// ExpectedRaces are the fields the paper reports for P-ART.
var ExpectedRaces = []string{
	"DeletionList.added",
	"DeletionList.deletitionListCount",
	"DeletionList.headDeletionList",
	"DeletionList.thresholdCounter",
	"LabelDelete.nodesCount",
	"N.compactCount",
	"N.count",
}

// node is one radix node (N4 or N16): compact slots of (key byte, child).
// A child is either another node or a leaf (registry-resolved).
type node struct {
	s   pmm.Struct
	cap int
}

func (n *node) base() uint64 { return uint64(n.s.Base()) }

func nodeLayout(cap int) pmm.Layout {
	l := pmm.Layout{
		{Name: "compactCount", Size: 2},
		{Name: "count", Size: 2},
		{Name: "nodeType", Size: 2},
	}
	for i := 0; i < cap; i++ {
		l = append(l, pmm.FieldDef{Name: fmt.Sprintf("key%d", i), Size: 1})
	}
	for i := 0; i < cap; i++ {
		l = append(l, pmm.FieldDef{Name: fmt.Sprintf("child%d", i), Size: 8})
	}
	return l
}

var leafLayout = pmm.Layout{{Name: "value", Size: 8}}

// Tree is a two-level P-ART instance plus the Epoche deletion list.
type Tree struct {
	h    *pmm.Heap
	root *node
	// Epoche reclamation state.
	dl     pmm.Struct // "DeletionList"
	nodes  map[uint64]*node
	leaves map[uint64]pmm.Struct
	labels map[uint64]pmm.Struct
}

// Depth is the number of radix levels (key bytes consumed).
const Depth = 2

// byteAt extracts the radix byte for a level (most significant first).
func byteAt(key uint64, level int) uint8 {
	shift := uint(8 * (Depth - 1 - level))
	return uint8(key >> shift)
}

// NewTree allocates an empty tree with an N4 root and the deletion list.
func NewTree(h *pmm.Heap) *Tree {
	tr := &Tree{h: h, nodes: make(map[uint64]*node), leaves: make(map[uint64]pmm.Struct), labels: make(map[uint64]pmm.Struct)}
	tr.root = tr.allocNodeInit(N4Cap)
	tr.dl = h.AllocStruct("DeletionList", pmm.Layout{
		{Name: "deletitionListCount", Size: 8},
		{Name: "headDeletionList", Size: 8},
		{Name: "added", Size: 1},
		{Name: "thresholdCounter", Size: 8},
	})
	return tr
}

func (tr *Tree) allocNodeInit(cap int) *node {
	n := &node{s: tr.h.AllocStruct("N", nodeLayout(cap)), cap: cap}
	for i := 0; i < cap; i++ {
		tr.h.Init(n.s.F(fmt.Sprintf("key%d", i)), 1, EmptyKey)
	}
	tr.nodes[n.base()] = n
	return n
}

// allocNodeRuntime allocates a node during execution with its slots
// initialized and flushed before publication (persistency-safe).
func (tr *Tree) allocNodeRuntime(t *pmm.Thread, cap int) *node {
	n := &node{s: tr.h.AllocStruct("N", nodeLayout(cap)), cap: cap}
	for i := 0; i < cap; i++ {
		t.StoreAtomic(n.s.F(fmt.Sprintf("key%d", i)), 1, EmptyKey)
	}
	t.FlushRange(n.s.Base(), n.s.Size())
	t.SFence()
	tr.nodes[n.base()] = n
	return n
}

// allocLeaf allocates and persists a leaf before publication.
func (tr *Tree) allocLeaf(t *pmm.Thread, value uint64) uint64 {
	l := tr.h.AllocStruct("leaf", leafLayout)
	t.StoreAtomic(l.F("value"), 8, value)
	t.Persist(l.Base(), l.Size())
	tr.leaves[uint64(l.Base())] = l
	return uint64(l.Base())
}

// nodeAt resolves a child pointer to a node handle. The registry covers
// nodes this Tree instance allocated; a miss falls back to reattaching
// through the heap (pmm.StructAt) — recovery code conceptually runs in a
// fresh process (and, under the engine's checkpoint layer, in a scenario
// whose workload closures never executed), so handles must be derivable
// from the persisted pointer alone. A node's capacity is encoded in its
// field count: 3 header fields plus a key byte and a child per slot.
func (tr *Tree) nodeAt(addr uint64) (*node, bool) {
	if n, ok := tr.nodes[addr]; ok {
		return n, true
	}
	st, ok := tr.h.StructAt(pmm.Addr(addr))
	if !ok || st.Label() != "N" {
		return nil, false
	}
	n := &node{s: st, cap: (st.FieldCount() - 3) / 2}
	tr.nodes[addr] = n
	return n, true
}

// leafAt resolves a leaf pointer, reattaching through the heap on a
// registry miss (see nodeAt).
func (tr *Tree) leafAt(addr uint64) (pmm.Struct, bool) {
	if l, ok := tr.leaves[addr]; ok {
		return l, true
	}
	st, ok := tr.h.StructAt(pmm.Addr(addr))
	if !ok || st.Label() != "leaf" {
		return pmm.Struct{}, false
	}
	tr.leaves[addr] = st
	return st, true
}

// labelAt resolves a LabelDelete pointer, reattaching through the heap on a
// registry miss (see nodeAt).
func (tr *Tree) labelAt(addr uint64) (pmm.Struct, bool) {
	if ld, ok := tr.labels[addr]; ok {
		return ld, true
	}
	st, ok := tr.h.StructAt(pmm.Addr(addr))
	if !ok || st.Label() != "LabelDelete" {
		return pmm.Struct{}, false
	}
	tr.labels[addr] = st
	return st, true
}

// findSlot scans a node's compact slots for a key byte.
func (tr *Tree) findSlot(t *pmm.Thread, n *node, kb uint8) int {
	cc := t.Load16(n.s.F("compactCount"))
	limit := int(cc)
	if limit > n.cap {
		limit = n.cap // defensive clamp against torn counts
	}
	for i := 0; i < limit; i++ {
		if t.LoadAcquire(n.s.F(fmt.Sprintf("key%d", i)), 1) == uint64(kb) {
			return i
		}
	}
	return -1
}

func (tr *Tree) childAt(t *pmm.Thread, n *node, slot int) uint64 {
	return t.LoadAcquire(n.s.F(fmt.Sprintf("child%d", slot)), 8)
}

// setChild publishes a child pointer atomically and persists it.
func (tr *Tree) setChild(t *pmm.Thread, n *node, slot int, child uint64) {
	f := n.s.F(fmt.Sprintf("child%d", slot))
	t.StoreAtomic(f, 8, child)
	t.Persist(f, 8)
}

// addSlot claims the next compact slot for a key byte — bugs #9/#10: the
// occupancy counters are plain stores.
func (tr *Tree) addSlot(t *pmm.Thread, n *node, kb uint8, child uint64) bool {
	cc := t.Load16(n.s.F("compactCount"))
	if int(cc) >= n.cap {
		return false
	}
	slot := int(cc)
	t.StoreAtomic(n.s.F(fmt.Sprintf("key%d", slot)), 1, uint64(kb))
	t.StoreAtomic(n.s.F(fmt.Sprintf("child%d", slot)), 8, child)
	// Bug #9: plain compactCount update commits the slot allocation.
	t.Store16(n.s.F("compactCount"), cc+1)
	// Bug #10: plain count update.
	t.Store16(n.s.F("count"), t.Load16(n.s.F("count"))+1)
	t.FlushRange(n.s.Base(), n.s.Size())
	t.SFence()
	return true
}

// grow copies an overflowing node into a fresh N16 (construction-time
// stores, flushed before the swap) and retires the old node through the
// Epoche deletion list. Returns the replacement.
func (tr *Tree) grow(t *pmm.Thread, old *node) *node {
	big := tr.allocNodeRuntime(t, N16Cap)
	cc := t.Load16(old.s.F("compactCount"))
	live := uint16(0)
	for i := 0; i < int(cc) && i < old.cap; i++ {
		k := t.LoadAcquire(old.s.F(fmt.Sprintf("key%d", i)), 1)
		if k == EmptyKey {
			continue
		}
		t.StoreAtomic(big.s.F(fmt.Sprintf("key%d", live)), 1, k)
		t.StoreAtomic(big.s.F(fmt.Sprintf("child%d", live)), 8,
			t.LoadAcquire(old.s.F(fmt.Sprintf("child%d", i)), 8))
		live++
	}
	t.StoreAtomic(big.s.F("compactCount"), 2, uint64(live))
	t.StoreAtomic(big.s.F("count"), 2, uint64(live))
	t.FlushRange(big.s.Base(), big.s.Size())
	t.SFence()
	tr.retire(t, old)
	return big
}

// retire adds a node to the Epoche deletion list — bugs #11–#15: every
// store below is plain and never flushed (the allocator is not crash
// consistent).
func (tr *Tree) retire(t *pmm.Thread, n *node) {
	ld := tr.h.AllocStruct("LabelDelete", pmm.Layout{
		{Name: "nodesCount", Size: 8},
		{Name: "node0", Size: 8},
	})
	tr.labels[uint64(ld.Base())] = ld
	// Bug #13: plain nodesCount in the label.
	t.Store64(ld.F("nodesCount"), 1)
	t.Store64(ld.F("node0"), n.base())
	// Bug #12: plain headDeletionList publication.
	t.Store64(tr.dl.F("headDeletionList"), uint64(ld.Base()))
	// Bug #11: plain deletitionListCount.
	t.Store64(tr.dl.F("deletitionListCount"), t.Load64(tr.dl.F("deletitionListCount"))+1)
	// Bug #14: plain byte-size 'added' flag (store inventing makes even
	// byte-size fields unsafe, §7.2).
	t.Store8(tr.dl.F("added"), 1)
	// Bug #15: plain thresholdCounter.
	t.Store64(tr.dl.F("thresholdCounter"), t.Load64(tr.dl.F("thresholdCounter"))+1)
}

// Insert maps key (low Depth bytes) to a value, descending the radix levels
// and growing nodes as needed.
func (tr *Tree) Insert(t *pmm.Thread, key uint64, value uint64) {
	tr.insertAt(t, tr.root, nil, -1, 0, key, value)
}

// insertAt inserts below n (reached from parent at parentSlot; the root has
// parent nil).
func (tr *Tree) insertAt(t *pmm.Thread, n *node, parent *node, parentSlot int, level int, key, value uint64) {
	kb := byteAt(key, level)
	slot := tr.findSlot(t, n, kb)
	if level == Depth-1 {
		// Leaf level: install or replace the value leaf.
		if slot >= 0 {
			leafAddr := tr.childAt(t, n, slot)
			if l, ok := tr.leafAt(leafAddr); ok {
				t.StoreAtomic(l.F("value"), 8, value)
				t.Persist(l.F("value"), 8)
				return
			}
		}
		leaf := tr.allocLeaf(t, value)
		if slot >= 0 {
			tr.setChild(t, n, slot, leaf)
			return
		}
		if !tr.addSlot(t, n, kb, leaf) {
			n = tr.replaceGrown(t, n, parent, parentSlot)
			tr.addSlot(t, n, kb, leaf)
		}
		return
	}
	// Interior level: descend, creating the child node if needed.
	if slot >= 0 {
		childAddr := tr.childAt(t, n, slot)
		if child, ok := tr.nodeAt(childAddr); ok {
			tr.insertAt(t, child, n, slot, level+1, key, value)
			return
		}
	}
	child := tr.allocNodeRuntime(t, N4Cap)
	if !tr.addSlot(t, n, kb, child.base()) {
		n = tr.replaceGrown(t, n, parent, parentSlot)
		tr.addSlot(t, n, kb, child.base())
	}
	slot = tr.findSlot(t, n, kb)
	tr.insertAt(t, child, n, slot, level+1, key, value)
}

// replaceGrown grows a full node and republishes it in its parent (or as
// the root).
func (tr *Tree) replaceGrown(t *pmm.Thread, n, parent *node, parentSlot int) *node {
	big := tr.grow(t, n)
	if parent == nil {
		tr.root = big
	} else {
		tr.setChild(t, parent, parentSlot, big.base())
	}
	return big
}

// Lookup returns the value for a key. The compactCount/count reads are the
// race-observing loads for bugs #9/#10.
func (tr *Tree) Lookup(t *pmm.Thread, key uint64) (uint64, bool) {
	n := tr.root
	for level := 0; level < Depth; level++ {
		_ = t.Load16(n.s.F("count"))
		slot := tr.findSlot(t, n, byteAt(key, level))
		if slot < 0 {
			return 0, false
		}
		child := tr.childAt(t, n, slot)
		if level == Depth-1 {
			l, ok := tr.leafAt(child)
			if !ok {
				return 0, false
			}
			return t.LoadAcquire(l.F("value"), 8), true
		}
		next, ok := tr.nodeAt(child)
		if !ok {
			return 0, false
		}
		n = next
	}
	return 0, false
}

// Remove deletes a key (tombstoning its leaf slot) and bumps the counters.
func (tr *Tree) Remove(t *pmm.Thread, key uint64) bool {
	n := tr.root
	for level := 0; level < Depth-1; level++ {
		slot := tr.findSlot(t, n, byteAt(key, level))
		if slot < 0 {
			return false
		}
		next, ok := tr.nodeAt(tr.childAt(t, n, slot))
		if !ok {
			return false
		}
		n = next
	}
	slot := tr.findSlot(t, n, byteAt(key, Depth-1))
	if slot < 0 {
		return false
	}
	t.StoreAtomic(n.s.F(fmt.Sprintf("key%d", slot)), 1, EmptyKey)
	t.Store16(n.s.F("count"), t.Load16(n.s.F("count"))-1)
	t.FlushRange(n.s.Base(), n.s.Size())
	t.SFence()
	return true
}

// RecoverEpoche is the post-crash reclamation check: it reads every
// DeletionList field and walks to the head label — the race-observing loads
// for bugs #11–#15.
func (tr *Tree) RecoverEpoche(t *pmm.Thread) {
	_ = t.Load64(tr.dl.F("deletitionListCount"))
	_ = t.Load8(tr.dl.F("added"))
	_ = t.Load64(tr.dl.F("thresholdCounter"))
	head := t.Load64(tr.dl.F("headDeletionList"))
	if ld, ok := tr.labelAt(head); ok {
		_ = t.Load64(ld.F("nodesCount"))
	}
}

// Stats captures what recovery observed.
type Stats struct {
	Found   int
	Missing int
	Wrong   int
}

// ValueFor is the deterministic value the driver inserts for a key.
func ValueFor(key uint64) uint64 { return key*100 + 7 }

// DriverKeys returns the key set a driver with n primary keys uses: n keys
// in one level-0 subtree plus n/2 in a second subtree, so both radix levels
// and N4→N16 growth (hence the deletion list) are exercised.
func DriverKeys(n int) []uint64 {
	var keys []uint64
	for k := 1; k <= n; k++ {
		keys = append(keys, uint64(k))
	}
	for k := 1; k <= n/2; k++ {
		keys = append(keys, 0x100+uint64(k))
	}
	return keys
}

// New returns the benchmark driver: insert keys across two level-0
// subtrees (growing the first leaf-level N4 into an N16 and retiring it
// through the deletion list), then have recovery look all keys up and run
// the Epoche check.
func New(numKeys int, stats *Stats) func() pmm.Program {
	keys := DriverKeys(numKeys)
	return func() pmm.Program {
		var tr *Tree
		return pmm.Program{
			Name:  "P-ART",
			Setup: func(h *pmm.Heap) { tr = NewTree(h) },
			Workers: []func(*pmm.Thread){func(t *pmm.Thread) {
				for _, k := range keys {
					tr.Insert(t, k, ValueFor(k))
				}
			}},
			PostCrash: func(t *pmm.Thread) {
				tr.RecoverEpoche(t)
				for _, k := range keys {
					v, ok := tr.Lookup(t, k)
					if stats == nil {
						continue
					}
					switch {
					case !ok:
						stats.Missing++
					case v != ValueFor(k):
						stats.Wrong++
					default:
						stats.Found++
					}
				}
			},
		}
	}
}
