package part

import (
	"testing"

	"yashme/internal/engine"
	"yashme/internal/pmm"
	"yashme/internal/progs/progtest"
)

func TestRacesMatchPaperTable3(t *testing.T) {
	// 6 primary keys overflow the leaf-level N4, triggering growth + Epoche
	// retirement.
	progtest.AssertRaces(t, New(6, nil), ExpectedRaces)
}

func TestFunctionalFullRun(t *testing.T) {
	var stats Stats
	progtest.RunFull(t, New(6, &stats))
	want := len(DriverKeys(6))
	if stats.Missing != 0 || stats.Wrong != 0 || stats.Found != want {
		t.Fatalf("full-run recovery stats = %+v, want %d/0/0", stats, want)
	}
}

func TestNoGrowthNoEpocheRaces(t *testing.T) {
	// 2 primary keys (+1 in the second subtree) fit in the N4 nodes: no
	// retirement, so the DeletionList fields are never written and must not
	// be reported.
	res := engine.Run(New(2, nil), engine.Options{Mode: engine.ModelCheck, Prefix: true})
	for _, r := range res.Report.Races() {
		if r.Field != "N.compactCount" && r.Field != "N.count" {
			t.Fatalf("unexpected race without growth: %v", r)
		}
	}
}

func TestByteAt(t *testing.T) {
	if byteAt(0x1234, 0) != 0x12 || byteAt(0x1234, 1) != 0x34 {
		t.Fatalf("byteAt wrong: %x %x", byteAt(0x1234, 0), byteAt(0x1234, 1))
	}
}

func TestInsertUpdateRemoveSemantics(t *testing.T) {
	var v1, v2 uint64
	var ok1, ok2, okRm, okAfter bool
	mk := func() pmm.Program {
		var tr *Tree
		return pmm.Program{
			Name:  "part-sem",
			Setup: func(h *pmm.Heap) { tr = NewTree(h) },
			Workers: []func(*pmm.Thread){func(t *pmm.Thread) {
				tr.Insert(t, 5, 50)
				v1, ok1 = tr.Lookup(t, 5)
				tr.Insert(t, 5, 55) // update in place
				v2, ok2 = tr.Lookup(t, 5)
				okRm = tr.Remove(t, 5)
				_, okAfter = tr.Lookup(t, 5)
			}},
		}
	}
	progtest.RunFull(t, mk)
	if !ok1 || v1 != 50 {
		t.Fatalf("first lookup = (%d,%v)", v1, ok1)
	}
	if !ok2 || v2 != 55 {
		t.Fatalf("after update = (%d,%v)", v2, ok2)
	}
	if !okRm || okAfter {
		t.Fatalf("remove=%v, still-present=%v", okRm, okAfter)
	}
}

func TestMultiLevelSeparation(t *testing.T) {
	// Keys 0x0005 and 0x0105 share the low byte but live in different
	// level-0 subtrees: they must not collide.
	var vA, vB uint64
	var okA, okB bool
	mk := func() pmm.Program {
		var tr *Tree
		return pmm.Program{
			Name:  "part-levels",
			Setup: func(h *pmm.Heap) { tr = NewTree(h) },
			Workers: []func(*pmm.Thread){func(t *pmm.Thread) {
				tr.Insert(t, 0x0005, 111)
				tr.Insert(t, 0x0105, 222)
				vA, okA = tr.Lookup(t, 0x0005)
				vB, okB = tr.Lookup(t, 0x0105)
			}},
		}
	}
	progtest.RunFull(t, mk)
	if !okA || vA != 111 || !okB || vB != 222 {
		t.Fatalf("multi-level lookups = (%d,%v) (%d,%v)", vA, okA, vB, okB)
	}
}

func TestGrowthPreservesEntries(t *testing.T) {
	found := 0
	total := 0
	mk := func() pmm.Program {
		var tr *Tree
		return pmm.Program{
			Name:  "part-grow",
			Setup: func(h *pmm.Heap) { tr = NewTree(h) },
			Workers: []func(*pmm.Thread){func(t *pmm.Thread) {
				// 10 keys in one subtree force leaf-level N4 → N16 growth;
				// 3 more level-0 subtrees grow the root too.
				var keys []uint64
				for k := uint64(1); k <= 10; k++ {
					keys = append(keys, k)
				}
				for s := uint64(1); s <= 4; s++ {
					keys = append(keys, s<<8|1)
				}
				total = len(keys)
				for _, k := range keys {
					tr.Insert(t, k, ValueFor(k))
				}
				for _, k := range keys {
					if v, ok := tr.Lookup(t, k); ok && v == ValueFor(k) {
						found++
					}
				}
			}},
		}
	}
	progtest.RunFull(t, mk)
	if found != total {
		t.Fatalf("after growth found %d of %d", found, total)
	}
}

func TestRemoveMissingKey(t *testing.T) {
	var ok bool
	mk := func() pmm.Program {
		var tr *Tree
		return pmm.Program{
			Name:  "part-rm",
			Setup: func(h *pmm.Heap) { tr = NewTree(h) },
			Workers: []func(*pmm.Thread){func(t *pmm.Thread) {
				ok = tr.Remove(t, 9)
			}},
		}
	}
	progtest.RunFull(t, mk)
	if ok {
		t.Fatal("removing a missing key reported success")
	}
}

func TestByteSizedAddedFieldRaces(t *testing.T) {
	// Bug #14 is a 1-byte field: the paper stresses that even byte-size
	// fields are unsafe (store inventing).
	res := engine.Run(New(6, nil), engine.Options{Mode: engine.ModelCheck, Prefix: true})
	found := false
	for _, r := range res.Report.Races() {
		if r.Field == "DeletionList.added" {
			found = true
		}
	}
	if !found {
		t.Fatal("byte-size DeletionList.added race not reported")
	}
}
