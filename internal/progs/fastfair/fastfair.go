// Package fastfair reproduces the FAST_FAIR persistent B+-tree (Hwang et
// al., FAST '18) with the six persistency races Yashme reports for it
// (paper Table 3, bugs 3–8):
//
//	#3  last_index     in header (btree.h)
//	#4  switch_counter in header (btree.h)
//	#5  key            in entry  (btree.h)
//	#6  ptr            in entry  (btree.h)
//	#7  root           in btree  (btree.h)
//	#8  sibling_ptr    in header (btree.h)
//
// FAST_FAIR performs Failure-Atomic ShifTs: inserts shift entries with
// plain stores and per-cache-line flushes, bump switch_counter around
// shifts, update last_index, and link split siblings through sibling_ptr —
// all with NON-ATOMIC stores, relying on 8-byte store atomicity that the C++
// standard does not actually guarantee. Fields written once at node
// construction (level, leftmost_ptr) are flushed before the node is
// published and are therefore persistency-safe: reading the publishing
// pointer pulls their flushes into every consistent prefix.
package fastfair

import (
	"yashme/internal/pmm"
)

// Cardinality is the (downsized) number of entries per node; small so that
// modest drivers exercise splits and sibling links.
const Cardinality = 4

// ExpectedRaces are the fields the paper reports for FAST_FAIR.
var ExpectedRaces = []string{
	"btree.root",
	"entry.key",
	"entry.ptr",
	"header.last_index",
	"header.sibling_ptr",
	"header.switch_counter",
}

// NullPtr marks an absent node pointer.
const NullPtr = uint64(0)

type node struct {
	hdr     pmm.Struct
	entries pmm.Array
}

func (n *node) base() uint64 { return uint64(n.hdr.Base()) }

// Tree is a FAST_FAIR B+-tree instance on the simulated persistent heap.
// The nodes map plays the role of the fixed PM mapping: node pointers
// stored in persistent memory are heap addresses resolvable after a crash.
type Tree struct {
	h     *pmm.Heap
	btree pmm.Struct // {root}
	nodes map[uint64]*node
}

var headerLayout = pmm.Layout{
	{Name: "last_index", Size: 8},
	{Name: "switch_counter", Size: 8},
	{Name: "sibling_ptr", Size: 8},
	{Name: "leftmost_ptr", Size: 8},
	{Name: "level", Size: 8},
}

var entryLayout = pmm.Layout{{Name: "key", Size: 8}, {Name: "ptr", Size: 8}}

// NewTree allocates the btree struct and an empty root leaf. Initial values
// are Setup-time writes (fully persisted).
func NewTree(h *pmm.Heap) *Tree {
	tr := &Tree{h: h, btree: h.AllocStruct("btree", pmm.Layout{{Name: "root", Size: 8}}), nodes: make(map[uint64]*node)}
	root := tr.newNodeInit(h, 0, NullPtr)
	h.Init(tr.btree.F("root"), 8, root.base())
	// last_index starts at -1 in FAST_FAIR; we keep a count-style encoding
	// with 0 = empty, i.e. last_index holds count.
	return tr
}

// newNodeInit allocates a node during Setup (initial, persisted state).
func (tr *Tree) newNodeInit(h *pmm.Heap, level uint64, leftmost uint64) *node {
	n := &node{
		hdr:     h.AllocStruct("header", headerLayout),
		entries: h.AllocArray("entry", entryLayout, Cardinality+1),
	}
	h.Init(n.hdr.F("level"), 8, level)
	h.Init(n.hdr.F("leftmost_ptr"), 8, leftmost)
	tr.nodes[n.base()] = n
	return n
}

// newNodeRuntime allocates and initializes a node during execution: the
// construction-time stores are flushed before the node is published, so
// they are persistency-safe by the prefix argument above.
func (tr *Tree) newNodeRuntime(t *pmm.Thread, level uint64, leftmost uint64) *node {
	n := &node{
		hdr:     tr.h.AllocStruct("header", headerLayout),
		entries: tr.h.AllocArray("entry", entryLayout, Cardinality+1),
	}
	t.Store64(n.hdr.F("level"), level)
	t.Store64(n.hdr.F("leftmost_ptr"), leftmost)
	t.Store64(n.hdr.F("last_index"), 0)
	t.Store64(n.hdr.F("switch_counter"), 0)
	t.Store64(n.hdr.F("sibling_ptr"), NullPtr)
	t.FlushRange(n.hdr.Base(), n.hdr.Size())
	t.SFence()
	tr.nodes[n.base()] = n
	return n
}

// node resolves a node pointer loaded from persistent memory. The nodes map
// is the warm path; on a miss (fresh-process recovery, where the map holds
// only Setup-time entries) the node is reattached from the heap itself: a
// node is a "header" struct allocation immediately followed by its "entry"
// array allocation, mirroring how a real recovery procedure casts a mapped
// PM offset back to node*.
func (tr *Tree) node(addr uint64) *node {
	if addr == NullPtr {
		return nil
	}
	if n, ok := tr.nodes[addr]; ok {
		return n
	}
	hdr, ok := tr.h.StructAt(pmm.Addr(addr))
	if !ok || hdr.Label() != "header" {
		return nil
	}
	entBase, ok := tr.h.NextAllocBase(pmm.Addr(addr))
	if !ok {
		return nil
	}
	entries, ok := tr.h.ArrayAt(entBase)
	if !ok || entries.Label() != "entry" {
		return nil
	}
	n := &node{hdr: hdr, entries: entries}
	tr.nodes[addr] = n
	return n
}

// count reads last_index (entry count) — a race-observing load post-crash.
func (n *node) count(t *pmm.Thread) int { return int(t.Load64(n.hdr.F("last_index"))) }

// Insert adds a key/value pair, splitting full nodes bottom-up and growing
// a new root when the old root splits.
func (tr *Tree) Insert(t *pmm.Thread, key, val uint64) {
	rootAddr := t.Load64(tr.btree.F("root"))
	promoted, sepKey, sibAddr := tr.insertRec(t, rootAddr, key, val)
	if !promoted {
		return
	}
	// Bug #7: growing the tree stores a new root pointer non-atomically.
	oldRoot := tr.node(rootAddr)
	level := t.Load64(oldRoot.hdr.F("level"))
	newRoot := tr.newNodeRuntime(t, level+1, rootAddr)
	e := newRoot.entries.At(0)
	t.Store64(e.F("key"), sepKey)
	t.Store64(e.F("ptr"), sibAddr)
	t.Store64(newRoot.hdr.F("last_index"), 1)
	t.FlushRange(newRoot.hdr.Base(), newRoot.hdr.Size())
	t.CLFlush(e.Base())
	t.SFence()
	t.Store64(tr.btree.F("root"), newRoot.base())
	t.CLFlush(tr.btree.F("root"))
	t.SFence()
}

// insertRec inserts into the subtree rooted at nAddr. If the subtree root
// split, it returns the separator key and new sibling for the caller to
// install.
func (tr *Tree) insertRec(t *pmm.Thread, nAddr, key, val uint64) (promoted bool, sepKey, sibAddr uint64) {
	n := tr.node(nAddr)
	if t.Load64(n.hdr.F("level")) > 0 {
		child := tr.childFor(t, n, key)
		p, sk, sa := tr.insertRec(t, child, key, val)
		if !p {
			return false, 0, 0
		}
		key, val = sk, sa // install the separator in this node
	}
	if n.count(t) < Cardinality {
		tr.insertEntry(t, n, key, val)
		return false, 0, 0
	}
	sepKey, sibAddr = tr.split(t, n)
	if key < sepKey {
		tr.insertEntry(t, n, key, val)
	} else {
		tr.insertEntry(t, tr.node(sibAddr), key, val)
	}
	return true, sepKey, sibAddr
}

// childFor scans an inner node for the child covering key.
func (tr *Tree) childFor(t *pmm.Thread, n *node, key uint64) uint64 {
	cnt := n.count(t)
	child := t.Load64(n.hdr.F("leftmost_ptr"))
	for i := 0; i < cnt; i++ {
		e := n.entries.At(i)
		if key < t.Load64(e.F("key")) {
			break
		}
		child = t.Load64(e.F("ptr"))
	}
	return child
}

// insertEntry is FAST_FAIR's insert_key on a non-full node: bump
// switch_counter, shift larger entries right with store+flush per entry,
// write the new entry, update last_index, and flush the header — every
// store non-atomic.
func (tr *Tree) insertEntry(t *pmm.Thread, n *node, key, val uint64) {
	cnt := n.count(t)
	// Bug #4: non-atomic switch_counter update marks the shift in flight.
	sc := t.Load64(n.hdr.F("switch_counter"))
	t.Store64(n.hdr.F("switch_counter"), sc+1)

	// FAST shift: move entries one position right until the slot for key.
	i := cnt - 1
	for ; i >= 0; i-- {
		e := n.entries.At(i)
		k := t.Load64(e.F("key"))
		if k <= key {
			break
		}
		dst := n.entries.At(i + 1)
		// Bugs #5/#6: non-atomic entry key/ptr stores.
		t.Store64(dst.F("key"), k)
		t.Store64(dst.F("ptr"), t.Load64(e.F("ptr")))
		t.CLFlush(dst.Base())
	}
	slot := n.entries.At(i + 1)
	t.Store64(slot.F("key"), key)
	t.Store64(slot.F("ptr"), val)
	t.CLFlush(slot.Base())

	// Bug #3: non-atomic last_index update commits the insert.
	t.Store64(n.hdr.F("last_index"), uint64(cnt+1))
	t.Store64(n.hdr.F("switch_counter"), sc+2)
	t.CLFlush(n.hdr.F("last_index"))
	t.SFence()
}

// split moves the upper half of n into a fresh sibling and links it through
// sibling_ptr. It returns the separator key (the sibling's first key) and
// the sibling's address for the caller to install in the parent.
func (tr *Tree) split(t *pmm.Thread, n *node) (sepKey, sibAddr uint64) {
	level := t.Load64(n.hdr.F("level"))
	sib := tr.newNodeRuntime(t, level, NullPtr)
	half := Cardinality / 2

	// Move upper half into the sibling (construction-time: flushed before
	// publication below).
	for i := half; i < Cardinality; i++ {
		src, dst := n.entries.At(i), sib.entries.At(i-half)
		t.Store64(dst.F("key"), t.Load64(src.F("key")))
		t.Store64(dst.F("ptr"), t.Load64(src.F("ptr")))
		t.CLFlush(dst.Base())
	}
	t.Store64(sib.hdr.F("last_index"), uint64(Cardinality-half))
	sepKey = t.Load64(n.entries.At(half).F("key"))
	// Chain the old sibling link before publishing.
	t.Store64(sib.hdr.F("sibling_ptr"), t.Load64(n.hdr.F("sibling_ptr")))
	t.FlushRange(sib.hdr.Base(), sib.hdr.Size())
	t.SFence()

	// Bug #8: publication — non-atomic sibling_ptr store in the OLD node,
	// mutated after the node was already reachable.
	t.Store64(n.hdr.F("sibling_ptr"), sib.base())
	t.CLFlush(n.hdr.F("sibling_ptr"))
	// Shrink the old node.
	t.Store64(n.hdr.F("last_index"), uint64(half))
	t.CLFlush(n.hdr.F("last_index"))
	t.SFence()
	return sepKey, sib.base()
}

// Search returns the value for key. It performs FAST_FAIR's linear_search:
// read switch_counter (shift detection), scan keys/ptrs, and consult
// sibling_ptr for keys that migrated right during a split.
func (tr *Tree) Search(t *pmm.Thread, key uint64) (uint64, bool) {
	rootAddr := t.Load64(tr.btree.F("root"))
	n := tr.node(rootAddr)
	if n == nil {
		return 0, false
	}
	for t.Load64(n.hdr.F("level")) > 0 {
		n = tr.node(tr.childFor(t, n, key))
		if n == nil {
			return 0, false
		}
	}
	for n != nil {
		_ = t.Load64(n.hdr.F("switch_counter")) // shift-in-flight check
		cnt := n.count(t)
		if cnt > Cardinality+1 {
			cnt = Cardinality + 1 // defensive clamp against torn counts
		}
		for i := 0; i < cnt; i++ {
			e := n.entries.At(i)
			if t.Load64(e.F("key")) == key {
				return t.Load64(e.F("ptr")), true
			}
		}
		n = tr.node(t.Load64(n.hdr.F("sibling_ptr"))) // follow the split chain
	}
	return 0, false
}

// Delete removes key from its leaf by shifting entries left (FAIR shift).
func (tr *Tree) Delete(t *pmm.Thread, key uint64) bool {
	leaf := tr.node(t.Load64(tr.btree.F("root")))
	for t.Load64(leaf.hdr.F("level")) > 0 {
		leaf = tr.node(tr.childFor(t, leaf, key))
	}
	cnt := leaf.count(t)
	pos := -1
	for i := 0; i < cnt; i++ {
		if t.Load64(leaf.entries.At(i).F("key")) == key {
			pos = i
			break
		}
	}
	if pos < 0 {
		return false
	}
	sc := t.Load64(leaf.hdr.F("switch_counter"))
	t.Store64(leaf.hdr.F("switch_counter"), sc+1)
	for i := pos; i < cnt-1; i++ {
		src, dst := leaf.entries.At(i+1), leaf.entries.At(i)
		t.Store64(dst.F("key"), t.Load64(src.F("key")))
		t.Store64(dst.F("ptr"), t.Load64(src.F("ptr")))
		t.CLFlush(dst.Base())
	}
	t.Store64(leaf.hdr.F("last_index"), uint64(cnt-1))
	t.Store64(leaf.hdr.F("switch_counter"), sc+2)
	t.CLFlush(leaf.hdr.F("last_index"))
	t.SFence()
	return true
}

// Stats captures what the post-crash recovery observed.
type Stats struct {
	Found   int
	Missing int
	Wrong   int
}

// ValueFor is the deterministic value the driver inserts for a key.
func ValueFor(key uint64) uint64 { return key<<16 | 0xF }

// New returns the benchmark driver: insert numKeys keys in DESCENDING order
// (every insert shifts the existing entries — the FAST half of FAST_FAIR —
// and splits trigger along the way), delete one, and have recovery search
// every key.
func New(numKeys int, stats *Stats) func() pmm.Program {
	return func() pmm.Program {
		var tr *Tree
		return pmm.Program{
			Name:  "Fast_Fair",
			Setup: func(h *pmm.Heap) { tr = NewTree(h) },
			Workers: []func(*pmm.Thread){func(t *pmm.Thread) {
				for k := uint64(numKeys); k >= 1; k-- {
					tr.Insert(t, k, ValueFor(k))
				}
				if numKeys > 2 {
					tr.Delete(t, 2)
				}
			}},
			PostCrash: func(t *pmm.Thread) {
				for k := uint64(1); k <= uint64(numKeys); k++ {
					v, ok := tr.Search(t, k)
					if stats == nil {
						continue
					}
					switch {
					case !ok:
						stats.Missing++
					case v != ValueFor(k):
						stats.Wrong++
					default:
						stats.Found++
					}
				}
			},
		}
	}
}

// RangeScan returns the key/value pairs in [lo, hi] in key order by walking
// the leaf chain through sibling_ptr (the linearizable scans FAST_FAIR's
// B+-tree design exists for). Post-crash scans are race-observing too:
// they read last_index, switch_counter, entry keys/ptrs and sibling_ptr.
func (tr *Tree) RangeScan(t *pmm.Thread, lo, hi uint64) (keys, vals []uint64) {
	// Descend to the leaf covering lo.
	n := tr.node(t.Load64(tr.btree.F("root")))
	if n == nil {
		return nil, nil
	}
	for t.Load64(n.hdr.F("level")) > 0 {
		n = tr.node(tr.childFor(t, n, lo))
		if n == nil {
			return nil, nil
		}
	}
	for n != nil {
		_ = t.Load64(n.hdr.F("switch_counter"))
		cnt := n.count(t)
		if cnt > Cardinality+1 {
			cnt = Cardinality + 1
		}
		exceeded := false
		for i := 0; i < cnt; i++ {
			e := n.entries.At(i)
			k := t.Load64(e.F("key"))
			if k > hi {
				exceeded = true
				break
			}
			if k >= lo {
				keys = append(keys, k)
				vals = append(vals, t.Load64(e.F("ptr")))
			}
		}
		if exceeded {
			break
		}
		n = tr.node(t.Load64(n.hdr.F("sibling_ptr")))
	}
	return keys, vals
}
