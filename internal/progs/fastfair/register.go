package fastfair

import "yashme/internal/workload"

// The paper's FAST_FAIR evaluation: model-checked in Table 3 (6 races),
// seed 11 for the Table 5 row (2 prefix / 1 baseline).
func init() {
	workload.Register(workload.Spec{
		Name:          "Fast_Fair",
		Order:         1,
		Make:          New(7, nil),
		ModelCheck:    true,
		Table5Seed:    11,
		PaperPrefix:   2,
		PaperBaseline: 1,
		Tags:          []string{workload.TagTable3, workload.TagTable5, workload.TagIndex, workload.TagXFD},
	})
}
