package fastfair

import (
	"testing"

	"yashme/internal/engine"
	"yashme/internal/pmm"
	"yashme/internal/progs/progtest"
)

func TestRacesMatchPaperTable3(t *testing.T) {
	progtest.AssertRaces(t, New(7, nil), ExpectedRaces)
}

func TestFunctionalFullRun(t *testing.T) {
	var stats Stats
	progtest.RunFull(t, New(9, &stats))
	// Key 2 was deleted by the driver.
	if stats.Found != 8 || stats.Missing != 1 || stats.Wrong != 0 {
		t.Fatalf("full-run recovery stats = %+v, want 8 found / 1 missing (deleted) / 0 wrong", stats)
	}
}

func TestInsertSearchAcrossSplits(t *testing.T) {
	results := map[uint64]uint64{}
	mk := func() pmm.Program {
		var tr *Tree
		return pmm.Program{
			Name:  "ff-sem",
			Setup: func(h *pmm.Heap) { tr = NewTree(h) },
			Workers: []func(*pmm.Thread){func(t *pmm.Thread) {
				// Enough keys for multi-level splits with cardinality 4.
				for k := uint64(1); k <= 20; k++ {
					tr.Insert(t, k, ValueFor(k))
				}
				for k := uint64(1); k <= 20; k++ {
					if v, ok := tr.Search(t, k); ok {
						results[k] = v
					}
				}
			}},
		}
	}
	progtest.RunFull(t, mk)
	for k := uint64(1); k <= 20; k++ {
		if results[k] != ValueFor(k) {
			t.Fatalf("key %d = %#x, want %#x", k, results[k], ValueFor(k))
		}
	}
}

func TestDescendingInsertOrder(t *testing.T) {
	found := 0
	mk := func() pmm.Program {
		var tr *Tree
		return pmm.Program{
			Name:  "ff-desc",
			Setup: func(h *pmm.Heap) { tr = NewTree(h) },
			Workers: []func(*pmm.Thread){func(t *pmm.Thread) {
				for k := uint64(12); k >= 1; k-- {
					tr.Insert(t, k, ValueFor(k))
				}
				for k := uint64(1); k <= 12; k++ {
					if v, ok := tr.Search(t, k); ok && v == ValueFor(k) {
						found++
					}
				}
			}},
		}
	}
	progtest.RunFull(t, mk)
	if found != 12 {
		t.Fatalf("descending insert: found %d of 12", found)
	}
}

func TestDeleteSemantics(t *testing.T) {
	var okDel, foundAfter bool
	mk := func() pmm.Program {
		var tr *Tree
		return pmm.Program{
			Name:  "ff-del",
			Setup: func(h *pmm.Heap) { tr = NewTree(h) },
			Workers: []func(*pmm.Thread){func(t *pmm.Thread) {
				for k := uint64(1); k <= 3; k++ {
					tr.Insert(t, k, ValueFor(k))
				}
				okDel = tr.Delete(t, 2)
				_, foundAfter = tr.Search(t, 2)
			}},
		}
	}
	progtest.RunFull(t, mk)
	if !okDel || foundAfter {
		t.Fatalf("delete=%v foundAfter=%v", okDel, foundAfter)
	}
}

func TestDeleteMissingKey(t *testing.T) {
	var ok bool
	mk := func() pmm.Program {
		var tr *Tree
		return pmm.Program{
			Name:  "ff-delmiss",
			Setup: func(h *pmm.Heap) { tr = NewTree(h) },
			Workers: []func(*pmm.Thread){func(t *pmm.Thread) {
				tr.Insert(t, 1, 10)
				ok = tr.Delete(t, 99)
			}},
		}
	}
	progtest.RunFull(t, mk)
	if ok {
		t.Fatal("deleting a missing key reported success")
	}
}

// Construction-time fields (level, leftmost_ptr) are flushed before the
// node is published and must never be reported.
func TestConstructionFieldsAreSafe(t *testing.T) {
	res := engine.Run(New(7, nil), engine.Options{Mode: engine.ModelCheck, Prefix: true})
	for _, r := range res.Report.Races() {
		if r.Field == "header.level" || r.Field == "header.leftmost_ptr" {
			t.Fatalf("construction-time field raced: %v", r)
		}
	}
}

func TestPrefixBeatsBaselineOnSingleExecution(t *testing.T) {
	best := 0
	for seed := int64(1); seed <= 8; seed++ {
		prefix, baseline := progtest.BaselineFindsFewer(t, New(7, nil), seed)
		if d := prefix - baseline; d > best {
			best = d
		}
	}
	if best < 1 {
		t.Fatal("no seed exposed prefix-only races on Fast_Fair")
	}
}

func TestRangeScan(t *testing.T) {
	var keys, vals []uint64
	mk := func() pmm.Program {
		var tr *Tree
		return pmm.Program{
			Name:  "ff-scan",
			Setup: func(h *pmm.Heap) { tr = NewTree(h) },
			Workers: []func(*pmm.Thread){func(t *pmm.Thread) {
				for k := uint64(20); k >= 1; k-- { // descending: shifts + splits
					tr.Insert(t, k, ValueFor(k))
				}
				keys, vals = tr.RangeScan(t, 5, 15)
			}},
		}
	}
	progtest.RunFull(t, mk)
	if len(keys) != 11 {
		t.Fatalf("scan [5,15] returned %d keys: %v", len(keys), keys)
	}
	for i, k := range keys {
		if k != uint64(5+i) {
			t.Fatalf("scan out of order at %d: %v", i, keys)
		}
		if vals[i] != ValueFor(k) {
			t.Fatalf("scan value mismatch for key %d", k)
		}
	}
}

func TestRangeScanEmptyRange(t *testing.T) {
	var keys []uint64
	mk := func() pmm.Program {
		var tr *Tree
		return pmm.Program{
			Name:  "ff-scan-empty",
			Setup: func(h *pmm.Heap) { tr = NewTree(h) },
			Workers: []func(*pmm.Thread){func(t *pmm.Thread) {
				tr.Insert(t, 100, 1)
				keys, _ = tr.RangeScan(t, 5, 15)
			}},
		}
	}
	progtest.RunFull(t, mk)
	if len(keys) != 0 {
		t.Fatalf("empty range returned %v", keys)
	}
}

// A post-crash range scan observes the same race set as point lookups.
func TestRangeScanObservesRaces(t *testing.T) {
	mk := func() pmm.Program {
		var tr *Tree
		return pmm.Program{
			Name:  "Fast_Fair",
			Setup: func(h *pmm.Heap) { tr = NewTree(h) },
			Workers: []func(*pmm.Thread){func(t *pmm.Thread) {
				for k := uint64(7); k >= 1; k-- {
					tr.Insert(t, k, ValueFor(k))
				}
			}},
			PostCrash: func(t *pmm.Thread) {
				tr.RangeScan(t, 0, ^uint64(0))
			},
		}
	}
	res := engine.Run(mk, engine.Options{Mode: engine.ModelCheck, Prefix: true})
	fields := map[string]bool{}
	for _, f := range res.Report.Fields() {
		fields[f] = true
	}
	for _, want := range []string{"entry.key", "header.last_index", "header.switch_counter", "header.sibling_ptr", "btree.root"} {
		if !fields[want] {
			t.Errorf("range-scan recovery missed race on %s (got %v)", want, res.Report.Fields())
		}
	}
}
