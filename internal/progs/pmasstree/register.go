package pmasstree

import "yashme/internal/workload"

// The paper's P-Masstree evaluation: model-checked in Table 3 (3 races),
// seed 1 for the Table 5 row (2 prefix / 0 baseline).
func init() {
	workload.Register(workload.Spec{
		Name:        "P-Masstree",
		Order:       5,
		Make:        New(7, nil),
		ModelCheck:  true,
		Table5Seed:  1,
		PaperPrefix: 2,
		Tags:        []string{workload.TagTable3, workload.TagTable5, workload.TagIndex, workload.TagXFD},
	})
}
