// Package pmasstree reproduces P-Masstree from the RECIPE suite with the
// three persistency races Yashme reports for it (paper Table 3, bugs
// 17–19):
//
//	#17  root_       in masstree  class (masstree.h)
//	#18  permutation in leafnode  class (masstree.h)
//	#19  next        in leafnode  class (masstree.h)
//
// Masstree leaves store keys in arbitrary slots and encode the sorted order
// plus the live count in a single 64-bit "permutation" word, updated with a
// plain store after the slot is written (the insert's commit point). Leaf
// splits link the new leaf through the plain `next` pointer and may replace
// the plain `root_` pointer — all three are classic update-in-place
// non-atomic stores that recovery reads back.
package pmasstree

import (
	"fmt"

	"yashme/internal/pmm"
)

// LeafWidth is the (downsized) number of key slots per leaf.
const LeafWidth = 4

// ExpectedRaces are the fields the paper reports for P-Masstree.
var ExpectedRaces = []string{
	"leafnode.next",
	"leafnode.permutation",
	"masstree.root_",
}

// permutation encoding: low 8 bits = count, then 4 bits per rank giving the
// slot index in sorted order (like Masstree's permuter).
func permCount(p uint64) int          { return int(p & 0xFF) }
func permSlot(p uint64, rank int) int { return int((p >> (8 + 4*uint(rank))) & 0xF) }
func permInsert(p uint64, rank, slot, count int) uint64 {
	// Shift ranks >= rank up by one nibble and insert slot at rank.
	head := p & ((uint64(1) << (8 + 4*uint(rank))) - 1) & ^uint64(0xFF)
	tail := (p &^ 0xFF) &^ ((uint64(1) << (8 + 4*uint(rank))) - 1)
	return (tail << 4) | head | (uint64(slot) << (8 + 4*uint(rank))) | uint64(count+1)
}

// freeSlot returns a physical slot not referenced by the permutation, or -1.
// Masstree only ever writes into free slots: a slot becomes visible to
// readers solely through the subsequent permutation commit, which is what
// keeps the key/value stores themselves persistency-safe.
func freeSlot(p uint64) int {
	used := 0
	for r := 0; r < permCount(p); r++ {
		used |= 1 << permSlot(p, r)
	}
	for i := 0; i < LeafWidth; i++ {
		if used&(1<<i) == 0 {
			return i
		}
	}
	return -1
}

type leaf struct {
	s pmm.Struct
}

var leafLayout = func() pmm.Layout {
	l := pmm.Layout{
		{Name: "permutation", Size: 8},
		{Name: "next", Size: 8},
	}
	for i := 0; i < LeafWidth; i++ {
		l = append(l, pmm.FieldDef{Name: fmt.Sprintf("key%d", i), Size: 8})
		l = append(l, pmm.FieldDef{Name: fmt.Sprintf("val%d", i), Size: 8})
	}
	return l
}()

// Tree is a P-Masstree instance: a linked list of B+-style leaves reached
// from the root_ pointer (single layer of the trie, which is where all
// three reported bugs live).
type Tree struct {
	h      *pmm.Heap
	mt     pmm.Struct // "masstree" {root_}
	leaves map[uint64]*leaf
	// layers maps an 8-byte key prefix to its next-layer tree (Masstree's
	// layering for long keys).
	layers map[uint64]*Tree
}

// NewTree allocates the masstree struct and an empty root leaf.
func NewTree(h *pmm.Heap) *Tree {
	tr := &Tree{h: h, mt: h.AllocStruct("masstree", pmm.Layout{{Name: "root_", Size: 8}}), leaves: make(map[uint64]*leaf), layers: make(map[uint64]*Tree)}
	l := &leaf{s: h.AllocStruct("leafnode", leafLayout)}
	tr.leaves[uint64(l.s.Base())] = l
	h.Init(tr.mt.F("root_"), 8, uint64(l.s.Base()))
	return tr
}

// leafAt resolves a leaf pointer loaded from persistent memory. The leaves
// map is the warm path; on a miss (fresh-process recovery, where the map
// holds only Setup-time entries) the leaf is reattached from the heap
// itself, mirroring how recovery code casts a mapped PM offset back to a
// leafnode pointer.
func (tr *Tree) leafAt(addr uint64) *leaf {
	if addr == 0 {
		return nil
	}
	if l, ok := tr.leaves[addr]; ok {
		return l
	}
	s, ok := tr.h.StructAt(pmm.Addr(addr))
	if !ok || s.Label() != "leafnode" {
		return nil
	}
	l := &leaf{s: s}
	tr.leaves[addr] = l
	return l
}

// newLeafRuntime allocates a leaf during execution; construction-time
// stores are flushed before publication.
func (tr *Tree) newLeafRuntime(t *pmm.Thread) *leaf {
	l := &leaf{s: tr.h.AllocStruct("leafnode", leafLayout)}
	t.Store64(l.s.F("permutation"), 0)
	t.Store64(l.s.F("next"), 0)
	t.FlushRange(l.s.Base(), l.s.Size())
	t.SFence()
	tr.leaves[uint64(l.s.Base())] = l
	return l
}

// findLeaf walks the leaf chain to the leaf that should hold key.
func (tr *Tree) findLeaf(t *pmm.Thread, key uint64) *leaf {
	// Bug #17's observing load: the plain root_ read.
	l := tr.leafAt(t.Load64(tr.mt.F("root_")))
	for l != nil {
		nextAddr := t.Load64(l.s.F("next")) // bug #19's observing load
		next := tr.leafAt(nextAddr)
		if next == nil {
			return l
		}
		// Keys migrate right on split; go right while the next leaf's
		// smallest key is <= key.
		np := t.Load64(next.s.F("permutation"))
		if permCount(np) == 0 || t.Load64(next.s.F(fmt.Sprintf("key%d", permSlot(np, 0)))) > key {
			return l
		}
		l = next
	}
	return nil
}

// Insert writes the key/value into a free slot, then commits it with a
// plain permutation store (bug #18), splitting full leaves (bugs #17/#19).
func (tr *Tree) Insert(t *pmm.Thread, key, value uint64) {
	l := tr.findLeaf(t, key)
	p := t.Load64(l.s.F("permutation"))
	cnt := permCount(p)
	if cnt >= LeafWidth {
		l = tr.split(t, l, key)
		p = t.Load64(l.s.F("permutation"))
		cnt = permCount(p)
	}
	slot := freeSlot(p)
	t.Store64(l.s.F(fmt.Sprintf("key%d", slot)), key)
	t.Store64(l.s.F(fmt.Sprintf("val%d", slot)), value)
	t.FlushRange(l.s.F(fmt.Sprintf("key%d", slot)), 16)
	t.SFence()
	// Rank of the new key in sorted order.
	rank := 0
	for ; rank < cnt; rank++ {
		if t.Load64(l.s.F(fmt.Sprintf("key%d", permSlot(p, rank)))) > key {
			break
		}
	}
	// Bug #18: the plain permutation store is the commit point.
	t.Store64(l.s.F("permutation"), permInsert(p, rank, slot, cnt))
	t.CLFlush(l.s.F("permutation"))
	t.SFence()
}

// split moves the upper half of l into a new right sibling and links it in.
func (tr *Tree) split(t *pmm.Thread, l *leaf, key uint64) *leaf {
	right := tr.newLeafRuntime(t)
	p := t.Load64(l.s.F("permutation"))
	half := LeafWidth / 2
	var rp uint64
	for rank := half; rank < permCount(p); rank++ {
		slot := permSlot(p, rank)
		dst := rank - half
		t.Store64(right.s.F(fmt.Sprintf("key%d", dst)), t.Load64(l.s.F(fmt.Sprintf("key%d", slot))))
		t.Store64(right.s.F(fmt.Sprintf("val%d", dst)), t.Load64(l.s.F(fmt.Sprintf("val%d", slot))))
		rp = permInsert(rp, dst, dst, dst)
	}
	t.Store64(right.s.F("permutation"), rp)
	t.Store64(right.s.F("next"), t.Load64(l.s.F("next")))
	t.FlushRange(right.s.Base(), right.s.Size())
	t.SFence()

	// Bug #19: plain next-pointer publication in the already-reachable leaf.
	t.Store64(l.s.F("next"), uint64(right.s.Base()))
	t.CLFlush(l.s.F("next"))
	// Shrink the left leaf: keep the low half of the permutation.
	var lp uint64
	for rank := 0; rank < half; rank++ {
		slot := permSlot(p, rank)
		lp = permInsert(lp, rank, slot, rank)
	}
	t.Store64(l.s.F("permutation"), lp)
	t.CLFlush(l.s.F("permutation"))
	t.SFence()

	// Bug #17: if the split leaf was the root, replace root_ with a plain
	// store (the original swings root_ to a new interior node; the race is
	// on the root_ store itself, which our flat layer preserves).
	if t.Load64(tr.mt.F("root_")) == uint64(l.s.Base()) {
		firstKey := t.Load64(l.s.F(fmt.Sprintf("key%d", permSlot(lp, 0))))
		_ = firstKey
		t.Store64(tr.mt.F("root_"), uint64(l.s.Base())) // re-anchor (leftmost leaf stays the entry)
		t.CLFlush(tr.mt.F("root_"))
		t.SFence()
	}

	// Continue the insert in whichever leaf now covers key.
	rFirst := t.Load64(right.s.F(fmt.Sprintf("key%d", permSlot(rp, 0))))
	if key >= rFirst {
		return right
	}
	return l
}

// Get looks a key up by walking the leaf chain and the permutation.
func (tr *Tree) Get(t *pmm.Thread, key uint64) (uint64, bool) {
	l := tr.findLeaf(t, key)
	if l == nil {
		return 0, false
	}
	p := t.Load64(l.s.F("permutation"))
	cnt := permCount(p)
	if cnt > LeafWidth {
		cnt = LeafWidth // defensive clamp against torn permutation words
	}
	for rank := 0; rank < cnt; rank++ {
		slot := permSlot(p, rank)
		if t.Load64(l.s.F(fmt.Sprintf("key%d", slot))) == key {
			return t.Load64(l.s.F(fmt.Sprintf("val%d", slot))), true
		}
	}
	return 0, false
}

// Stats captures what recovery observed.
type Stats struct {
	Found   int
	Missing int
	Wrong   int
}

// ValueFor is the deterministic value the driver inserts for a key.
func ValueFor(key uint64) uint64 { return key<<8 | 0x5A }

// New returns the benchmark driver: insert keys in an order that exercises
// splits and permutation reshuffles; recovery looks every key up.
func New(numKeys int, stats *Stats) func() pmm.Program {
	return func() pmm.Program {
		var tr *Tree
		return pmm.Program{
			Name:  "P-Masstree",
			Setup: func(h *pmm.Heap) { tr = NewTree(h) },
			Workers: []func(*pmm.Thread){func(t *pmm.Thread) {
				for k := uint64(numKeys); k >= 1; k-- {
					tr.Insert(t, k, ValueFor(k))
				}
			}},
			PostCrash: func(t *pmm.Thread) {
				for k := uint64(1); k <= uint64(numKeys); k++ {
					v, ok := tr.Get(t, k)
					if stats == nil {
						continue
					}
					switch {
					case !ok:
						stats.Missing++
					case v != ValueFor(k):
						stats.Wrong++
					default:
						stats.Found++
					}
				}
			},
		}
	}
}

// newSubTree allocates a next-layer tree at runtime: Masstree handles keys
// longer than 8 bytes by layering — a slot whose keys share an 8-byte
// prefix points to a whole subordinate tree indexed by the next 8 bytes.
// The new layer's structures are flushed before the slot that publishes
// them, so layer creation introduces no new racy fields.
func (tr *Tree) newSubTree(t *pmm.Thread) *Tree {
	sub := &Tree{h: tr.h, mt: tr.h.AllocStruct("masstree", pmm.Layout{{Name: "root_", Size: 8}}), leaves: make(map[uint64]*leaf), layers: make(map[uint64]*Tree)}
	l := sub.newLeafRuntime(t)
	t.Store64(sub.mt.F("root_"), uint64(l.s.Base()))
	t.Persist(sub.mt.F("root_"), 8)
	return sub
}

// InsertLong inserts a 16-byte key (k1 ++ k2) through the layer mechanism:
// k1 indexes the top layer, whose slot holds the next-layer tree; k2
// indexes that layer.
func (tr *Tree) InsertLong(t *pmm.Thread, k1, k2, value uint64) {
	if sub, ok := tr.layers[k1]; ok {
		sub.Insert(t, k2, value)
		return
	}
	sub := tr.newSubTree(t)
	tr.layers[k1] = sub
	// Publish the layer through the normal insert protocol: the slot value
	// is the sub-tree's handle.
	tr.Insert(t, k1, uint64(sub.mt.Base()))
	sub.Insert(t, k2, value)
}

// GetLong looks a 16-byte key up through the layers. The sub-tree handle is
// resolved from the value stored in the top layer's slot (not from the
// Go-side layers map alone), so the walk works identically in fresh-process
// recovery where the layers map is empty.
func (tr *Tree) GetLong(t *pmm.Thread, k1, k2 uint64) (uint64, bool) {
	subBase, found := tr.Get(t, k1)
	if !found {
		return 0, false
	}
	sub := tr.layerAt(k1, subBase)
	if sub == nil {
		return 0, false
	}
	return sub.Get(t, k2)
}

// layerAt resolves the next-layer tree published under prefix k1 whose
// masstree struct lives at base. The layers map is the warm path; on a miss
// the layer is reattached from the heap (empty Go-side registries — its
// leaves resolve lazily through leafAt).
func (tr *Tree) layerAt(k1, base uint64) *Tree {
	if sub, ok := tr.layers[k1]; ok {
		return sub
	}
	mt, ok := tr.h.StructAt(pmm.Addr(base))
	if !ok || mt.Label() != "masstree" {
		return nil
	}
	sub := &Tree{h: tr.h, mt: mt, leaves: make(map[uint64]*leaf), layers: make(map[uint64]*Tree)}
	tr.layers[k1] = sub
	return sub
}
