package pmasstree

import (
	"testing"

	"yashme/internal/pmm"
	"yashme/internal/progs/progtest"
)

func TestRacesMatchPaperTable3(t *testing.T) {
	// 7 descending keys force a split (next/root_ updates) plus ordinary
	// permutation commits.
	progtest.AssertRaces(t, New(7, nil), ExpectedRaces)
}

func TestFunctionalFullRun(t *testing.T) {
	var stats Stats
	progtest.RunFull(t, New(7, &stats))
	if stats.Found != 7 || stats.Missing != 0 || stats.Wrong != 0 {
		t.Fatalf("full-run recovery stats = %+v, want 7/0/0", stats)
	}
}

func TestPermutationEncoding(t *testing.T) {
	p := uint64(0)
	p = permInsert(p, 0, 0, 0) // key in slot 0, rank 0
	if permCount(p) != 1 || permSlot(p, 0) != 0 {
		t.Fatalf("after first insert: count=%d slot0=%d", permCount(p), permSlot(p, 0))
	}
	// Insert a smaller key into slot 1: it takes rank 0, pushing slot 0 to
	// rank 1.
	p = permInsert(p, 0, 1, 1)
	if permCount(p) != 2 || permSlot(p, 0) != 1 || permSlot(p, 1) != 0 {
		t.Fatalf("after second insert: count=%d ranks=[%d %d]", permCount(p), permSlot(p, 0), permSlot(p, 1))
	}
	// Insert a larger key into slot 2 at rank 2.
	p = permInsert(p, 2, 2, 2)
	if permCount(p) != 3 || permSlot(p, 2) != 2 || permSlot(p, 0) != 1 {
		t.Fatalf("after third insert: count=%d ranks=[%d %d %d]",
			permCount(p), permSlot(p, 0), permSlot(p, 1), permSlot(p, 2))
	}
	// Middle insert: slot 3 at rank 1 shifts ranks 1,2 up.
	p = permInsert(p, 1, 3, 3)
	want := []int{1, 3, 0, 2}
	for r, w := range want {
		if permSlot(p, r) != w {
			t.Fatalf("after middle insert rank %d = %d, want %d", r, permSlot(p, r), w)
		}
	}
}

func TestInsertAscendingAndDescending(t *testing.T) {
	for name, order := range map[string][]uint64{
		"ascending":  {1, 2, 3, 4, 5, 6, 7, 8, 9, 10},
		"descending": {10, 9, 8, 7, 6, 5, 4, 3, 2, 1},
		"mixed":      {5, 1, 9, 3, 7, 2, 8, 4, 10, 6},
	} {
		found := 0
		order := order
		mk := func() pmm.Program {
			var tr *Tree
			return pmm.Program{
				Name:  "mass-" + name,
				Setup: func(h *pmm.Heap) { tr = NewTree(h) },
				Workers: []func(*pmm.Thread){func(t *pmm.Thread) {
					for _, k := range order {
						tr.Insert(t, k, ValueFor(k))
					}
					for _, k := range order {
						if v, ok := tr.Get(t, k); ok && v == ValueFor(k) {
							found++
						}
					}
				}},
			}
		}
		progtest.RunFull(t, mk)
		if found != len(order) {
			t.Fatalf("%s: found %d of %d", name, found, len(order))
		}
	}
}

func TestGetMissingKey(t *testing.T) {
	var ok bool
	mk := func() pmm.Program {
		var tr *Tree
		return pmm.Program{
			Name:  "mass-miss",
			Setup: func(h *pmm.Heap) { tr = NewTree(h) },
			Workers: []func(*pmm.Thread){func(t *pmm.Thread) {
				tr.Insert(t, 5, 50)
				_, ok = tr.Get(t, 6)
			}},
		}
	}
	progtest.RunFull(t, mk)
	if ok {
		t.Fatal("missing key reported found")
	}
}

// Masstree layering: 16-byte keys sharing an 8-byte prefix live in a
// next-layer tree; distinct prefixes get distinct layers.
func TestLayeredLongKeys(t *testing.T) {
	type kv struct{ k1, k2, v uint64 }
	keys := []kv{
		{0xAAAA, 1, 100}, {0xAAAA, 2, 200}, {0xAAAA, 3, 300}, // shared prefix
		{0xBBBB, 1, 400}, // different prefix, same suffix
	}
	results := map[[2]uint64]uint64{}
	mk := func() pmm.Program {
		var tr *Tree
		return pmm.Program{
			Name:  "mass-layers",
			Setup: func(h *pmm.Heap) { tr = NewTree(h) },
			Workers: []func(*pmm.Thread){func(t *pmm.Thread) {
				for _, e := range keys {
					tr.InsertLong(t, e.k1, e.k2, e.v)
				}
				for _, e := range keys {
					if v, ok := tr.GetLong(t, e.k1, e.k2); ok {
						results[[2]uint64{e.k1, e.k2}] = v
					}
				}
			}},
		}
	}
	progtest.RunFull(t, mk)
	for _, e := range keys {
		if results[[2]uint64{e.k1, e.k2}] != e.v {
			t.Fatalf("key (%#x,%d) = %d, want %d", e.k1, e.k2, results[[2]uint64{e.k1, e.k2}], e.v)
		}
	}
}

func TestLayeredMissingKeys(t *testing.T) {
	var okPrefix, okSuffix bool
	mk := func() pmm.Program {
		var tr *Tree
		return pmm.Program{
			Name:  "mass-layers-miss",
			Setup: func(h *pmm.Heap) { tr = NewTree(h) },
			Workers: []func(*pmm.Thread){func(t *pmm.Thread) {
				tr.InsertLong(t, 1, 1, 11)
				_, okPrefix = tr.GetLong(t, 2, 1) // unknown prefix
				_, okSuffix = tr.GetLong(t, 1, 9) // unknown suffix
			}},
		}
	}
	progtest.RunFull(t, mk)
	if okPrefix || okSuffix {
		t.Fatalf("missing long keys reported found: prefix=%v suffix=%v", okPrefix, okSuffix)
	}
}

// Layering introduces no new racy fields: a long-key driver reports the
// same three Table 3 bugs.
func TestLayeredDriverSameRaceSet(t *testing.T) {
	mk := func() pmm.Program {
		var tr *Tree
		return pmm.Program{
			Name:  "P-Masstree",
			Setup: func(h *pmm.Heap) { tr = NewTree(h) },
			Workers: []func(*pmm.Thread){func(t *pmm.Thread) {
				// All 7 suffixes share one prefix, so the next-layer tree
				// splits (LeafWidth 4): the layer exercises next/root_ too.
				for k := uint64(7); k >= 1; k-- {
					tr.InsertLong(t, 0xAA, k, ValueFor(k))
				}
			}},
			PostCrash: func(t *pmm.Thread) {
				for k := uint64(1); k <= 7; k++ {
					tr.GetLong(t, 0xAA, k)
				}
			},
		}
	}
	progtest.AssertRaces(t, mk, ExpectedRaces)
}
