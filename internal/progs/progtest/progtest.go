// Package progtest provides shared assertions for the benchmark
// reproductions: that model checking finds exactly the paper's racy fields,
// and that the data structures are functionally correct (a full run's
// recovery observes every inserted item).
package progtest

import (
	"sort"
	"testing"

	"yashme/internal/engine"
	"yashme/internal/pmm"
)

// AssertRaces model-checks the program and requires the set of non-benign
// racing fields to be exactly expected (order-insensitive).
func AssertRaces(t *testing.T, mk func() pmm.Program, expected []string) {
	t.Helper()
	res := engine.Run(mk, engine.Options{Mode: engine.ModelCheck, Prefix: true})
	got := res.Report.Fields()
	want := append([]string(nil), expected...)
	sort.Strings(want)
	if !equal(got, want) {
		t.Fatalf("racing fields = %v\nwant            = %v\nreports:\n%s", got, want, res.Report)
	}
}

// AssertNoRaces model-checks the program and requires zero non-benign races
// (the P-CLHT control).
func AssertNoRaces(t *testing.T, mk func() pmm.Program) {
	t.Helper()
	res := engine.Run(mk, engine.Options{Mode: engine.ModelCheck, Prefix: true})
	if res.Report.Count() != 0 {
		t.Fatalf("expected no races, found:\n%s", res.Report)
	}
}

// RunFull runs a single scenario to completion with the full volatile state
// persisted — the functional-correctness configuration: recovery must see
// everything the workload wrote.
func RunFull(t *testing.T, mk func() pmm.Program) {
	t.Helper()
	engine.RunOne(mk, engine.Options{Prefix: true}, 0, engine.PersistLatest, 1)
}

// BaselineFindsFewer asserts the paper's Table 5 shape on this program: in
// identical single random executions, prefix mode finds at least as many
// races as the baseline.
func BaselineFindsFewer(t *testing.T, mk func() pmm.Program, seed int64) (prefix, baseline int) {
	t.Helper()
	p := engine.Run(mk, engine.Options{Mode: engine.RandomMode, Prefix: true, Seed: seed, Executions: 1})
	b := engine.Run(mk, engine.Options{Mode: engine.RandomMode, Prefix: false, Seed: seed, Executions: 1})
	if p.Report.Count() < b.Report.Count() {
		t.Fatalf("prefix found %d < baseline %d", p.Report.Count(), b.Report.Count())
	}
	return p.Report.Count(), b.Report.Count()
}

func equal(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
