package cceh

import "yashme/internal/workload"

// The paper's CCEH evaluation: model-checked in Table 3 (2 races), seed 1
// for the single-execution Table 5 row (2 prefix / 0 baseline), and the
// benchmark the detection-window histogram (Figures 5b/6) is drawn from.
func init() {
	workload.Register(workload.Spec{
		Name:        "CCEH",
		Order:       0,
		Make:        New(4, nil),
		ModelCheck:  true,
		Table5Seed:  1,
		PaperPrefix: 2,
		Tags:        []string{workload.TagTable3, workload.TagTable5, workload.TagIndex, workload.TagWindow, workload.TagXFD},
	})
}
