package cceh

import (
	"testing"

	"yashme/internal/engine"
	"yashme/internal/pmm"
	"yashme/internal/progs/progtest"
)

func TestRacesMatchPaperTable3(t *testing.T) {
	progtest.AssertRaces(t, New(4, nil), ExpectedRaces)
}

func TestFunctionalFullRun(t *testing.T) {
	var stats Stats
	progtest.RunFull(t, New(6, &stats))
	if stats.Missing != 0 || stats.Wrong != 0 {
		t.Fatalf("full run lost data: %+v", stats)
	}
	if stats.Found != 6 {
		t.Fatalf("found %d of 6 keys", stats.Found)
	}
}

func TestInsertGetDeleteSemantics(t *testing.T) {
	var got uint64
	var ok1, okDel, ok2 bool
	mk := func() pmm.Program {
		var tb *Table
		return pmm.Program{
			Name:  "cceh-sem",
			Setup: func(h *pmm.Heap) { tb = NewTable(h) },
			Workers: []func(*pmm.Thread){func(t *pmm.Thread) {
				tb.Insert(t, 42, 420)
				got, ok1 = tb.Get(t, 42)
				okDel = tb.Delete(t, 42)
				_, ok2 = tb.Get(t, 42)
			}},
		}
	}
	progtest.RunFull(t, mk)
	if !ok1 || got != 420 {
		t.Fatalf("Get after Insert = (%d, %v)", got, ok1)
	}
	if !okDel {
		t.Fatal("Delete failed")
	}
	if ok2 {
		t.Fatal("Get after Delete still found the key")
	}
}

func TestInsertFullGroupFails(t *testing.T) {
	// Keys that collide into the same probe group eventually exhaust it.
	inserted := 0
	mk := func() pmm.Program {
		var tb *Table
		return pmm.Program{
			Name:  "cceh-full",
			Setup: func(h *pmm.Heap) { tb = NewTable(h) },
			Workers: []func(*pmm.Thread){func(t *pmm.Thread) {
				// Same key hashed repeatedly lands in the same group;
				// distinct keys with identical hashes aren't constructable
				// here, so insert the same key 5 times: each insert claims a
				// fresh slot in the 4-slot window, the 5th must fail.
				for i := 0; i < 5; i++ {
					if tb.Insert(t, 7, uint64(i)) {
						inserted++
					}
				}
			}},
		}
	}
	progtest.RunFull(t, mk)
	if inserted != 4 {
		t.Fatalf("inserted %d times into a 4-slot group, want 4", inserted)
	}
}

func TestPrefixBeatsBaselineOnSingleExecution(t *testing.T) {
	// Table 5 row: CCEH prefix=2, baseline=0 on a single random execution.
	// The crash point is random per seed, so scan a few seeds: prefix must
	// never trail baseline, and at least one seed must expose races the
	// baseline misses.
	best := 0
	for seed := int64(1); seed <= 8; seed++ {
		prefix, baseline := progtest.BaselineFindsFewer(t, New(4, nil), seed)
		if d := prefix - baseline; d > best {
			best = d
		}
	}
	if best < 1 {
		t.Fatal("no seed exposed prefix-only races on CCEH")
	}
}

func TestPairFieldsShareCacheLine(t *testing.T) {
	h := pmm.NewHeap()
	tb := NewTable(h)
	for s := range tb.segments {
		for i := 0; i < tb.segments[s].Len(); i++ {
			p := tb.segments[s].At(i)
			if !pmm.SameLine(p.F("key"), p.F("value")) {
				t.Fatalf("segment %d pair %d: key and value on different lines (breaks the CCEH ordering assumption)", s, i)
			}
		}
	}
}

func TestRecoveryNeverSeesSentinel(t *testing.T) {
	// The CAS sentinel is an atomic store; even when the crash lands between
	// the CAS and the key store, recovery sees Sentinel (atomic, no race) —
	// Get just doesn't match it. Make sure the sentinel value is never
	// reported as a racing field.
	res := engine.Run(New(3, nil), engine.Options{Mode: engine.ModelCheck, Prefix: true})
	for _, r := range res.Report.Races() {
		if r.Field != "Pair.key" && r.Field != "Pair.value" {
			t.Fatalf("unexpected racing field %q", r.Field)
		}
	}
}

func TestConcurrentDriverFindsRaces(t *testing.T) {
	res := engine.Run(NewConcurrent(6, nil), engine.Options{Mode: engine.ModelCheck, Prefix: true})
	fields := res.Report.Fields()
	if len(fields) != 2 || fields[0] != "Pair.key" || fields[1] != "Pair.value" {
		t.Fatalf("concurrent driver races = %v", fields)
	}
}

func TestConcurrentDriverFunctional(t *testing.T) {
	var stats Stats
	progtest.RunFull(t, NewConcurrent(6, &stats))
	if stats.Found != 6 || stats.Missing != 0 || stats.Wrong != 0 {
		t.Fatalf("concurrent full-run stats = %+v, want 6/0/0", stats)
	}
}

// Random schedules interleave the two writers arbitrarily; the CAS
// protocol must keep the table consistent in every full run.
func TestConcurrentDriverUnderRandomSchedules(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		var stats Stats
		engine.RunOne(NewConcurrent(6, &stats), engine.Options{Prefix: true, Mode: engine.RandomMode},
			0, engine.PersistLatest, seed)
		if stats.Wrong != 0 {
			t.Fatalf("seed %d: wrong values under concurrent inserts: %+v", seed, stats)
		}
		if stats.Found+stats.Missing != 6 {
			t.Fatalf("seed %d: lookups lost: %+v", seed, stats)
		}
	}
}

// The paper's fix (atomic release stores) eliminates both races without
// changing the data-structure logic — and recovery still finds all data.
func TestFixedVariantHasNoRaces(t *testing.T) {
	progtest.AssertNoRaces(t, NewFixed(4, nil))
}

func TestFixedVariantFunctional(t *testing.T) {
	var stats Stats
	progtest.RunFull(t, NewFixed(6, &stats))
	if stats.Found != 6 || stats.Missing != 0 || stats.Wrong != 0 {
		t.Fatalf("fixed variant full-run stats = %+v", stats)
	}
}
