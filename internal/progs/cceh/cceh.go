// Package cceh reproduces the Cacheline-Conscious Extendible Hashing table
// (CCEH, FAST '19) as distributed with the RECIPE suite, including the two
// persistency races Yashme found in it (paper Table 3, bugs 1–2):
//
//	#1  value in Pair struct (pair.h)
//	#2  key   in Pair struct (pair.h)
//
// The insertion protocol is the paper's Figure 3: a CAS on the key field
// locks a slot (writing SENTINEL), the value field is stored, an mfence
// orders the stores, and then the key field is stored to commit the
// insertion — relying on key and value sharing a cache line so the value
// persists no later than the key. Both commits are NON-ATOMIC stores, so a
// poorly timed crash lets the compiler-torn key or value become partially
// persistent; the post-crash Get (Figure 10) reads both fields and observes
// the race.
package cceh

import (
	"yashme/internal/pmm"
)

// Slot states in the key field (as in CCEH's pair.h).
const (
	// Invalid marks an empty slot.
	Invalid = uint64(0)
	// Sentinel marks a slot locked for an in-flight insertion.
	Sentinel = ^uint64(0)
)

// Geometry of the (downsized) table: segments of line-grouped pairs, four
// 16-byte pairs per 64-byte cache line — the "cacheline-conscious" probing.
const (
	numSegments     = 2
	slotsPerSegment = 16
	probeWindow     = 4 // slots probed within one cache line group
)

// ExpectedRaces are the fields the paper reports for CCEH.
var ExpectedRaces = []string{"Pair.key", "Pair.value"}

// Table is a CCEH instance on the simulated persistent heap.
type Table struct {
	segments [numSegments]pmm.Array
}

// NewTable allocates the table. Every slot starts Invalid (zero).
func NewTable(h *pmm.Heap) *Table {
	tb := &Table{}
	layout := pmm.Layout{{Name: "key", Size: 8}, {Name: "value", Size: 8}}
	for i := range tb.segments {
		tb.segments[i] = h.AllocArray("Pair", layout, slotsPerSegment)
	}
	return tb
}

func hash(key uint64) uint64 { return key * 0x9E3779B97F4A7C15 }

func (tb *Table) slotFor(key uint64, probe int) (seg pmm.Array, idx int) {
	hv := hash(key)
	seg = tb.segments[hv%numSegments]
	group := int((hv>>8)%uint64(slotsPerSegment/probeWindow)) * probeWindow
	return seg, group + probe
}

// Insert implements Segment::Insert (paper Figure 3): CAS-lock the slot via
// the key field, store value, mfence, store key, then flush the pair. It
// reports whether the insertion found a free slot.
func (tb *Table) Insert(t *pmm.Thread, key, value uint64) bool {
	for probe := 0; probe < probeWindow; probe++ {
		seg, idx := tb.slotFor(key, probe)
		pair := seg.At(idx)
		keyAddr := pair.F("key")
		if !t.CAS64(keyAddr, Invalid, Sentinel) {
			continue // slot occupied or locked
		}
		// Bug #1: non-atomic store to the value field.
		t.Store64(pair.F("value"), value)
		t.MFence()
		// Bug #2: non-atomic store to the key field commits the insertion.
		t.Store64(keyAddr, key)
		// The caller flushes both stores (key and value share a line).
		t.CLFlush(keyAddr)
		return true
	}
	return false
}

// Get implements CCEH::Get (paper Figure 10): it reads the non-atomic key
// and value fields — the race-observing loads.
func (tb *Table) Get(t *pmm.Thread, key uint64) (uint64, bool) {
	for probe := 0; probe < probeWindow; probe++ {
		seg, idx := tb.slotFor(key, probe)
		pair := seg.At(idx)
		if t.Load64(pair.F("key")) == key {
			return t.Load64(pair.F("value")), true
		}
	}
	return 0, false
}

// Delete clears a slot. CCEH deletes by resetting the key to Invalid with a
// locked operation so concurrent inserts can re-claim the slot.
func (tb *Table) Delete(t *pmm.Thread, key uint64) bool {
	for probe := 0; probe < probeWindow; probe++ {
		seg, idx := tb.slotFor(key, probe)
		pair := seg.At(idx)
		keyAddr := pair.F("key")
		if t.Load64(keyAddr) == key {
			t.CAS64(keyAddr, key, Invalid)
			t.CLFlush(keyAddr)
			return true
		}
	}
	return false
}

// Stats captures what the post-crash recovery observed, for functional
// verification.
type Stats struct {
	Found   int
	Missing int
	Wrong   int
}

// ValueFor is the deterministic value the driver inserts for a key.
func ValueFor(key uint64) uint64 { return key*10 + 1 }

// New returns the benchmark driver: the pre-crash worker inserts keys
// 1..numKeys (then deletes one), and the recovery looks every key up,
// verifying values. stats (optional) accumulates what recovery observed.
func New(numKeys int, stats *Stats) func() pmm.Program {
	return func() pmm.Program {
		var tb *Table
		return pmm.Program{
			Name: "CCEH",
			Setup: func(h *pmm.Heap) {
				tb = NewTable(h)
			},
			Workers: []func(*pmm.Thread){func(t *pmm.Thread) {
				for k := uint64(1); k <= uint64(numKeys); k++ {
					tb.Insert(t, k, ValueFor(k))
				}
			}},
			PostCrash: func(t *pmm.Thread) {
				for k := uint64(1); k <= uint64(numKeys); k++ {
					v, ok := tb.Get(t, k)
					if stats == nil {
						continue
					}
					switch {
					case !ok:
						stats.Missing++
					case v != ValueFor(k):
						stats.Wrong++
					default:
						stats.Found++
					}
				}
			},
		}
	}
}

// NewConcurrent returns a two-writer driver: the CAS slot-locking protocol
// makes concurrent insertions legal (the paper's RECIPE benchmarks are
// concurrent indexes and Yashme "fully supports multi-threaded programs",
// §4.2). Workers insert disjoint key ranges; recovery looks everything up.
func NewConcurrent(numKeys int, stats *Stats) func() pmm.Program {
	return func() pmm.Program {
		var tb *Table
		insertRange := func(from, to uint64) func(*pmm.Thread) {
			return func(t *pmm.Thread) {
				for k := from; k <= to; k++ {
					tb.Insert(t, k, ValueFor(k))
				}
			}
		}
		half := uint64(numKeys) / 2
		return pmm.Program{
			Name:  "CCEH-mt",
			Setup: func(h *pmm.Heap) { tb = NewTable(h) },
			Workers: []func(*pmm.Thread){
				insertRange(1, half),
				insertRange(half+1, uint64(numKeys)),
			},
			PostCrash: func(t *pmm.Thread) {
				for k := uint64(1); k <= uint64(numKeys); k++ {
					v, ok := tb.Get(t, k)
					if stats == nil {
						continue
					}
					switch {
					case !ok:
						stats.Missing++
					case v != ValueFor(k):
						stats.Wrong++
					default:
						stats.Found++
					}
				}
			},
		}
	}
}

// NewFixed returns the driver for the REPAIRED table: the paper's
// recommended fix (§3.1, §7.2) replaces the racing non-atomic key/value
// stores with atomic release stores — on x86 these compile to ordinary mov
// instructions, so the fix costs nothing, but it forbids the compiler
// optimizations (store tearing, store inventing) that make the plain
// stores dangerous. The detector must find zero races.
func NewFixed(numKeys int, stats *Stats) func() pmm.Program {
	return func() pmm.Program {
		var tb *Table
		return pmm.Program{
			Name:  "CCEH-fixed",
			Setup: func(h *pmm.Heap) { tb = NewTable(h) },
			Workers: []func(*pmm.Thread){func(t *pmm.Thread) {
				for k := uint64(1); k <= uint64(numKeys); k++ {
					tb.InsertFixed(t, k, ValueFor(k))
				}
			}},
			PostCrash: func(t *pmm.Thread) {
				for k := uint64(1); k <= uint64(numKeys); k++ {
					v, ok := tb.GetFixed(t, k)
					if stats == nil {
						continue
					}
					switch {
					case !ok:
						stats.Missing++
					case v != ValueFor(k):
						stats.Wrong++
					default:
						stats.Found++
					}
				}
			},
		}
	}
}

// InsertFixed is Insert with the persistency races repaired: value and key
// commit through atomic release stores (memory_order_release — a plain mov
// on x86, but no tearing allowed).
func (tb *Table) InsertFixed(t *pmm.Thread, key, value uint64) bool {
	for probe := 0; probe < probeWindow; probe++ {
		seg, idx := tb.slotFor(key, probe)
		pair := seg.At(idx)
		keyAddr := pair.F("key")
		if !t.CAS64(keyAddr, Invalid, Sentinel) {
			continue
		}
		t.StoreRelease64(pair.F("value"), value) // fixed: atomic release
		t.MFence()
		t.StoreRelease64(keyAddr, key) // fixed: atomic release
		t.CLFlush(keyAddr)
		return true
	}
	return false
}

// GetFixed reads the repaired fields with acquire loads.
func (tb *Table) GetFixed(t *pmm.Thread, key uint64) (uint64, bool) {
	for probe := 0; probe < probeWindow; probe++ {
		seg, idx := tb.slotFor(key, probe)
		pair := seg.At(idx)
		if t.LoadAcquire64(pair.F("key")) == key {
			return t.LoadAcquire64(pair.F("value")), true
		}
	}
	return 0, false
}
