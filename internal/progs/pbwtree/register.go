package pbwtree

import "yashme/internal/workload"

// The paper's P-BwTree evaluation: model-checked in Table 3 (1 race),
// seed 2 for the Table 5 row (0 prefix / 0 baseline).
func init() {
	workload.Register(workload.Spec{
		Name:       "P-BwTree",
		Order:      3,
		Make:       New(6, nil),
		ModelCheck: true,
		Table5Seed: 2,
		Tags:       []string{workload.TagTable3, workload.TagTable5, workload.TagIndex, workload.TagXFD},
	})
}
