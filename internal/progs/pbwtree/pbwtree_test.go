package pbwtree

import (
	"testing"

	"yashme/internal/engine"
	"yashme/internal/pmm"
	"yashme/internal/progs/progtest"
)

func TestRacesMatchPaperTable3(t *testing.T) {
	progtest.AssertRaces(t, New(6, nil), ExpectedRaces)
}

func TestFunctionalFullRun(t *testing.T) {
	var stats Stats
	progtest.RunFull(t, New(6, &stats))
	if stats.Found != 6 || stats.Missing != 0 || stats.Wrong != 0 {
		t.Fatalf("full-run recovery stats = %+v, want 6/0/0", stats)
	}
	if stats.Epoch != 3 {
		t.Fatalf("recovered epoch = %d, want 3 (advanced every 2nd insert)", stats.Epoch)
	}
}

func TestInsertUpdateGetSemantics(t *testing.T) {
	var v1, v2 uint64
	var ok1, ok2, okMiss bool
	mk := func() pmm.Program {
		var tr *Tree
		return pmm.Program{
			Name:  "bw-sem",
			Setup: func(h *pmm.Heap) { tr = NewTree(h) },
			Workers: []func(*pmm.Thread){func(t *pmm.Thread) {
				tr.Insert(t, 10, 100)
				v1, ok1 = tr.Get(t, 10)
				tr.Insert(t, 10, 111)
				v2, ok2 = tr.Get(t, 10)
				_, okMiss = tr.Get(t, 999)
			}},
		}
	}
	progtest.RunFull(t, mk)
	if !ok1 || v1 != 100 || !ok2 || v2 != 111 {
		t.Fatalf("get results = (%d,%v) (%d,%v)", v1, ok1, v2, ok2)
	}
	if okMiss {
		t.Fatal("missing key reported found")
	}
}

func TestDeltaChainConsolidation(t *testing.T) {
	var consolidations int
	var after uint64
	var ok bool
	mk := func() pmm.Program {
		var tr *Tree
		return pmm.Program{
			Name:  "bw-consolidate",
			Setup: func(h *pmm.Heap) { tr = NewTree(h) },
			Workers: []func(*pmm.Thread){func(t *pmm.Thread) {
				// Repeated updates of one key grow its slot's delta chain
				// past the threshold, forcing a consolidation rewrite.
				for i := uint64(1); i <= 8; i++ {
					tr.Insert(t, 42, i*10)
				}
				consolidations = tr.consolidations
				after, ok = tr.Get(t, 42)
			}},
		}
	}
	progtest.RunFull(t, mk)
	if consolidations == 0 {
		t.Fatal("no consolidation after 8 updates of one key")
	}
	if !ok || after != 80 {
		t.Fatalf("post-consolidation Get = (%d,%v), want (80,true)", after, ok)
	}
}

func TestDeleteDeltas(t *testing.T) {
	var okDel, foundAfter, okMissingDel bool
	mk := func() pmm.Program {
		var tr *Tree
		return pmm.Program{
			Name:  "bw-del",
			Setup: func(h *pmm.Heap) { tr = NewTree(h) },
			Workers: []func(*pmm.Thread){func(t *pmm.Thread) {
				tr.Insert(t, 7, 70)
				okDel = tr.Delete(t, 7)
				_, foundAfter = tr.Get(t, 7)
				okMissingDel = tr.Delete(t, 999)
			}},
		}
	}
	progtest.RunFull(t, mk)
	if !okDel || foundAfter {
		t.Fatalf("delete=%v found-after=%v", okDel, foundAfter)
	}
	if okMissingDel {
		t.Fatal("deleting a missing key reported success")
	}
}

// The delta chain itself is persistency-race free: construction-persisted
// records published by CAS. Only the epoch races.
func TestDeltaChainRaceFree(t *testing.T) {
	mk := func() pmm.Program {
		var tr *Tree
		return pmm.Program{
			Name:  "bw-chain",
			Setup: func(h *pmm.Heap) { tr = NewTree(h) },
			Workers: []func(*pmm.Thread){func(t *pmm.Thread) {
				for i := uint64(1); i <= 6; i++ {
					tr.Insert(t, i%3, i) // updates + consolidations
				}
			}},
			PostCrash: func(t *pmm.Thread) {
				for k := uint64(0); k < 3; k++ {
					tr.Get(t, k)
				}
			},
		}
	}
	res := engine.Run(mk, engine.Options{Mode: engine.ModelCheck, Prefix: true})
	if res.Report.Count() != 0 {
		t.Fatalf("delta chain raced:\n%s", res.Report)
	}
}
