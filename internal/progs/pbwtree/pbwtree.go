// Package pbwtree reproduces P-BwTree, the persistent Bw-Tree from the
// RECIPE suite, with the single persistency race Yashme reports for it
// (paper Table 3, bug 16):
//
//	#16  epoch in BwTreeBase class (bwtree.h)
//
// The Bw-Tree is a lock-free design: all structural updates install deltas
// into a mapping table with CAS (atomic — persistency-safe). Its
// epoch-based garbage collector, however, advances the global epoch counter
// with a plain 64-bit store that the recovery path reads back.
package pbwtree

import (
	"yashme/internal/pmm"
)

// MappingTableSize is the (downsized) number of mapping-table slots.
const MappingTableSize = 16

// ExpectedRaces is the single field the paper reports for P-BwTree.
var ExpectedRaces = []string{"BwTreeBase.epoch"}

// deltaLayout is one delta record: an insert/update/delete published by
// CAS onto a mapping-table slot's chain (the Bw-Tree's defining structure).
var deltaLayout = pmm.Layout{
	{Name: "kind", Size: 8}, // 0 = insert/update, 1 = delete
	{Name: "key", Size: 8},
	{Name: "value", Size: 8},
	{Name: "next", Size: 8}, // previous chain head
}

// Delta record kinds.
const (
	deltaInsert = uint64(0)
	deltaDelete = uint64(1)
)

// Tree is a P-BwTree instance: a mapping table whose slots head CAS-
// installed delta chains, plus the BwTreeBase epoch counter. Delta records
// are fully persisted before publication and the publication itself is a
// locked CAS, so the whole structure is persistency-race free — except the
// plain epoch counter (bug #16).
type Tree struct {
	h      *pmm.Heap
	base   pmm.Struct // "BwTreeBase" {epoch}
	table  pmm.Array  // "mapping_table" slots: {head}
	deltas map[uint64]pmm.Struct
	// consolidations counts chain rewrites (exposed for tests).
	consolidations int
}

// ConsolidateThreshold is the chain length that triggers consolidation.
const ConsolidateThreshold = 4

// NewTree allocates the mapping table and the base structure.
func NewTree(h *pmm.Heap) *Tree {
	return &Tree{
		h:      h,
		base:   h.AllocStruct("BwTreeBase", pmm.Layout{{Name: "epoch", Size: 8}}),
		table:  h.AllocArray("mapping_table", pmm.Layout{{Name: "head", Size: 8}}, MappingTableSize),
		deltas: make(map[uint64]pmm.Struct),
	}
}

func slotOf(key uint64) int { return int((key * 0x61C88647) % MappingTableSize) }

// newDelta allocates and persists a delta record (unreachable until the
// CAS publishes it).
func (tr *Tree) newDelta(t *pmm.Thread, kind, key, value, next uint64) uint64 {
	d := tr.h.AllocStruct("delta", deltaLayout)
	t.Store64(d.F("kind"), kind)
	t.Store64(d.F("key"), key)
	t.Store64(d.F("value"), value)
	t.Store64(d.F("next"), next)
	t.Persist(d.Base(), d.Size())
	tr.deltas[uint64(d.Base())] = d
	return uint64(d.Base())
}

// deltaAt resolves a delta pointer loaded from persistent memory. The
// deltas map is the warm path; on a miss (fresh-process recovery, where the
// map holds only Setup-time entries) the record is reattached from the heap
// itself, mirroring how recovery code casts a mapped PM offset back to a
// delta record pointer.
func (tr *Tree) deltaAt(addr uint64) (pmm.Struct, bool) {
	if d, ok := tr.deltas[addr]; ok {
		return d, true
	}
	d, ok := tr.h.StructAt(pmm.Addr(addr))
	if !ok || d.Label() != "delta" {
		return pmm.Struct{}, false
	}
	tr.deltas[addr] = d
	return d, true
}

// publish CAS-installs a delta as the new chain head and persists the head.
func (tr *Tree) publish(t *pmm.Thread, slot pmm.Struct, old, delta uint64) bool {
	if !t.CAS64(slot.F("head"), old, delta) {
		return false
	}
	t.Persist(slot.F("head"), 8)
	return true
}

// Insert prepends an insert delta; long chains consolidate.
func (tr *Tree) Insert(t *pmm.Thread, key, value uint64) bool {
	slot := tr.table.At(slotOf(key))
	for {
		head := t.LoadAcquire64(slot.F("head"))
		d := tr.newDelta(t, deltaInsert, key, value, head)
		if tr.publish(t, slot, head, d) {
			tr.maybeConsolidate(t, slot)
			return true
		}
		t.Yield() // lost the CAS race; retry on the new head
	}
}

// Delete prepends a delete delta.
func (tr *Tree) Delete(t *pmm.Thread, key uint64) bool {
	if _, ok := tr.Get(t, key); !ok {
		return false
	}
	slot := tr.table.At(slotOf(key))
	for {
		head := t.LoadAcquire64(slot.F("head"))
		d := tr.newDelta(t, deltaDelete, key, 0, head)
		if tr.publish(t, slot, head, d) {
			return true
		}
		t.Yield()
	}
}

// Get walks the delta chain with atomic loads: the first record for the key
// wins (newest first).
func (tr *Tree) Get(t *pmm.Thread, key uint64) (uint64, bool) {
	slot := tr.table.At(slotOf(key))
	cur := t.LoadAcquire64(slot.F("head"))
	for hops := 0; cur != 0 && hops < 1024; hops++ {
		d, ok := tr.deltaAt(cur)
		if !ok {
			return 0, false
		}
		if t.LoadAcquire64(d.F("key")) == key {
			if t.LoadAcquire64(d.F("kind")) == deltaDelete {
				return 0, false
			}
			return t.LoadAcquire64(d.F("value")), true
		}
		cur = t.LoadAcquire64(d.F("next"))
	}
	return 0, false
}

// maybeConsolidate rewrites a long chain into a compact one: the live
// key/value pairs become a fresh chain (persisted before publication), and
// the old chain is swapped out with one CAS — the Bw-Tree consolidation
// protocol, crash safe by construction.
func (tr *Tree) maybeConsolidate(t *pmm.Thread, slot pmm.Struct) {
	head := t.LoadAcquire64(slot.F("head"))
	// Measure the chain and collect the live bindings (newest first wins).
	type kv struct{ k, v uint64 }
	var live []kv
	seen := map[uint64]bool{}
	length := 0
	for cur := head; cur != 0; length++ {
		d, ok := tr.deltaAt(cur)
		if !ok {
			break
		}
		k := t.LoadAcquire64(d.F("key"))
		if !seen[k] {
			seen[k] = true
			if t.LoadAcquire64(d.F("kind")) == deltaInsert {
				live = append(live, kv{k, t.LoadAcquire64(d.F("value"))})
			}
		}
		cur = t.LoadAcquire64(d.F("next"))
	}
	if length < ConsolidateThreshold {
		return
	}
	// Build the compact chain bottom-up, fully persisted.
	next := uint64(0)
	for i := len(live) - 1; i >= 0; i-- {
		next = tr.newDelta(t, deltaInsert, live[i].k, live[i].v, next)
	}
	if tr.publish(t, slot, head, next) {
		tr.consolidations++
	}
}

// AdvanceEpoch is the epoch manager's tick — bug #16: a plain store to the
// shared epoch counter, flushed afterwards.
func (tr *Tree) AdvanceEpoch(t *pmm.Thread) {
	e := t.Load64(tr.base.F("epoch"))
	t.Store64(tr.base.F("epoch"), e+1)
	t.CLFlush(tr.base.F("epoch"))
	t.SFence()
}

// Epoch reads the epoch counter — the race-observing load.
func (tr *Tree) Epoch(t *pmm.Thread) uint64 { return t.Load64(tr.base.F("epoch")) }

// Stats captures what recovery observed.
type Stats struct {
	Found   int
	Missing int
	Wrong   int
	Epoch   uint64
}

// ValueFor is the deterministic value the driver inserts for a key.
func ValueFor(key uint64) uint64 { return key ^ 0xBEEF }

// New returns the benchmark driver: interleave inserts with epoch advances;
// recovery reads the epoch and looks every key up.
func New(numKeys int, stats *Stats) func() pmm.Program {
	return func() pmm.Program {
		var tr *Tree
		return pmm.Program{
			Name:  "P-BwTree",
			Setup: func(h *pmm.Heap) { tr = NewTree(h) },
			Workers: []func(*pmm.Thread){func(t *pmm.Thread) {
				for k := uint64(1); k <= uint64(numKeys); k++ {
					tr.Insert(t, k, ValueFor(k))
					if k%2 == 0 {
						tr.AdvanceEpoch(t)
					}
				}
			}},
			PostCrash: func(t *pmm.Thread) {
				ep := tr.Epoch(t)
				if stats != nil {
					stats.Epoch = ep
				}
				for k := uint64(1); k <= uint64(numKeys); k++ {
					v, ok := tr.Get(t, k)
					if stats == nil {
						continue
					}
					switch {
					case !ok:
						stats.Missing++
					case v != ValueFor(k):
						stats.Wrong++
					default:
						stats.Found++
					}
				}
			},
		}
	}
}
