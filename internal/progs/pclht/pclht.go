// Package pclht reproduces P-CLHT, the persistent Cache-Line Hash Table
// from the RECIPE suite — the one benchmark in which Yashme found NO
// persistency races (paper Table 3 and §3.2): P-CLHT "uses a lock-free
// design and critical store operations are defined as volatile and the
// compiler did not optimize them with memory operations".
//
// Every store the recovery path can observe is an atomic operation here
// (modelling the volatile/atomic fields of the original), so the package
// serves as the detector's true-negative control.
package pclht

import (
	"yashme/internal/pmm"
)

// Geometry: buckets of ENTRIES_PER_BUCKET slots, one bucket per cache line.
const (
	NumBuckets     = 8
	EntriesPerSlot = 3
	lockFree       = 0
	lockHeld       = 1
)

// ExpectedRaces is empty: P-CLHT is the paper's zero-race benchmark.
var ExpectedRaces = []string{}

// Table is a P-CLHT instance. Overflow buckets chain off the fixed array
// through atomically published next pointers, so the zero-race discipline
// extends to unbounded occupancy (CLHT's linked buckets).
type Table struct {
	h        *pmm.Heap
	buckets  pmm.Array // "bucket_t": {lock, key0..2, val0..2, next}
	overflow map[uint64]pmm.Struct
}

var bucketLayout = pmm.Layout{
	{Name: "lock", Size: 8},
	{Name: "key0", Size: 8}, {Name: "key1", Size: 8}, {Name: "key2", Size: 8},
	{Name: "val0", Size: 8}, {Name: "val1", Size: 8}, {Name: "val2", Size: 8},
	{Name: "next", Size: 8}, // overflow chain (atomic publication)
}

// NewTable allocates the bucket array.
func NewTable(h *pmm.Heap) *Table {
	return &Table{h: h, buckets: h.AllocArray("bucket_t", bucketLayout, NumBuckets), overflow: make(map[uint64]pmm.Struct)}
}

// nextBucket follows an overflow link (atomic load). The overflow map is
// the warm path; on a miss (fresh-process recovery, where the map holds
// only Setup-time entries) the bucket is reattached from the heap itself,
// mirroring how recovery code casts a mapped PM offset back to bucket_t*.
func (tb *Table) nextBucket(t *pmm.Thread, b pmm.Struct) (pmm.Struct, bool) {
	addr := t.LoadAcquire64(b.F("next"))
	if addr == 0 {
		return pmm.Struct{}, false
	}
	if ob, ok := tb.overflow[addr]; ok {
		return ob, true
	}
	ob, ok := tb.h.StructAt(pmm.Addr(addr))
	if !ok || ob.Label() != "bucket_t" {
		return pmm.Struct{}, false
	}
	tb.overflow[addr] = ob
	return ob, true
}

// addOverflow allocates, persists and atomically publishes a fresh overflow
// bucket behind b.
func (tb *Table) addOverflow(t *pmm.Thread, b pmm.Struct) pmm.Struct {
	ob := tb.h.AllocStruct("bucket_t", bucketLayout)
	t.Persist(ob.Base(), ob.Size())
	tb.overflow[uint64(ob.Base())] = ob
	t.StoreRelease64(b.F("next"), uint64(ob.Base()))
	t.Persist(b.F("next"), 8)
	return ob
}

func bucketOf(key uint64) int { return int((key * 0x2545F4914F6CDD1D) % NumBuckets) }

func keyField(i int) string { return []string{"key0", "key1", "key2"}[i] }
func valField(i int) string { return []string{"val0", "val1", "val2"}[i] }

// Put inserts or updates a key. The bucket lock is a CAS spinlock; the key
// and value stores are atomic release stores (the volatile fields of the
// original), then persisted with clwb+sfence before the slot is published.
func (tb *Table) Put(t *pmm.Thread, key, value uint64) bool {
	b := tb.buckets.At(bucketOf(key))
	lock := b.F("lock")
	for !t.CAS64(lock, lockFree, lockHeld) {
		t.Yield()
	}
	defer func() {
		t.StoreRelease64(lock, lockFree)
	}()
	cur := b
	for {
		free := -1
		for i := 0; i < EntriesPerSlot; i++ {
			k := t.LoadAcquire64(cur.F(keyField(i)))
			if k == key {
				t.StoreRelease64(cur.F(valField(i)), value)
				t.Persist(cur.F(valField(i)), 8)
				return true
			}
			if k == 0 && free < 0 {
				free = i
			}
		}
		if free >= 0 {
			// Value first, persist, then publish the key atomically and
			// persist: the atomic publication means a post-crash reader
			// that sees the key also gets coherence protection for the
			// value.
			t.StoreRelease64(cur.F(valField(free)), value)
			t.Persist(cur.F(valField(free)), 8)
			t.StoreRelease64(cur.F(keyField(free)), key)
			t.Persist(cur.F(keyField(free)), 8)
			return true
		}
		next, ok := tb.nextBucket(t, cur)
		if !ok {
			next = tb.addOverflow(t, cur)
		}
		cur = next
	}
}

// Get looks a key up with atomic loads only, following overflow links.
func (tb *Table) Get(t *pmm.Thread, key uint64) (uint64, bool) {
	cur := tb.buckets.At(bucketOf(key))
	for {
		for i := 0; i < EntriesPerSlot; i++ {
			if t.LoadAcquire64(cur.F(keyField(i))) == key {
				return t.LoadAcquire64(cur.F(valField(i))), true
			}
		}
		next, ok := tb.nextBucket(t, cur)
		if !ok {
			return 0, false
		}
		cur = next
	}
}

// Remove deletes a key under the bucket lock.
func (tb *Table) Remove(t *pmm.Thread, key uint64) bool {
	b := tb.buckets.At(bucketOf(key))
	lock := b.F("lock")
	for !t.CAS64(lock, lockFree, lockHeld) {
		t.Yield()
	}
	defer func() {
		t.StoreRelease64(lock, lockFree)
	}()
	cur := b
	for {
		for i := 0; i < EntriesPerSlot; i++ {
			if t.LoadAcquire64(cur.F(keyField(i))) == key {
				t.StoreRelease64(cur.F(keyField(i)), 0)
				t.Persist(cur.F(keyField(i)), 8)
				return true
			}
		}
		next, ok := tb.nextBucket(t, cur)
		if !ok {
			return false
		}
		cur = next
	}
}

// Stats captures what recovery observed.
type Stats struct {
	Found   int
	Missing int
	Wrong   int
}

// ValueFor is the deterministic value the driver inserts for a key.
func ValueFor(key uint64) uint64 { return key*3 + 1 }

// New returns the benchmark driver: two concurrent writers insert disjoint
// keys; recovery looks everything up with atomic loads.
func New(numKeys int, stats *Stats) func() pmm.Program {
	return func() pmm.Program {
		var tb *Table
		return pmm.Program{
			Name:  "P-CLHT",
			Setup: func(h *pmm.Heap) { tb = NewTable(h) },
			Workers: []func(*pmm.Thread){
				func(t *pmm.Thread) {
					for k := uint64(1); k <= uint64(numKeys); k += 2 {
						tb.Put(t, k, ValueFor(k))
					}
				},
				func(t *pmm.Thread) {
					for k := uint64(2); k <= uint64(numKeys); k += 2 {
						tb.Put(t, k, ValueFor(k))
					}
				},
			},
			PostCrash: func(t *pmm.Thread) {
				for k := uint64(1); k <= uint64(numKeys); k++ {
					v, ok := tb.Get(t, k)
					if stats == nil {
						continue
					}
					switch {
					case !ok:
						stats.Missing++
					case v != ValueFor(k):
						stats.Wrong++
					default:
						stats.Found++
					}
				}
			},
		}
	}
}
