package pclht

import (
	"testing"

	"yashme/internal/engine"
	"yashme/internal/pmm"
	"yashme/internal/progs/progtest"
)

func TestNoRacesMatchPaperTable3(t *testing.T) {
	// P-CLHT is the paper's zero-race benchmark: every observable store is
	// atomic (the original's volatile fields).
	progtest.AssertNoRaces(t, New(6, nil))
}

func TestNoRacesInRandomModeEither(t *testing.T) {
	res := engine.Run(New(6, nil), engine.Options{Mode: engine.RandomMode, Prefix: true, Seed: 11, Executions: 10})
	if res.Report.Count() != 0 {
		t.Fatalf("random mode found races in P-CLHT:\n%s", res.Report)
	}
}

func TestFunctionalFullRun(t *testing.T) {
	var stats Stats
	progtest.RunFull(t, New(6, &stats))
	if stats.Found != 6 || stats.Missing != 0 || stats.Wrong != 0 {
		t.Fatalf("full-run recovery stats = %+v, want 6/0/0", stats)
	}
}

func TestPutGetRemoveSemantics(t *testing.T) {
	var v uint64
	var ok, okRm, okAfter bool
	mk := func() pmm.Program {
		var tb *Table
		return pmm.Program{
			Name:  "clht-sem",
			Setup: func(h *pmm.Heap) { tb = NewTable(h) },
			Workers: []func(*pmm.Thread){func(t *pmm.Thread) {
				tb.Put(t, 3, 33)
				tb.Put(t, 3, 34) // update
				v, ok = tb.Get(t, 3)
				okRm = tb.Remove(t, 3)
				_, okAfter = tb.Get(t, 3)
			}},
		}
	}
	progtest.RunFull(t, mk)
	if !ok || v != 34 {
		t.Fatalf("get = (%d,%v), want (34,true)", v, ok)
	}
	if !okRm || okAfter {
		t.Fatalf("remove=%v after=%v", okRm, okAfter)
	}
}

func TestBucketOverflowChains(t *testing.T) {
	// Fill one bucket beyond its 3 slots: the table chains an overflow
	// bucket (atomic publication) and every key stays reachable.
	var inserted []uint64
	found := 0
	mk := func() pmm.Program {
		var tb *Table
		return pmm.Program{
			Name:  "clht-chain",
			Setup: func(h *pmm.Heap) { tb = NewTable(h) },
			Workers: []func(*pmm.Thread){func(t *pmm.Thread) {
				inserted = nil
				base := uint64(1)
				for i := uint64(0); len(inserted) < 2*EntriesPerSlot && i < 1000; i++ {
					k := base + i
					if bucketOf(k) != bucketOf(base) {
						continue
					}
					if tb.Put(t, k, k*2) {
						inserted = append(inserted, k)
					}
				}
				found = 0
				for _, k := range inserted {
					if v, ok := tb.Get(t, k); ok && v == k*2 {
						found++
					}
				}
				// Remove one from the overflow bucket, too.
				tb.Remove(t, inserted[len(inserted)-1])
				if _, ok := tb.Get(t, inserted[len(inserted)-1]); ok {
					found = -1
				}
			}},
		}
	}
	progtest.RunFull(t, mk)
	if found != 2*EntriesPerSlot {
		t.Fatalf("found %d of %d chained keys", found, 2*EntriesPerSlot)
	}
}

// Overflow chaining preserves the zero-race discipline.
func TestOverflowChainsNoRaces(t *testing.T) {
	mk := func() pmm.Program {
		var tb *Table
		return pmm.Program{
			Name:  "clht-chain-races",
			Setup: func(h *pmm.Heap) { tb = NewTable(h) },
			Workers: []func(*pmm.Thread){func(t *pmm.Thread) {
				base := uint64(1)
				n := 0
				for i := uint64(0); n < 5 && i < 1000; i++ {
					k := base + i
					if bucketOf(k) != bucketOf(base) {
						continue
					}
					tb.Put(t, k, k)
					n++
				}
			}},
			PostCrash: func(t *pmm.Thread) {
				base := uint64(1)
				n := 0
				for i := uint64(0); n < 5 && i < 1000; i++ {
					k := base + i
					if bucketOf(k) != bucketOf(base) {
						continue
					}
					tb.Get(t, k)
					n++
				}
			},
		}
	}
	res := engine.Run(mk, engine.Options{Mode: engine.ModelCheck, Prefix: true, MaxCrashPoints: 40})
	if res.Report.Count() != 0 {
		t.Fatalf("overflow chain raced: %v", res.Report.Races())
	}
}

func TestConcurrentWritersStayConsistent(t *testing.T) {
	// The two workers write disjoint keys under bucket locks; a full run
	// must retain every insertion.
	var stats Stats
	progtest.RunFull(t, New(8, &stats))
	if stats.Found != 8 {
		t.Fatalf("concurrent writers lost data: %+v", stats)
	}
}
