package pclht

import "yashme/internal/workload"

// The paper's P-CLHT evaluation: the race-free control of Table 3, seed 1
// for the Table 5 row (0 prefix / 0 baseline).
func init() {
	workload.Register(workload.Spec{
		Name:       "P-CLHT",
		Order:      4,
		Make:       New(6, nil),
		ModelCheck: true,
		Table5Seed: 1,
		Tags:       []string{workload.TagTable3, workload.TagTable5, workload.TagIndex},
	})
}
