package service

import (
	"container/list"
	"sync"
)

// resultCache is the content-addressed result store: canonical request
// fingerprint → the exact response body a fresh run produced. Bodies are
// stored and served verbatim, so a cache hit is byte-identical to the run
// it memoizes — the same currency (Canonical JSON) the suite's determinism
// tests trade in. Capacity is bounded by total body bytes with
// least-recently-used eviction; a body larger than the whole cache is
// simply not admitted.
type resultCache struct {
	mu       sync.Mutex
	capBytes int64
	bytes    int64
	entries  map[string]*list.Element
	lru      *list.List // front = most recently used
	hits     int64
	misses   int64
}

type cacheEntry struct {
	key  string
	body []byte
}

func newResultCache(capBytes int64) *resultCache {
	return &resultCache{
		capBytes: capBytes,
		entries:  make(map[string]*list.Element),
		lru:      list.New(),
	}
}

// get returns the stored body for a fingerprint and counts the lookup as
// a hit or miss. The returned slice is the cache's own storage: callers
// must not mutate it (the service only ever writes it to responses).
func (c *resultCache) get(key string) ([]byte, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.lru.MoveToFront(el)
	return el.Value.(*cacheEntry).body, true
}

// put stores a body under a fingerprint, evicting from the cold end until
// the byte bound holds. Re-putting an existing key refreshes its body (the
// bodies are deterministic, so this is a no-op in practice).
func (c *resultCache) put(key string, body []byte) {
	if c == nil || int64(len(body)) > c.capBytes {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		e := el.Value.(*cacheEntry)
		c.bytes += int64(len(body)) - int64(len(e.body))
		e.body = body
		c.lru.MoveToFront(el)
	} else {
		c.entries[key] = c.lru.PushFront(&cacheEntry{key: key, body: body})
		c.bytes += int64(len(body))
	}
	for c.bytes > c.capBytes {
		back := c.lru.Back()
		if back == nil {
			break
		}
		e := back.Value.(*cacheEntry)
		c.lru.Remove(back)
		delete(c.entries, e.key)
		c.bytes -= int64(len(e.body))
	}
}

// CacheStats is the cache's health snapshot for /metrics.
type CacheStats struct {
	Hits     int64 `json:"hits"`
	Misses   int64 `json:"misses"`
	Entries  int   `json:"entries"`
	Bytes    int64 `json:"bytes"`
	CapBytes int64 `json:"cap_bytes"`
}

func (c *resultCache) stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits:     c.hits,
		Misses:   c.misses,
		Entries:  len(c.entries),
		Bytes:    c.bytes,
		CapBytes: c.capBytes,
	}
}
