package service

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"yashme/internal/engine"
)

func newTestServer(t *testing.T) (*Manager, *httptest.Server) {
	t.Helper()
	m := newTestManager(t, Config{Jobs: 1, Budget: engine.NewBudget(2)})
	srv := httptest.NewServer(NewHandler(m))
	t.Cleanup(srv.Close)
	return m, srv
}

func do(t *testing.T, method, url, body string) (int, []byte) {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("%s %s: read: %v", method, url, err)
	}
	return resp.StatusCode, data
}

// The API surface, table-driven: codes and body shape per endpoint.
func TestHandlerEndpoints(t *testing.T) {
	_, srv := newTestServer(t)

	// One completed job everything else can poke at (?wait=1 blocks until
	// terminal, so the response is the full done-state status).
	code, body := do(t, "POST", srv.URL+"/v1/jobs?wait=1", `{"names":["svc-probe"],"variants":["races"]}`)
	if code != http.StatusOK {
		t.Fatalf("POST wait=1: code %d body %.300s", code, body)
	}
	var st JobStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("POST body: %v", err)
	}
	if st.State != StateDone || st.ID == "" || len(st.Result) == 0 {
		t.Fatalf("POST wait=1 status = %+v, want done with a result", st)
	}

	for _, tc := range []struct {
		name, method, path, body string
		wantCode                 int
		wantIn                   string // substring the body must contain
	}{
		{"submit async", "POST", "/v1/jobs", `{"names":["svc-probe"],"variants":["races"]}`, http.StatusOK, `"state"`},
		{"submit bad json", "POST", "/v1/jobs", `{"names":`, http.StatusBadRequest, "error"},
		{"submit unknown field", "POST", "/v1/jobs", `{"bogus":1}`, http.StatusBadRequest, "error"},
		{"submit unknown tag", "POST", "/v1/jobs", `{"tags":["nope"]}`, http.StatusBadRequest, "unknown tag"},
		{"submit unknown workload", "POST", "/v1/jobs", `{"names":["nope"]}`, http.StatusBadRequest, "unknown workload"},
		{"get job", "GET", "/v1/jobs/" + st.ID, "", http.StatusOK, `"state": "done"`},
		{"get job result", "GET", "/v1/jobs/" + st.ID + "/result", "", http.StatusOK, `"benchmarks"`},
		{"get missing job", "GET", "/v1/jobs/zzz", "", http.StatusNotFound, "no such job"},
		{"get missing result", "GET", "/v1/jobs/zzz/result", "", http.StatusNotFound, "no such job"},
		{"cancel terminal job", "DELETE", "/v1/jobs/" + st.ID, "", http.StatusOK, `"state": "done"`},
		{"cancel missing job", "DELETE", "/v1/jobs/zzz", "", http.StatusNotFound, "no such job"},
		{"workloads", "GET", "/v1/workloads", "", http.StatusOK, `"svc-probe"`},
		{"healthz", "GET", "/healthz", "", http.StatusOK, `"ok"`},
		{"metrics", "GET", "/metrics", "", http.StatusOK, `"budget_size"`},
		{"bad method", "PUT", "/v1/jobs", "", http.StatusMethodNotAllowed, ""},
		{"bad path", "GET", "/v1/nope", "", http.StatusNotFound, ""},
	} {
		code, body := do(t, tc.method, srv.URL+tc.path, tc.body)
		if code != tc.wantCode {
			t.Errorf("%s: code %d, want %d (body %.200s)", tc.name, code, tc.wantCode, body)
		}
		if tc.wantIn != "" && !bytes.Contains(body, []byte(tc.wantIn)) {
			t.Errorf("%s: body missing %q: %.300s", tc.name, tc.wantIn, body)
		}
	}
}

// The /result endpoint serves the stored body verbatim: a cache-hit job's
// bytes equal the fresh job's, over HTTP.
func TestHandlerResultByteIdentity(t *testing.T) {
	m, srv := newTestServer(t)

	submit := func() JobStatus {
		code, body := do(t, "POST", srv.URL+"/v1/jobs?wait=1", `{"names":["svc-probe"],"variants":["races"]}`)
		if code != http.StatusOK {
			t.Fatalf("POST: code %d body %.300s", code, body)
		}
		var st JobStatus
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatalf("status: %v", err)
		}
		return st
	}
	fresh := submit()
	hit := submit()
	if fresh.CacheHit || !hit.CacheHit {
		t.Fatalf("cache hits: fresh %v, repeat %v; want false/true", fresh.CacheHit, hit.CacheHit)
	}

	_, freshBody := do(t, "GET", srv.URL+"/v1/jobs/"+fresh.ID+"/result", "")
	_, hitBody := do(t, "GET", srv.URL+"/v1/jobs/"+hit.ID+"/result", "")
	if !bytes.Equal(freshBody, hitBody) {
		t.Fatal("cache-hit result bytes differ from the fresh run's")
	}
	if mm := m.Metrics(); mm.Cache.Hits != 1 {
		t.Fatalf("cache hits = %d, want 1", mm.Cache.Hits)
	}
}

// Cancelling over HTTP mirrors Manager.Cancel: the running job lands in
// state cancelled with its partial result.
func TestHandlerCancel(t *testing.T) {
	m, srv := newTestServer(t)
	started := armSlow(t)

	code, body := do(t, "POST", srv.URL+"/v1/jobs", `{"names":["svc-slow"],"variants":["races"]}`)
	if code != http.StatusAccepted {
		t.Fatalf("POST: code %d body %.300s", code, body)
	}
	var st JobStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("status: %v", err)
	}
	<-started

	if code, body = do(t, "DELETE", srv.URL+"/v1/jobs/"+st.ID, ""); code != http.StatusOK {
		t.Fatalf("DELETE: code %d body %.300s", code, body)
	}
	// The DELETE handler returns as soon as cancellation is requested; the
	// job drains at its next scenario boundary.
	job, err := m.Job(st.ID)
	if err != nil {
		t.Fatalf("job %s: %v", st.ID, err)
	}
	<-job.Done()
	if final := job.Status(); final.State != StateCancelled {
		t.Fatalf("state %s, want cancelled (err %q)", final.State, final.Error)
	} else if len(final.Result) == 0 {
		t.Fatal("cancelled job kept no partial result")
	}
}
