package service

import (
	"bytes"
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"yashme/internal/engine"
	"yashme/internal/pmm"
	"yashme/internal/suite"
	"yashme/internal/workload"
)

// Test workloads, registered into this binary's registry only. svc-probe
// is a fast table3-shaped benchmark that also tracks cross-job simulation
// concurrency; svc-slow has enough crash points to still be running when a
// test cancels it; svc-panic dies in its pre-crash body.
var (
	probeInFlight, probeMaxSeen int32

	slowMu     sync.Mutex
	slowNotify chan<- struct{} // non-blocking signal: a slow scenario started
)

func notifySlow() {
	slowMu.Lock()
	ch := slowNotify
	slowMu.Unlock()
	if ch != nil {
		select {
		case ch <- struct{}{}:
		default:
		}
	}
}

// armSlow points svc-slow's started-signal at a fresh channel for one test.
func armSlow(t *testing.T) <-chan struct{} {
	t.Helper()
	ch := make(chan struct{}, 1)
	slowMu.Lock()
	slowNotify = ch
	slowMu.Unlock()
	t.Cleanup(func() {
		slowMu.Lock()
		slowNotify = nil
		slowMu.Unlock()
	})
	return ch
}

func smallProgram(name string, iters int, onWorker func()) func() pmm.Program {
	return func() pmm.Program {
		var val pmm.Addr
		return pmm.Program{
			Name: name,
			Setup: func(h *pmm.Heap) {
				val = h.AllocStruct("o", pmm.Layout{{Name: "v", Size: 8}}).F("v")
			},
			Workers: []func(*pmm.Thread){func(t *pmm.Thread) {
				if onWorker != nil {
					onWorker()
				}
				for i := 0; i < iters; i++ {
					t.Store64(val, uint64(i))
					t.CLFlush(val)
					t.SFence()
				}
			}},
			PostCrash: func(t *pmm.Thread) { t.Load64(val) },
		}
	}
}

func init() {
	gauge := func() {
		n := atomic.AddInt32(&probeInFlight, 1)
		for {
			m := atomic.LoadInt32(&probeMaxSeen)
			if n <= m || atomic.CompareAndSwapInt32(&probeMaxSeen, m, n) {
				break
			}
		}
		time.Sleep(time.Millisecond) // widen the overlap window
		atomic.AddInt32(&probeInFlight, -1)
	}
	workload.Register(workload.Spec{
		Name: "svc-probe", Order: 9001, ModelCheck: true,
		Tags: []string{workload.TagTable3},
		Make: smallProgram("svc-probe", 6, gauge),
	})
	workload.Register(workload.Spec{
		Name: "svc-slow", Order: 9002, ModelCheck: true,
		Tags: []string{workload.TagTable3},
		Make: smallProgram("svc-slow", 250, notifySlow),
	})
	workload.Register(workload.Spec{
		Name: "svc-panic", Order: 9003, ModelCheck: true,
		Tags: []string{workload.TagTable3},
		Make: smallProgram("svc-panic", 2, func() { panic("rigged workload") }),
	})
}

func contextWithTimeout(d time.Duration) (context.Context, context.CancelFunc) {
	return context.WithTimeout(context.Background(), d)
}

func newTestManager(t *testing.T, cfg Config) *Manager {
	t.Helper()
	m := NewManager(cfg)
	t.Cleanup(func() {
		ctx, cancel := contextWithTimeout(5 * time.Second)
		defer cancel()
		m.Shutdown(ctx)
	})
	return m
}

func waitJob(t *testing.T, job *Job) JobStatus {
	t.Helper()
	select {
	case <-job.Done():
	case <-time.After(30 * time.Second):
		t.Fatalf("job %s never reached a terminal state", job.ID())
	}
	return job.Status()
}

func probeReq() Request {
	return Request{Names: []string{"svc-probe"}, Variants: []string{suite.VariantRaces}}
}

// A cache hit must serve the byte-identical body of the fresh run — which
// itself must be byte-identical to a direct suite run of the same config —
// with the hit counter incremented and zero additional simulated ops.
func TestCacheHitByteIdentity(t *testing.T) {
	m := newTestManager(t, Config{Jobs: 1, Budget: engine.NewBudget(2)})

	first, err := m.Submit(probeReq())
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	st1 := waitJob(t, first)
	if st1.State != StateDone || st1.CacheHit {
		t.Fatalf("fresh job: state %s cacheHit %v, want done/false (err %q)", st1.State, st1.CacheHit, st1.Error)
	}
	simAfterFresh := m.Metrics().Engine.SimulatedOps
	if simAfterFresh == 0 {
		t.Fatal("fresh run recorded no simulated ops")
	}

	second, err := m.Submit(probeReq())
	if err != nil {
		t.Fatalf("resubmit: %v", err)
	}
	st2 := waitJob(t, second)
	if st2.State != StateDone || !st2.CacheHit {
		t.Fatalf("repeat job: state %s cacheHit %v, want done/true", st2.State, st2.CacheHit)
	}
	if !bytes.Equal(st1.Result, st2.Result) {
		t.Fatalf("cache hit body differs from fresh body:\n%s\nvs\n%s", st1.Result, st2.Result)
	}

	mm := m.Metrics()
	if mm.Cache.Hits != 1 || mm.Cache.Misses != 1 {
		t.Fatalf("cache hits/misses = %d/%d, want 1/1", mm.Cache.Hits, mm.Cache.Misses)
	}
	if mm.Engine.SimulatedOps != simAfterFresh {
		t.Fatalf("cache hit simulated %d extra ops", mm.Engine.SimulatedOps-simAfterFresh)
	}

	// The service body is the canonical JSON a direct suite run produces.
	req, err := normalize(probeReq())
	if err != nil {
		t.Fatalf("normalize: %v", err)
	}
	direct := suite.Run(suiteConfig(req, engine.NewBudget(2)))
	want, err := direct.Canonical().JSON()
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	if !bytes.Equal(st1.Result, want) {
		t.Fatalf("service body != direct suite Canonical JSON:\n%s\nvs\n%s", st1.Result, want)
	}
}

// Concurrent jobs draw from one budget: with a budget of one, two jobs'
// suites never overlap a simulation, extending TestBudgetBoundsConcurrency
// across jobs — and without the cache both still produce identical bodies.
func TestConcurrentJobsShareBudget(t *testing.T) {
	atomic.StoreInt32(&probeInFlight, 0)
	atomic.StoreInt32(&probeMaxSeen, 0)
	m := newTestManager(t, Config{Jobs: 2, Budget: engine.NewBudget(1), CacheBytes: -1})

	a, err := m.Submit(probeReq())
	if err != nil {
		t.Fatalf("submit a: %v", err)
	}
	b, err := m.Submit(probeReq())
	if err != nil {
		t.Fatalf("submit b: %v", err)
	}
	sa, sb := waitJob(t, a), waitJob(t, b)
	if sa.State != StateDone || sb.State != StateDone {
		t.Fatalf("states %s/%s, want done/done", sa.State, sb.State)
	}
	if sa.CacheHit || sb.CacheHit {
		t.Fatal("cache disabled, yet a job hit it")
	}
	if got := atomic.LoadInt32(&probeMaxSeen); got != 1 {
		t.Fatalf("max concurrent simulations across jobs = %d, want 1 under a budget of 1", got)
	}
	if !bytes.Equal(sa.Result, sb.Result) {
		t.Fatal("two fresh runs of the same request differ")
	}
}

// Cancelling a running job cuts it at a scenario boundary: terminal state
// cancelled, a well-formed partial result retained, no goroutines leaked,
// and the next job on the same manager is unaffected.
func TestCancelRunningJob(t *testing.T) {
	base := runtime.NumGoroutine()
	m := NewManager(Config{Jobs: 1, Budget: engine.NewBudget(2), CacheBytes: -1})
	started := armSlow(t)

	job, err := m.Submit(Request{Names: []string{"svc-slow"}, Variants: []string{suite.VariantRaces}})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	select {
	case <-started:
	case <-time.After(30 * time.Second):
		t.Fatal("slow job never started simulating")
	}
	if _, err := m.Cancel(job.ID()); err != nil {
		t.Fatalf("cancel: %v", err)
	}
	st := waitJob(t, job)
	if st.State != StateCancelled {
		t.Fatalf("state %s, want cancelled (err %q)", st.State, st.Error)
	}
	if len(st.Result) == 0 || !bytes.Contains(st.Result, []byte(`"cancelled": true`)) {
		t.Fatalf("cancelled job kept no marked partial result: %.200s", st.Result)
	}

	// The manager must be fully usable afterwards.
	next, err := m.Submit(probeReq())
	if err != nil {
		t.Fatalf("submit after cancel: %v", err)
	}
	if st := waitJob(t, next); st.State != StateDone {
		t.Fatalf("follow-up job state %s, want done (err %q)", st.State, st.Error)
	}

	ctx, cancel := contextWithTimeout(5 * time.Second)
	defer cancel()
	m.Shutdown(ctx)
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) && runtime.NumGoroutine() > base+2 {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > base+2 {
		t.Fatalf("goroutine leak after cancel+shutdown: %d live, baseline %d", n, base)
	}
}

// A job that outlives its timeout fails (distinct from cancelled) and
// keeps its partial result.
func TestJobTimeout(t *testing.T) {
	m := newTestManager(t, Config{Jobs: 1, Budget: engine.NewBudget(2), CacheBytes: -1})
	job, err := m.Submit(Request{Names: []string{"svc-slow"}, Variants: []string{suite.VariantRaces}, TimeoutMs: 1})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	st := waitJob(t, job)
	if st.State != StateFailed {
		t.Fatalf("state %s, want failed on timeout (err %q)", st.State, st.Error)
	}
	if len(st.Result) == 0 {
		t.Fatal("timed-out job kept no partial result")
	}
}

// A workload panic fails the job, not the worker: the manager keeps
// serving.
func TestWorkloadPanicFailsJob(t *testing.T) {
	m := newTestManager(t, Config{Jobs: 1, Budget: engine.NewBudget(2)})
	job, err := m.Submit(Request{Names: []string{"svc-panic"}, Variants: []string{suite.VariantRaces}})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if st := waitJob(t, job); st.State != StateFailed || st.Error == "" {
		t.Fatalf("state %s err %q, want failed with a panic message", st.State, st.Error)
	}
	next, err := m.Submit(probeReq())
	if err != nil {
		t.Fatalf("submit after panic: %v", err)
	}
	if st := waitJob(t, next); st.State != StateDone {
		t.Fatalf("follow-up job state %s, want done", st.State)
	}
}

// Submission validation rejects unknown selections at the door.
func TestSubmitValidation(t *testing.T) {
	m := newTestManager(t, Config{Jobs: 1, Budget: engine.NewBudget(1)})
	for name, req := range map[string]Request{
		"unknown tag":      {Tags: []string{"nope"}},
		"unknown workload": {Names: []string{"nope"}},
		"unknown variant":  {Names: []string{"svc-probe"}, Variants: []string{"nope"}},
		"unknown analysis": {Names: []string{"svc-probe"}, Analyses: []string{"nope"}},
		"empty selection":  {Tags: []string{"table5"}, Names: []string{"svc-probe"}},
		"negative timeout": {Names: []string{"svc-probe"}, TimeoutMs: -1},
	} {
		if _, err := m.Submit(req); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// The fingerprint is order-insensitive for selections, sensitive to every
// result-determining knob, and blind to the timeout.
func TestFingerprint(t *testing.T) {
	norm := func(r Request) Request {
		n, err := normalize(r)
		if err != nil {
			t.Fatalf("normalize: %v", err)
		}
		return n
	}
	a := norm(Request{Tags: []string{"table4", "table3"}, Variants: []string{"table5", "races"}})
	b := norm(Request{Tags: []string{"table3", "table4"}, Variants: []string{"races", "table5"}, TimeoutMs: 999})
	if fingerprint(a) != fingerprint(b) {
		t.Fatal("selection order or timeout changed the fingerprint")
	}
	c := norm(Request{Tags: []string{"table3", "table4"}, Variants: []string{"races", "table5"}, Seed: 7})
	if fingerprint(a) == fingerprint(c) {
		t.Fatal("seed did not change the fingerprint")
	}
	d := norm(Request{Tags: []string{"table3", "table4"}, Variants: []string{"races", "table5"}, NoCheckpoint: true})
	if fingerprint(a) == fingerprint(d) {
		t.Fatal("engine options did not change the fingerprint")
	}
}

// Shutdown stops intake, cancels queued jobs and drains the running one.
func TestShutdown(t *testing.T) {
	m := NewManager(Config{Jobs: 1, Budget: engine.NewBudget(2), CacheBytes: -1})
	started := armSlow(t)
	running, err := m.Submit(Request{Names: []string{"svc-slow"}, Variants: []string{suite.VariantRaces}})
	if err != nil {
		t.Fatalf("submit running: %v", err)
	}
	queued, err := m.Submit(probeReq())
	if err != nil {
		t.Fatalf("submit queued: %v", err)
	}
	select {
	case <-started:
	case <-time.After(30 * time.Second):
		t.Fatal("slow job never started")
	}

	ctx, cancel := contextWithTimeout(1 * time.Millisecond) // force the drain deadline
	defer cancel()
	m.Shutdown(ctx)

	if st := queued.Status(); st.State != StateCancelled {
		t.Fatalf("queued job state %s, want cancelled", st.State)
	}
	if st := running.Status(); !st.State.Terminal() {
		t.Fatalf("running job state %s, want terminal after drain", st.State)
	}
	if _, err := m.Submit(probeReq()); err != ErrShuttingDown {
		t.Fatalf("post-shutdown submit error = %v, want ErrShuttingDown", err)
	}
}

// The LRU cache evicts by bytes from the cold end and never admits a body
// larger than itself.
func TestResultCacheLRU(t *testing.T) {
	c := newResultCache(10)
	c.put("a", []byte("aaaa")) // 4 bytes
	c.put("b", []byte("bbbb")) // 8 total
	if _, ok := c.get("a"); !ok {
		t.Fatal("a missing")
	}
	c.put("c", []byte("cccc")) // 12 total -> evict LRU ("b"; "a" was touched)
	if _, ok := c.get("b"); ok {
		t.Fatal("b should have been evicted")
	}
	if _, ok := c.get("a"); !ok {
		t.Fatal("a should have survived (recently used)")
	}
	c.put("huge", make([]byte, 11))
	if _, ok := c.get("huge"); ok {
		t.Fatal("oversized body admitted")
	}
	s := c.stats()
	if s.Entries != 2 || s.Bytes != 8 {
		t.Fatalf("stats = %+v, want 2 entries / 8 bytes", s)
	}
}
