package service

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"yashme/internal/engine"
)

// BenchmarkServiceThroughput measures end-to-end jobs/sec through the HTTP
// path (POST ?wait=1 → terminal status): "cold" defeats the cache with a
// distinct seed per job, so every iteration simulates; "cachehit" repeats
// one request, so all but the first are answered from the cache. The ratio
// is the cache's measured win, recorded as EXPERIMENTS.md E25.
func BenchmarkServiceThroughput(b *testing.B) {
	for _, bc := range []struct {
		name        string
		seedPerIter bool
	}{
		{"cold", true},
		{"cachehit", false},
	} {
		b.Run(bc.name, func(b *testing.B) {
			m := NewManager(Config{Jobs: 2, Budget: engine.NewBudget(0)})
			defer func() {
				ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
				defer cancel()
				m.Shutdown(ctx)
			}()
			srv := httptest.NewServer(NewHandler(m))
			defer srv.Close()

			submit := func(seed int) {
				payload := fmt.Sprintf(`{"names":["svc-probe"],"variants":["races"],"seed":%d}`, seed)
				resp, err := http.Post(srv.URL+"/v1/jobs?wait=1", "application/json", strings.NewReader(payload))
				if err != nil {
					b.Fatal(err)
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					b.Fatalf("POST: code %d", resp.StatusCode)
				}
			}
			submit(1) // prime: the cachehit case hits from iteration one
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				seed := 1
				if bc.seedPerIter {
					seed = i + 2 // never the primed seed
				}
				submit(seed)
			}
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "jobs/s")
		})
	}
}
