package service

import (
	"encoding/json"
	"errors"
	"net/http"

	"yashme/internal/workload"
)

// WorkloadInfo is one registry row of the /v1/workloads listing: the
// benchmark's identity and its paper metadata, enough for a client to
// build a valid selection without reading the source.
type WorkloadInfo struct {
	Name       string   `json:"name"`
	Order      int      `json:"order"`
	ModelCheck bool     `json:"model_check"`
	Tags       []string `json:"tags,omitempty"`
	Table5Seed int64    `json:"table5_seed,omitempty"`
	// PaperPrefix/PaperBaseline echo the Table 5 counts the paper reports.
	PaperPrefix       int `json:"paper_prefix,omitempty"`
	PaperBaseline     int `json:"paper_baseline,omitempty"`
	BenignCrashPoints int `json:"benign_crash_points,omitempty"`
}

// NewHandler builds the service's HTTP API over a manager:
//
//	POST   /v1/jobs             submit a Request (?wait=1 blocks until terminal)
//	GET    /v1/jobs/{id}        job status, result embedded once terminal
//	GET    /v1/jobs/{id}/result the run's canonical suite.Result JSON, verbatim
//	DELETE /v1/jobs/{id}        cancel (idempotent on terminal jobs)
//	GET    /v1/workloads        the registry with tags and paper metadata
//	GET    /healthz             liveness
//	GET    /metrics             jobs by state, cache, budget, engine counters
//
// Errors are {"error": "..."} JSON: 400 for invalid requests, 404 for
// unknown jobs, 429 when the queue is full, 503 while shutting down.
func NewHandler(m *Manager) http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		var req Request
		dec := json.NewDecoder(r.Body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		job, err := m.Submit(req)
		if err != nil {
			writeError(w, codeFor(err), err)
			return
		}
		if wait := r.URL.Query().Get("wait"); wait == "1" || wait == "true" {
			select {
			case <-job.Done():
			case <-r.Context().Done():
			}
		}
		st := job.Status()
		code := http.StatusAccepted
		if st.State.Terminal() {
			code = http.StatusOK
		}
		writeJSON(w, code, st)
	})

	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		job, err := m.Job(r.PathValue("id"))
		if err != nil {
			writeError(w, codeFor(err), err)
			return
		}
		writeJSON(w, http.StatusOK, job.Status())
	})

	mux.HandleFunc("GET /v1/jobs/{id}/result", func(w http.ResponseWriter, r *http.Request) {
		job, err := m.Job(r.PathValue("id"))
		if err != nil {
			writeError(w, codeFor(err), err)
			return
		}
		st := job.Status()
		if len(st.Result) == 0 {
			writeError(w, http.StatusNotFound, errors.New("job has no result (yet)"))
			return
		}
		// The stored bytes go out untouched: this is the byte-identity
		// endpoint, comparable to a fresh run's Canonical JSON with cmp.
		w.Header().Set("Content-Type", "application/json")
		w.Write(st.Result)
	})

	mux.HandleFunc("DELETE /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		st, err := m.Cancel(r.PathValue("id"))
		if err != nil {
			writeError(w, codeFor(err), err)
			return
		}
		writeJSON(w, http.StatusOK, st)
	})

	mux.HandleFunc("GET /v1/workloads", func(w http.ResponseWriter, r *http.Request) {
		specs := workload.All()
		infos := make([]WorkloadInfo, len(specs))
		for i, s := range specs {
			infos[i] = WorkloadInfo{
				Name:              s.Name,
				Order:             s.Order,
				ModelCheck:        s.ModelCheck,
				Tags:              s.Tags,
				Table5Seed:        s.Table5Seed,
				PaperPrefix:       s.PaperPrefix,
				PaperBaseline:     s.PaperBaseline,
				BenignCrashPoints: s.BenignCrashPoints,
			}
		}
		writeJSON(w, http.StatusOK, infos)
	})

	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})

	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, m.Metrics())
	})

	return mux
}

func codeFor(err error) int {
	switch {
	case errors.Is(err, ErrBadRequest):
		return http.StatusBadRequest
	case errors.Is(err, ErrNotFound):
		return http.StatusNotFound
	case errors.Is(err, ErrQueueFull):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrShuttingDown):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
