// Package service is the long-running detection service behind
// cmd/yashme-serve: it turns the suite runner into a job system that many
// clients can share. A Manager owns a bounded submission queue, a small
// pool of job workers, one machine-wide engine.Budget that every
// concurrent suite run draws from (so job × suite × scenario parallelism
// never oversubscribes GOMAXPROCS), and a content-addressed result cache
// keyed by the canonical fingerprint of a request — workload selection,
// engine options, analysis passes and seed — so identical submissions are
// answered without simulating anything, byte-identical to the fresh run
// that populated the entry.
//
// Jobs move queued → running → done/failed/cancelled. Cancellation (the
// DELETE endpoint, a per-job timeout, or daemon shutdown) rides the
// engine's context plumbing: a running job stops at the next scenario
// boundary and keeps a well-formed partial result. The distinction
// between a deadline and an explicit cancel is the context error — a
// job whose context reports DeadlineExceeded failed its timeout, one
// whose context was cancelled was cancelled.
package service

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"yashme/internal/analysis"
	"yashme/internal/engine"
	"yashme/internal/suite"
	"yashme/internal/workload"

	// Link the non-default analysis passes so requests may select them.
	_ "yashme/internal/analysis/all"
)

// Sentinel errors the HTTP layer maps to status codes.
var (
	// ErrBadRequest wraps every request-validation failure (unknown
	// workload, tag, variant or analysis; empty selection; bad knobs).
	ErrBadRequest = errors.New("bad request")
	// ErrQueueFull reports a full submission queue (backpressure; retry).
	ErrQueueFull = errors.New("submission queue full")
	// ErrShuttingDown reports a manager that has stopped accepting jobs.
	ErrShuttingDown = errors.New("service shutting down")
	// ErrNotFound reports an unknown job ID.
	ErrNotFound = errors.New("no such job")
)

// Request is a detection-job submission: which workloads to run, under
// which engine configuration. The zero request runs the full registry
// through every variant group with the engine defaults — exactly
// cmd/yashme-tables with no flags. All fields but TimeoutMs are part of
// the job's cache identity.
type Request struct {
	// Tags/Names/Variants select workloads and variant groups exactly as
	// suite.Config does (empty = all).
	Tags     []string `json:"tags,omitempty"`
	Names    []string `json:"names,omitempty"`
	Variants []string `json:"variants,omitempty"`
	// Analyses selects the analysis passes (empty = yashme alone; order is
	// semantic — the first pass is primary).
	Analyses []string `json:"analyses,omitempty"`
	// Seed, when non-zero, overrides every run's seed (the random-mode
	// reproducibility knob; see suite.Config.Seed).
	Seed int64 `json:"seed,omitempty"`
	// Engine escape hatches, mirroring the CLI flags (results are
	// byte-identical either way; stats differ, so they fingerprint).
	NoCheckpoint  bool `json:"no_checkpoint,omitempty"`
	NoDirectRun   bool `json:"no_directrun,omitempty"`
	NoDedup       bool `json:"no_dedup,omitempty"`
	NoClockIntern bool `json:"no_clockintern,omitempty"`
	Keyframe      int  `json:"keyframe,omitempty"`
	// TimeoutMs bounds the job's wall-clock run (0 = the manager's
	// default). Excluded from the fingerprint: a timeout changes when a
	// result arrives, never what it is.
	TimeoutMs int64 `json:"timeout_ms,omitempty"`
}

// State is a job's lifecycle position.
type State string

// The job states. Queued and running are live; the other three terminal.
const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Job is one managed detection run.
type Job struct {
	id string
	fp string

	mu       sync.Mutex
	req      Request // normalized
	state    State
	cacheHit bool
	err      string
	body     []byte // canonical suite.Result JSON, served verbatim
	started  time.Time
	finished time.Time
	cancel   context.CancelFunc // set while running
	done     chan struct{}      // closed on reaching a terminal state
}

// ID returns the job's identifier.
func (j *Job) ID() string { return j.id }

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// JobStatus is the JSON snapshot of a job the API serves.
type JobStatus struct {
	ID       string  `json:"id"`
	State    State   `json:"state"`
	CacheHit bool    `json:"cache_hit,omitempty"`
	Error    string  `json:"error,omitempty"`
	// ElapsedNs is the job's run time (0 until it finishes running).
	ElapsedNs int64   `json:"elapsed_ns,omitempty"`
	Request   Request `json:"request"`
	// Result is the run's canonical suite.Result JSON, present once the
	// job holds one — including the well-formed partial result of a
	// cancelled or timed-out run (its "cancelled" field is set).
	Result json.RawMessage `json:"result,omitempty"`
}

// Status snapshots the job.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.statusLocked()
}

func (j *Job) statusLocked() JobStatus {
	st := JobStatus{
		ID:       j.id,
		State:    j.state,
		CacheHit: j.cacheHit,
		Error:    j.err,
		Request:  j.req,
		Result:   j.body,
	}
	if !j.started.IsZero() && !j.finished.IsZero() {
		st.ElapsedNs = j.finished.Sub(j.started).Nanoseconds()
	}
	return st
}

// Config sizes a Manager. The zero value is usable: two job workers, a
// 64-deep queue, a GOMAXPROCS budget, a 64 MiB cache, no default timeout.
type Config struct {
	// Jobs is the number of suites run concurrently (default 2). More jobs
	// never add machine parallelism — they share the Budget — but let
	// short jobs overtake long ones.
	Jobs int
	// QueueDepth bounds the submission queue (default 64); a full queue
	// rejects with ErrQueueFull rather than buffering without bound.
	QueueDepth int
	// Budget is the machine-wide scenario budget every job's suite run
	// draws from (nil = engine.NewBudget(0), i.e. GOMAXPROCS).
	Budget *engine.Budget
	// CacheBytes bounds the result cache (default 64 MiB; negative
	// disables caching).
	CacheBytes int64
	// DefaultTimeout bounds jobs that don't set TimeoutMs (0 = none).
	DefaultTimeout time.Duration
}

func (c Config) withDefaults() Config {
	if c.Jobs <= 0 {
		c.Jobs = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.Budget == nil {
		c.Budget = engine.NewBudget(0)
	}
	if c.CacheBytes == 0 {
		c.CacheBytes = 64 << 20
	}
	return c
}

// Manager owns the job system: queue, workers, budget, cache, registry of
// every job it has seen. Create with NewManager, stop with Shutdown.
type Manager struct {
	cfg    Config
	budget *engine.Budget
	cache  *resultCache

	baseCtx    context.Context
	baseCancel context.CancelFunc
	wg         sync.WaitGroup
	queue      chan *Job

	mu     sync.Mutex
	jobs   map[string]*Job
	seq    int
	closed bool

	statsMu sync.Mutex
	agg     engine.Stats // accumulated over every run that simulated
}

// NewManager starts a manager: its worker goroutines run until Shutdown.
func NewManager(cfg Config) *Manager {
	cfg = cfg.withDefaults()
	m := &Manager{
		cfg:    cfg,
		budget: cfg.Budget,
		jobs:   make(map[string]*Job),
		queue:  make(chan *Job, cfg.QueueDepth),
	}
	if cfg.CacheBytes > 0 {
		m.cache = newResultCache(cfg.CacheBytes)
	}
	m.baseCtx, m.baseCancel = context.WithCancel(context.Background())
	for i := 0; i < cfg.Jobs; i++ {
		m.wg.Add(1)
		go func() {
			defer m.wg.Done()
			for job := range m.queue {
				m.runJob(job)
			}
		}()
	}
	return m
}

// Budget returns the manager's shared scenario budget (for /metrics).
func (m *Manager) Budget() *engine.Budget { return m.budget }

// Submit validates a request and either answers it from the cache — the
// returned job is already done, CacheHit set, zero simulation — or
// enqueues a fresh job. The error is ErrBadRequest-wrapped for invalid
// requests, ErrQueueFull under backpressure, ErrShuttingDown after
// Shutdown began.
func (m *Manager) Submit(req Request) (*Job, error) {
	req, err := normalize(req)
	if err != nil {
		return nil, err
	}
	fp := fingerprint(req)

	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, ErrShuttingDown
	}
	m.seq++
	job := &Job{
		id:   fmt.Sprintf("j%06d", m.seq),
		fp:   fp,
		req:  req,
		done: make(chan struct{}),
	}
	if body, ok := m.cache.get(fp); ok {
		job.state = StateDone
		job.cacheHit = true
		job.body = body
		close(job.done)
		m.jobs[job.id] = job
		return job, nil
	}
	job.state = StateQueued
	select {
	case m.queue <- job:
		m.jobs[job.id] = job
		return job, nil
	default:
		m.seq-- // job never existed
		return nil, ErrQueueFull
	}
}

// Job returns a job by ID.
func (m *Manager) Job(id string) (*Job, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if job, ok := m.jobs[id]; ok {
		return job, nil
	}
	return nil, ErrNotFound
}

// Cancel cancels a job: a queued job goes terminal immediately, a running
// one is cut at its next scenario boundary and keeps its partial result.
// Cancelling a terminal job is a no-op. Returns the post-cancel status.
func (m *Manager) Cancel(id string) (JobStatus, error) {
	job, err := m.Job(id)
	if err != nil {
		return JobStatus{}, err
	}
	job.mu.Lock()
	defer job.mu.Unlock()
	switch job.state {
	case StateQueued:
		job.state = StateCancelled
		job.err = "cancelled before start"
		close(job.done)
	case StateRunning:
		job.cancel()
	}
	return job.statusLocked(), nil
}

// runJob executes one dequeued job. Workload panics become job failures,
// not worker deaths.
func (m *Manager) runJob(job *Job) {
	job.mu.Lock()
	if job.state != StateQueued { // cancelled while waiting in the queue
		job.mu.Unlock()
		return
	}
	timeout := m.cfg.DefaultTimeout
	if job.req.TimeoutMs > 0 {
		timeout = time.Duration(job.req.TimeoutMs) * time.Millisecond
	}
	var ctx context.Context
	var cancel context.CancelFunc
	if timeout > 0 {
		ctx, cancel = context.WithTimeout(m.baseCtx, timeout)
	} else {
		ctx, cancel = context.WithCancel(m.baseCtx)
	}
	job.state = StateRunning
	job.cancel = cancel
	job.started = time.Now()
	req := job.req
	job.mu.Unlock()
	defer cancel()

	var res *suite.Result
	var panicErr error
	func() {
		defer func() {
			if p := recover(); p != nil {
				panicErr = fmt.Errorf("workload panic: %v", p)
			}
		}()
		res = suite.RunContext(ctx, suiteConfig(req, m.budget))
	}()

	var body []byte
	if res != nil {
		m.statsMu.Lock()
		addStats(&m.agg, res.TotalStats())
		m.statsMu.Unlock()
		var err error
		if body, err = res.Canonical().JSON(); err != nil && panicErr == nil {
			panicErr = err
		}
	}

	job.mu.Lock()
	job.finished = time.Now()
	job.body = body
	switch {
	case panicErr != nil:
		job.state = StateFailed
		job.err = panicErr.Error()
	case res.Cancelled:
		if errors.Is(ctx.Err(), context.DeadlineExceeded) {
			job.state = StateFailed
			job.err = "job timeout exceeded (partial result retained)"
		} else {
			job.state = StateCancelled
			job.err = "cancelled (partial result retained)"
		}
	default:
		job.state = StateDone
		// Only complete runs are cacheable: a partial result is not the
		// answer to the request, just what was done when it stopped.
		m.cache.put(job.fp, body)
	}
	close(job.done)
	job.mu.Unlock()
}

// Shutdown stops the manager: no new submissions, queued jobs cancelled,
// running jobs drained until ctx expires, then cut at their next scenario
// boundary. Idempotent; returns once every worker has exited.
func (m *Manager) Shutdown(ctx context.Context) {
	m.mu.Lock()
	if !m.closed {
		m.closed = true
		close(m.queue)
	}
	live := make([]*Job, 0, len(m.jobs))
	for _, j := range m.jobs {
		live = append(live, j)
	}
	m.mu.Unlock()

	for _, j := range live {
		j.mu.Lock()
		if j.state == StateQueued {
			j.state = StateCancelled
			j.err = "service shutting down"
			close(j.done)
		}
		j.mu.Unlock()
	}

	drained := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(drained)
	}()
	select {
	case <-drained:
	case <-ctx.Done():
		m.baseCancel() // cut running jobs at their next scenario boundary
		<-drained
	}
	m.baseCancel()
}

// Metrics is the /metrics snapshot.
type Metrics struct {
	// Jobs counts every job the manager has seen, by state.
	Jobs map[State]int `json:"jobs"`
	// Cache is the result cache's hit/size ledger.
	Cache CacheStats `json:"cache"`
	// BudgetSize/BudgetInUse are the shared scenario budget's capacity and
	// current utilization.
	BudgetSize  int `json:"budget_size"`
	BudgetInUse int `json:"budget_in_use"`
	// Engine aggregates the engine counters (simulated ops, handoffs,
	// snapshot bytes, dedup and clock-arena activity …) over every run the
	// service actually simulated. Cache hits add nothing here — that is
	// the "zero additional simulated ops" proof in counter form.
	Engine engine.Stats `json:"engine"`
}

// Metrics snapshots the manager.
func (m *Manager) Metrics() Metrics {
	mm := Metrics{Jobs: map[State]int{}}
	m.mu.Lock()
	for _, j := range m.jobs {
		j.mu.Lock()
		mm.Jobs[j.state]++
		j.mu.Unlock()
	}
	m.mu.Unlock()
	mm.Cache = m.cache.stats()
	mm.BudgetSize = m.budget.Size()
	mm.BudgetInUse = m.budget.InUse()
	m.statsMu.Lock()
	mm.Engine = m.agg
	m.statsMu.Unlock()
	return mm
}

// suiteConfig maps a normalized request onto the suite runner, wiring the
// manager's shared budget through so concurrent jobs split the machine.
func suiteConfig(req Request, budget *engine.Budget) suite.Config {
	cfg := suite.Config{
		Tags:     req.Tags,
		Names:    req.Names,
		Variants: req.Variants,
		Analyses: req.Analyses,
		Seed:     req.Seed,
		Keyframe: req.Keyframe,
		Budget:   budget,
	}
	if req.NoCheckpoint {
		cfg.Checkpoint = engine.CheckpointOff
	}
	if req.NoDirectRun {
		cfg.DirectRun = engine.DirectRunOff
	}
	if req.NoDedup {
		cfg.Dedup = engine.DedupOff
	}
	if req.NoClockIntern {
		cfg.ClockIntern = engine.ClockInternOff
	}
	return cfg
}

// normalize canonicalizes a request (sorted unique tags and names,
// variants in canonical group order) and validates every field against
// the registries, so that equal selections fingerprint equally and
// invalid submissions fail at the door instead of inside a worker.
func normalize(req Request) (Request, error) {
	req.Tags = sortUnique(req.Tags)
	req.Names = sortUnique(req.Names)

	known := make(map[string]bool)
	for _, s := range workload.All() {
		for _, t := range s.Tags {
			known[t] = true
		}
	}
	for _, t := range req.Tags {
		if !known[t] {
			return req, fmt.Errorf("%w: unknown tag %q", ErrBadRequest, t)
		}
	}
	for _, n := range req.Names {
		if _, ok := workload.Lookup(n); !ok {
			return req, fmt.Errorf("%w: unknown workload %q", ErrBadRequest, n)
		}
	}
	selected := 0
	for _, s := range workload.Tagged(req.Tags...) {
		if len(req.Names) > 0 {
			hit := false
			for _, n := range req.Names {
				hit = hit || n == s.Name
			}
			if !hit {
				continue
			}
		}
		selected++
	}
	if selected == 0 {
		return req, fmt.Errorf("%w: selection matches no workloads", ErrBadRequest)
	}

	if len(req.Variants) > 0 {
		groups := []string{suite.VariantRaces, suite.VariantTable5, suite.VariantBenign, suite.VariantWindow}
		want := make(map[string]bool, len(req.Variants))
		for _, v := range req.Variants {
			ok := false
			for _, g := range groups {
				ok = ok || v == g
			}
			if !ok {
				return req, fmt.Errorf("%w: unknown variant %q", ErrBadRequest, v)
			}
			want[v] = true
		}
		ordered := make([]string, 0, len(want))
		for _, g := range groups {
			if want[g] {
				ordered = append(ordered, g)
			}
		}
		req.Variants = ordered
	}

	if len(req.Analyses) > 0 {
		registered := analysis.Names()
		for _, a := range req.Analyses {
			ok := false
			for _, r := range registered {
				ok = ok || a == r
			}
			if !ok {
				return req, fmt.Errorf("%w: unknown analysis %q (have %v)", ErrBadRequest, a, registered)
			}
		}
	}

	if req.Seed < 0 {
		return req, fmt.Errorf("%w: negative seed", ErrBadRequest)
	}
	if req.Keyframe < 0 {
		return req, fmt.Errorf("%w: negative keyframe", ErrBadRequest)
	}
	if req.TimeoutMs < 0 {
		return req, fmt.Errorf("%w: negative timeout_ms", ErrBadRequest)
	}
	return req, nil
}

// fingerprint is the request's cache identity: SHA-256 over the canonical
// JSON of every result-determining field. TimeoutMs is deliberately
// absent — it changes when a result arrives, not what it is.
func fingerprint(req Request) string {
	req.TimeoutMs = 0
	b, err := json.Marshal(req)
	if err != nil { // a Request of plain strings and ints cannot fail
		panic(err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

func sortUnique(in []string) []string {
	if len(in) == 0 {
		return nil
	}
	out := append([]string(nil), in...)
	sort.Strings(out)
	n := 0
	for i, s := range out {
		if i == 0 || s != out[i-1] {
			out[n] = s
			n++
		}
	}
	return out[:n]
}

// addStats accumulates one run's counters into the service-wide ledger.
func addStats(dst *engine.Stats, s engine.Stats) {
	dst.Stores += s.Stores
	dst.Loads += s.Loads
	dst.Flushes += s.Flushes
	dst.Fences += s.Fences
	dst.RMWs += s.RMWs
	dst.SimulatedOps += s.SimulatedOps
	dst.Handoffs += s.Handoffs
	dst.DirectOps += s.DirectOps
	dst.SnapshotBytes += s.SnapshotBytes
	dst.JournalOps += s.JournalOps
	dst.ClockInterned += s.ClockInterned
	dst.EpochHits += s.EpochHits
	dst.EpochMisses += s.EpochMisses
	dst.DedupedScenarios += s.DedupedScenarios
}
