// Package tables regenerates every table of the paper's evaluation
// (Tables 2a, 2b, 3, 4, 5 and the §7.5 benign-race count) from the live
// system: the compiler-study pipeline and the race detector running over
// the reproduced benchmarks. cmd/yashme-tables prints them; the tests and
// root-level benchmarks assert their shape against the published numbers.
package tables

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"yashme/internal/compiler"
	"yashme/internal/engine"
	"yashme/internal/memcachedpm"
	"yashme/internal/pmdk"
	"yashme/internal/pmm"
	"yashme/internal/progs/cceh"
	"yashme/internal/progs/fastfair"
	"yashme/internal/progs/part"
	"yashme/internal/progs/pbwtree"
	"yashme/internal/progs/pclht"
	"yashme/internal/progs/pmasstree"
	"yashme/internal/redispm"
	"yashme/internal/report"
)

// Workers is the engine worker-pool size every table run uses (0 = the
// engine default, GOMAXPROCS). cmd/yashme-tables sets it from -workers;
// results are identical for every value (see engine.Options.Workers).
var Workers int

// Checkpoint is the checkpoint mode every table run uses (default on).
// cmd/yashme-tables sets it from -checkpoint; results are identical either
// way (see engine.Options.Checkpoint).
var Checkpoint engine.CheckpointMode

// DirectRun is the solo-thread direct-run lease mode every table run uses
// (default on). cmd/yashme-tables sets it from -directrun; results are
// identical either way (see engine.Options.DirectRun).
var DirectRun engine.DirectRunMode

// Spec describes one benchmark program and how the paper evaluated it.
type Spec struct {
	// Name is the benchmark name as it appears in the paper's tables.
	Name string
	// Make builds a fresh program instance.
	Make func() pmm.Program
	// ModelCheck selects the paper's mode for this benchmark (§7.1: model
	// checking for the PM indexes, random mode for PMDK/Redis/Memcached).
	ModelCheck bool
	// Table5Seed is the seed for the single-execution Table 5 run.
	Table5Seed int64
	// PaperPrefix/PaperBaseline are the Table 5 counts the paper reports.
	PaperPrefix, PaperBaseline int
}

// IndexSpecs are the Table 3 benchmarks (model-checking mode).
func IndexSpecs() []Spec {
	return []Spec{
		{Name: "CCEH", Make: cceh.New(4, nil), ModelCheck: true, Table5Seed: 1, PaperPrefix: 2, PaperBaseline: 0},
		{Name: "Fast_Fair", Make: fastfair.New(7, nil), ModelCheck: true, Table5Seed: 11, PaperPrefix: 2, PaperBaseline: 1},
		{Name: "P-ART", Make: part.New(6, nil), ModelCheck: true, Table5Seed: 3, PaperPrefix: 0, PaperBaseline: 0},
		{Name: "P-BwTree", Make: pbwtree.New(6, nil), ModelCheck: true, Table5Seed: 2, PaperPrefix: 0, PaperBaseline: 0},
		{Name: "P-CLHT", Make: pclht.New(6, nil), ModelCheck: true, Table5Seed: 1, PaperPrefix: 0, PaperBaseline: 0},
		{Name: "P-Masstree", Make: pmasstree.New(7, nil), ModelCheck: true, Table5Seed: 1, PaperPrefix: 2, PaperBaseline: 0},
	}
}

// FrameworkSpecs are the Table 4/5 framework benchmarks (random mode).
func FrameworkSpecs() []Spec {
	return []Spec{
		{Name: "Btree", Make: pmdk.NewBTreeProg(4, nil), Table5Seed: 1, PaperPrefix: 1, PaperBaseline: 0},
		{Name: "Ctree", Make: pmdk.NewCTreeProg(4, nil), Table5Seed: 1, PaperPrefix: 1, PaperBaseline: 0},
		{Name: "RBtree", Make: pmdk.NewRBTreeProg(4, nil), Table5Seed: 1, PaperPrefix: 1, PaperBaseline: 0},
		{Name: "hashmap-atomic", Make: pmdk.NewHashmapAtomicProg(4, nil), Table5Seed: 1, PaperPrefix: 1, PaperBaseline: 0},
		{Name: "hashmap-tx", Make: pmdk.NewHashmapTXProg(4, nil), Table5Seed: 1, PaperPrefix: 1, PaperBaseline: 0},
		{Name: "Redis", Make: redispm.New(4, nil), Table5Seed: 1, PaperPrefix: 0, PaperBaseline: 0},
		{Name: "Memcached", Make: memcachedpm.New(4, nil), Table5Seed: 2, PaperPrefix: 4, PaperBaseline: 2},
	}
}

// AllSpecs is every Table 5 benchmark in paper order.
func AllSpecs() []Spec {
	return append(IndexSpecs(), FrameworkSpecs()...)
}

// --- Table 2 ---

// Table2aText renders Table 2a.
func Table2aText() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-18s %-7s %s\n", "Compiler", "Arch", "Store Optimizations")
	for _, row := range compiler.Table2a() {
		fmt.Fprintf(&b, "%-18s %-7s %s\n", row.Compiler, row.Arch, row.Optimization)
	}
	return b.String()
}

// Table2bText renders Table 2b with paper comparison columns.
func Table2bText() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %8s %8s   (paper: src asm)\n", "Prog", "#src-op", "#asm-op")
	for _, row := range compiler.Table2b() {
		want := compiler.PaperTable2b[row.Prog]
		fmt.Fprintf(&b, "%-12s %8d %8d   (paper: %d %d)\n", row.Prog, row.SrcOps, row.AsmOps, want[0], want[1])
	}
	return b.String()
}

// --- Tables 3 & 4 ---

// RaceRow is one bug row of Table 3/4.
type RaceRow struct {
	Index     int
	Benchmark string
	Field     string
}

// Table3 model-checks the six PM indexes and returns the deduplicated race
// rows (paper Table 3: 19 rows).
func Table3() []RaceRow {
	var rows []RaceRow
	idx := 1
	for _, spec := range IndexSpecs() {
		res := engine.Run(spec.Make, engine.Options{Mode: engine.ModelCheck, Prefix: true, Workers: Workers, Checkpoint: Checkpoint, DirectRun: DirectRun})
		for _, f := range res.Report.Fields() {
			rows = append(rows, RaceRow{Index: idx, Benchmark: spec.Name, Field: f})
			idx++
		}
	}
	return rows
}

// Table4 runs the frameworks in random mode (as the paper does) and returns
// the deduplicated race rows (paper Table 4: 5 rows — 1 PMDK, 4 Memcached,
// 0 Redis).
func Table4() []RaceRow {
	set := report.NewSet()
	run := func(mk func() pmm.Program) {
		res := engine.Run(mk, engine.Options{Mode: engine.RandomMode, Prefix: true, Seed: 1, Executions: 40, Workers: Workers, Checkpoint: Checkpoint, DirectRun: DirectRun})
		set.Merge(res.Report)
	}
	run(pmdk.NewPMDKProg(3, nil))
	run(memcachedpm.New(4, nil))
	run(redispm.New(4, nil))
	var rows []RaceRow
	for i, r := range set.Races() {
		rows = append(rows, RaceRow{Index: i + 1, Benchmark: r.Benchmark, Field: r.Field})
	}
	return rows
}

// RaceRowsText renders Table 3/4-style rows.
func RaceRowsText(rows []RaceRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-3s %-15s %s\n", "#", "Benchmark", "Root Cause of Bug")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-3d %-15s %s\n", r.Index, r.Benchmark, r.Field)
	}
	return b.String()
}

// --- Table 5 ---

// Table5Row is one row of Table 5: race counts with and without the
// prefix-based expansion for a single execution, plus the detector-on
// (Yashme) and detector-off (Jaaru) runtimes.
type Table5Row struct {
	Benchmark  string
	Prefix     int
	Baseline   int
	YashmeTime time.Duration
	JaaruTime  time.Duration
	// PaperPrefix/PaperBaseline are the published counts for comparison.
	PaperPrefix, PaperBaseline int
}

// Table5 runs every benchmark for a single randomly generated execution
// (the paper's §7.3 configuration) in three variants: prefix, baseline, and
// detector-off (Jaaru).
func Table5() []Table5Row {
	var rows []Table5Row
	for _, spec := range AllSpecs() {
		row := Table5Row{Benchmark: spec.Name, PaperPrefix: spec.PaperPrefix, PaperBaseline: spec.PaperBaseline}

		start := time.Now()
		p := engine.Run(spec.Make, engine.Options{Mode: engine.RandomMode, Prefix: true, Seed: spec.Table5Seed, Executions: 1, Workers: Workers, Checkpoint: Checkpoint, DirectRun: DirectRun})
		row.YashmeTime = time.Since(start)
		row.Prefix = p.Report.Count()

		b := engine.Run(spec.Make, engine.Options{Mode: engine.RandomMode, Prefix: false, Seed: spec.Table5Seed, Executions: 1, Workers: Workers, Checkpoint: Checkpoint, DirectRun: DirectRun})
		row.Baseline = b.Report.Count()

		start = time.Now()
		engine.Run(spec.Make, engine.Options{Mode: engine.RandomMode, Prefix: true, Seed: spec.Table5Seed, Executions: 1, DetectorOff: true, Workers: Workers, Checkpoint: Checkpoint, DirectRun: DirectRun})
		row.JaaruTime = time.Since(start)

		rows = append(rows, row)
	}
	return rows
}

// Table5Text renders Table 5.
func Table5Text(rows []Table5Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-15s %7s %9s %13s %12s   (paper: prefix baseline)\n",
		"Benchmark", "Prefix", "Baseline", "Yashme Time", "Jaaru Time")
	totalP, totalB := 0, 0
	for _, r := range rows {
		fmt.Fprintf(&b, "%-15s %7d %9d %13s %12s   (paper: %d %d)\n",
			r.Benchmark, r.Prefix, r.Baseline,
			r.YashmeTime.Round(time.Microsecond), r.JaaruTime.Round(time.Microsecond),
			r.PaperPrefix, r.PaperBaseline)
		totalP += r.Prefix
		totalB += r.Baseline
	}
	fmt.Fprintf(&b, "%-15s %7d %9d   (paper totals: 15 vs 3, 5x)\n", "TOTAL", totalP, totalB)
	return b.String()
}

// --- §7.5 benign races ---

// BenignRaces runs the checksum-using frameworks in model-checking mode and
// returns the deduplicated benign (checksum-guarded) races; the paper
// reports 10.
func BenignRaces() []report.Race {
	set := report.NewSet()
	run := func(mk func() pmm.Program, cap int) {
		res := engine.Run(mk, engine.Options{Mode: engine.ModelCheck, Prefix: true, MaxCrashPoints: cap, Workers: Workers, Checkpoint: Checkpoint, DirectRun: DirectRun})
		set.Merge(res.Report)
	}
	run(pmdk.NewPMDKProg(3, nil), 60)
	run(memcachedpm.New(4, nil), 0)
	run(redispm.New(4, nil), 60)
	out := set.Benign()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Benchmark != out[j].Benchmark {
			return out[i].Benchmark < out[j].Benchmark
		}
		return out[i].Field < out[j].Field
	})
	return out
}

// BenignText renders the benign-race list.
func BenignText(races []report.Race) string {
	var b strings.Builder
	fmt.Fprintf(&b, "benign checksum-guarded races: %d (paper: 10)\n", len(races))
	for _, r := range races {
		fmt.Fprintf(&b, "  %-10s %s\n", r.Benchmark, r.Field)
	}
	return b.String()
}

// --- Artifact appendix Figures 11 & 12: the bug index ---

// BugInfo is one row of the artifact's bug index (appendix Figures 11/12):
// a bug identifier, the racing field and where this reproduction implements
// the racy protocol (the analog of the original's file:line references).
type BugInfo struct {
	ID        string
	Benchmark string
	Field     string
	// Site is the implementing location in this repository.
	Site string
}

// BugIndex returns the full 24-bug inventory with implementation sites,
// in the order of the appendix figures.
func BugIndex() []BugInfo {
	return []BugInfo{
		{"CCEH-1", "CCEH", "Pair.value", "internal/progs/cceh (Table.Insert: value store)"},
		{"CCEH-2", "CCEH", "Pair.key", "internal/progs/cceh (Table.Insert: key commit store)"},
		{"FAST_FAIR-1", "Fast_Fair", "header.last_index", "internal/progs/fastfair (Tree.insertEntry, Tree.Delete)"},
		{"FAST_FAIR-2", "Fast_Fair", "header.switch_counter", "internal/progs/fastfair (Tree.insertEntry, Tree.Delete)"},
		{"FAST_FAIR-3", "Fast_Fair", "entry.key", "internal/progs/fastfair (Tree.insertEntry shift loop)"},
		{"FAST_FAIR-4", "Fast_Fair", "entry.ptr", "internal/progs/fastfair (Tree.insertEntry shift loop)"},
		{"FAST_FAIR-5", "Fast_Fair", "btree.root", "internal/progs/fastfair (Tree.Insert root growth)"},
		{"FAST_FAIR-6", "Fast_Fair", "header.sibling_ptr", "internal/progs/fastfair (Tree.split publication)"},
		{"P-ART-1", "P-ART", "N.compactCount", "internal/progs/part (Tree.Insert)"},
		{"P-ART-2", "P-ART", "N.count", "internal/progs/part (Tree.Insert, Tree.Remove)"},
		{"P-ART-3", "P-ART", "DeletionList.deletitionListCount", "internal/progs/part (Tree.retire)"},
		{"P-ART-4", "P-ART", "DeletionList.headDeletionList", "internal/progs/part (Tree.retire)"},
		{"P-ART-5", "P-ART", "LabelDelete.nodesCount", "internal/progs/part (Tree.retire)"},
		{"P-ART-6", "P-ART", "DeletionList.added", "internal/progs/part (Tree.retire, byte-size field)"},
		{"P-ART-7", "P-ART", "DeletionList.thresholdCounter", "internal/progs/part (Tree.retire)"},
		{"P-BwTree-1", "P-BwTree", "BwTreeBase.epoch", "internal/progs/pbwtree (Tree.AdvanceEpoch)"},
		{"P-Masstree-1", "P-Masstree", "masstree.root_", "internal/progs/pmasstree (Tree.split root swing)"},
		{"P-Masstree-2", "P-Masstree", "leafnode.permutation", "internal/progs/pmasstree (Tree.Insert commit)"},
		{"P-Masstree-3", "P-Masstree", "leafnode.next", "internal/progs/pmasstree (Tree.split publication)"},
		{"PMDK-1", "PMDK", "ulog.entry_ptr", "internal/pmdk (Tx.Add entry-pointer advance)"},
		{"Memcached-2", "Memcached", "pslab_pool_t.valid", "internal/memcachedpm (Server.Startup/Shutdown)"},
		{"Memcached-3", "Memcached", "pslab_t.id", "internal/memcachedpm (Server.Startup)"},
		{"Memcached-4", "Memcached", "item_chunk.it_flags", "internal/memcachedpm (Server.SetItem)"},
		{"Memcached-5", "Memcached", "item.cas", "internal/memcachedpm (Server.SetItem)"},
	}
}

// BugIndexText renders the bug index, marking each bug found/missed by the
// live Table 3/4 runs.
func BugIndexText() string {
	found := map[string]bool{}
	for _, r := range Table3() {
		found[r.Benchmark+"/"+r.Field] = true
	}
	for _, r := range Table4() {
		found[r.Benchmark+"/"+r.Field] = true
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %-11s %-34s %-10s %s\n", "Bug ID", "Benchmark", "Field", "Detected", "Implementation site")
	for _, bug := range BugIndex() {
		mark := "MISSED"
		if found[bug.Benchmark+"/"+bug.Field] {
			mark = "found"
		}
		fmt.Fprintf(&b, "%-14s %-11s %-34s %-10s %s\n", bug.ID, bug.Benchmark, bug.Field, mark, bug.Site)
	}
	return b.String()
}

// --- E9: detection-window histogram (Figures 5(b)/6, quantified) ---

// WindowText renders the per-crash-point race histogram for a benchmark in
// prefix and baseline modes: the executable version of the paper's
// detection-window discussion. Prefix mode reveals races at most crash
// points (any consistent prefix works); the baseline needs the crash inside
// a store→flush window.
func WindowText(spec Spec) string {
	p := engine.Run(spec.Make, engine.Options{Mode: engine.ModelCheck, Prefix: true, Workers: Workers, Checkpoint: Checkpoint, DirectRun: DirectRun})
	b := engine.Run(spec.Make, engine.Options{Mode: engine.ModelCheck, Prefix: false, Workers: Workers, Checkpoint: Checkpoint, DirectRun: DirectRun})
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s: races revealed per crash point (0 = crash at completion)\n", spec.Name)
	fmt.Fprintf(&sb, "%-7s %-8s %s\n", "point", "prefix", "baseline")
	bl := map[int]int{}
	for _, row := range b.Window {
		bl[row.Point] = row.Races
	}
	for _, row := range p.Window {
		fmt.Fprintf(&sb, "%-7d %-8d %d\n", row.Point, row.Races, bl[row.Point])
	}
	return sb.String()
}

// --- Markdown rendering (for EXPERIMENTS.md regeneration) ---

// Table2bMarkdown renders Table 2b as a Markdown table with paper columns.
func Table2bMarkdown() string {
	var b strings.Builder
	b.WriteString("| Prog | #src-op (paper) | #asm-op (paper) | #src-op (measured) | #asm-op (measured) |\n")
	b.WriteString("|---|---|---|---|---|\n")
	for _, row := range compiler.Table2b() {
		want := compiler.PaperTable2b[row.Prog]
		fmt.Fprintf(&b, "| %s | %d | %d | %d | %d |\n", row.Prog, want[0], want[1], row.SrcOps, row.AsmOps)
	}
	return b.String()
}

// Table5Markdown renders Table 5 as a Markdown table.
func Table5Markdown(rows []Table5Row) string {
	var b strings.Builder
	b.WriteString("| Benchmark | prefix (paper) | baseline (paper) | prefix (measured) | baseline (measured) |\n")
	b.WriteString("|---|---|---|---|---|\n")
	totalP, totalB, paperP, paperB := 0, 0, 0, 0
	for _, r := range rows {
		fmt.Fprintf(&b, "| %s | %d | %d | %d | %d |\n", r.Benchmark, r.PaperPrefix, r.PaperBaseline, r.Prefix, r.Baseline)
		totalP += r.Prefix
		totalB += r.Baseline
		paperP += r.PaperPrefix
		paperB += r.PaperBaseline
	}
	fmt.Fprintf(&b, "| **total** | **%d** | **%d** | **%d** | **%d** |\n", paperP, paperB, totalP, totalB)
	return b.String()
}

// RaceRowsMarkdown renders Table 3/4 rows as Markdown.
func RaceRowsMarkdown(rows []RaceRow) string {
	var b strings.Builder
	b.WriteString("| # | Benchmark | Root cause |\n|---|---|---|\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "| %d | %s | `%s` |\n", r.Index, r.Benchmark, r.Field)
	}
	return b.String()
}
