// Package tables renders every table of the paper's evaluation (Tables
// 2a, 2b, 3, 4, 5 and the §7.5 benign-race count). It is a pure
// presentation layer: the compiler-study tables come straight from
// internal/compiler, and every detector-derived table is formatted from a
// suite.Result that the caller produced with internal/suite — this
// package runs nothing and holds no configuration. cmd/yashme-tables
// drives it; the tests assert the rendered shapes against the published
// numbers.
package tables

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"yashme/internal/compiler"
	"yashme/internal/report"
	"yashme/internal/suite"
	"yashme/internal/workload"
)

// --- Table 2 ---

// Table2aText renders Table 2a.
func Table2aText() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-18s %-7s %s\n", "Compiler", "Arch", "Store Optimizations")
	for _, row := range compiler.Table2a() {
		fmt.Fprintf(&b, "%-18s %-7s %s\n", row.Compiler, row.Arch, row.Optimization)
	}
	return b.String()
}

// Table2bText renders Table 2b with paper comparison columns.
func Table2bText() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %8s %8s   (paper: src asm)\n", "Prog", "#src-op", "#asm-op")
	for _, row := range compiler.Table2b() {
		want := compiler.PaperTable2b[row.Prog]
		fmt.Fprintf(&b, "%-12s %8d %8d   (paper: %d %d)\n", row.Prog, row.SrcOps, row.AsmOps, want[0], want[1])
	}
	return b.String()
}

// --- Tables 3 & 4 ---

// RaceRow is one bug row of Table 3/4.
type RaceRow struct {
	Index     int
	Benchmark string
	Field     string
}

// Table3 extracts the Table 3 rows (paper: 19) from the suite result: the
// model-checked races of every table3-tagged benchmark, in paper order.
func Table3(res *suite.Result) []RaceRow {
	var rows []RaceRow
	idx := 1
	for i := range res.Benchmarks {
		bench := &res.Benchmarks[i]
		if !bench.HasTag(workload.TagTable3) {
			continue
		}
		run := bench.Run(suite.RunRaces)
		if run == nil {
			continue
		}
		for _, r := range run.Races {
			rows = append(rows, RaceRow{Index: idx, Benchmark: bench.Name, Field: r.Field})
			idx++
		}
	}
	return rows
}

// Table4 extracts the Table 4 rows (paper: 5 — 1 PMDK, 4 Memcached,
// 0 Redis) from the suite result: the random-mode races of every
// table4-tagged benchmark, in the report set's stable (benchmark, field)
// order.
func Table4(res *suite.Result) []RaceRow {
	var races []report.Race
	for i := range res.Benchmarks {
		bench := &res.Benchmarks[i]
		if !bench.HasTag(workload.TagTable4) {
			continue
		}
		if run := bench.Run(suite.RunRaces); run != nil {
			races = append(races, run.Races...)
		}
	}
	sort.Slice(races, func(i, j int) bool {
		if races[i].Benchmark != races[j].Benchmark {
			return races[i].Benchmark < races[j].Benchmark
		}
		return races[i].Field < races[j].Field
	})
	var rows []RaceRow
	for i, r := range races {
		rows = append(rows, RaceRow{Index: i + 1, Benchmark: r.Benchmark, Field: r.Field})
	}
	return rows
}

// RaceRowsText renders Table 3/4-style rows.
func RaceRowsText(rows []RaceRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-3s %-15s %s\n", "#", "Benchmark", "Root Cause of Bug")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-3d %-15s %s\n", r.Index, r.Benchmark, r.Field)
	}
	return b.String()
}

// --- Table 5 ---

// Table5Row is one row of Table 5: race counts with and without the
// prefix-based expansion for a single execution, plus the detector-on
// (Yashme) and detector-off (Jaaru) runtimes.
type Table5Row struct {
	Benchmark  string
	Prefix     int
	Baseline   int
	YashmeTime time.Duration
	JaaruTime  time.Duration
	// PaperPrefix/PaperBaseline are the published counts for comparison.
	PaperPrefix, PaperBaseline int
}

// Table5 extracts the Table 5 rows from the suite result: the
// single-execution prefix/baseline/detector-off runs of every
// table5-tagged benchmark, in paper order.
func Table5(res *suite.Result) []Table5Row {
	var rows []Table5Row
	for i := range res.Benchmarks {
		bench := &res.Benchmarks[i]
		if !bench.HasTag(workload.TagTable5) {
			continue
		}
		prefix := bench.Run(suite.RunTable5Prefix)
		baseline := bench.Run(suite.RunTable5Baseline)
		jaaru := bench.Run(suite.RunTable5Jaaru)
		if prefix == nil || baseline == nil || jaaru == nil {
			continue
		}
		row := Table5Row{
			Benchmark:  bench.Name,
			Prefix:     prefix.RaceCount,
			Baseline:   baseline.RaceCount,
			YashmeTime: time.Duration(prefix.ElapsedNs),
			JaaruTime:  time.Duration(jaaru.ElapsedNs),
		}
		if spec, ok := workload.Lookup(bench.Name); ok {
			row.PaperPrefix, row.PaperBaseline = spec.PaperPrefix, spec.PaperBaseline
		}
		rows = append(rows, row)
	}
	return rows
}

// Table5Text renders Table 5.
func Table5Text(rows []Table5Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-15s %7s %9s %13s %12s   (paper: prefix baseline)\n",
		"Benchmark", "Prefix", "Baseline", "Yashme Time", "Jaaru Time")
	totalP, totalB := 0, 0
	for _, r := range rows {
		fmt.Fprintf(&b, "%-15s %7d %9d %13s %12s   (paper: %d %d)\n",
			r.Benchmark, r.Prefix, r.Baseline,
			r.YashmeTime.Round(time.Microsecond), r.JaaruTime.Round(time.Microsecond),
			r.PaperPrefix, r.PaperBaseline)
		totalP += r.Prefix
		totalB += r.Baseline
	}
	fmt.Fprintf(&b, "%-15s %7d %9d   (paper totals: 15 vs 3, 5x)\n", "TOTAL", totalP, totalB)
	return b.String()
}

// --- §7.5 benign races ---

// BenignRaces extracts the deduplicated benign (checksum-guarded) races
// from the suite result's benign runs; the paper reports 10.
func BenignRaces(res *suite.Result) []report.Race {
	var out []report.Race
	for i := range res.Benchmarks {
		bench := &res.Benchmarks[i]
		if !bench.HasTag(workload.TagBenign) {
			continue
		}
		if run := bench.Run(suite.RunBenign); run != nil {
			out = append(out, run.Benign...)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Benchmark != out[j].Benchmark {
			return out[i].Benchmark < out[j].Benchmark
		}
		return out[i].Field < out[j].Field
	})
	return out
}

// BenignText renders the benign-race list.
func BenignText(races []report.Race) string {
	var b strings.Builder
	fmt.Fprintf(&b, "benign checksum-guarded races: %d (paper: 10)\n", len(races))
	for _, r := range races {
		fmt.Fprintf(&b, "  %-10s %s\n", r.Benchmark, r.Field)
	}
	return b.String()
}

// --- Artifact appendix Figures 11 & 12: the bug index ---

// BugInfo is one row of the artifact's bug index (appendix Figures 11/12):
// a bug identifier, the racing field and where this reproduction implements
// the racy protocol (the analog of the original's file:line references).
type BugInfo struct {
	ID        string
	Benchmark string
	Field     string
	// Site is the implementing location in this repository.
	Site string
}

// BugIndex returns the full 24-bug inventory with implementation sites,
// in the order of the appendix figures.
func BugIndex() []BugInfo {
	return []BugInfo{
		{"CCEH-1", "CCEH", "Pair.value", "internal/progs/cceh (Table.Insert: value store)"},
		{"CCEH-2", "CCEH", "Pair.key", "internal/progs/cceh (Table.Insert: key commit store)"},
		{"FAST_FAIR-1", "Fast_Fair", "header.last_index", "internal/progs/fastfair (Tree.insertEntry, Tree.Delete)"},
		{"FAST_FAIR-2", "Fast_Fair", "header.switch_counter", "internal/progs/fastfair (Tree.insertEntry, Tree.Delete)"},
		{"FAST_FAIR-3", "Fast_Fair", "entry.key", "internal/progs/fastfair (Tree.insertEntry shift loop)"},
		{"FAST_FAIR-4", "Fast_Fair", "entry.ptr", "internal/progs/fastfair (Tree.insertEntry shift loop)"},
		{"FAST_FAIR-5", "Fast_Fair", "btree.root", "internal/progs/fastfair (Tree.Insert root growth)"},
		{"FAST_FAIR-6", "Fast_Fair", "header.sibling_ptr", "internal/progs/fastfair (Tree.split publication)"},
		{"P-ART-1", "P-ART", "N.compactCount", "internal/progs/part (Tree.Insert)"},
		{"P-ART-2", "P-ART", "N.count", "internal/progs/part (Tree.Insert, Tree.Remove)"},
		{"P-ART-3", "P-ART", "DeletionList.deletitionListCount", "internal/progs/part (Tree.retire)"},
		{"P-ART-4", "P-ART", "DeletionList.headDeletionList", "internal/progs/part (Tree.retire)"},
		{"P-ART-5", "P-ART", "LabelDelete.nodesCount", "internal/progs/part (Tree.retire)"},
		{"P-ART-6", "P-ART", "DeletionList.added", "internal/progs/part (Tree.retire, byte-size field)"},
		{"P-ART-7", "P-ART", "DeletionList.thresholdCounter", "internal/progs/part (Tree.retire)"},
		{"P-BwTree-1", "P-BwTree", "BwTreeBase.epoch", "internal/progs/pbwtree (Tree.AdvanceEpoch)"},
		{"P-Masstree-1", "P-Masstree", "masstree.root_", "internal/progs/pmasstree (Tree.split root swing)"},
		{"P-Masstree-2", "P-Masstree", "leafnode.permutation", "internal/progs/pmasstree (Tree.Insert commit)"},
		{"P-Masstree-3", "P-Masstree", "leafnode.next", "internal/progs/pmasstree (Tree.split publication)"},
		{"PMDK-1", "PMDK", "ulog.entry_ptr", "internal/pmdk (Tx.Add entry-pointer advance)"},
		{"Memcached-2", "Memcached", "pslab_pool_t.valid", "internal/memcachedpm (Server.Startup/Shutdown)"},
		{"Memcached-3", "Memcached", "pslab_t.id", "internal/memcachedpm (Server.Startup)"},
		{"Memcached-4", "Memcached", "item_chunk.it_flags", "internal/memcachedpm (Server.SetItem)"},
		{"Memcached-5", "Memcached", "item.cas", "internal/memcachedpm (Server.SetItem)"},
	}
}

// BugIndexText renders the bug index, marking each bug found/missed by the
// suite result's Table 3/4 runs.
func BugIndexText(res *suite.Result) string {
	found := map[string]bool{}
	for _, r := range Table3(res) {
		found[r.Benchmark+"/"+r.Field] = true
	}
	for _, r := range Table4(res) {
		found[r.Benchmark+"/"+r.Field] = true
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %-11s %-34s %-10s %s\n", "Bug ID", "Benchmark", "Field", "Detected", "Implementation site")
	for _, bug := range BugIndex() {
		mark := "MISSED"
		if found[bug.Benchmark+"/"+bug.Field] {
			mark = "found"
		}
		fmt.Fprintf(&b, "%-14s %-11s %-34s %-10s %s\n", bug.ID, bug.Benchmark, bug.Field, mark, bug.Site)
	}
	return b.String()
}

// --- E23: Yashme vs XFDetector (§1/§8 comparison) ---

// ComparisonRow is one benchmark row of the Yashme-vs-XFDetector
// comparison: per-pass race counts read from ONE stacked suite run
// (Config.Analyses = yashme,xfd — both detectors observed the same
// simulated executions). YashmeFlushed counts the Yashme races whose
// racing store was flushed before the crash: the bug class the
// cross-failure FSM structurally cannot flag, since a persisted store is
// always clean in its state machine.
type ComparisonRow struct {
	Benchmark     string
	Yashme        int
	XFD           int
	YashmeFlushed int
}

// Comparison extracts the per-benchmark Yashme/XFD race counts from a
// stacked suite result's races runs. Benchmarks whose races run lacks a
// per-pass breakdown for both detectors (single-pass configs, workloads
// not tagged for the cross-failure model) are skipped.
func Comparison(res *suite.Result) []ComparisonRow {
	var rows []ComparisonRow
	for i := range res.Benchmarks {
		bench := &res.Benchmarks[i]
		run := bench.Run(suite.RunRaces)
		if run == nil {
			continue
		}
		y, x := run.Analysis("yashme"), run.Analysis("xfd")
		if y == nil || x == nil {
			continue
		}
		row := ComparisonRow{Benchmark: bench.Name, Yashme: y.RaceCount, XFD: x.RaceCount}
		for _, r := range y.Races {
			if r.Flushed {
				row.YashmeFlushed++
			}
		}
		rows = append(rows, row)
	}
	return rows
}

// ComparisonText renders the Yashme-vs-XFD comparison table.
func ComparisonText(rows []ComparisonRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-15s %8s %14s %6s   (one simulation, both detectors)\n",
		"Benchmark", "Yashme", "Yashme-flushed", "XFD")
	ty, tf, tx := 0, 0, 0
	for _, r := range rows {
		fmt.Fprintf(&b, "%-15s %8d %14d %6d\n", r.Benchmark, r.Yashme, r.YashmeFlushed, r.XFD)
		ty += r.Yashme
		tf += r.YashmeFlushed
		tx += r.XFD
	}
	fmt.Fprintf(&b, "%-15s %8d %14d %6d   (flushed-store races are invisible to the cross-failure FSM)\n",
		"TOTAL", ty, tf, tx)
	return b.String()
}

// ComparisonMarkdown renders the comparison as a Markdown table.
func ComparisonMarkdown(rows []ComparisonRow) string {
	var b strings.Builder
	b.WriteString("| Benchmark | Yashme races | ...on flushed stores | XFD cross-failure races |\n")
	b.WriteString("|---|---|---|---|\n")
	ty, tf, tx := 0, 0, 0
	for _, r := range rows {
		fmt.Fprintf(&b, "| %s | %d | %d | %d |\n", r.Benchmark, r.Yashme, r.YashmeFlushed, r.XFD)
		ty += r.Yashme
		tf += r.YashmeFlushed
		tx += r.XFD
	}
	fmt.Fprintf(&b, "| **total** | **%d** | **%d** | **%d** |\n", ty, tf, tx)
	return b.String()
}

// --- E9: detection-window histogram (Figures 5(b)/6, quantified) ---

// WindowText renders the per-crash-point race histogram for a benchmark in
// prefix and baseline modes: the executable version of the paper's
// detection-window discussion. Prefix mode reveals races at most crash
// points (any consistent prefix works); the baseline needs the crash inside
// a store→flush window. The prefix histogram is the races run's Window;
// the baseline histogram is the window-baseline run's.
func WindowText(res *suite.Result, name string) string {
	bench := res.Bench(name)
	if bench == nil {
		return fmt.Sprintf("%s: not in this suite result\n", name)
	}
	p := bench.Run(suite.RunRaces)
	base := bench.Run(suite.RunWindow)
	if p == nil || base == nil {
		return fmt.Sprintf("%s: suite result lacks the races/window runs\n", name)
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s: races revealed per crash point (0 = crash at completion)\n", name)
	fmt.Fprintf(&sb, "%-7s %-8s %s\n", "point", "prefix", "baseline")
	bl := map[int]int{}
	for _, row := range base.Window {
		bl[row.Point] = row.Races
	}
	for _, row := range p.Window {
		fmt.Fprintf(&sb, "%-7d %-8d %d\n", row.Point, row.Races, bl[row.Point])
	}
	return sb.String()
}

// --- Markdown rendering (for EXPERIMENTS.md regeneration) ---

// Table2bMarkdown renders Table 2b as a Markdown table with paper columns.
func Table2bMarkdown() string {
	var b strings.Builder
	b.WriteString("| Prog | #src-op (paper) | #asm-op (paper) | #src-op (measured) | #asm-op (measured) |\n")
	b.WriteString("|---|---|---|---|---|\n")
	for _, row := range compiler.Table2b() {
		want := compiler.PaperTable2b[row.Prog]
		fmt.Fprintf(&b, "| %s | %d | %d | %d | %d |\n", row.Prog, want[0], want[1], row.SrcOps, row.AsmOps)
	}
	return b.String()
}

// Table5Markdown renders Table 5 as a Markdown table.
func Table5Markdown(rows []Table5Row) string {
	var b strings.Builder
	b.WriteString("| Benchmark | prefix (paper) | baseline (paper) | prefix (measured) | baseline (measured) |\n")
	b.WriteString("|---|---|---|---|---|\n")
	totalP, totalB, paperP, paperB := 0, 0, 0, 0
	for _, r := range rows {
		fmt.Fprintf(&b, "| %s | %d | %d | %d | %d |\n", r.Benchmark, r.PaperPrefix, r.PaperBaseline, r.Prefix, r.Baseline)
		totalP += r.Prefix
		totalB += r.Baseline
		paperP += r.PaperPrefix
		paperB += r.PaperBaseline
	}
	fmt.Fprintf(&b, "| **total** | **%d** | **%d** | **%d** | **%d** |\n", paperP, paperB, totalP, totalB)
	return b.String()
}

// RaceRowsMarkdown renders Table 3/4 rows as Markdown.
func RaceRowsMarkdown(rows []RaceRow) string {
	var b strings.Builder
	b.WriteString("| # | Benchmark | Root cause |\n|---|---|---|\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "| %d | %s | `%s` |\n", r.Index, r.Benchmark, r.Field)
	}
	return b.String()
}
