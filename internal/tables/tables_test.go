package tables

import (
	"strings"
	"sync"
	"testing"

	"yashme/internal/suite"
)

// The detector-derived tables all render from one suite result; run the
// full default suite exactly once and share it across tests.
var (
	suiteOnce sync.Once
	suiteRes  *suite.Result
)

func fullSuite() *suite.Result {
	suiteOnce.Do(func() { suiteRes = suite.Run(suite.Config{}) })
	return suiteRes
}

// Table 3 must reproduce all 19 rows with the paper's benchmark/field
// attribution.
func TestTable3MatchesPaper(t *testing.T) {
	rows := Table3(fullSuite())
	if len(rows) != 19 {
		t.Fatalf("Table 3 rows = %d, want 19\n%s", len(rows), RaceRowsText(rows))
	}
	perBench := map[string]int{}
	for _, r := range rows {
		perBench[r.Benchmark]++
	}
	want := map[string]int{
		"CCEH": 2, "Fast_Fair": 6, "P-ART": 7, "P-BwTree": 1, "P-CLHT": 0, "P-Masstree": 3,
	}
	for b, n := range want {
		if perBench[b] != n {
			t.Errorf("%s: %d races, paper reports %d", b, perBench[b], n)
		}
	}
}

// Table 4 must reproduce the 5 framework races: 1 PMDK + 4 Memcached,
// 0 Redis.
func TestTable4MatchesPaper(t *testing.T) {
	rows := Table4(fullSuite())
	if len(rows) != 5 {
		t.Fatalf("Table 4 rows = %d, want 5\n%s", len(rows), RaceRowsText(rows))
	}
	perBench := map[string]int{}
	for _, r := range rows {
		perBench[r.Benchmark]++
	}
	if perBench["PMDK"] != 1 || perBench["Memcached"] != 4 || perBench["Redis"] != 0 {
		t.Fatalf("Table 4 distribution = %v, want PMDK:1 Memcached:4 Redis:0", perBench)
	}
}

// Table 5 single executions must reproduce the published prefix/baseline
// counts with the calibrated seeds, and the totals must show the prefix
// advantage (13 vs 3).
func TestTable5MatchesPaper(t *testing.T) {
	rows := Table5(fullSuite())
	if len(rows) != 13 {
		t.Fatalf("Table 5 rows = %d, want 13", len(rows))
	}
	totalP, totalB := 0, 0
	for _, r := range rows {
		if r.Prefix != r.PaperPrefix || r.Baseline != r.PaperBaseline {
			t.Errorf("%s: prefix/baseline = %d/%d, paper reports %d/%d",
				r.Benchmark, r.Prefix, r.Baseline, r.PaperPrefix, r.PaperBaseline)
		}
		if r.Prefix < r.Baseline {
			t.Errorf("%s: prefix (%d) found fewer than baseline (%d)", r.Benchmark, r.Prefix, r.Baseline)
		}
		totalP += r.Prefix
		totalB += r.Baseline
	}
	// 15 vs 3 is the paper's "5x more persistency races" claim (§7.3).
	if totalP != 15 || totalB != 3 {
		t.Fatalf("totals = %d vs %d, paper reports 15 vs 3 (5x)", totalP, totalB)
	}
}

// §7.5: exactly 10 deduplicated benign checksum-guarded races.
func TestBenignRacesMatchPaper(t *testing.T) {
	races := BenignRaces(fullSuite())
	if len(races) != 10 {
		t.Fatalf("benign races = %d, want 10:\n%s", len(races), BenignText(races))
	}
}

func TestTextRenderers(t *testing.T) {
	if out := Table2aText(); !strings.Contains(out, "memset") || !strings.Contains(out, "ARM64") {
		t.Errorf("Table2aText missing content:\n%s", out)
	}
	if out := Table2bText(); !strings.Contains(out, "CCEH") || !strings.Contains(out, "33") {
		t.Errorf("Table2bText missing content:\n%s", out)
	}
	rows := []RaceRow{{Index: 1, Benchmark: "X", Field: "f"}}
	if out := RaceRowsText(rows); !strings.Contains(out, "X") {
		t.Errorf("RaceRowsText missing content:\n%s", out)
	}
}

// The artifact bug index covers all 24 bugs and every one is found live.
func TestBugIndexComplete(t *testing.T) {
	idx := BugIndex()
	if len(idx) != 24 {
		t.Fatalf("bug index has %d entries, want 24", len(idx))
	}
	out := BugIndexText(fullSuite())
	if strings.Contains(out, "MISSED") {
		t.Fatalf("bug index reports missed bugs:\n%s", out)
	}
}

// E9: the detection-window histogram separates the modes: prefix reveals
// races at strictly more crash points than the baseline.
func TestWindowHistogramShape(t *testing.T) {
	res := fullSuite()
	out := WindowText(res, "CCEH")
	if !strings.Contains(out, "prefix") || !strings.Contains(out, "baseline") {
		t.Fatalf("window text malformed:\n%s", out)
	}
	bench := res.Bench("CCEH")
	if bench == nil {
		t.Fatal("CCEH missing from suite result")
	}
	p, base := bench.Run(suite.RunRaces), bench.Run(suite.RunWindow)
	if p == nil || base == nil {
		t.Fatal("CCEH suite result lacks races/window runs")
	}
	pPoints, bPoints := 0, 0
	for _, row := range p.Window {
		if row.Races > 0 {
			pPoints++
		}
	}
	for _, row := range base.Window {
		if row.Races > 0 {
			bPoints++
		}
	}
	if pPoints <= bPoints {
		t.Fatalf("prefix reveals races at %d points, baseline at %d — expansion not visible", pPoints, bPoints)
	}
}

func TestMarkdownRenderers(t *testing.T) {
	md := Table2bMarkdown()
	if !strings.Contains(md, "| CCEH | 6 | 33 | 6 | 33 |") {
		t.Fatalf("Table2bMarkdown malformed:\n%s", md)
	}
	rows := []RaceRow{{Index: 1, Benchmark: "X", Field: "f.g"}}
	if out := RaceRowsMarkdown(rows); !strings.Contains(out, "| 1 | X | `f.g` |") {
		t.Fatalf("RaceRowsMarkdown malformed:\n%s", out)
	}
	t5 := Table5Markdown([]Table5Row{{Benchmark: "B", Prefix: 2, Baseline: 1, PaperPrefix: 2, PaperBaseline: 1}})
	if !strings.Contains(t5, "| B | 2 | 1 | 2 | 1 |") || !strings.Contains(t5, "**total**") {
		t.Fatalf("Table5Markdown malformed:\n%s", t5)
	}
}
