package engine_test

// Property tests for the solo-thread direct-run lease (runner.go
// schedState): running a thread inline without the scheduler handshake must
// be observationally invisible. Every Result field except the
// Handoffs/DirectOps split — whose shift is the point — is byte-identical
// with the lease on and off, across random programs, real benchmarks, both
// checkpoint modes and every worker count. The suite runs under -race in
// CI, which proves the lease protocol itself is data-race free: the leased
// thread touches scenario state the scheduler normally owns.

import (
	"fmt"
	"reflect"
	"testing"

	"yashme/internal/engine"
	"yashme/internal/fuzzprog"
	"yashme/internal/pmm"
	"yashme/internal/progs/cceh"
)

// runPair runs mk under opts with the direct-run lease on and off and fails
// the test unless the Results are identical modulo the Handoffs/DirectOps
// split. Returns the two Stats for mode-specific assertions.
func runPair(t *testing.T, name string, mk func() pmm.Program, opts engine.Options) (on, off engine.Stats) {
	t.Helper()
	onOpts, offOpts := opts, opts
	onOpts.DirectRun = engine.DirectRunOn
	offOpts.DirectRun = engine.DirectRunOff
	onRes := engine.Run(mk, onOpts)
	offRes := engine.Run(mk, offOpts)

	if s, o := onRes.Report.String(), offRes.Report.String(); s != o {
		t.Fatalf("%s: reports diverge:\ndirect-run on:\n%s\ndirect-run off:\n%s", name, s, o)
	}
	if !reflect.DeepEqual(onRes.Window, offRes.Window) {
		t.Fatalf("%s: windows diverge:\non:  %v\noff: %v", name, onRes.Window, offRes.Window)
	}
	if onRes.ExecutionsRun != offRes.ExecutionsRun {
		t.Fatalf("%s: executions diverge: %d vs %d", name, onRes.ExecutionsRun, offRes.ExecutionsRun)
	}
	if onRes.CrashPoints != offRes.CrashPoints {
		t.Fatalf("%s: crash points diverge: %d vs %d", name, onRes.CrashPoints, offRes.CrashPoints)
	}
	if onRes.Report.RawCount != offRes.Report.RawCount {
		t.Fatalf("%s: raw race counts diverge: %d vs %d", name, onRes.Report.RawCount, offRes.Report.RawCount)
	}
	on, off = onRes.Stats, offRes.Stats
	for _, s := range []struct {
		mode string
		st   engine.Stats
	}{{"on", on}, {"off", off}} {
		if s.st.Handoffs+s.st.DirectOps != s.st.SimulatedOps {
			t.Fatalf("%s: direct-run %s: Handoffs (%d) + DirectOps (%d) != SimulatedOps (%d)",
				name, s.mode, s.st.Handoffs, s.st.DirectOps, s.st.SimulatedOps)
		}
	}
	if off.DirectOps != 0 {
		t.Fatalf("%s: direct-run off counted %d DirectOps, want 0", name, off.DirectOps)
	}
	onCmp, offCmp := on, off
	onCmp.Handoffs, offCmp.Handoffs = 0, 0
	onCmp.DirectOps, offCmp.DirectOps = 0, 0
	if onCmp != offCmp {
		t.Fatalf("%s: stats diverge beyond the handoff split:\non:  %+v\noff: %+v", name, on, off)
	}
	return on, off
}

// TestDirectRunMatchesHandoff: for random programs and a real benchmark,
// the lease changes nothing but which side of the Handoffs/DirectOps split
// each operation lands on — across worker counts and checkpoint modes. The
// lease must actually fire: every case has solo phases (single-threaded
// recovery at minimum), so DirectOps must be positive with the lease on.
func TestDirectRunMatchesHandoff(t *testing.T) {
	for _, workers := range []int{1, 4} {
		for _, ck := range []struct {
			name string
			mode engine.CheckpointMode
		}{
			{"checkpoint-on", engine.CheckpointOn},
			{"checkpoint-off", engine.CheckpointOff},
		} {
			workers, ck := workers, ck
			t.Run(fmt.Sprintf("workers-%d/%s", workers, ck.name), func(t *testing.T) {
				t.Parallel()
				opts := engine.Options{Mode: engine.ModelCheck, Prefix: true,
					Workers: workers, Checkpoint: ck.mode}
				for seed := int64(1); seed <= 8; seed++ {
					mk, _ := fuzzprog.Generate(fuzzprog.Default(), seed)
					name := fmt.Sprintf("fuzz seed %d", seed)
					on, _ := runPair(t, name, mk, opts)
					if on.DirectOps == 0 {
						t.Fatalf("%s: lease never fired (DirectOps = 0)", name)
					}
				}
				benchOpts := opts
				benchOpts.MaxCrashPoints = 30
				on, _ := runPair(t, "cceh", cceh.New(3, nil), benchOpts)
				if on.DirectOps == 0 {
					t.Fatal("cceh: lease never fired (DirectOps = 0)")
				}
			})
		}
	}
}

// spawnProg is a workload whose sole worker starts a sibling mid-execution
// (pmm.Thread.Go): the scheduler grants the solo lease, then must revoke it
// the moment the second thread becomes runnable.
func spawnProg() pmm.Program {
	var a, b pmm.Addr
	return pmm.Program{
		Name: "spawn",
		Setup: func(h *pmm.Heap) {
			obj := h.AllocStruct("obj", pmm.Layout{{Name: "a", Size: 8}, {Name: "b", Size: 8}})
			a, b = obj.F("a"), obj.F("b")
			h.Init(a, 8, 0)
			h.Init(b, 8, 0)
		},
		Workers: []func(*pmm.Thread){func(t *pmm.Thread) {
			t.Store64(a, 0x1111111111111111)
			t.Go(func(c *pmm.Thread) {
				c.Store64(b, 0x2222222222222222)
				c.CLFlush(b)
			})
			t.Store64(a, 0x3333333333333333)
			t.CLFlush(a)
		}},
		PostCrash: func(t *pmm.Thread) {
			t.Load64(a)
			t.Load64(b)
		},
	}
}

// TestDirectRunLeaseRevocation: a spawn mid-lease revokes it. With the lease
// on, the run must count both DirectOps (the solo phases before the spawn
// and during recovery) and Handoffs (the two-thread phase after it), and
// still match the all-handshake run exactly.
func TestDirectRunLeaseRevocation(t *testing.T) {
	opts := engine.Options{Mode: engine.ModelCheck, Prefix: true, Workers: 1}
	on, _ := runPair(t, "spawn", spawnProg, opts)
	if on.DirectOps == 0 {
		t.Error("lease never fired before the spawn (DirectOps = 0)")
	}
	if on.Handoffs == 0 {
		t.Error("lease was not revoked at the spawn (Handoffs = 0)")
	}
}
