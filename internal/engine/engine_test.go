package engine

import (
	"strings"
	"testing"

	"yashme/internal/pmm"
)

// figure1 builds the paper's Figure 1 program: a non-atomic 64-bit store
// followed by a clflush; the post-crash execution reads the field. observed
// collects the values the post-crash runs saw.
func figure1(observed *[]uint64) func() pmm.Program {
	return func() pmm.Program {
		var val pmm.Addr
		return pmm.Program{
			Name: "figure1",
			Setup: func(h *pmm.Heap) {
				obj := h.AllocStruct("pmobj", pmm.Layout{{Name: "val", Size: 8}})
				val = obj.F("val")
				h.Init(val, 8, 0)
			},
			Workers: []func(*pmm.Thread){func(t *pmm.Thread) {
				t.Store64(val, 0x1234567812345678)
				t.CLFlush(val)
			}},
			PostCrash: func(t *pmm.Thread) {
				if v := t.Load64(val); v != 0 && observed != nil {
					*observed = append(*observed, v)
				}
			},
		}
	}
}

func TestFigure1ModelCheckFindsRace(t *testing.T) {
	res := Run(figure1(nil), Options{Mode: ModelCheck, Prefix: true})
	races := res.Report.Races()
	if len(races) != 1 {
		t.Fatalf("races = %v, want exactly one", races)
	}
	if races[0].Field != "pmobj.val" {
		t.Errorf("race field = %q, want pmobj.val", races[0].Field)
	}
	if res.CrashPoints != 1 {
		t.Errorf("crash points = %d, want 1 (the clflush)", res.CrashPoints)
	}
	if res.ExecutionsRun == 0 {
		t.Error("no executions recorded")
	}
}

// The prefix expansion finds the Figure 1 race even when the only injected
// crash falls AFTER the clflush (crash at completion); the baseline cannot.
func TestPrefixExpandsDetectionWindow(t *testing.T) {
	mk := figure1(nil)
	// Only explore c=0 (completion crash) by crashing past every point:
	// plan{} means run to completion, so drive scenarios directly.
	for _, prefix := range []bool{true, false} {
		sc := newScenario(mk, Options{Prefix: prefix}.withDefaults(), plan{}, PersistLatest, 1)
		sc.run()
		n := sc.det.Report().Count()
		if prefix && n != 1 {
			t.Errorf("prefix mode found %d races at completion crash, want 1", n)
		}
		if !prefix && n != 0 {
			t.Errorf("baseline found %d races at completion crash, want 0 (store was flushed)", n)
		}
	}
}

func TestTornValueSynthesis(t *testing.T) {
	var observed []uint64
	// Workers: 1 — the program writes the shared observed slice.
	Run(figure1(&observed), Options{Mode: ModelCheck, Prefix: true, TornValues: true,
		PersistPolicies: []PersistPolicy{PersistLatest}, Workers: 1})
	// Crashing before the clflush and persisting the (racing) store yields
	// the torn value: low half of the new value, high half of the old (0).
	want := uint64(0x12345678)
	found := false
	for _, v := range observed {
		if v == want {
			found = true
		}
	}
	if !found {
		t.Fatalf("torn value %#x not observed; got %#x", want, observed)
	}
}

func TestTornValueHelper(t *testing.T) {
	if got := tornValue(0, 0x1234567812345678, 8); got != 0x12345678 {
		t.Errorf("tornValue 64-bit = %#x", got)
	}
	if got := tornValue(0xAAAAAAAA, 0x11112222, 4); got != 0xAAAA2222 {
		t.Errorf("tornValue 32-bit = %#x", got)
	}
	if got := tornValue(0xFF00, 0x1122, 2); got != 0xFF22 {
		t.Errorf("tornValue 16-bit = %#x", got)
	}
}

// Atomic release stores do not race, and a post-crash execution that first
// reads a later release store on the same line is coherence-protected when
// it then reads the non-atomic neighbour.
func TestCoherenceProtectionEndToEnd(t *testing.T) {
	mk := func() pmm.Program {
		var x, y pmm.Addr
		return pmm.Program{
			Name: "coherence",
			Setup: func(h *pmm.Heap) {
				obj := h.AllocStruct("obj", pmm.Layout{{Name: "x", Size: 8}, {Name: "y", Size: 8}})
				x, y = obj.F("x"), obj.F("y")
			},
			Workers: []func(*pmm.Thread){func(t *pmm.Thread) {
				t.Store64(x, 1)        // non-atomic
				t.StoreRelease64(y, 1) // atomic release, same line
				t.CLFlush(x)           // flush the line
			}},
			PostCrash: func(t *pmm.Thread) {
				if t.LoadAcquire64(y) == 1 { // reads y first
					t.Load64(x)
				}
			},
		}
	}
	res := Run(mk, Options{Mode: ModelCheck, Prefix: true})
	// Scenarios where y reads 1 are protected; scenarios where y reads 0
	// never load x. Either way x must not be reported.
	for _, r := range res.Report.Races() {
		if r.Field == "obj.x" {
			t.Fatalf("coherence-protected field reported: %v", r)
		}
	}
}

// Without reading the release store first, the same layout races.
func TestNoCoherenceWithoutAtomicRead(t *testing.T) {
	mk := func() pmm.Program {
		var x, y pmm.Addr
		return pmm.Program{
			Name: "nocoherence",
			Setup: func(h *pmm.Heap) {
				obj := h.AllocStruct("obj", pmm.Layout{{Name: "x", Size: 8}, {Name: "y", Size: 8}})
				x, y = obj.F("x"), obj.F("y")
			},
			Workers: []func(*pmm.Thread){func(t *pmm.Thread) {
				t.Store64(x, 1)
				t.StoreRelease64(y, 1)
				t.CLFlush(x)
			}},
			PostCrash: func(t *pmm.Thread) {
				t.Load64(x) // reads x FIRST: Def 5.1 cond 2 does not apply
			},
		}
	}
	res := Run(mk, Options{Mode: ModelCheck, Prefix: true})
	fields := res.Report.Fields()
	if len(fields) != 1 || fields[0] != "obj.x" {
		t.Fatalf("races = %v, want [obj.x]", fields)
	}
}

// clwb+sfence persists; crashing before the sfence leaves the window open.
func TestCLWBSFencePoints(t *testing.T) {
	mk := func() pmm.Program {
		var x pmm.Addr
		return pmm.Program{
			Name: "clwb",
			Setup: func(h *pmm.Heap) {
				x = h.AllocStruct("o", pmm.Layout{{Name: "x", Size: 8}}).F("x")
			},
			Workers: []func(*pmm.Thread){func(t *pmm.Thread) {
				t.Store64(x, 5)
				t.CLWB(x)
				t.SFence()
			}},
			PostCrash: func(t *pmm.Thread) { t.Load64(x) },
		}
	}
	res := Run(mk, Options{Mode: ModelCheck, Prefix: true})
	if res.CrashPoints != 2 {
		t.Fatalf("crash points = %d, want 2 (clwb, sfence)", res.CrashPoints)
	}
	if res.Report.Count() != 1 {
		t.Fatalf("races = %d, want 1", res.Report.Count())
	}
}

func TestPersistPolicies(t *testing.T) {
	run := func(pp PersistPolicy) uint64 {
		var got uint64
		mk := func() pmm.Program {
			var x pmm.Addr
			return pmm.Program{
				Name: "pp",
				Setup: func(h *pmm.Heap) {
					x = h.AllocStruct("o", pmm.Layout{{Name: "x", Size: 8}}).F("x")
					h.Init(x, 8, 1)
				},
				Workers: []func(*pmm.Thread){func(t *pmm.Thread) {
					t.Store64(x, 5)
					t.CLFlush(x) // 5 is guaranteed persisted
					t.Store64(x, 7)
				}},
				PostCrash: func(t *pmm.Thread) { got = t.Load64(x) },
			}
		}
		sc := newScenario(mk, Options{Prefix: true}.withDefaults(), plan{}, pp, 1)
		sc.run()
		return got
	}
	if v := run(PersistLatest); v != 7 {
		t.Errorf("PersistLatest read %d, want 7", v)
	}
	if v := run(PersistMinimal); v != 5 {
		t.Errorf("PersistMinimal read %d, want 5 (the flushed value)", v)
	}
}

func TestDetectorOffReportsNothing(t *testing.T) {
	res := Run(figure1(nil), Options{Mode: ModelCheck, Prefix: true, DetectorOff: true})
	if res.Report.Count() != 0 || res.Report.BenignCount() != 0 {
		t.Fatalf("detector-off run reported races: %v", res.Report)
	}
	if res.ExecutionsRun == 0 {
		t.Fatal("detector-off run did not execute")
	}
}

func TestChecksumGuardedRacesAreBenign(t *testing.T) {
	mk := func() pmm.Program {
		var x pmm.Addr
		return pmm.Program{
			Name: "guarded",
			Setup: func(h *pmm.Heap) {
				x = h.AllocStruct("o", pmm.Layout{{Name: "x", Size: 8}}).F("x")
			},
			Workers: []func(*pmm.Thread){func(t *pmm.Thread) {
				t.Store64(x, 5)
				t.CLFlush(x)
			}},
			PostCrash: func(t *pmm.Thread) {
				t.ChecksumGuard(func() { t.Load64(x) })
			},
		}
	}
	res := Run(mk, Options{Mode: ModelCheck, Prefix: true})
	if res.Report.Count() != 0 {
		t.Fatalf("harmful races = %d, want 0", res.Report.Count())
	}
	if res.Report.BenignCount() != 1 {
		t.Fatalf("benign races = %d, want 1", res.Report.BenignCount())
	}
}

// Multi-crash: a race in the recovery procedure needs a second crash
// (paper §6: the execution stack).
func TestRecoveryRaceNeedsSecondCrash(t *testing.T) {
	mk := func() pmm.Program {
		var a, b pmm.Addr
		return pmm.Program{
			Name: "recovery",
			Setup: func(h *pmm.Heap) {
				o := h.AllocStruct("o", pmm.Layout{{Name: "a", Size: 8}})
				a = o.F("a")
				o2 := h.AllocStruct("rec", pmm.Layout{{Name: "b", Size: 8}})
				b = o2.F("b")
			},
			Workers: []func(*pmm.Thread){func(t *pmm.Thread) {
				t.Store64(a, 1)
				t.CLFlush(a)
			}},
			PostCrash: func(t *pmm.Thread) {
				t.Load64(a)
				t.Load64(b)     // race-observing read of the previous recovery's store
				t.Store64(b, 2) // recovery-side non-atomic store
				t.CLFlush(b)    // recovery crash point: crash before this
			},
		}
	}
	// Without recovery crashes, "rec.b" is never read across a crash.
	res := Run(mk, Options{Mode: ModelCheck, Prefix: false, PersistPolicies: []PersistPolicy{PersistLatest}})
	for _, r := range res.Report.Races() {
		if r.Field == "rec.b" {
			t.Fatalf("rec.b reported without recovery crashes: %v", r)
		}
	}
	// With recovery crashes the recovery-side store races in execution 1.
	res = Run(mk, Options{Mode: ModelCheck, Prefix: false, RecoveryCrashes: 3,
		PersistPolicies: []PersistPolicy{PersistLatest}})
	found := false
	for _, r := range res.Report.Races() {
		if r.Field == "rec.b" {
			found = true
			if r.ExecID < 1 {
				t.Errorf("recovery race attributed to execution %d, want >= 1", r.ExecID)
			}
		}
	}
	if !found {
		t.Fatal("recovery-execution race not found with RecoveryCrashes")
	}
}

// The §4.2 multithreaded scenario end to end: thread 1 stores+flushes z,
// thread 2 release-stores a flag on another line. The post-crash execution
// reads the flag then z. Prefix mode derives the race even though no single
// crash point in the schedule leaves z stored-but-unflushed with the flag
// set.
func TestMultithreadedPrefixScenario(t *testing.T) {
	mk := func() pmm.Program {
		var z, f pmm.Addr
		return pmm.Program{
			Name: "mt",
			Setup: func(h *pmm.Heap) {
				z = h.AllocStruct("zz", pmm.Layout{{Name: "z", Size: 8}}).F("z")
				f = h.AllocStruct("ff", pmm.Layout{{Name: "f", Size: 8}}).F("f")
			},
			Workers: []func(*pmm.Thread){
				func(t *pmm.Thread) {
					t.Store64(z, 7)
					t.CLFlush(z)
				},
				func(t *pmm.Thread) {
					t.StoreRelease64(f, 1)
				},
			},
			PostCrash: func(t *pmm.Thread) {
				t.LoadAcquire64(f)
				t.Load64(z)
			},
		}
	}
	res := Run(mk, Options{Mode: ModelCheck, Prefix: true})
	found := false
	for _, r := range res.Report.Races() {
		if r.Field == "zz.z" {
			found = true
		}
	}
	if !found {
		t.Fatal("multithreaded prefix race not found")
	}
}

func TestRandomModeIsSeededAndDeterministic(t *testing.T) {
	// Workers: 1 — the program writes the shared observed slice.
	var observed []uint64
	a := Run(figure1(&observed), Options{Mode: RandomMode, Prefix: true, Seed: 42, Executions: 10, Workers: 1})
	b := Run(figure1(&observed), Options{Mode: RandomMode, Prefix: true, Seed: 42, Executions: 10, Workers: 1})
	if a.Report.Count() != b.Report.Count() || a.CrashPoints != b.CrashPoints {
		t.Fatalf("same seed diverged: %d/%d races, %d/%d points",
			a.Report.Count(), b.Report.Count(), a.CrashPoints, b.CrashPoints)
	}
}

func TestRandomModeFindsFigure1Race(t *testing.T) {
	res := Run(figure1(nil), Options{Mode: RandomMode, Prefix: true, Seed: 7, Executions: 10})
	if res.Report.Count() != 1 {
		t.Fatalf("random mode races = %d, want 1", res.Report.Count())
	}
}

func TestStatsAccumulate(t *testing.T) {
	res := Run(figure1(nil), Options{Mode: ModelCheck, Prefix: true})
	if res.Stats.Stores == 0 || res.Stats.Loads == 0 || res.Stats.Flushes == 0 {
		t.Fatalf("stats not accumulated: %+v", res.Stats)
	}
}

func TestUnwrittenAddressReadsZeroPostCrash(t *testing.T) {
	var got uint64 = 99
	mk := func() pmm.Program {
		var x pmm.Addr
		return pmm.Program{
			Name: "zero",
			Setup: func(h *pmm.Heap) {
				x = h.AllocStruct("o", pmm.Layout{{Name: "x", Size: 8}}).F("x")
			},
			Workers:   []func(*pmm.Thread){func(t *pmm.Thread) { t.SFence() }},
			PostCrash: func(t *pmm.Thread) { got = t.Load64(x) },
		}
	}
	// Workers: 1 — the program writes the shared got variable.
	Run(mk, Options{Mode: ModelCheck, Prefix: true, Workers: 1})
	if got != 0 {
		t.Fatalf("unwritten address read %d, want 0", got)
	}
}

// Memset decomposes into non-atomic field stores and races per field.
func TestMemsetRacesPerField(t *testing.T) {
	mk := func() pmm.Program {
		var s pmm.Struct
		return pmm.Program{
			Name: "memset",
			Setup: func(h *pmm.Heap) {
				s = h.AllocStruct("node", pmm.Layout{{Name: "a", Size: 8}, {Name: "b", Size: 8}})
			},
			Workers: []func(*pmm.Thread){func(t *pmm.Thread) {
				t.Memset(s.Base(), s.Size(), 0xAB)
				t.CLFlush(s.Base())
			}},
			PostCrash: func(t *pmm.Thread) {
				t.Load64(s.F("a"))
				t.Load64(s.F("b"))
			},
		}
	}
	res := Run(mk, Options{Mode: ModelCheck, Prefix: true})
	fields := res.Report.Fields()
	if len(fields) != 2 || fields[0] != "node.a" || fields[1] != "node.b" {
		t.Fatalf("memset races = %v, want [node.a node.b]", fields)
	}
}

// CAS-committed stores are atomic and never race.
func TestCASStoreIsAtomic(t *testing.T) {
	mk := func() pmm.Program {
		var x pmm.Addr
		return pmm.Program{
			Name: "cas",
			Setup: func(h *pmm.Heap) {
				x = h.AllocStruct("o", pmm.Layout{{Name: "x", Size: 8}}).F("x")
			},
			Workers: []func(*pmm.Thread){func(t *pmm.Thread) {
				t.CAS64(x, 0, 9)
				t.CLFlush(x)
			}},
			PostCrash: func(t *pmm.Thread) { t.Load64(x) },
		}
	}
	res := Run(mk, Options{Mode: ModelCheck, Prefix: true})
	if res.Report.Count() != 0 {
		t.Fatalf("CAS store raced: %v", res.Report.Races())
	}
}

func TestModelCheckDeterminism(t *testing.T) {
	a := Run(figure1(nil), Options{Mode: ModelCheck, Prefix: true})
	b := Run(figure1(nil), Options{Mode: ModelCheck, Prefix: true})
	if a.Report.String() != b.Report.String() {
		t.Fatal("model check runs diverged")
	}
	if a.Stats != b.Stats {
		t.Fatalf("stats diverged: %+v vs %+v", a.Stats, b.Stats)
	}
}

func TestMaxCrashPointsCap(t *testing.T) {
	mk := func() pmm.Program {
		var x pmm.Addr
		return pmm.Program{
			Name: "many",
			Setup: func(h *pmm.Heap) {
				x = h.AllocStruct("o", pmm.Layout{{Name: "x", Size: 8}}).F("x")
			},
			Workers: []func(*pmm.Thread){func(t *pmm.Thread) {
				for i := 0; i < 10; i++ {
					t.Store64(x, uint64(i))
					t.CLFlush(x)
				}
			}},
			PostCrash: func(t *pmm.Thread) { t.Load64(x) },
		}
	}
	res := Run(mk, Options{Mode: ModelCheck, Prefix: true, MaxCrashPoints: 3,
		PersistPolicies: []PersistPolicy{PersistLatest}})
	// probe not counted in ExecutionsRun; c=0..3 → 4 scenarios.
	if res.ExecutionsRun != 4 {
		t.Fatalf("executions = %d, want 4 (cap applied)", res.ExecutionsRun)
	}
	if res.CrashPoints != 10 {
		t.Fatalf("probed crash points = %d, want 10", res.CrashPoints)
	}
}

// With tracing on, each race report carries a witness: the race-revealing
// pre-crash prefix (events on the store's cache line), the crash, and the
// post-crash observation (§5.1).
func TestWitnessAttachedToRaces(t *testing.T) {
	res := Run(figure1(nil), Options{Mode: ModelCheck, Prefix: true, Trace: true})
	races := res.Report.Races()
	if len(races) != 1 {
		t.Fatalf("races = %d", len(races))
	}
	w := races[0].Witness
	for _, want := range []string{"pmobj.val", "* ", "CRASH", "> "} {
		if !contains(w, want) {
			t.Fatalf("witness missing %q:\n%s", want, w)
		}
	}
}

func TestNoWitnessWithoutTracing(t *testing.T) {
	res := Run(figure1(nil), Options{Mode: ModelCheck, Prefix: true})
	if res.Report.Races()[0].Witness != "" {
		t.Fatal("witness attached without tracing")
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && strings.Contains(s, sub)
}

// eADR end to end (§7.5): on an eADR platform the Figure 1 race persists
// (the torn store itself), and the detector finds a subset of the default
// mode's races on every benchmark-shaped program.
func TestEADREndToEnd(t *testing.T) {
	res := Run(figure1(nil), Options{Mode: ModelCheck, Prefix: true, EADR: true})
	if res.Report.Count() != 1 {
		t.Fatalf("eADR races = %d, want 1 (the torn trailing store)", res.Report.Count())
	}

	// A store followed by another observed store is eADR-safe but races in
	// the default mode when unflushed.
	mk := func() pmm.Program {
		var x, z pmm.Addr
		return pmm.Program{
			Name: "eadr-subset",
			Setup: func(h *pmm.Heap) {
				x = h.AllocStruct("xx", pmm.Layout{{Name: "x", Size: 8}}).F("x")
				z = h.AllocStruct("zz", pmm.Layout{{Name: "z", Size: 8}}).F("z")
			},
			Workers: []func(*pmm.Thread){func(t *pmm.Thread) {
				t.Store64(x, 1)
				t.Store64(z, 2)
				t.CLFlush(z) // crash point so both stores commit first
			}},
			PostCrash: func(t *pmm.Thread) {
				t.Load64(z) // observe z first: x is ordered before it
				t.Load64(x)
			},
		}
	}
	normal := Run(mk, Options{Mode: ModelCheck, Prefix: true})
	eadr := Run(mk, Options{Mode: ModelCheck, Prefix: true, EADR: true})
	if eadr.Report.Count() > normal.Report.Count() {
		t.Fatalf("eADR found more races (%d) than default (%d)", eadr.Report.Count(), normal.Report.Count())
	}
	for _, r := range eadr.Report.Races() {
		if r.Field == "xx.x" {
			t.Fatal("eADR reported the observation-protected store xx.x")
		}
	}
	fields := normal.Report.Fields()
	if len(fields) != 2 {
		t.Fatalf("default mode fields = %v, want both xx.x and zz.z", fields)
	}
}

// Suppression annotations end to end (§7.5).
func TestSuppressOptionEndToEnd(t *testing.T) {
	res := Run(figure1(nil), Options{Mode: ModelCheck, Prefix: true,
		Suppress: []string{"pmobj.val"}})
	if res.Report.Count() != 0 {
		t.Fatalf("suppressed field still reported: %v", res.Report.Races())
	}
	res = Run(figure1(nil), Options{Mode: ModelCheck, Prefix: true,
		Suppress: []string{"other.field"}})
	if res.Report.Count() != 1 {
		t.Fatal("unrelated suppression removed the race")
	}
}

// The detection-window histogram quantifies Figures 5(b)/6(a): with the
// prefix expansion every crash point of the Figure 1 program reveals the
// race; the baseline only succeeds when the crash lands inside the narrow
// store→flush window.
func TestDetectionWindowHistogram(t *testing.T) {
	prefix := Run(figure1(nil), Options{Mode: ModelCheck, Prefix: true})
	baseline := Run(figure1(nil), Options{Mode: ModelCheck, Prefix: false})
	if len(prefix.Window) != 2 || len(baseline.Window) != 2 {
		t.Fatalf("window sizes = %d/%d, want 2 (completion + clflush point)",
			len(prefix.Window), len(baseline.Window))
	}
	for _, p := range prefix.Window {
		if p.Races != 1 {
			t.Fatalf("prefix: crash point %d found %d races, want 1 (window expanded)", p.Point, p.Races)
		}
	}
	// Baseline: point 0 (completion, store flushed) finds nothing; point 1
	// (before the clflush) is the narrow window.
	var byPoint [2]int
	for _, p := range baseline.Window {
		byPoint[p.Point] = p.Races
	}
	if byPoint[0] != 0 || byPoint[1] != 1 {
		t.Fatalf("baseline window = %v, want races only inside the store→flush window", baseline.Window)
	}
}

// Multiple model-check schedules widen coverage: a race whose window only
// opens under a particular interleaving is found once enough schedules are
// explored.
func TestMultipleSchedules(t *testing.T) {
	// Thread 1 release-stores a flag only AFTER thread 0's store+flush in
	// some schedules; the post-crash execution reads the flag FIRST and
	// then x. Under schedules where the flag store commits before x's
	// clflush, the flush is outside the consistent prefix and x races;
	// under others it is covered.
	mk := func() pmm.Program {
		var x, f pmm.Addr
		return pmm.Program{
			Name: "sched",
			Setup: func(h *pmm.Heap) {
				x = h.AllocStruct("xx", pmm.Layout{{Name: "x", Size: 8}}).F("x")
				f = h.AllocStruct("ff", pmm.Layout{{Name: "f", Size: 8}}).F("f")
			},
			Workers: []func(*pmm.Thread){
				func(t *pmm.Thread) {
					t.Store64(x, 1)
					t.CLFlush(x)
				},
				func(t *pmm.Thread) {
					t.StoreRelease64(f, 1)
				},
			},
			PostCrash: func(t *pmm.Thread) {
				t.LoadAcquire64(f)
				t.Load64(x)
			},
		}
	}
	one := Run(mk, Options{Mode: ModelCheck, Prefix: true, Schedules: 1})
	many := Run(mk, Options{Mode: ModelCheck, Prefix: true, Schedules: 8})
	if many.Report.Count() < one.Report.Count() {
		t.Fatalf("more schedules found fewer races: %d vs %d", many.Report.Count(), one.Report.Count())
	}
	if many.ExecutionsRun <= one.ExecutionsRun {
		t.Fatal("extra schedules did not run extra executions")
	}
}

// Read-choice exploration observes every candidate value a post-crash load
// could see. The recovery below branches on the observed value; only the
// intermediate value (2) leads to the racy read of y, so plain policies
// (latest=3, minimal=1) miss it.
func TestExploreReadsFindsIntermediateValues(t *testing.T) {
	mk := func() pmm.Program {
		var x, y pmm.Addr
		return pmm.Program{
			Name: "reads",
			Setup: func(h *pmm.Heap) {
				x = h.AllocStruct("xx", pmm.Layout{{Name: "x", Size: 8}}).F("x")
				y = h.AllocStruct("yy", pmm.Layout{{Name: "y", Size: 8}}).F("y")
			},
			Workers: []func(*pmm.Thread){func(t *pmm.Thread) {
				t.Store64(x, 1)
				t.CLFlush(x) // guaranteed floor: x >= 1
				t.Store64(x, 2)
				t.Store64(x, 3)
				t.Store64(y, 9) // unflushed
				t.CLFlush(x)    // last crash point
			}},
			PostCrash: func(t *pmm.Thread) {
				if t.Load64(x) == 2 { // only the intermediate value
					t.Load64(y) // the racy observation
				}
			},
		}
	}
	plain := Run(mk, Options{Mode: ModelCheck, Prefix: true})
	explored := Run(mk, Options{Mode: ModelCheck, Prefix: true, ExploreReads: true})
	plainHasY, exploredHasY := false, false
	for _, f := range plain.Report.Fields() {
		if f == "yy.y" {
			plainHasY = true
		}
	}
	for _, f := range explored.Report.Fields() {
		if f == "yy.y" {
			exploredHasY = true
		}
	}
	if plainHasY {
		t.Fatal("plain policies observed the intermediate value (test premise broken)")
	}
	if !exploredHasY {
		t.Fatalf("read exploration missed the intermediate-value path; fields=%v", explored.Report.Fields())
	}
	if explored.ExecutionsRun <= plain.ExecutionsRun {
		t.Fatal("exploration ran no extra scenarios")
	}
}

// Multithreaded recovery: two recovery threads interleave under the
// scheduler; both observe the racy store, and the race is still attributed
// once.
func TestMultithreadedRecovery(t *testing.T) {
	reads := 0
	mk := func() pmm.Program {
		var x pmm.Addr
		return pmm.Program{
			Name: "mt-recovery",
			Setup: func(h *pmm.Heap) {
				x = h.AllocStruct("o", pmm.Layout{{Name: "x", Size: 8}}).F("x")
			},
			Workers: []func(*pmm.Thread){func(t *pmm.Thread) {
				t.Store64(x, 5)
				t.CLFlush(x)
			}},
			PostCrashWorkers: []func(*pmm.Thread){
				func(t *pmm.Thread) { t.Load64(x); reads++ },
				func(t *pmm.Thread) { t.Load64(x); reads++ },
			},
		}
	}
	// Workers: 1 — the recovery threads increment the shared reads counter.
	res := Run(mk, Options{Mode: ModelCheck, Prefix: true, Workers: 1})
	if res.Report.Count() != 1 {
		t.Fatalf("races = %d, want 1 (deduplicated across recovery threads)", res.Report.Count())
	}
	if reads == 0 {
		t.Fatal("recovery threads did not run")
	}
}

// CLFlushOpt behaves like clwb: no persistence without a fence.
func TestCLFlushOptNeedsFence(t *testing.T) {
	mkNoFence := func() pmm.Program {
		var x pmm.Addr
		return pmm.Program{
			Name: "clflushopt",
			Setup: func(h *pmm.Heap) {
				x = h.AllocStruct("o", pmm.Layout{{Name: "x", Size: 8}}).F("x")
			},
			Workers: []func(*pmm.Thread){func(t *pmm.Thread) {
				t.Store64(x, 5)
				t.CLFlushOpt(x) // no fence: never persistent
			}},
			PostCrash: func(t *pmm.Thread) { t.Load64(x) },
		}
	}
	res := Run(mkNoFence, Options{Mode: ModelCheck, Prefix: false})
	if res.Report.Count() != 1 {
		t.Fatalf("clflushopt without fence: races = %d, want 1 even for the baseline", res.Report.Count())
	}
}

// A runaway workload (infinite spin) is cut off by the operation watchdog
// instead of hanging the checker.
func TestRunawayWorkloadWatchdog(t *testing.T) {
	mk := func() pmm.Program {
		var x pmm.Addr
		return pmm.Program{
			Name: "runaway",
			Setup: func(h *pmm.Heap) {
				x = h.AllocStruct("o", pmm.Layout{{Name: "x", Size: 8}}).F("x")
			},
			Workers: []func(*pmm.Thread){func(t *pmm.Thread) {
				for { // never terminates
					t.Load64(x)
				}
			}},
		}
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("watchdog did not fire")
		}
		if s, ok := r.(string); !ok || !strings.Contains(s, "runaway") {
			t.Fatalf("unexpected panic: %v", r)
		}
	}()
	RunOne(mk, Options{Prefix: true}, 0, PersistLatest, 1)
}

// Limiting the candidate set to the newest store per load loses races on
// older candidates (the ablation behind checking ALL candidates).
func TestCandidateLimitLosesOldCandidates(t *testing.T) {
	mk := func() pmm.Program {
		var x pmm.Addr
		return pmm.Program{
			Name: "cands",
			Setup: func(h *pmm.Heap) {
				x = h.AllocStruct("o", pmm.Layout{{Name: "x", Size: 8}}).F("x")
			},
			Workers: []func(*pmm.Thread){func(t *pmm.Thread) {
				t.Store64(x, 1)        // older candidate: racy
				t.StoreRelease64(x, 2) // newest candidate: atomic, safe
				t.CLFlush(x)
			}},
			PostCrash: func(t *pmm.Thread) { t.Load64(x) },
		}
	}
	full := Run(mk, Options{Mode: ModelCheck, Prefix: true})
	limited := Run(mk, Options{Mode: ModelCheck, Prefix: true, CandidateLimit: 1})
	if full.Report.Count() != 1 {
		t.Fatalf("full candidate checking found %d races, want 1", full.Report.Count())
	}
	if limited.Report.Count() != 0 {
		t.Fatalf("limit-1 checking found %d races, want 0 (only the atomic newest candidate checked)", limited.Report.Count())
	}
}

// RandomMode models store-buffer loss: a store with no subsequent
// fence/flush may still sit in the store buffer at the crash and be lost
// entirely. Across seeds, recovery must observe both outcomes: the value
// committed (buffer drained in time) and the value lost (still buffered).
func TestStoreBufferLossInRandomMode(t *testing.T) {
	observed := map[uint64]bool{}
	mk := func() pmm.Program {
		var x, y pmm.Addr
		return pmm.Program{
			Name: "sbloss",
			Setup: func(h *pmm.Heap) {
				x = h.AllocStruct("o", pmm.Layout{{Name: "x", Size: 8}, {Name: "y", Size: 8}}).F("x")
				y = x + 8
			},
			Workers: []func(*pmm.Thread){func(t *pmm.Thread) {
				t.Store64(x, 7) // may linger in the store buffer
				t.SFence()      // crash point; the store may not have drained
				t.Store64(y, 1)
				t.CLFlush(y)
			}},
			PostCrash: func(t *pmm.Thread) {
				observed[t.Load64(x)] = true
			},
		}
	}
	// Workers: 1 — the program writes the shared observed map.
	for seed := int64(1); seed <= 30; seed++ {
		Run(mk, Options{Mode: RandomMode, Prefix: true, Seed: seed, Executions: 2, Workers: 1})
	}
	if !observed[0] {
		t.Error("no execution lost the buffered store (x=0 never observed)")
	}
	if !observed[7] {
		t.Error("no execution committed the store (x=7 never observed)")
	}
	for v := range observed {
		if v != 0 && v != 7 {
			t.Errorf("impossible value observed: %d", v)
		}
	}
}

// ModelCheck drains eagerly, so its commit order (and therefore its
// results) are identical across repeated runs even for multithreaded
// programs — the paper's "controls multithreaded scheduling to regenerate
// the same execution".
func TestModelCheckReproducibleAcrossProcessRuns(t *testing.T) {
	mk := func() pmm.Program {
		var x, y pmm.Addr
		return pmm.Program{
			Name: "repro",
			Setup: func(h *pmm.Heap) {
				x = h.AllocStruct("a", pmm.Layout{{Name: "x", Size: 8}}).F("x")
				y = h.AllocStruct("b", pmm.Layout{{Name: "y", Size: 8}}).F("y")
			},
			Workers: []func(*pmm.Thread){
				func(t *pmm.Thread) { t.Store64(x, 1); t.CLFlush(x) },
				func(t *pmm.Thread) { t.Store64(y, 2); t.CLFlush(y) },
			},
			PostCrash: func(t *pmm.Thread) { t.Load64(x); t.Load64(y) },
		}
	}
	var first string
	for i := 0; i < 5; i++ {
		res := Run(mk, Options{Mode: ModelCheck, Prefix: true})
		out := res.Report.String()
		if i == 0 {
			first = out
		} else if out != first {
			t.Fatalf("run %d diverged:\n%s\nvs\n%s", i, out, first)
		}
	}
}
