// Checkpointed pre-crash execution.
//
// A ModelCheck run explores every crash point of one deterministic schedule,
// and historically each of the C crash scenarios re-simulated the pre-crash
// prefix from scratch — O(C·n) simulated operations for an n-operation
// workload, the dominant cost of a sweep. The checkpoint layer removes the
// quadratic term: the planner's probe run (which already executes the full
// schedule once to count its flush/fence points) captures a deep-cloned
// snapshot at every crash point, and each scenario resumes from its point's
// snapshot, simulating only the crash, the image derivation and the
// post-crash recovery — O(n) + C·clone.
//
// What a snapshot holds, and why:
//
//   - the persistent heap (pmm.Heap.Clone) and the detector with its report
//     (core.Detector.Clone) — the full pre-crash analysis state;
//   - the persisted image table. Image provenance names stores by (execution
//     stack index, arena ref), both of which survive a detector clone
//     unchanged, so capture and resume clone the table as-is — no pointer
//     remapping. Candidate slices are immutable once stored (buildImage
//     always assembles fresh ones), so the flat clone's shallow slot copies
//     fully detach the snapshot;
//   - the trace recorder's event log, when tracing is on;
//   - the scheduler rng: a copy of the generator state (or, when state
//     mirroring is unavailable — see rngstate.go — a raw-draw count to
//     re-skip) plus the crash-unwind draw count, so a resume reproduces the
//     exact rand.Rand state a from-scratch scenario holds after its crash
//     unwinds the remaining threads;
//   - the crash sequence number — NOT the TSO machine. A crash discards
//     every buffered store and flush by definition, and the post-crash
//     machine is freshly seeded from the image, so the machine's only
//     surviving observable is CurSeq (tso.Machine.Clone exists for tests and
//     tooling, not for this layer).
//
// Snapshots are read-only templates shared by every scenario of a schedule
// (including concurrent workers): a resume clones the detector again, clones
// the image table again, and copies the heap state and event log into scenario-
// private objects. Nothing ever mutates a snapshot after capture.
//
// The same mechanism handles the recursive cases: a primary scenario that
// expands recovery crashes captures snapshots of its own recovery execution
// (execution index 1) for the multi-crash follow-ups, and read-choice
// expansions resume from the first-crash snapshot with a persist override.
package engine

import (
	"math/rand"

	"yashme/internal/core"
	"yashme/internal/pmm"
	"yashme/internal/trace"
	"yashme/internal/vclock"
)

// countingSource is the scheduler's rand.Source64: a math/rand generator
// whose stream position is both counted and copyable. When the rngState
// mirror validates (see rngstate.go) the seeded state is extracted once and
// stepped locally, so fork() can hand a snapshot an independent copy at the
// current position — a resume then continues the stream with a struct copy
// instead of re-seeding and replaying n draws. When the mirror is
// unavailable the stdlib source is kept and resumes fall back to
// seed-and-skip via the draw count; results are byte-identical either way.
type countingSource struct {
	state    rngState
	mirrored bool
	src      rand.Source   // fallback only
	s64      rand.Source64 // nil if src lacks Uint64
	n        uint64
}

func newCountingSource(seed int64) *countingSource {
	src := rand.NewSource(seed)
	cs := &countingSource{}
	if extractRngState(src, &cs.state) {
		cs.mirrored = true
		return cs
	}
	cs.src = src
	if s64, ok := src.(rand.Source64); ok {
		cs.s64 = s64
	}
	return cs
}

// fork returns an independent copy positioned at the current stream point,
// or nil when the state cannot be copied (nil source or mirror unavailable).
func (c *countingSource) fork() *countingSource {
	if c == nil || !c.mirrored {
		return nil
	}
	cp := *c
	return &cp
}

func (c *countingSource) Int63() int64 {
	c.n++
	if c.mirrored {
		return c.state.Int63()
	}
	return c.src.Int63()
}

func (c *countingSource) Uint64() uint64 {
	if c.mirrored {
		c.n++
		return c.state.Uint64()
	}
	if c.s64 != nil {
		c.n++
		return c.s64.Uint64()
	}
	// Compose from two Int63 draws exactly as rand.Rand does for sources
	// without Uint64, so the draw count stays equal to the step count.
	c.n += 2
	return uint64(c.src.Int63())>>31 | uint64(c.src.Int63())<<32
}

func (c *countingSource) Seed(seed int64) {
	if c.mirrored {
		extractRngState(rand.NewSource(seed), &c.state)
	} else {
		c.src.Seed(seed)
	}
	c.n = 0
}

// skip advances the source by n raw draws (each Int63 call is one step for
// every rand.NewSource implementation, with or without Source64).
func (c *countingSource) skip(n uint64) {
	for i := uint64(0); i < n; i++ {
		if c.mirrored {
			c.state.Uint64()
		} else {
			c.src.Int63()
		}
	}
	c.n += n
}

var _ rand.Source64 = (*countingSource)(nil)

// snapshot is the cloned state of a scenario at one crash point: everything
// a resume needs to continue as if it had simulated the prefix itself.
// Snapshots are immutable after capture.
type snapshot struct {
	seed    int64
	execIdx int
	// point is the 1-based flush/fence point captured (0 = completion).
	point int
	// crashSeq is the commit sequence at the point — what the crashed
	// machine's CurSeq would report.
	crashSeq vclock.Seq
	// rng is a copy of the generator at the point (nil when state mirroring
	// is unavailable); rngDraws is the stream position for the seed-and-skip
	// fallback. unwind is the number of still-live threads minus one, each of
	// which costs the scheduler one bounded draw while the crash unwinds them.
	rng      *countingSource
	rngDraws uint64
	unwind   int
	// stats is the scenario's operation counts at the point, with
	// SimulatedOps (and its Handoffs/DirectOps split) zeroed: a resumed
	// scenario inherits the prefix's per-kind counts but only counts the
	// operations it actually simulates.
	stats       Stats
	crashPoints map[int]int
	heap        *pmm.Heap
	det         *core.Detector
	rec         *trace.Recorder // nil unless tracing
	image       imageTable
	setupAllocs int
	setupNext   pmm.Addr
}

// snapshotSink collects the snapshots of one watched execution, keyed by
// crash point.
type snapshotSink struct {
	// execIdx is the execution index the sink watches (0 = pre-crash
	// workload, 1 = the first recovery run).
	execIdx int
	// max caps the points captured (0 = all); mirrors MaxCrashPoints /
	// RecoveryCrashes so unexplored points cost nothing.
	max   int
	snaps map[int]*snapshot
}

func newSnapshotSink(execIdx, max int) *snapshotSink {
	return &snapshotSink{execIdx: execIdx, max: max, snaps: make(map[int]*snapshot)}
}

// observe captures the current flush/fence point (called from atCrashPoint).
func (k *snapshotSink) observe(sc *scenario) {
	p := sc.crashPoints[sc.execIdx]
	if k.max > 0 && p > k.max {
		return
	}
	k.snaps[p] = captureSnapshot(sc, p)
}

// take captures an explicit point (the completion snapshot, point 0).
func (k *snapshotSink) take(sc *scenario, point int) {
	k.snaps[point] = captureSnapshot(sc, point)
}

func captureSnapshot(sc *scenario, point int) *snapshot {
	snap := &snapshot{
		seed:        sc.seed,
		execIdx:     sc.execIdx,
		point:       point,
		crashSeq:    sc.machine.CurSeq(),
		rng:         sc.rngSrc.fork(),
		rngDraws:    sc.rngSrc.n,
		stats:       sc.stats,
		crashPoints: make(map[int]int, len(sc.crashPoints)),
		heap:        sc.heap.Clone(),
		det:         sc.det.Clone(),
		image:       sc.image.clone(),
		setupAllocs: sc.setupAllocs,
		setupNext:   sc.setupNext,
	}
	snap.stats.SimulatedOps = 0
	snap.stats.Handoffs = 0
	snap.stats.DirectOps = 0
	for k, v := range sc.crashPoints {
		snap.crashPoints[k] = v
	}
	if point > 0 {
		// A from-scratch crash at this point unwinds the remaining live
		// threads; the scheduler draws Intn(j) for j = live-1 down to 2.
		snap.unwind = sc.liveThreads - 1
	}
	if sc.recorder != nil {
		snap.rec = sc.recorder.Clone(nil, nil)
	}
	return snap
}

// resumeScenario builds a scenario positioned exactly where a from-scratch
// run of (makeProg, opts, p, persist, snap.seed) would be at snap's crash
// point, without simulating the prefix. The caller continues with
// sc.finish(snap.crashSeq).
//
// The program's closures capture heap handles, so the program and its Setup
// are re-run against a fresh heap first; the snapshot's heap state is then
// grafted into that heap (pmm.Heap.Restore), keeping the handles valid. If
// Setup does not reproduce the snapshot's allocation fingerprint —
// a nondeterministic program — resumption is refused and the caller falls
// back to a from-scratch run, deterministically for every worker count.
func resumeScenario(makeProg func() pmm.Program, opts Options, snap *snapshot, p plan, persist PersistPolicy) (*scenario, bool) {
	prog := makeProg()
	heap := pmm.NewHeap()
	if prog.Setup != nil {
		prog.Setup(heap)
	}
	if heap.AllocCount() != snap.setupAllocs || heap.NextFree() != snap.setupNext {
		return nil, false
	}
	heap.Restore(snap.heap)
	if opts.EADR {
		persist = PersistLatest
	}
	det := snap.det.Clone()
	det.SetLabeler(heap.LabelFor)
	src := snap.rng.fork()
	if src == nil {
		src = newCountingSource(snap.seed)
		src.skip(snap.rngDraws)
	}
	sc := &scenario{
		opts:        opts,
		prog:        prog,
		heap:        heap,
		det:         det,
		rng:         rand.New(src),
		rngSrc:      src,
		seed:        snap.seed,
		persist:     persist,
		crashPlan:   p,
		crashPoints: make(map[int]int, len(snap.crashPoints)),
		execIdx:     snap.execIdx,
		image:       snap.image.clone(),
		stats:       snap.stats,
		setupAllocs: snap.setupAllocs,
		setupNext:   snap.setupNext,
	}
	for k, v := range snap.crashPoints {
		sc.crashPoints[k] = v
	}
	if opts.Trace && snap.rec != nil {
		sc.recorder = snap.rec.Clone(det, heap.LabelFor)
	}
	// Replay the crash-unwind draws so the rng matches a scratch scenario
	// whose scheduler unwound the remaining threads at the crash. These must
	// be Intn calls, not raw skips: Intn may reject draws, and the scratch
	// scheduler made the same rejections.
	for j := snap.unwind; j >= 2; j-- {
		sc.rng.Intn(j)
	}
	return sc, true
}

// runPlanned runs one crash scenario, resuming from snap when possible and
// falling back to a from-scratch run otherwise (snap == nil, checkpointing
// off, or a fingerprint mismatch). configure, when non-nil, is applied to
// the scenario before any execution — both paths — so read-choice overrides
// and recovery sinks attach uniformly.
func runPlanned(makeProg func() pmm.Program, opts Options, snap *snapshot, p plan, persist PersistPolicy, seed int64, configure func(*scenario)) *scenario {
	if snap != nil {
		if sc, ok := resumeScenario(makeProg, opts, snap, p, persist); ok {
			if configure != nil {
				configure(sc)
			}
			sc.finish(snap.crashSeq)
			return sc
		}
	}
	sc := newScenario(makeProg, opts, p, persist, seed)
	if configure != nil {
		configure(sc)
	}
	sc.run()
	return sc
}
