// Checkpointed pre-crash execution.
//
// A ModelCheck run explores every crash point of one deterministic schedule,
// and historically each of the C crash scenarios re-simulated the pre-crash
// prefix from scratch — O(C·n) simulated operations for an n-operation
// workload, the dominant cost of a sweep. The checkpoint layer removes the
// quadratic term: the planner's probe run (which already executes the full
// schedule once to count its flush/fence points) captures a snapshot at every
// crash point, and each scenario resumes from its point's snapshot,
// simulating only the crash, the image derivation and the post-crash
// recovery — O(n) + C·capture.
//
// Capture itself is O(changes), not O(state): consecutive crash points of one
// schedule differ by a handful of detector mutations, so only every K-th
// snapshot (Options.Keyframe) is a full detector clone — a keyframe — and the
// snapshots between are delta checkpoints: a reference to the previous
// keyframe plus the boundaries of the probe's mutation-journal segment
// (core.Journal) recorded since it. Resume materializes a delta by cloning
// the keyframe's detector and replaying the segment — bit-equivalent to the
// full clone a capture at that point would have taken, because journaling
// covers every detector mutation a pre-crash execution can perform (see
// core/journal.go). The other captured state is cheap without deltas: the
// heap is an O(1) append-only view (pmm.Heap.Snapshot), the persisted image
// is constant for the whole capture window (it is rebuilt only between
// executions) so one clone per sink is shared by every snapshot, and the
// scheduler rng copy is shared between consecutive points with no draws in
// between (solo-threaded probes never draw, so one copy usually serves all).
//
// On top of the snapshots sits crash-image memoization (Options.Dedup): at
// each probed point the sink serializes the image-determining state — heap
// shape, persisted image, live threads, rng position, and the detector's
// stores/flush-chains/persist-bounds (core.Execution.AppendStateSignature) —
// and content-hashes it. A point whose serialized state is byte-identical to
// an earlier point's (hash equality is only a filter; a full byte compare
// confirms every match, so a collision can never change results) must yield
// the same persisted image, the same recovery execution and the same races,
// so the planner marks it a duplicate and the merge layer reuses the earlier
// point's recorded verdict instead of re-simulating (explore.go).
//
// What a snapshot holds, and why:
//
//   - the persistent heap (an O(1) capped view; see pmm.Heap.Snapshot) and
//     the detector with its report — a full clone on keyframes, a
//     {keyframe, journal segment} pair on deltas;
//   - the persisted image table, shared per sink (constant per capture
//     window); resume still clones it into scenario-private tables;
//   - the trace recorder's event log, when tracing is on;
//   - the scheduler rng: a copy of the generator state (or, when state
//     mirroring is unavailable — see rngstate.go — a raw-draw count to
//     re-skip) plus the crash-unwind draw count, so a resume reproduces the
//     exact rand.Rand state a from-scratch scenario holds after its crash
//     unwinds the remaining threads;
//   - the crash sequence number — NOT the TSO machine. A crash discards
//     every buffered store and flush by definition, and the post-crash
//     machine is freshly seeded from the image, so the machine's only
//     surviving observable is CurSeq (tso.Machine.Clone exists for tests and
//     tooling, not for this layer).
//
// Snapshots are read-only templates shared by every scenario of a schedule
// (including concurrent workers): a resume clones the detector again (for a
// delta: clones the keyframe and replays the journal, both read-only after
// the probe seals the journal), clones the image table again, and copies the
// heap state and event log into scenario-private objects. Nothing ever
// mutates a snapshot after capture.
//
// The same mechanism handles the recursive cases: a primary scenario that
// expands recovery crashes captures snapshots of its own recovery execution
// (execution index 1) for the multi-crash follow-ups — always full clones,
// since the journal records only pre-crash mutations — and read-choice
// expansions resume from the first-crash snapshot with a persist override.
package engine

import (
	"bytes"
	"math/rand"

	"yashme/internal/analysis"
	"yashme/internal/core"
	"yashme/internal/pmm"
	"yashme/internal/trace"
	"yashme/internal/vclock"
)

// countingSource is the scheduler's rand.Source64: a math/rand generator
// whose stream position is both counted and copyable. When the rngState
// mirror validates (see rngstate.go) the seeded state is extracted once and
// stepped locally, so fork() can hand a snapshot an independent copy at the
// current position — a resume then continues the stream with a struct copy
// instead of re-seeding and replaying n draws. When the mirror is
// unavailable the stdlib source is kept and resumes fall back to
// seed-and-skip via the draw count; results are byte-identical either way.
type countingSource struct {
	// state is the mirrored register, behind a pointer so copy-on-write
	// forks allocate ~40 bytes instead of the ~5KB lagged-Fibonacci array.
	// When cow is set, state points at a read-only donor (a snapshot's
	// frozen rng) and the first mutation copies it; scenarios that never
	// draw — every solo-threaded resume under a deterministic persist
	// policy — skip the register copy entirely.
	state    *rngState
	cow      bool
	mirrored bool
	src      rand.Source   // fallback only
	s64      rand.Source64 // nil if src lacks Uint64
	n        uint64
}

func newCountingSource(seed int64) *countingSource {
	src := rand.NewSource(seed)
	cs := &countingSource{}
	st := new(rngState)
	if extractRngState(src, st) {
		cs.state, cs.mirrored = st, true
		return cs
	}
	cs.src = src
	if s64, ok := src.(rand.Source64); ok {
		cs.s64 = s64
	}
	return cs
}

// fork returns an independent eager copy positioned at the current stream
// point, or nil when the state cannot be copied (nil source or mirror
// unavailable).
func (c *countingSource) fork() *countingSource {
	if c == nil || !c.mirrored {
		return nil
	}
	st := new(rngState)
	*st = *c.state
	return &countingSource{state: st, mirrored: true, n: c.n}
}

// forkShared returns a copy-on-write fork positioned at the current stream
// point: the register copy is deferred to the first draw. The receiver must
// stay read-only for the fork's lifetime — it is only called on snapshot
// rngs, which are frozen by the snapshot immutability contract.
func (c *countingSource) forkShared() *countingSource {
	if c == nil || !c.mirrored {
		return nil
	}
	return &countingSource{state: c.state, cow: true, mirrored: true, n: c.n}
}

// materialize resolves a copy-on-write fork before its first mutation.
func (c *countingSource) materialize() {
	if c.cow {
		st := new(rngState)
		*st = *c.state
		c.state, c.cow = st, false
	}
}

func (c *countingSource) Int63() int64 {
	c.n++
	if c.mirrored {
		c.materialize()
		return c.state.Int63()
	}
	return c.src.Int63()
}

func (c *countingSource) Uint64() uint64 {
	if c.mirrored {
		c.n++
		c.materialize()
		return c.state.Uint64()
	}
	if c.s64 != nil {
		c.n++
		return c.s64.Uint64()
	}
	// Compose from two Int63 draws exactly as rand.Rand does for sources
	// without Uint64, so the draw count stays equal to the step count.
	c.n += 2
	return uint64(c.src.Int63())>>31 | uint64(c.src.Int63())<<32
}

func (c *countingSource) Seed(seed int64) {
	if c.mirrored {
		if c.cow {
			c.state, c.cow = new(rngState), false
		}
		extractRngState(rand.NewSource(seed), c.state)
	} else {
		c.src.Seed(seed)
	}
	c.n = 0
}

// skip advances the source by n raw draws (each Int63 call is one step for
// every rand.NewSource implementation, with or without Source64).
func (c *countingSource) skip(n uint64) {
	if c.mirrored {
		c.materialize()
	}
	for i := uint64(0); i < n; i++ {
		if c.mirrored {
			c.state.Uint64()
		} else {
			c.src.Int63()
		}
	}
	c.n += n
}

var _ rand.Source64 = (*countingSource)(nil)

// snapshotOverheadBytes is the accounted fixed cost of one snapshot shell
// (the struct, the crash-point map, the heap view headers) on top of the
// keyframe clone or journal segment it carries.
const snapshotOverheadBytes = 256

// snapshot is the captured state of a scenario at one crash point:
// everything a resume needs to continue as if it had simulated the prefix
// itself. Snapshots are immutable after capture.
type snapshot struct {
	seed    int64
	execIdx int
	// point is the 1-based flush/fence point captured (0 = completion).
	point int
	// crashSeq is the commit sequence at the point — what the crashed
	// machine's CurSeq would report.
	crashSeq vclock.Seq
	// rng is a copy of the generator at the point (nil when state mirroring
	// is unavailable); rngDraws is the stream position for the seed-and-skip
	// fallback. unwind is the number of still-live threads minus one, each of
	// which costs the scheduler one bounded draw while the crash unwinds them.
	// The rng copy may be shared with neighboring snapshots (no draws between
	// them); it is read-only — resume forks it again.
	rng      *countingSource
	rngDraws uint64
	unwind   int
	// stats is the scenario's operation counts at the point, with the
	// mode-dependent cost counters (SimulatedOps and its Handoffs/DirectOps
	// split, SnapshotBytes, JournalOps, DedupedScenarios) zeroed: a resumed
	// scenario inherits the prefix's per-kind counts but only counts the
	// work it actually performs.
	stats       Stats
	crashPoints map[int]int
	heap        *pmm.Heap
	// det is the full detector clone — set on keyframes (and every snapshot
	// of a non-delta sink), nil on delta snapshots.
	det *core.Detector
	// base/journal/jMark describe a delta snapshot: the detector state is
	// base.det (the previous keyframe) plus journal ops [base.jMark, jMark).
	// materializeDetector rebuilds the full clone on resume.
	base    *snapshot
	journal *core.Journal
	jMark   int
	// extras are read-only clones of the stack's extra analysis passes at
	// the point, nil for a yashme-only stack. Unlike the model they are
	// cloned at every snapshot — the journal records only core.Detector
	// mutations — and resume clones them again.
	extras  []analysis.Pass
	rec     *trace.Recorder // nil unless tracing
	image   imageTable
	// setupAllocs/setupNext fingerprint the heap right after Setup.
	setupAllocs int
	setupNext   pmm.Addr
}

// materializeDetector rebuilds the full detector state at the snapshot's
// point. Safe for concurrent use by several resuming workers: the keyframe
// detector and the sealed journal are read-only, and the replay appends
// only into the fresh clone's detached arenas and tables.
func (snap *snapshot) materializeDetector() *core.Detector {
	if snap.base == nil {
		return snap.det.Clone()
	}
	return snap.base.det.CloneReplay(snap.journal, snap.base.jMark, snap.jMark)
}

// sigClass is one equivalence class of crash points under the state
// signature: the first point seen with these exact bytes represents every
// later match.
type sigClass struct {
	point int
	sig   []byte
}

// snapshotSink collects the snapshots of one watched execution, keyed by
// crash point. All sink state is touched only by the probing scenario's
// goroutine during the capture window; afterwards it is read-only and may
// be shared across workers.
type snapshotSink struct {
	// execIdx is the execution index the sink watches (0 = pre-crash
	// workload, 1 = the first recovery run).
	execIdx int
	// max caps the points captured (0 = all); mirrors MaxCrashPoints /
	// RecoveryCrashes so unexplored points cost nothing.
	max   int
	snaps map[int]*snapshot

	// Delta capture (configureProbe): keyframe is the full-clone interval
	// (0 = deltas disabled, every capture a full clone), journal the
	// mutation journal attached to the probed detector, lastKey the current
	// keyframe and sinceKey the snapshots taken since it (inclusive).
	keyframe int
	journal  *core.Journal
	lastKey  *snapshot
	sinceKey int

	// Per-sink shared captures: the persisted image is constant during one
	// execution's capture window (it is rebuilt only between executions),
	// so the first capture clones it once for every snapshot; the rng copy
	// is shared between consecutive points with no draws in between.
	image      imageTable
	imageTaken bool
	lastRng    *countingSource
	lastRngN   uint64

	// Crash-image memoization (configureProbe): sigs maps a state-signature
	// hash to its equivalence classes (full bytes kept for the mandatory
	// collision-confirming compare); dups maps a duplicate point to its
	// class representative's point.
	dedup  bool
	sigBuf []byte
	sigs   map[uint64][]*sigClass
	dups   map[int]int
}

func newSnapshotSink(execIdx, max int) *snapshotSink {
	return &snapshotSink{execIdx: execIdx, max: max, snaps: make(map[int]*snapshot)}
}

// dedupEnabled reports whether crash-image memoization is sound and active
// for the run: the expansions that consume live per-scenario state
// (read-choice frontiers, recovery-crash probing) and the trace recorder
// (whose event log legitimately differs between equivalent points) disable
// it; every plain ModelCheck sweep — any persist policy, EADR, torn values,
// suppression — keeps it.
func dedupEnabled(opts Options) bool {
	return opts.Mode == ModelCheck &&
		opts.Checkpoint == CheckpointOn &&
		opts.Dedup == DedupOn &&
		!opts.Trace &&
		!opts.ExploreReads &&
		opts.RecoveryCrashes == 0
}

// configureProbe arms delta capture and memoization on an exec-0 probe
// sink, per the options. Recovery sinks (execIdx 1) keep plain full-clone
// capture: their window spans post-crash mutations (lastflush/CVpre joins,
// report adds) the journal does not record.
func (k *snapshotSink) configureProbe(opts Options, det *core.Detector) {
	if opts.Keyframe > 1 {
		k.keyframe = opts.Keyframe
		k.journal = &core.Journal{}
		det.SetJournal(k.journal)
	}
	if dedupEnabled(opts) {
		k.dedup = true
		k.sigs = make(map[uint64][]*sigClass)
		k.dups = make(map[int]int)
	}
}

// seal closes the capture window: the journal is detached from the detector
// before the recovery execution starts, so post-crash appends can never
// pollute the recorded segments, and its length is accounted.
func (k *snapshotSink) seal(sc *scenario) {
	if k.journal == nil {
		return
	}
	sc.det.SetJournal(nil)
	sc.stats.JournalOps += int64(k.journal.Len())
}

// observe captures the current flush/fence point (called from atCrashPoint).
func (k *snapshotSink) observe(sc *scenario) {
	p := sc.crashPoints[sc.execIdx]
	if k.max > 0 && p > k.max {
		return
	}
	k.snaps[p] = k.capture(sc, p)
	if k.dedup {
		k.classify(sc, p)
	}
}

// take captures an explicit point — the completion snapshot, point 0. It is
// never classified for memoization: point 0 is captured last but explored
// first (spec index order), so a duplicate there would precede its
// representative in the merge.
func (k *snapshotSink) take(sc *scenario, point int) {
	k.snaps[point] = k.capture(sc, point)
}

// capture records one snapshot: the cheap shell plus either a keyframe
// (full detector clone) or a delta (journal segment boundaries against the
// previous keyframe). Retained bytes are accounted into the capturing
// scenario's stats as they are taken.
func (k *snapshotSink) capture(sc *scenario, point int) *snapshot {
	snap := newSnapshotShell(sc, point)
	sc.stats.SnapshotBytes += analysis.ExtrasFootprintBytes(snap.extras)
	if !k.imageTaken {
		k.image = sc.image.clone()
		k.imageTaken = true
		sc.stats.SnapshotBytes += k.image.footprintBytes()
	}
	snap.image = k.image
	// The scheduler rng is a pure function of (seed, draw count), so
	// consecutive snapshots with no draws in between share one forked copy —
	// a solo-threaded probe never draws, so one copy serves every point.
	if k.lastRng != nil && k.lastRngN == sc.rngSrc.n {
		snap.rng = k.lastRng
	} else {
		snap.rng = k.lastRng.forkOrNil(sc.rngSrc)
		k.lastRng, k.lastRngN = snap.rng, sc.rngSrc.n
		sc.stats.SnapshotBytes += rngCopyBytes
	}
	if k.journal != nil {
		snap.jMark = k.journal.Mark()
	}
	if k.journal == nil || k.lastKey == nil || k.sinceKey >= k.keyframe {
		snap.det = sc.det.Clone()
		k.lastKey, k.sinceKey = snap, 1
		sc.stats.SnapshotBytes += snap.det.FootprintBytes() + snapshotOverheadBytes
	} else {
		snap.base, snap.journal = k.lastKey, k.journal
		k.sinceKey++
		sc.stats.SnapshotBytes += int64(snap.jMark-snap.base.jMark)*core.JournalOpBytes + snapshotOverheadBytes
	}
	return snap
}

// rngCopyBytes is the accounted size of one forked countingSource (the
// mirrored lagged-Fibonacci register dominates).
const rngCopyBytes = 4880

// forkOrNil forks src (ignoring the receiver); the method form keeps the
// shared-copy call site above readable when lastRng is nil.
func (*countingSource) forkOrNil(src *countingSource) *countingSource { return src.fork() }

// newSnapshotShell captures the cheap per-point state every snapshot needs
// regardless of capture mode: identity, rng position, stats prefix, crash
// bookkeeping, the O(1) heap view, and the trace log when tracing.
func newSnapshotShell(sc *scenario, point int) *snapshot {
	snap := &snapshot{
		seed:        sc.seed,
		execIdx:     sc.execIdx,
		point:       point,
		crashSeq:    sc.machine.CurSeq(),
		rngDraws:    sc.rngSrc.n,
		stats:       sc.stats,
		crashPoints: make(map[int]int, len(sc.crashPoints)),
		heap:        sc.heap.Snapshot(),
		setupAllocs: sc.setupAllocs,
		setupNext:   sc.setupNext,
	}
	snap.stats.SimulatedOps = 0
	snap.stats.Handoffs = 0
	snap.stats.DirectOps = 0
	snap.stats.SnapshotBytes = 0
	snap.stats.JournalOps = 0
	snap.stats.ClockInterned = 0
	snap.stats.EpochHits = 0
	snap.stats.EpochMisses = 0
	snap.stats.DedupedScenarios = 0
	for k, v := range sc.crashPoints {
		snap.crashPoints[k] = v
	}
	if point > 0 {
		// A from-scratch crash at this point unwinds the remaining live
		// threads; the scheduler draws Intn(j) for j = live-1 down to 2.
		snap.unwind = sc.liveThreads - 1
	}
	snap.extras = analysis.CloneExtras(sc.stack.Extras())
	if sc.recorder != nil {
		snap.rec = sc.recorder.Clone(nil, nil)
	}
	return snap
}

// captureSnapshot is a standalone full capture — what a keyframe costs.
// The sink's capture path above shares the image and rng per sink and emits
// deltas between keyframes; this entry point remains for benchmarks and as
// the reference capture.
func captureSnapshot(sc *scenario, point int) *snapshot {
	snap := newSnapshotShell(sc, point)
	snap.rng = sc.rngSrc.fork()
	snap.det = sc.det.Clone()
	snap.image = sc.image.clone()
	return snap
}

// classify serializes the probe's image-determining state at the point and
// files it into the signature classes: a byte-identical earlier point makes
// this one a duplicate. The serialized state is exactly what the resumed
// scenario's behavior is a function of — the heap shape (Setup fingerprint
// plus allocations and init writes, which within one probe run are fully
// determined by their counts: the run appends deterministically), the
// persisted image, the live-thread count (the crash-unwind draws), the rng
// position (the scheduler and persist-point draws to come), and the
// detector execution state (AppendStateSignature). Equal bytes therefore
// imply an identical image derivation, an identical recovery execution and
// identical race verdicts; the hash only routes to candidates, and
// bytes.Equal confirms every match, so a hash collision can never merge two
// distinct states.
func (k *snapshotSink) classify(sc *scenario, point int) {
	buf := k.sigBuf[:0]
	buf = sigU64(buf, uint64(sc.heap.AllocCount()))
	buf = sigU64(buf, uint64(sc.heap.NextFree()))
	buf = sigU64(buf, uint64(len(sc.heap.InitWrites())))
	buf = sigU64(buf, uint64(sc.liveThreads))
	buf = sigU64(buf, sc.rngSrc.n)
	buf = sc.image.appendSignature(buf)
	buf = sc.det.Current().AppendStateSignature(buf)
	// Extra passes append their own decision-relevant state (nothing for a
	// yashme-only stack, keeping the default signature bytes unchanged):
	// two points only dedup when the WHOLE stack finds them
	// indistinguishable.
	buf = sc.stack.AppendExtrasSignature(buf)
	k.sigBuf = buf
	k.file(point, fnv64a(buf), buf)
}

// file places a point's signature into the classes under hash h: an earlier
// class with byte-identical signature makes the point a duplicate of that
// class's representative; same hash with different bytes is a genuine
// collision and records a distinct class, never a duplicate. The hash is a
// parameter (rather than derived here) so tests can force collisions.
func (k *snapshotSink) file(point int, h uint64, buf []byte) {
	for _, c := range k.sigs[h] {
		if bytes.Equal(c.sig, buf) {
			k.dups[point] = c.point
			return
		}
	}
	k.sigs[h] = append(k.sigs[h], &sigClass{point: point, sig: append([]byte(nil), buf...)})
}

// sigU64 serializes v little-endian into the signature buffer.
func sigU64(buf []byte, v uint64) []byte {
	return append(buf,
		byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

// fnv64a is the FNV-1a hash of b (inlined to keep the per-point path free
// of hash.Hash allocations).
func fnv64a(b []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h
}

// resumeScenario builds a scenario positioned exactly where a from-scratch
// run of (makeProg, opts, p, persist, snap.seed) would be at snap's crash
// point, without simulating the prefix. The caller continues with
// sc.finish(snap.crashSeq).
//
// The program's closures capture heap handles, so the program and its Setup
// are re-run against a fresh heap first; the snapshot's heap state is then
// grafted into that heap (pmm.Heap.Restore), keeping the handles valid. If
// Setup does not reproduce the snapshot's allocation fingerprint —
// a nondeterministic program — resumption is refused and the caller falls
// back to a from-scratch run, deterministically for every worker count.
func resumeScenario(makeProg func() pmm.Program, opts Options, snap *snapshot, p plan, persist PersistPolicy) (*scenario, bool) {
	prog := makeProg()
	heap := pmm.NewHeap()
	if prog.Setup != nil {
		prog.Setup(heap)
	}
	if heap.AllocCount() != snap.setupAllocs || heap.NextFree() != snap.setupNext {
		return nil, false
	}
	heap.Restore(snap.heap)
	if opts.EADR {
		persist = PersistLatest
	}
	det := snap.materializeDetector()
	stack := analysis.Rebuild(opts.Analyses, det, analysis.CloneExtras(snap.extras))
	stack.SetLabeler(heap.LabelFor)
	src := snap.rng.forkShared()
	if src == nil {
		src = newCountingSource(snap.seed)
		src.skip(snap.rngDraws)
	}
	sc := &scenario{
		opts:        opts,
		prog:        prog,
		heap:        heap,
		stack:       stack,
		det:         det,
		rng:         rand.New(src),
		rngSrc:      src,
		seed:        snap.seed,
		persist:     persist,
		crashPlan:   p,
		crashPoints: make(map[int]int, len(snap.crashPoints)),
		execIdx:     snap.execIdx,
		image:       snap.image.clone(),
		stats:       snap.stats,
		setupAllocs: snap.setupAllocs,
		setupNext:   snap.setupNext,
	}
	sc.setGates()
	for k, v := range snap.crashPoints {
		sc.crashPoints[k] = v
	}
	if opts.Trace && snap.rec != nil {
		sc.recorder = snap.rec.Clone(stack.Listener(), heap.LabelFor)
	}
	// Replay the crash-unwind draws so the rng matches a scratch scenario
	// whose scheduler unwound the remaining threads at the crash. These must
	// be Intn calls, not raw skips: Intn may reject draws, and the scratch
	// scheduler made the same rejections.
	for j := snap.unwind; j >= 2; j-- {
		sc.rng.Intn(j)
	}
	return sc, true
}

// runPlanned runs one crash scenario, resuming from snap when possible and
// falling back to a from-scratch run otherwise (snap == nil, checkpointing
// off, or a fingerprint mismatch). configure, when non-nil, is applied to
// the scenario before any execution — both paths — so read-choice overrides
// and recovery sinks attach uniformly.
func runPlanned(makeProg func() pmm.Program, opts Options, snap *snapshot, p plan, persist PersistPolicy, seed int64, configure func(*scenario)) *scenario {
	if snap != nil {
		if sc, ok := resumeScenario(makeProg, opts, snap, p, persist); ok {
			if configure != nil {
				configure(sc)
			}
			sc.finish(snap.crashSeq)
			return sc
		}
	}
	sc := newScenario(makeProg, opts, p, persist, seed)
	if configure != nil {
		configure(sc)
	}
	sc.run()
	return sc
}
