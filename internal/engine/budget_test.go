package engine

import (
	"sync/atomic"
	"testing"

	"yashme/internal/pmm"
)

// budgetProbe is a single-worker program whose pre-crash and post-crash
// bodies track how many simulations execute at once. One worker thread
// keeps the in-scenario concurrency at one, so the gauge measures exactly
// the cross-scenario parallelism the budget is supposed to bound.
func budgetProbe(inFlight, maxSeen *int32) func() pmm.Program {
	enter := func() {
		n := atomic.AddInt32(inFlight, 1)
		for {
			m := atomic.LoadInt32(maxSeen)
			if n <= m || atomic.CompareAndSwapInt32(maxSeen, m, n) {
				break
			}
		}
	}
	return func() pmm.Program {
		var val pmm.Addr
		return pmm.Program{
			Name: "budget-probe",
			Setup: func(h *pmm.Heap) {
				val = h.AllocStruct("o", pmm.Layout{{Name: "v", Size: 8}}).F("v")
			},
			Workers: []func(*pmm.Thread){func(t *pmm.Thread) {
				enter()
				for i := 0; i < 8; i++ {
					t.Store64(val, uint64(i))
					t.CLFlush(val)
					t.SFence()
				}
				atomic.AddInt32(inFlight, -1)
			}},
			PostCrash: func(t *pmm.Thread) {
				enter()
				t.Load64(val)
				atomic.AddInt32(inFlight, -1)
			},
		}
	}
}

// A Budget of one serializes simulations even when the worker pool is
// wide, and the results stay byte-identical to an unbudgeted run.
func TestBudgetBoundsConcurrency(t *testing.T) {
	var inFlight, maxSeen int32
	opts := Options{Mode: ModelCheck, Prefix: true, Workers: 4, Budget: NewBudget(1)}
	res := Run(budgetProbe(&inFlight, &maxSeen), opts)
	if got := atomic.LoadInt32(&maxSeen); got != 1 {
		t.Fatalf("max concurrent simulations = %d, want 1 under a budget of 1", got)
	}
	plain := Run(budgetProbe(new(int32), new(int32)), Options{Mode: ModelCheck, Prefix: true, Workers: 4})
	if got, want := res.Report.String(), plain.Report.String(); got != want {
		t.Fatalf("budgeted report differs from unbudgeted:\n%s\nvs\n%s", got, want)
	}
	if res.Stats != plain.Stats {
		t.Fatalf("budgeted stats = %+v, unbudgeted %+v", res.Stats, plain.Stats)
	}
}

// A nil budget is a no-op (unlimited), and sizing defaults to GOMAXPROCS.
func TestBudgetNilAndSize(t *testing.T) {
	var b *Budget
	b.Acquire() // must not panic or block
	b.Release()
	if b.Size() != 0 {
		t.Fatalf("nil budget Size = %d, want 0", b.Size())
	}
	if NewBudget(3).Size() != 3 {
		t.Fatal("Size should echo the constructor")
	}
	if NewBudget(0).Size() < 1 {
		t.Fatal("NewBudget(0) should default to GOMAXPROCS")
	}
}
