package engine

import (
	"context"
	"runtime"
)

// Budget is a counting semaphore bounding how many crash scenarios (and
// planner probe runs) simulate concurrently across every engine Run that
// shares it. A single Run bounds its own parallelism with Options.Workers;
// when a layer above runs several benchmarks at once — the suite runner in
// internal/suite — each Run's workers would multiply and oversubscribe the
// machine. Threading one Budget through every Options keeps the total
// number of in-flight simulations at the budget's size, process-wide,
// while per-Run worker pools stay free to claim the whole budget when the
// other runs are idle.
//
// Tokens are held only while a probe or scenario group actually simulates,
// never across channel sends, so a Budget cannot deadlock: every holder
// releases without needing a second token. A nil *Budget is valid and
// unlimited — Acquire and Release on nil are no-ops — so the zero Options
// behaves exactly as before.
type Budget struct {
	tokens chan struct{}
}

// NewBudget returns a budget admitting n concurrent simulations
// (n <= 0 = runtime.GOMAXPROCS(0)).
func NewBudget(n int) *Budget {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	return &Budget{tokens: make(chan struct{}, n)}
}

// Size returns the number of concurrent simulations the budget admits
// (0 for a nil, unlimited budget).
func (b *Budget) Size() int {
	if b == nil {
		return 0
	}
	return cap(b.tokens)
}

// Acquire blocks until a token is free. No-op on a nil budget.
func (b *Budget) Acquire() {
	if b != nil {
		b.tokens <- struct{}{}
	}
}

// AcquireCtx blocks until a token is free or the context is done, and
// reports whether a token was acquired. It keeps cancellation prompt even
// when the budget is saturated by other runs: a cancelled run must not
// wait for someone else's simulation to finish before it can give up its
// place in line. A nil (unlimited) budget never blocks, so there the call
// is purely the cancellation check.
func (b *Budget) AcquireCtx(ctx context.Context) bool {
	if b == nil {
		return ctx.Err() == nil
	}
	if ctx.Err() != nil {
		return false
	}
	select {
	case b.tokens <- struct{}{}:
		return true
	case <-ctx.Done():
		return false
	}
}

// InUse returns how many tokens are currently held (0 for a nil budget) —
// the budget-utilization gauge the service's /metrics endpoint exposes.
func (b *Budget) InUse() int {
	if b == nil {
		return 0
	}
	return len(b.tokens)
}

// Release returns a token. No-op on a nil budget.
func (b *Budget) Release() {
	if b != nil {
		<-b.tokens
	}
}
