// Package engine implements the model-checking / random-execution
// infrastructure Yashme runs on (the paper's Jaaru substrate, §6
// "Implementation").
//
// The engine executes a pmm.Program under a controlled scheduler on a
// simulated x86-TSO machine (internal/tso), injects a crash before a chosen
// cache-flush or fence operation, derives the persisted memory image the
// crash leaves behind, and runs the program's recovery procedure against it.
// Post-crash loads are resolved Jaaru-style: for every address the engine
// computes the set of candidate pre-crash stores the load could read from —
// anything between the line's last guaranteed flush and the crash, because
// the cache line may have been written back at any moment in between — and
// the Yashme detector checks every candidate for a persistency race
// (Load_NonAtomic) while the engine commits one candidate per cache line as
// the actual value.
//
// Two modes mirror the paper: ModelCheck systematically injects a crash
// before every clflush/clwb/fence point of a fixed schedule; RandomMode runs
// seeded random schedules with a crash before one random fence point each.
package engine

import (
	"context"
	"fmt"
	"runtime"

	"yashme/internal/analysis"
	"yashme/internal/pmm"
	"yashme/internal/report"
	"yashme/internal/tso"
)

// Mode selects how executions and crash points are explored (paper §4:
// "Yashme has two modes of operation").
type Mode int

const (
	// ModelCheck injects a crash before every flush/fence point of a
	// deterministic schedule (paper: "systematically injects crashes before
	// every clflush or fence operation").
	ModelCheck Mode = iota
	// RandomMode runs randomly scheduled executions, each crashing before
	// one randomly chosen flush/fence point; for programs too large to
	// model check (PMDK, Redis, Memcached in the paper).
	RandomMode
)

func (m Mode) String() string {
	if m == ModelCheck {
		return "model-check"
	}
	return "random"
}

// PersistPolicy decides, per cache line, where between the guaranteed flush
// bound and the crash the line's persist point falls — i.e. which candidate
// values the post-crash execution actually observes.
type PersistPolicy int

const (
	// PersistLatest assumes every committed store reached persistence (the
	// most optimistic image; recovery sees final values).
	PersistLatest PersistPolicy = iota
	// PersistMinimal assumes only explicitly flushed data persisted (the
	// most pessimistic image; recovery sees the guaranteed state).
	PersistMinimal
	// PersistRandom picks a random persist point per line (seeded).
	PersistRandom
)

// CheckpointMode selects whether ModelCheck exploration reuses the pre-crash
// execution via snapshots (checkpoint.go): the planner's probe run captures a
// deep-cloned snapshot at every flush/fence point, and each crash scenario
// resumes from its point's snapshot instead of re-simulating the whole
// pre-crash prefix — O(n) + C·clone instead of O(C·n) simulated operations.
// The zero value is on; CheckpointOff forces every scenario to run from
// scratch (the escape hatch, and the baseline the equivalence tests compare
// against). RandomMode is unaffected either way: each random execution
// already simulates its pre-crash prefix exactly once (the crash point is
// drawn after the probe), so there is no quadratic term to remove.
type CheckpointMode int

const (
	// CheckpointOn resumes crash scenarios from pre-crash snapshots
	// (default).
	CheckpointOn CheckpointMode = iota
	// CheckpointOff re-simulates every scenario from scratch.
	CheckpointOff
)

// DirectRunMode selects whether the controlled scheduler grants a
// solo-thread direct-run lease (runner.go): when exactly one thread is
// runnable — single-threaded workloads, post-crash recovery executions, the
// tail of an execution after the other threads finished — the thread runs
// inline with no channel handoff and no goroutine switch until a second
// thread becomes runnable or it ends. The lease cannot change results: the
// scheduler only draws from the rng when more than one thread is runnable,
// so a solo phase makes no scheduling decisions either way. The zero value
// is on; DirectRunOff forces the handshake for every operation (the escape
// hatch, and the baseline the equivalence tests compare against).
type DirectRunMode int

const (
	// DirectRunOn grants solo-thread leases (default).
	DirectRunOn DirectRunMode = iota
	// DirectRunOff pays the scheduler handshake on every operation.
	DirectRunOff
)

// DedupMode selects whether ModelCheck exploration memoizes equivalent
// crash scenarios (checkpoint.go): during the probe, every crash point's
// image-determining state — heap shape, detector stores/flushes/persist
// bounds, scheduler rng position, live threads — is content-hashed, and a
// point whose state is byte-identical (hash equality is always confirmed
// by a full byte compare; a collision can never change results) to an
// earlier point of the same schedule reuses that point's recorded recovery
// verdict and races instead of re-simulating. Adjacent points with no
// stores between them — the pre-clwb/pre-sfence pairs every flush idiom
// produces — collapse this way. The zero value is on; DedupOff re-simulates
// every scenario (the escape hatch, and the baseline the equivalence tests
// compare against). Results are byte-identical either way; only
// Stats.SimulatedOps/Handoffs/DirectOps (work not done) and the new
// DedupedScenarios counter differ.
type DedupMode int

const (
	// DedupOn reuses recovery verdicts of byte-identical crash points
	// (default).
	DedupOn DedupMode = iota
	// DedupOff re-simulates every crash scenario.
	DedupOff
)

// ClockInternMode selects the happens-before clock representation. The
// default (interning on) stores deduplicated immutable clock snapshots in a
// per-detector arena shared with the simulating machine: committing a
// store allocates nothing (the record's stamp reuses the thread's shared
// snapshot plus a packed (τ, σ) self epoch), and the detector's join-heavy
// observation path answers "already covered?" with an O(1) epoch compare
// before touching any vector (Stats.EpochHits/EpochMisses). ClockInternOff
// is the escape hatch reproducing the previous one-owned-clock-per-record
// cost model. Results are byte-identical in both modes; only the
// ClockInterned/EpochHits/EpochMisses cost counters differ.
type ClockInternMode int

const (
	// ClockInternOn shares deduplicated clock snapshots (default).
	ClockInternOn ClockInternMode = iota
	// ClockInternOff gives every record a private materialized clock.
	ClockInternOff
)

// DefaultKeyframe is the Options.Keyframe applied when the field is zero:
// with checkpointing on, every K-th snapshot is a full detector clone (a
// keyframe) and the snapshots between are delta checkpoints — a reference
// to the previous keyframe plus the probe's mutation-journal segment,
// materialized on resume by replaying the segment onto a keyframe clone.
// Capture cost drops from O(state) to O(changes) per crash point; resume
// pays at most K-1 extra segment replays. Keyframe=1 makes every snapshot
// a full clone (the pre-delta behavior).
const DefaultKeyframe = 8

// DefaultMaxOps is the Options.MaxOps applied when the field is zero: the
// per-execution simulated-operation bound that turns a runaway workload
// (typically an unbounded spin loop) into a diagnostic panic instead of a
// hang.
const DefaultMaxOps = 2_000_000

// Options configures a run.
type Options struct {
	// Mode selects ModelCheck or RandomMode.
	Mode Mode
	// Prefix enables the prefix-based detection-window expansion (§4.2);
	// disabling it gives the Table 5 baseline.
	Prefix bool
	// Benchmark names the program in race reports; defaults to the
	// program's Name.
	Benchmark string
	// Seed seeds the scheduler and persist-point randomness.
	Seed int64
	// Executions is the number of random executions in RandomMode
	// (default 20; the paper lets users pick per program size).
	Executions int
	// MaxCrashPoints caps the crash points explored per execution in
	// ModelCheck (0 = all).
	MaxCrashPoints int
	// Schedules is the number of distinct thread schedules explored in
	// ModelCheck (default 1 — the paper's Yashme "controls multithreaded
	// scheduling to regenerate the same execution" and "does not
	// exhaustively explore the space of schedules"; raising this trades
	// time for schedule coverage).
	Schedules int
	// CandidateLimit caps how many candidate stores are race-checked per
	// post-crash load (newest first); 0 checks all. Checking every
	// candidate is what lets Yashme catch races in values the load did NOT
	// actually observe — the ablation knob quantifies that design choice.
	CandidateLimit int
	// ExploreReads enables Jaaru-style read-choice exploration in
	// ModelCheck: for every crash point, after the policy runs, one extra
	// scenario is run per (cache line, candidate persist point) pair — the
	// post-crash execution observes each value the line could have held.
	// Capped at ReadChoiceCap extra scenarios per crash point.
	ExploreReads bool
	// ReadChoiceCap bounds the extra read-exploration scenarios per crash
	// point (0 = DefaultReadChoiceCap). Big sweeps can raise it to chase
	// deep value-dependent recovery paths, or lower it to bound cost.
	ReadChoiceCap int
	// Workers is the number of crash scenarios executed concurrently
	// (0 = runtime.GOMAXPROCS(0); 1 = fully sequential). Results are
	// byte-identical for every worker count: scenarios are isolated and
	// merged in plan order. With Workers > 1, makeProg and the program's
	// callbacks must be safe for concurrent instantiation — programs that
	// record observations through shared captured variables should set
	// Workers to 1.
	Workers int
	// PersistPolicies are the image policies explored per crash point in
	// ModelCheck (default: latest then minimal). RandomMode always uses
	// PersistRandom.
	PersistPolicies []PersistPolicy
	// TornValues synthesizes mixed old/new values for loads that observe a
	// racing store (the paper's store-tearing symptom, Figure 1). Off by
	// default so recovery code sees real committed values.
	TornValues bool
	// RecoveryCrashes additionally injects crashes inside the recovery
	// execution (multi-crash scenarios, §6 exec stack), exploring up to
	// this many recovery crash points per pre-crash point. 0 disables.
	RecoveryCrashes int
	// DetectorOff runs the bare infrastructure without race checks — the
	// paper's "Jaaru time" column in Table 5.
	DetectorOff bool
	// Trace records every execution's commit-order event log and attaches a
	// race witness (the race-revealing pre-crash prefix plus the post-crash
	// observation, §5.1) to each report.
	Trace bool
	// Checkpoint controls snapshot reuse of the pre-crash execution in
	// ModelCheck (default CheckpointOn; see CheckpointMode). Results are
	// byte-identical in both modes.
	Checkpoint CheckpointMode
	// DirectRun controls the solo-thread direct-run scheduler lease (default
	// DirectRunOn; see DirectRunMode). Results are byte-identical in both
	// modes.
	DirectRun DirectRunMode
	// Keyframe is the full-clone interval of the checkpoint layer's delta
	// snapshots (0 = DefaultKeyframe; 1 = every snapshot a full clone).
	// Results are byte-identical for every value.
	Keyframe int
	// Dedup controls crash-scenario memoization in ModelCheck (default
	// DedupOn; see DedupMode). Results are byte-identical in both modes.
	Dedup DedupMode
	// ClockIntern controls the interned copy-on-write clock representation
	// (default ClockInternOn; see ClockInternMode). Results are
	// byte-identical in both modes.
	ClockIntern ClockInternMode
	// MaxOps bounds the simulated operations of one execution (0 =
	// DefaultMaxOps); exceeding it panics with a diagnostic.
	MaxOps int
	// Budget, when non-nil, is a worker budget shared with other
	// concurrent Runs: probe runs and crash-scenario groups acquire a
	// token for the duration of their simulation, so the total in-flight
	// simulations across every Run sharing the budget never exceeds its
	// size (see Budget). nil is unlimited; results are identical either
	// way — the budget only sequences work, it never reorders the merge.
	Budget *Budget
	// EADR detects only the races possible on eADR platforms, where the
	// cache is in the persistence domain (§7.5). The persisted image is the
	// full committed state (flushing is a no-op for durability).
	EADR bool
	// Suppress lists field labels whose races are annotated away (§7.5).
	Suppress []string
	// Analyses selects the analysis passes to run over the simulation, by
	// registry name (internal/analysis), in order. Every pass observes the
	// same event stream and crash scenarios; each gets its own report in
	// Result.Passes. Empty selects the default, {"yashme"}. The first
	// selected pass is the primary: Result.Report aliases its report.
	Analyses []string
}

func (o Options) withDefaults() Options {
	if o.Executions <= 0 {
		o.Executions = 20
	}
	if o.Schedules <= 0 {
		o.Schedules = 1
	}
	if len(o.PersistPolicies) == 0 {
		o.PersistPolicies = []PersistPolicy{PersistLatest, PersistMinimal}
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.ReadChoiceCap <= 0 {
		o.ReadChoiceCap = DefaultReadChoiceCap
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.MaxOps <= 0 {
		o.MaxOps = DefaultMaxOps
	}
	if o.Keyframe <= 0 {
		o.Keyframe = DefaultKeyframe
	}
	if len(o.Analyses) == 0 {
		o.Analyses = []string{analysis.Yashme}
	}
	return o
}

// Stats aggregates operation counts across all executions of a run.
//
// The per-kind counters (Stores..RMWs) count the operations each crash
// scenario's executions performed, whether those operations were simulated or
// inherited from a snapshot — they are identical for CheckpointOn and
// CheckpointOff. SimulatedOps counts only the operations the engine actually
// stepped through the scheduler (including probe runs and Yields), so it
// shrinks when scenarios resume from snapshots: the ratio between the two
// modes is the checkpoint layer's measured win.
//
// Handoffs and DirectOps split SimulatedOps by how each operation reached
// the scheduler: Handoffs paid the full handshake (two channel round trips
// plus a goroutine switch), DirectOps ran inline under a solo-thread
// direct-run lease (Options.DirectRun). Handoffs + DirectOps ==
// SimulatedOps always; like SimulatedOps, both counters vary with the
// DirectRun and Checkpoint modes while every other counter does not.
type Stats struct {
	Stores  int64 `json:"stores"`
	Loads   int64 `json:"loads"`
	Flushes int64 `json:"flushes"`
	Fences  int64 `json:"fences"`
	RMWs    int64 `json:"rmws"`
	// SimulatedOps is the number of operations actually simulated (stepped
	// through the scheduler), across probes and scenarios.
	SimulatedOps int64 `json:"simulated_ops"`
	// Handoffs counts simulated operations that paid the scheduler
	// handshake.
	Handoffs int64 `json:"handoffs"`
	// DirectOps counts simulated operations that ran under a direct-run
	// lease, with no handoff.
	DirectOps int64 `json:"direct_ops"`
	// SnapshotBytes estimates the bytes retained by checkpoint captures
	// (keyframe clones, journal segments, the per-schedule shared image and
	// rng copies). Like SimulatedOps it measures cost, not workload
	// behavior, so it varies with Checkpoint/Keyframe while the per-kind
	// counters do not.
	SnapshotBytes int64 `json:"snapshot_bytes"`
	// JournalOps counts the detector mutations recorded into delta-
	// checkpoint journals across probe runs.
	JournalOps int64 `json:"journal_ops"`
	// DedupedScenarios counts crash scenarios whose recovery verdict was
	// reused from a byte-identical earlier crash point instead of being
	// re-simulated (DedupMode).
	DedupedScenarios int64 `json:"deduped_scenarios"`
	// ClockInterned counts clock snapshots appended to detector clock
	// arenas: distinct deduplicated snapshots with interning on, one per
	// materialized clock copy with it off (ClockInternMode). A cost
	// counter, like SnapshotBytes.
	ClockInterned int64 `json:"clock_interned"`
	// EpochHits counts clock joins answered entirely by the packed-epoch
	// containment compare — the joins the interned representation skips.
	// Zero with interning off (the fast path is disabled there).
	EpochHits int64 `json:"epoch_hits"`
	// EpochMisses counts clock joins that fell through the epoch compare
	// to a component-wise merge and re-intern.
	EpochMisses int64 `json:"epoch_misses"`
}

func (s *Stats) add(o Stats) {
	s.Stores += o.Stores
	s.Loads += o.Loads
	s.Flushes += o.Flushes
	s.Fences += o.Fences
	s.RMWs += o.RMWs
	s.SimulatedOps += o.SimulatedOps
	s.Handoffs += o.Handoffs
	s.DirectOps += o.DirectOps
	s.SnapshotBytes += o.SnapshotBytes
	s.JournalOps += o.JournalOps
	s.DedupedScenarios += o.DedupedScenarios
	s.ClockInterned += o.ClockInterned
	s.EpochHits += o.EpochHits
	s.EpochMisses += o.EpochMisses
}

// PointStat records how many distinct races the scenarios crashing before
// one particular flush/fence point revealed. The histogram quantifies the
// paper's detection-window discussion (Figures 5 and 6): with the prefix
// expansion, most crash points reveal the races; without it, only the
// narrow window between a store and its flush does.
type PointStat struct {
	// Point is the 1-based crash point (0 = crash at completion).
	Point int `json:"point"`
	// Races is the number of deduplicated races found by scenarios that
	// crashed before this point (max across persist policies).
	Races int `json:"races"`
}

// PassResult is one analysis pass's outcome within a Result: the pass's
// registry name and its deduplicated race reports, merged across every
// scenario of the run in spec order.
type PassResult struct {
	// Name is the pass's registry name ("yashme", "xfd", ...).
	Name string
	// Report holds the pass's deduplicated races (and benign races).
	Report *report.Set
}

// Result is the outcome of a Run.
type Result struct {
	// Report holds the primary pass's deduplicated persistency races (and
	// benign races). It aliases Passes[0].Report — the first selected
	// analysis — so single-pass callers never touch Passes.
	Report *report.Set
	// Passes holds each selected analysis pass's report, in Options.Analyses
	// order.
	Passes []PassResult
	// ExecutionsRun counts complete pre-crash+post-crash scenario runs.
	ExecutionsRun int
	// CrashPoints is the number of flush/fence crash points in the probed
	// schedule (ModelCheck) or the sum over random executions (RandomMode).
	CrashPoints int
	// Stats aggregates memory-operation counts.
	Stats Stats
	// Window is the per-crash-point race histogram (ModelCheck only).
	Window []PointStat
	// Cancelled reports that the run's context was done before exploration
	// completed: the Result is a well-formed partial result — every merged
	// scenario ran to completion and reports/stats are internally
	// consistent, but unexplored crash points were skipped, so races may be
	// missing. Always false for Run (background context).
	Cancelled bool
}

// newResult builds an empty Result shaped for the run's analysis selection
// (opts must already carry defaults).
func newResult(opts Options) *Result {
	res := &Result{Passes: make([]PassResult, len(opts.Analyses))}
	for i, name := range opts.Analyses {
		res.Passes[i] = PassResult{Name: name, Report: report.NewSet()}
	}
	res.Report = res.Passes[0].Report
	return res
}

// Run explores a program per the options and returns the merged reports.
// makeProg must return a fresh program instance per call (scenario state is
// captured in the program's closures); with Options.Workers > 1 (the
// default follows GOMAXPROCS) it is called from several goroutines
// concurrently. Exploration is layered — plan, execute, merge (see
// explore.go) — and the Result is byte-identical for every worker count.
func Run(makeProg func() pmm.Program, opts Options) *Result {
	return RunContext(context.Background(), makeProg, opts)
}

// RunContext is Run under a cancellation context: the context is checked
// at scenario and checkpoint-resume boundaries — before each probe run,
// before each crash scenario is simulated or resumed, and between the
// read-choice and recovery-crash expansions of a scenario group — so a
// cancel or deadline stops the run within one scenario's worth of work.
// A scenario that already started always runs to completion (partial
// simulations would leave ill-formed detector state), and everything
// merged before the cancellation is kept: the Result is a well-formed
// partial result with Cancelled set. With a background context the
// behavior — and the Result, byte for byte — is identical to Run.
func RunContext(ctx context.Context, makeProg func() pmm.Program, opts Options) *Result {
	opts = opts.withDefaults()
	if opts.Mode != ModelCheck && opts.Mode != RandomMode {
		panic(fmt.Sprintf("engine: unknown mode %d", opts.Mode))
	}
	res := newResult(opts)
	runExplore(ctx, makeProg, opts, res)
	if ctx.Err() != nil {
		res.Cancelled = true
	}
	return res
}

// RunOne executes exactly one scenario: the workload runs to the given
// crash point (0 = completion) under the persist policy and scheduler seed,
// then recovery runs once. Used for functional verification and for the
// paper's single-execution comparisons (Table 5).
func RunOne(makeProg func() pmm.Program, opts Options, crashPoint int, pp PersistPolicy, seed int64) *Result {
	opts = opts.withDefaults()
	res := newResult(opts)
	sc := newScenario(makeProg, opts, plan{0: crashPoint}, pp, seed)
	sc.run()
	res.absorb(sc)
	res.CrashPoints = sc.crashPoints[0]
	return res
}

// DefaultReadChoiceCap is the Options.ReadChoiceCap applied when the field
// is zero: the bound on extra read-exploration scenarios per crash point.
const DefaultReadChoiceCap = 24

func (res *Result) absorb(sc *scenario) {
	for i, r := range sc.stack.Reports() {
		res.Passes[i].Report.Merge(r)
	}
	res.ExecutionsRun++
	// Same harvest as specResult.absorb: fold the scenario's clock-arena
	// counters into its stats before aggregating (TakeCounters resets, so
	// the work is never double-counted).
	ci, eh, em := sc.det.ClockArena().TakeCounters()
	sc.stats.ClockInterned += ci
	sc.stats.EpochHits += eh
	sc.stats.EpochMisses += em
	res.Stats.add(sc.stats)
	tso.Retire(sc.machine)
	sc.machine = nil
}
