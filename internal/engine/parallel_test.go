package engine_test

// External test package: exercises the plan/execute/merge determinism
// contract through the public API on the real benchmarks, which must not
// be imported from inside package engine.

import (
	"reflect"
	"testing"

	"yashme/internal/engine"
	"yashme/internal/pmdk"
	"yashme/internal/pmm"
	"yashme/internal/progs/cceh"
	"yashme/internal/progs/fastfair"
)

// The determinism contract: Run's Result is byte-identical for every
// worker count. Each case runs with Workers=1 (fully sequential) and
// Workers=8, with checkpointing both on and off, and compares every
// observable field per checkpoint mode. The suite runs under -race in CI,
// so it also proves the pool shares no scenario state — including the
// snapshot templates every worker of a schedule resumes from.
func TestParallelRunMatchesSequential(t *testing.T) {
	cases := []struct {
		name string
		mk   func() pmm.Program
		opts engine.Options
	}{
		{"cceh/model-check", cceh.New(4, nil),
			engine.Options{Mode: engine.ModelCheck, Prefix: true}},
		{"cceh/model-check/explore-reads", cceh.New(3, nil),
			engine.Options{Mode: engine.ModelCheck, Prefix: true, ExploreReads: true, MaxCrashPoints: 30}},
		{"cceh/random", cceh.New(4, nil),
			engine.Options{Mode: engine.RandomMode, Prefix: true, Seed: 3, Executions: 8}},
		{"fastfair/model-check", fastfair.New(7, nil),
			engine.Options{Mode: engine.ModelCheck, Prefix: true}},
		{"fastfair/model-check/recovery-crashes", fastfair.New(5, nil),
			engine.Options{Mode: engine.ModelCheck, Prefix: true, RecoveryCrashes: 2, MaxCrashPoints: 25}},
		{"fastfair/random", fastfair.New(7, nil),
			engine.Options{Mode: engine.RandomMode, Prefix: true, Seed: 11, Executions: 8}},
		{"pmdk/model-check", pmdk.NewBTreeProg(4, nil),
			engine.Options{Mode: engine.ModelCheck, Prefix: true, MaxCrashPoints: 40}},
		{"pmdk/random", pmdk.NewPMDKProg(3, nil),
			engine.Options{Mode: engine.RandomMode, Prefix: true, Seed: 1, Executions: 10}},
	}
	checkpoints := []struct {
		name string
		mode engine.CheckpointMode
	}{
		{"checkpoint-on", engine.CheckpointOn},
		{"checkpoint-off", engine.CheckpointOff},
	}
	for _, tc := range cases {
		for _, ck := range checkpoints {
			tc, ck := tc, ck
			t.Run(tc.name+"/"+ck.name, func(t *testing.T) {
				t.Parallel()
				seqOpts, parOpts := tc.opts, tc.opts
				seqOpts.Workers, seqOpts.Checkpoint = 1, ck.mode
				parOpts.Workers, parOpts.Checkpoint = 8, ck.mode
				seq := engine.Run(tc.mk, seqOpts)
				par := engine.Run(tc.mk, parOpts)

				if s, p := seq.Report.String(), par.Report.String(); s != p {
					t.Errorf("reports diverge:\nWorkers=1:\n%s\nWorkers=8:\n%s", s, p)
				}
				if !reflect.DeepEqual(seq.Window, par.Window) {
					t.Errorf("windows diverge:\nWorkers=1: %v\nWorkers=8: %v", seq.Window, par.Window)
				}
				if seq.Stats != par.Stats {
					t.Errorf("stats diverge:\nWorkers=1: %+v\nWorkers=8: %+v", seq.Stats, par.Stats)
				}
				if seq.ExecutionsRun != par.ExecutionsRun {
					t.Errorf("executions diverge: %d vs %d", seq.ExecutionsRun, par.ExecutionsRun)
				}
				if seq.CrashPoints != par.CrashPoints {
					t.Errorf("crash points diverge: %d vs %d", seq.CrashPoints, par.CrashPoints)
				}
				if seq.Report.RawCount != par.Report.RawCount {
					t.Errorf("raw race counts diverge: %d vs %d", seq.Report.RawCount, par.Report.RawCount)
				}
			})
		}
	}
}
