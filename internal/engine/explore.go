// Exploration is split into three explicit layers so the thousands of
// independent crash scenarios a run comprises (the paper "systematically
// injects crashes before every clflush or fence operation", §4) can execute
// on a parallel worker pool without giving up reproducibility:
//
//	plan    — turn Options into a stream of self-contained scenarioSpec
//	          values (probe runs, crash-point clamping, persist-policy
//	          fan-out, random-mode seed derivation all happen here);
//	execute — a bounded pool of Options.Workers goroutines runs each spec
//	          as an isolated scenario group (no state is shared between
//	          specs: every scenario owns its program instance, heap,
//	          detector, TSO machine and rng);
//	merge   — results are absorbed strictly in spec-index order, so the
//	          final Result (races, Stats, Window, ExecutionsRun) is
//	          byte-identical between Workers=1 and Workers=N.
//
// The determinism contract: a spec's outcome is a pure function of
// (makeProg, opts, spec), and the merge is a fold over outcomes in spec
// order. Completion order therefore cannot influence the Result.
package engine

import (
	"context"
	"math/rand"
	"sort"
	"sync"

	"yashme/internal/pmm"
	"yashme/internal/report"
	"yashme/internal/tso"
	"yashme/internal/vclock"
)

// vclockSeqs is the per-line candidate list type (alias keeps the scenario
// struct readable).
type vclockSeqs = []vclock.Seq

// scenarioSpec is one self-contained unit of exploration work: the primary
// crash scenario plus the expansions (read-choice exploration, recovery
// crashes) that depend on its runtime state. Everything a worker needs is
// in the spec; nothing is shared between specs.
type scenarioSpec struct {
	// idx is the spec's position in plan-enumeration order; the merge
	// layer absorbs results strictly in idx order.
	idx int
	// scheduleIdx is the model-check schedule the spec belongs to
	// (RandomMode: the execution index).
	scheduleIdx int
	// crashPoint is plan[0]: the 1-based flush/fence point of the primary
	// crash (0 = crash at completion).
	crashPoint int
	// plan is the full crash plan (may carry a recovery crash in
	// RandomMode).
	plan plan
	// persist is the persisted-image policy of the primary scenario.
	persist PersistPolicy
	// seed seeds the scenario's scheduler and persist randomness.
	seed int64
	// snap, when non-nil, is the checkpoint the primary scenario resumes
	// from instead of re-simulating the pre-crash prefix (checkpoint.go).
	// It is a read-only template, shared with every other spec of the same
	// schedule; resuming clones it.
	snap *snapshot
	// exploreReads runs the Jaaru-style read-choice expansions after the
	// primary scenario (set on the first persist policy only, mirroring
	// the sequential exploration order).
	exploreReads bool
	// expandRecovery probes the primary scenario's recovery crash points
	// and runs up to Options.RecoveryCrashes follow-up scenarios.
	expandRecovery bool
	// window marks specs that contribute a PointStat to Result.Window
	// (first model-check schedule only).
	window bool
	// dedupOf, when non-zero, marks the spec a duplicate under crash-image
	// memoization: its captured state is byte-identical to an earlier
	// point's (checkpoint.go), so instead of running, its result is
	// synthesized from the spec at index dedupOf-1 (the representative with
	// the same persist policy). The encoding reserves 0 for "not a
	// duplicate" so the zero-value spec stays valid.
	dedupOf int
	// retain marks specs whose results later duplicates synthesize from;
	// the merge layer keeps them after folding.
	retain bool
}

// specResult is the outcome of one spec: a private report set per analysis
// pass (parallel to Options.Analyses) plus the counters the merge layer
// folds into the Result.
type specResult struct {
	spec       scenarioSpec
	reports    []*report.Set
	executions int
	stats      Stats
	// windowRaces is the largest per-scenario deduplicated race count
	// among the window-contributing scenarios of the spec (the primary
	// run and its read-choice expansions; recovery crashes are excluded,
	// as in the sequential exploration).
	windowRaces int
	// panicked carries a workload panic out of the worker so the merge
	// layer can re-raise it deterministically on the caller's goroutine.
	panicked any
	// skipped marks a spec that never simulated because the run's context
	// was done before its turn: the merge layer drops it (nothing to fold)
	// and duplicates that named it as their representative are dropped
	// with it.
	skipped bool
}

// planSummary is what the plan layer learns from its probe runs.
type planSummary struct {
	// crashPoints is Result.CrashPoints: the probed point count of the
	// first schedule (ModelCheck) or the sum over executions (RandomMode).
	crashPoints int
	// simulatedOps counts the operations the probe runs simulated; folded
	// into Result.Stats.SimulatedOps (specs count their own). handoffs and
	// directOps carry its scheduler-path split the same way.
	simulatedOps int64
	handoffs     int64
	directOps    int64
	// snapshotBytes/journalOps carry the probes' checkpoint-capture costs
	// (the probe is where snapshots are taken); folded into Result.Stats
	// the same way.
	snapshotBytes int64
	journalOps    int64
	// clockInterned/epochHits/epochMisses carry the probes' clock-arena
	// activity (the probe simulates the full pre-crash prefix); folded into
	// Result.Stats the same way.
	clockInterned int64
	epochHits     int64
	epochMisses   int64
	// panicked carries a probe-run panic.
	panicked any
}

// runExplore is the orchestrator behind Run: plan on one goroutine,
// execute on the worker pool, merge in spec order on the caller.
//
// Workers == 1 short-circuits the pool entirely: planning, execution and
// merging interleave on the caller's goroutine (probe, spec, probe, spec,
// …), so no two program instances ever run concurrently — the contract
// that lets programs with shared observation state opt out of parallelism.
func runExplore(ctx context.Context, makeProg func() pmm.Program, opts Options, res *Result) {
	workers := opts.Workers
	if workers == 1 {
		var done map[int]*specResult
		sum := planSpecs(ctx, makeProg, opts, func(spec scenarioSpec) {
			if spec.dedupOf > 0 {
				// Duplicate crash point: reuse the representative's verdict
				// instead of simulating. The representative has a lower
				// index, so it has already run and been retained — unless
				// cancellation skipped it, in which case the duplicate is
				// skipped with it.
				rep := done[spec.dedupOf-1]
				if rep == nil {
					return
				}
				res.mergeSpec(synthesizeDedup(rep, spec))
				return
			}
			if !opts.Budget.AcquireCtx(ctx) {
				return // cancelled before this scenario's turn
			}
			r := runSpec(ctx, makeProg, opts, spec)
			opts.Budget.Release()
			if r.panicked != nil {
				panic(r.panicked)
			}
			if spec.retain {
				if done == nil {
					done = make(map[int]*specResult)
				}
				done[spec.idx] = r
			}
			res.mergeSpec(r)
		})
		res.CrashPoints = sum.crashPoints
		res.Stats.SimulatedOps += sum.simulatedOps
		res.Stats.Handoffs += sum.handoffs
		res.Stats.DirectOps += sum.directOps
		res.Stats.SnapshotBytes += sum.snapshotBytes
		res.Stats.JournalOps += sum.journalOps
		res.Stats.ClockInterned += sum.clockInterned
		res.Stats.EpochHits += sum.epochHits
		res.Stats.EpochMisses += sum.epochMisses
		return
	}
	specCh := make(chan scenarioSpec, workers)
	sumCh := make(chan planSummary, 1)

	// Plan layer. Probe runs execute here, overlapping with the pool.
	go func() {
		var sum planSummary
		defer func() {
			if p := recover(); p != nil {
				sum.panicked = p
			}
			close(specCh)
			sumCh <- sum
		}()
		sum = planSpecs(ctx, makeProg, opts, func(spec scenarioSpec) { specCh <- spec })
	}()

	// Execute layer: a bounded pool pulls specs and runs them in
	// isolation.
	resCh := make(chan *specResult, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for spec := range specCh {
				if spec.dedupOf > 0 {
					// Duplicate crash point: nothing to simulate — the
					// merge layer synthesizes the result from the retained
					// representative (which it holds; workers do not). No
					// budget token: the placeholder costs nothing.
					resCh <- &specResult{spec: spec}
					continue
				}
				// The token covers only the simulation, not the send:
				// a blocked merge can never starve other Runs sharing
				// the budget. A cancelled run stops acquiring — the
				// remaining specs drain as skipped placeholders so the
				// merge layer still sees every index.
				if !opts.Budget.AcquireCtx(ctx) {
					resCh <- &specResult{spec: spec, skipped: true}
					continue
				}
				r := runSpec(ctx, makeProg, opts, spec)
				opts.Budget.Release()
				resCh <- r
			}
		}()
	}
	go func() {
		wg.Wait()
		close(resCh)
	}()

	// Merge layer: absorb in spec-index order regardless of completion
	// order.
	var specPanic any
	specPanicIdx := -1
	pending := make(map[int]*specResult)
	var done map[int]*specResult
	next := 0
	for r := range resCh {
		pending[r.spec.idx] = r
		for {
			rr, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			next++
			if rr.spec.dedupOf > 0 {
				// The representative's index is lower, so it was folded —
				// and retained — before this placeholder came up. A
				// representative skipped by cancellation skips its
				// duplicates too.
				if rep := done[rr.spec.dedupOf-1]; rep == nil || rep.skipped {
					rr = &specResult{spec: rr.spec, skipped: true}
				} else {
					rr = synthesizeDedup(rep, rr.spec)
				}
			}
			if rr.spec.retain {
				// Retained even when panicked, so a later duplicate finds
				// it and inherits the panic instead of dereferencing nil.
				if done == nil {
					done = make(map[int]*specResult)
				}
				done[rr.spec.idx] = rr
			}
			if rr.panicked != nil {
				if specPanicIdx < 0 {
					specPanic, specPanicIdx = rr.panicked, rr.spec.idx
				}
				continue
			}
			if rr.skipped {
				continue
			}
			res.mergeSpec(rr)
		}
	}
	sum := <-sumCh

	// Re-raise panics with the sequential engine's precedence: the
	// lowest-index spec panic fires before a later probe panic (the
	// planner only emits a spec after all earlier probes succeeded).
	if specPanic != nil {
		panic(specPanic)
	}
	if sum.panicked != nil {
		panic(sum.panicked)
	}
	res.CrashPoints = sum.crashPoints
	res.Stats.SimulatedOps += sum.simulatedOps
	res.Stats.Handoffs += sum.handoffs
	res.Stats.DirectOps += sum.directOps
	res.Stats.SnapshotBytes += sum.snapshotBytes
	res.Stats.JournalOps += sum.journalOps
	res.Stats.ClockInterned += sum.clockInterned
	res.Stats.EpochHits += sum.epochHits
	res.Stats.EpochMisses += sum.epochMisses
}

// synthesizeDedup builds the result a duplicate spec would have produced,
// from its representative's retained result. Soundness: the duplicate's
// captured state is byte-identical to the representative's (checkpoint.go
// confirms every match with a full compare), so resuming it would replay
// the exact same image derivation, recovery execution and race verdicts —
// the report set, execution count and window contribution are the
// representative's, shared (Set.Merge never mutates its argument, and its
// fold produces the same bytes a private equal copy would). The per-kind
// operation counts differ only in the pre-crash prefix, which both specs
// carry in their snapshots: duplicate = own prefix + (representative total
// − representative prefix). The cost counters are zeroed — nothing was
// simulated, captured or journaled for this spec — and DedupedScenarios
// records the skip.
func synthesizeDedup(rep *specResult, spec scenarioSpec) *specResult {
	out := &specResult{
		spec:        spec,
		reports:     rep.reports,
		executions:  rep.executions,
		windowRaces: rep.windowRaces,
		panicked:    rep.panicked,
	}
	q, p := spec.snap.stats, rep.spec.snap.stats
	out.stats = q
	out.stats.Stores += rep.stats.Stores - p.Stores
	out.stats.Loads += rep.stats.Loads - p.Loads
	out.stats.Flushes += rep.stats.Flushes - p.Flushes
	out.stats.Fences += rep.stats.Fences - p.Fences
	out.stats.RMWs += rep.stats.RMWs - p.RMWs
	out.stats.SimulatedOps = 0
	out.stats.Handoffs = 0
	out.stats.DirectOps = 0
	out.stats.SnapshotBytes = 0
	out.stats.JournalOps = 0
	out.stats.ClockInterned = 0
	out.stats.EpochHits = 0
	out.stats.EpochMisses = 0
	out.stats.DedupedScenarios = 1
	return out
}

// mergeSpec folds one spec outcome into the Result. Called in spec-index
// order only.
func (res *Result) mergeSpec(r *specResult) {
	for i, rep := range r.reports {
		res.Passes[i].Report.Merge(rep)
	}
	res.ExecutionsRun += r.executions
	res.Stats.add(r.stats)
	if !r.spec.window {
		return
	}
	// Window specs arrive grouped by crash point, points ascending; the
	// persist policies of one point fold into a single PointStat.
	if len(res.Window) == 0 || res.Window[len(res.Window)-1].Point != r.spec.crashPoint {
		res.Window = append(res.Window, PointStat{Point: r.spec.crashPoint})
	}
	if last := &res.Window[len(res.Window)-1]; r.windowRaces > last.Races {
		last.Races = r.windowRaces
	}
}

// planSpecs dispatches to the mode's enumerator. emit is called once per spec,
// in spec-index order; in the parallel path it feeds the pool's channel, in
// the sequential path it runs the spec inline. Probe runs — the planner's own
// simulations — check the context before starting: a cancelled plan stops
// enumerating and returns the summary of the probes that did run.
func planSpecs(ctx context.Context, makeProg func() pmm.Program, opts Options, emit func(scenarioSpec)) planSummary {
	if opts.Mode == ModelCheck {
		return planModelCheck(ctx, makeProg, opts, emit)
	}
	return planRandom(ctx, makeProg, opts, emit)
}

// planModelCheck enumerates the model-checking specs: per schedule, a probe
// run counts the flush/fence points of the deterministic schedule, then one
// spec is emitted per (crash point, persist policy) — crash point 0 is the
// power loss at completion.
//
// With checkpointing on, the probe doubles as the one full pre-crash
// simulation of the schedule: it captures a snapshot at every crash point,
// and each emitted spec carries its point's snapshot. Snapshots are captured
// before the crash's persist policy matters, so one probe (run under
// PersistLatest, like always) serves every policy fan-out.
func planModelCheck(ctx context.Context, makeProg func() pmm.Program, opts Options, emit func(scenarioSpec)) planSummary {
	var sum planSummary
	idx := 0
	for sched := 0; sched < opts.Schedules; sched++ {
		seed := opts.Seed + int64(sched)
		probe := newScenario(makeProg, opts, plan{}, PersistLatest, seed)
		var sink *snapshotSink
		if opts.Checkpoint == CheckpointOn {
			sink = newSnapshotSink(0, opts.MaxCrashPoints)
			sink.configureProbe(opts, probe.det)
			probe.capture = sink
		}
		if !opts.Budget.AcquireCtx(ctx) {
			return sum // cancelled before this schedule's probe
		}
		probe.run()
		opts.Budget.Release()
		sum.simulatedOps += probe.stats.SimulatedOps
		sum.handoffs += probe.stats.Handoffs
		sum.directOps += probe.stats.DirectOps
		sum.snapshotBytes += probe.stats.SnapshotBytes
		sum.journalOps += probe.stats.JournalOps
		ci, eh, em := probe.det.ClockArena().TakeCounters()
		sum.clockInterned += ci
		sum.epochHits += eh
		sum.epochMisses += em
		tso.Retire(probe.machine)
		probe.machine = nil
		n := probe.crashPoints[0]
		if sched == 0 {
			sum.crashPoints = n
		}
		limit := n
		if opts.MaxCrashPoints > 0 && limit > opts.MaxCrashPoints {
			limit = opts.MaxCrashPoints
		}
		// Crash-image memoization: repPoints marks the points at least one
		// duplicate maps to (their specs are retained for synthesis),
		// firstIdx records the first spec index of each such point as it is
		// emitted. Points ascend, and a duplicate's representative is always
		// an earlier point, so firstIdx is populated before it is needed.
		var repPoints map[int]bool
		var firstIdx map[int]int
		if sink != nil && len(sink.dups) > 0 {
			repPoints = make(map[int]bool, len(sink.dups))
			firstIdx = make(map[int]int, len(sink.dups))
			for _, rp := range sink.dups {
				repPoints[rp] = true
			}
		}
		for c := 0; c <= limit; c++ {
			var snap *snapshot
			if sink != nil {
				snap = sink.snaps[c]
			}
			dedupBase := 0
			if repPoints != nil {
				if repPoints[c] {
					firstIdx[c] = idx
				}
				if rp, ok := sink.dups[c]; ok && snap != nil && sink.snaps[rp] != nil {
					dedupBase = firstIdx[rp] + 1
				}
			}
			for ppIdx, pp := range opts.PersistPolicies {
				spec := scenarioSpec{
					idx:            idx,
					scheduleIdx:    sched,
					crashPoint:     c,
					plan:           plan{0: c},
					persist:        pp,
					seed:           seed,
					snap:           snap,
					exploreReads:   opts.ExploreReads && ppIdx == 0,
					expandRecovery: opts.RecoveryCrashes > 0,
					window:         sched == 0,
					retain:         repPoints != nil && repPoints[c],
				}
				if dedupBase > 0 {
					// Map to the representative spec with the same persist
					// policy: policies fan out in the same order at every
					// point, so the offsets line up.
					spec.dedupOf = dedupBase + ppIdx
				}
				emit(spec)
				idx++
			}
		}
	}
	return sum
}

// planRandom enumerates the random-mode specs. The top-level rng stream is
// inherently sequential — the draw for execution i+1 depends on execution
// i's probed point count — so the probes run here, on the plan goroutine,
// while the pool executes earlier specs; the crash scenarios themselves
// fan out across the workers.
func planRandom(ctx context.Context, makeProg func() pmm.Program, opts Options, emit func(scenarioSpec)) planSummary {
	var sum planSummary
	rng := rand.New(rand.NewSource(opts.Seed))
	for i := 0; i < opts.Executions; i++ {
		schedSeed := rng.Int63()
		// Probe with this schedule to count its crash points, then emit
		// the identical schedule crashing before a random one of them.
		probe := newScenario(makeProg, opts, plan{}, PersistRandom, schedSeed)
		if !opts.Budget.AcquireCtx(ctx) {
			return sum // cancelled before this execution's probe
		}
		probe.run()
		opts.Budget.Release()
		sum.simulatedOps += probe.stats.SimulatedOps
		sum.handoffs += probe.stats.Handoffs
		sum.directOps += probe.stats.DirectOps
		ci, eh, em := probe.det.ClockArena().TakeCounters()
		sum.clockInterned += ci
		sum.epochHits += eh
		sum.epochMisses += em
		tso.Retire(probe.machine)
		probe.machine = nil
		n := probe.crashPoints[0]
		sum.crashPoints += n
		c := 0
		if n > 0 {
			c = 1 + rng.Intn(n)
		}
		p := plan{0: c}
		if opts.RecoveryCrashes > 0 && rng.Intn(2) == 0 {
			p[1] = 1 + rng.Intn(opts.RecoveryCrashes)
		}
		emit(scenarioSpec{
			idx:         i,
			scheduleIdx: i,
			crashPoint:  c,
			plan:        p,
			persist:     PersistRandom,
			seed:        schedSeed,
		})
	}
	return sum
}

// runSpec executes one spec in isolation: the primary scenario, then the
// read-choice expansions and recovery-crash follow-ups that depend on its
// runtime state. The internal order matches the sequential exploration
// exactly, so the spec's private report preserves first-seen order.
//
// When the spec carries a checkpoint, every scenario in the group resumes
// from it rather than re-simulating the pre-crash prefix, and the primary
// scenario in turn checkpoints its own recovery execution so the multi-crash
// follow-ups resume from the recovery prefix — the same mechanism one level
// down the execution stack.
//
// The context gates the expansions only: the primary scenario always runs
// (the caller acquired its budget token with the context still live), but a
// cancellation observed between it and a read-choice or recovery-crash
// follow-up stops the group there, leaving the already-absorbed scenarios as
// the spec's partial contribution.
func runSpec(ctx context.Context, makeProg func() pmm.Program, opts Options, spec scenarioSpec) (out *specResult) {
	out = &specResult{spec: spec, reports: make([]*report.Set, len(opts.Analyses))}
	for i := range out.reports {
		out.reports[i] = report.NewSet()
	}
	defer func() {
		if p := recover(); p != nil {
			out.panicked = p
		}
	}()

	var recSink *snapshotSink
	if spec.expandRecovery && opts.Checkpoint == CheckpointOn {
		recSink = newSnapshotSink(1, opts.RecoveryCrashes)
	}
	sc := runPlanned(makeProg, opts, spec.snap, spec.plan, spec.persist, spec.seed, func(sc *scenario) {
		if spec.exploreReads {
			sc.lineChoices = make(map[pmm.Line]vclockSeqs)
		}
		sc.capture = recSink
	})
	out.windowRaces = sc.stack.PrimaryReport().Count()
	out.absorb(sc)

	if spec.exploreReads {
		runReadChoices(ctx, makeProg, opts, spec, sc.lineChoices, out)
	}
	if spec.expandRecovery {
		m := sc.crashPoints[1]
		if m > opts.RecoveryCrashes {
			m = opts.RecoveryCrashes
		}
		for rc := 1; rc <= m; rc++ {
			if ctx.Err() != nil {
				break // checkpoint-resume boundary: stop expanding
			}
			var rsnap *snapshot
			if recSink != nil {
				rsnap = recSink.snaps[rc]
			}
			rsc := runPlanned(makeProg, opts, rsnap, plan{0: spec.crashPoint, 1: rc}, spec.persist, spec.seed, nil)
			out.absorb(rsc)
		}
	}
	return out
}

// runReadChoices re-runs a crash point once per (line, persist-point) pair,
// pinning that line to that choice so the post-crash execution actually
// observes every candidate value (Jaaru's constraint-based read
// exploration, bounded by Options.ReadChoiceCap per crash point).
func runReadChoices(ctx context.Context, makeProg func() pmm.Program, opts Options, spec scenarioSpec,
	lineChoices map[pmm.Line]vclockSeqs, out *specResult) {

	// Deterministic line order.
	var lines []pmm.Line
	for l := range lineChoices {
		lines = append(lines, l)
	}
	sort.Slice(lines, func(i, j int) bool { return lines[i] < lines[j] })
	budget := opts.ReadChoiceCap
	for _, line := range lines {
		for _, choice := range lineChoices[line] {
			if budget == 0 || ctx.Err() != nil {
				return
			}
			budget--
			sc := runPlanned(makeProg, opts, spec.snap, plan{0: spec.crashPoint}, PersistLatest, spec.seed, func(sc *scenario) {
				sc.persistOverride = map[pmm.Line]vclock.Seq{line: choice}
			})
			if n := sc.stack.PrimaryReport().Count(); n > out.windowRaces {
				out.windowRaces = n
			}
			out.absorb(sc)
		}
	}
}

func (r *specResult) absorb(sc *scenario) {
	for i, rep := range sc.stack.Reports() {
		r.reports[i].Merge(rep)
	}
	r.executions++
	// Harvest the scenario's clock-arena activity. TakeCounters resets on
	// read, and a resumed scenario's cloned arena starts its counters at
	// zero, so each scenario contributes exactly its own interns and epoch
	// compares (the machine shares the detector's arena — one harvest point
	// covers both).
	ci, eh, em := sc.det.ClockArena().TakeCounters()
	sc.stats.ClockInterned += ci
	sc.stats.EpochHits += eh
	sc.stats.EpochMisses += em
	r.stats.add(sc.stats)
	// The scenario's last machine is dead with the scenario; retire its
	// backings for the next scenario on any worker.
	tso.Retire(sc.machine)
	sc.machine = nil
}
