package engine

// Internal benchmarks for the checkpoint layer: the cost of one snapshot
// capture (the per-crash-point overhead the O(n) + C·clone bound pays).

import (
	"encoding/json"
	"os"
	"runtime"
	"testing"

	"yashme/internal/fuzzprog"
)

// BenchmarkSnapshotClone measures captureSnapshot on a scenario that has run
// a full pre-crash workload: one deep clone of the heap, detector, image and
// bookkeeping — the C·clone term of the checkpointed exploration.
func BenchmarkSnapshotClone(b *testing.B) {
	mk, _ := fuzzprog.Generate(fuzzprog.Default(), 7)
	opts := Options{Mode: ModelCheck, Prefix: true}.withDefaults()
	sc := newScenario(mk, opts, plan{}, PersistLatest, opts.Seed)
	sc.run()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = captureSnapshot(sc, 1)
	}
}

// BenchmarkSnapshotDelta measures a full probe run capturing at every crash
// point, full-clone keyframes (Keyframe=1) against the default delta
// journal, and writes the BENCH_delta.json artifact: per-mode wall-clock,
// allocation and capture-accounting numbers. The delta mode's
// snapshot_bytes is the headline — a journal segment replaces a detector
// clone at all but every K-th point.
func BenchmarkSnapshotDelta(b *testing.B) {
	type measurement struct {
		NsPerOp       int64  `json:"ns_per_op"`
		SnapshotBytes int64  `json:"snapshot_bytes"`
		JournalOps    int64  `json:"journal_ops"`
		AllocsPerOp   uint64 `json:"allocs_per_op"`
		BytesPerOp    uint64 `json:"bytes_per_op"`
	}
	mk, _ := fuzzprog.Generate(fuzzprog.Default(), 7)
	results := map[string]*measurement{}
	for _, mode := range []struct {
		name     string
		keyframe int
	}{
		{"full-clone", 1},
		{"delta", 0}, // 0 = engine default interval
	} {
		mode := mode
		m := &measurement{}
		results[mode.name] = m
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			opts := Options{Mode: ModelCheck, Prefix: true,
				Checkpoint: CheckpointOn, Keyframe: mode.keyframe}.withDefaults()
			var stats Stats
			var before, after runtime.MemStats
			runtime.ReadMemStats(&before)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sc := newScenario(mk, opts, plan{}, PersistLatest, opts.Seed)
				sink := newSnapshotSink(0, opts.MaxCrashPoints)
				sink.configureProbe(opts, sc.det)
				sc.capture = sink
				sc.run()
				stats = sc.stats
			}
			b.StopTimer()
			runtime.ReadMemStats(&after)
			b.ReportMetric(float64(stats.SnapshotBytes), "snapshot_bytes")
			b.ReportMetric(float64(stats.JournalOps), "journal_ops")
			m.NsPerOp = b.Elapsed().Nanoseconds() / int64(b.N)
			m.SnapshotBytes = stats.SnapshotBytes
			m.JournalOps = stats.JournalOps
			m.AllocsPerOp = (after.Mallocs - before.Mallocs) / uint64(b.N)
			m.BytesPerOp = (after.TotalAlloc - before.TotalAlloc) / uint64(b.N)
		})
	}
	artifact := struct {
		Benchmark string                  `json:"benchmark"`
		Modes     map[string]*measurement `json:"modes"`
		BytesWin  float64                 `json:"snapshot_bytes_ratio_full_over_delta"`
	}{Benchmark: "snapshot-delta", Modes: results}
	if d := results["delta"].SnapshotBytes; d > 0 {
		artifact.BytesWin = float64(results["full-clone"].SnapshotBytes) / float64(d)
	}
	data, err := json.MarshalIndent(artifact, "", "  ")
	if err != nil {
		b.Fatalf("marshal artifact: %v", err)
	}
	if err := os.WriteFile("BENCH_delta.json", append(data, '\n'), 0o644); err != nil {
		b.Fatalf("write BENCH_delta.json: %v", err)
	}
}
