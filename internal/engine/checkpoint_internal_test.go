package engine

// Internal benchmarks for the checkpoint layer: the cost of one snapshot
// capture (the per-crash-point overhead the O(n) + C·clone bound pays).

import (
	"testing"

	"yashme/internal/fuzzprog"
)

// BenchmarkSnapshotClone measures captureSnapshot on a scenario that has run
// a full pre-crash workload: one deep clone of the heap, detector, image and
// bookkeeping — the C·clone term of the checkpointed exploration.
func BenchmarkSnapshotClone(b *testing.B) {
	mk, _ := fuzzprog.Generate(fuzzprog.Default(), 7)
	opts := Options{Mode: ModelCheck, Prefix: true}.withDefaults()
	sc := newScenario(mk, opts, plan{}, PersistLatest, opts.Seed)
	sc.run()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = captureSnapshot(sc, 1)
	}
}
