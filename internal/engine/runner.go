package engine

import (
	"fmt"
	"math/rand"
	"sort"

	"yashme/internal/core"
	"yashme/internal/pmm"
	"yashme/internal/report"
	"yashme/internal/trace"
	"yashme/internal/tso"
	"yashme/internal/vclock"
)

// plan maps an execution index (0 = pre-crash workload, 1 = first recovery
// run, ...) to the 1-based flush/fence point to crash before. A missing or
// zero entry means the execution runs to completion (modelled as a power
// loss at completion: unflushed data is still at risk).
type plan map[int]int

// errCrash is the sentinel panic that unwinds simulated threads at a crash.
var errCrash = fmt.Errorf("engine: simulated crash")

// provCand is one candidate store a post-crash load could read from: the
// execution's stack index (== core.Execution.ID; candidates can span several
// executions in multi-crash scenarios) and the store's arena ref within it.
// Both survive Detector.Clone unchanged, so image provenance needs no
// remapping across checkpoint snapshots, and candidate identity is plain
// struct equality. The zero value means "no store".
type provCand struct {
	exec int32
	ref  core.StoreRef
}

// execOf resolves a candidate's execution against this scenario's detector.
func (sc *scenario) execOf(c provCand) *core.Execution { return sc.det.Executions()[c.exec] }

// storeOf resolves a candidate's record, nil for the zero candidate.
func (sc *scenario) storeOf(c provCand) *core.StoreRecord {
	if c.ref == 0 {
		return nil
	}
	return sc.execOf(c).ByRef(c.ref)
}

// imageEntry is the persisted-image record for one address after a crash:
// the value the post-crash machine is seeded with, plus the provenance the
// detector needs to check candidate reads. Setup-time initial values have
// no candidates (they are fully persisted by definition).
type imageEntry struct {
	val  uint64
	size int
	// candidates are the stores a post-crash load of this address could
	// read from, oldest first.
	candidates []provCand
	// chosen is the candidate the image committed to (zero-value = the
	// address kept its Setup-time initial value).
	chosen provCand
	// prevVal is the image value before the chosen store; used to
	// synthesize torn values.
	prevVal uint64
}

// scenario runs one crash plan end to end.
type scenario struct {
	opts     Options
	prog     pmm.Program
	heap     *pmm.Heap
	det      *core.Detector
	machine  *tso.Machine
	recorder *trace.Recorder // nil unless Options.Trace
	rng      *rand.Rand
	// rngSrc is rng's underlying source, wrapped to count raw draws so a
	// snapshot can record the stream position (checkpoint.go).
	rngSrc *countingSource
	// seed is the scheduler/persist seed; snapshots carry it so a resumed
	// scenario can rebuild the identical rng stream.
	seed    int64
	persist PersistPolicy

	crashPlan plan
	// crashPoints counts flush/fence points seen per execution index.
	crashPoints map[int]int
	execIdx     int
	crashed     bool

	// persistOverride pins specific cache lines to specific persist points
	// (read-choice exploration); lines not listed follow the policy.
	persistOverride map[pmm.Line]vclock.Seq
	// lineChoices records, per cache line, the candidate persist points the
	// first crash image offered — the read-exploration frontier.
	lineChoices map[pmm.Line][]vclock.Seq

	image map[pmm.Addr]imageEntry
	stats Stats
	// opCount is the watchdog counter for the current execution.
	opCount int

	// capture, when set, receives a snapshot at every flush/fence point of
	// the execution it watches (checkpoint.go). The planner sets it on probe
	// runs (execution 0); runSpec sets it on primary scenarios to checkpoint
	// the recovery execution for multi-crash follow-ups.
	capture *snapshotSink
	// liveThreads mirrors the scheduler's live-thread count; a snapshot
	// records it to replay the crash-unwind rng draws on resume.
	liveThreads int
	// setupAllocs/setupNext fingerprint the heap right after Setup; a resume
	// verifies a fresh Setup reproduced the same shape before grafting
	// snapshot state onto it.
	setupAllocs int
	setupNext   pmm.Addr
}

func newScenario(makeProg func() pmm.Program, opts Options, p plan, persist PersistPolicy, seed int64) *scenario {
	prog := makeProg()
	heap := pmm.NewHeap()
	if prog.Setup != nil {
		prog.Setup(heap)
	}
	benchmark := opts.Benchmark
	if benchmark == "" {
		benchmark = prog.Name
	}
	if opts.EADR {
		// eADR: every committed store is persistent; the image is always
		// the latest committed state.
		persist = PersistLatest
	}
	det := core.New(core.Config{
		Prefix:    opts.Prefix,
		EADR:      opts.EADR,
		Benchmark: benchmark,
		Labeler:   func(a pmm.Addr) string { return heap.LabelFor(a) },
		Suppress:  opts.Suppress,
	})
	src := newCountingSource(seed)
	sc := &scenario{
		opts:        opts,
		prog:        prog,
		heap:        heap,
		det:         det,
		rng:         rand.New(src),
		rngSrc:      src,
		seed:        seed,
		persist:     persist,
		crashPlan:   p,
		crashPoints: make(map[int]int),
		image:       make(map[pmm.Addr]imageEntry),
		setupAllocs: heap.AllocCount(),
		setupNext:   heap.NextFree(),
	}
	if opts.Trace {
		sc.recorder = trace.NewRecorder(det, heap.LabelFor)
	}
	for _, w := range heap.InitWrites() {
		sc.image[w.Addr] = imageEntry{val: w.Val, size: w.Size, prevVal: w.Val}
	}
	return sc
}

// run executes the full scenario: pre-crash workload, then recovery runs
// until one completes without crashing.
func (sc *scenario) run() {
	sc.startMachine()
	sc.runExecution(sc.prog.Workers)
	if sc.capture != nil && sc.capture.execIdx == 0 && sc.execIdx == 0 && !sc.crashed {
		// Completion snapshot (crash point 0): the pre-crash execution ran
		// to the end; the final power loss is simulated by finish.
		sc.capture.take(sc, 0)
	}
	sc.finish(sc.machine.CurSeq())
}

// finish runs the post-crash half of the scenario: the image derivation and
// the recovery executions, starting from a pre-crash execution that ended
// (crashed or completed) at crashSeq. Scenarios resumed from a snapshot
// enter here directly — the snapshot replaces the pre-crash simulation.
//
// Each prior execution ended in a crash (or in completion, treated as a
// final power loss); run the recovery threads until a recovery completes or
// the plan runs out of crashes.
func (sc *scenario) finish(crashSeq vclock.Seq) {
	recovery := sc.prog.RecoveryWorkers()
	if recovery == nil {
		return
	}
	for {
		if sc.recorder != nil {
			sc.recorder.Crash(crashSeq)
		}
		sc.buildImage()
		sc.execIdx++
		sc.det.EndExecution(crashSeq)
		sc.startMachine()
		crashedHere := sc.runExecution(recovery)
		if !crashedHere {
			sc.attachWitnesses()
			return
		}
		crashSeq = sc.machine.CurSeq()
	}
}

// attachWitnesses fills race witnesses from the recorded trace (§5.1: the
// report is the race-revealing prefix plus the post-crash execution).
func (sc *scenario) attachWitnesses() {
	if sc.recorder == nil {
		return
	}
	sc.det.Report().AttachWitnesses(func(r report.Race) string {
		return sc.recorder.Witness(r.ExecID, vclock.Seq(r.StoreSeq), pmm.Addr(r.Addr))
	})
}

// startMachine creates a fresh TSO machine for the current execution,
// seeded from the persisted image.
func (sc *scenario) startMachine() {
	var listener tso.Listener = sc.det
	if sc.recorder != nil {
		sc.recorder.SetExec(sc.execIdx)
		listener = sc.recorder
	}
	sc.machine = tso.NewMachine(listener)
	for addr, e := range sc.image {
		sc.machine.SeedMemory(addr, e.size, e.val)
	}
}

// threadEvent is a thread → scheduler notification.
type threadEvent struct {
	tid  int
	done bool
}

// runExecution runs the given thread functions under the controlled
// scheduler; it returns whether the execution ended in an injected crash.
func (sc *scenario) runExecution(fns []func(*pmm.Thread)) bool {
	sc.crashed = false
	sc.opCount = 0
	n := len(fns)
	if n == 0 {
		return false
	}
	// Declare the dense TID range up front: threads are numbered 0..n-1, and
	// the machine's slice-backed state panics on any TID outside it.
	sc.machine.SpawnThreads(n)
	events := make(chan threadEvent, n)
	resumes := make([]chan struct{}, n)
	waiting := make([]bool, n)
	finished := make([]bool, n)
	panics := make([]interface{}, n)
	for i := range fns {
		resumes[i] = make(chan struct{})
		waiting[i] = true
		i := i
		ops := &threadOps{sc: sc, tid: vclock.TID(i), resume: resumes[i], events: events}
		th := pmm.NewThread(ops, sc.heap)
		go func() {
			defer func() {
				// Workload panics propagate to the scheduler goroutine (so
				// callers can recover them); the crash sentinel unwinds
				// silently.
				if r := recover(); r != nil && r != errCrash {
					panics[i] = r
				}
				events <- threadEvent{tid: i, done: true}
			}()
			<-resumes[i] // wait for the first grant
			if sc.crashed {
				panic(errCrash)
			}
			fns[i](th)
		}()
	}
	live := n
	sc.liveThreads = live
	for live > 0 {
		// Pick a waiting, unfinished thread. Deterministic given the seed.
		var ready []int
		for i := 0; i < n; i++ {
			if waiting[i] && !finished[i] {
				ready = append(ready, i)
			}
		}
		if len(ready) == 0 {
			panic("engine: scheduler deadlock (no runnable simulated thread)")
		}
		pick := ready[0]
		if len(ready) > 1 {
			pick = ready[sc.rng.Intn(len(ready))]
		}
		waiting[pick] = false
		resumes[pick] <- struct{}{}
		ev := <-events
		if ev.done {
			finished[ev.tid] = true
			live--
			sc.liveThreads = live
			if p := panics[ev.tid]; p != nil {
				panic(p) // re-raise the workload panic in the caller
			}
			if !sc.crashed {
				// The thread completed normally; its buffered stores drain
				// (the hardware eventually writes them to the cache).
				sc.machine.DrainSB(vclock.TID(ev.tid))
			}
			continue
		}
		waiting[ev.tid] = true
	}
	return sc.crashed
}

// crashNow is called from inside a simulated thread when the plan's crash
// point is reached: it marks the scenario crashed and unwinds the thread.
// Store buffers are NOT drained — buffered operations are lost, exactly as
// on real hardware.
func (sc *scenario) crashNow() {
	sc.crashed = true
	panic(errCrash)
}

// atCrashPoint counts a flush/fence point and reports whether the plan says
// to crash before it. When a snapshot sink watches this execution, the point
// is captured here — after the count, before the operation takes effect —
// which is exactly the state a from-scratch scenario holds when its plan
// fires the crash at this point.
func (sc *scenario) atCrashPoint() bool {
	sc.crashPoints[sc.execIdx]++
	if sc.capture != nil && sc.capture.execIdx == sc.execIdx {
		sc.capture.observe(sc)
	}
	return sc.crashPlan[sc.execIdx] == sc.crashPoints[sc.execIdx]
}

// buildImage derives the persisted memory image after the current
// execution's crash. Per cache line, the persist point is chosen between
// the line's guaranteed flush floor and the crash; every address on the
// line takes the latest store at or before that point. All stores after the
// floor remain candidates for post-crash loads (the line might have been
// written back at any moment), which is what the detector checks races
// against.
func (sc *scenario) buildImage() {
	e := sc.det.Current()
	addrs := e.StoredAddrs()
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })

	byLine := make(map[pmm.Line][]pmm.Addr)
	var lines []pmm.Line
	for _, a := range addrs {
		l := pmm.LineOf(a)
		if _, ok := byLine[l]; !ok {
			lines = append(lines, l)
		}
		byLine[l] = append(byLine[l], a)
	}
	sort.Slice(lines, func(i, j int) bool { return lines[i] < lines[j] })

	for _, line := range lines {
		lineAddrs := byLine[line]
		// Floor: the newest store on the line guaranteed persisted by an
		// explicit flush. The flush wrote back the whole line, so the
		// persist point cannot precede it.
		var floor vclock.Seq
		for _, a := range lineAddrs {
			if lb := e.PersistLB(a); lb != nil && lb.Seq > floor {
				floor = lb.Seq
			}
		}
		// Persist-point choices: the floor itself or any later store commit
		// on the line.
		choices := []vclock.Seq{floor}
		for _, a := range lineAddrs {
			for s := e.Latest(a); s != nil; s = e.ByRef(s.Prev()) {
				if s.Seq > floor {
					choices = append(choices, s.Seq)
				}
			}
		}
		sort.Slice(choices, func(i, j int) bool { return choices[i] < choices[j] })
		if sc.lineChoices != nil && sc.execIdx == 0 {
			sc.lineChoices[line] = append([]vclock.Seq(nil), choices...)
		}
		var point vclock.Seq
		switch sc.persist {
		case PersistLatest:
			point = choices[len(choices)-1]
		case PersistMinimal:
			point = choices[0]
		case PersistRandom:
			point = choices[sc.rng.Intn(len(choices))]
		}
		if over, ok := sc.persistOverride[line]; ok {
			point = over
		}

		for _, a := range lineAddrs {
			prev, hadPrev := sc.image[a]
			entry := imageEntry{prevVal: prev.val, size: prev.size}
			// Older candidates stay checkable: a load in a later execution
			// could still observe a torn value from two crashes ago.
			entry.candidates = append(entry.candidates, prev.candidates...)
			var chosen *core.StoreRecord
			// Walk the per-address chain newest-first (allocation-free), then
			// reverse the freshly appended candidates back to commit order —
			// CandidateLimit trims from the front, so order is observable.
			start := len(entry.candidates)
			for s := e.Latest(a); s != nil; s = e.ByRef(s.Prev()) {
				if s.Seq > floor || s == e.PersistLB(a) {
					entry.candidates = append(entry.candidates, provCand{exec: int32(e.ID), ref: s.Ref()})
				}
				if s.Seq <= point && chosen == nil {
					chosen = s
				}
			}
			for i, j := start, len(entry.candidates)-1; i < j; i, j = i+1, j-1 {
				entry.candidates[i], entry.candidates[j] = entry.candidates[j], entry.candidates[i]
			}
			if chosen != nil {
				entry.chosen = provCand{exec: int32(e.ID), ref: chosen.Ref()}
				entry.val = chosen.Val
				entry.size = chosen.Size
			} else {
				// Nothing new persisted; the previous image value survives
				// along with its provenance.
				entry.chosen = prev.chosen
				entry.val = prev.val
				entry.prevVal = prev.prevVal
				if !hadPrev {
					entry.size = 8
				}
			}
			sc.image[a] = entry
		}
	}
}

// resolvePostCrashLoad handles a load that reads a value seeded from the
// persisted image: it race-checks every candidate store and commits the
// observation of the chosen one. Returns the value the load sees.
func (sc *scenario) resolvePostCrashLoad(tid vclock.TID, addr pmm.Addr, size int, atomicLoad, guarded bool) uint64 {
	entry, ok := sc.image[addr]
	if !ok {
		return 0
	}
	chosenStore := sc.storeOf(entry.chosen)
	if len(entry.candidates) == 0 && chosenStore == nil {
		return truncVal(entry.val, size) // Setup-time initial value
	}
	var chosenRaced bool
	if !sc.opts.DetectorOff {
		cands := entry.candidates
		if lim := sc.opts.CandidateLimit; lim > 0 && len(cands) > lim {
			cands = cands[len(cands)-lim:] // newest candidates only
		}
		for _, cand := range cands {
			race := sc.det.CheckCandidate(sc.execOf(cand), sc.storeOf(cand), guarded)
			if race != nil && cand == entry.chosen {
				chosenRaced = true
			}
		}
		if chosenStore != nil {
			sc.det.ObserveRead(sc.execOf(entry.chosen), chosenStore)
		}
	}
	val := entry.val
	if sc.opts.TornValues && chosenRaced && !guarded && chosenStore != nil && chosenStore.Size > 1 {
		val = tornValue(entry.prevVal, chosenStore.Val, chosenStore.Size)
		chosenStore.Torn = true
	}
	if sc.recorder != nil && chosenStore != nil {
		sc.recorder.Observe(tid, addr, truncVal(val, size), int(entry.chosen.exec), chosenStore.Seq, guarded)
	}
	return truncVal(val, size)
}

// tornValue mixes the low half of the new value with the high half of the
// old one — the paper's Figure 1 outcome, where gcc's ARM64 backend splits
// a 64-bit store into two 32-bit store-immediates and only the low half
// persists (printing 0x12345678 from a store of 0x1234567812345678).
func tornValue(oldVal, newVal uint64, size int) uint64 {
	half := uint(size * 8 / 2)
	lowMask := (uint64(1) << half) - 1
	return (oldVal &^ lowMask) | (newVal & lowMask)
}

func truncVal(v uint64, size int) uint64 {
	if size >= 8 {
		return v
	}
	return v & ((uint64(1) << (8 * size)) - 1)
}

// threadOps implements pmm.Ops for one simulated thread: every operation
// synchronizes with the scheduler, performs the TSO action, and applies the
// store-buffer eviction policy.
type threadOps struct {
	sc      *scenario
	tid     vclock.TID
	resume  chan struct{}
	events  chan threadEvent
	guarded bool
}

var _ pmm.Ops = (*threadOps)(nil)

func (t *threadOps) TID() int { return int(t.tid) }

// sync yields to the scheduler and blocks until granted. At a crash the
// grant returns with sc.crashed set and the thread unwinds.
func (t *threadOps) sync() {
	t.events <- threadEvent{tid: int(t.tid)}
	<-t.resume
	if t.sc.crashed {
		panic(errCrash)
	}
	t.sc.opCount++
	t.sc.stats.SimulatedOps++
	if max := t.sc.opts.MaxOps; max > 0 && t.sc.opCount > max {
		panic(fmt.Sprintf("engine: execution exceeded %d operations (runaway workload?)", max))
	}
}

// afterOp applies the eviction policy: ModelCheck drains eagerly (one
// deterministic commit order); RandomMode drains a random number of entries,
// exposing store-buffer loss at crashes.
func (t *threadOps) afterOp() {
	m := t.sc.machine
	if t.sc.opts.Mode == ModelCheck {
		m.DrainSB(t.tid)
		return
	}
	for m.SBLen(t.tid) > 0 && (m.SBLen(t.tid) > 8 || t.sc.rng.Intn(2) == 0) {
		m.EvictOne(t.tid)
	}
}

func (t *threadOps) Store(a pmm.Addr, size int, v uint64, atomic, release bool) {
	t.sync()
	t.sc.stats.Stores++
	t.sc.machine.EnqueueStore(t.tid, a, size, v, atomic, release)
	t.afterOp()
}

func (t *threadOps) Load(a pmm.Addr, size int, atomic, acquire bool) uint64 {
	t.sync()
	t.sc.stats.Loads++
	val, rec, fromSB := t.sc.machine.LoadDetail(t.tid, a, size, acquire)
	if fromSB || (rec != nil && rec.Seq > 0) {
		return val // a value produced by the current execution
	}
	// Seeded (rec with Seq 0) or absent: the load reads across the crash.
	if t.sc.execIdx > 0 {
		return t.sc.resolvePostCrashLoad(t.tid, a, size, atomic, t.guarded)
	}
	return val
}

func (t *threadOps) RMW(a pmm.Addr, size int, f func(old uint64) (uint64, bool)) (uint64, bool) {
	t.sync()
	if t.sc.atCrashPoint() { // locked RMW has fence semantics: a crash point
		t.sc.crashNow()
	}
	t.sc.stats.RMWs++
	// A cross-crash RMW read observes the image value first.
	if t.sc.execIdx > 0 {
		if rec, ok := t.sc.machine.VolatileValue(a); ok && rec.Seq == 0 {
			t.sc.resolvePostCrashLoad(t.tid, a, size, true, t.guarded)
		}
	}
	return t.sc.machine.RMW(t.tid, a, size, f)
}

func (t *threadOps) CLFlush(a pmm.Addr) {
	t.sync()
	if t.sc.atCrashPoint() {
		t.sc.crashNow()
	}
	t.sc.stats.Flushes++
	t.sc.machine.EnqueueCLFlush(t.tid, a)
	t.afterOp()
}

func (t *threadOps) CLWB(a pmm.Addr) {
	t.sync()
	if t.sc.atCrashPoint() {
		t.sc.crashNow()
	}
	t.sc.stats.Flushes++
	t.sc.machine.EnqueueCLWB(t.tid, a)
	t.afterOp()
}

func (t *threadOps) SFence() {
	t.sync()
	if t.sc.atCrashPoint() {
		t.sc.crashNow()
	}
	t.sc.stats.Fences++
	t.sc.machine.EnqueueSFence(t.tid)
	t.afterOp()
}

func (t *threadOps) MFence() {
	t.sync()
	if t.sc.atCrashPoint() {
		t.sc.crashNow()
	}
	t.sc.stats.Fences++
	t.sc.machine.MFence(t.tid)
}

func (t *threadOps) Yield() { t.sync() }

func (t *threadOps) SetChecksumGuard(on bool) { t.guarded = on }
