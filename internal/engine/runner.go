package engine

import (
	"fmt"
	"math/rand"

	"yashme/internal/addridx"
	"yashme/internal/analysis"
	"yashme/internal/core"
	"yashme/internal/pmm"
	"yashme/internal/report"
	"yashme/internal/trace"
	"yashme/internal/tso"
	"yashme/internal/vclock"
)

// plan maps an execution index (0 = pre-crash workload, 1 = first recovery
// run, ...) to the 1-based flush/fence point to crash before. A missing or
// zero entry means the execution runs to completion (modelled as a power
// loss at completion: unflushed data is still at risk).
type plan map[int]int

// errCrash is the sentinel panic that unwinds simulated threads at a crash.
var errCrash = fmt.Errorf("engine: simulated crash")

// provCand is one candidate store a post-crash load could read from: the
// execution's stack index (== core.Execution.ID; candidates can span several
// executions in multi-crash scenarios) and the store's arena ref within it.
// Both survive Detector.Clone unchanged, so image provenance needs no
// remapping across checkpoint snapshots, and candidate identity is plain
// struct equality. The zero value means "no store".
type provCand struct {
	exec int32
	ref  core.StoreRef
}

// execOf resolves a candidate's execution against this scenario's detector.
func (sc *scenario) execOf(c provCand) *core.Execution { return sc.det.Executions()[c.exec] }

// storeOf resolves a candidate's record, nil for the zero candidate.
func (sc *scenario) storeOf(c provCand) *core.StoreRecord {
	if c.ref == 0 {
		return nil
	}
	return sc.execOf(c).ByRef(c.ref)
}

// imageEntry is the persisted-image record for one address after a crash:
// the value the post-crash machine is seeded with, plus the provenance the
// detector needs to check candidate reads. Setup-time initial values have
// no candidates (they are fully persisted by definition).
type imageEntry struct {
	val  uint64
	size int
	// candidates are the stores a post-crash load of this address could
	// read from, oldest first.
	candidates []provCand
	// chosen is the candidate the image committed to (zero-value = the
	// address kept its Setup-time initial value).
	chosen provCand
	// prevVal is the image value before the chosen store; used to
	// synthesize torn values.
	prevVal uint64
}

// imageTable is the persisted memory image, stored two-level: a dense
// address-indexed table (the heap's Addr space is compact, see
// internal/addridx) maps each written address to a slot in a packed entries
// slice. Post-crash loads resolve with two bounds checks instead of a map
// hash, and the checkpoint layer's image copies are two flat copies — 4
// index bytes per heap address plus one entry per written address, far
// smaller than a dense table of the ~70-byte entries themselves. Candidate
// slices are immutable once stored (buildImage always assembles fresh ones
// and provenance is positional), so clones share them safely.
type imageTable struct {
	// idx maps Addr -> 1-based entries slot (0 = no image record).
	idx     addridx.Table[int32]
	entries []imageEntry
}

// lookup returns the entry for a, nil if the address has no image record.
// The pointer is invalidated by the next set of a new address.
func (t *imageTable) lookup(a pmm.Addr) *imageEntry {
	if p := t.idx.Peek(a); p != nil && *p != 0 {
		return &t.entries[*p-1]
	}
	return nil
}

// at returns a copy of the entry for a (the zero entry if absent).
func (t *imageTable) at(a pmm.Addr) (imageEntry, bool) {
	if e := t.lookup(a); e != nil {
		return *e, true
	}
	return imageEntry{}, false
}

// set records e as the image entry for a.
func (t *imageTable) set(a pmm.Addr, e imageEntry) {
	if p := t.idx.Peek(a); p != nil && *p != 0 {
		t.entries[*p-1] = e
		return
	}
	t.entries = append(t.entries, e)
	t.idx.Set(a, int32(len(t.entries)))
}

// clone returns an independent flat copy; candidate slices are shared (they
// are immutable once stored).
func (t *imageTable) clone() imageTable {
	c := imageTable{idx: t.idx.Clone()}
	if len(t.entries) > 0 {
		c.entries = append(make([]imageEntry, 0, len(t.entries)), t.entries...)
	}
	return c
}

// forEach visits every present entry in ascending address order.
func (t *imageTable) forEach(f func(pmm.Addr, *imageEntry)) {
	for a, n := pmm.Addr(0), pmm.Addr(t.idx.Len()); a < n; a++ {
		if p := t.idx.Peek(a); *p != 0 {
			f(a, &t.entries[*p-1])
		}
	}
}

// reserve pre-sizes the table for addresses [0, addrBound) and up to
// entries additional entries, so an ascending fill allocates once.
func (t *imageTable) reserve(addrBound, entries int) {
	t.idx.Reserve(addrBound)
	if need := len(t.entries) + entries; need > cap(t.entries) {
		s := make([]imageEntry, len(t.entries), need)
		copy(s, t.entries)
		t.entries = s
	}
}

// imageEntryBytes is the accounted retained size of one image entry plus its
// index slot, for Stats.SnapshotBytes (fixed for platform stability).
const imageEntryBytes = 72

// footprintBytes estimates the retained size of one table clone.
func (t *imageTable) footprintBytes() int64 {
	return int64(len(t.entries))*imageEntryBytes + int64(t.idx.Len())*4
}

// appendSignature serializes the image content into the crash-point state
// signature: per present address (ascending) the committed value, size,
// chosen provenance, pre-image value and candidate set. Positional refs over
// the run's append-only arenas make equal serializations name equal stores
// within one probe run.
func (t *imageTable) appendSignature(buf []byte) []byte {
	buf = sigU64(buf, uint64(len(t.entries)))
	t.forEach(func(a pmm.Addr, e *imageEntry) {
		buf = sigU64(buf, uint64(a))
		buf = sigU64(buf, e.val)
		buf = sigU64(buf, uint64(e.size))
		buf = sigU64(buf, uint64(e.chosen.exec))
		buf = sigU64(buf, uint64(e.chosen.ref))
		buf = sigU64(buf, e.prevVal)
		buf = sigU64(buf, uint64(len(e.candidates)))
		for _, c := range e.candidates {
			buf = sigU64(buf, uint64(c.exec))
			buf = sigU64(buf, uint64(c.ref))
		}
	})
	return buf
}

// scenario runs one crash plan end to end.
type scenario struct {
	opts Options
	prog pmm.Program
	heap *pmm.Heap
	// stack is the scenario's analysis-pass stack (internal/analysis); det
	// is its always-present Yashme core model — the image derivation and
	// candidate provenance are functions of its execution state regardless
	// of which passes are selected.
	stack *analysis.Stack
	det   *core.Detector
	// yashmeChecks gates the model's candidate race checks (the "yashme"
	// pass is selected and the detector is on); crashChecks gates the extra
	// passes' post-crash read classification.
	yashmeChecks bool
	crashChecks  bool
	machine      *tso.Machine
	recorder *trace.Recorder // nil unless Options.Trace
	rng      *rand.Rand
	// rngSrc is rng's underlying source, wrapped to count raw draws so a
	// snapshot can record the stream position (checkpoint.go).
	rngSrc *countingSource
	// seed is the scheduler/persist seed; snapshots carry it so a resumed
	// scenario can rebuild the identical rng stream.
	seed    int64
	persist PersistPolicy

	crashPlan plan
	// crashPoints counts flush/fence points seen per execution index.
	crashPoints map[int]int
	execIdx     int
	crashed     bool

	// persistOverride pins specific cache lines to specific persist points
	// (read-choice exploration); lines not listed follow the policy.
	persistOverride map[pmm.Line]vclock.Seq
	// lineChoices records, per cache line, the candidate persist points the
	// first crash image offered — the read-exploration frontier.
	lineChoices map[pmm.Line][]vclock.Seq

	image imageTable
	stats Stats
	// opCount is the watchdog counter for the current execution.
	opCount int
	// sched is the pooled controlled-scheduler state, reused across every
	// execution of the scenario (pre-crash + recovery runs).
	sched schedState
	// addrScratch/choiceScratch are buildImage's reusable buffers: the
	// stored-address walk and the per-line persist-point choices.
	addrScratch   []pmm.Addr
	choiceScratch []vclock.Seq
	// candSlab is the backing store image-entry candidate lists are carved
	// from: one growing array per scenario instead of a fresh slice per
	// address per crash image. Carved ranges are never appended to again
	// (full-slice caps), so entries stay valid as the slab grows.
	candSlab []provCand

	// capture, when set, receives a snapshot at every flush/fence point of
	// the execution it watches (checkpoint.go). The planner sets it on probe
	// runs (execution 0); runSpec sets it on primary scenarios to checkpoint
	// the recovery execution for multi-crash follow-ups.
	capture *snapshotSink
	// liveThreads mirrors the scheduler's live-thread count; a snapshot
	// records it to replay the crash-unwind rng draws on resume.
	liveThreads int
	// setupAllocs/setupNext fingerprint the heap right after Setup; a resume
	// verifies a fresh Setup reproduced the same shape before grafting
	// snapshot state onto it.
	setupAllocs int
	setupNext   pmm.Addr
}

func newScenario(makeProg func() pmm.Program, opts Options, p plan, persist PersistPolicy, seed int64) *scenario {
	prog := makeProg()
	heap := pmm.NewHeap()
	if prog.Setup != nil {
		prog.Setup(heap)
	}
	benchmark := opts.Benchmark
	if benchmark == "" {
		benchmark = prog.Name
	}
	if opts.EADR {
		// eADR: every committed store is persistent; the image is always
		// the latest committed state.
		persist = PersistLatest
	}
	stack, err := analysis.NewStack(opts.Analyses, analysis.Config{
		Prefix:      opts.Prefix,
		EADR:        opts.EADR,
		Benchmark:   benchmark,
		Labeler:     func(a pmm.Addr) string { return heap.LabelFor(a) },
		Suppress:    opts.Suppress,
		OwnedClocks: opts.ClockIntern == ClockInternOff,
	})
	if err != nil {
		panic(fmt.Sprintf("engine: %v", err))
	}
	src := newCountingSource(seed)
	sc := &scenario{
		opts:        opts,
		prog:        prog,
		heap:        heap,
		stack:       stack,
		det:         stack.Model(),
		rng:         rand.New(src),
		rngSrc:      src,
		seed:        seed,
		persist:     persist,
		crashPlan:   p,
		crashPoints: make(map[int]int),
		setupAllocs: heap.AllocCount(),
		setupNext:   heap.NextFree(),
	}
	sc.setGates()
	if opts.Trace {
		sc.recorder = trace.NewRecorder(stack.Listener(), heap.LabelFor)
	}
	for _, w := range heap.InitWrites() {
		sc.image.set(w.Addr, imageEntry{val: w.Val, size: w.Size, prevVal: w.Val})
		stack.SeedPersisted(w.Addr)
	}
	return sc
}

// setGates precomputes the per-load analysis gates from the stack and the
// DetectorOff baseline knob (which silences every pass's checks, keeping the
// "Jaaru time" comparison meaningful for any stack).
func (sc *scenario) setGates() {
	sc.yashmeChecks = sc.stack.YashmeSelected() && !sc.opts.DetectorOff
	sc.crashChecks = len(sc.stack.Extras()) > 0 && !sc.opts.DetectorOff
}

// run executes the full scenario: pre-crash workload, then recovery runs
// until one completes without crashing.
func (sc *scenario) run() {
	sc.startMachine()
	sc.runExecution(sc.prog.Workers)
	if sc.capture != nil && sc.capture.execIdx == 0 && sc.execIdx == 0 {
		if !sc.crashed {
			// Completion snapshot (crash point 0): the pre-crash execution
			// ran to the end; the final power loss is simulated by finish.
			sc.capture.take(sc, 0)
		}
		// The capture window ends with the pre-crash execution: detach the
		// journal before recovery runs so post-crash detector mutations can
		// never pollute the recorded delta segments.
		sc.capture.seal(sc)
	}
	sc.finish(sc.machine.CurSeq())
}

// finish runs the post-crash half of the scenario: the image derivation and
// the recovery executions, starting from a pre-crash execution that ended
// (crashed or completed) at crashSeq. Scenarios resumed from a snapshot
// enter here directly — the snapshot replaces the pre-crash simulation.
//
// Each prior execution ended in a crash (or in completion, treated as a
// final power loss); run the recovery threads until a recovery completes or
// the plan runs out of crashes.
func (sc *scenario) finish(crashSeq vclock.Seq) {
	recovery := sc.prog.RecoveryWorkers()
	if recovery == nil {
		return
	}
	for {
		if sc.recorder != nil {
			sc.recorder.Crash(crashSeq)
		}
		sc.buildImage()
		sc.execIdx++
		sc.stack.EndExecution(crashSeq)
		sc.startMachine()
		crashedHere := sc.runExecution(recovery)
		if !crashedHere {
			sc.attachWitnesses()
			return
		}
		crashSeq = sc.machine.CurSeq()
	}
}

// attachWitnesses fills race witnesses from the recorded trace (§5.1: the
// report is the race-revealing prefix plus the post-crash execution).
func (sc *scenario) attachWitnesses() {
	if sc.recorder == nil {
		return
	}
	sc.det.Report().AttachWitnesses(func(r report.Race) string {
		return sc.recorder.Witness(r.ExecID, vclock.Seq(r.StoreSeq), pmm.Addr(r.Addr))
	})
}

// startMachine creates a fresh TSO machine for the current execution,
// seeded from the persisted image.
func (sc *scenario) startMachine() {
	listener := sc.stack.Listener()
	if sc.recorder != nil {
		sc.recorder.SetExec(sc.execIdx)
		listener = sc.recorder
	}
	// The previous execution's machine is dead (snapshots capture only its
	// CurSeq); retiring it lets NewMachine — this one or a later scenario's
	// on any worker — reuse its dense memory table and spare record slots.
	tso.Retire(sc.machine)
	sc.machine = tso.NewMachine(listener)
	// The machine's record stamps must resolve in the detector's clock
	// arena — the stamps cross the listener boundary by value and end up in
	// StoreRecords, lastflush refs and cvpre.
	sc.machine.UseArena(sc.det.ClockArena())
	// The seed loop ascends; pre-sizing to the image's address bound makes
	// it one allocation (later stores to fresh allocations grow as usual).
	sc.machine.ReserveMemory(sc.image.idx.Len())
	sc.image.forEach(func(addr pmm.Addr, e *imageEntry) {
		sc.machine.SeedMemory(addr, e.size, e.val)
	})
}

// threadEvent is a thread → scheduler notification.
type threadEvent struct {
	tid  int
	done bool
}

// schedState is the controlled scheduler's pooled bookkeeping, owned by the
// scenario and reused across all of its executions (pre-crash + every
// recovery run): the event channel, the per-thread slots (ops, Thread
// wrapper, resume channel) and the scratch ready-set. Only the goroutine
// currently holding the grant (or the scheduler, while every thread is
// blocked) touches this state, and every ownership transfer rides a channel
// operation, so access is race-free by the handoff discipline.
type schedState struct {
	// events is the thread → scheduler channel. At most one event is ever
	// in flight (one thread runs at a time), so capacity 1 suffices.
	events   chan threadEvent
	ops      []*threadOps
	threads  []*pmm.Thread
	waiting  []bool
	finished []bool
	panics   []any
	// ready is the per-step scratch ready-set (reused, never reallocated
	// once grown).
	ready []int
	// n is the current execution's thread count (slices may be longer from
	// an earlier, wider execution or a mid-execution spawn).
	n    int
	live int
	// leased marks an active solo-thread direct-run lease: the granted
	// thread's sync() proceeds inline, with no handoff, until the lease is
	// revoked (a spawn makes a second thread runnable) or the thread ends.
	leased bool
}

// begin readies the pooled state for an execution of n threads.
func (s *schedState) begin(n int) {
	if s.events == nil {
		s.events = make(chan threadEvent, 1)
	}
	s.grow(n)
	s.n = n
	s.leased = false
}

// grow extends the per-thread slots to hold n threads.
func (s *schedState) grow(n int) {
	for len(s.ops) < n {
		s.ops = append(s.ops, nil)
		s.threads = append(s.threads, nil)
		s.waiting = append(s.waiting, false)
		s.finished = append(s.finished, false)
		s.panics = append(s.panics, nil)
	}
}

// startThread (re)initializes slot i and launches its goroutine, which
// blocks until the first grant.
func (sc *scenario) startThread(i int, fn func(*pmm.Thread)) {
	s := &sc.sched
	o := s.ops[i]
	if o == nil {
		o = &threadOps{sc: sc, tid: vclock.TID(i), resume: make(chan struct{})}
		s.ops[i] = o
		s.threads[i] = pmm.NewThread(o, sc.heap)
	}
	o.guarded = false
	s.waiting[i], s.finished[i], s.panics[i] = true, false, nil
	th := s.threads[i]
	go func() {
		defer func() {
			// Workload panics propagate to the scheduler goroutine (so
			// callers can recover them); the crash sentinel unwinds
			// silently.
			if r := recover(); r != nil && r != errCrash {
				s.panics[i] = r
			}
			s.events <- threadEvent{tid: i, done: true}
		}()
		<-o.resume // wait for the first grant
		if sc.crashed {
			panic(errCrash)
		}
		fn(th)
	}()
}

// spawnThread registers fn as a new simulated thread (Thread.Go). It runs on
// the granting thread's goroutine — the only one executing — while the
// scheduler is blocked on the event channel; the scheduler observes the new
// thread at its next scheduling step. Any direct-run lease is revoked: with
// two runnable threads the scheduler has real decisions to make again.
func (sc *scenario) spawnThread(fn func(*pmm.Thread)) {
	s := &sc.sched
	i := s.n
	s.n++
	s.grow(s.n)
	sc.machine.SpawnThreads(s.n)
	sc.startThread(i, fn)
	s.live++
	sc.liveThreads = s.live
	s.leased = false
}

// runExecution runs the given thread functions under the controlled
// scheduler; it returns whether the execution ended in an injected crash.
func (sc *scenario) runExecution(fns []func(*pmm.Thread)) bool {
	sc.crashed = false
	sc.opCount = 0
	n := len(fns)
	if n == 0 {
		return false
	}
	// Declare the dense TID range up front: threads are numbered 0..n-1, and
	// the machine's slice-backed state panics on any TID outside it.
	sc.machine.SpawnThreads(n)
	s := &sc.sched
	s.begin(n)
	for i := range fns {
		sc.startThread(i, fns[i])
	}
	s.live = n
	sc.liveThreads = n
	for s.live > 0 {
		// Pick a waiting, unfinished thread. Deterministic given the seed.
		s.ready = s.ready[:0]
		for i := 0; i < s.n; i++ {
			if s.waiting[i] && !s.finished[i] {
				s.ready = append(s.ready, i)
			}
		}
		if len(s.ready) == 0 {
			panic("engine: scheduler deadlock (no runnable simulated thread)")
		}
		pick := s.ready[0]
		if len(s.ready) > 1 {
			pick = s.ready[sc.rng.Intn(len(s.ready))]
		} else if sc.opts.DirectRun == DirectRunOn {
			// Solo-run fast path: exactly one runnable thread means the
			// scheduler has no decision to make (and, crucially, no rng
			// draw), so grant a direct-run lease — the thread's sync()
			// proceeds inline with no handoff until the lease ends.
			s.leased = true
		}
		s.waiting[pick] = false
		s.ops[pick].resume <- struct{}{}
		ev := <-s.events
		s.leased = false
		if ev.done {
			s.finished[ev.tid] = true
			s.live--
			sc.liveThreads = s.live
			if p := s.panics[ev.tid]; p != nil {
				panic(p) // re-raise the workload panic in the caller
			}
			if !sc.crashed {
				// The thread completed normally; its buffered stores drain
				// (the hardware eventually writes them to the cache).
				sc.machine.DrainSB(vclock.TID(ev.tid))
			}
			continue
		}
		s.waiting[ev.tid] = true
	}
	return sc.crashed
}

// crashNow is called from inside a simulated thread when the plan's crash
// point is reached: it marks the scenario crashed and unwinds the thread.
// Store buffers are NOT drained — buffered operations are lost, exactly as
// on real hardware.
func (sc *scenario) crashNow() {
	sc.crashed = true
	panic(errCrash)
}

// atCrashPoint counts a flush/fence point and reports whether the plan says
// to crash before it. When a snapshot sink watches this execution, the point
// is captured here — after the count, before the operation takes effect —
// which is exactly the state a from-scratch scenario holds when its plan
// fires the crash at this point.
func (sc *scenario) atCrashPoint() bool {
	sc.crashPoints[sc.execIdx]++
	if sc.capture != nil && sc.capture.execIdx == sc.execIdx {
		sc.capture.observe(sc)
	}
	return sc.crashPlan[sc.execIdx] == sc.crashPoints[sc.execIdx]
}

// buildImage derives the persisted memory image after the current
// execution's crash. Per cache line, the persist point is chosen between
// the line's guaranteed flush floor and the crash; every address on the
// line takes the latest store at or before that point. All stores after the
// floor remain candidates for post-crash loads (the line might have been
// written back at any moment), which is what the detector checks races
// against.
func (sc *scenario) buildImage() {
	e := sc.det.Current()
	// The stored-address walk ascends (the store table is address-indexed),
	// so each cache line's addresses form one contiguous run and the lines
	// come out sorted — no grouping maps, no sorting, and the scratch buffer
	// keeps the walk allocation-free across executions.
	sc.addrScratch = e.AppendStoredAddrs(sc.addrScratch[:0])
	addrs := sc.addrScratch
	// The fill below touches those addresses ascending; pre-sizing the
	// image table to the stored-address bound and count turns the
	// geometric growth into one allocation each.
	if len(addrs) > 0 {
		sc.image.reserve(int(addrs[len(addrs)-1])+1, len(addrs))
	}
	for start := 0; start < len(addrs); {
		line := pmm.LineOf(addrs[start])
		end := start + 1
		for end < len(addrs) && pmm.LineOf(addrs[end]) == line {
			end++
		}
		sc.buildLineImage(e, line, addrs[start:end])
		start = end
	}
}

// sortSeqs sorts a short persist-point choice list ascending. Insertion sort:
// the lists are a handful of elements, and sort.Slice would allocate its
// closure and swapper on every line of every scenario.
func sortSeqs(s []vclock.Seq) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// buildLineImage derives the image for one cache line from its stored
// addresses (ascending).
func (sc *scenario) buildLineImage(e *core.Execution, line pmm.Line, lineAddrs []pmm.Addr) {
	// Floor: the newest store on the line guaranteed persisted by an
	// explicit flush. The flush wrote back the whole line, so the
	// persist point cannot precede it.
	var floor vclock.Seq
	for _, a := range lineAddrs {
		if lb := e.PersistLB(a); lb != nil && lb.Seq > floor {
			floor = lb.Seq
		}
	}
	// Persist-point choices: the floor itself or any later store commit
	// on the line.
	choices := append(sc.choiceScratch[:0], floor)
	for _, a := range lineAddrs {
		for s := e.Latest(a); s != nil; s = e.ByRef(s.Prev()) {
			if s.Seq > floor {
				choices = append(choices, s.Seq)
			}
		}
	}
	sortSeqs(choices)
	sc.choiceScratch = choices
	if sc.lineChoices != nil && sc.execIdx == 0 {
		sc.lineChoices[line] = append([]vclock.Seq(nil), choices...)
	}
	var point vclock.Seq
	switch sc.persist {
	case PersistLatest:
		point = choices[len(choices)-1]
	case PersistMinimal:
		point = choices[0]
	case PersistRandom:
		point = choices[sc.rng.Intn(len(choices))]
	}
	if over, ok := sc.persistOverride[line]; ok {
		point = over
	}

	for _, a := range lineAddrs {
		prev, hadPrev := sc.image.at(a)
		entry := imageEntry{prevVal: prev.val, size: prev.size}
		// Older candidates stay checkable: a load in a later execution
		// could still observe a torn value from two crashes ago.
		base := len(sc.candSlab)
		sc.candSlab = append(sc.candSlab, prev.candidates...)
		var chosen *core.StoreRecord
		// Walk the per-address chain newest-first (allocation-free), then
		// reverse the freshly appended candidates back to commit order —
		// CandidateLimit trims from the front, so order is observable.
		start := len(sc.candSlab)
		for s := e.Latest(a); s != nil; s = e.ByRef(s.Prev()) {
			if s.Seq > floor || s == e.PersistLB(a) {
				sc.candSlab = append(sc.candSlab, provCand{exec: int32(e.ID), ref: s.Ref()})
			}
			if s.Seq <= point && chosen == nil {
				chosen = s
			}
		}
		for i, j := start, len(sc.candSlab)-1; i < j; i, j = i+1, j-1 {
			sc.candSlab[i], sc.candSlab[j] = sc.candSlab[j], sc.candSlab[i]
		}
		if n := len(sc.candSlab); n > base {
			entry.candidates = sc.candSlab[base:n:n]
		}
		if chosen != nil {
			entry.chosen = provCand{exec: int32(e.ID), ref: chosen.Ref()}
			entry.val = chosen.Val
			entry.size = chosen.Size
		} else {
			// Nothing new persisted; the previous image value survives
			// along with its provenance.
			entry.chosen = prev.chosen
			entry.val = prev.val
			entry.prevVal = prev.prevVal
			if !hadPrev {
				entry.size = 8
			}
		}
		sc.image.set(a, entry)
	}
}

// resolvePostCrashLoad handles a load that reads a value seeded from the
// persisted image: it race-checks every candidate store and commits the
// observation of the chosen one. Returns the value the load sees.
func (sc *scenario) resolvePostCrashLoad(tid vclock.TID, addr pmm.Addr, size int, atomicLoad, guarded bool) uint64 {
	entry := sc.image.lookup(addr)
	if entry == nil {
		return 0
	}
	chosenStore := sc.storeOf(entry.chosen)
	if len(entry.candidates) == 0 && chosenStore == nil {
		return truncVal(entry.val, size) // Setup-time initial value
	}
	var chosenRaced bool
	if sc.yashmeChecks {
		cands := entry.candidates
		if lim := sc.opts.CandidateLimit; lim > 0 && len(cands) > lim {
			cands = cands[len(cands)-lim:] // newest candidates only
		}
		for _, cand := range cands {
			if sc.det.CandidateRaced(sc.execOf(cand), sc.storeOf(cand), guarded) && cand == entry.chosen {
				chosenRaced = true
			}
		}
		if chosenStore != nil {
			sc.det.ObserveRead(sc.execOf(entry.chosen), chosenStore)
		}
	}
	val := entry.val
	if sc.opts.TornValues && chosenRaced && !guarded && chosenStore != nil && chosenStore.Size > 1 {
		val = tornValue(entry.prevVal, chosenStore.Val, chosenStore.Size)
		sc.execOf(entry.chosen).MarkTorn(chosenStore)
	}
	if sc.recorder != nil && chosenStore != nil {
		sc.recorder.Observe(tid, addr, truncVal(val, size), int(entry.chosen.exec), chosenStore.Seq, guarded)
	}
	return truncVal(val, size)
}

// tornValue mixes the low half of the new value with the high half of the
// old one — the paper's Figure 1 outcome, where gcc's ARM64 backend splits
// a 64-bit store into two 32-bit store-immediates and only the low half
// persists (printing 0x12345678 from a store of 0x1234567812345678).
func tornValue(oldVal, newVal uint64, size int) uint64 {
	half := uint(size * 8 / 2)
	lowMask := (uint64(1) << half) - 1
	return (oldVal &^ lowMask) | (newVal & lowMask)
}

func truncVal(v uint64, size int) uint64 {
	if size >= 8 {
		return v
	}
	return v & ((uint64(1) << (8 * size)) - 1)
}

// threadOps implements pmm.Ops for one simulated thread: every operation
// synchronizes with the scheduler, performs the TSO action, and applies the
// store-buffer eviction policy. Slots are pooled per scenario (schedState)
// and reused across executions.
type threadOps struct {
	sc      *scenario
	tid     vclock.TID
	resume  chan struct{}
	guarded bool
}

var (
	_ pmm.Ops     = (*threadOps)(nil)
	_ pmm.Spawner = (*threadOps)(nil)
)

func (t *threadOps) TID() int { return int(t.tid) }

// sync yields to the scheduler and blocks until granted. At a crash the
// grant returns with sc.crashed set and the thread unwinds. Under a
// direct-run lease the thread already holds the grant and no other thread is
// runnable, so sync proceeds inline — no handoff, no goroutine switch (a
// crash mid-lease can only originate from this thread, via crashNow, which
// unwinds directly).
func (t *threadOps) sync() {
	sc := t.sc
	if sc.sched.leased {
		sc.stats.DirectOps++
	} else {
		sc.sched.events <- threadEvent{tid: int(t.tid)}
		<-t.resume
		if sc.crashed {
			panic(errCrash)
		}
		sc.stats.Handoffs++
	}
	sc.opCount++
	sc.stats.SimulatedOps++
	if max := sc.opts.MaxOps; max > 0 && sc.opCount > max {
		panic(fmt.Sprintf("engine: execution exceeded %d operations (runaway workload?)", max))
	}
}

// Spawn implements pmm.Spawner: a scheduling point, then the new thread is
// registered — runnable from the caller's next operation. Registration
// happens after sync so the spawned thread cannot be scheduled before the
// spawn point itself is granted.
func (t *threadOps) Spawn(fn func(*pmm.Thread)) {
	t.sync()
	t.sc.spawnThread(fn)
}

// afterOp applies the eviction policy: ModelCheck drains eagerly (one
// deterministic commit order); RandomMode drains a random number of entries,
// exposing store-buffer loss at crashes.
func (t *threadOps) afterOp() {
	m := t.sc.machine
	if t.sc.opts.Mode == ModelCheck {
		m.DrainSB(t.tid)
		return
	}
	for m.SBLen(t.tid) > 0 && (m.SBLen(t.tid) > 8 || t.sc.rng.Intn(2) == 0) {
		m.EvictOne(t.tid)
	}
}

func (t *threadOps) Store(a pmm.Addr, size int, v uint64, atomic, release bool) {
	t.sync()
	t.sc.stats.Stores++
	t.sc.machine.EnqueueStore(t.tid, a, size, v, atomic, release)
	t.afterOp()
}

func (t *threadOps) Load(a pmm.Addr, size int, atomic, acquire bool) uint64 {
	t.sync()
	t.sc.stats.Loads++
	val, rec, fromSB := t.sc.machine.LoadDetail(t.tid, a, size, acquire)
	// Extra passes classify every post-crash load — including loads of
	// values the recovery itself produced (their FSMs track the address's
	// whole history, as XFDetector's does) — so the hook fires before the
	// current-execution short-circuit below.
	if t.sc.execIdx > 0 && t.sc.crashChecks {
		t.sc.stack.CrashRead(a, t.guarded)
	}
	if fromSB || (rec != nil && rec.Seq > 0) {
		return val // a value produced by the current execution
	}
	// Seeded (rec with Seq 0) or absent: the load reads across the crash.
	if t.sc.execIdx > 0 {
		return t.sc.resolvePostCrashLoad(t.tid, a, size, atomic, t.guarded)
	}
	return val
}

func (t *threadOps) RMW(a pmm.Addr, size int, f func(old uint64) (uint64, bool)) (uint64, bool) {
	t.sync()
	if t.sc.atCrashPoint() { // locked RMW has fence semantics: a crash point
		t.sc.crashNow()
	}
	t.sc.stats.RMWs++
	// A cross-crash RMW read observes the image value first.
	if t.sc.execIdx > 0 {
		if rec, ok := t.sc.machine.VolatileValue(a); ok && rec.Seq == 0 {
			t.sc.resolvePostCrashLoad(t.tid, a, size, true, t.guarded)
		}
	}
	return t.sc.machine.RMW(t.tid, a, size, f)
}

func (t *threadOps) CLFlush(a pmm.Addr) {
	t.sync()
	if t.sc.atCrashPoint() {
		t.sc.crashNow()
	}
	t.sc.stats.Flushes++
	t.sc.machine.EnqueueCLFlush(t.tid, a)
	t.afterOp()
}

func (t *threadOps) CLWB(a pmm.Addr) {
	t.sync()
	if t.sc.atCrashPoint() {
		t.sc.crashNow()
	}
	t.sc.stats.Flushes++
	t.sc.machine.EnqueueCLWB(t.tid, a)
	t.afterOp()
}

func (t *threadOps) SFence() {
	t.sync()
	if t.sc.atCrashPoint() {
		t.sc.crashNow()
	}
	t.sc.stats.Fences++
	t.sc.machine.EnqueueSFence(t.tid)
	t.afterOp()
}

func (t *threadOps) MFence() {
	t.sync()
	if t.sc.atCrashPoint() {
		t.sc.crashNow()
	}
	t.sc.stats.Fences++
	t.sc.machine.MFence(t.tid)
}

func (t *threadOps) Yield() { t.sync() }

func (t *threadOps) SetChecksumGuard(on bool) { t.guarded = on }
