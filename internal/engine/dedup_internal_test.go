package engine

// Property tests for crash-image memoization (checkpoint.go): the dedup
// layer may only merge two crash points when their image-determining state
// is byte-identical, and merged points must be observationally equivalent —
// a duplicate's scenario, run for real, reports exactly what its
// representative's does.

import (
	"bytes"
	"testing"
	"testing/quick"

	"yashme/internal/fuzzprog"
)

// TestFileNeverMergesOnHashAlone forces every signature into a single hash
// bucket — the worst case, where each insertion compares against every
// class — and checks that file only ever records a duplicate for
// byte-identical signatures. This is the collision-safety property the
// memoization rests on: the hash routes, bytes decide.
func TestFileNeverMergesOnHashAlone(t *testing.T) {
	prop := func(sigs [][]byte) bool {
		k := &snapshotSink{
			sigs: make(map[uint64][]*sigClass),
			dups: make(map[int]int),
		}
		byPoint := make(map[int][]byte, len(sigs))
		for i, s := range sigs {
			point := i + 1
			byPoint[point] = s
			k.file(point, 0, s) // same bucket for everything
		}
		for dup, rep := range k.dups {
			if !bytes.Equal(byPoint[dup], byPoint[rep]) {
				return false
			}
			if rep >= dup {
				return false // representatives must be earlier points
			}
		}
		// Classes in the bucket must be pairwise distinct.
		cs := k.sigs[0]
		for i := range cs {
			for j := i + 1; j < len(cs); j++ {
				if bytes.Equal(cs[i].sig, cs[j].sig) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestDedupPairsEquivalent probes random programs exactly as planModelCheck
// does and, for every duplicate the sink classified, checks the claim the
// merge layer relies on: the duplicate's materialized detector carries the
// same state signature as its representative's, and actually running both
// scenarios (snapshot resume + post-crash execution) yields byte-identical
// reports and race counts.
func TestDedupPairsEquivalent(t *testing.T) {
	dupsSeen := 0
	for seed := int64(1); seed <= 30; seed++ {
		mk, _ := fuzzprog.Generate(fuzzprog.Default(), seed)
		opts := Options{Mode: ModelCheck, Prefix: true, Checkpoint: CheckpointOn, Seed: seed}.withDefaults()
		probe := newScenario(mk, opts, plan{}, PersistLatest, seed)
		sink := newSnapshotSink(0, opts.MaxCrashPoints)
		sink.configureProbe(opts, probe.det)
		probe.capture = sink
		probe.run() // takes the completion snapshot and seals the journal itself

		for dup, rep := range sink.dups {
			ds, rs := sink.snaps[dup], sink.snaps[rep]
			if ds == nil || rs == nil {
				continue // beyond the capture cap
			}
			dupsSeen++
			dd, rd := ds.materializeDetector(), rs.materializeDetector()
			dsig := dd.Current().AppendStateSignature(nil)
			rsig := rd.Current().AppendStateSignature(nil)
			if !bytes.Equal(dsig, rsig) {
				t.Fatalf("seed %d: dup point %d and rep %d materialize different detector state", seed, dup, rep)
			}
			for _, pp := range opts.PersistPolicies {
				dsc := runPlanned(mk, opts, ds, plan{0: dup}, pp, seed, nil)
				rsc := runPlanned(mk, opts, rs, plan{0: rep}, pp, seed, nil)
				if d, r := dsc.det.Report().String(), rsc.det.Report().String(); d != r {
					t.Fatalf("seed %d: dup point %d reports differ from rep %d (policy %v):\n%s\nvs\n%s",
						seed, dup, rep, pp, d, r)
				}
				if d, r := dsc.det.Report().Count(), rsc.det.Report().Count(); d != r {
					t.Fatalf("seed %d: dup point %d race count %d != rep %d count %d", seed, dup, d, rep, r)
				}
			}
		}
	}
	if dupsSeen == 0 {
		t.Fatal("no duplicate crash points classified across 30 fuzz programs; memoization is inert")
	}
}
