package engine_test

// Property tests for the checkpoint layer (checkpoint.go): resuming crash
// scenarios from pre-crash snapshots must be observationally invisible —
// every Result field except Stats.SimulatedOps is byte-identical to the
// from-scratch exploration, across random programs, both modes, and every
// option that interacts with the snapshot machinery.

import (
	"reflect"
	"testing"

	"yashme/internal/engine"
	"yashme/internal/fuzzprog"
)

// TestCheckpointMatchesScratch: for random programs, checkpointed and
// from-scratch runs produce identical Report, Window and Stats (modulo
// SimulatedOps, whose reduction is the point), and model checking actually
// simulates fewer operations with checkpointing on.
func TestCheckpointMatchesScratch(t *testing.T) {
	variants := []struct {
		name string
		opts engine.Options
	}{
		{"model-check", engine.Options{Mode: engine.ModelCheck, Prefix: true}},
		{"model-check/baseline", engine.Options{Mode: engine.ModelCheck, Prefix: false}},
		{"model-check/eadr", engine.Options{Mode: engine.ModelCheck, Prefix: true, EADR: true}},
		{"model-check/expansions", engine.Options{Mode: engine.ModelCheck, Prefix: true,
			ExploreReads: true, RecoveryCrashes: 2, MaxCrashPoints: 15}},
		{"random", engine.Options{Mode: engine.RandomMode, Prefix: true, Executions: 6}},
	}
	for _, v := range variants {
		v := v
		t.Run(v.name, func(t *testing.T) {
			t.Parallel()
			for seed := int64(1); seed <= 12; seed++ {
				mk, _ := fuzzprog.Generate(fuzzprog.Default(), seed)
				onOpts, offOpts := v.opts, v.opts
				onOpts.Checkpoint = engine.CheckpointOn
				offOpts.Checkpoint = engine.CheckpointOff
				onOpts.Seed, offOpts.Seed = seed, seed
				on := engine.Run(mk, onOpts)
				off := engine.Run(mk, offOpts)

				if s, o := on.Report.String(), off.Report.String(); s != o {
					t.Fatalf("seed %d: reports diverge:\ncheckpoint on:\n%s\ncheckpoint off:\n%s", seed, s, o)
				}
				if !reflect.DeepEqual(on.Window, off.Window) {
					t.Fatalf("seed %d: windows diverge:\non:  %v\noff: %v", seed, on.Window, off.Window)
				}
				onStats, offStats := on.Stats, off.Stats
				onSim, offSim := onStats.SimulatedOps, offStats.SimulatedOps
				// SimulatedOps — and its Handoffs/DirectOps split — counts
				// work done, which checkpointing exists to reduce, and the
				// capture/memoization counters only exist with snapshots
				// on; everything else must match exactly.
				onStats.SimulatedOps, offStats.SimulatedOps = 0, 0
				onStats.Handoffs, offStats.Handoffs = 0, 0
				onStats.DirectOps, offStats.DirectOps = 0, 0
				onStats.SnapshotBytes, offStats.SnapshotBytes = 0, 0
				onStats.JournalOps, offStats.JournalOps = 0, 0
				onStats.ClockInterned, offStats.ClockInterned = 0, 0
				onStats.EpochHits, offStats.EpochHits = 0, 0
				onStats.EpochMisses, offStats.EpochMisses = 0, 0
				onStats.DedupedScenarios, offStats.DedupedScenarios = 0, 0
				if onStats != offStats {
					t.Fatalf("seed %d: stats diverge:\non:  %+v\noff: %+v", seed, onStats, offStats)
				}
				if on.ExecutionsRun != off.ExecutionsRun {
					t.Fatalf("seed %d: executions diverge: %d vs %d", seed, on.ExecutionsRun, off.ExecutionsRun)
				}
				if on.CrashPoints != off.CrashPoints {
					t.Fatalf("seed %d: crash points diverge: %d vs %d", seed, on.CrashPoints, off.CrashPoints)
				}
				if on.Report.RawCount != off.Report.RawCount {
					t.Fatalf("seed %d: raw race counts diverge: %d vs %d", seed, on.Report.RawCount, off.Report.RawCount)
				}
				// The perf claim itself: model checking with more than one
				// crash point must simulate strictly fewer operations.
				if v.opts.Mode == engine.ModelCheck && on.CrashPoints > 1 && onSim >= offSim {
					t.Fatalf("seed %d: checkpointing saved nothing: %d simulated ops on, %d off (%d crash points)",
						seed, onSim, offSim, on.CrashPoints)
				}
			}
		})
	}
}
