package engine_test

// Differential tests for the analysis-pass stack (internal/analysis):
// running several passes over one simulation must be observationally
// equivalent, per pass, to running each pass alone. The fan-out listener
// consumes no randomness and the extra passes never influence scheduling,
// image derivation or the model detector, so a stacked run's per-pass
// reports — and every workload-behavior counter — must be byte-identical to
// the single-pass runs, across random programs and the checkpoint ×
// directrun × dedup option matrix. (The cost counters legitimately differ:
// extra passes participate in the crash-image memoization signature, so a
// stacked run may dedup fewer scenarios.)

import (
	"encoding/json"
	"reflect"
	"testing"

	"yashme/internal/engine"
	"yashme/internal/fuzzprog"
	"yashme/internal/report"

	_ "yashme/internal/analysis/all"
)

// passJSON is the canonical byte representation a pass's report is compared
// under: the deduplicated races and benign races, JSON-marshaled.
func passJSON(t *testing.T, s *report.Set) string {
	t.Helper()
	b, err := json.Marshal(struct {
		Races  []report.Race
		Benign []report.Race
	}{s.Races(), s.Benign()})
	if err != nil {
		t.Fatalf("marshal report: %v", err)
	}
	return string(b)
}

// zeroCostCounters clears the counters that measure work done rather than
// workload behavior (they vary with checkpoint/dedup interactions, which the
// extra passes' signatures legitimately change).
func zeroCostCounters(s *engine.Stats) {
	s.SimulatedOps = 0
	s.Handoffs = 0
	s.DirectOps = 0
	s.SnapshotBytes = 0
	s.JournalOps = 0
	s.ClockInterned = 0
	s.EpochHits = 0
	s.EpochMisses = 0
	s.DedupedScenarios = 0
}

// TestStackedPassesMatchSolo: for random programs, running
// Analyses={yashme,xfd} produces, per pass, byte-identical reports to
// running that pass alone — and identical workload-behavior stats, window
// and execution counts to the yashme-only run (the primary pass drives
// those) — across the checkpoint × directrun × dedup matrix.
func TestStackedPassesMatchSolo(t *testing.T) {
	variants := []struct {
		name string
		opts engine.Options
	}{
		{"ckpt/direct/dedup", engine.Options{}},
		{"nockpt", engine.Options{Checkpoint: engine.CheckpointOff}},
		{"nodirect", engine.Options{DirectRun: engine.DirectRunOff}},
		{"nodedup", engine.Options{Dedup: engine.DedupOff}},
		{"allescape", engine.Options{Checkpoint: engine.CheckpointOff,
			DirectRun: engine.DirectRunOff, Dedup: engine.DedupOff}},
	}
	for _, v := range variants {
		v := v
		t.Run(v.name, func(t *testing.T) {
			t.Parallel()
			for seed := int64(1); seed <= 8; seed++ {
				mk, _ := fuzzprog.Generate(fuzzprog.Default(), seed)
				base := v.opts
				base.Mode = engine.ModelCheck
				base.Prefix = true
				base.Seed = seed

				yOpts, xOpts, sOpts := base, base, base
				yOpts.Analyses = []string{"yashme"}
				xOpts.Analyses = []string{"xfd"}
				sOpts.Analyses = []string{"yashme", "xfd"}
				yashme := engine.Run(mk, yOpts)
				xfd := engine.Run(mk, xOpts)
				stacked := engine.Run(mk, sOpts)

				if len(stacked.Passes) != 2 {
					t.Fatalf("seed %d: stacked passes = %d, want 2", seed, len(stacked.Passes))
				}
				if got, want := passJSON(t, stacked.Passes[0].Report), passJSON(t, yashme.Report); got != want {
					t.Fatalf("seed %d: stacked yashme pass diverges from solo:\nstacked: %s\nsolo:    %s", seed, got, want)
				}
				if got, want := passJSON(t, stacked.Passes[1].Report), passJSON(t, xfd.Report); got != want {
					t.Fatalf("seed %d: stacked xfd pass diverges from solo:\nstacked: %s\nsolo:    %s", seed, got, want)
				}
				if stacked.Report != stacked.Passes[0].Report {
					t.Fatalf("seed %d: Result.Report does not alias the primary pass", seed)
				}
				// The extra pass must not perturb the simulation: every
				// workload-behavior observable matches the yashme-only run.
				sStats, yStats := stacked.Stats, yashme.Stats
				zeroCostCounters(&sStats)
				zeroCostCounters(&yStats)
				if sStats != yStats {
					t.Fatalf("seed %d: stats diverge:\nstacked: %+v\nyashme:  %+v", seed, sStats, yStats)
				}
				if !reflect.DeepEqual(stacked.Window, yashme.Window) {
					t.Fatalf("seed %d: windows diverge:\nstacked: %v\nyashme:  %v", seed, stacked.Window, yashme.Window)
				}
				if stacked.ExecutionsRun != yashme.ExecutionsRun {
					t.Fatalf("seed %d: executions diverge: %d vs %d", seed, stacked.ExecutionsRun, yashme.ExecutionsRun)
				}
				if stacked.CrashPoints != yashme.CrashPoints {
					t.Fatalf("seed %d: crash points diverge: %d vs %d", seed, stacked.CrashPoints, yashme.CrashPoints)
				}
			}
		})
	}
}

// TestStackedWorkerCountsAgree: a stacked run's per-pass reports are
// byte-identical at every worker count (the merge folds per-pass report
// sets in spec order, like the single-pass merge always has).
func TestStackedWorkerCountsAgree(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		mk, _ := fuzzprog.Generate(fuzzprog.Default(), seed)
		opts := engine.Options{
			Mode: engine.ModelCheck, Prefix: true, Seed: seed,
			Analyses: []string{"yashme", "xfd"}, Workers: 1,
		}
		seq := engine.Run(mk, opts)
		opts.Workers = 4
		par := engine.Run(mk, opts)
		for i := range seq.Passes {
			if got, want := passJSON(t, par.Passes[i].Report), passJSON(t, seq.Passes[i].Report); got != want {
				t.Fatalf("seed %d pass %s: parallel diverges from sequential:\npar: %s\nseq: %s",
					seed, seq.Passes[i].Name, got, want)
			}
		}
	}
}
