package engine

import (
	"math/rand"
	"testing"
)

// The mirror must validate on every supported Go release: if this fails,
// math/rand internals changed and resumes silently take the slow
// seed-and-skip path.
func TestRngMirrorValidates(t *testing.T) {
	if !rngMirrorOK {
		t.Fatal("rngState mirror failed validation against this Go release's math/rand")
	}
}

// A mirrored countingSource must produce the stdlib stream exactly, across
// the 607-word register wrap.
func TestCountingSourceMatchesStdlib(t *testing.T) {
	for _, seed := range []int64{1, 7, 20220326, -5} {
		cs := newCountingSource(seed)
		ref := rand.NewSource(seed).(rand.Source64)
		for i := 0; i < 3000; i++ {
			if got, want := cs.Uint64(), ref.Uint64(); got != want {
				t.Fatalf("seed %d draw %d: got %#x, want %#x", seed, i, got, want)
			}
		}
	}
}

// A fork must continue from the fork point and leave the original stream
// untouched.
func TestCountingSourceFork(t *testing.T) {
	cs := newCountingSource(42)
	cs.skip(700) // past one register wrap
	fk := cs.fork()
	if fk == nil {
		t.Fatal("fork returned nil with mirroring available")
	}
	if fk.n != cs.n {
		t.Fatalf("fork draw count %d != original %d", fk.n, cs.n)
	}
	ref := rand.NewSource(42).(rand.Source64)
	for i := 0; i < 700; i++ {
		ref.Uint64()
	}
	for i := 0; i < 2000; i++ {
		if got, want := fk.Uint64(), ref.Uint64(); got != want {
			t.Fatalf("forked draw %d: got %#x, want %#x", i, got, want)
		}
	}
	// The fork's 2000 draws must not have advanced the original: its next
	// draw is stream position 701.
	ref = rand.NewSource(42).(rand.Source64)
	for i := 0; i < 700; i++ {
		ref.Uint64()
	}
	if got, want := cs.Uint64(), ref.Uint64(); got != want {
		t.Fatalf("original advanced by fork draws: got %#x, want %#x", got, want)
	}
}
