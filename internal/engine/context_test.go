package engine

import (
	"context"
	"runtime"
	"sync"
	"testing"
	"time"

	"yashme/internal/pmm"
)

// ctxProbe is a small model-checkable program; onWorker runs at the top of
// every pre-crash worker body (the tests use it to cancel the context from
// inside the run).
func ctxProbe(onWorker func()) func() pmm.Program {
	return func() pmm.Program {
		var val pmm.Addr
		return pmm.Program{
			Name: "ctx-probe",
			Setup: func(h *pmm.Heap) {
				val = h.AllocStruct("o", pmm.Layout{{Name: "v", Size: 8}}).F("v")
			},
			Workers: []func(*pmm.Thread){func(t *pmm.Thread) {
				if onWorker != nil {
					onWorker()
				}
				for i := 0; i < 8; i++ {
					t.Store64(val, uint64(i))
					t.CLFlush(val)
					t.SFence()
				}
			}},
			PostCrash: func(t *pmm.Thread) {
				t.Load64(val)
			},
		}
	}
}

// waitGoroutines polls until the goroutine count returns to (near) the
// baseline, failing if worker goroutines leaked past the run.
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= base+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutine leak: %d live, baseline %d", runtime.NumGoroutine(), base)
}

// A context cancelled before the run starts yields a well-formed empty
// result without simulating a single operation.
func TestRunContextPreCancelled(t *testing.T) {
	base := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res := RunContext(ctx, ctxProbe(nil), Options{Mode: ModelCheck, Prefix: true, Workers: 4})
	if !res.Cancelled {
		t.Fatal("pre-cancelled run not marked Cancelled")
	}
	if res.Stats.SimulatedOps != 0 {
		t.Fatalf("pre-cancelled run simulated %d ops, want 0", res.Stats.SimulatedOps)
	}
	if res.Report.Count() != 0 {
		t.Fatalf("pre-cancelled run reported %d races", res.Report.Count())
	}
	waitGoroutines(t, base)
}

// Cancelling mid-run stops at the next scenario boundary: the run returns
// a partial result strictly smaller than the full exploration, with every
// worker goroutine drained. Exercised for both modes.
func TestRunContextCancelMidRun(t *testing.T) {
	for _, mode := range []Mode{ModelCheck, RandomMode} {
		opts := Options{Mode: mode, Prefix: true, Workers: 4, Executions: 8, Seed: 3}
		full := Run(ctxProbe(nil), opts)
		if full.Cancelled {
			t.Fatalf("mode %v: uncancelled run marked Cancelled", mode)
		}

		base := runtime.NumGoroutine()
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		var once sync.Once
		res := RunContext(ctx, ctxProbe(func() { once.Do(cancel) }), opts)
		if !res.Cancelled {
			t.Fatalf("mode %v: cancelled run not marked Cancelled", mode)
		}
		if res.Stats.SimulatedOps == 0 {
			t.Fatalf("mode %v: cancellation from inside the program should leave the probe's ops", mode)
		}
		if res.Stats.SimulatedOps >= full.Stats.SimulatedOps {
			t.Fatalf("mode %v: cancelled run simulated %d ops, full run %d — nothing was skipped",
				mode, res.Stats.SimulatedOps, full.Stats.SimulatedOps)
		}
		waitGoroutines(t, base)
	}
}

// A cancelled context makes AcquireCtx fail without consuming tokens, and
// a held token still blocks other acquirers until released.
func TestBudgetAcquireCtx(t *testing.T) {
	b := NewBudget(1)
	ctx := context.Background()
	if !b.AcquireCtx(ctx) {
		t.Fatal("AcquireCtx on a free budget failed")
	}
	if b.InUse() != 1 {
		t.Fatalf("InUse = %d, want 1", b.InUse())
	}
	cancelled, cancel := context.WithCancel(ctx)
	cancel()
	if b.AcquireCtx(cancelled) {
		t.Fatal("AcquireCtx succeeded on a cancelled context")
	}
	timed, cancelTimed := context.WithTimeout(ctx, 20*time.Millisecond)
	defer cancelTimed()
	if b.AcquireCtx(timed) { // budget saturated: must give up at the deadline
		t.Fatal("AcquireCtx succeeded on a saturated budget")
	}
	b.Release()
	if b.InUse() != 0 {
		t.Fatalf("InUse after release = %d, want 0", b.InUse())
	}
	var nilB *Budget
	if !nilB.AcquireCtx(ctx) {
		t.Fatal("nil budget AcquireCtx with live context failed")
	}
	if nilB.AcquireCtx(cancelled) {
		t.Fatal("nil budget AcquireCtx ignored cancellation")
	}
}
