// Copyable scheduler-rng state.
//
// Every crash scenario owns a rand.Rand, and a checkpointed resume must hand
// it the exact stream position a from-scratch run would hold — historically
// by re-seeding a fresh source (math/rand's seed loop walks an LCG ~1900
// steps to fill the 607-word register) and replaying every draw the prefix
// made. Profiling showed that re-seeding alone was ~25% of a model-checking
// sweep. math/rand does not expose its generator state, but the package is
// frozen under the Go 1 compatibility promise, so this file mirrors it: the
// state struct layout and the step function of its additive lagged-Fibonacci
// generator (math/rand/rng.go). A snapshot then carries a plain copy of the
// seeded state, and a resume is a 4.9KB memcpy — no seed loop, no replay.
//
// The mirror is validated at init: the layout check compares field names,
// types, offsets and total size by reflection, and the behavior check steps
// a mirrored copy alongside the real source across the register's wrap
// point. If either fails (a future Go release changing internals), mirroring
// is disabled and countingSource falls back to seed-and-skip — slower,
// byte-identical results.
package engine

import (
	"math/rand"
	"reflect"
	"unsafe"
)

const (
	rngLen  = 607
	rngMask = 1<<63 - 1
)

// rngState mirrors math/rand's rngSource: an additive lagged-Fibonacci
// generator x[n] = x[n-273] + x[n-607] over a 607-word feedback register.
// Field names, types and order must match exactly (the layout validation
// checks them against the live type).
type rngState struct {
	tap  int
	feed int
	vec  [rngLen]int64
}

// Uint64 advances the generator one step — the stdlib step function
// verbatim, so a mirrored copy continues the stream byte-identically.
func (r *rngState) Uint64() uint64 {
	r.tap--
	if r.tap < 0 {
		r.tap += rngLen
	}
	r.feed--
	if r.feed < 0 {
		r.feed += rngLen
	}
	x := r.vec[r.feed] + r.vec[r.tap]
	r.vec[r.feed] = x
	return uint64(x)
}

func (r *rngState) Int63() int64 { return int64(r.Uint64() & rngMask) }

// rngMirrorOK reports whether the running math/rand implementation matches
// the mirror; computed once at init.
var rngMirrorOK = validateRngMirror()

func validateRngMirror() bool {
	src := rand.NewSource(20220326)
	v := reflect.ValueOf(src)
	if v.Kind() != reflect.Pointer {
		return false
	}
	t := v.Elem().Type()
	mt := reflect.TypeOf(rngState{})
	if t.Kind() != reflect.Struct || t.NumField() != mt.NumField() || t.Size() != mt.Size() {
		return false
	}
	for i := 0; i < mt.NumField(); i++ {
		f, g := t.Field(i), mt.Field(i)
		if f.Name != g.Name || f.Type != g.Type || f.Offset != g.Offset {
			return false
		}
	}
	s64, ok := src.(rand.Source64)
	if !ok {
		return false
	}
	st := *(*rngState)(unsafe.Pointer(v.Pointer()))
	// Step far enough to wrap both register indices at least twice.
	for i := 0; i < 2*rngLen; i++ {
		if st.Uint64() != s64.Uint64() {
			return false
		}
	}
	return true
}

// extractRngState copies the generator state out of a freshly created
// rand.Source into out; false if mirroring is unavailable.
func extractRngState(src rand.Source, out *rngState) bool {
	if !rngMirrorOK {
		return false
	}
	v := reflect.ValueOf(src)
	if v.Kind() != reflect.Pointer {
		return false
	}
	*out = *(*rngState)(unsafe.Pointer(v.Pointer()))
	return true
}
