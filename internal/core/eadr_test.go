package core

import (
	"testing"

	"yashme/internal/tso"
)

// newEADRRig wires a detector in eADR mode (§7.5).
func newEADRRig() *rig {
	d := New(Config{Prefix: true, EADR: true, Benchmark: "eadr"})
	return &rig{d: d, m: tso.NewMachine(d)}
}

// On eADR the cache is persistent: an unflushed store still races when it
// is the newest thing observed (the crash could have torn the store
// itself)...
func TestEADRLastStoreStillRaces(t *testing.T) {
	r := newEADRRig()
	r.m.EnqueueStore(0, addrX, 8, 1, false, false)
	r.m.DrainSB(0)
	e := r.crash()
	if race := r.d.CheckCandidate(e, e.Latest(addrX), false); race == nil {
		t.Fatal("eADR: trailing store must still race (torn mid-store)")
	}
}

// ...but a store is safe as soon as the post-crash execution observed any
// operation ordered after it — no flush needed.
func TestEADRObservationPersists(t *testing.T) {
	r := newEADRRig()
	r.m.EnqueueStore(0, addrX, 8, 1, false, false) // never flushed
	r.m.EnqueueStore(0, addrZ, 8, 2, false, false) // later store, other line
	r.m.DrainSB(0)
	e := r.crash()
	// Post-crash reads Z first: its CV covers the X store.
	r.d.ObserveRead(e, e.Latest(addrZ))
	if race := r.d.CheckCandidate(e, e.Latest(addrX), false); race != nil {
		t.Fatal("eADR: store ordered before an observed operation raced")
	}
}

// The same program WITHOUT eADR must report the unflushed X store: the
// paper's containment claim (no races on non-eADR ⇒ no races on eADR, not
// vice versa).
func TestEADRIsStrictlyWeaker(t *testing.T) {
	build := func(eadr bool) int {
		d := New(Config{Prefix: true, EADR: eadr, Benchmark: "cmp"})
		m := tso.NewMachine(d)
		m.EnqueueStore(0, addrX, 8, 1, false, false)
		m.EnqueueStore(0, addrZ, 8, 2, false, false)
		m.DrainSB(0)
		e := d.Current()
		d.EndExecution(m.CurSeq())
		d.ObserveRead(e, e.Latest(addrZ))
		d.CheckCandidate(e, e.Latest(addrX), false)
		d.CheckCandidate(e, e.Latest(addrZ), false)
		return d.Report().Count()
	}
	normal := build(false)
	eadr := build(true)
	if eadr > normal {
		t.Fatalf("eADR found %d races > default mode's %d", eadr, normal)
	}
	if normal != 2 || eadr != 1 {
		t.Fatalf("normal=%d eadr=%d, want 2 and 1", normal, eadr)
	}
}

// Coherence protection (condition 2) applies under eADR too.
func TestEADRCoherenceStillApplies(t *testing.T) {
	r := newEADRRig()
	r.m.EnqueueStore(0, addrX, 8, 1, false, false)
	r.m.EnqueueStore(0, addrY, 8, 2, true, true) // release, same line
	r.m.DrainSB(0)
	e := r.crash()
	r.d.ObserveRead(e, e.Latest(addrY))
	if race := r.d.CheckCandidate(e, e.Latest(addrX), false); race != nil {
		t.Fatal("eADR: coherence-protected store raced")
	}
}

// Suppression annotations (§7.5): races on suppressed labels are dropped.
func TestSuppressionAnnotations(t *testing.T) {
	d := New(Config{Prefix: true, Benchmark: "sup",
		Suppress: []string{"0x1000"}}) // the fallback hex label for addrX
	m := tso.NewMachine(d)
	m.EnqueueStore(0, addrX, 8, 1, false, false)
	m.EnqueueStore(0, addrZ, 8, 2, false, false)
	m.DrainSB(0)
	e := d.Current()
	d.EndExecution(m.CurSeq())
	if race := d.CheckCandidate(e, e.Latest(addrX), false); race != nil {
		t.Fatal("suppressed field reported")
	}
	if race := d.CheckCandidate(e, e.Latest(addrZ), false); race == nil {
		t.Fatal("non-suppressed field missed")
	}
	if d.Report().Count() != 1 {
		t.Fatalf("report count = %d, want 1", d.Report().Count())
	}
}

func TestSuppressionNormalizesIndices(t *testing.T) {
	cfg := Config{Suppress: []string{"Pair.key"}}
	if !cfg.suppressed("Pair[3].key") {
		t.Fatal("array element not matched by normalized suppression")
	}
	if cfg.suppressed("Pair.value") {
		t.Fatal("wrong field suppressed")
	}
}
