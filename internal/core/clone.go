package core

import (
	"yashme/internal/pmm"
)

// Clone returns a deep copy of the detector — the execution stack with its
// storemap/history/lastflush/CVpre/persistLB state and the accumulated
// report. Store identity is positional (StoreRef = arena index), so a ref
// taken against the original names the corresponding record in the clone and
// no pointer remapping is needed.
//
// Sharing rules: the store arena is shared with the original as a capped
// slice view — records (and their clock vectors) are immutable once
// committed, their mutable side lives in the parallel meta slice, and the
// capped capacity forces either side's later appends onto a private backing
// array. Everything mutable — the meta slice, the flush arena, per-address
// tables, per-line state — is copied, so the clone and the original may be
// mutated independently afterwards.
func (d *Detector) Clone() *Detector {
	nd := &Detector{cfg: d.cfg, report: d.report.Clone(), arena: d.arena.Clone()}
	nd.execs = make([]*Execution, len(d.execs))
	for i, e := range d.execs {
		nd.execs[i] = e.clone()
	}
	return nd
}

// SetLabeler replaces the address labeler. A scenario resumed from a
// checkpoint re-runs the program's Setup against its own heap and points the
// cloned detector at that heap's LabelFor.
func (d *Detector) SetLabeler(l func(pmm.Addr) string) { d.cfg.Labeler = l }

func (e *Execution) clone() *Execution { return e.cloneSized(0, 0, 0) }

// cloneSized is clone with growth headroom for a pending journal replay:
// the meta and flush arenas get capacity for the segment's appends and the
// address-indexed tables get capacity up to its high-water address, so the
// replay performs no reallocation (see Detector.CloneReplay). The store
// arena needs no headroom — it is shared, and a replay extends the view
// over the journal's frozen arena rather than appending. Zero sizes degrade
// to a plain clone.
func (e *Execution) cloneSized(stores, flushes int, maxAddr pmm.Addr) *Execution {
	addrCap, lineCap := 0, 0
	if maxAddr > 0 {
		addrCap = int(maxAddr) + 1
		lineCap = int(pmm.LineOf(maxAddr)) + 1
	}
	ne := &Execution{
		ID:         e.ID,
		arena:      e.arena[:len(e.arena):len(e.arena)],
		meta:       append(make([]recMeta, 0, len(e.meta)+stores), e.meta...),
		flushArena: append(make([]flushNode, 0, len(e.flushArena)+flushes), e.flushArena...),
		storeTab:   e.storeTab.CloneCap(addrCap),
		lineAddrs:  e.lineAddrs.CloneCap(lineCap),
		lastflush:  e.lastflush.Clone(), // flat: slots are arena refs
		cvpre:      e.cvpre,
		persistTab: e.persistTab.CloneCap(addrCap),
		crashSeq:   e.crashSeq,
	}
	// The table clones are flat; detach the one reference-typed slot value
	// both sides may mutate: per-line address lists (appended to on first
	// store). Per-line flush clocks need no detaching anymore — a slot is a
	// ref into the immutable clock arena, and observations replace the ref
	// rather than joining a shared vector in place.
	ne.lineAddrs.ForEach(func(l pmm.Line, addrs []pmm.Addr) bool {
		if len(addrs) > 0 {
			ne.lineAddrs.Set(l, append([]pmm.Addr(nil), addrs...))
		}
		return true
	})
	return ne
}
