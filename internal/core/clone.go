package core

import (
	"yashme/internal/pmm"
	"yashme/internal/vclock"
)

// Remap translates pointers from a cloned detector's original object graph
// to the clone's. The engine identifies candidate stores by pointer equality
// (its persisted image compares *StoreRecord and *Execution identities), so
// a detector clone is only usable together with the remap that rewrites
// those references.
type Remap struct {
	Execs  map[*Execution]*Execution
	Stores map[*StoreRecord]*StoreRecord
}

// Clone returns a deep copy of the detector — the execution stack with its
// storemap/history/lastflush/CVpre/persistLB state and the accumulated
// report — plus the pointer remap from originals to clones.
//
// Sharing rules: StoreRecord clock vectors (CV) are shared with the
// original because the TSO machine snapshots them at commit time and nothing
// mutates them afterwards; Flushes and Torn ARE mutated after commit
// (applyFlush appends, the engine marks torn observations), so every
// StoreRecord itself is copied. The clone and the original may be mutated
// independently afterwards.
func (d *Detector) Clone() (*Detector, *Remap) {
	nd := &Detector{cfg: d.cfg, report: d.report.Clone()}
	rm := &Remap{
		Execs:  make(map[*Execution]*Execution, len(d.execs)),
		Stores: make(map[*StoreRecord]*StoreRecord),
	}
	for _, e := range d.execs {
		nd.execs = append(nd.execs, e.clone(rm))
	}
	return nd, rm
}

// SetLabeler replaces the address labeler. A scenario resumed from a
// checkpoint re-runs the program's Setup against its own heap and points the
// cloned detector at that heap's LabelFor.
func (d *Detector) SetLabeler(l func(pmm.Addr) string) { d.cfg.Labeler = l }

func (e *Execution) clone(rm *Remap) *Execution {
	ne := &Execution{
		ID:        e.ID,
		storemap:  make(map[pmm.Addr]*StoreRecord, len(e.storemap)),
		history:   make(map[pmm.Addr][]*StoreRecord, len(e.history)),
		lineAddrs: make(map[pmm.Line]map[pmm.Addr]struct{}, len(e.lineAddrs)),
		lastflush: make(map[pmm.Line]vclock.VC, len(e.lastflush)),
		cvpre:     e.cvpre.Clone(),
		persistLB: make(map[pmm.Addr]*StoreRecord, len(e.persistLB)),
		crashSeq:  e.crashSeq,
	}
	rm.Execs[e] = ne
	cloneStore := func(s *StoreRecord) *StoreRecord {
		if s == nil {
			return nil
		}
		if ns, ok := rm.Stores[s]; ok {
			return ns
		}
		ns := new(StoreRecord)
		*ns = *s
		ns.Flushes = append([]FlushRef(nil), s.Flushes...)
		rm.Stores[s] = ns
		return ns
	}
	// history covers every record ever committed; storemap/persistLB alias
	// into it, so cloning history first keeps those aliases intact.
	for a, hs := range e.history {
		nh := make([]*StoreRecord, len(hs))
		for i, s := range hs {
			nh[i] = cloneStore(s)
		}
		ne.history[a] = nh
	}
	for a, s := range e.storemap {
		ne.storemap[a] = cloneStore(s)
	}
	for a, s := range e.persistLB {
		ne.persistLB[a] = cloneStore(s)
	}
	for l, set := range e.lineAddrs {
		ns := make(map[pmm.Addr]struct{}, len(set))
		for a := range set {
			ns[a] = struct{}{}
		}
		ne.lineAddrs[l] = ns
	}
	for l, vc := range e.lastflush {
		ne.lastflush[l] = vc.Clone()
	}
	return ne
}
