package core

import (
	"yashme/internal/pmm"
	"yashme/internal/vclock"
)

// Clone returns a deep copy of the detector — the execution stack with its
// storemap/history/lastflush/CVpre/persistLB state and the accumulated
// report. Store identity is positional (StoreRef = arena index), so a ref
// taken against the original names the corresponding record in the clone and
// no pointer remapping is needed.
//
// Sharing rules: StoreRecord clock vectors (CV) are shared with the original
// because the TSO machine snapshots them at commit time and nothing mutates
// them afterwards; everything else — arenas, per-address tables, per-line
// state — is copied, so the clone and the original may be mutated
// independently afterwards.
func (d *Detector) Clone() *Detector {
	nd := &Detector{cfg: d.cfg, report: d.report.Clone()}
	nd.execs = make([]*Execution, len(d.execs))
	for i, e := range d.execs {
		nd.execs[i] = e.clone()
	}
	return nd
}

// SetLabeler replaces the address labeler. A scenario resumed from a
// checkpoint re-runs the program's Setup against its own heap and points the
// cloned detector at that heap's LabelFor.
func (d *Detector) SetLabeler(l func(pmm.Addr) string) { d.cfg.Labeler = l }

func (e *Execution) clone() *Execution {
	ne := &Execution{
		ID:         e.ID,
		arena:      append([]StoreRecord(nil), e.arena...),
		flushArena: append([]flushNode(nil), e.flushArena...),
		storeTab:   e.storeTab.Clone(),
		lineAddrs:  e.lineAddrs.Clone(),
		lastflush:  e.lastflush.Clone(),
		cvpre:      e.cvpre.Clone(),
		persistTab: e.persistTab.Clone(),
		crashSeq:   e.crashSeq,
	}
	// The table clones are flat; detach the reference-typed slot values both
	// sides may mutate: per-line address lists (appended to on first store)
	// and per-line flush clocks (joined in place on observation).
	ne.lineAddrs.ForEach(func(l pmm.Line, addrs []pmm.Addr) bool {
		if len(addrs) > 0 {
			ne.lineAddrs.Set(l, append([]pmm.Addr(nil), addrs...))
		}
		return true
	})
	ne.lastflush.ForEach(func(l pmm.Line, vc vclock.VC) bool {
		if len(vc) > 0 {
			ne.lastflush.Set(l, vc.Clone())
		}
		return true
	})
	return ne
}
