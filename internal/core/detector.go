// Package core implements the Yashme persistency-race detection algorithm —
// the paper's primary contribution (ASPLOS '22, §5–§6).
//
// A persistency race (Definition 5.1) is a load l in a post-crash execution
// E' reading from a store s in a pre-crash execution E such that:
//
//  1. s is not atomic (so the compiler may tear it or invent stores);
//  2. no atomic release store s' to s's cache line with s →hb s' was read by
//     E' before it read s (cache coherence would otherwise guarantee s
//     persisted completely);
//  3. no clflush to s's cache line happens-after s (in the consistent
//     prefix); and
//  4. no clwb to s's cache line happens-after s followed in store-buffer
//     order by a fence (in the consistent prefix).
//
// The detector maintains, per execution (paper §6):
//
//   - storemap: address → latest committed store;
//   - flushmap: store → the first flush per thread that happens-after it
//     (kept inline on each store record as Flushes);
//   - lastflush: cache line → clock-vector lower bound for when the line was
//     written back, raised when the post-crash execution reads from an
//     atomic release store on the line;
//   - CVpre: the clock vector describing the shortest pre-crash prefix E+
//     consistent with everything the post-crash execution has observed
//     (§4.2/§5.1). A flush only defeats a race report if it is inside E+;
//     otherwise there exists a derivable pre-crash execution that stopped
//     before the flush and still yields the same post-crash execution
//     (Theorem 1).
//
// Disabling the prefix expansion (Config.Prefix = false) gives the paper's
// baseline: a flush anywhere before the crash defeats the report. Table 5
// compares the two.
package core

import (
	"fmt"

	"yashme/internal/addridx"
	"yashme/internal/pmm"
	"yashme/internal/report"
	"yashme/internal/tso"
	"yashme/internal/vclock"
)

// FlushRef identifies one flush recorded for a store: the thread that
// guaranteed persistence and the sequence number of the operation that made
// it guaranteed (the clflush itself, or the fence completing a clwb).
type FlushRef struct {
	TID vclock.TID
	Seq vclock.Seq
}

// StoreRef names a StoreRecord inside its owning Execution: a 1-based index
// into the execution's arena. Zero is "no store" (the nil of the old
// pointer-based representation). Refs survive Detector.Clone unchanged —
// the same ref names the corresponding record in the cloned arena — which
// is what lets the engine identify stores across checkpoint snapshots
// without any pointer remapping.
type StoreRef int32

// flushNode is one entry in an execution's flush arena: the flushmap lists
// of all store records live here as linked chains, so recording a flush is
// an arena append plus a link write and cloning the detector copies one
// flat slice instead of per-record Flushes slices.
type flushNode struct {
	ref  FlushRef
	next int32 // 1-based index of the next node in the chain, 0 = end
}

// StoreRecord is the detector's view of one committed store. Records live
// in their execution's arena (commit order); take care not to retain
// pointers across commits on a still-running execution — the arena may
// grow. Refs (StoreRef) are stable; pointers into ended executions are too.
type StoreRecord struct {
	Addr    pmm.Addr
	Size    int
	Val     uint64
	TID     vclock.TID
	Seq     vclock.Seq
	CV      vclock.Stamp
	Atomic  bool
	Release bool

	// ref is this record's own 1-based arena index.
	ref StoreRef
	// prevSameAddr chains to the previous store to the same address (the
	// per-address history, newest to oldest).
	prevSameAddr StoreRef
}

// recMeta is the post-commit-mutable state of one store record, held in a
// slice parallel to the arena (recMeta[r-1] belongs to arena[r-1]) instead
// of in StoreRecord itself. The split is what makes the arena immutable
// once a record is committed — clone.go shares the arena between clones as
// a capped slice view and copies only this slice.
type recMeta struct {
	// flushHead/flushTail delimit this store's flushmap chain in the
	// execution's flush arena: the first flush per thread that happens-after
	// this store (paper Figure 8, Evict_SB/Evict_FB).
	flushHead, flushTail int32
	// torn is set by the engine when a post-crash load actually observed
	// this store as racing and synthesized a torn value from it.
	torn bool
}

// Ref returns the record's stable identity within its execution.
func (s *StoreRecord) Ref() StoreRef { return s.ref }

// Prev returns the ref of the previous store to the same address in this
// execution (0 = none). Walking Latest → Prev visits an address's history
// newest-first without allocating, unlike History.
func (s *StoreRecord) Prev() StoreRef { return s.prevSameAddr }

// Execution is the per-execution detector state. Executions form a stack
// (paper §6, exec): a crash during recovery pushes a new execution whose
// loads may read from any earlier one.
//
// All hot state is slice-backed: store records live in a commit-ordered
// arena, per-address lookups go through dense addridx tables holding arena
// refs, and per-line state is line-indexed. Clone is a handful of flat
// copies (see clone.go).
type Execution struct {
	ID int

	// arena holds every committed store record in commit (σ) order;
	// StoreRef r names arena[r-1]. Records are immutable once committed
	// (their mutable side lives in meta), so clones share the arena.
	arena []StoreRecord
	// meta holds the mutable per-record state, parallel to the arena.
	meta []recMeta
	// flushArena backs the per-record flushmap chains.
	flushArena []flushNode
	// storeTab: latest committed store per address (storemap).
	storeTab addridx.Table[StoreRef]
	// lineAddrs: which addresses on each cache line have been stored to,
	// in first-store order.
	lineAddrs addridx.LineTable[[]pmm.Addr]
	// lastflush: line → lower bound clock for the line's write-back, as a
	// ref into the detector's clock arena.
	lastflush addridx.LineTable[vclock.Ref]
	// cvpre: how much of this execution later executions have observed
	// (arena ref; 0 = nothing observed yet).
	cvpre vclock.Ref
	// persistTab: per address, the latest store known persisted via an
	// explicit flush (the engine's candidate windows start here).
	persistTab addridx.Table[StoreRef]
	// crashSeq: σ at the crash ending this execution (0 while running).
	crashSeq vclock.Seq
}

func newExecution(id int) *Execution {
	return &Execution{ID: id}
}

// ByRef resolves a StoreRef to its record, nil for the zero ref.
func (e *Execution) ByRef(r StoreRef) *StoreRecord {
	if r == 0 {
		return nil
	}
	return &e.arena[r-1]
}

// History returns the commit-ordered stores to addr in this execution.
func (e *Execution) History(addr pmm.Addr) []*StoreRecord {
	n := 0
	for r := e.storeTab.At(addr); r != 0; r = e.ByRef(r).prevSameAddr {
		n++
	}
	if n == 0 {
		return nil
	}
	out := make([]*StoreRecord, n)
	for r := e.storeTab.At(addr); r != 0; {
		s := e.ByRef(r)
		n--
		out[n] = s
		r = s.prevSameAddr
	}
	return out
}

// Latest returns the latest committed store to addr, or nil.
func (e *Execution) Latest(addr pmm.Addr) *StoreRecord { return e.ByRef(e.storeTab.At(addr)) }

// PersistLB returns the latest store to addr known persisted via explicit
// flushes, or nil if no flush covered the address.
func (e *Execution) PersistLB(addr pmm.Addr) *StoreRecord { return e.ByRef(e.persistTab.At(addr)) }

// FlushesOf returns the flushmap entries recorded for s: the first flush
// per thread that happens-after it.
func (e *Execution) FlushesOf(s *StoreRecord) []FlushRef {
	var out []FlushRef
	for n := e.meta[s.ref-1].flushHead; n != 0; n = e.flushArena[n-1].next {
		out = append(out, e.flushArena[n-1].ref)
	}
	return out
}

// MarkTorn records that a post-crash load observed s as racing and
// synthesized a torn value from it.
func (e *Execution) MarkTorn(s *StoreRecord) { e.meta[s.ref-1].torn = true }

// WasTorn reports whether a torn value was synthesized from s.
func (e *Execution) WasTorn(s *StoreRecord) bool { return e.meta[s.ref-1].torn }

// CrashSeq returns the σ at which this execution crashed (0 if running).
func (e *Execution) CrashSeq() vclock.Seq { return e.crashSeq }

// StoredAddrs returns every address written in this execution, in ascending
// address order.
func (e *Execution) StoredAddrs() []pmm.Addr { return e.AppendStoredAddrs(nil) }

// AppendStoredAddrs appends every address written in this execution to buf,
// in ascending address order, and returns the extended slice. Callers on the
// hot image-derivation path pass a reused scratch buffer so the walk stays
// allocation-free.
func (e *Execution) AppendStoredAddrs(buf []pmm.Addr) []pmm.Addr {
	// Plain index loop: a ForEach closure would capture buf by reference and
	// cost a heap cell per call on this per-scenario path.
	for a, n := pmm.Addr(0), pmm.Addr(e.storeTab.Len()); a < n; a++ {
		if e.storeTab.At(a) != 0 {
			buf = append(buf, a)
		}
	}
	return buf
}

// Config selects the detector variant.
type Config struct {
	// Prefix enables the paper's key idea (§4.2): check races against every
	// consistent prefix of the pre-crash execution rather than only the
	// exact crash state. False gives the Table 5 baseline.
	Prefix bool
	// EADR adapts the detector to eADR platforms (§7.5), where the cache is
	// inside the persistence domain and flushing is not required: a store is
	// fully persistent once it has committed BEFORE anything the post-crash
	// execution observed. Races shrink to stores that no observed operation
	// is ordered after — the crash could still interrupt the (compiler-torn)
	// store itself. Absence of races in the default mode implies absence
	// under EADR, never the reverse.
	EADR bool
	// Benchmark names the program under test in reports.
	Benchmark string
	// Labeler renders an address as a field name for reports (normally
	// Heap.LabelFor). May be nil.
	Labeler func(pmm.Addr) string
	// Suppress lists normalized field labels whose races are not reported —
	// the paper's proposed annotation mechanism for stores that are only
	// consumed by checksum validation (§7.5, "a future implementation of
	// Yashme could use annotations to suppress race warnings").
	Suppress []string
	// OwnedClocks disables clock interning (the -clockintern=false escape
	// hatch): the arena appends a private materialized clock per record
	// instead of deduplicating snapshots, and the epoch join fast path is
	// off. Observable results are identical either way; only cost counters
	// move.
	OwnedClocks bool
}

// suppressed reports whether the label is annotated away.
func (c Config) suppressed(label string) bool {
	n := report.NormalizeField(label)
	for _, s := range c.Suppress {
		if s == n {
			return true
		}
	}
	return false
}

// Detector implements the Yashme algorithm over the event stream of a
// tso.Machine. It satisfies tso.Listener for the current execution.
type Detector struct {
	cfg    Config
	execs  []*Execution
	report *report.Set
	// arena holds every clock snapshot the detector's state refers to:
	// record stamps, per-line lastflush refs and cvpre all resolve here.
	// The engine points the simulating tso.Machine at the same arena
	// (Machine.UseArena) so stamps cross the listener boundary by value.
	arena *vclock.Arena
	// journal, when attached (SetJournal), records every mutation of the
	// current execution so the engine's delta checkpoints can replay them
	// (journal.go). Never inherited by clones.
	journal *Journal
}

// New returns a detector with an initial (first pre-crash) execution.
func New(cfg Config) *Detector {
	d := &Detector{cfg: cfg, report: report.NewSet(), arena: vclock.NewArena(cfg.OwnedClocks)}
	d.execs = append(d.execs, newExecution(0))
	return d
}

// ClockArena returns the arena the detector's stamps and refs resolve in.
// The engine shares it with each execution's tso.Machine.
func (d *Detector) ClockArena() *vclock.Arena { return d.arena }

// Report returns the accumulated race reports.
func (d *Detector) Report() *report.Set { return d.report }

// Current returns the execution currently being recorded.
func (d *Detector) Current() *Execution { return d.execs[len(d.execs)-1] }

// Executions returns the execution stack, oldest first.
func (d *Detector) Executions() []*Execution { return d.execs }

// EndExecution marks the current execution crashed at crashSeq and pushes a
// fresh execution for the post-crash run.
func (d *Detector) EndExecution(crashSeq vclock.Seq) *Execution {
	d.Current().crashSeq = crashSeq
	e := newExecution(len(d.execs))
	d.execs = append(d.execs, e)
	return e
}

// --- tso.Listener: pre-crash bookkeeping (paper Figure 8) ---

// StoreCommitted implements Evict_SB for stores: update storemap/history.
func (d *Detector) StoreCommitted(rec *tso.CommittedStore) {
	e := d.Current()
	prev := e.storeTab.At(rec.Addr)
	ref := StoreRef(len(e.arena) + 1)
	e.arena = append(e.arena, StoreRecord{
		Addr: rec.Addr, Size: rec.Size, Val: rec.Val,
		TID: rec.TID, Seq: rec.Seq, CV: rec.CV,
		Atomic: rec.Atomic, Release: rec.Release,
		ref: ref, prevSameAddr: prev,
	})
	e.meta = append(e.meta, recMeta{})
	e.storeTab.Set(rec.Addr, ref)
	if prev == 0 {
		// First store to this address: register it on its cache line.
		la := e.lineAddrs.Ptr(pmm.LineOf(rec.Addr))
		*la = append(*la, rec.Addr)
	}
	if d.journal != nil {
		d.journal.ops = append(d.journal.ops, JournalOp{Kind: JournalStore, Target: ref})
	}
}

// CLFlushCommitted implements Evict_SB for clflush: for every latest store
// on the flushed line that happens-before the clflush and has no earlier
// recorded flush ordered before this one, record ⟨τ, σ_clflush⟩ in its
// flushmap entry. The store is also the new persist lower bound for its
// address.
func (d *Detector) CLFlushCommitted(tid vclock.TID, addr pmm.Addr, seq vclock.Seq, cv vclock.Stamp) {
	d.applyFlush(pmm.LineOf(addr), cv, tid, seq, cv)
}

// CLWBBuffered is a no-op for the detector: a clwb guarantees nothing until
// a fence (paper Figure 4b).
func (d *Detector) CLWBBuffered(vclock.TID, pmm.Addr, vclock.Stamp) {}

// CLWBPersisted implements Evict_FB: a fence made a buffered clwb durable.
// A store is covered if it happens-before the clwb (flush.CV); the flush
// identity recorded is the fence.
func (d *Detector) CLWBPersisted(flush tso.FBEntry, fenceTID vclock.TID, fenceSeq vclock.Seq, fenceCV vclock.Stamp) {
	d.applyFlush(pmm.LineOf(flush.Addr), flush.CV, fenceTID, fenceSeq, fenceCV)
}

// FenceCommitted needs no detector action beyond what CLWBPersisted did.
func (d *Detector) FenceCommitted(vclock.TID, vclock.Seq, vclock.Stamp) {}

// applyFlush records a flush for every latest store on the line covered by
// coverCV, unless an already-recorded flush is ordered before this flush
// (orderCV) — the "first flush per thread" rule of Figure 8.
func (d *Detector) applyFlush(line pmm.Line, coverCV vclock.Stamp, flushTID vclock.TID, flushSeq vclock.Seq, orderCV vclock.Stamp) {
	e := d.Current()
	for _, a := range e.lineAddrs.At(line) {
		ref := e.storeTab.At(a)
		s := e.ByRef(ref)
		if s == nil || !d.arena.Contains(coverCV, s.TID, s.Seq) {
			continue // store did not happen-before the flush
		}
		already := false
		for n := e.meta[ref-1].flushHead; n != 0; n = e.flushArena[n-1].next {
			f := e.flushArena[n-1].ref
			if d.arena.Contains(orderCV, f.TID, f.Seq) {
				already = true // an earlier flush is ordered before this one
				break
			}
		}
		if !already {
			fr := FlushRef{TID: flushTID, Seq: flushSeq}
			e.addFlush(s, fr)
			if d.journal != nil {
				d.journal.ops = append(d.journal.ops, JournalOp{Kind: JournalFlush, Target: ref, Flush: fr})
			}
		}
		if lb := e.ByRef(e.persistTab.At(a)); lb == nil || s.Seq > lb.Seq {
			e.persistTab.Set(a, ref)
			if d.journal != nil {
				d.journal.ops = append(d.journal.ops, JournalOp{Kind: JournalPersist, Target: ref, Addr: a})
			}
		}
	}
}

// addFlush appends a flushmap entry to s's chain in the flush arena.
func (e *Execution) addFlush(s *StoreRecord, f FlushRef) {
	e.flushArena = append(e.flushArena, flushNode{ref: f})
	n := int32(len(e.flushArena))
	m := &e.meta[s.ref-1]
	if m.flushTail != 0 {
		e.flushArena[m.flushTail-1].next = n
	} else {
		m.flushHead = n
	}
	m.flushTail = n
}

var _ tso.Listener = (*Detector)(nil)

// --- post-crash checks (paper Figure 9) ---

// CheckCandidate runs the Load_NonAtomic race check for one candidate store
// s in pre-crash execution e, without committing the observation. guarded
// marks a checksum-validation load (report classified benign). It returns
// the race report, or nil if the store is persistency-safe.
//
// The engine calls this for every store the load could have read from
// (Jaaru's candidate sets); ObserveRead then commits the store actually
// read.
func (d *Detector) CheckCandidate(e *Execution, s *StoreRecord, guarded bool) *report.Race {
	if r, ok := d.checkCandidate(e, s, guarded); ok {
		return &r
	}
	return nil
}

// CandidateRaced is CheckCandidate for callers that only need the verdict:
// it records the race identically but never materializes the report on the
// heap. The engine's candidate loop checks every store a post-crash load
// could have read from, so this path runs orders of magnitude more often
// than races are actually new.
func (d *Detector) CandidateRaced(e *Execution, s *StoreRecord, guarded bool) bool {
	_, ok := d.checkCandidate(e, s, guarded)
	return ok
}

func (d *Detector) checkCandidate(e *Execution, s *StoreRecord, guarded bool) (report.Race, bool) {
	if s == nil || s.Seq == 0 || s.Atomic {
		return report.Race{}, false // initial values and atomic stores cannot tear
	}
	line := pmm.LineOf(s.Addr)
	// Condition 2 (coherence): if the post-crash execution already read an
	// atomic release store on this line ordered after s, the line persisted
	// after s completed.
	if d.arena.RefContains(e.lastflush.At(line), s.TID, s.Seq) {
		return report.Race{}, false
	}
	if d.cfg.EADR {
		// eADR: commitment is persistence. The store is safe as soon as the
		// consistent prefix contains an operation STRICTLY after it (the
		// observation proves the store completed before the crash); the
		// store's own observation proves nothing — the crash could have
		// interrupted the torn store itself.
		if d.arena.RefGet(e.cvpre, s.TID) > s.Seq {
			return report.Race{}, false
		}
	} else {
		// Conditions 3–4 (explicit flushes): a recorded flush defeats the
		// race only if it is inside the consistent prefix E+ (CVpre).
		// Baseline mode accepts any flush that happened before the crash.
		for n := e.meta[s.ref-1].flushHead; n != 0; n = e.flushArena[n-1].next {
			f := e.flushArena[n-1].ref
			if !d.cfg.Prefix || d.arena.RefContains(e.cvpre, f.TID, f.Seq) {
				return report.Race{}, false
			}
		}
	}
	field := d.label(s.Addr)
	if d.cfg.suppressed(field) {
		return report.Race{}, false // annotated away (§7.5)
	}
	r := report.Race{
		Benchmark: d.cfg.Benchmark,
		Field:     field,
		Addr:      uint64(s.Addr),
		StoreSeq:  uint64(s.Seq),
		StoreTID:  int(s.TID),
		ExecID:    e.ID,
		Benign:    guarded,
		Flushed:   e.meta[s.ref-1].flushHead != 0,
	}
	d.report.Add(r)
	return r, true
}

// ObserveRead commits that a later execution actually read store s from
// execution e: it extends the consistent prefix E+ (CVpre ∪= CVs) and, for
// atomic release stores, raises the line's write-back lower bound
// (Load_Atomic in Figure 9).
func (d *Detector) ObserveRead(e *Execution, s *StoreRecord) {
	if s == nil || s.Seq == 0 {
		return
	}
	if s.Atomic && s.Release {
		lf := e.lastflush.Ptr(pmm.LineOf(s.Addr))
		*lf = d.arena.JoinStamp(*lf, s.CV)
	}
	e.cvpre = d.arena.JoinStamp(e.cvpre, s.CV)
}

func (d *Detector) label(a pmm.Addr) string {
	if d.cfg.Labeler != nil {
		return d.cfg.Labeler(a)
	}
	return fmt.Sprintf("0x%x", uint64(a))
}
