// Package core implements the Yashme persistency-race detection algorithm —
// the paper's primary contribution (ASPLOS '22, §5–§6).
//
// A persistency race (Definition 5.1) is a load l in a post-crash execution
// E' reading from a store s in a pre-crash execution E such that:
//
//  1. s is not atomic (so the compiler may tear it or invent stores);
//  2. no atomic release store s' to s's cache line with s →hb s' was read by
//     E' before it read s (cache coherence would otherwise guarantee s
//     persisted completely);
//  3. no clflush to s's cache line happens-after s (in the consistent
//     prefix); and
//  4. no clwb to s's cache line happens-after s followed in store-buffer
//     order by a fence (in the consistent prefix).
//
// The detector maintains, per execution (paper §6):
//
//   - storemap: address → latest committed store;
//   - flushmap: store → the first flush per thread that happens-after it
//     (kept inline on each store record as Flushes);
//   - lastflush: cache line → clock-vector lower bound for when the line was
//     written back, raised when the post-crash execution reads from an
//     atomic release store on the line;
//   - CVpre: the clock vector describing the shortest pre-crash prefix E+
//     consistent with everything the post-crash execution has observed
//     (§4.2/§5.1). A flush only defeats a race report if it is inside E+;
//     otherwise there exists a derivable pre-crash execution that stopped
//     before the flush and still yields the same post-crash execution
//     (Theorem 1).
//
// Disabling the prefix expansion (Config.Prefix = false) gives the paper's
// baseline: a flush anywhere before the crash defeats the report. Table 5
// compares the two.
package core

import (
	"fmt"

	"yashme/internal/pmm"
	"yashme/internal/report"
	"yashme/internal/tso"
	"yashme/internal/vclock"
)

// FlushRef identifies one flush recorded for a store: the thread that
// guaranteed persistence and the sequence number of the operation that made
// it guaranteed (the clflush itself, or the fence completing a clwb).
type FlushRef struct {
	TID vclock.TID
	Seq vclock.Seq
}

// StoreRecord is the detector's view of one committed store.
type StoreRecord struct {
	Addr    pmm.Addr
	Size    int
	Val     uint64
	TID     vclock.TID
	Seq     vclock.Seq
	CV      vclock.VC
	Atomic  bool
	Release bool
	// Flushes is flushmap(σs): the first flush per thread that
	// happens-after this store (paper Figure 8, Evict_SB/Evict_FB).
	Flushes []FlushRef
	// Torn is set by the engine when a post-crash load actually observed
	// this store as racing; used to synthesize torn values.
	Torn bool
}

// Execution is the per-execution detector state. Executions form a stack
// (paper §6, exec): a crash during recovery pushes a new execution whose
// loads may read from any earlier one.
type Execution struct {
	ID int

	// storemap: latest committed store per address.
	storemap map[pmm.Addr]*StoreRecord
	// history: every committed store per address, in commit (σ) order.
	history map[pmm.Addr][]*StoreRecord
	// lineAddrs: which addresses on each cache line have been stored to.
	lineAddrs map[pmm.Line]map[pmm.Addr]struct{}
	// lastflush: line → lower bound clock for the line's write-back.
	lastflush map[pmm.Line]vclock.VC
	// cvpre: how much of this execution later executions have observed.
	cvpre vclock.VC
	// persistLB: per address, the latest store known persisted via an
	// explicit flush (the engine's candidate windows start here).
	persistLB map[pmm.Addr]*StoreRecord
	// crashSeq: σ at the crash ending this execution (0 while running).
	crashSeq vclock.Seq
}

func newExecution(id int) *Execution {
	return &Execution{
		ID:        id,
		storemap:  make(map[pmm.Addr]*StoreRecord),
		history:   make(map[pmm.Addr][]*StoreRecord),
		lineAddrs: make(map[pmm.Line]map[pmm.Addr]struct{}),
		lastflush: make(map[pmm.Line]vclock.VC),
		cvpre:     vclock.New(),
		persistLB: make(map[pmm.Addr]*StoreRecord),
	}
}

// History returns the commit-ordered stores to addr in this execution.
func (e *Execution) History(addr pmm.Addr) []*StoreRecord { return e.history[addr] }

// Latest returns the latest committed store to addr, or nil.
func (e *Execution) Latest(addr pmm.Addr) *StoreRecord { return e.storemap[addr] }

// PersistLB returns the latest store to addr known persisted via explicit
// flushes, or nil if no flush covered the address.
func (e *Execution) PersistLB(addr pmm.Addr) *StoreRecord { return e.persistLB[addr] }

// CrashSeq returns the σ at which this execution crashed (0 if running).
func (e *Execution) CrashSeq() vclock.Seq { return e.crashSeq }

// StoredAddrs returns every address written in this execution.
func (e *Execution) StoredAddrs() []pmm.Addr {
	out := make([]pmm.Addr, 0, len(e.storemap))
	for a := range e.storemap {
		out = append(out, a)
	}
	return out
}

// Config selects the detector variant.
type Config struct {
	// Prefix enables the paper's key idea (§4.2): check races against every
	// consistent prefix of the pre-crash execution rather than only the
	// exact crash state. False gives the Table 5 baseline.
	Prefix bool
	// EADR adapts the detector to eADR platforms (§7.5), where the cache is
	// inside the persistence domain and flushing is not required: a store is
	// fully persistent once it has committed BEFORE anything the post-crash
	// execution observed. Races shrink to stores that no observed operation
	// is ordered after — the crash could still interrupt the (compiler-torn)
	// store itself. Absence of races in the default mode implies absence
	// under EADR, never the reverse.
	EADR bool
	// Benchmark names the program under test in reports.
	Benchmark string
	// Labeler renders an address as a field name for reports (normally
	// Heap.LabelFor). May be nil.
	Labeler func(pmm.Addr) string
	// Suppress lists normalized field labels whose races are not reported —
	// the paper's proposed annotation mechanism for stores that are only
	// consumed by checksum validation (§7.5, "a future implementation of
	// Yashme could use annotations to suppress race warnings").
	Suppress []string
}

// suppressed reports whether the label is annotated away.
func (c Config) suppressed(label string) bool {
	n := report.NormalizeField(label)
	for _, s := range c.Suppress {
		if s == n {
			return true
		}
	}
	return false
}

// Detector implements the Yashme algorithm over the event stream of a
// tso.Machine. It satisfies tso.Listener for the current execution.
type Detector struct {
	cfg    Config
	execs  []*Execution
	report *report.Set
}

// New returns a detector with an initial (first pre-crash) execution.
func New(cfg Config) *Detector {
	d := &Detector{cfg: cfg, report: report.NewSet()}
	d.execs = append(d.execs, newExecution(0))
	return d
}

// Report returns the accumulated race reports.
func (d *Detector) Report() *report.Set { return d.report }

// Current returns the execution currently being recorded.
func (d *Detector) Current() *Execution { return d.execs[len(d.execs)-1] }

// Executions returns the execution stack, oldest first.
func (d *Detector) Executions() []*Execution { return d.execs }

// EndExecution marks the current execution crashed at crashSeq and pushes a
// fresh execution for the post-crash run.
func (d *Detector) EndExecution(crashSeq vclock.Seq) *Execution {
	d.Current().crashSeq = crashSeq
	e := newExecution(len(d.execs))
	d.execs = append(d.execs, e)
	return e
}

// --- tso.Listener: pre-crash bookkeeping (paper Figure 8) ---

// StoreCommitted implements Evict_SB for stores: update storemap/history.
func (d *Detector) StoreCommitted(rec *tso.CommittedStore) {
	e := d.Current()
	sr := &StoreRecord{
		Addr: rec.Addr, Size: rec.Size, Val: rec.Val,
		TID: rec.TID, Seq: rec.Seq, CV: rec.CV,
		Atomic: rec.Atomic, Release: rec.Release,
	}
	e.storemap[rec.Addr] = sr
	e.history[rec.Addr] = append(e.history[rec.Addr], sr)
	line := pmm.LineOf(rec.Addr)
	set, ok := e.lineAddrs[line]
	if !ok {
		set = make(map[pmm.Addr]struct{})
		e.lineAddrs[line] = set
	}
	set[rec.Addr] = struct{}{}
}

// CLFlushCommitted implements Evict_SB for clflush: for every latest store
// on the flushed line that happens-before the clflush and has no earlier
// recorded flush ordered before this one, record ⟨τ, σ_clflush⟩ in its
// flushmap entry. The store is also the new persist lower bound for its
// address.
func (d *Detector) CLFlushCommitted(tid vclock.TID, addr pmm.Addr, seq vclock.Seq, cv vclock.VC) {
	d.applyFlush(pmm.LineOf(addr), cv, tid, seq, cv)
}

// CLWBBuffered is a no-op for the detector: a clwb guarantees nothing until
// a fence (paper Figure 4b).
func (d *Detector) CLWBBuffered(vclock.TID, pmm.Addr, vclock.VC) {}

// CLWBPersisted implements Evict_FB: a fence made a buffered clwb durable.
// A store is covered if it happens-before the clwb (flush.CV); the flush
// identity recorded is the fence.
func (d *Detector) CLWBPersisted(flush tso.FBEntry, fenceTID vclock.TID, fenceSeq vclock.Seq, fenceCV vclock.VC) {
	d.applyFlush(pmm.LineOf(flush.Addr), flush.CV, fenceTID, fenceSeq, fenceCV)
}

// FenceCommitted needs no detector action beyond what CLWBPersisted did.
func (d *Detector) FenceCommitted(vclock.TID, vclock.Seq, vclock.VC) {}

// applyFlush records a flush for every latest store on the line covered by
// coverCV, unless an already-recorded flush is ordered before this flush
// (orderCV) — the "first flush per thread" rule of Figure 8.
func (d *Detector) applyFlush(line pmm.Line, coverCV vclock.VC, flushTID vclock.TID, flushSeq vclock.Seq, orderCV vclock.VC) {
	e := d.Current()
	for a := range e.lineAddrs[line] {
		s := e.storemap[a]
		if s == nil || !coverCV.Contains(s.TID, s.Seq) {
			continue // store did not happen-before the flush
		}
		already := false
		for _, f := range s.Flushes {
			if orderCV.Contains(f.TID, f.Seq) {
				already = true // an earlier flush is ordered before this one
				break
			}
		}
		if !already {
			s.Flushes = append(s.Flushes, FlushRef{TID: flushTID, Seq: flushSeq})
		}
		if lb := e.persistLB[a]; lb == nil || s.Seq > lb.Seq {
			e.persistLB[a] = s
		}
	}
}

var _ tso.Listener = (*Detector)(nil)

// --- post-crash checks (paper Figure 9) ---

// CheckCandidate runs the Load_NonAtomic race check for one candidate store
// s in pre-crash execution e, without committing the observation. guarded
// marks a checksum-validation load (report classified benign). It returns
// the race report, or nil if the store is persistency-safe.
//
// The engine calls this for every store the load could have read from
// (Jaaru's candidate sets); ObserveRead then commits the store actually
// read.
func (d *Detector) CheckCandidate(e *Execution, s *StoreRecord, guarded bool) *report.Race {
	if s == nil || s.Seq == 0 || s.Atomic {
		return nil // initial values and atomic stores cannot tear
	}
	line := pmm.LineOf(s.Addr)
	// Condition 2 (coherence): if the post-crash execution already read an
	// atomic release store on this line ordered after s, the line persisted
	// after s completed.
	if lf, ok := e.lastflush[line]; ok && lf.Contains(s.TID, s.Seq) {
		return nil
	}
	if d.cfg.EADR {
		// eADR: commitment is persistence. The store is safe as soon as the
		// consistent prefix contains an operation STRICTLY after it (the
		// observation proves the store completed before the crash); the
		// store's own observation proves nothing — the crash could have
		// interrupted the torn store itself.
		if e.cvpre.Get(s.TID) > s.Seq {
			return nil
		}
	} else {
		// Conditions 3–4 (explicit flushes): a recorded flush defeats the
		// race only if it is inside the consistent prefix E+ (CVpre).
		// Baseline mode accepts any flush that happened before the crash.
		for _, f := range s.Flushes {
			if !d.cfg.Prefix || e.cvpre.Contains(f.TID, f.Seq) {
				return nil
			}
		}
	}
	if d.cfg.suppressed(d.label(s.Addr)) {
		return nil // annotated away (§7.5)
	}
	r := report.Race{
		Benchmark: d.cfg.Benchmark,
		Field:     d.label(s.Addr),
		Addr:      uint64(s.Addr),
		StoreSeq:  uint64(s.Seq),
		StoreTID:  int(s.TID),
		ExecID:    e.ID,
		Benign:    guarded,
		Flushed:   len(s.Flushes) > 0,
	}
	d.report.Add(r)
	return &r
}

// ObserveRead commits that a later execution actually read store s from
// execution e: it extends the consistent prefix E+ (CVpre ∪= CVs) and, for
// atomic release stores, raises the line's write-back lower bound
// (Load_Atomic in Figure 9).
func (d *Detector) ObserveRead(e *Execution, s *StoreRecord) {
	if s == nil || s.Seq == 0 {
		return
	}
	if s.Atomic && s.Release {
		line := pmm.LineOf(s.Addr)
		lf, ok := e.lastflush[line]
		if !ok {
			lf = vclock.New()
			e.lastflush[line] = lf
		}
		lf.Join(s.CV)
	}
	e.cvpre.Join(s.CV)
}

func (d *Detector) label(a pmm.Addr) string {
	if d.cfg.Labeler != nil {
		return d.cfg.Labeler(a)
	}
	return fmt.Sprintf("0x%x", uint64(a))
}
