package core

import (
	"testing"

	"yashme/internal/pmm"
)

// TestCloneIndependence: a cloned detector and its original may be mutated
// independently. The checkpoint layer treats captured clones as read-only
// templates shared across workers, so any mutation leaking back into the
// original (or from it) would corrupt every later crash scenario.
func TestCloneIndependence(t *testing.T) {
	r := newRig(true)
	r.m.EnqueueStore(0, addrX, 8, 1, false, false)
	r.m.EnqueueStore(0, addrZ, 8, 2, false, false)
	r.m.DrainSB(0)

	nd := r.d.Clone()
	origExec := r.d.Current()
	origStore := origExec.Latest(addrX)
	// Store identity is positional, and committed records are immutable, so
	// the clone shares the arena: the same ref resolves to the same record.
	cloneStore := nd.Current().ByRef(origStore.Ref())
	if cloneStore == nil {
		t.Fatal("ref must resolve in the clone")
	}
	if cloneStore.Addr != origStore.Addr || cloneStore.Seq != origStore.Seq {
		t.Fatalf("cloned record differs: %+v vs %+v", cloneStore, origStore)
	}

	// Mutate the clone: flush X's line (appends to the record's flushmap
	// chain), crash, and report a race on the unflushed Z. The machine clone
	// reports to the detector clone, so the two pairs evolve independently.
	nm := r.m.Clone(nd)
	nm.EnqueueCLFlush(0, addrX)
	nm.DrainSB(0)
	ce := nd.Current()
	nd.EndExecution(nm.CurSeq())
	if race := nd.CheckCandidate(ce, ce.Latest(addrZ), false); race == nil {
		t.Fatal("clone: unflushed non-atomic store must race")
	}

	if got := len(origExec.FlushesOf(origStore)); got != 0 {
		t.Errorf("original store gained %d flushes from the clone's clflush", got)
	}
	if got := len(ce.FlushesOf(ce.Latest(addrX))); got != 1 {
		t.Errorf("clone store has %d flushes, want 1", got)
	}
	if got := r.d.Report().Count(); got != 0 {
		t.Errorf("original report has %d races after the clone reported one", got)
	}
	if got := len(r.d.Executions()); got != 1 {
		t.Errorf("original has %d executions after the clone crashed, want 1", got)
	}

	// The other direction: race on the original, check the clone's report.
	e := r.d.Current()
	r.d.EndExecution(r.m.CurSeq())
	if race := r.d.CheckCandidate(e, e.Latest(addrX), false); race == nil {
		t.Fatal("original: unflushed non-atomic store must race")
	}
	if got := nd.Report().Count(); got != 1 {
		t.Errorf("clone report has %d races after the original reported another, want 1", got)
	}
}

// TestCloneNoAliasing drives both the template and a clone resumed from it
// through every mutation path the engine exercises after a checkpoint resume
// — new commits (arena growth), flushes (flush-arena growth and chain
// links), observations (lastflush/CVpre joins), Torn marks — and asserts
// nothing leaks either way. Run under -race this also proves the two share
// no writable memory.
func TestCloneNoAliasing(t *testing.T) {
	r := newRig(true)
	r.m.EnqueueStore(0, addrX, 8, 1, false, false)
	r.m.EnqueueStore(0, addrY, 8, 2, true, true) // release on X's line
	r.m.EnqueueStore(0, addrZ, 8, 3, false, false)
	r.m.DrainSB(0)

	nd := r.d.Clone()
	nm := r.m.Clone(nd)

	// Grow every arena and table on the clone only.
	nm.EnqueueStore(0, addrZ+8, 8, 4, false, false) // same line as Z: lineAddrs append
	nm.EnqueueCLFlush(0, addrZ)                     // flush arena growth
	nm.DrainSB(0)
	ce := nd.Current()
	nd.EndExecution(nm.CurSeq())
	nd.ObserveRead(ce, ce.Latest(addrY)) // lastflush join + cvpre join
	ce.MarkTorn(ce.Latest(addrX))

	oe := r.d.Current()
	if got := oe.Latest(addrZ + 8); got != nil {
		t.Errorf("clone's commit leaked into the original: %+v", got)
	}
	if got := len(oe.FlushesOf(oe.Latest(addrZ))); got != 0 {
		t.Errorf("clone's flush leaked into the original: %d entries", got)
	}
	if r.d.ClockArena().At(oe.cvpre).Max() != 0 {
		t.Errorf("clone's observation extended the original's CVpre: %v", r.d.ClockArena().At(oe.cvpre))
	}
	if r.d.ClockArena().At(oe.lastflush.At(pmm.LineOf(addrY))).Max() != 0 {
		t.Errorf("clone's lastflush join leaked into the original")
	}
	if oe.WasTorn(oe.Latest(addrX)) {
		t.Error("clone's Torn mark leaked into the original record")
	}

	// And the reverse: mutate the original, check the clone.
	r.m.EnqueueCLFlush(0, addrX)
	r.m.DrainSB(0)
	r.d.ObserveRead(oe, oe.Latest(addrZ))
	oe.MarkTorn(oe.Latest(addrZ))
	if got := len(ce.FlushesOf(ce.Latest(addrX))); got != 0 {
		t.Errorf("original's flush leaked into the clone: %d entries", got)
	}
	if ce.WasTorn(ce.Latest(addrZ)) {
		t.Error("original's Torn mark leaked into the clone record")
	}
	if nd.ClockArena().At(ce.cvpre).Get(0) != 2 {
		t.Errorf("clone CVpre = %v, want its own observation of seq 2 only", nd.ClockArena().At(ce.cvpre))
	}
}
