package core

import (
	"testing"
)

// TestCloneIndependence: a cloned detector and its original may be mutated
// independently. The checkpoint layer treats captured clones as read-only
// templates shared across workers, so any mutation leaking back into the
// original (or from it) would corrupt every later crash scenario.
func TestCloneIndependence(t *testing.T) {
	r := newRig(true)
	r.m.EnqueueStore(0, addrX, 8, 1, false, false)
	r.m.EnqueueStore(0, addrZ, 8, 2, false, false)
	r.m.DrainSB(0)

	nd, rm := r.d.Clone()
	origStore := r.d.Current().Latest(addrX)
	cloneStore := rm.Stores[origStore]
	if cloneStore == nil || cloneStore == origStore {
		t.Fatalf("remap must map the store to a distinct clone (got %p -> %p)", origStore, cloneStore)
	}

	// Mutate the clone: flush X's line (appends to the record's Flushes),
	// crash, and report a race on the unflushed Z. The machine clone reports
	// to the detector clone, so the two pairs evolve independently.
	nm := r.m.Clone(nd)
	nm.EnqueueCLFlush(0, addrX)
	nm.DrainSB(0)
	ce := nd.Current()
	nd.EndExecution(nm.CurSeq())
	if race := nd.CheckCandidate(ce, ce.Latest(addrZ), false); race == nil {
		t.Fatal("clone: unflushed non-atomic store must race")
	}

	if len(origStore.Flushes) != 0 {
		t.Errorf("original store gained %d flushes from the clone's clflush", len(origStore.Flushes))
	}
	if len(cloneStore.Flushes) != 1 {
		t.Errorf("clone store has %d flushes, want 1", len(cloneStore.Flushes))
	}
	if got := r.d.Report().Count(); got != 0 {
		t.Errorf("original report has %d races after the clone reported one", got)
	}
	if got := len(r.d.Executions()); got != 1 {
		t.Errorf("original has %d executions after the clone crashed, want 1", got)
	}

	// The other direction: race on the original, check the clone's report.
	e := r.d.Current()
	r.d.EndExecution(r.m.CurSeq())
	if race := r.d.CheckCandidate(e, e.Latest(addrX), false); race == nil {
		t.Fatal("original: unflushed non-atomic store must race")
	}
	if got := nd.Report().Count(); got != 1 {
		t.Errorf("clone report has %d races after the original reported another, want 1", got)
	}
}
