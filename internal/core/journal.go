// Delta-checkpoint support: a mutation journal over the detector's
// pre-crash state, plus the state signature that backs crash-image
// memoization (both consumed by internal/engine's checkpoint layer).
//
// During a probe run the only detector state that changes between two
// crash points of the pre-crash execution is appended or derived from
// appends: StoreCommitted appends a StoreRecord (and registers a first
// store on its line), and applyFlush appends a flushmap node and/or raises
// an address's persist lower bound. Every other Listener method is a
// pre-crash no-op (CLWBBuffered, FenceCommitted), and the read-side state
// (lastflush, cvpre, the report) mutates only in post-crash executions.
// Journaling those three mutation kinds therefore captures the detector's
// evolution exactly: replaying a journal segment onto a clone of an
// earlier snapshot reproduces, bit for bit, the clone a full capture at
// the later point would have taken.
package core

import (
	"yashme/internal/pmm"
	"yashme/internal/vclock"
)

// JournalOpKind discriminates the three detector mutations a pre-crash
// execution can perform.
type JournalOpKind uint8

const (
	// JournalStore is a StoreCommitted append: Target is the ref of the
	// appended record. The record itself is not copied into the op — store
	// records are immutable once committed, so the journal freezes a view
	// of the watched execution's arena at detach time and replay reads the
	// record from there, re-deriving the storemap entry and, for a first
	// store, the line's address list.
	JournalStore JournalOpKind = iota
	// JournalFlush is an applyFlush flushmap append: Target names the
	// covered store, Flush the recorded flush identity.
	JournalFlush
	// JournalPersist is an applyFlush persist-lower-bound raise: Target
	// becomes Addr's persistTab entry.
	JournalPersist
)

// JournalOp is one recorded detector mutation.
type JournalOp struct {
	Kind   JournalOpKind
	Target StoreRef // the appended (JournalStore) or covered store
	Flush  FlushRef // JournalFlush: the flush identity
	Addr   pmm.Addr // JournalPersist: the address whose bound rises
}

// JournalOpBytes is the estimated retained size of one journal op (the
// struct above plus slice-growth overhead), used for Stats.SnapshotBytes
// accounting. A fixed constant keeps the accounting platform-stable.
const JournalOpBytes = 32

// Journal accumulates the mutations of one watched execution. The engine
// attaches it for the duration of a probe run (SetJournal), marks segment
// boundaries at each crash point (Mark), and detaches it before the
// recovery execution starts so post-crash appends never pollute it.
// Detaching freezes a view of the watched execution's arena: replay resolves
// JournalStore refs against it, and a replayed clone extends its shared
// arena view over it instead of copying records.
type Journal struct {
	ops   []JournalOp
	arena []StoreRecord
	// clocks is the clock arena's frozen snapshot view at detach time:
	// every stamp or ref recorded by the watched run resolves in it.
	clocks []vclock.VC
}

// Mark returns the current segment boundary: ops[lo:hi] for two
// consecutive marks is exactly what happened between them.
func (j *Journal) Mark() int { return len(j.ops) }

// Len returns the total ops recorded.
func (j *Journal) Len() int { return len(j.ops) }

// SetJournal attaches (or, with nil, detaches) the mutation journal. Only
// the current execution's mutations are recorded; clones never inherit the
// attachment (Clone builds a fresh Detector). Detaching freezes the
// attached journal's arena view; replay is only valid after that.
func (d *Detector) SetJournal(j *Journal) {
	if j == nil && d.journal != nil {
		e := d.Current()
		d.journal.arena = e.arena[:len(e.arena):len(e.arena)]
		d.journal.clocks = d.arena.View()
	}
	d.journal = j
}

// ReplayJournal applies ops [lo, hi) of j to the current execution. The
// receiver must be a clone of the detector as it stood at the journal
// position lo — in particular its arena is a prefix view of the journal's
// frozen arena, so a JournalStore op extends the view over the frozen
// record (a ref is 1-based, so it doubles as the arena length after its
// append) rather than copying it. Afterwards the execution is
// bit-equivalent to a clone taken at hi.
func (d *Detector) ReplayJournal(j *Journal, lo, hi int) {
	// Adopt the journal's frozen clock view outright: the clone's own view
	// is a prefix of it (both came from the watched detector's append-only
	// arena), so every ref taken at any journal position resolves
	// identically, including the replayed records' stamps.
	d.arena.AdoptView(j.clocks)
	e := d.Current()
	for i := lo; i < hi; i++ {
		op := &j.ops[i]
		switch op.Kind {
		case JournalStore:
			e.arena = j.arena[:op.Target:op.Target]
			e.meta = append(e.meta, recMeta{})
			rec := &e.arena[op.Target-1]
			e.storeTab.Set(rec.Addr, rec.ref)
			if rec.prevSameAddr == 0 {
				la := e.lineAddrs.Ptr(pmm.LineOf(rec.Addr))
				*la = append(*la, rec.Addr)
			}
		case JournalFlush:
			e.addFlush(e.ByRef(op.Target), op.Flush)
		case JournalPersist:
			e.persistTab.Set(op.Addr, op.Target)
		}
	}
}

// CloneReplay clones the detector and replays journal ops [lo, hi) onto the
// clone's current execution in one sized pass: the segment is pre-scanned
// for its append counts and high-water address, so the meta and flush
// arenas and every table of the replayed execution allocate once at their
// final sizes instead of being cloned at keyframe size and regrown during
// replay (the store arena is shared either way). Bit-equivalent to Clone
// followed by ReplayJournal — this is the checkpoint layer's delta
// materialization fast path.
func (d *Detector) CloneReplay(j *Journal, lo, hi int) *Detector {
	var stores, flushes int
	var maxAddr pmm.Addr
	for i := lo; i < hi; i++ {
		op := &j.ops[i]
		a := op.Addr
		switch op.Kind {
		case JournalStore:
			stores++
			a = j.arena[op.Target-1].Addr
		case JournalFlush:
			flushes++
		}
		if a > maxAddr {
			maxAddr = a
		}
	}
	nd := &Detector{cfg: d.cfg, report: d.report.Clone(), arena: d.arena.Clone()}
	nd.execs = make([]*Execution, len(d.execs))
	for i, e := range d.execs {
		if i == len(d.execs)-1 {
			nd.execs[i] = e.cloneSized(stores, flushes, maxAddr)
		} else {
			nd.execs[i] = e.clone()
		}
	}
	nd.ReplayJournal(j, lo, hi)
	return nd
}

// appendU64 serializes v little-endian into buf.
func appendU64(buf []byte, v uint64) []byte {
	return append(buf,
		byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

// AppendStateSignature serializes the execution's crash-visible detector
// state into buf and returns the extended slice: arena and flush-arena
// lengths, then per stored address (ascending) the storemap ref, the
// persist lower bound, and the full flush chain of every record in the
// address's history (newest first). Two probe points of one schedule with
// equal signatures hold byte-identical image-determining state — the
// stores, their values and order (positional refs over append-only arenas
// make equal refs name equal records within one run), what was flushed,
// and what the persist floors are. crashSeq is deliberately excluded: it
// feeds only the trace recorder and test accessors, never an image or a
// race verdict.
func (e *Execution) AppendStateSignature(buf []byte) []byte {
	buf = appendU64(buf, uint64(len(e.arena)))
	buf = appendU64(buf, uint64(len(e.flushArena)))
	for a, n := pmm.Addr(0), pmm.Addr(e.storeTab.Len()); a < n; a++ {
		ref := e.storeTab.At(a)
		if ref == 0 {
			continue
		}
		buf = appendU64(buf, uint64(a))
		buf = appendU64(buf, uint64(ref))
		buf = appendU64(buf, uint64(e.persistTab.At(a)))
		for s := e.ByRef(ref); s != nil; s = e.ByRef(s.prevSameAddr) {
			head := e.meta[s.ref-1].flushHead
			cnt := uint64(0)
			for f := head; f != 0; f = e.flushArena[f-1].next {
				cnt++
			}
			buf = appendU64(buf, cnt)
			for f := head; f != 0; f = e.flushArena[f-1].next {
				fr := e.flushArena[f-1].ref
				buf = appendU64(buf, uint64(fr.TID))
				buf = appendU64(buf, uint64(fr.Seq))
			}
		}
	}
	return buf
}

// Estimated retained bytes per unit of detector state, for
// Stats.SnapshotBytes accounting (fixed constants keep the numbers
// platform-stable; they track the struct sizes above within a few bytes).
// The store arena does not appear: committed records are immutable and
// shared between clones, so a clone retains no arena bytes of its own.
const (
	recMetaBytes   = 12
	flushNodeBytes = 16
	tableSlotBytes = 4
	lineSlotBytes  = 24 // slice/clock headers in the per-line tables
)

// FootprintBytes estimates the retained size of a full detector clone —
// what one full-capture snapshot costs and what a delta checkpoint avoids.
func (d *Detector) FootprintBytes() int64 {
	var n int64
	for _, e := range d.execs {
		n += int64(len(e.meta)) * recMetaBytes
		n += int64(len(e.flushArena)) * flushNodeBytes
		n += int64(e.storeTab.Len()+e.persistTab.Len()) * tableSlotBytes
		n += int64(e.lineAddrs.Len()) * lineSlotBytes
		// lastflush slots shrank from owned clocks to 4-byte arena refs.
		n += int64(e.lastflush.Len()) * tableSlotBytes
	}
	return n
}
