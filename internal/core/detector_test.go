package core

import (
	"testing"

	"yashme/internal/pmm"
	"yashme/internal/tso"
	"yashme/internal/vclock"
)

// rig wires a detector to a TSO machine for a single pre-crash execution.
type rig struct {
	d *Detector
	m *tso.Machine
}

func newRig(prefix bool) *rig {
	d := New(Config{Prefix: prefix, Benchmark: "test"})
	return &rig{d: d, m: tso.NewMachine(d)}
}

// crash ends the pre-crash execution and returns it for post-crash checks.
func (r *rig) crash() *Execution {
	e := r.d.Current()
	r.d.EndExecution(r.m.CurSeq())
	return e
}

const (
	addrX = pmm.Addr(0x1000) // line 0x40
	addrY = pmm.Addr(0x1008) // same line as X
	addrZ = pmm.Addr(0x2000) // different line
)

func TestRaceWhenStoreNeverFlushed(t *testing.T) {
	r := newRig(true)
	r.m.EnqueueStore(0, addrX, 8, 1, false, false)
	r.m.DrainSB(0)
	e := r.crash()
	s := e.Latest(addrX)
	if s == nil {
		t.Fatal("store not recorded")
	}
	if race := r.d.CheckCandidate(e, s, false); race == nil {
		t.Fatal("unflushed non-atomic store must race")
	}
	if r.d.Report().Count() != 1 {
		t.Fatalf("report count = %d", r.d.Report().Count())
	}
}

func TestAtomicStoreNeverRaces(t *testing.T) {
	r := newRig(true)
	r.m.EnqueueStore(0, addrX, 8, 1, true, true)
	r.m.DrainSB(0)
	e := r.crash()
	if race := r.d.CheckCandidate(e, e.Latest(addrX), false); race != nil {
		t.Fatal("atomic store reported as persistency race (Def 5.1 cond 1)")
	}
}

func TestInitialValueNeverRaces(t *testing.T) {
	r := newRig(true)
	e := r.crash()
	if race := r.d.CheckCandidate(e, nil, false); race != nil {
		t.Fatal("nil store raced")
	}
	seeded := &StoreRecord{Addr: addrX, Seq: 0}
	if race := r.d.CheckCandidate(e, seeded, false); race != nil {
		t.Fatal("seq-0 (initial) store raced")
	}
}

// Figure 5(b)/6(a): the store was flushed before the crash, but the
// post-crash execution has not observed anything ordered after the flush, so
// a consistent prefix exists that stops before the flush — prefix mode must
// still report the race; baseline mode must not.
func TestPrefixFindsRaceBeyondWindow(t *testing.T) {
	for _, prefix := range []bool{true, false} {
		r := newRig(prefix)
		r.m.EnqueueStore(0, addrX, 8, 1, false, false)
		r.m.EnqueueCLFlush(0, addrX)
		r.m.DrainSB(0)
		e := r.crash()
		s := e.Latest(addrX)
		if len(e.FlushesOf(s)) != 1 {
			t.Fatalf("flushmap entries = %d, want 1", len(e.FlushesOf(s)))
		}
		race := r.d.CheckCandidate(e, s, false)
		if prefix && race == nil {
			t.Error("prefix mode missed the race outside the crash window")
		}
		if !prefix && race != nil {
			t.Error("baseline mode reported a race although the store was flushed")
		}
		if prefix && race != nil && !race.Flushed {
			t.Error("race should be marked as flushed-pre-crash (prefix-only find)")
		}
	}
}

// Figure 6(b): once the post-crash execution reads a store ordered after the
// clflush, the flush is in every consistent prefix and the race disappears.
func TestPrefixClosedByLaterObservation(t *testing.T) {
	r := newRig(true)
	r.m.EnqueueStore(0, addrX, 8, 1, false, false)
	r.m.EnqueueCLFlush(0, addrX)
	r.m.EnqueueStore(0, addrZ, 8, 2, true, true) // release store after flush
	r.m.DrainSB(0)
	e := r.crash()

	// Post-crash reads the release store to Z first: CVpre now covers the
	// clflush.
	r.d.ObserveRead(e, e.Latest(addrZ))
	if race := r.d.CheckCandidate(e, e.Latest(addrX), false); race != nil {
		t.Fatal("race reported although the flush is inside the consistent prefix")
	}
}

// Definition 5.1 condition 2: reading a later atomic release store on the
// same cache line guarantees the earlier store persisted (cache coherence).
func TestCoherenceDefeatsRace(t *testing.T) {
	r := newRig(true)
	r.m.EnqueueStore(0, addrX, 8, 1, false, false) // non-atomic
	r.m.EnqueueStore(0, addrY, 8, 2, true, true)   // release, same line
	r.m.DrainSB(0)
	e := r.crash()

	// Post-crash reads Y (atomic) before X.
	r.d.ObserveRead(e, e.Latest(addrY))
	if race := r.d.CheckCandidate(e, e.Latest(addrX), false); race != nil {
		t.Fatal("coherence-protected store reported as race")
	}
}

func TestCoherenceOnOtherLineDoesNotProtect(t *testing.T) {
	r := newRig(true)
	r.m.EnqueueStore(0, addrX, 8, 1, false, false)
	r.m.EnqueueStore(0, addrZ, 8, 2, true, true) // release on a different line
	r.m.DrainSB(0)
	e := r.crash()
	r.d.ObserveRead(e, e.Latest(addrZ))
	// CVpre now covers the store to X... but no flush exists at all, so the
	// race stands regardless of the prefix.
	if race := r.d.CheckCandidate(e, e.Latest(addrX), false); race == nil {
		t.Fatal("release store on another line wrongly protected the store")
	}
}

// Order matters for coherence: if the post-crash execution reads the racy
// store BEFORE the release store, the race must be reported (Def 5.1 cond 2:
// "E' reads from s' before it reads from s").
func TestCoherenceOrderSensitivity(t *testing.T) {
	r := newRig(true)
	r.m.EnqueueStore(0, addrX, 8, 1, false, false)
	r.m.EnqueueStore(0, addrY, 8, 2, true, true)
	r.m.DrainSB(0)
	e := r.crash()

	// Check X first (no prior observation of Y): race.
	if race := r.d.CheckCandidate(e, e.Latest(addrX), false); race == nil {
		t.Fatal("race missed when racy load precedes the atomic read")
	}
}

// Definition 5.1 condition 4: clwb alone does not persist; clwb+sfence does.
func TestCLWBWithoutFenceStillRaces(t *testing.T) {
	r := newRig(true)
	r.m.EnqueueStore(0, addrX, 8, 1, false, false)
	r.m.EnqueueCLWB(0, addrX)
	r.m.DrainSB(0) // clwb sits in the flush buffer, no fence
	e := r.crash()
	s := e.Latest(addrX)
	if len(e.FlushesOf(s)) != 0 {
		t.Fatalf("clwb without fence recorded a flush: %v", e.FlushesOf(s))
	}
	if race := r.d.CheckCandidate(e, s, false); race == nil {
		t.Fatal("clwb without fence must not defeat the race")
	}
}

func TestCLWBPlusSFencePersists(t *testing.T) {
	r := newRig(false) // baseline: any pre-crash flush defeats the race
	r.m.EnqueueStore(0, addrX, 8, 1, false, false)
	r.m.EnqueueCLWB(0, addrX)
	r.m.EnqueueSFence(0)
	r.m.DrainSB(0)
	e := r.crash()
	s := e.Latest(addrX)
	if len(e.FlushesOf(s)) != 1 {
		t.Fatalf("flushmap entries = %d, want 1", len(e.FlushesOf(s)))
	}
	if race := r.d.CheckCandidate(e, s, false); race != nil {
		t.Fatal("clwb+sfence did not defeat the race in baseline mode")
	}
}

func TestCLWBPlusMFencePersists(t *testing.T) {
	r := newRig(false)
	r.m.EnqueueStore(0, addrX, 8, 1, false, false)
	r.m.EnqueueCLWB(0, addrX)
	r.m.MFence(0)
	e := r.crash()
	if len(e.FlushesOf(e.Latest(addrX))) != 1 {
		t.Fatal("mfence did not complete the clwb")
	}
}

// A clflush ordered BEFORE the store (program order) cannot persist it.
func TestFlushBeforeStoreDoesNotCount(t *testing.T) {
	r := newRig(true)
	r.m.EnqueueCLFlush(0, addrX)
	r.m.EnqueueStore(0, addrX, 8, 1, false, false)
	r.m.DrainSB(0)
	e := r.crash()
	s := e.Latest(addrX)
	if len(e.FlushesOf(s)) != 0 {
		t.Fatalf("flush before store recorded in flushmap: %v", e.FlushesOf(s))
	}
	if race := r.d.CheckCandidate(e, s, false); race == nil {
		t.Fatal("store after its line's flush must race")
	}
}

// Cross-thread: a clflush by thread 1 with no happens-before edge from
// thread 0's store does not persist that store; with a release/acquire edge
// it does.
func TestCrossThreadFlushNeedsHappensBefore(t *testing.T) {
	// Without synchronization.
	r := newRig(false)
	r.m.EnqueueStore(0, addrX, 8, 1, false, false)
	r.m.DrainSB(0)
	r.m.EnqueueCLFlush(1, addrX)
	r.m.DrainSB(1)
	e := r.crash()
	if got := len(e.FlushesOf(e.Latest(addrX))); got != 0 {
		t.Fatalf("unsynchronized cross-thread flush recorded: %d", got)
	}

	// With release/acquire synchronization.
	r = newRig(false)
	r.m.EnqueueStore(0, addrX, 8, 1, false, false)
	r.m.EnqueueStore(0, addrZ, 8, 1, true, true) // release flag
	r.m.DrainSB(0)
	r.m.Load(1, addrZ, 8, true) // acquire
	r.m.EnqueueCLFlush(1, addrX)
	r.m.DrainSB(1)
	e = r.crash()
	if got := len(e.FlushesOf(e.Latest(addrX))); got != 1 {
		t.Fatalf("synchronized cross-thread flush not recorded: %d", got)
	}
}

// flushmap keeps only the first flush per thread ordering chain (Figure 8's
// "no other clflush ordered between").
func TestFlushmapFirstFlushOnly(t *testing.T) {
	r := newRig(true)
	r.m.EnqueueStore(0, addrX, 8, 1, false, false)
	r.m.EnqueueCLFlush(0, addrX)
	r.m.EnqueueCLFlush(0, addrX)
	r.m.DrainSB(0)
	e := r.crash()
	if got := len(e.FlushesOf(e.Latest(addrX))); got != 1 {
		t.Fatalf("flushmap entries = %d, want 1 (first flush only)", got)
	}
}

// A flush only covers the latest store to each address; a store committed
// after the flush races.
func TestStoreAfterFlushRaces(t *testing.T) {
	r := newRig(false)
	r.m.EnqueueStore(0, addrX, 8, 1, false, false)
	r.m.EnqueueCLFlush(0, addrX)
	r.m.EnqueueStore(0, addrX, 8, 2, false, false)
	r.m.DrainSB(0)
	e := r.crash()
	s := e.Latest(addrX)
	if s.Val != 2 {
		t.Fatalf("latest store val = %d", s.Val)
	}
	if race := r.d.CheckCandidate(e, s, false); race == nil {
		t.Fatal("store after flush must race")
	}
	// The earlier store is persisted and is the persist lower bound.
	if lb := e.PersistLB(addrX); lb == nil || lb.Val != 1 {
		t.Fatalf("persist lower bound = %+v, want store val 1", lb)
	}
}

func TestGuardedLoadReportsBenign(t *testing.T) {
	r := newRig(true)
	r.m.EnqueueStore(0, addrX, 8, 1, false, false)
	r.m.DrainSB(0)
	e := r.crash()
	race := r.d.CheckCandidate(e, e.Latest(addrX), true)
	if race == nil || !race.Benign {
		t.Fatalf("guarded race = %+v, want benign", race)
	}
	if r.d.Report().Count() != 0 || r.d.Report().BenignCount() != 1 {
		t.Fatalf("report counts = %d/%d", r.d.Report().Count(), r.d.Report().BenignCount())
	}
}

func TestDedupSameFieldManyScenarios(t *testing.T) {
	r := newRig(true)
	r.m.EnqueueStore(0, addrX, 8, 1, false, false)
	r.m.EnqueueStore(0, addrX, 8, 2, false, false)
	r.m.DrainSB(0)
	e := r.crash()
	for _, s := range e.History(addrX) {
		r.d.CheckCandidate(e, s, false)
	}
	if r.d.Report().Count() != 1 {
		t.Fatalf("deduplicated count = %d, want 1", r.d.Report().Count())
	}
	if r.d.Report().RawCount != 2 {
		t.Fatalf("raw count = %d, want 2", r.d.Report().RawCount)
	}
}

// Multi-crash (§6, exec stack): a store in the recovery execution that is
// not flushed races when a second post-crash execution reads it.
func TestExecutionStackMultiCrash(t *testing.T) {
	r := newRig(true)
	// Execution 0: store + flush (safe).
	r.m.EnqueueStore(0, addrX, 8, 1, false, false)
	r.m.EnqueueCLFlush(0, addrX)
	r.m.DrainSB(0)
	e0 := r.crash()

	// Execution 1 (recovery): unflushed store to Z on a fresh machine.
	m1 := tso.NewMachine(r.d)
	m1.EnqueueStore(0, addrZ, 8, 9, false, false)
	m1.DrainSB(0)
	e1 := r.d.Current()
	r.d.EndExecution(m1.CurSeq())

	// Execution 2 reads Z from execution 1: race in recovery code.
	if race := r.d.CheckCandidate(e1, e1.Latest(addrZ), false); race == nil {
		t.Fatal("race in recovery execution missed")
	}
	// And reading X from execution 0 after observing something past its
	// flush is safe.
	r.d.ObserveRead(e0, e0.Latest(addrX))
	if len(r.d.Executions()) != 3 {
		t.Fatalf("execution stack depth = %d, want 3", len(r.d.Executions()))
	}
}

// The §4.2 multithreaded scenario: thread 1 stores z and flushes it; thread
// 2 sets an atomic flag. No crash point in THIS interleaving leaves z
// unflushed with the flag set, but the prefix analysis derives an execution
// where it is: reading only the flag keeps the flush of z outside E+.
func TestMultithreadedPrefixBeyondCrashPoints(t *testing.T) {
	r := newRig(true)
	r.m.EnqueueStore(1, addrZ, 8, 7, false, false) // racy store by thread 1
	r.m.EnqueueCLFlush(1, addrZ)
	r.m.DrainSB(1)
	r.m.EnqueueStore(2, addrX, 8, 1, true, true) // thread 2's flag (other line)
	r.m.DrainSB(2)
	e := r.crash()

	// Post-crash: read flag f (thread 2's store), then read z.
	r.d.ObserveRead(e, e.Latest(addrX))
	race := r.d.CheckCandidate(e, e.Latest(addrZ), false)
	if race == nil {
		t.Fatal("prefix analysis missed the multithreaded race (paper §4.2)")
	}

	// Baseline cannot find it: the flush happened pre-crash.
	rb := newRig(false)
	rb.m.EnqueueStore(1, addrZ, 8, 7, false, false)
	rb.m.EnqueueCLFlush(1, addrZ)
	rb.m.DrainSB(1)
	rb.m.EnqueueStore(2, addrX, 8, 1, true, true)
	rb.m.DrainSB(2)
	eb := rb.crash()
	rb.d.ObserveRead(eb, eb.Latest(addrX))
	if race := rb.d.CheckCandidate(eb, eb.Latest(addrZ), false); race != nil {
		t.Fatal("baseline mode found a race it should not be able to see")
	}
}

func TestLabelFallbackIsHex(t *testing.T) {
	r := newRig(true)
	r.m.EnqueueStore(0, addrX, 8, 1, false, false)
	r.m.DrainSB(0)
	e := r.crash()
	race := r.d.CheckCandidate(e, e.Latest(addrX), false)
	if race.Field != "0x1000" {
		t.Fatalf("fallback label = %q", race.Field)
	}
}

func TestObserveReadIgnoresInitial(t *testing.T) {
	r := newRig(true)
	e := r.crash()
	r.d.ObserveRead(e, nil)
	r.d.ObserveRead(e, &StoreRecord{Seq: 0})
	if r.d.ClockArena().At(e.cvpre).Max() != 0 {
		t.Fatal("initial reads extended CVpre")
	}
}

func TestStoredAddrsAndCrashSeq(t *testing.T) {
	r := newRig(true)
	r.m.EnqueueStore(0, addrX, 8, 1, false, false)
	r.m.EnqueueStore(0, addrZ, 8, 2, false, false)
	r.m.DrainSB(0)
	e := r.crash()
	if got := len(e.StoredAddrs()); got != 2 {
		t.Fatalf("StoredAddrs = %d, want 2", got)
	}
	if e.CrashSeq() != vclock.Seq(2) {
		t.Fatalf("CrashSeq = %d, want 2", e.CrashSeq())
	}
}
