package xfd_test

import (
	"reflect"
	"testing"

	"yashme/internal/engine"
	"yashme/internal/workload"

	_ "yashme/internal/workload/all"
)

// xfdGolden pins the cross-failure races the retired mini-runner
// (xfd/run.go, deleted when the pass moved into the engine) reported on
// every TagXFD workload: the racing field sets, extracted by running it one
// last time before deletion. The engine-hosted pass must keep reporting
// exactly these — same semantics, new substrate.
var xfdGolden = map[string][]string{
	"CCEH": {"Pair.key", "Pair.value"},
	"Fast_Fair": {
		"btree.root", "entry.key", "entry.ptr",
		"header.last_index", "header.sibling_ptr", "header.switch_counter",
	},
	"P-ART": {
		"DeletionList.added", "DeletionList.deletitionListCount",
		"DeletionList.headDeletionList", "DeletionList.thresholdCounter",
		"LabelDelete.nodesCount",
		"N.child0", "N.child1", "N.child2", "N.child3", "N.child4", "N.child5",
		"N.compactCount", "N.count",
		"N.key0", "N.key1", "N.key2", "N.key3", "N.key4", "N.key5",
	},
	"P-BwTree":   {"BwTreeBase.epoch", "mapping_table.head"},
	"P-Masstree": {"leafnode.next", "leafnode.permutation", "masstree.root_"},
}

// xfdEngineOpts is the engine configuration equivalent to the mini-runner's
// semantics: one deterministic sequential schedule, a crash before every
// flush/fence point plus the completion power loss, and the committed state
// standing in for the PM image (PersistLatest — the FSM, not the values,
// decides raciness, so only the latest-store provenance matters).
func xfdEngineOpts() engine.Options {
	return engine.Options{
		Mode:            engine.ModelCheck,
		PersistPolicies: []engine.PersistPolicy{engine.PersistLatest},
		Analyses:        []string{"xfd"},
		Seed:            1,
	}
}

// TestEngineMatchesGoldens runs the xfd pass through the engine on every
// TagXFD workload and asserts the racing field sets the mini-runner
// established. StoreSeq/Addr are deliberately not compared: the engine's
// recovery machine restarts sequence numbers per execution while the
// mini-runner's single machine kept counting, and report dedup keys on
// (benchmark, field) anyway.
func TestEngineMatchesGoldens(t *testing.T) {
	specs := workload.Tagged(workload.TagXFD)
	if len(specs) != len(xfdGolden) {
		t.Fatalf("TagXFD specs = %d, goldens = %d", len(specs), len(xfdGolden))
	}
	for _, spec := range specs {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			want, ok := xfdGolden[spec.Name]
			if !ok {
				t.Fatalf("no golden for TagXFD workload %q", spec.Name)
			}
			res := engine.Run(spec.Make, xfdEngineOpts())
			if len(res.Passes) != 1 || res.Passes[0].Name != "xfd" {
				t.Fatalf("Passes = %+v, want the single xfd pass", res.Passes)
			}
			got := res.Report.Fields()
			if !reflect.DeepEqual(got, want) {
				t.Errorf("engine xfd races = %v\nwant (mini-runner golden) %v", got, want)
			}
			if res.Report != res.Passes[0].Report {
				t.Errorf("Result.Report does not alias the primary pass report")
			}
		})
	}
}
