package xfd

import (
	"fmt"

	"yashme/internal/pmm"
	"yashme/internal/report"
	"yashme/internal/tso"
)

// This file is the detector's own small checking harness. Like the original
// XFDetector, it examines THE GIVEN execution: one sequential pre-failure
// run per injected failure point, then the recovery — no prefix derivation,
// no candidate read sets. The deliberately modest exploration is part of
// the comparison (the paper: "XFDetector is limited to detecting cross
// failure races in the given execution and cannot detect cross failure
// races in any other potential executions").

// errFailure unwinds the workload at the injected failure point.
var errFailure = fmt.Errorf("xfd: injected failure")

// runnerOps drives a pmm program sequentially on a TSO machine, counting
// flush/fence points and failing before the target one.
type runnerOps struct {
	m       *tso.Machine
	det     *Detector
	target  int // fail before the Nth flush/fence point (0 = run through)
	points  int
	post    bool // post-failure phase: loads are checked
	guarded bool
}

var _ pmm.Ops = (*runnerOps)(nil)

func (r *runnerOps) TID() int { return 0 }

func (r *runnerOps) atPoint() {
	r.points++
	if r.target > 0 && r.points == r.target {
		panic(errFailure)
	}
}

func (r *runnerOps) Store(a pmm.Addr, size int, v uint64, atomic, release bool) {
	r.m.EnqueueStore(0, a, size, v, atomic, release)
	r.m.DrainSB(0)
}

func (r *runnerOps) Load(a pmm.Addr, size int, atomic, acquire bool) uint64 {
	if r.post && !r.guarded {
		r.det.CheckRead(a)
	}
	v, _ := r.m.Load(0, a, size, acquire)
	return v
}

func (r *runnerOps) RMW(a pmm.Addr, size int, f func(uint64) (uint64, bool)) (uint64, bool) {
	if !r.post {
		r.atPoint()
	}
	return r.m.RMW(0, a, size, f)
}

func (r *runnerOps) CLFlush(a pmm.Addr) {
	if !r.post {
		r.atPoint()
	}
	r.m.EnqueueCLFlush(0, a)
	r.m.DrainSB(0)
}

func (r *runnerOps) CLWB(a pmm.Addr) {
	if !r.post {
		r.atPoint()
	}
	r.m.EnqueueCLWB(0, a)
	r.m.DrainSB(0)
}

func (r *runnerOps) SFence() {
	if !r.post {
		r.atPoint()
	}
	r.m.EnqueueSFence(0)
	r.m.DrainSB(0)
}

func (r *runnerOps) MFence() {
	if !r.post {
		r.atPoint()
	}
	r.m.MFence(0)
}

func (r *runnerOps) Yield()                  {}
func (r *runnerOps) SetChecksumGuard(b bool) { r.guarded = b }

// Run checks a program with the cross-failure detector: it injects a
// failure before every flush/fence point of the sequential execution and
// classifies every post-failure read. Only single-worker programs are
// supported (the baseline examines one given execution).
func Run(makeProg func() pmm.Program) *report.Set {
	merged := report.NewSet()
	// Probe for the number of failure points.
	n := runOnce(makeProg, 0, merged)
	for c := 1; c <= n; c++ {
		runOnce(makeProg, c, merged)
	}
	return merged
}

// runOnce runs one failure scenario and merges its reports; it returns the
// number of failure points the pre-failure execution passed.
func runOnce(makeProg func() pmm.Program, target int, merged *report.Set) int {
	prog := makeProg()
	heap := pmm.NewHeap()
	if prog.Setup != nil {
		prog.Setup(heap)
	}
	det := New(prog.Name, heap.LabelFor)
	ops := &runnerOps{det: det, target: target}
	ops.m = tso.NewMachine(det)
	for _, w := range heap.InitWrites() {
		ops.m.SeedMemory(w.Addr, w.Size, w.Val)
		det.stores[w.Addr] = &storeInfo{state: statePersisted}
	}
	th := pmm.NewThread(ops, heap)

	// Pre-failure: run the workers sequentially (the "given execution").
	func() {
		defer func() {
			if r := recover(); r != nil && r != errFailure {
				panic(r)
			}
		}()
		for _, w := range prog.Workers {
			w(th)
		}
	}()

	// Post-failure: XFDetector resumes on the real PM image; the FSM — not
	// the values — decides raciness, so the committed state stands in for
	// the image.
	ops.post = true
	for _, rec := range prog.RecoveryWorkers() {
		rec(th)
	}
	merged.Merge(det.Report())
	return ops.points
}
