// Package xfd implements a cross-failure race detector in the style of
// XFDetector (Liu et al., ASPLOS '20) — the closest prior tool the paper
// compares against (§1, §8). It exists to make the paper's central
// comparison executable:
//
//	"Cross failure races are different from persistency races in that
//	cross failure races model normal stores as effectively atomic and do
//	not consider the possibility that due to compiler optimizations a
//	store may [be] made partially persistent. Cross failure race detection
//	cannot detect persistency races because it does not model the effects
//	of cache coherence or the difference between atomic and normal memory
//	operations. XFDetector is limited to detecting cross failure races in
//	the given execution and cannot detect cross failure races in any other
//	potential executions."
//
// A cross-failure race here is: a post-failure load reads data that was NOT
// persisted before the failure (the store was still volatile — in the cache
// without a completed flush — at the crash). Stores are treated as atomic
// units; a store that WAS flushed before the crash is always clean, no
// matter how the compiler might tear it — which is exactly the blind spot
// persistency races live in.
package xfd

import (
	"yashme/internal/pmm"
	"yashme/internal/report"
	"yashme/internal/tso"
	"yashme/internal/vclock"
)

// persistState is the per-store commit/persist FSM XFDetector tracks
// ("a finite state machine to track the consistency and persistency of
// persistent data").
type persistState int

const (
	// stateModified: the store reached the cache but no flush covers it.
	stateModified persistState = iota
	// stateWriteback: a clwb covers the store but no fence completed it.
	stateWriteback
	// statePersisted: a clflush (or clwb+fence) made the store durable.
	statePersisted
)

// storeInfo is the detector's view of the latest store per address.
type storeInfo struct {
	seq   vclock.Seq
	tid   vclock.TID
	state persistState
}

// Detector is the cross-failure race detector. It implements tso.Listener
// for the pre-crash execution; after the crash, CheckRead classifies each
// post-failure read.
type Detector struct {
	benchmark string
	labeler   func(pmm.Addr) string

	stores map[pmm.Addr]*storeInfo
	// pendingWB: clwb-covered addresses per thread awaiting a fence.
	pendingWB map[vclock.TID][]pmm.Addr
	report    *report.Set
}

// New returns a detector for one pre-crash execution.
func New(benchmark string, labeler func(pmm.Addr) string) *Detector {
	return &Detector{
		benchmark: benchmark,
		labeler:   labeler,
		stores:    make(map[pmm.Addr]*storeInfo),
		pendingWB: make(map[vclock.TID][]pmm.Addr),
		report:    report.NewSet(),
	}
}

// Report returns the accumulated cross-failure race reports.
func (d *Detector) Report() *report.Set { return d.report }

// StoreCommitted implements tso.Listener: the address regresses to
// Modified. Note the FSM is per ADDRESS, not per byte — stores are modelled
// as atomic units, the blind spot the paper identifies.
func (d *Detector) StoreCommitted(rec *tso.CommittedStore) {
	d.stores[rec.Addr] = &storeInfo{seq: rec.Seq, tid: rec.TID, state: stateModified}
}

// CLFlushCommitted implements tso.Listener: every store on the line is now
// persisted.
func (d *Detector) CLFlushCommitted(_ vclock.TID, addr pmm.Addr, _ vclock.Seq, _ vclock.VC) {
	line := pmm.LineOf(addr)
	for a, s := range d.stores {
		if pmm.LineOf(a) == line {
			s.state = statePersisted
		}
	}
}

// CLWBBuffered implements tso.Listener: stores on the line advance to
// Writeback, pending the thread's next fence.
func (d *Detector) CLWBBuffered(tid vclock.TID, addr pmm.Addr, _ vclock.VC) {
	line := pmm.LineOf(addr)
	for a, s := range d.stores {
		if pmm.LineOf(a) == line && s.state == stateModified {
			s.state = stateWriteback
			d.pendingWB[tid] = append(d.pendingWB[tid], a)
		}
	}
}

// CLWBPersisted implements tso.Listener: the fence completed the
// write-back.
func (d *Detector) CLWBPersisted(flush tso.FBEntry, fenceTID vclock.TID, _ vclock.Seq, _ vclock.VC) {
	line := pmm.LineOf(flush.Addr)
	for a, s := range d.stores {
		if pmm.LineOf(a) == line && s.state == stateWriteback {
			s.state = statePersisted
		}
	}
}

// FenceCommitted implements tso.Listener: any remaining write-backs of the
// fencing thread complete.
func (d *Detector) FenceCommitted(tid vclock.TID, _ vclock.Seq, _ vclock.VC) {
	for _, a := range d.pendingWB[tid] {
		if s, ok := d.stores[a]; ok && s.state == stateWriteback {
			s.state = statePersisted
		}
	}
	d.pendingWB[tid] = nil
}

var _ tso.Listener = (*Detector)(nil)

// CheckRead classifies a post-failure read of addr: a cross-failure race is
// reported iff the last pre-crash store to the address was NOT persisted at
// the crash. Persisted stores are always clean — atomic or not, torn or not
// — which is why this detector is structurally unable to report a
// persistency race on a flushed store.
func (d *Detector) CheckRead(addr pmm.Addr) *report.Race {
	s, ok := d.stores[addr]
	if !ok || s.state == statePersisted {
		return nil
	}
	label := d.labeler(addr)
	r := report.Race{
		Benchmark: d.benchmark,
		Field:     label,
		Addr:      uint64(addr),
		StoreSeq:  uint64(s.seq),
		StoreTID:  int(s.tid),
	}
	d.report.Add(r)
	return &r
}
