// Package xfd implements a cross-failure race detector in the style of
// XFDetector (Liu et al., ASPLOS '20) — the closest prior tool the paper
// compares against (§1, §8). It exists to make the paper's central
// comparison executable:
//
//	"Cross failure races are different from persistency races in that
//	cross failure races model normal stores as effectively atomic and do
//	not consider the possibility that due to compiler optimizations a
//	store may [be] made partially persistent. Cross failure race detection
//	cannot detect persistency races because it does not model the effects
//	of cache coherence or the difference between atomic and normal memory
//	operations. XFDetector is limited to detecting cross failure races in
//	the given execution and cannot detect cross failure races in any other
//	potential executions."
//
// A cross-failure race here is: a post-failure load reads data that was NOT
// persisted before the failure (the store was still volatile — in the cache
// without a completed flush — at the crash). Stores are treated as atomic
// units; a store that WAS flushed before the crash is always clean, no
// matter how the compiler might tear it — which is exactly the blind spot
// persistency races live in.
//
// The detector is an analysis.Pass: it registers itself as "xfd" and runs
// through the engine's analysis stack (-analyses=yashme,xfd), riding the
// same workers, solo-run leases, delta checkpoints and crash-image
// memoization as the Yashme detector. Like the original XFDetector it only
// ever classifies reads of THE GIVEN execution — no prefix derivation, no
// candidate read sets; the deliberately modest analysis is the comparison.
package xfd

import (
	"sort"

	"yashme/internal/analysis"
	"yashme/internal/pmm"
	"yashme/internal/report"
	"yashme/internal/tso"
	"yashme/internal/vclock"
)

func init() {
	analysis.Register("xfd", func(cfg analysis.Config) analysis.Pass {
		return New(cfg.Benchmark, cfg.Labeler)
	})
}

// persistState is the per-store commit/persist FSM XFDetector tracks
// ("a finite state machine to track the consistency and persistency of
// persistent data").
type persistState int

const (
	// stateModified: the store reached the cache but no flush covers it.
	stateModified persistState = iota
	// stateWriteback: a clwb covers the store but no fence completed it.
	stateWriteback
	// statePersisted: a clflush (or clwb+fence) made the store durable.
	statePersisted
)

// storeInfo is the detector's view of the latest store per address.
type storeInfo struct {
	seq   vclock.Seq
	tid   vclock.TID
	state persistState
}

// Detector is the cross-failure race detector. It implements tso.Listener
// for every execution's event stream; after a crash, CrashRead classifies
// each post-failure read against the FSM.
type Detector struct {
	benchmark string
	labeler   func(pmm.Addr) string

	stores map[pmm.Addr]storeInfo
	// lines indexes the stored addresses per cache line, so the flush
	// transitions walk only the flushed line instead of every store.
	lines map[pmm.Line][]pmm.Addr
	// pendingWB: clwb-covered addresses per thread awaiting a fence.
	pendingWB map[vclock.TID][]pmm.Addr
	report    *report.Set
}

// New returns a detector for one scenario.
func New(benchmark string, labeler func(pmm.Addr) string) *Detector {
	return &Detector{
		benchmark: benchmark,
		labeler:   labeler,
		stores:    make(map[pmm.Addr]storeInfo),
		lines:     make(map[pmm.Line][]pmm.Addr),
		pendingWB: make(map[vclock.TID][]pmm.Addr),
		report:    report.NewSet(),
	}
}

// Name implements analysis.Pass.
func (d *Detector) Name() string { return "xfd" }

// Report returns the accumulated cross-failure race reports.
func (d *Detector) Report() *report.Set { return d.report }

// set records info for addr, registering a fresh address on its line.
func (d *Detector) set(addr pmm.Addr, info storeInfo) {
	if _, seen := d.stores[addr]; !seen {
		line := pmm.LineOf(addr)
		d.lines[line] = append(d.lines[line], addr)
	}
	d.stores[addr] = info
}

// SeedPersisted implements analysis.Pass: Setup-time initial values are
// durable by definition.
func (d *Detector) SeedPersisted(addr pmm.Addr) {
	d.set(addr, storeInfo{state: statePersisted})
}

// EndExecution implements analysis.Pass. The FSM survives the crash
// unchanged: XFDetector resumes on the real PM image, and the FSM — not the
// values — decides raciness.
func (d *Detector) EndExecution(vclock.Seq) {}

// StoreCommitted implements tso.Listener: the address regresses to
// Modified. Note the FSM is per ADDRESS, not per byte — stores are modelled
// as atomic units, the blind spot the paper identifies.
func (d *Detector) StoreCommitted(rec *tso.CommittedStore) {
	d.set(rec.Addr, storeInfo{seq: rec.Seq, tid: rec.TID, state: stateModified})
}

// CLFlushCommitted implements tso.Listener: every store on the line is now
// persisted.
func (d *Detector) CLFlushCommitted(_ vclock.TID, addr pmm.Addr, _ vclock.Seq, _ vclock.Stamp) {
	for _, a := range d.lines[pmm.LineOf(addr)] {
		s := d.stores[a]
		s.state = statePersisted
		d.stores[a] = s
	}
}

// CLWBBuffered implements tso.Listener: stores on the line advance to
// Writeback, pending the thread's next fence.
func (d *Detector) CLWBBuffered(tid vclock.TID, addr pmm.Addr, _ vclock.Stamp) {
	for _, a := range d.lines[pmm.LineOf(addr)] {
		if s := d.stores[a]; s.state == stateModified {
			s.state = stateWriteback
			d.stores[a] = s
			d.pendingWB[tid] = append(d.pendingWB[tid], a)
		}
	}
}

// CLWBPersisted implements tso.Listener: the fence completed the
// write-back.
func (d *Detector) CLWBPersisted(flush tso.FBEntry, fenceTID vclock.TID, _ vclock.Seq, _ vclock.Stamp) {
	for _, a := range d.lines[pmm.LineOf(flush.Addr)] {
		if s := d.stores[a]; s.state == stateWriteback {
			s.state = statePersisted
			d.stores[a] = s
		}
	}
}

// FenceCommitted implements tso.Listener: any remaining write-backs of the
// fencing thread complete.
func (d *Detector) FenceCommitted(tid vclock.TID, _ vclock.Seq, _ vclock.Stamp) {
	for _, a := range d.pendingWB[tid] {
		if s, ok := d.stores[a]; ok && s.state == stateWriteback {
			s.state = statePersisted
			d.stores[a] = s
		}
	}
	d.pendingWB[tid] = nil
}

var (
	_ tso.Listener  = (*Detector)(nil)
	_ analysis.Pass = (*Detector)(nil)
)

// CrashRead implements analysis.Pass: a cross-failure race is reported iff
// the last store to the address was NOT persisted at the read. Guarded
// (checksum-validation) reads are skipped, like Yashme's benign
// classification. Persisted stores are always clean — atomic or not, torn
// or not — which is why this detector is structurally unable to report a
// persistency race on a flushed store.
func (d *Detector) CrashRead(addr pmm.Addr, guarded bool) *report.Race {
	if guarded {
		return nil
	}
	return d.CheckRead(addr)
}

// CheckRead classifies a post-failure read of addr against the FSM.
func (d *Detector) CheckRead(addr pmm.Addr) *report.Race {
	s, ok := d.stores[addr]
	if !ok || s.state == statePersisted {
		return nil
	}
	label := d.labeler(addr)
	r := report.Race{
		Benchmark: d.benchmark,
		Field:     label,
		Addr:      uint64(addr),
		StoreSeq:  uint64(s.seq),
		StoreTID:  int(s.tid),
	}
	d.report.Add(r)
	return &r
}

// Clone implements analysis.Pass: an independent deep copy. Snapshots store
// clones as read-only templates and every resume clones again.
func (d *Detector) Clone() analysis.Pass {
	c := &Detector{
		benchmark: d.benchmark,
		labeler:   d.labeler,
		stores:    make(map[pmm.Addr]storeInfo, len(d.stores)),
		lines:     make(map[pmm.Line][]pmm.Addr, len(d.lines)),
		pendingWB: make(map[vclock.TID][]pmm.Addr, len(d.pendingWB)),
		report:    d.report.Clone(),
	}
	for a, s := range d.stores {
		c.stores[a] = s
	}
	for l, addrs := range d.lines {
		c.lines[l] = append([]pmm.Addr(nil), addrs...)
	}
	for tid, addrs := range d.pendingWB {
		if len(addrs) > 0 {
			c.pendingWB[tid] = append([]pmm.Addr(nil), addrs...)
		}
	}
	return c
}

// SetLabeler implements analysis.Pass.
func (d *Detector) SetLabeler(l func(pmm.Addr) string) { d.labeler = l }

// AppendStateSignature implements analysis.Pass: the FSM serialized in
// ascending address order plus the pending write-backs per thread — exactly
// the state CrashRead verdicts are a function of. Two crash points with
// equal signatures are indistinguishable to this detector.
func (d *Detector) AppendStateSignature(buf []byte) []byte {
	addrs := make([]pmm.Addr, 0, len(d.stores))
	for a := range d.stores {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	buf = sigU64(buf, uint64(len(addrs)))
	for _, a := range addrs {
		s := d.stores[a]
		buf = sigU64(buf, uint64(a))
		buf = sigU64(buf, uint64(s.seq))
		buf = sigU64(buf, uint64(s.tid))
		buf = sigU64(buf, uint64(s.state))
	}
	tids := make([]vclock.TID, 0, len(d.pendingWB))
	for tid, addrs := range d.pendingWB {
		if len(addrs) > 0 {
			tids = append(tids, tid)
		}
	}
	sort.Slice(tids, func(i, j int) bool { return tids[i] < tids[j] })
	buf = sigU64(buf, uint64(len(tids)))
	for _, tid := range tids {
		buf = sigU64(buf, uint64(tid))
		buf = sigU64(buf, uint64(len(d.pendingWB[tid])))
		for _, a := range d.pendingWB[tid] {
			buf = sigU64(buf, uint64(a))
		}
	}
	return buf
}

// sigU64 serializes v little-endian into the signature buffer (mirrors the
// engine's encoding).
func sigU64(buf []byte, v uint64) []byte {
	return append(buf,
		byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

// storeInfoBytes is the accounted retained size of one FSM entry (map
// overhead included, fixed for platform stability).
const storeInfoBytes = 48

// FootprintBytes implements analysis.Pass.
func (d *Detector) FootprintBytes() int64 {
	n := int64(len(d.stores)) * storeInfoBytes
	for _, addrs := range d.lines {
		n += int64(len(addrs)) * 8
	}
	for _, addrs := range d.pendingWB {
		n += int64(len(addrs)) * 8
	}
	return n
}
