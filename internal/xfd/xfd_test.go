package xfd_test

import (
	"testing"

	"yashme/internal/engine"
	"yashme/internal/pmm"
	"yashme/internal/progs/cceh"
	"yashme/internal/report"
)

// xfdRun explores every crash point of a program with the xfd pass through
// the engine (the mini-runner's semantics: one sequential schedule, a
// failure before every flush/fence point plus the completion power loss).
func xfdRun(mk func() pmm.Program) *report.Set {
	return engine.Run(mk, xfdEngineOpts()).Report
}

// xfdAtCompletion runs only the failure-at-completion scenario.
func xfdAtCompletion(mk func() pmm.Program) *report.Set {
	return engine.RunOne(mk, xfdEngineOpts(), 0, engine.PersistLatest, 1).Report
}

// figure5b is the paper's Figure 5(b) program: the store IS flushed before
// the crash window closes. Yashme's prefix detector reports the persistency
// race; the cross-failure detector structurally cannot (a persisted store
// is always clean in its FSM).
func figure5b() pmm.Program {
	var x pmm.Addr
	return pmm.Program{
		Name: "figure5b",
		Setup: func(h *pmm.Heap) {
			x = h.AllocStruct("o", pmm.Layout{{Name: "x", Size: 8}}).F("x")
		},
		Workers: []func(*pmm.Thread){func(t *pmm.Thread) {
			t.Store64(x, 1)
			t.CLFlush(x)
			t.SFence()
			t.Store64(x, 2) // keeps a later failure point available
			t.CLFlush(x)
			t.SFence()
		}},
		PostCrash: func(t *pmm.Thread) { t.Load64(x) },
	}
}

// The central §1/§8 comparison, executable: on a program whose store is
// flushed in time, the cross-failure detector is blind at the crash points
// where Yashme's prefix analysis still derives the race.
func TestCrossFailureDetectorMissesPersistencyRaces(t *testing.T) {
	// Yashme (prefix): finds the race on o.x.
	y := engine.Run(figure5b, engine.Options{Mode: engine.ModelCheck, Prefix: true})
	if y.Report.Count() != 1 {
		t.Fatalf("yashme races = %d, want 1", y.Report.Count())
	}
	// Crash at completion only (both stores persisted): XFDetector sees a
	// clean FSM — no cross-failure race, no persistency race, nothing.
	set := xfdAtCompletion(figure5b)
	if set.Count() != 0 {
		t.Fatalf("cross-failure detector reported %d races on the fully-flushed execution", set.Count())
	}
}

// The detector DOES find genuine cross-failure races: reading a store that
// was never flushed.
func TestCrossFailureDetectorFindsUnflushedReads(t *testing.T) {
	mk := func() pmm.Program {
		var x pmm.Addr
		return pmm.Program{
			Name: "unflushed",
			Setup: func(h *pmm.Heap) {
				x = h.AllocStruct("o", pmm.Layout{{Name: "x", Size: 8}}).F("x")
			},
			Workers: []func(*pmm.Thread){func(t *pmm.Thread) {
				t.Store64(x, 1) // never flushed
				t.SFence()      // a failure point, but x has no clwb
			}},
			PostCrash: func(t *pmm.Thread) { t.Load64(x) },
		}
	}
	set := xfdRun(mk)
	if set.Count() != 1 {
		t.Fatalf("cross-failure races = %d, want 1", set.Count())
	}
	if set.Races()[0].Field != "o.x" {
		t.Fatalf("race field = %q", set.Races()[0].Field)
	}
}

// clwb alone is not persistence; clwb+fence is — mirrored in the FSM.
func TestFSMWritebackNeedsFence(t *testing.T) {
	mkNoFence := func() pmm.Program {
		var x pmm.Addr
		return pmm.Program{
			Name: "wb-nofence",
			Setup: func(h *pmm.Heap) {
				x = h.AllocStruct("o", pmm.Layout{{Name: "x", Size: 8}}).F("x")
			},
			Workers: []func(*pmm.Thread){func(t *pmm.Thread) {
				t.Store64(x, 1)
				t.CLWB(x) // no fence
			}},
			PostCrash: func(t *pmm.Thread) { t.Load64(x) },
		}
	}
	if got := xfdRun(mkNoFence).Count(); got != 1 {
		t.Fatalf("clwb-without-fence races = %d, want 1", got)
	}
	mkFence := func() pmm.Program {
		var x pmm.Addr
		return pmm.Program{
			Name: "wb-fence",
			Setup: func(h *pmm.Heap) {
				x = h.AllocStruct("o", pmm.Layout{{Name: "x", Size: 8}}).F("x")
			},
			Workers: []func(*pmm.Thread){func(t *pmm.Thread) {
				t.Store64(x, 1)
				t.Persist(x, 8)
			}},
			PostCrash: func(t *pmm.Thread) { t.Load64(x) },
		}
	}
	// Failure AT the persist points still races; at completion it is clean.
	set := xfdAtCompletion(mkFence)
	if set.Count() != 0 {
		t.Fatalf("persisted store flagged: %v", set.Races())
	}
}

// Guarded (checksum-validation) reads are skipped, like Yashme's benign
// classification.
func TestGuardedReadsSkipped(t *testing.T) {
	mk := func() pmm.Program {
		var x pmm.Addr
		return pmm.Program{
			Name: "guarded",
			Setup: func(h *pmm.Heap) {
				x = h.AllocStruct("o", pmm.Layout{{Name: "x", Size: 8}}).F("x")
			},
			Workers: []func(*pmm.Thread){func(t *pmm.Thread) {
				t.Store64(x, 1)
				t.SFence()
			}},
			PostCrash: func(t *pmm.Thread) {
				t.ChecksumGuard(func() { t.Load64(x) })
			},
		}
	}
	if got := xfdRun(mk).Count(); got != 0 {
		t.Fatalf("guarded read flagged: %d", got)
	}
}

// On CCEH, both detectors report something — but different bug classes:
// the cross-failure detector flags unpersisted reads in crash windows,
// while ONLY Yashme reports races on stores that were flushed before the
// crash (the prefix-derived persistency races).
func TestComparisonOnCCEH(t *testing.T) {
	xfdSet := xfdRun(cceh.New(4, nil))
	yash := engine.Run(cceh.New(4, nil), engine.Options{Mode: engine.ModelCheck, Prefix: true})

	flushedRaces := 0
	for _, r := range yash.Report.Races() {
		if r.Flushed {
			flushedRaces++
		}
	}
	if flushedRaces == 0 {
		t.Fatal("yashme found no flushed-store races on CCEH (comparison premise broken)")
	}
	// The cross-failure detector's reports all concern unpersisted data;
	// it can never attribute a race to a store it saw flushed. Its model
	// also cannot mark anything 'Flushed'.
	for _, r := range xfdSet.Races() {
		if r.Flushed {
			t.Fatalf("cross-failure detector claimed a flushed-store race: %v", r)
		}
	}
}

// The other side of the class difference: an unpersisted ATOMIC store is a
// cross-failure race (reading unpersisted data) but can never be a
// persistency race (atomic stores cannot tear) — neither detector's
// findings contain the other's in general.
func TestAtomicUnpersistedIsCrossFailureOnly(t *testing.T) {
	mk := func() pmm.Program {
		var x pmm.Addr
		return pmm.Program{
			Name: "atomic-unflushed",
			Setup: func(h *pmm.Heap) {
				x = h.AllocStruct("o", pmm.Layout{{Name: "x", Size: 8}}).F("x")
			},
			Workers: []func(*pmm.Thread){func(t *pmm.Thread) {
				t.StoreRelease64(x, 1) // atomic, never flushed
				t.SFence()
			}},
			PostCrash: func(t *pmm.Thread) { t.LoadAcquire64(x) },
		}
	}
	if got := xfdRun(mk).Count(); got != 1 {
		t.Fatalf("cross-failure races = %d, want 1 (unpersisted read)", got)
	}
	y := engine.Run(mk, engine.Options{Mode: engine.ModelCheck, Prefix: true})
	if y.Report.Count() != 0 {
		t.Fatalf("yashme races = %d, want 0 (atomic stores cannot tear)", y.Report.Count())
	}
}
