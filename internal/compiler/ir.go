// Package compiler models the compiler store optimizations that make
// persistency races possible (paper §3.2, Table 2). It is the substitute
// for the paper's study of gcc 10.3 and LLVM-clang 11.0 binaries: a small
// store-level IR plus the three optimization families the paper documents —
//
//  1. splitting a wide store into a non-atomic pair of narrower stores
//     (gcc's ARM64 backend lowering a 64-bit store-immediate into two
//     32-bit store-immediates: the Figure 1 bug);
//  2. replacing a run of zero stores with a call to memset;
//  3. replacing a run of contiguous assignments with a call to
//     memcpy/memmove.
//
// None of the generated libc calls guarantee 64-bit atomicity, so every
// rewrite below turns a language-level store into something a crash can
// tear. Atomic (volatile) stores are never touched — which is why P-CLHT,
// whose critical stores are volatile, shows zero memops in both columns of
// Table 2b.
package compiler

import (
	"fmt"
	"strings"
)

// Arch is a target architecture of the study.
type Arch int

// Architectures covered by Table 2a.
const (
	X86_64 Arch = iota
	ARM64
)

func (a Arch) String() string {
	if a == ARM64 {
		return "ARM64"
	}
	return "x86-64"
}

// Compiler identifies the producing compiler.
type Compiler int

// Compilers covered by Table 2a.
const (
	GCC Compiler = iota
	Clang
)

func (c Compiler) String() string {
	if c == GCC {
		return "gcc"
	}
	return "LLVM-clang"
}

// Op is one IR operation: a store or a library call.
type Op interface {
	isOp()
	String() string
}

// Store writes Size bytes of Val at Offset. Zero marks a zero store (memset
// candidate); CopySrc >= 0 marks a load-store copy from that source offset
// (memcpy/memmove candidate); Atomic marks a volatile/atomic store the
// optimizer must not touch.
type Store struct {
	Offset  int
	Size    int
	Val     uint64
	Zero    bool
	CopySrc int // -1 when not a copy
	Atomic  bool
	// Invented marks a compiler-invented store (a stashed temporary the
	// program never wrote at the source level, §3.2).
	Invented bool
}

func (Store) isOp() {}

func (s Store) String() string {
	attrs := ""
	if s.Atomic {
		attrs = " atomic"
	}
	if s.Invented {
		attrs += " invented"
	}
	if s.Zero {
		attrs += " zero"
	}
	if s.CopySrc >= 0 {
		attrs += fmt.Sprintf(" copy-from=%d", s.CopySrc)
	}
	return fmt.Sprintf("store%d [%d] = %#x%s", s.Size*8, s.Offset, s.Val, attrs)
}

// Call is a library memory-operation call: memset, memcpy or memmove.
type Call struct {
	Fn     string // "memset", "memcpy", "memmove"
	Offset int
	Src    int // source offset for copies; -1 for memset
	Size   int
	Val    byte // fill byte for memset
}

func (Call) isOp() {}

func (c Call) String() string {
	if c.Fn == "memset" {
		return fmt.Sprintf("call memset([%d], %#x, %d)", c.Offset, c.Val, c.Size)
	}
	return fmt.Sprintf("call %s([%d], [%d], %d)", c.Fn, c.Offset, c.Src, c.Size)
}

// Routine is a straight-line sequence of IR operations (one function body).
type Routine struct {
	Name string
	Ops  []Op
}

// Program is a set of routines (one benchmark's relevant translation
// units).
type Program struct {
	Name     string
	Routines []Routine
}

// CountMemOps counts memset/memcpy/memmove operations — the paper's
// "#src-op" and "#asm-op" metric (Table 2b).
func (p Program) CountMemOps() int {
	n := 0
	for _, r := range p.Routines {
		for _, op := range r.Ops {
			if _, ok := op.(Call); ok {
				n++
			}
		}
	}
	return n
}

// CountStores counts plain (non-atomic) store operations.
func (p Program) CountStores() int {
	n := 0
	for _, r := range p.Routines {
		for _, op := range r.Ops {
			if s, ok := op.(Store); ok && !s.Atomic {
				n++
			}
		}
	}
	return n
}

func (p Program) String() string {
	var b strings.Builder
	for _, r := range p.Routines {
		fmt.Fprintf(&b, "%s:\n", r.Name)
		for _, op := range r.Ops {
			fmt.Fprintf(&b, "  %s\n", op)
		}
	}
	return b.String()
}

// St builds a plain store op.
func St(offset, size int, val uint64) Store {
	return Store{Offset: offset, Size: size, Val: val, Zero: val == 0, CopySrc: -1}
}

// ZeroSt builds a zero store (memset candidate).
func ZeroSt(offset, size int) Store {
	return Store{Offset: offset, Size: size, Zero: true, CopySrc: -1}
}

// CopySt builds a copy store (memcpy candidate) from src to offset.
func CopySt(offset, size, src int) Store {
	return Store{Offset: offset, Size: size, CopySrc: src}
}

// AtomicSt builds an atomic/volatile store the optimizer must preserve.
func AtomicSt(offset, size int, val uint64) Store {
	return Store{Offset: offset, Size: size, Val: val, Atomic: true, CopySrc: -1}
}
