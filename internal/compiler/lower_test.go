package compiler

import (
	"testing"

	"yashme/internal/engine"
)

// The full Figure 1 pipeline, with no synthetic torn values anywhere: the
// source IR stores 0x1234567812345678 as ONE 64-bit store; gcc's ARM64
// backend splits it into two 32-bit stores; model checking the compiled
// program finds a crash point between the halves' commits, and the
// post-crash execution reads a half-written value.
func TestLoweredTearingEndToEnd(t *testing.T) {
	source := Program{Name: "figure1", Routines: []Routine{{
		Name: "main",
		Ops:  []Op{St(0, 8, 0x1234567812345678)},
	}}}
	compiled := NewPipeline(GCC, ARM64).Compile(source)
	if compiled.CountStores() != 2 {
		t.Fatalf("compiled stores = %d, want 2", compiled.CountStores())
	}

	lp := Lower(compiled, true)
	res := engine.Run(lp.MakeProgram(), engine.Options{Mode: engine.ModelCheck, Prefix: true})

	// Both halves race (they are independent non-atomic stores).
	if res.Report.Count() != 2 {
		t.Fatalf("compiled program races = %d, want 2 (both halves)\n%s", res.Report.Count(), res.Report)
	}

	// Some explored execution persisted the low half but not the high one:
	// the combined 64-bit value is the paper's 0x12345678.
	torn := false
	full := false
	los, his := lp.Observed(0), lp.Observed(4)
	for i := range los {
		combined := los[i] | his[i]<<32
		switch combined {
		case 0x12345678:
			torn = true
		case 0x1234567812345678:
			full = true
		}
	}
	if !torn {
		t.Fatalf("no execution observed the torn value; lo=%x hi=%x", los, his)
	}
	if !full {
		t.Fatal("no execution observed the fully persisted value")
	}
}

// The uncompiled source (one wide store) reports a single race at the same
// crash points: compilation changes the failure surface, not the verdict.
func TestUncompiledSourceSingleRace(t *testing.T) {
	source := Program{Name: "figure1-src", Routines: []Routine{{
		Name: "main",
		Ops:  []Op{St(0, 8, 0x1234567812345678)},
	}}}
	lp := Lower(source, true)
	res := engine.Run(lp.MakeProgram(), engine.Options{Mode: engine.ModelCheck, Prefix: true})
	if res.Report.Count() != 1 {
		t.Fatalf("source program races = %d, want 1", res.Report.Count())
	}
}

// A coalesced memset is byte-granular: crashing mid-call leaves the region
// partially written, which the detector reports per written word.
func TestLoweredMemsetRaces(t *testing.T) {
	source := Program{Name: "zeroinit", Routines: []Routine{{
		Name: "ctor",
		Ops: []Op{
			St(0, 8, 0xAAAAAAAAAAAAAAAA), // pre-existing data
			St(8, 8, 0xBBBBBBBBBBBBBBBB),
			St(16, 8, 0xCCCCCCCCCCCCCCCC),
			ZeroSt(0, 8), ZeroSt(8, 8), ZeroSt(16, 8), // zeroing run → memset
		},
	}}}
	compiled := NewPipeline(Clang, X86_64).Compile(source)
	if compiled.CountMemOps() != 1 {
		t.Fatalf("memops = %d, want 1 (coalesced memset)", compiled.CountMemOps())
	}
	lp := Lower(compiled, true)
	res := engine.Run(lp.MakeProgram(), engine.Options{Mode: engine.ModelCheck, Prefix: true})
	if res.Report.Count() == 0 {
		t.Fatal("memset-compiled program reported no races")
	}
}

// Atomic stores survive compilation untouched and stay race-free when the
// recovery observes a later operation... they simply never race.
func TestLoweredAtomicStoreSafe(t *testing.T) {
	source := Program{Name: "atomic", Routines: []Routine{{
		Name: "main",
		Ops:  []Op{AtomicSt(0, 8, 42)},
	}}}
	compiled := NewPipeline(GCC, ARM64).Compile(source)
	if compiled.CountStores() != 0 { // CountStores counts plain stores only
		t.Fatal("atomic store was compiled into plain stores")
	}
	lp := Lower(compiled, true)
	res := engine.Run(lp.MakeProgram(), engine.Options{Mode: engine.ModelCheck, Prefix: true})
	if res.Report.Count() != 0 {
		t.Fatalf("atomic program raced: %s", res.Report)
	}
}

// Copy runs lowered as memcpy read the source region and write the
// destination; the copied destination races like any non-atomic data.
func TestLoweredMemcpy(t *testing.T) {
	source := Program{Name: "copy", Routines: []Routine{{
		Name: "main",
		Ops: append(
			[]Op{St(256, 8, 0x11), St(264, 8, 0x22), St(272, 8, 0x33)}, // source data
			copyRun(0, 256, 3)...),
	}}}
	compiled := NewPipeline(Clang, X86_64).Compile(source)
	if compiled.CountMemOps() != 1 {
		t.Fatalf("memops = %d, want 1 (memcpy)", compiled.CountMemOps())
	}
	lp := Lower(compiled, true)
	res := engine.Run(lp.MakeProgram(), engine.Options{Mode: engine.ModelCheck, Prefix: true})
	if res.Report.Count() == 0 {
		t.Fatal("memcpy-compiled program reported no races")
	}
	// In the fully-persisted completion scenario, the copy round-trips.
	foundCopied := false
	for _, v := range lp.Observed(0) {
		if v == 0x11 {
			foundCopied = true
		}
	}
	if !foundCopied {
		t.Fatalf("copied value never observed: %x", lp.Observed(0))
	}
}

// Store inventing (§3.2): the compiler stashes a half-built temporary into
// the destination before the real store. The invented store is a fresh
// non-atomic commit, so a crash between the two persists garbage the
// program never wrote — the detector flags it, and a post-crash read can
// actually observe the temporary.
func TestInventedStoreEndToEnd(t *testing.T) {
	source := Program{Name: "invent", Routines: []Routine{{
		Name: "main",
		Ops:  []Op{St(0, 8, 0xDEADBEEF00C0FFEE)},
	}}}
	invented := InventStores{}.Apply(source.Routines[0])
	if len(invented.Ops) != 2 {
		t.Fatalf("invented ops = %d, want 2", len(invented.Ops))
	}
	if !invented.Ops[0].(Store).Invented {
		t.Fatal("first op not marked invented")
	}

	lp := Lower(Program{Name: "invent", Routines: []Routine{invented}}, true)
	res := engine.Run(lp.MakeProgram(), engine.Options{Mode: engine.ModelCheck, Prefix: true})
	if res.Report.Count() == 0 {
		t.Fatal("invented-store program reported no races")
	}
	// Some execution observes the stashed temporary (0xFFEE), which the
	// source program never stored.
	sawTemporary := false
	for _, v := range lp.Observed(0) {
		if v == 0xDEADBEEF00C0FFEE&0xFFFF {
			sawTemporary = true
		}
	}
	if !sawTemporary {
		t.Fatalf("the invented temporary was never observed: %x", lp.Observed(0))
	}
}

// Atomic stores are immune to store inventing.
func TestInventStoresPreservesAtomics(t *testing.T) {
	r := Routine{Ops: []Op{AtomicSt(0, 8, 5)}}
	out := InventStores{}.Apply(r)
	if len(out.Ops) != 1 {
		t.Fatal("atomic store got an invented companion")
	}
}
