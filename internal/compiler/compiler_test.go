package compiler

import (
	"testing"
	"testing/quick"
)

func TestSplitWideStores(t *testing.T) {
	r := Routine{Name: "f", Ops: []Op{St(0, 8, 0x1234567812345678)}}
	out := SplitWideStores{}.Apply(r)
	if len(out.Ops) != 2 {
		t.Fatalf("ops = %d, want 2", len(out.Ops))
	}
	lo := out.Ops[0].(Store)
	hi := out.Ops[1].(Store)
	if lo.Size != 4 || hi.Size != 4 {
		t.Fatal("halves are not 32-bit stores")
	}
	if lo.Val != 0x12345678 || hi.Val != 0x12345678 {
		t.Fatalf("halves = %#x / %#x", lo.Val, hi.Val)
	}
	if lo.Offset != 0 || hi.Offset != 4 {
		t.Fatalf("offsets = %d / %d", lo.Offset, hi.Offset)
	}
}

func TestSplitPreservesAtomicStores(t *testing.T) {
	r := Routine{Ops: []Op{AtomicSt(0, 8, 5)}}
	out := SplitWideStores{}.Apply(r)
	if len(out.Ops) != 1 {
		t.Fatal("atomic store was split")
	}
}

func TestSplitPreservesNarrowStores(t *testing.T) {
	r := Routine{Ops: []Op{St(0, 4, 5), St(4, 2, 1), St(6, 1, 2)}}
	out := SplitWideStores{}.Apply(r)
	if len(out.Ops) != 3 {
		t.Fatalf("narrow stores changed: %d ops", len(out.Ops))
	}
}

func TestCoalesceZeroRuns(t *testing.T) {
	r := Routine{Ops: zeroRun(0, 4)} // 32 contiguous zero bytes
	out := CoalesceZeroRuns{}.Apply(r)
	if len(out.Ops) != 1 {
		t.Fatalf("ops = %v, want one memset", out.Ops)
	}
	c := out.Ops[0].(Call)
	if c.Fn != "memset" || c.Offset != 0 || c.Size != 32 {
		t.Fatalf("call = %v", c)
	}
}

func TestShortZeroRunNotCoalesced(t *testing.T) {
	r := Routine{Ops: []Op{ZeroSt(0, 8)}} // 8 bytes < threshold
	out := CoalesceZeroRuns{}.Apply(r)
	if len(out.Ops) != 1 {
		t.Fatal("short run changed length")
	}
	if _, isCall := out.Ops[0].(Call); isCall {
		t.Fatal("short zero run was coalesced")
	}
}

func TestNonContiguousZeroRunsSplit(t *testing.T) {
	ops := append(zeroRun(0, 3), zeroRun(100, 3)...)
	out := CoalesceZeroRuns{}.Apply(Routine{Ops: ops})
	calls := 0
	for _, op := range out.Ops {
		if _, ok := op.(Call); ok {
			calls++
		}
	}
	if calls != 2 {
		t.Fatalf("calls = %d, want 2 (runs are not contiguous)", calls)
	}
}

func TestAtomicStoreBreaksZeroRun(t *testing.T) {
	ops := []Op{ZeroSt(0, 8), AtomicSt(8, 8, 0), ZeroSt(16, 8)}
	out := CoalesceZeroRuns{}.Apply(Routine{Ops: ops})
	for _, op := range out.Ops {
		if _, ok := op.(Call); ok {
			t.Fatal("zero run coalesced across an atomic store")
		}
	}
}

func TestCoalesceCopyRuns(t *testing.T) {
	r := Routine{Ops: copyRun(0, 256, 3)} // 24 contiguous copied bytes
	out := CoalesceCopyRuns{Fn: "memcpy"}.Apply(r)
	if len(out.Ops) != 1 {
		t.Fatalf("ops = %v, want one memcpy", out.Ops)
	}
	c := out.Ops[0].(Call)
	if c.Fn != "memcpy" || c.Offset != 0 || c.Src != 256 || c.Size != 24 {
		t.Fatalf("call = %+v", c)
	}
}

func TestCopyRunRequiresSourceContiguity(t *testing.T) {
	// Destination contiguous, source not: no rewrite.
	ops := []Op{CopySt(0, 8, 256), CopySt(8, 8, 512), CopySt(16, 8, 1024)}
	out := CoalesceCopyRuns{Fn: "memcpy"}.Apply(Routine{Ops: ops})
	for _, op := range out.Ops {
		if _, ok := op.(Call); ok {
			t.Fatal("copy run coalesced with non-contiguous source")
		}
	}
}

func TestMergeAdjacentMemsets(t *testing.T) {
	r := Routine{Ops: []Op{
		memsetCall(0, 16, 0), memsetCall(16, 16, 0), memsetCall(32, 16, 0),
		memsetCall(128, 16, 0), // gap: stays separate
		memsetCall(144, 16, 1), // different fill byte: stays separate
	}}
	out := MergeAdjacentMemsets{}.Apply(r)
	if len(out.Ops) != 3 {
		t.Fatalf("ops = %d, want 3 (merged + gap + diff-fill)", len(out.Ops))
	}
	first := out.Ops[0].(Call)
	if first.Size != 48 {
		t.Fatalf("merged size = %d, want 48", first.Size)
	}
}

func TestPipelineSelection(t *testing.T) {
	if NewPipeline(GCC, ARM64).Passes[0].Name() != "split-wide-stores" {
		t.Error("gcc/ARM64 pipeline missing wide-store split")
	}
	for _, p := range NewPipeline(Clang, X86_64).Passes {
		if p.Name() == "split-wide-stores" {
			t.Error("clang/x86-64 pipeline must not split wide stores")
		}
	}
	gccX86 := NewPipeline(GCC, X86_64)
	if len(gccX86.Passes) != 1 || gccX86.Passes[0].Name() != "coalesce-copy-runs(memmove)" {
		t.Errorf("gcc/x86-64 pipeline = %v", gccX86.Passes)
	}
}

func TestTable2aAllRowsRewrite(t *testing.T) {
	rows := Table2a()
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(rows))
	}
	for _, row := range rows {
		before := row.Before.CountMemOps()
		after := row.After.CountMemOps()
		splitRow := row.Optimization == "Use a non-atomic pair of stores for a 64-bit store"
		if splitRow {
			if row.After.CountStores() != 2*row.Before.CountStores() {
				t.Errorf("%s/%s: wide store not split", row.Compiler, row.Arch)
			}
			continue
		}
		if after <= before {
			t.Errorf("%s/%s %q: memops %d → %d, optimization did not fire",
				row.Compiler, row.Arch, row.Optimization, before, after)
		}
	}
}

func TestTable2bMatchesPaper(t *testing.T) {
	for _, row := range Table2b() {
		want := PaperTable2b[row.Prog]
		if row.SrcOps != want[0] || row.AsmOps != want[1] {
			t.Errorf("%s: src=%d asm=%d, paper reports src=%d asm=%d",
				row.Prog, row.SrcOps, row.AsmOps, want[0], want[1])
		}
	}
}

func TestPCLHTUntouched(t *testing.T) {
	src := BenchmarkSource("P-CLHT")
	asm := NewPipeline(Clang, X86_64).Compile(src)
	if asm.CountMemOps() != 0 {
		t.Fatal("optimizer introduced memops into volatile-store P-CLHT")
	}
	if asm.CountStores() != 0 {
		t.Fatal("P-CLHT model should have no plain stores at all")
	}
}

func TestUnknownBenchmarkPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown benchmark did not panic")
		}
	}()
	BenchmarkSource("nope")
}

// Property: splitting preserves the written bytes (lo|hi<<32 == original).
func TestSplitPreservesValueProperty(t *testing.T) {
	f := func(val uint64, off uint16) bool {
		r := Routine{Ops: []Op{St(int(off), 8, val)}}
		out := SplitWideStores{}.Apply(r)
		lo := out.Ops[0].(Store)
		hi := out.Ops[1].(Store)
		return lo.Val|hi.Val<<32 == val && lo.Offset+4 == hi.Offset
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: coalescing never changes the total bytes written.
func TestCoalescePreservesCoverageProperty(t *testing.T) {
	f := func(runLens []uint8) bool {
		var ops []Op
		off := 0
		for _, l := range runLens {
			n := int(l % 6)
			ops = append(ops, zeroRun(off, n)...)
			off += n*8 + 64 // gap between runs
		}
		before := coverage(Routine{Ops: ops})
		out := CoalesceZeroRuns{}.Apply(Routine{Ops: ops})
		return coverage(out) == before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// coverage sums the bytes written by all ops.
func coverage(r Routine) int {
	total := 0
	for _, op := range r.Ops {
		switch o := op.(type) {
		case Store:
			total += o.Size
		case Call:
			total += o.Size
		}
	}
	return total
}
