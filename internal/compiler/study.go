package compiler

import "fmt"

// This file reproduces the paper's compiler study: Table 2a (which store
// optimizations each compiler/architecture pair performs) and Table 2b
// (memory-operation counts in benchmark source vs. generated code).
//
// The benchmark "sources" are modeled renditions of the init/copy-heavy
// routines of each benchmark — enough structure for the optimization
// pipeline to reproduce the counts the paper measured with clang 11 -O3 on
// x86-64. The P-ART and P-CLHT anomalies the paper explains in §3.2 are
// modeled explicitly: P-ART's constructors hold 14 inefficient memsets that
// the compiler consolidates into 3 (plus 2 new memcpys), and P-CLHT's
// critical stores are volatile, so the optimizer cannot introduce memops at
// all.

// Table2aRow is one row of Table 2a: an observed store optimization.
type Table2aRow struct {
	Compiler     string
	Arch         string
	Optimization string
	// Witness demonstrates the rewrite: ops before and after.
	Before, After Program
}

// zeroRun emits n contiguous 8-byte zero stores starting at offset.
func zeroRun(offset, n int) []Op {
	ops := make([]Op, n)
	for i := 0; i < n; i++ {
		ops[i] = ZeroSt(offset+8*i, 8)
	}
	return ops
}

// copyRun emits n contiguous 8-byte copy stores dst←src.
func copyRun(dst, src, n int) []Op {
	ops := make([]Op, n)
	for i := 0; i < n; i++ {
		ops[i] = CopySt(dst+8*i, 8, src+8*i)
	}
	return ops
}

// Table2a regenerates the paper's Table 2a with a live witness per row.
func Table2a() []Table2aRow {
	wide := Program{Name: "wide-store", Routines: []Routine{{
		Name: "store64",
		Ops:  []Op{St(0, 8, 0x1234567812345678)},
	}}}
	zeros := Program{Name: "zero-init", Routines: []Routine{{
		Name: "ctor",
		Ops:  zeroRun(0, 4),
	}}}
	copies := Program{Name: "field-copy", Routines: []Routine{{
		Name: "assign",
		Ops:  copyRun(0, 256, 4),
	}}}

	compile := func(c Compiler, a Arch, p Program) Program { return NewPipeline(c, a).Compile(p) }
	return []Table2aRow{
		{Compiler: "gcc", Arch: "ARM64",
			Optimization: "Use a non-atomic pair of stores for a 64-bit store",
			Before:       wide, After: compile(GCC, ARM64, wide)},
		{Compiler: "gcc & LLVM-clang", Arch: "ARM64",
			Optimization: "Replace a seq. of stores of zero with a memset",
			Before:       zeros, After: compile(Clang, ARM64, zeros)},
		{Compiler: "gcc & LLVM-clang", Arch: "ARM64",
			Optimization: "Replace a seq. of assignments with a memmove or memcpy",
			Before:       copies, After: compile(GCC, ARM64, copies)},
		{Compiler: "LLVM-clang", Arch: "x86-64",
			Optimization: "Replace a seq. of stores of zero with a memset",
			Before:       zeros, After: compile(Clang, X86_64, zeros)},
		{Compiler: "LLVM-clang", Arch: "x86-64",
			Optimization: "Replace a seq. of assignments with a memcpy",
			Before:       copies, After: compile(Clang, X86_64, copies)},
		{Compiler: "gcc", Arch: "x86-64",
			Optimization: "Replace a seq. of assignments with a memmove",
			Before:       copies, After: compile(GCC, X86_64, copies)},
	}
}

// Table2bRow is one row of Table 2b.
type Table2bRow struct {
	Prog   string
	SrcOps int
	AsmOps int
}

// memsetCall builds a source-level memset call.
func memsetCall(offset, size int, val byte) Call {
	return Call{Fn: "memset", Offset: offset, Src: -1, Size: size, Val: val}
}

// memcpyCall builds a source-level memcpy call.
func memcpyCall(dst, src, size int) Call {
	return Call{Fn: "memcpy", Offset: dst, Src: src, Size: size}
}

// srcCalls emits n isolated source-level memset calls (non-contiguous so
// they never merge).
func srcCalls(n int) []Op {
	ops := make([]Op, n)
	for i := 0; i < n; i++ {
		ops[i] = memsetCall(i*256, 32, 0)
	}
	return ops
}

// zeroRuns emits n separate zero runs (each long enough to coalesce,
// separated by gaps so they produce n distinct memsets).
func zeroRuns(n int) []Op {
	var ops []Op
	for i := 0; i < n; i++ {
		ops = append(ops, zeroRun(i*1024, 3)...)   // 24 bytes ≥ threshold
		ops = append(ops, St(i*1024+512, 8, 0xFF)) // breaks the run
	}
	return ops
}

// copyRuns emits n separate coalescible copy runs.
func copyRuns(n int) []Op {
	var ops []Op
	for i := 0; i < n; i++ {
		ops = append(ops, copyRun(i*1024, 65536+i*1024, 3)...)
		ops = append(ops, St(i*1024+512, 8, 1))
	}
	return ops
}

// BenchmarkSource returns the modeled source program for a Table 2b
// benchmark.
func BenchmarkSource(name string) Program {
	switch name {
	case "CCEH":
		// 6 source memops; constructors zero whole segments in 24 separate
		// loops and copy 3 directory blocks → 27 new calls, 33 total.
		return Program{Name: name, Routines: []Routine{
			{Name: "ctor", Ops: append(srcCalls(6), zeroRuns(24)...)},
			{Name: "dir_copy", Ops: copyRuns(3)},
		}}
	case "Fast_Fair":
		// 1 source memop; 2 zeroing loops + 1 entry-shift copy loop → 4.
		return Program{Name: name, Routines: []Routine{
			{Name: "page_ctor", Ops: append(srcCalls(1), zeroRuns(2)...)},
			{Name: "shift", Ops: copyRuns(1)},
		}}
	case "P-ART":
		// 17 source memops: 14 inefficient constructor memsets that the
		// compiler consolidates into 3 (contiguous ranges, same fill), plus
		// 3 isolated ones; 2 field-assignment runs become memcpy. 8 total.
		ctor := make([]Op, 0, 14)
		group := func(base, n int) {
			for i := 0; i < n; i++ {
				ctor = append(ctor, memsetCall(base+i*16, 16, 0))
			}
		}
		group(0, 5)    // merges to 1
		group(4096, 5) // merges to 1
		group(8192, 4) // merges to 1
		return Program{Name: name, Routines: []Routine{
			{Name: "N_ctor", Ops: ctor},
			{Name: "misc", Ops: srcCalls(3)},
			{Name: "copy_fields", Ops: copyRuns(2)},
		}}
	case "P-BwTree":
		// 6 source memops; 6 zeroing loops + 3 copy loops → 15.
		return Program{Name: name, Routines: []Routine{
			{Name: "node_ctor", Ops: append(srcCalls(6), zeroRuns(6)...)},
			{Name: "delta_copy", Ops: copyRuns(3)},
		}}
	case "P-CLHT":
		// 0 source memops and volatile critical stores: nothing for the
		// optimizer to rewrite.
		return Program{Name: name, Routines: []Routine{
			{Name: "bucket_ops", Ops: []Op{
				AtomicSt(0, 8, 1), AtomicSt(8, 8, 2), AtomicSt(16, 8, 3),
				AtomicSt(24, 8, 0), AtomicSt(32, 8, 0), AtomicSt(40, 8, 0),
			}},
		}}
	case "P-Masstree":
		// 3 source memops; 7 zeroing loops + 4 copy loops → 14.
		return Program{Name: name, Routines: []Routine{
			{Name: "leaf_ctor", Ops: append(srcCalls(3), zeroRuns(7)...)},
			{Name: "perm_copy", Ops: copyRuns(4)},
		}}
	}
	panic(fmt.Sprintf("compiler: unknown benchmark %q", name))
}

// Table2bBenchmarks lists the benchmarks of Table 2b in paper order.
var Table2bBenchmarks = []string{"CCEH", "Fast_Fair", "P-ART", "P-BwTree", "P-CLHT", "P-Masstree"}

// Table2b regenerates Table 2b: source memop counts vs. the counts after
// the clang/x86-64 pipeline (the configuration the paper measured).
func Table2b() []Table2bRow {
	pipe := NewPipeline(Clang, X86_64)
	var rows []Table2bRow
	for _, name := range Table2bBenchmarks {
		src := BenchmarkSource(name)
		asm := pipe.Compile(src)
		rows = append(rows, Table2bRow{Prog: name, SrcOps: src.CountMemOps(), AsmOps: asm.CountMemOps()})
	}
	return rows
}

// PaperTable2b holds the counts published in the paper for comparison.
var PaperTable2b = map[string][2]int{
	"CCEH":       {6, 33},
	"Fast_Fair":  {1, 4},
	"P-ART":      {17, 8},
	"P-BwTree":   {6, 15},
	"P-CLHT":     {0, 0},
	"P-Masstree": {3, 14},
}
