package compiler

// Optimization passes. Each pass is a pure Routine → Routine rewrite; a
// Pipeline composes the passes a given (compiler, architecture) pair
// applies, per the paper's Table 2a.

// ZeroRunThreshold is the minimum byte length of a contiguous zero-store
// run before the optimizer substitutes a memset call.
const ZeroRunThreshold = 16

// CopyRunThreshold is the minimum byte length of a contiguous copy run
// before the optimizer substitutes a memcpy/memmove call.
const CopyRunThreshold = 16

// Pass is one optimization.
type Pass interface {
	Name() string
	Apply(Routine) Routine
}

// SplitWideStores models gcc's ARM64 lowering of 64-bit store-immediates
// into a NON-ATOMIC pair of 32-bit store-immediates (Table 2a row 1, and
// the code generation behind Figure 1). Atomic stores are preserved.
type SplitWideStores struct{}

// Name implements Pass.
func (SplitWideStores) Name() string { return "split-wide-stores" }

// Apply implements Pass.
func (SplitWideStores) Apply(r Routine) Routine {
	out := Routine{Name: r.Name}
	for _, op := range r.Ops {
		s, ok := op.(Store)
		if !ok || s.Atomic || s.Size != 8 || s.CopySrc >= 0 {
			out.Ops = append(out.Ops, op)
			continue
		}
		lo, hi := s, s
		lo.Size, lo.Val = 4, s.Val&0xFFFFFFFF
		lo.Zero = lo.Val == 0
		hi.Size, hi.Offset, hi.Val = 4, s.Offset+4, s.Val>>32
		hi.Zero = hi.Val == 0
		out.Ops = append(out.Ops, lo, hi)
	}
	return out
}

// CoalesceZeroRuns replaces runs of contiguous non-atomic zero stores of at
// least ZeroRunThreshold bytes with a memset call (Table 2a rows 2 and 4).
type CoalesceZeroRuns struct{}

// Name implements Pass.
func (CoalesceZeroRuns) Name() string { return "coalesce-zero-runs" }

// Apply implements Pass.
func (CoalesceZeroRuns) Apply(r Routine) Routine {
	return coalesceRuns(r,
		func(s Store) bool { return s.Zero && !s.Atomic },
		func(s Store, end int) bool { return s.Offset == end },
		func(start, size int, _ Store) Call {
			return Call{Fn: "memset", Offset: start, Src: -1, Size: size}
		},
		ZeroRunThreshold)
}

// CoalesceCopyRuns replaces runs of contiguous copy stores (contiguous in
// both destination and source) of at least CopyRunThreshold bytes with a
// memcpy or memmove call (Table 2a rows 3, 5 and 6). gcc prefers memmove on
// x86-64; clang emits memcpy.
type CoalesceCopyRuns struct {
	// Fn is "memcpy" or "memmove".
	Fn string
}

// Name implements Pass.
func (p CoalesceCopyRuns) Name() string { return "coalesce-copy-runs(" + p.Fn + ")" }

// Apply implements Pass.
func (p CoalesceCopyRuns) Apply(r Routine) Routine {
	srcEnd := 0
	return coalesceRuns(r,
		func(s Store) bool { return s.CopySrc >= 0 && !s.Atomic },
		func(s Store, end int) bool {
			ok := s.Offset == end && s.CopySrc == srcEnd
			return ok
		},
		func(start, size int, first Store) Call {
			return Call{Fn: p.Fn, Offset: start, Src: first.CopySrc, Size: size}
		},
		CopyRunThreshold,
		func(s Store) { srcEnd = s.CopySrc + s.Size }, // track source contiguity
	)
}

// coalesceRuns is the shared run detector: match selects candidate stores,
// contig tests contiguity against the current run end, and build produces
// the replacement call when the run reaches threshold bytes.
func coalesceRuns(r Routine, match func(Store) bool, contig func(Store, int) bool,
	build func(start, size int, first Store) Call, threshold int, onAccept ...func(Store)) Routine {

	out := Routine{Name: r.Name}
	var run []Store
	runStart, runEnd := 0, 0
	flush := func() {
		if len(run) == 0 {
			return
		}
		if runEnd-runStart >= threshold {
			out.Ops = append(out.Ops, build(runStart, runEnd-runStart, run[0]))
		} else {
			for _, s := range run {
				out.Ops = append(out.Ops, s)
			}
		}
		run = nil
	}
	for _, op := range r.Ops {
		s, ok := op.(Store)
		if !ok || !match(s) {
			flush()
			out.Ops = append(out.Ops, op)
			continue
		}
		if len(run) > 0 && !contig(s, runEnd) {
			flush()
		}
		if len(run) == 0 {
			runStart = s.Offset
			runEnd = s.Offset
		}
		run = append(run, s)
		runEnd = s.Offset + s.Size
		for _, f := range onAccept {
			f(s)
		}
	}
	flush()
	return out
}

// MergeAdjacentMemsets merges back-to-back memset calls over contiguous
// ranges with the same fill byte into one call — the consolidation the
// paper observed in P-ART, where clang turned 14 source-level memsets into
// 3 (§3.2).
type MergeAdjacentMemsets struct{}

// Name implements Pass.
func (MergeAdjacentMemsets) Name() string { return "merge-adjacent-memsets" }

// Apply implements Pass.
func (MergeAdjacentMemsets) Apply(r Routine) Routine {
	out := Routine{Name: r.Name}
	for _, op := range r.Ops {
		c, ok := op.(Call)
		if ok && c.Fn == "memset" && len(out.Ops) > 0 {
			if prev, ok2 := out.Ops[len(out.Ops)-1].(Call); ok2 && prev.Fn == "memset" &&
				prev.Val == c.Val && prev.Offset+prev.Size == c.Offset {
				prev.Size += c.Size
				out.Ops[len(out.Ops)-1] = prev
				continue
			}
		}
		out.Ops = append(out.Ops, op)
	}
	return out
}

// Pipeline is the ordered pass list one (compiler, arch) pair applies.
type Pipeline struct {
	Compiler Compiler
	Arch     Arch
	Passes   []Pass
}

// NewPipeline returns the pass pipeline for a compiler/architecture pair,
// per Table 2a.
func NewPipeline(c Compiler, a Arch) Pipeline {
	p := Pipeline{Compiler: c, Arch: a}
	copyFn := "memcpy"
	if c == GCC {
		copyFn = "memmove"
	}
	switch {
	case a == ARM64 && c == GCC:
		p.Passes = []Pass{SplitWideStores{}, CoalesceZeroRuns{}, CoalesceCopyRuns{Fn: copyFn}, MergeAdjacentMemsets{}}
	case a == ARM64 && c == Clang:
		p.Passes = []Pass{CoalesceZeroRuns{}, CoalesceCopyRuns{Fn: copyFn}, MergeAdjacentMemsets{}}
	case a == X86_64 && c == Clang:
		p.Passes = []Pass{CoalesceZeroRuns{}, CoalesceCopyRuns{Fn: copyFn}, MergeAdjacentMemsets{}}
	default: // gcc on x86-64: only the assignment-run rewrite (Table 2a row 6)
		p.Passes = []Pass{CoalesceCopyRuns{Fn: copyFn}}
	}
	return p
}

// Compile applies the pipeline to every routine of the program.
func (p Pipeline) Compile(prog Program) Program {
	out := Program{Name: prog.Name}
	for _, r := range prog.Routines {
		for _, pass := range p.Passes {
			r = pass.Apply(r)
		}
		out.Routines = append(out.Routines, r)
	}
	return out
}

// InventStores models the second compiler hazard the paper documents
// (§3.2, citing "Who's afraid of a big bad optimizing compiler?"): under
// register pressure a compiler may legally invent a store to a location
// the program is guaranteed to write anyway, stashing a temporary there.
// The invented value is garbage from the program's perspective; a crash
// between the invented store and the real one persists it. The pass
// applies to non-atomic stores whose value the "compiler" wants to build
// in place (modelled here as stores of composite values: the temporary is
// the half-built value).
type InventStores struct{}

// Name implements Pass.
func (InventStores) Name() string { return "invent-stores" }

// Apply implements Pass.
func (InventStores) Apply(r Routine) Routine {
	out := Routine{Name: r.Name}
	for _, op := range r.Ops {
		s, ok := op.(Store)
		if !ok || s.Atomic || s.CopySrc >= 0 || s.Zero || s.Size < 4 {
			out.Ops = append(out.Ops, op)
			continue
		}
		// The invented store: the destination is used as a scratch slot for
		// the partially computed value before the real store lands.
		scratch := s
		scratch.Val = s.Val & 0xFFFF // the half-built temporary
		scratch.Invented = true
		out.Ops = append(out.Ops, scratch, s)
	}
	return out
}
