package compiler

import (
	"fmt"

	"yashme/internal/pmm"
)

// Lowering connects the compiler study to the detector: an IR program can
// be lowered onto the persistent-memory simulator and model checked, so the
// effect of a store optimization is demonstrated end to end — compile the
// source with a tearing backend, run it, crash it, and watch the post-crash
// execution read a genuinely half-written value. This is the paper's
// Figure 1 pipeline without any synthetic torn-value injection: the two
// 32-bit store-immediates gcc emits are two separate simulated stores, and
// a crash between their commits leaves exactly one persisted.

// LoweredProgram is an IR program bound to simulator state.
type LoweredProgram struct {
	ir Program
	// FlushEvery inserts a clflush after every store/call (modelling a
	// straightforwardly-written PM program that flushes each update).
	FlushEvery bool
	// observed collects the post-crash values per IR offset.
	observed map[int][]uint64
}

// Lower binds an IR program for execution.
func Lower(ir Program, flushEvery bool) *LoweredProgram {
	return &LoweredProgram{ir: ir, FlushEvery: flushEvery, observed: make(map[int][]uint64)}
}

// Observed returns the post-crash values seen at an IR offset across all
// explored executions.
func (lp *LoweredProgram) Observed(offset int) []uint64 { return lp.observed[offset] }

// irSpan returns the byte span [lo, hi) touched by the program.
func (lp *LoweredProgram) irSpan() (int, int) {
	lo, hi := 1<<30, 0
	visit := func(off, size int) {
		if off < lo {
			lo = off
		}
		if off+size > hi {
			hi = off + size
		}
	}
	for _, r := range lp.ir.Routines {
		for _, o := range r.Ops {
			switch op := o.(type) {
			case Store:
				visit(op.Offset, op.Size)
				if op.CopySrc >= 0 {
					visit(op.CopySrc, op.Size)
				}
			case Call:
				visit(op.Offset, op.Size)
				if op.Src >= 0 {
					visit(op.Src, op.Size)
				}
			}
		}
	}
	if hi == 0 {
		lo = 0
	}
	return lo, hi
}

// MakeProgram returns the engine-compatible constructor. Each IR offset
// maps into a raw persistent allocation; every routine becomes part of one
// worker thread; the recovery procedure reads back every destination the
// program wrote and records the values (so tearing is observable).
func (lp *LoweredProgram) MakeProgram() func() pmm.Program {
	lo, hi := lp.irSpan()
	size := hi - lo
	if size <= 0 {
		size = 8
	}
	// Destinations to read back post-crash: offset → access size.
	reads := map[int]int{}
	for _, r := range lp.ir.Routines {
		for _, o := range r.Ops {
			switch op := o.(type) {
			case Store:
				if cur, ok := reads[op.Offset]; !ok || op.Size > cur {
					reads[op.Offset] = op.Size
				}
			case Call:
				reads[op.Offset] = 8 // read the first word of the region
			}
		}
	}
	var readOffsets []int
	for off := range reads {
		readOffsets = append(readOffsets, off)
	}
	// Deterministic order.
	for i := 0; i < len(readOffsets); i++ {
		for j := i + 1; j < len(readOffsets); j++ {
			if readOffsets[j] < readOffsets[i] {
				readOffsets[i], readOffsets[j] = readOffsets[j], readOffsets[i]
			}
		}
	}

	return func() pmm.Program {
		var base pmm.Addr
		addr := func(off int) pmm.Addr { return base + pmm.Addr(off-lo) }
		return pmm.Program{
			Name: "ir:" + lp.ir.Name,
			Setup: func(h *pmm.Heap) {
				base = h.AllocRaw("ir", size)
			},
			Workers: []func(*pmm.Thread){func(t *pmm.Thread) {
				for _, r := range lp.ir.Routines {
					for _, o := range r.Ops {
						lp.execOp(t, o, addr)
					}
				}
			}},
			PostCrash: func(t *pmm.Thread) {
				for _, off := range readOffsets {
					v := t.Load(addr(off), reads[off])
					lp.observed[off] = append(lp.observed[off], v)
				}
			},
		}
	}
}

// execOp issues one IR operation on the simulator.
func (lp *LoweredProgram) execOp(t *pmm.Thread, o Op, addr func(int) pmm.Addr) {
	switch op := o.(type) {
	case Store:
		val := op.Val
		if op.CopySrc >= 0 {
			val = t.Load(addr(op.CopySrc), op.Size)
		}
		if op.Atomic {
			t.StoreRelease(addr(op.Offset), op.Size, val)
		} else {
			t.Store(addr(op.Offset), op.Size, val)
		}
		if lp.FlushEvery {
			t.CLFlush(addr(op.Offset))
			t.SFence()
		}
	case Call:
		switch op.Fn {
		case "memset":
			// Byte-granular non-atomic writes: 8-byte chunks + tail, like
			// the real libc call — no 64-bit atomicity guarantee.
			pattern := uint64(0)
			for i := 0; i < 8; i++ {
				pattern = pattern<<8 | uint64(op.Val)
			}
			for rem, cur := op.Size, 0; rem > 0; {
				step := 8
				if rem < 8 {
					step = 1
				}
				t.Store(addr(op.Offset+cur), step, pattern&mask(step))
				cur += step
				rem -= step
			}
		case "memcpy", "memmove":
			for rem, cur := op.Size, 0; rem > 0; {
				step := 8
				if rem < 8 {
					step = 1
				}
				v := t.Load(addr(op.Src+cur), step)
				t.Store(addr(op.Offset+cur), step, v)
				cur += step
				rem -= step
			}
		default:
			panic(fmt.Sprintf("compiler: unknown call %q", op.Fn))
		}
		if lp.FlushEvery {
			t.FlushRange(addr(op.Offset), op.Size)
			t.SFence()
		}
	}
}

func mask(size int) uint64 {
	if size >= 8 {
		return ^uint64(0)
	}
	return (uint64(1) << (8 * size)) - 1
}
