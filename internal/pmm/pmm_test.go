package pmm

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"
)

func TestLineOf(t *testing.T) {
	cases := []struct {
		a    Addr
		want Line
	}{
		{0, 0}, {63, 0}, {64, 1}, {65, 1}, {127, 1}, {128, 2},
	}
	for _, c := range cases {
		if got := LineOf(c.a); got != c.want {
			t.Errorf("LineOf(%d) = %d, want %d", c.a, got, c.want)
		}
	}
	if !SameLine(0, 63) || SameLine(63, 64) {
		t.Error("SameLine boundary behaviour wrong")
	}
}

func TestLayoutNaturalAlignment(t *testing.T) {
	s := NewHeap().AllocStruct("obj", Layout{
		{"b", 1}, {"w", 2}, {"d", 4}, {"q", 8}, {"tail", 1},
	})
	wantOffsets := map[string]Addr{"b": 0, "w": 2, "d": 4, "q": 8, "tail": 16}
	for name, off := range wantOffsets {
		if got := s.F(name) - s.Base(); got != off {
			t.Errorf("field %q offset = %d, want %d", name, got, off)
		}
	}
	if s.Size() != 24 { // rounded up to 8-byte alignment
		t.Errorf("struct size = %d, want 24", s.Size())
	}
}

func TestFieldSizes(t *testing.T) {
	s := NewHeap().AllocStruct("obj", Layout{{"a", 4}, {"b", 8}})
	if _, size := s.Field("a"); size != 4 {
		t.Errorf("field a size = %d", size)
	}
	if _, size := s.Field("b"); size != 8 {
		t.Errorf("field b size = %d", size)
	}
}

func TestUnknownFieldPanics(t *testing.T) {
	s := NewHeap().AllocStruct("obj", Layout{{"a", 8}})
	defer func() {
		if recover() == nil {
			t.Fatal("Field on unknown name did not panic")
		}
	}()
	s.F("nope")
}

func TestDuplicateFieldPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate field did not panic")
		}
	}()
	NewHeap().AllocStruct("obj", Layout{{"a", 8}, {"a", 4}})
}

func TestBadFieldSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("field size 3 did not panic")
		}
	}()
	NewHeap().AllocStruct("obj", Layout{{"a", 3}})
}

func TestAllocationsAreLineAligned(t *testing.T) {
	h := NewHeap()
	a := h.AllocStruct("a", Layout{{"x", 8}})
	b := h.AllocStruct("b", Layout{{"x", 8}})
	r := h.AllocRaw("raw", 100)
	for _, base := range []Addr{a.Base(), b.Base(), r} {
		if base%CacheLineSize != 0 {
			t.Errorf("allocation base 0x%x not line aligned", uint64(base))
		}
		if base == 0 {
			t.Error("allocation at address 0 (reserved for null)")
		}
	}
	if a.Base() == b.Base() {
		t.Error("allocations overlap")
	}
}

func TestArrayIndexingAndStride(t *testing.T) {
	h := NewHeap()
	arr := h.AllocArray("pairs", Layout{{"key", 8}, {"value", 8}}, 8)
	if arr.Stride() != 16 {
		t.Fatalf("stride = %d, want 16", arr.Stride())
	}
	if arr.Len() != 8 {
		t.Fatalf("len = %d, want 8", arr.Len())
	}
	for i := 0; i < 8; i++ {
		el := arr.At(i)
		if el.Base() != arr.Base()+Addr(16*i) {
			t.Errorf("element %d base wrong", i)
		}
		// With a 16-byte stride from a line-aligned base, key and value of
		// one pair always share a cache line — the CCEH design assumption.
		if !SameLine(el.F("key"), el.F("value")) {
			t.Errorf("pair %d spans cache lines", i)
		}
	}
}

func TestArrayOutOfRangePanics(t *testing.T) {
	arr := NewHeap().AllocArray("a", Layout{{"x", 8}}, 2)
	for _, idx := range []int{-1, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("At(%d) did not panic", idx)
				}
			}()
			arr.At(idx)
		}()
	}
}

func TestLabelFor(t *testing.T) {
	h := NewHeap()
	s := h.AllocStruct("Pair", Layout{{"key", 8}, {"value", 8}})
	arr := h.AllocArray("seg", Layout{{"key", 8}, {"value", 8}}, 4)
	raw := h.AllocRaw("blob", 32)

	cases := []struct {
		addr Addr
		want string
	}{
		{s.F("key"), "Pair.key"},
		{s.F("value"), "Pair.value"},
		{arr.At(2).F("value"), "seg[2].value"},
		{raw, "blob"},
		{raw + 8, "blob+8"},
		{0, "0x0"},
	}
	for _, c := range cases {
		if got := h.LabelFor(c.addr); got != c.want {
			t.Errorf("LabelFor(0x%x) = %q, want %q", uint64(c.addr), got, c.want)
		}
	}
}

func TestLabelForAddressPastEnd(t *testing.T) {
	h := NewHeap()
	s := h.AllocStruct("only", Layout{{"x", 8}})
	past := s.Base() + Addr(10*CacheLineSize)
	if got := h.LabelFor(past); !strings.HasPrefix(got, "0x") {
		t.Errorf("LabelFor past end = %q, want hex fallback", got)
	}
}

func TestFieldsInStruct(t *testing.T) {
	h := NewHeap()
	arr := h.AllocArray("seg", Layout{{"key", 8}, {"value", 8}}, 4)
	fields := h.FieldsIn(arr.Base(), 4*16)
	if len(fields) != 8 {
		t.Fatalf("FieldsIn covering array = %d fields, want 8", len(fields))
	}
	// Partial range: just element 1.
	fields = h.FieldsIn(arr.At(1).Base(), 16)
	if len(fields) != 2 {
		t.Fatalf("FieldsIn one element = %d fields, want 2", len(fields))
	}
	if fields[0].Addr != arr.At(1).F("key") || fields[1].Addr != arr.At(1).F("value") {
		t.Error("FieldsIn returned wrong field addresses")
	}
}

func TestFieldsInRaw(t *testing.T) {
	h := NewHeap()
	raw := h.AllocRaw("blob", 20)
	fields := h.FieldsIn(raw, 20)
	total := 0
	for _, f := range fields {
		total += f.Size
	}
	if total != 20 {
		t.Fatalf("FieldsIn raw covers %d bytes, want 20", total)
	}
}

func TestFieldsInOutsideAllocationPanics(t *testing.T) {
	h := NewHeap()
	raw := h.AllocRaw("blob", 16)
	defer func() {
		if recover() == nil {
			t.Fatal("FieldsIn past allocation did not panic")
		}
	}()
	h.FieldsIn(raw, 32)
}

func TestInitWritesRecorded(t *testing.T) {
	h := NewHeap()
	s := h.AllocStruct("obj", Layout{{"x", 8}})
	h.Init(s.F("x"), 8, 42)
	ws := h.InitWrites()
	if len(ws) != 1 || ws[0].Val != 42 || ws[0].Addr != s.F("x") {
		t.Fatalf("InitWrites = %+v", ws)
	}
}

func TestSizeMask(t *testing.T) {
	cases := map[int]uint64{1: 0xff, 2: 0xffff, 4: 0xffffffff, 8: ^uint64(0)}
	for size, want := range cases {
		if got := sizeMask(size); got != want {
			t.Errorf("sizeMask(%d) = %#x, want %#x", size, got, want)
		}
	}
}

// Property: LabelFor of any field address round-trips to the field name.
func TestLabelForProperty(t *testing.T) {
	f := func(nFields uint8, count uint8) bool {
		n := int(nFields%6) + 1
		cnt := int(count%5) + 1
		h := NewHeap()
		layout := make(Layout, n)
		for i := range layout {
			layout[i] = FieldDef{Name: fmt.Sprintf("f%d", i), Size: 8}
		}
		arr := h.AllocArray("A", layout, cnt)
		for i := 0; i < cnt; i++ {
			for j := 0; j < n; j++ {
				want := fmt.Sprintf("A[%d].f%d", i, j)
				if cnt == 1 {
					want = fmt.Sprintf("A.f%d", j)
				}
				got := h.LabelFor(arr.At(i).F(fmt.Sprintf("f%d", j)))
				if cnt == 1 {
					if got != want {
						return false
					}
				} else if got != want {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: allocations never overlap, regardless of the mix of sizes.
func TestNoOverlapProperty(t *testing.T) {
	f := func(sizes []uint16) bool {
		h := NewHeap()
		type span struct{ lo, hi Addr }
		var spans []span
		for i, sz := range sizes {
			n := int(sz%512) + 1
			base := h.AllocRaw(fmt.Sprintf("r%d", i), n)
			spans = append(spans, span{base, base + Addr(n)})
		}
		for i := range spans {
			for j := i + 1; j < len(spans); j++ {
				if spans[i].lo < spans[j].hi && spans[j].lo < spans[i].hi {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestAllocRawZeroSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("AllocRaw(0) did not panic")
		}
	}()
	NewHeap().AllocRaw("bad", 0)
}

func TestAllocArrayZeroCountPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("AllocArray count 0 did not panic")
		}
	}()
	NewHeap().AllocArray("bad", Layout{{Name: "x", Size: 8}}, 0)
}

func TestEmptyLayoutStillAllocates(t *testing.T) {
	s := NewHeap().AllocStruct("empty", Layout{})
	if s.Size() <= 0 {
		t.Fatalf("empty struct size = %d", s.Size())
	}
}

func TestLabelForMiddleOfField(t *testing.T) {
	h := NewHeap()
	s := h.AllocStruct("o", Layout{{Name: "q", Size: 8}})
	// An address inside (not at the start of) a field still labels as the
	// field — torn-half reporting depends on it.
	if got := h.LabelFor(s.F("q") + 4); got != "o.q" {
		t.Fatalf("mid-field label = %q, want o.q", got)
	}
}
