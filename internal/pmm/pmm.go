// Package pmm defines the persistent-memory program model.
//
// Yashme instruments LLVM IR so that compiled C/C++ persistent-memory
// programs report their loads, stores, cache-line flushes and fences to a
// simulator. This Go reproduction replaces that front end: workloads are Go
// functions that issue the same events against a simulated persistent heap.
// Package pmm holds everything a workload needs — addresses, cache-line
// geometry, a heap of named objects, and the Thread handle exposing the
// Px86 operation surface — while the simulation itself lives in
// internal/engine and the race detector in internal/core.
package pmm

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Addr is a byte address in the simulated persistent memory.
type Addr uint64

// CacheLineSize is the simulated cache-line size in bytes, matching x86.
const CacheLineSize = 64

// Line identifies a cache line.
type Line uint64

// LineOf returns the cache line containing a.
func LineOf(a Addr) Line { return Line(a / CacheLineSize) }

// SameLine reports whether two addresses fall on the same cache line.
func SameLine(a, b Addr) bool { return LineOf(a) == LineOf(b) }

// FieldDef declares one field of a persistent struct layout.
type FieldDef struct {
	Name string
	Size int // bytes: 1, 2, 4 or 8
}

// Layout is an ordered list of fields. Offsets are assigned in order with
// natural alignment (each field aligned to its own size), like a C struct
// without packing pragmas.
type Layout []FieldDef

type fieldInfo struct {
	name   string
	offset int
	size   int
}

type layoutInfo struct {
	fields []fieldInfo
	byName map[string]int
	size   int // struct size, rounded up to max alignment
}

// layoutCache memoizes buildLayout by layout contents: a checkpoint resume
// re-runs the program's Setup against a fresh heap, so the same handful of
// struct layouts would otherwise be rebuilt (fields, name index, size
// computation) for every resumed scenario, concurrently across workers.
// layoutInfo is immutable once built, so sharing one instance is safe.
var layoutCache sync.Map // string → *layoutInfo

func buildLayout(l Layout) *layoutInfo {
	var kb strings.Builder
	for _, f := range l {
		kb.WriteString(f.Name)
		kb.WriteByte(0)
		kb.WriteString(strconv.Itoa(f.Size))
		kb.WriteByte(1)
	}
	key := kb.String()
	if v, ok := layoutCache.Load(key); ok {
		return v.(*layoutInfo)
	}
	info := buildLayoutUncached(l)
	layoutCache.Store(key, info)
	return info
}

func buildLayoutUncached(l Layout) *layoutInfo {
	info := &layoutInfo{byName: make(map[string]int, len(l))}
	off, maxAlign := 0, 1
	for _, f := range l {
		switch f.Size {
		case 1, 2, 4, 8:
		default:
			panic(fmt.Sprintf("pmm: field %q has unsupported size %d", f.Name, f.Size))
		}
		if _, dup := info.byName[f.Name]; dup {
			panic(fmt.Sprintf("pmm: duplicate field %q", f.Name))
		}
		if f.Size > maxAlign {
			maxAlign = f.Size
		}
		off = align(off, f.Size)
		info.byName[f.Name] = len(info.fields)
		info.fields = append(info.fields, fieldInfo{name: f.Name, offset: off, size: f.Size})
		off += f.Size
	}
	info.size = align(off, maxAlign)
	if info.size == 0 {
		info.size = maxAlign
	}
	return info
}

func align(off, a int) int { return (off + a - 1) &^ (a - 1) }

// allocation records one named persistent object (possibly an array).
type allocation struct {
	base   Addr
	size   int // total bytes
	label  string
	layout *layoutInfo // nil for raw allocations
	count  int         // array element count; 1 for plain structs
	stride int
}

// Heap allocates named persistent objects. Each allocation is cache-line
// aligned so that struct layouts control line sharing deterministically
// (several of the reproduced bugs — e.g. CCEH's key/value pair — depend on
// two fields sharing a cache line).
//
// Heap is not safe for concurrent use; the engine serializes all simulated
// threads, so workload code may allocate at any scheduling point.
type Heap struct {
	next   Addr
	allocs []allocation // sorted by base
	inits  []InitWrite
	// labels memoizes LabelFor: the detector labels the same few racing
	// addresses on every candidate check of every crash scenario, and the
	// rendered name is a pure function of the allocation table. Any change
	// to that table (place, Restore) drops the whole cache.
	labels map[Addr]string
}

// InitWrite is a pre-execution write applied directly to the persistent
// image before the pre-crash execution starts (it is fully persisted and
// never participates in race detection).
type InitWrite struct {
	Addr Addr
	Size int
	Val  uint64
}

// NewHeap returns an empty heap. The first allocation starts at a non-zero,
// line-aligned address so that Addr(0) can mean "null".
func NewHeap() *Heap { return &Heap{next: CacheLineSize} }

// Struct is a handle to an allocated struct instance.
type Struct struct {
	heap   *Heap
	base   Addr
	layout *layoutInfo
	label  string
}

// Array is a handle to an allocated array of structs.
type Array struct {
	heap   *Heap
	base   Addr
	layout *layoutInfo
	label  string
	count  int
	stride int
}

// AllocStruct allocates one struct with the given label and layout.
func (h *Heap) AllocStruct(label string, l Layout) Struct {
	info := buildLayout(l)
	base := h.place(info.size)
	h.allocs = append(h.allocs, allocation{base: base, size: info.size, label: label, layout: info, count: 1, stride: info.size})
	return Struct{heap: h, base: base, layout: info, label: label}
}

// AllocArray allocates count contiguous struct instances. The element stride
// is the struct size rounded up to 8 bytes so that elements stay internally
// aligned.
func (h *Heap) AllocArray(label string, l Layout, count int) Array {
	if count <= 0 {
		panic("pmm: AllocArray count must be positive")
	}
	info := buildLayout(l)
	stride := align(info.size, 8)
	base := h.place(stride * count)
	h.allocs = append(h.allocs, allocation{base: base, size: stride * count, label: label, layout: info, count: count, stride: stride})
	return Array{heap: h, base: base, layout: info, label: label, count: count, stride: stride}
}

// AllocRaw allocates size bytes with no field structure. Accesses into raw
// allocations are labelled "label+off".
func (h *Heap) AllocRaw(label string, size int) Addr {
	if size <= 0 {
		panic("pmm: AllocRaw size must be positive")
	}
	base := h.place(size)
	h.allocs = append(h.allocs, allocation{base: base, size: size, label: label, count: 1, stride: size})
	return base
}

func (h *Heap) place(size int) Addr {
	base := Addr(align(int(h.next), CacheLineSize))
	h.next = base + Addr(size)
	h.labels = nil
	return base
}

// Clone returns an independent copy of the heap's allocation state.
// Allocation layouts are shared (they are immutable once built). Handles
// (Struct, Array) held by program closures keep pointing at the heap they
// were allocated from — a clone does not retarget them. The engine's
// checkpoint layer therefore pairs Clone with Restore: it re-runs the
// program's Setup against a fresh heap (recreating the closure handles) and
// grafts the cloned state into that heap object.
func (h *Heap) Clone() *Heap {
	return &Heap{
		next:   h.next,
		allocs: append([]allocation(nil), h.allocs...),
		inits:  append([]InitWrite(nil), h.inits...),
	}
}

// Snapshot returns an O(1) read-only view of the heap's current state,
// valid as a Restore source: the allocation and init-write slices are the
// heap's own journal — append-only, with elements immutable once placed —
// so a capacity-capped view pins exactly today's prefix without copying a
// byte. Later allocations on h re-allocate past the cap and can never leak
// into the view. The engine's checkpoint layer captures one view per crash
// point where it used to pay a full Clone.
func (h *Heap) Snapshot() *Heap {
	return &Heap{
		next:   h.next,
		allocs: h.allocs[:len(h.allocs):len(h.allocs)],
		inits:  h.inits[:len(h.inits):len(h.inits)],
	}
}

// Restore overwrites h's allocation state with a copy of src's. Handles
// pointing at h stay valid and resolve against the restored state; src is
// not aliased and may be restored into any number of heaps.
func (h *Heap) Restore(src *Heap) {
	h.next = src.next
	h.allocs = append(h.allocs[:0:0], src.allocs...)
	h.inits = append(h.inits[:0:0], src.inits...)
	h.labels = nil
}

// AllocCount returns the number of allocations made so far. Together with
// NextFree it fingerprints the heap's shape — the engine's checkpoint layer
// uses the pair to verify that a re-run Setup produced the same allocations
// before grafting snapshot state onto it.
func (h *Heap) AllocCount() int { return len(h.allocs) }

// NextFree returns the next unallocated address.
func (h *Heap) NextFree() Addr { return h.next }

// Init records a fully-persisted initial value for (addr, size). The engine
// applies Init writes to the persistent image before execution begins.
func (h *Heap) Init(addr Addr, size int, val uint64) {
	h.inits = append(h.inits, InitWrite{Addr: addr, Size: size, Val: val})
}

// InitWrites returns the recorded initial writes.
func (h *Heap) InitWrites() []InitWrite { return h.inits }

// Base returns the struct's base address.
func (s Struct) Base() Addr { return s.base }

// Size returns the struct's size in bytes.
func (s Struct) Size() int { return s.layout.size }

// Field returns the address of the named field and its size.
func (s Struct) Field(name string) (Addr, int) {
	i, ok := s.layout.byName[name]
	if !ok {
		panic(fmt.Sprintf("pmm: struct %q has no field %q", s.label, name))
	}
	f := s.layout.fields[i]
	return s.base + Addr(f.offset), f.size
}

// F returns just the address of the named field.
func (s Struct) F(name string) Addr {
	a, _ := s.Field(name)
	return a
}

// Label returns the struct's allocation label.
func (s Struct) Label() string { return s.label }

// At returns the i'th element of the array as a Struct handle.
func (a Array) At(i int) Struct {
	if i < 0 || i >= a.count {
		panic(fmt.Sprintf("pmm: array %q index %d out of range [0,%d)", a.label, i, a.count))
	}
	return Struct{heap: a.heap, base: a.base + Addr(i*a.stride), layout: a.layout, label: a.label}
}

// Len returns the number of elements.
func (a Array) Len() int { return a.count }

// Label returns the array's allocation label.
func (a Array) Label() string { return a.label }

// Base returns the array's base address.
func (a Array) Base() Addr { return a.base }

// Stride returns the distance in bytes between consecutive elements.
func (a Array) Stride() int { return a.stride }

// findAlloc returns the allocation containing addr, or nil.
func (h *Heap) findAlloc(addr Addr) *allocation {
	// allocs are appended in increasing base order.
	i := sort.Search(len(h.allocs), func(i int) bool { return h.allocs[i].base > addr })
	if i == 0 {
		return nil
	}
	a := &h.allocs[i-1]
	if addr >= a.base+Addr(a.size) {
		return nil
	}
	return a
}

// StructAt reattaches a Struct handle to a persisted pointer: it returns
// the handle of the struct instance whose base address is exactly a, or
// ok=false if a is not the base of a structured allocation's element.
//
// This is the Go analog of casting a pointer loaded from persistent memory
// in recovery code. A benchmark program that allocates structs during its
// workload cannot rely on Go-side handle registries to survive a crash —
// recovery runs in what is conceptually a fresh process (and, in this
// engine, possibly a scenario resumed from a checkpoint that never executed
// the workload closures) — so it resolves child pointers read from the heap
// through StructAt instead.
func (h *Heap) StructAt(a Addr) (Struct, bool) {
	al := h.findAlloc(a)
	if al == nil || al.layout == nil {
		return Struct{}, false
	}
	off := int(a - al.base)
	if off%al.stride != 0 || off/al.stride >= al.count {
		return Struct{}, false
	}
	return Struct{heap: h, base: a, layout: al.layout, label: al.label}, true
}

// FieldCount returns the number of declared fields in the struct's layout;
// programs use it to discriminate variants reattached via StructAt (e.g.
// adaptive tree nodes whose capacity is encoded in their field count).
func (s Struct) FieldCount() int { return len(s.layout.fields) }

// ArrayAt reattaches an Array handle to a persisted pointer: it returns the
// handle of the array allocation whose base address is exactly a, or
// ok=false if a is not the base of a structured allocation. Like StructAt,
// this is for recovery code resolving pointers read from persistent memory.
func (h *Heap) ArrayAt(a Addr) (Array, bool) {
	al := h.findAlloc(a)
	if al == nil || al.layout == nil || al.base != a {
		return Array{}, false
	}
	return Array{heap: h, base: al.base, layout: al.layout, label: al.label, count: al.count, stride: al.stride}, true
}

// NextAllocBase returns the base address of the allocation made immediately
// after the one containing a. Programs whose logical objects span two
// consecutive allocations (e.g. a node header plus its entry array) use it
// to reattach the companion allocation from the first one's address.
func (h *Heap) NextAllocBase(a Addr) (Addr, bool) {
	i := sort.Search(len(h.allocs), func(i int) bool { return h.allocs[i].base > a })
	if i >= len(h.allocs) {
		return 0, false
	}
	return h.allocs[i].base, true
}

// LabelFor renders a human-readable name for an address: "Obj.field",
// "Obj[3].field", "raw+8", or "0xADDR" if the address is unknown. Race
// reports use these names as the bug's root cause, mirroring the paper's
// Tables 3 and 4 which identify bugs by field.
func (h *Heap) LabelFor(addr Addr) string {
	if s, ok := h.labels[addr]; ok {
		return s
	}
	s := h.labelFor(addr)
	if h.labels == nil {
		h.labels = make(map[Addr]string)
	}
	h.labels[addr] = s
	return s
}

func (h *Heap) labelFor(addr Addr) string {
	a := h.findAlloc(addr)
	if a == nil {
		return fmt.Sprintf("0x%x", uint64(addr))
	}
	off := int(addr - a.base)
	if a.layout == nil {
		if off == 0 {
			return a.label
		}
		return fmt.Sprintf("%s+%d", a.label, off)
	}
	idx, rem := 0, off
	if a.count > 1 {
		idx, rem = off/a.stride, off%a.stride
	}
	fieldName := fmt.Sprintf("+%d", rem)
	for _, f := range a.layout.fields {
		if rem >= f.offset && rem < f.offset+f.size {
			fieldName = f.name
			break
		}
	}
	if a.count > 1 {
		return fmt.Sprintf("%s[%d].%s", a.label, idx, fieldName)
	}
	return fmt.Sprintf("%s.%s", a.label, fieldName)
}

// FieldAt describes one field instance within an address range; used to
// decompose memset/memcpy into field-granular stores.
type FieldAt struct {
	Addr Addr
	Size int
}

// FieldsIn returns the field-granular access units covering [addr,
// addr+size). For structured allocations these are the declared fields; for
// raw allocations the range is cut into aligned 8-byte chunks with a byte
// tail. Panics if the range is not fully contained in one allocation.
func (h *Heap) FieldsIn(addr Addr, size int) []FieldAt {
	a := h.findAlloc(addr)
	if a == nil || addr+Addr(size) > a.base+Addr(a.size) {
		panic(fmt.Sprintf("pmm: range [0x%x,+%d) not within a single allocation", uint64(addr), size))
	}
	var out []FieldAt
	if a.layout == nil {
		for cur, end := addr, addr+Addr(size); cur < end; {
			step := 8
			if int(cur)%8 != 0 {
				step = 1
			}
			if Addr(step) > end-cur {
				step = 1
			}
			out = append(out, FieldAt{Addr: cur, Size: step})
			cur += Addr(step)
		}
		return out
	}
	end := addr + Addr(size)
	for i := 0; i < a.count; i++ {
		elemBase := a.base + Addr(i*a.stride)
		for _, f := range a.layout.fields {
			fa := elemBase + Addr(f.offset)
			if fa >= addr && fa+Addr(f.size) <= end {
				out = append(out, FieldAt{Addr: fa, Size: f.size})
			}
		}
	}
	return out
}
