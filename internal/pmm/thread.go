package pmm

// Ops is the low-level event surface a simulated thread reports to the
// engine. It corresponds to the set of LLVM IR operations Yashme's compiler
// pass intercepts: loads, stores (atomic and non-atomic), locked RMW,
// clflush, clwb, sfence and mfence. The engine implements Ops; workloads use
// the higher-level Thread wrapper.
type Ops interface {
	// TID returns the simulated thread id.
	TID() int

	// Store issues a store of size bytes (1, 2, 4 or 8). atomic marks a
	// language-level atomic store; release additionally gives it release
	// semantics (publishes the thread's happens-before clock).
	Store(a Addr, size int, v uint64, atomic, release bool)

	// Load issues a load. acquire joins the happens-before clock published
	// by the release store it reads from.
	Load(a Addr, size int, atomic, acquire bool) uint64

	// RMW executes a locked read-modify-write: it has mfence semantics
	// (drains the store buffer and flush buffer) and applies f atomically.
	// f returns the new value and whether to write it (false = CAS failure).
	RMW(a Addr, size int, f func(old uint64) (new uint64, write bool)) (old uint64, wrote bool)

	// CLFlush / CLWB issue cache-line flush operations on the line of a.
	CLFlush(a Addr)
	CLWB(a Addr)

	// SFence / MFence issue store and full memory fences.
	SFence()
	MFence()

	// Yield introduces a scheduling point without a memory operation.
	Yield()

	// SetChecksumGuard marks subsequent loads as feeding a checksum
	// validation procedure. Races observed by guarded loads are classified
	// as benign (paper §7.5): even if the program reads partially-persistent
	// data, the checksum check rejects it before use.
	SetChecksumGuard(on bool)
}

// Spawner is the optional Ops capability for mid-execution thread creation.
// Engines that control scheduling implement it so a workload thread can start
// a sibling simulated thread (Thread.Go); Ops implementations without it
// simply cannot run spawning workloads.
type Spawner interface {
	// Spawn registers fn as a new simulated thread, runnable from the next
	// scheduling point.
	Spawn(fn func(*Thread))
}

// Thread is the handle a workload function receives. It wraps Ops with
// sized convenience methods and composite memset/memcpy operations
// (decomposed into field-granular non-atomic stores, modelling the libc
// calls compilers emit — the paper's Table 2 store optimizations).
type Thread struct {
	ops  Ops
	heap *Heap
}

// NewThread wraps an Ops implementation; called by the engine.
func NewThread(ops Ops, heap *Heap) *Thread { return &Thread{ops: ops, heap: heap} }

// ID returns the simulated thread id.
func (t *Thread) ID() int { return t.ops.TID() }

// Heap returns the program heap (for runtime allocation and labelling).
func (t *Thread) Heap() *Heap { return t.heap }

// Store8/16/32/64 issue non-atomic stores — the store kind persistency races
// are defined over (Definition 5.1 condition 1).
func (t *Thread) Store8(a Addr, v uint8)   { t.ops.Store(a, 1, uint64(v), false, false) }
func (t *Thread) Store16(a Addr, v uint16) { t.ops.Store(a, 2, uint64(v), false, false) }
func (t *Thread) Store32(a Addr, v uint32) { t.ops.Store(a, 4, uint64(v), false, false) }
func (t *Thread) Store64(a Addr, v uint64) { t.ops.Store(a, 8, v, false, false) }

// Store issues a non-atomic store of an explicit size.
func (t *Thread) Store(a Addr, size int, v uint64) { t.ops.Store(a, size, v, false, false) }

// StoreRelease issues an atomic store with release ordering.
func (t *Thread) StoreRelease(a Addr, size int, v uint64) { t.ops.Store(a, size, v, true, true) }

// StoreRelease64 issues an 8-byte atomic release store.
func (t *Thread) StoreRelease64(a Addr, v uint64) { t.ops.Store(a, 8, v, true, true) }

// StoreAtomic issues an atomic store with relaxed ordering (still immune to
// store tearing, but does not publish happens-before).
func (t *Thread) StoreAtomic(a Addr, size int, v uint64) { t.ops.Store(a, size, v, true, false) }

// Load8/16/32/64 issue non-atomic loads.
func (t *Thread) Load8(a Addr) uint8   { return uint8(t.ops.Load(a, 1, false, false)) }
func (t *Thread) Load16(a Addr) uint16 { return uint16(t.ops.Load(a, 2, false, false)) }
func (t *Thread) Load32(a Addr) uint32 { return uint32(t.ops.Load(a, 4, false, false)) }
func (t *Thread) Load64(a Addr) uint64 { return t.ops.Load(a, 8, false, false) }

// Load issues a non-atomic load of an explicit size.
func (t *Thread) Load(a Addr, size int) uint64 { return t.ops.Load(a, size, false, false) }

// LoadAcquire issues an atomic load with acquire ordering.
func (t *Thread) LoadAcquire(a Addr, size int) uint64 { return t.ops.Load(a, size, true, true) }

// LoadAcquire64 issues an 8-byte acquire load.
func (t *Thread) LoadAcquire64(a Addr) uint64 { return t.ops.Load(a, 8, true, true) }

// CAS performs a locked compare-and-swap (mfence semantics) and reports
// whether the swap happened.
func (t *Thread) CAS(a Addr, size int, old, new uint64) bool {
	_, wrote := t.ops.RMW(a, size, func(cur uint64) (uint64, bool) {
		if cur == old {
			return new, true
		}
		return cur, false
	})
	return wrote
}

// CAS64 is CAS for 8-byte values.
func (t *Thread) CAS64(a Addr, old, new uint64) bool { return t.CAS(a, 8, old, new) }

// FetchAdd atomically adds delta and returns the previous value.
func (t *Thread) FetchAdd(a Addr, size int, delta uint64) uint64 {
	old, _ := t.ops.RMW(a, size, func(cur uint64) (uint64, bool) { return cur + delta, true })
	return old
}

// CLFlush flushes the cache line of a (clflush: store-buffer ordered).
func (t *Thread) CLFlush(a Addr) { t.ops.CLFlush(a) }

// CLWB writes back the cache line of a (clwb: requires a later fence to
// guarantee persistence).
func (t *Thread) CLWB(a Addr) { t.ops.CLWB(a) }

// CLFlushOpt issues the optimized flush. Per the Px86sim semantics the
// paper adopts, clflushopt behaves identically to clwb ("from a semantic
// perspective, the clwb instruction is identical to clflushopt... thus we
// treat them identically", §2), so it shares the flush-buffer path.
func (t *Thread) CLFlushOpt(a Addr) { t.ops.CLWB(a) }

// SFence issues a store fence; MFence a full fence.
func (t *Thread) SFence() { t.ops.SFence() }
func (t *Thread) MFence() { t.ops.MFence() }

// FlushRange issues clflush for every cache line covering [a, a+size).
func (t *Thread) FlushRange(a Addr, size int) {
	for line := LineOf(a); line <= LineOf(a+Addr(size-1)); line++ {
		t.ops.CLFlush(Addr(line) * CacheLineSize)
	}
}

// WritebackRange issues clwb for every cache line covering [a, a+size).
func (t *Thread) WritebackRange(a Addr, size int) {
	for line := LineOf(a); line <= LineOf(a+Addr(size-1)); line++ {
		t.ops.CLWB(Addr(line) * CacheLineSize)
	}
}

// Persist is the common libpmem idiom: clwb the range, then sfence.
func (t *Thread) Persist(a Addr, size int) {
	t.WritebackRange(a, size)
	t.ops.SFence()
}

// Memset writes b to every byte of [a, a+size) as a sequence of non-atomic
// field-granular stores. This models the libc memset compilers substitute
// for runs of zero stores (Table 2a), which guarantees no 64-bit atomicity.
func (t *Thread) Memset(a Addr, size int, b byte) {
	pattern := uint64(0)
	for i := 0; i < 8; i++ {
		pattern = pattern<<8 | uint64(b)
	}
	for _, f := range t.heap.FieldsIn(a, size) {
		t.ops.Store(f.Addr, f.Size, pattern&sizeMask(f.Size), false, false)
	}
}

// Memcpy copies size bytes from src to dst as a sequence of non-atomic
// field-granular loads and stores, modelling compiler-inserted memcpy /
// memmove calls. The source and destination must have compatible field
// decompositions.
func (t *Thread) Memcpy(dst, src Addr, size int) {
	df := t.heap.FieldsIn(dst, size)
	sf := t.heap.FieldsIn(src, size)
	if len(df) != len(sf) {
		panic("pmm: Memcpy between incompatible layouts")
	}
	for i := range df {
		if df[i].Size != sf[i].Size {
			panic("pmm: Memcpy field size mismatch")
		}
		v := t.ops.Load(sf[i].Addr, sf[i].Size, false, false)
		t.ops.Store(df[i].Addr, df[i].Size, v, false, false)
	}
}

// Yield introduces a pure scheduling point.
func (t *Thread) Yield() { t.ops.Yield() }

// Go starts fn as a new simulated thread under the engine's controlled
// scheduler (pthread_create in the paper's workloads). The new thread is
// runnable from the next scheduling point; it must finish before the
// execution ends. Panics if the Ops implementation does not support
// mid-execution spawning.
func (t *Thread) Go(fn func(*Thread)) {
	s, ok := t.ops.(Spawner)
	if !ok {
		panic("pmm: this Ops implementation does not support Thread.Go")
	}
	s.Spawn(fn)
}

// ChecksumGuard runs f with subsequent loads marked as checksum-validation
// reads; races they observe are recorded as benign (§7.5).
func (t *Thread) ChecksumGuard(f func()) {
	t.ops.SetChecksumGuard(true)
	defer t.ops.SetChecksumGuard(false)
	f()
}

func sizeMask(size int) uint64 {
	if size >= 8 {
		return ^uint64(0)
	}
	return (uint64(1) << (8 * size)) - 1
}

// Program describes one benchmark: how to build its persistent heap, the
// pre-crash worker threads, and the post-crash recovery procedure whose
// loads are checked for persistency races.
type Program struct {
	// Name identifies the benchmark in reports.
	Name string

	// Setup allocates the persistent heap and records fully-persisted
	// initial values. It runs before the pre-crash execution and does not
	// participate in race detection.
	Setup func(h *Heap)

	// Workers are the pre-crash threads. The engine interleaves them under
	// its controlled scheduler and injects the crash somewhere in their
	// execution.
	Workers []func(t *Thread)

	// PostCrash is the recovery procedure run against the persisted image.
	// Its loads are the race-observing loads of Definition 5.1.
	PostCrash func(t *Thread)

	// PostCrashWorkers, when non-empty, replaces PostCrash with a
	// multithreaded recovery (several recovery threads interleaved under
	// the controlled scheduler).
	PostCrashWorkers []func(t *Thread)
}

// RecoveryWorkers returns the recovery thread functions: PostCrashWorkers
// if set, else the single PostCrash (nil if neither).
func (p Program) RecoveryWorkers() []func(t *Thread) {
	if len(p.PostCrashWorkers) > 0 {
		return p.PostCrashWorkers
	}
	if p.PostCrash != nil {
		return []func(t *Thread){p.PostCrash}
	}
	return nil
}
