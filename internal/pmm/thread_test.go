package pmm

import (
	"fmt"
	"testing"
)

// mockOps records every operation the Thread wrapper issues.
type mockOps struct {
	log  []string
	mem  map[Addr]uint64
	tid  int
	gard bool
}

func newMockOps() *mockOps { return &mockOps{mem: map[Addr]uint64{}} }

func (m *mockOps) TID() int { return m.tid }
func (m *mockOps) Store(a Addr, size int, v uint64, atomic, release bool) {
	m.log = append(m.log, fmt.Sprintf("store(%d,%d,%#x,a=%v,r=%v)", a, size, v, atomic, release))
	m.mem[a] = v
}
func (m *mockOps) Load(a Addr, size int, atomic, acquire bool) uint64 {
	m.log = append(m.log, fmt.Sprintf("load(%d,%d,a=%v,q=%v)", a, size, atomic, acquire))
	return m.mem[a]
}
func (m *mockOps) RMW(a Addr, size int, f func(uint64) (uint64, bool)) (uint64, bool) {
	old := m.mem[a]
	nv, w := f(old)
	if w {
		m.mem[a] = nv
	}
	m.log = append(m.log, fmt.Sprintf("rmw(%d,%d,wrote=%v)", a, size, w))
	return old, w
}
func (m *mockOps) CLFlush(a Addr) { m.log = append(m.log, fmt.Sprintf("clflush(%d)", a)) }
func (m *mockOps) CLWB(a Addr)    { m.log = append(m.log, fmt.Sprintf("clwb(%d)", a)) }
func (m *mockOps) SFence()        { m.log = append(m.log, "sfence") }
func (m *mockOps) MFence()        { m.log = append(m.log, "mfence") }
func (m *mockOps) Yield()         { m.log = append(m.log, "yield") }
func (m *mockOps) SetChecksumGuard(on bool) {
	m.gard = on
	m.log = append(m.log, fmt.Sprintf("guard(%v)", on))
}

var _ Ops = (*mockOps)(nil)

func newTestThread() (*Thread, *mockOps, *Heap) {
	h := NewHeap()
	ops := newMockOps()
	return NewThread(ops, h), ops, h
}

func TestSizedStoresAndLoads(t *testing.T) {
	th, ops, _ := newTestThread()
	th.Store8(8, 0x11)
	th.Store16(16, 0x2222)
	th.Store32(32, 0x33333333)
	th.Store64(64, 0x4444444444444444)
	want := []string{
		"store(8,1,0x11,a=false,r=false)",
		"store(16,2,0x2222,a=false,r=false)",
		"store(32,4,0x33333333,a=false,r=false)",
		"store(64,8,0x4444444444444444,a=false,r=false)",
	}
	for i, w := range want {
		if ops.log[i] != w {
			t.Errorf("op %d = %q, want %q", i, ops.log[i], w)
		}
	}
	if th.Load8(8) != 0x11 || th.Load16(16) != 0x2222 ||
		th.Load32(32) != 0x33333333 || th.Load64(64) != 0x4444444444444444 {
		t.Error("sized loads returned wrong values")
	}
}

func TestAtomicVariants(t *testing.T) {
	th, ops, _ := newTestThread()
	th.StoreRelease64(8, 1)
	th.StoreRelease(16, 4, 2)
	th.StoreAtomic(24, 2, 3)
	th.LoadAcquire64(8)
	th.LoadAcquire(16, 4)
	want := []string{
		"store(8,8,0x1,a=true,r=true)",
		"store(16,4,0x2,a=true,r=true)",
		"store(24,2,0x3,a=true,r=false)",
		"load(8,8,a=true,q=true)",
		"load(16,4,a=true,q=true)",
	}
	for i, w := range want {
		if ops.log[i] != w {
			t.Errorf("op %d = %q, want %q", i, ops.log[i], w)
		}
	}
}

func TestCASAndFetchAdd(t *testing.T) {
	th, ops, _ := newTestThread()
	ops.mem[8] = 5
	if th.CAS64(8, 4, 9) {
		t.Error("CAS with wrong expected value succeeded")
	}
	if !th.CAS64(8, 5, 9) {
		t.Error("CAS with right expected value failed")
	}
	if ops.mem[8] != 9 {
		t.Errorf("mem after CAS = %d", ops.mem[8])
	}
	if old := th.FetchAdd(8, 8, 3); old != 9 {
		t.Errorf("FetchAdd old = %d, want 9", old)
	}
	if ops.mem[8] != 12 {
		t.Errorf("mem after FetchAdd = %d", ops.mem[8])
	}
}

func TestFlushHelpers(t *testing.T) {
	th, ops, _ := newTestThread()
	// Range spanning two cache lines → two clflush ops.
	th.FlushRange(60, 10)
	if len(ops.log) != 2 || ops.log[0] != "clflush(0)" || ops.log[1] != "clflush(64)" {
		t.Errorf("FlushRange ops = %v", ops.log)
	}
	ops.log = nil
	th.WritebackRange(0, 64) // exactly one line
	if len(ops.log) != 1 || ops.log[0] != "clwb(0)" {
		t.Errorf("WritebackRange ops = %v", ops.log)
	}
	ops.log = nil
	th.Persist(0, 8)
	if len(ops.log) != 2 || ops.log[0] != "clwb(0)" || ops.log[1] != "sfence" {
		t.Errorf("Persist ops = %v", ops.log)
	}
	ops.log = nil
	th.CLFlushOpt(128) // clflushopt shares the clwb path
	if len(ops.log) != 1 || ops.log[0] != "clwb(128)" {
		t.Errorf("CLFlushOpt ops = %v", ops.log)
	}
}

func TestFencesAndYield(t *testing.T) {
	th, ops, _ := newTestThread()
	th.SFence()
	th.MFence()
	th.Yield()
	want := []string{"sfence", "mfence", "yield"}
	for i, w := range want {
		if ops.log[i] != w {
			t.Errorf("op %d = %q, want %q", i, ops.log[i], w)
		}
	}
	if th.ID() != 0 {
		t.Errorf("ID = %d", th.ID())
	}
	if th.Heap() == nil {
		t.Error("Heap() nil")
	}
}

func TestMemsetDecomposesByFields(t *testing.T) {
	th, ops, h := newTestThread()
	s := h.AllocStruct("obj", Layout{{Name: "a", Size: 8}, {Name: "b", Size: 4}, {Name: "c", Size: 2}})
	th.Memset(s.Base(), s.Size(), 0xAB)
	// One non-atomic store per field, with the repeated-byte pattern
	// truncated to each field size.
	want := []string{
		fmt.Sprintf("store(%d,8,0xabababababababab,a=false,r=false)", s.F("a")),
		fmt.Sprintf("store(%d,4,0xabababab,a=false,r=false)", s.F("b")),
		fmt.Sprintf("store(%d,2,0xabab,a=false,r=false)", s.F("c")),
	}
	if len(ops.log) < len(want) {
		t.Fatalf("memset ops = %v", ops.log)
	}
	for i, w := range want {
		if ops.log[i] != w {
			t.Errorf("op %d = %q, want %q", i, ops.log[i], w)
		}
	}
}

func TestMemcpyCopiesFieldwise(t *testing.T) {
	th, ops, h := newTestThread()
	src := h.AllocStruct("src", Layout{{Name: "a", Size: 8}, {Name: "b", Size: 8}})
	dst := h.AllocStruct("dst", Layout{{Name: "a", Size: 8}, {Name: "b", Size: 8}})
	ops.mem[src.F("a")] = 0x11
	ops.mem[src.F("b")] = 0x22
	th.Memcpy(dst.Base(), src.Base(), 16)
	if ops.mem[dst.F("a")] != 0x11 || ops.mem[dst.F("b")] != 0x22 {
		t.Errorf("memcpy did not copy values: %v", ops.mem)
	}
}

func TestMemcpyIncompatibleLayoutsPanics(t *testing.T) {
	th, _, h := newTestThread()
	src := h.AllocStruct("src", Layout{{Name: "a", Size: 8}})
	dst := h.AllocStruct("dst", Layout{{Name: "a", Size: 4}, {Name: "b", Size: 4}})
	defer func() {
		if recover() == nil {
			t.Fatal("incompatible memcpy did not panic")
		}
	}()
	th.Memcpy(dst.Base(), src.Base(), 8)
}

func TestChecksumGuardTogglesAndRestores(t *testing.T) {
	th, ops, _ := newTestThread()
	th.ChecksumGuard(func() {
		if !ops.gard {
			t.Error("guard not set inside block")
		}
		th.Load64(8)
	})
	if ops.gard {
		t.Error("guard not restored after block")
	}
	// Guard restored even when the body panics.
	func() {
		defer func() { recover() }()
		th.ChecksumGuard(func() { panic("boom") })
	}()
	if ops.gard {
		t.Error("guard not restored after panic")
	}
}

func TestRecoveryWorkers(t *testing.T) {
	f := func(*Thread) {}
	if got := (Program{}).RecoveryWorkers(); got != nil {
		t.Error("empty program has recovery workers")
	}
	if got := (Program{PostCrash: f}).RecoveryWorkers(); len(got) != 1 {
		t.Error("PostCrash not wrapped")
	}
	if got := (Program{PostCrash: f, PostCrashWorkers: []func(*Thread){f, f}}).RecoveryWorkers(); len(got) != 2 {
		t.Error("PostCrashWorkers not preferred")
	}
}
