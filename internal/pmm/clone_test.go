package pmm

import "testing"

// TestCloneIndependence: a cloned heap and its original may be mutated
// independently — the checkpoint layer's snapshots rely on it (a captured
// heap must not change when the probe scenario keeps allocating).
func TestCloneIndependence(t *testing.T) {
	h := NewHeap()
	s := h.AllocStruct("obj", Layout{{Name: "a", Size: 8}, {Name: "b", Size: 8}})
	h.Init(s.F("a"), 8, 11)

	c := h.Clone()
	// Mutate the clone: new allocations and new init writes.
	c.AllocStruct("extra", Layout{{Name: "x", Size: 8}})
	c.AllocArray("arr", Layout{{Name: "y", Size: 8}}, 3)
	c.Init(s.F("b"), 8, 22)

	if got, want := h.AllocCount(), 1; got != want {
		t.Errorf("original AllocCount = %d after mutating clone, want %d", got, want)
	}
	if got, want := len(h.InitWrites()), 1; got != want {
		t.Errorf("original InitWrites = %d after mutating clone, want %d", got, want)
	}
	if h.NextFree() == c.NextFree() {
		t.Error("original NextFree tracked the clone's allocations")
	}
	if _, ok := h.StructAt(c.allocs[1].base); ok {
		t.Error("original resolves an allocation made only in the clone")
	}

	// And the other direction: mutating the original must not leak into the
	// clone.
	h.AllocRaw("raw", 64)
	h.Init(s.F("a"), 8, 99)
	if got, want := c.AllocCount(), 3; got != want {
		t.Errorf("clone AllocCount = %d after mutating original, want %d", got, want)
	}
	if got, want := len(c.InitWrites()), 2; got != want {
		t.Errorf("clone InitWrites = %d after mutating original, want %d", got, want)
	}

	// Restore grafts a snapshot's state into a live heap and must detach from
	// the source the same way.
	h2 := NewHeap()
	o2 := h2.AllocStruct("obj", Layout{{Name: "a", Size: 8}, {Name: "b", Size: 8}})
	h2.Restore(c)
	h2.AllocStruct("post", Layout{{Name: "p", Size: 8}})
	h2.Init(o2.F("b"), 8, 77) // appends to the restored init-write slice
	if got, want := c.AllocCount(), 3; got != want {
		t.Errorf("restore source AllocCount = %d after mutating target, want %d", got, want)
	}
	if got, want := len(c.InitWrites()), 2; got != want {
		t.Errorf("restore source InitWrites = %d after the target wrote, want %d", got, want)
	}
}
