// Package cliutil holds the run-configuration flags and pprof plumbing
// shared by cmd/yashme and cmd/yashme-tables, so the two CLIs define the
// workers/checkpoint/directrun/keyframe/dedup/shard/json/tags/profile
// surface exactly once and cannot drift.
package cliutil

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"
	"time"

	"yashme/internal/engine"
	"yashme/internal/suite"
)

// Flags is the shared flag set, populated by Register and read after
// flag.Parse.
type Flags struct {
	Workers     int
	Checkpoint  bool
	DirectRun   bool
	Keyframe    int
	Dedup       bool
	ClockIntern bool
	Timeout    time.Duration
	Shard      string
	JSON       bool
	Tags       string
	Analyses   string
	CPUProfile string
	MemProfile string
}

// Register defines the shared flags on the default flag set and returns
// the struct their values land in.
func Register() *Flags {
	f := &Flags{}
	flag.IntVar(&f.Workers, "workers", 0, "shared scenario-worker budget (0 = GOMAXPROCS, 1 = sequential; results identical)")
	flag.BoolVar(&f.Checkpoint, "checkpoint", true, "model-check: resume crash scenarios from pre-crash snapshots (results identical; =false re-simulates every prefix)")
	flag.BoolVar(&f.DirectRun, "directrun", true, "run a solo runnable thread inline without scheduler handoffs (results identical; =false pays the handshake on every op)")
	flag.IntVar(&f.Keyframe, "keyframe", 0, "full-clone interval for delta checkpoints (0 = engine default, 1 = every snapshot a full clone; results identical)")
	flag.BoolVar(&f.Dedup, "dedup", true, "model-check: reuse recovery verdicts of byte-identical crash images (results identical; =false re-simulates every point)")
	flag.BoolVar(&f.ClockIntern, "clockintern", true, "share deduplicated clock snapshots through an interned arena with an epoch fast path (results identical; =false gives every record an owned clock copy)")
	flag.DurationVar(&f.Timeout, "timeout", 0, "wall-clock bound for the whole run (0 = none); on expiry the run stops at the next scenario boundary, prints partial results and exits non-zero")
	flag.StringVar(&f.Shard, "shard", "", "run shard i/n of the suite (deterministic by benchmark name; union of shards == full run)")
	flag.BoolVar(&f.JSON, "json", false, "emit the unified suite result as JSON instead of rendered output")
	flag.StringVar(&f.Tags, "tags", "", "comma-separated workload tags to select (e.g. table3,pmdk; empty = all)")
	flag.StringVar(&f.Analyses, "analyses", "", "comma-separated analysis passes to run over the one simulation (empty = yashme; e.g. yashme,xfd — the first is primary)")
	flag.StringVar(&f.CPUProfile, "cpuprofile", "", "write a CPU profile to this file")
	flag.StringVar(&f.MemProfile, "memprofile", "", "write a heap profile to this file on exit")
	return f
}

// SuiteConfig converts the parsed flags into a suite.Config (selection,
// shard, worker budget and engine fast-path modes).
func (f *Flags) SuiteConfig() (suite.Config, error) {
	shard, count, err := suite.ParseShard(f.Shard)
	if err != nil {
		return suite.Config{}, err
	}
	cfg := suite.Config{
		Shard:      shard,
		ShardCount: count,
		Workers:    f.Workers,
		Keyframe:   f.Keyframe,
	}
	if f.Tags != "" {
		cfg.Tags = strings.Split(f.Tags, ",")
	}
	cfg.Analyses = f.AnalysisList()
	f.applyModes(&cfg.Checkpoint, &cfg.DirectRun, &cfg.Dedup, &cfg.ClockIntern)
	return cfg, nil
}

// AnalysisList parses the -analyses flag into a pass list (nil = the
// engine default, yashme alone).
func (f *Flags) AnalysisList() []string {
	if f.Analyses == "" {
		return nil
	}
	return strings.Split(f.Analyses, ",")
}

// EngineOptions applies the shared worker/fast-path flags to a single
// engine run's options (cmd/yashme's single-benchmark path).
func (f *Flags) EngineOptions(opts *engine.Options) {
	opts.Workers = f.Workers
	opts.Keyframe = f.Keyframe
	opts.Analyses = f.AnalysisList()
	f.applyModes(&opts.Checkpoint, &opts.DirectRun, &opts.Dedup, &opts.ClockIntern)
}

func (f *Flags) applyModes(ck *engine.CheckpointMode, dr *engine.DirectRunMode, dd *engine.DedupMode, ci *engine.ClockInternMode) {
	if !f.Checkpoint {
		*ck = engine.CheckpointOff
	}
	if !f.DirectRun {
		*dr = engine.DirectRunOff
	}
	if !f.Dedup {
		*dd = engine.DedupOff
	}
	if !f.ClockIntern {
		*ci = engine.ClockInternOff
	}
}

// RunContext returns the context a CLI run should execute under: cancelled
// on SIGINT/SIGTERM and, when -timeout is set, on deadline expiry. The
// engine honors it at scenario boundaries, so the run ends promptly with a
// well-formed partial result instead of dying mid-write. The returned stop
// must be deferred; it releases the signal registration (a second signal
// after cancellation kills the process the default way).
func (f *Flags) RunContext() (context.Context, context.CancelFunc) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	if f.Timeout <= 0 {
		return ctx, stop
	}
	ctx, cancel := context.WithTimeout(ctx, f.Timeout)
	return ctx, func() {
		cancel()
		stop()
	}
}

// StartProfiles starts the CPU profile and arms the heap profile per the
// flags. The returned stop function must run before exit (defer it from a
// run() that the real main delegates to); it is non-nil even when no
// profile was requested.
func (f *Flags) StartProfiles(tool string) (stop func(), err error) {
	var cpu *os.File
	if f.CPUProfile != "" {
		cpu, err = os.Create(f.CPUProfile)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpu); err != nil {
			cpu.Close()
			return nil, err
		}
	}
	return func() {
		if cpu != nil {
			pprof.StopCPUProfile()
			cpu.Close()
		}
		if f.MemProfile == "" {
			return
		}
		out, err := os.Create(f.MemProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", tool, err)
			return
		}
		defer out.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(out); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", tool, err)
		}
	}, nil
}
