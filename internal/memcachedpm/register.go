package memcachedpm

import "yashme/internal/workload"

// The paper's Memcached evaluation: part of the Table 4 random-mode sweep
// (4 races), a Table 5 row (seed 2, 4 prefix / 2 baseline), and a §7.5
// benign-race program (all crash points).
func init() {
	workload.Register(workload.Spec{
		Name:          "Memcached",
		Order:         12,
		Make:          New(4, nil),
		Table5Seed:    2,
		PaperPrefix:   4,
		PaperBaseline: 2,
		Tags:          []string{workload.TagTable4, workload.TagTable5, workload.TagBenign, workload.TagFramework},
	})
}
