// Package memcachedpm reproduces the persistent-memory port of Memcached
// (lenovo/memcached-pmem) that the paper evaluates, with the four
// persistency races Yashme reports for it (Table 4, bugs 2–5):
//
//	#2  valid    in pslab_pool_t struct (pslab.c:368)
//	#3  id       in pslab_t struct      (pslab.c:92)
//	#4  it_flags in item_chunk struct   (slabs.c:543, items.c)
//	#5  cas      in item struct         (memcached.c:4290, items.c:538)
//
// Memcached-pmem manages a pool of persistent slabs through the low-level
// libpmem API; the pool-header validity flag, slab ids, item-chunk flags
// and per-item CAS counters are all plain stores that the restart path
// reads back. Item payloads, by contrast, are verified against a checksum
// before use — races on them are benign (§7.5).
package memcachedpm

import (
	"yashme/internal/pmm"
)

// Pool geometry (downsized).
const (
	NumSlabs      = 2
	ItemsPerSlab  = 4
	chunksPerSlab = ItemsPerSlab
)

// ExpectedHarmful are the Table 4 fields for Memcached.
var ExpectedHarmful = []string{
	"item.cas",
	"item_chunk.it_flags",
	"pslab_pool_t.valid",
	"pslab_t.id",
}

// ExpectedBenign are the checksum-guarded item payload races.
var ExpectedBenign = []string{"item.checksum", "item.key", "item.value"}

// Server is a miniature memcached-pmem instance.
type Server struct {
	pool   pmm.Struct // "pslab_pool_t" {valid}
	slabs  pmm.Array  // "pslab_t" {id}
	chunks pmm.Array  // "item_chunk" {it_flags}
	items  pmm.Array  // "item" {cas, key, value, checksum}
	casSeq uint64
}

// NewServer allocates the pool layout during Setup.
func NewServer(h *pmm.Heap) *Server {
	return &Server{
		pool:   h.AllocStruct("pslab_pool_t", pmm.Layout{{Name: "valid", Size: 1}}),
		slabs:  h.AllocArray("pslab_t", pmm.Layout{{Name: "id", Size: 8}}, NumSlabs),
		chunks: h.AllocArray("item_chunk", pmm.Layout{{Name: "it_flags", Size: 1}}, NumSlabs*chunksPerSlab),
		items: h.AllocArray("item", pmm.Layout{
			{Name: "cas", Size: 8}, {Name: "key", Size: 8},
			{Name: "value", Size: 8}, {Name: "checksum", Size: 8},
		}, NumSlabs*ItemsPerSlab),
	}
}

// Startup initializes the slab pool: the pool is marked in-use (valid=0)
// and each slab gets its id — both plain stores (bugs #2/#3).
func (s *Server) Startup(t *pmm.Thread) {
	// Bug #2: plain store to the pool validity flag.
	t.Store8(s.pool.F("valid"), 0)
	t.CLFlush(s.pool.F("valid"))
	for i := 0; i < NumSlabs; i++ {
		// Bug #3: plain store to the slab id.
		t.Store64(s.slabs.At(i).F("id"), uint64(i+1))
		t.CLFlush(s.slabs.At(i).F("id"))
	}
	t.SFence()
}

func itemChecksum(key, value, cas uint64) uint64 {
	sum := uint64(0xCBF29CE484222325)
	for _, v := range [...]uint64{key, value, cas} {
		sum = (sum ^ v) * 0x100000001B3
	}
	return sum
}

// SetItem stores a key/value pair into slot idx: the chunk flags and the
// CAS counter are plain stores (bugs #4/#5); the payload is checksummed.
func (s *Server) SetItem(t *pmm.Thread, idx int, key, value uint64) {
	s.casSeq++
	cas := s.casSeq
	chunk := s.chunks.At(idx)
	item := s.items.At(idx)
	// Bug #4: plain store to the chunk flags (ITEM_LINKED etc.).
	t.Store8(chunk.F("it_flags"), 1)
	t.Store64(item.F("key"), key)
	t.Store64(item.F("value"), value)
	// Bug #5: plain store to the item CAS counter.
	t.Store64(item.F("cas"), cas)
	t.Store64(item.F("checksum"), itemChecksum(key, value, cas))
	t.Persist(chunk.Base(), chunk.Size())
	t.Persist(item.Base(), item.Size())
}

// Shutdown marks the pool cleanly closed (valid=1), again a plain store.
func (s *Server) Shutdown(t *pmm.Thread) {
	t.Store8(s.pool.F("valid"), 1)
	t.CLFlush(s.pool.F("valid"))
	t.SFence()
}

// RecoveredItem is what the restart path reports per slot.
type RecoveredItem struct {
	Key, Value uint64
	Linked     bool
	ChecksumOK bool
}

// Restart is the post-crash path: it reads the pool validity flag, slab
// ids, chunk flags and CAS counters directly (the four harmful races) and
// validates item payloads under the checksum guard (benign races).
func (s *Server) Restart(t *pmm.Thread) (valid bool, out []RecoveredItem) {
	// Bug #2's observing load.
	valid = t.Load8(s.pool.F("valid")) == 1
	for i := 0; i < NumSlabs; i++ {
		// Bug #3's observing load.
		_ = t.Load64(s.slabs.At(i).F("id"))
	}
	for i := 0; i < NumSlabs*ItemsPerSlab; i++ {
		chunk, item := s.chunks.At(i), s.items.At(i)
		// Bug #4's observing load.
		linked := t.Load8(chunk.F("it_flags")) == 1
		if !linked {
			out = append(out, RecoveredItem{})
			continue
		}
		// Bug #5's observing load.
		cas := t.Load64(item.F("cas"))
		var key, value, stored uint64
		t.ChecksumGuard(func() {
			key = t.Load64(item.F("key"))
			value = t.Load64(item.F("value"))
			stored = t.Load64(item.F("checksum"))
		})
		ok := stored == itemChecksum(key, value, cas)
		ri := RecoveredItem{Linked: true, ChecksumOK: ok}
		if ok {
			ri.Key, ri.Value = key, value
		}
		out = append(out, ri)
	}
	return valid, out
}

// Stats captures what the restart path observed.
type Stats struct {
	Valid     bool
	Recovered int
	BadSums   int
}

// ValueFor is the deterministic value the driver stores for a key.
func ValueFor(key uint64) uint64 { return key<<4 | 0x9 }

// New returns the benchmark driver: the server starts the slab pool, two
// client-feed threads set items, the server shuts down; the restart path
// then recovers the pool.
func New(numItems int, stats *Stats) func() pmm.Program {
	if numItems > NumSlabs*ItemsPerSlab {
		numItems = NumSlabs * ItemsPerSlab
	}
	n := numItems
	return func() pmm.Program {
		var srv *Server
		return pmm.Program{
			Name:  "Memcached",
			Setup: func(h *pmm.Heap) { srv = NewServer(h) },
			Workers: []func(*pmm.Thread){func(t *pmm.Thread) {
				srv.Startup(t)
				for i := 0; i < n; i++ {
					srv.SetItem(t, i, uint64(i+1), ValueFor(uint64(i+1)))
				}
				srv.Shutdown(t)
			}},
			PostCrash: func(t *pmm.Thread) {
				valid, items := srv.Restart(t)
				if stats == nil {
					return
				}
				stats.Valid = valid
				for _, it := range items {
					if !it.Linked {
						continue
					}
					if it.ChecksumOK {
						stats.Recovered++
					} else {
						stats.BadSums++
					}
				}
			},
		}
	}
}

// command is one client request in the volatile request queue.
type command struct {
	op   int // 0 = set, 1 = quit
	slot int
	key  uint64
	val  uint64
}

// NewClientServer returns the paper's two-process shape (§7.1: "we
// developed our own client from Memcached's test cases... this client
// modifies the cache server using insertion and lookup operations"): a
// client thread enqueues SET commands into a volatile request queue and a
// server thread drains it, applying the persistent slab-pool protocol. The
// queue itself is DRAM state (a socket stand-in), so only the server's PM
// writes are race-relevant — the same four Table 4 bugs.
func NewClientServer(numItems int, stats *Stats) func() pmm.Program {
	if numItems > NumSlabs*ItemsPerSlab {
		numItems = NumSlabs * ItemsPerSlab
	}
	n := numItems
	return func() pmm.Program {
		var srv *Server
		var queue []command
		var mu = make(chan struct{}, 1) // binary semaphore over the queue
		mu <- struct{}{}
		push := func(c command) {
			<-mu
			queue = append(queue, c)
			mu <- struct{}{}
		}
		pop := func() (command, bool) {
			<-mu
			defer func() { mu <- struct{}{} }()
			if len(queue) == 0 {
				return command{}, false
			}
			c := queue[0]
			queue = queue[1:]
			return c, true
		}
		return pmm.Program{
			Name:  "Memcached",
			Setup: func(h *pmm.Heap) { srv = NewServer(h) },
			Workers: []func(*pmm.Thread){
				// Server: start the pool, serve until QUIT, shut down.
				func(t *pmm.Thread) {
					srv.Startup(t)
					for {
						c, ok := pop()
						if !ok {
							t.Yield() // wait for the client
							continue
						}
						if c.op == 1 {
							break
						}
						srv.SetItem(t, c.slot, c.key, c.val)
					}
					srv.Shutdown(t)
				},
				// Client: issue SETs, then QUIT.
				func(t *pmm.Thread) {
					for i := 0; i < n; i++ {
						push(command{op: 0, slot: i, key: uint64(i + 1), val: ValueFor(uint64(i + 1))})
						t.Yield()
					}
					push(command{op: 1})
				},
			},
			PostCrash: func(t *pmm.Thread) {
				valid, items := srv.Restart(t)
				if stats == nil {
					return
				}
				stats.Valid = valid
				for _, it := range items {
					if !it.Linked {
						continue
					}
					if it.ChecksumOK {
						stats.Recovered++
					} else {
						stats.BadSums++
					}
				}
			},
		}
	}
}

// DeleteItem unlinks a slot: the chunk flags are cleared with the same
// plain store that set them (still Table 4 bug #4's field) and the slot is
// persisted.
func (s *Server) DeleteItem(t *pmm.Thread, idx int) {
	chunk := s.chunks.At(idx)
	t.Store8(chunk.F("it_flags"), 0)
	t.Persist(chunk.Base(), chunk.Size())
}

// CASSet is memcached's compare-and-set command: the item is rewritten only
// if the caller's CAS token matches the item's current one; the token read
// is one more observing site for bug #5.
func (s *Server) CASSet(t *pmm.Thread, idx int, expectedCAS, key, value uint64) bool {
	item := s.items.At(idx)
	if t.Load64(item.F("cas")) != expectedCAS {
		return false
	}
	s.SetItem(t, idx, key, value)
	return true
}
