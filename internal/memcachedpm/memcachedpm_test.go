package memcachedpm

import (
	"sort"
	"testing"

	"yashme/internal/engine"
	"yashme/internal/pmm"
	"yashme/internal/progs/progtest"
)

func TestRacesMatchPaperTable4(t *testing.T) {
	progtest.AssertRaces(t, New(4, nil), ExpectedHarmful)
}

func TestBenignItemPayloadRaces(t *testing.T) {
	res := engine.Run(New(4, nil), engine.Options{Mode: engine.ModelCheck, Prefix: true})
	var got []string
	for _, r := range res.Report.Benign() {
		got = append(got, r.Field)
	}
	sort.Strings(got)
	if len(got) != len(ExpectedBenign) {
		t.Fatalf("benign = %v, want %v", got, ExpectedBenign)
	}
	for i := range got {
		if got[i] != ExpectedBenign[i] {
			t.Fatalf("benign = %v, want %v", got, ExpectedBenign)
		}
	}
}

func TestFunctionalFullRun(t *testing.T) {
	var stats Stats
	progtest.RunFull(t, New(6, &stats))
	if !stats.Valid {
		t.Fatal("pool invalid after clean shutdown")
	}
	if stats.Recovered != 6 || stats.BadSums != 0 {
		t.Fatalf("recovered %d items with %d bad checksums, want 6/0", stats.Recovered, stats.BadSums)
	}
}

func TestItemCountClamped(t *testing.T) {
	var stats Stats
	progtest.RunFull(t, New(100, &stats)) // clamped to pool capacity
	if stats.Recovered != NumSlabs*ItemsPerSlab {
		t.Fatalf("recovered %d, want %d", stats.Recovered, NumSlabs*ItemsPerSlab)
	}
}

// Checksums must reject torn payloads instead of serving them: with torn
// values enabled, recovery may see bad sums but never a wrong value.
func TestChecksumRejectsTornPayloads(t *testing.T) {
	var stats Stats
	// Workers: 1 — the program writes the shared stats.
	res := engine.Run(New(4, &stats), engine.Options{
		Mode: engine.ModelCheck, Prefix: true, TornValues: true,
		PersistPolicies: []engine.PersistPolicy{engine.PersistLatest},
		Workers:         1,
	})
	_ = res
	// Every recovered (checksum-OK) item must carry a consistent pair.
	// stats.Recovered counts only checksum-valid items; the driver never
	// reports Wrong because values are validated before use.
	if stats.Recovered == 0 {
		t.Fatal("no scenario recovered any item")
	}
}

func TestPrefixBeatsBaselineOnSingleExecution(t *testing.T) {
	// Table 5 row: Memcached prefix=4, baseline=2.
	best := 0
	for seed := int64(1); seed <= 8; seed++ {
		p, b := progtest.BaselineFindsFewer(t, New(4, nil), seed)
		if d := p - b; d > best {
			best = d
		}
	}
	if best < 1 {
		t.Fatal("no seed exposed prefix-only races on Memcached")
	}
}

// The client/server driver finds the same Table 4 races as the sequential
// one: the request queue is DRAM, only the server's PM protocol matters.
func TestClientServerRaces(t *testing.T) {
	progtest.AssertRaces(t, NewClientServer(4, nil), ExpectedHarmful)
}

func TestClientServerFunctional(t *testing.T) {
	var stats Stats
	progtest.RunFull(t, NewClientServer(5, &stats))
	if !stats.Valid || stats.Recovered != 5 || stats.BadSums != 0 {
		t.Fatalf("client/server full run: %+v", stats)
	}
}

// The server must not livelock when the scheduler favours it while the
// queue is empty: Yield keeps it schedulable and the client eventually
// runs.
func TestClientServerUnderRandomSchedules(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		var stats Stats
		engine.RunOne(NewClientServer(4, &stats), engine.Options{Prefix: true, Mode: engine.RandomMode},
			0, engine.PersistLatest, seed)
		if stats.Recovered != 4 {
			t.Fatalf("seed %d: recovered %d of 4", seed, stats.Recovered)
		}
	}
}

func TestDeleteItemUnlinks(t *testing.T) {
	var stats Stats
	mk := func() pmm.Program {
		var srv *Server
		return pmm.Program{
			Name:  "mc-del",
			Setup: func(h *pmm.Heap) { srv = NewServer(h) },
			Workers: []func(*pmm.Thread){func(t *pmm.Thread) {
				srv.Startup(t)
				srv.SetItem(t, 0, 1, ValueFor(1))
				srv.SetItem(t, 1, 2, ValueFor(2))
				srv.DeleteItem(t, 0)
				srv.Shutdown(t)
			}},
			PostCrash: func(t *pmm.Thread) {
				valid, items := srv.Restart(t)
				stats.Valid = valid
				for _, it := range items {
					if it.Linked && it.ChecksumOK {
						stats.Recovered++
					}
				}
			},
		}
	}
	progtest.RunFull(t, mk)
	if stats.Recovered != 1 {
		t.Fatalf("recovered %d items after delete, want 1", stats.Recovered)
	}
}

func TestCASSetSemantics(t *testing.T) {
	var okWrong, okRight bool
	mk := func() pmm.Program {
		var srv *Server
		return pmm.Program{
			Name:  "mc-cas",
			Setup: func(h *pmm.Heap) { srv = NewServer(h) },
			Workers: []func(*pmm.Thread){func(t *pmm.Thread) {
				srv.Startup(t)
				srv.SetItem(t, 0, 1, 10) // cas token 1
				okWrong = srv.CASSet(t, 0, 99, 1, 20)
				okRight = srv.CASSet(t, 0, 1, 1, 20) // token now 2
				srv.Shutdown(t)
			}},
		}
	}
	progtest.RunFull(t, mk)
	if okWrong {
		t.Fatal("CAS with stale token succeeded")
	}
	if !okRight {
		t.Fatal("CAS with current token failed")
	}
}

// Delete and CAS paths keep the Table 4 race inventory unchanged.
func TestDeleteAndCASKeepRaceInventory(t *testing.T) {
	mk := func() pmm.Program {
		var srv *Server
		return pmm.Program{
			Name:  "Memcached",
			Setup: func(h *pmm.Heap) { srv = NewServer(h) },
			Workers: []func(*pmm.Thread){func(t *pmm.Thread) {
				srv.Startup(t)
				srv.SetItem(t, 0, 1, ValueFor(1))
				srv.CASSet(t, 0, 1, 1, ValueFor(2))
				srv.SetItem(t, 1, 2, ValueFor(2))
				srv.DeleteItem(t, 1)
				srv.Shutdown(t)
			}},
			PostCrash: func(t *pmm.Thread) { srv.Restart(t) },
		}
	}
	progtest.AssertRaces(t, mk, ExpectedHarmful)
}
