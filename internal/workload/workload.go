// Package workload is the benchmark registry: every reproduced program
// (the RECIPE indexes, CCEH, FAST_FAIR, the PMDK examples, Redis,
// Memcached) registers a Spec describing itself and how the paper
// evaluated it — its mode, its Table 5 seed and published counts, and the
// tags that place it in the evaluation (table3/table4/table5/benign).
//
// Specs live next to the programs they describe (each program package
// registers its own in an init function); importing
// yashme/internal/workload/all — directly, or transitively through
// internal/suite — links every built-in benchmark into the binary. The
// suite runner (internal/suite) turns the registry into runs; the tables
// package (internal/tables) only renders what the suite produced.
package workload

import (
	"fmt"
	"sort"
	"sync"

	"yashme/internal/pmm"
)

// Tags placing a benchmark in the paper's evaluation. A spec may carry
// any number of them; the suite runner derives which runs a benchmark
// gets from its tags (see internal/suite).
const (
	// TagTable3 marks the model-checked PM indexes of Table 3.
	TagTable3 = "table3"
	// TagTable4 marks the random-mode framework sweeps of Table 4.
	TagTable4 = "table4"
	// TagTable5 marks the single-execution prefix/baseline rows of Table 5.
	TagTable5 = "table5"
	// TagBenign marks the §7.5 benign checksum-race inventory programs.
	TagBenign = "benign"
	// TagWindow marks the benchmark(s) the detection-window histogram
	// (Figures 5b/6) is generated for.
	TagWindow = "window"
	// TagIndex marks the persistent-memory index structures (§7.1).
	TagIndex = "index"
	// TagPMDK marks the PMDK example programs.
	TagPMDK = "pmdk"
	// TagFramework marks the full-framework workloads (PMDK, Redis,
	// Memcached).
	TagFramework = "framework"
	// TagXFD marks the benchmarks of the Yashme-vs-XFDetector comparison
	// (§1, §8): single-pre-crash-worker model-checked indexes, where the
	// cross-failure baseline's "one given execution" semantics are
	// well-defined.
	TagXFD = "xfd"
)

// Spec describes one benchmark program and how the paper evaluated it.
type Spec struct {
	// Name is the benchmark name as it appears in the paper's tables.
	Name string
	// Order is the benchmark's position in the paper's table order; All
	// returns specs sorted by it.
	Order int
	// Make builds a fresh program instance.
	Make func() pmm.Program
	// ModelCheck selects the paper's mode for this benchmark (§7.1: model
	// checking for the PM indexes, random mode for PMDK/Redis/Memcached).
	ModelCheck bool
	// Table5Seed is the seed for the single-execution Table 5 run.
	Table5Seed int64
	// PaperPrefix/PaperBaseline are the Table 5 counts the paper reports.
	PaperPrefix, PaperBaseline int
	// BenignCrashPoints caps the model-check crash points of the §7.5
	// benign-race run (specs tagged TagBenign only; 0 = all points).
	BenignCrashPoints int
	// Tags place the benchmark in the evaluation (see the Tag constants).
	Tags []string
}

// HasTag reports whether the spec carries the tag.
func (s Spec) HasTag(tag string) bool {
	for _, t := range s.Tags {
		if t == tag {
			return true
		}
	}
	return false
}

// HasAnyTag reports whether the spec carries at least one of the tags; an
// empty tag list matches every spec.
func (s Spec) HasAnyTag(tags []string) bool {
	if len(tags) == 0 {
		return true
	}
	for _, t := range tags {
		if s.HasTag(t) {
			return true
		}
	}
	return false
}

var (
	mu    sync.Mutex
	specs = map[string]Spec{}
)

// Register adds a spec to the registry. Program packages call it from
// init; a duplicate name, an empty name or a nil Make panics — the
// registry is the single source of truth for what a name means.
func Register(s Spec) {
	if s.Name == "" {
		panic("workload: Register with empty name")
	}
	if s.Make == nil {
		panic(fmt.Sprintf("workload: Register(%q) with nil Make", s.Name))
	}
	mu.Lock()
	defer mu.Unlock()
	if _, dup := specs[s.Name]; dup {
		panic(fmt.Sprintf("workload: duplicate Register(%q)", s.Name))
	}
	specs[s.Name] = s
}

// All returns every registered spec in paper-table order (Order, then
// Name). The returned slice is the caller's to keep.
func All() []Spec {
	mu.Lock()
	defer mu.Unlock()
	out := make([]Spec, 0, len(specs))
	for _, s := range specs {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Order != out[j].Order {
			return out[i].Order < out[j].Order
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// Lookup returns the spec registered under name.
func Lookup(name string) (Spec, bool) {
	mu.Lock()
	defer mu.Unlock()
	s, ok := specs[name]
	return s, ok
}

// Tagged returns the registered specs carrying at least one of the tags,
// in paper order; no tags means all specs.
func Tagged(tags ...string) []Spec {
	all := All()
	out := all[:0]
	for _, s := range all {
		if s.HasAnyTag(tags) {
			out = append(out, s)
		}
	}
	return out
}
