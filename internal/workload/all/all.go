// Package all links every built-in benchmark into the binary: each
// program package registers its workload.Spec from an init function, so a
// blank import of this package is what makes workload.All() complete.
// internal/suite imports it, so any suite consumer gets the full registry
// for free; standalone tools (examples, cmd/seedscan) import it directly.
package all

import (
	_ "yashme/internal/memcachedpm"
	_ "yashme/internal/pmdk"
	_ "yashme/internal/progs/cceh"
	_ "yashme/internal/progs/fastfair"
	_ "yashme/internal/progs/part"
	_ "yashme/internal/progs/pbwtree"
	_ "yashme/internal/progs/pclht"
	_ "yashme/internal/progs/pmasstree"
	_ "yashme/internal/redispm"
)
