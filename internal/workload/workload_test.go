package workload_test

import (
	"testing"

	"yashme/internal/workload"

	// Link every built-in benchmark's registration.
	_ "yashme/internal/workload/all"
)

// Every benchmark the old per-table spec lists carried must be registered,
// with a buildable Make, a unique name and a stable paper order.
func TestRegistryComplete(t *testing.T) {
	want := []string{
		"CCEH", "Fast_Fair", "P-ART", "P-BwTree", "P-CLHT", "P-Masstree",
		"Btree", "Ctree", "RBtree", "hashmap-atomic", "hashmap-tx",
		"Redis", "Memcached", "PMDK",
	}
	all := workload.All()
	if len(all) != len(want) {
		names := make([]string, len(all))
		for i, s := range all {
			names[i] = s.Name
		}
		t.Fatalf("registry has %d specs, want %d: %v", len(all), len(want), names)
	}
	seen := map[string]bool{}
	for i, s := range all {
		if seen[s.Name] {
			t.Errorf("duplicate spec %q", s.Name)
		}
		seen[s.Name] = true
		if s.Make == nil {
			t.Errorf("%s: nil Make", s.Name)
		}
		if s.Name != want[i] {
			t.Errorf("paper order[%d] = %q, want %q", i, s.Name, want[i])
		}
		if p := s.Make(); p.Name == "" {
			t.Errorf("%s: Make built a nameless program", s.Name)
		}
	}
	for _, name := range want {
		if _, ok := workload.Lookup(name); !ok {
			t.Errorf("Lookup(%q) missing", name)
		}
	}
}

// The tags must partition the registry exactly as the old spec lists did:
// 6 Table 3 indexes, 3 Table 4 frameworks, 13 Table 5 rows, 3 benign
// programs, and one window benchmark.
func TestRegistryTagCounts(t *testing.T) {
	counts := map[string]int{}
	for _, s := range workload.All() {
		for _, tag := range s.Tags {
			counts[tag]++
		}
	}
	want := map[string]int{
		workload.TagTable3: 6,
		workload.TagTable4: 3,
		workload.TagTable5: 13,
		workload.TagBenign: 3,
		workload.TagWindow: 1,
		workload.TagIndex:  6,
	}
	for tag, n := range want {
		if counts[tag] != n {
			t.Errorf("tag %q on %d specs, want %d", tag, counts[tag], n)
		}
	}
	if got := len(workload.Tagged(workload.TagTable3)); got != 6 {
		t.Errorf("Tagged(table3) = %d specs, want 6", got)
	}
	if got := len(workload.Tagged()); got != len(workload.All()) {
		t.Errorf("Tagged() = %d specs, want all %d", got, len(workload.All()))
	}
}

// Table 5 metadata must carry the calibrated seeds and paper counts.
func TestTable5Metadata(t *testing.T) {
	paperTotalP, paperTotalB := 0, 0
	for _, s := range workload.Tagged(workload.TagTable5) {
		if s.Table5Seed == 0 {
			t.Errorf("%s: no Table5Seed", s.Name)
		}
		paperTotalP += s.PaperPrefix
		paperTotalB += s.PaperBaseline
	}
	if paperTotalP != 15 || paperTotalB != 3 {
		t.Errorf("paper Table 5 totals = %d vs %d, want 15 vs 3", paperTotalP, paperTotalB)
	}
}

func TestRegisterPanics(t *testing.T) {
	mustPanic := func(name string, s workload.Spec) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: Register did not panic", name)
			}
		}()
		workload.Register(s)
	}
	mustPanic("empty name", workload.Spec{})
	mustPanic("nil make", workload.Spec{Name: "x-nil-make"})
	dup, _ := workload.Lookup("CCEH")
	mustPanic("duplicate", dup)
}
