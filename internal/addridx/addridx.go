// Package addridx interns persistent-memory addresses as dense table slots.
//
// The simulated heap (internal/pmm) allocates line-aligned objects densely
// from CacheLineSize upward, so the live Addr space is a compact integer
// range: the identity map IS the interning function. Tables here exploit
// that — per-address and per-line state lives in slices indexed directly by
// the address (or line number), growing on demand to the highest address
// touched. Lookups are a bounds check plus an indexed load, and Clone is a
// single flat copy, which is what makes the detector and checkpoint layers'
// snapshot clones cheap.
//
// The dense layout relies on the heap staying small (kilobytes, per
// pmm.Heap's working sets); maxSlots guards against a corrupt address
// exploding a table.
package addridx

import (
	"fmt"

	"yashme/internal/pmm"
)

// maxSlots bounds table growth: the simulated heaps are a few kilobytes, so
// an index this large is a corrupt address, not an allocation.
const maxSlots = 1 << 24

// Table is a dense table of per-address state, indexed directly by Addr.
// The zero value is an empty table ready for use. A slot outside the grown
// range reads as T's zero value.
type Table[T any] struct {
	slots []T
}

// grow extends the table so slot i is addressable. Growth is geometric so a
// rising high-water mark costs amortized O(1) reallocations; the spare
// capacity is zeroed by make and only ever exposed through this function, so
// re-slicing into it is safe.
func growSlots[T any](slots []T, i int) []T {
	if i < 0 || i >= maxSlots {
		panic(fmt.Sprintf("addridx: slot %d out of range [0, %d)", i, maxSlots))
	}
	if i < len(slots) {
		return slots
	}
	if i < cap(slots) {
		return slots[:i+1]
	}
	newCap := 2 * cap(slots)
	if newCap < i+1 {
		newCap = i + 1
	}
	if newCap > maxSlots {
		newCap = maxSlots
	}
	n := make([]T, i+1, newCap)
	copy(n, slots)
	return n
}

// At returns the state for a, or T's zero value if never set.
func (t *Table[T]) At(a pmm.Addr) T {
	if int(a) >= len(t.slots) {
		var zero T
		return zero
	}
	return t.slots[a]
}

// Ptr returns a pointer to the slot for a, growing the table as needed. The
// pointer is invalidated by the next growth; do not retain it across Set/Ptr
// calls for other addresses.
func (t *Table[T]) Ptr(a pmm.Addr) *T {
	t.slots = growSlots(t.slots, int(a))
	return &t.slots[a]
}

// Set stores v as the state for a, growing the table as needed.
func (t *Table[T]) Set(a pmm.Addr, v T) {
	t.slots = growSlots(t.slots, int(a))
	t.slots[a] = v
}

// Peek returns a pointer to the slot for a without growing the table, or nil
// if the table has never grown that far. Unlike At it does not copy the slot
// value, so it is the read path for large T. The pointer is invalidated by
// the next growth.
func (t *Table[T]) Peek(a pmm.Addr) *T {
	if int(a) >= len(t.slots) {
		return nil
	}
	return &t.slots[a]
}

// Reserve pre-allocates capacity for addresses [0, n) so subsequent growth
// up to n reslices into zeroed spare capacity instead of reallocating.
// Callers that know the address-space bound up front (a machine seeding an
// image, a journal replay, an image rebuild) skip the geometric-growth
// churn — roughly half the bytes a grow-from-empty fill allocates.
func (t *Table[T]) Reserve(n int) {
	if n <= cap(t.slots) || n > maxSlots {
		return
	}
	s := make([]T, len(t.slots), n)
	copy(s, t.slots)
	t.slots = s
}

// Clone returns an independent flat copy of the table. Slot values are
// copied shallowly: reference-typed state must be immutable or cloned by the
// caller.
func (t *Table[T]) Clone() Table[T] {
	if len(t.slots) == 0 {
		return Table[T]{}
	}
	n := make([]T, len(t.slots))
	copy(n, t.slots)
	return Table[T]{slots: n}
}

// CloneCap is Clone with capacity for at least n slots: a caller about to
// grow the copy to a known bound (a journal replay) allocates once instead
// of cloning and then reallocating.
func (t *Table[T]) CloneCap(n int) Table[T] {
	if n < len(t.slots) {
		n = len(t.slots)
	}
	if n > maxSlots {
		n = maxSlots
	}
	if n == 0 {
		return Table[T]{}
	}
	s := make([]T, len(t.slots), n)
	copy(s, t.slots)
	return Table[T]{slots: s}
}

// Len returns one past the highest slot ever grown to.
func (t *Table[T]) Len() int { return len(t.slots) }

// Reset empties the table for reuse, keeping the backing array: every slot
// up to the full capacity is zeroed (growth re-exposes spare capacity,
// which must read as the zero value) and the length drops to zero. A
// memset over an existing array is far cheaper than the allocation a fresh
// table of the same bound would pay.
func (t *Table[T]) Reset() {
	s := t.slots[:cap(t.slots)]
	clear(s)
	t.slots = s[:0]
}

// ForEach calls f for every grown slot in ascending address order, including
// zero-valued ones; f returns false to stop early.
func (t *Table[T]) ForEach(f func(pmm.Addr, T) bool) {
	for i, v := range t.slots {
		if !f(pmm.Addr(i), v) {
			return
		}
	}
}

// LineTable is a dense table of per-cache-line state indexed by Line (which
// pmm already numbers densely: Line = Addr / CacheLineSize). The zero value
// is an empty table ready for use.
type LineTable[T any] struct {
	slots []T
}

// At returns the state for l, or T's zero value if never set.
func (t *LineTable[T]) At(l pmm.Line) T {
	if int(l) >= len(t.slots) {
		var zero T
		return zero
	}
	return t.slots[l]
}

// Ptr returns a pointer to the slot for l, growing the table as needed. The
// pointer is invalidated by the next growth.
func (t *LineTable[T]) Ptr(l pmm.Line) *T {
	t.slots = growSlots(t.slots, int(l))
	return &t.slots[l]
}

// Set stores v as the state for l, growing the table as needed.
func (t *LineTable[T]) Set(l pmm.Line, v T) {
	t.slots = growSlots(t.slots, int(l))
	t.slots[l] = v
}

// Reserve pre-allocates capacity for lines [0, n); see Table.Reserve.
func (t *LineTable[T]) Reserve(n int) {
	if n <= cap(t.slots) || n > maxSlots {
		return
	}
	s := make([]T, len(t.slots), n)
	copy(s, t.slots)
	t.slots = s
}

// Clone returns an independent flat copy; slot values are copied shallowly.
func (t *LineTable[T]) Clone() LineTable[T] {
	if len(t.slots) == 0 {
		return LineTable[T]{}
	}
	n := make([]T, len(t.slots))
	copy(n, t.slots)
	return LineTable[T]{slots: n}
}

// CloneCap is Clone with capacity for at least n lines; see Table.CloneCap.
func (t *LineTable[T]) CloneCap(n int) LineTable[T] {
	if n < len(t.slots) {
		n = len(t.slots)
	}
	if n > maxSlots {
		n = maxSlots
	}
	if n == 0 {
		return LineTable[T]{}
	}
	s := make([]T, len(t.slots), n)
	copy(s, t.slots)
	return LineTable[T]{slots: s}
}

// Len returns one past the highest slot ever grown to.
func (t *LineTable[T]) Len() int { return len(t.slots) }

// ForEach calls f for every grown slot in ascending line order, including
// zero-valued ones; f returns false to stop early.
func (t *LineTable[T]) ForEach(f func(pmm.Line, T) bool) {
	for i, v := range t.slots {
		if !f(pmm.Line(i), v) {
			return
		}
	}
}
