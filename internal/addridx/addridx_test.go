package addridx

import (
	"testing"

	"yashme/internal/pmm"
)

func TestTableZeroValueReads(t *testing.T) {
	var tab Table[int]
	if got := tab.At(0x1000); got != 0 {
		t.Fatalf("empty table At = %d, want 0", got)
	}
	if tab.Len() != 0 {
		t.Fatalf("empty table Len = %d", tab.Len())
	}
}

func TestTableSetAtPtr(t *testing.T) {
	var tab Table[int]
	tab.Set(0x40, 7)
	if got := tab.At(0x40); got != 7 {
		t.Fatalf("At after Set = %d, want 7", got)
	}
	if got := tab.At(0x39); got != 0 {
		t.Fatalf("unset slot = %d, want 0", got)
	}
	*tab.Ptr(0x48) = 9
	if got := tab.At(0x48); got != 9 {
		t.Fatalf("At after Ptr write = %d, want 9", got)
	}
	if tab.Len() != 0x49 {
		t.Fatalf("Len = %d, want %d", tab.Len(), 0x49)
	}
}

func TestTableCloneIsIndependent(t *testing.T) {
	var tab Table[int]
	tab.Set(64, 1)
	c := tab.Clone()
	c.Set(64, 2)
	c.Set(200, 3) // grows the clone only
	if got := tab.At(64); got != 1 {
		t.Fatalf("mutating clone changed original: %d", got)
	}
	if got := tab.At(200); got != 0 {
		t.Fatalf("growing clone changed original: %d", got)
	}
	tab.Set(64, 5)
	if got := c.At(64); got != 2 {
		t.Fatalf("mutating original changed clone: %d", got)
	}
}

func TestTableForEachOrder(t *testing.T) {
	var tab Table[int]
	tab.Set(10, 1)
	tab.Set(5, 2)
	var addrs []pmm.Addr
	tab.ForEach(func(a pmm.Addr, v int) bool {
		if v != 0 {
			addrs = append(addrs, a)
		}
		return true
	})
	if len(addrs) != 2 || addrs[0] != 5 || addrs[1] != 10 {
		t.Fatalf("ForEach order = %v, want [5 10]", addrs)
	}
}

func TestTableOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("corrupt slot index did not panic")
		}
	}()
	var tab Table[int]
	tab.Set(pmm.Addr(maxSlots), 1)
}

func TestLineTable(t *testing.T) {
	var tab LineTable[string]
	l := pmm.LineOf(0x1000)
	tab.Set(l, "x")
	if got := tab.At(l); got != "x" {
		t.Fatalf("At = %q", got)
	}
	if got := tab.At(l + 1); got != "" {
		t.Fatalf("unset line = %q", got)
	}
	c := tab.Clone()
	c.Set(l, "y")
	if tab.At(l) != "x" {
		t.Fatal("clone aliased original")
	}
	n := 0
	tab.ForEach(func(pmm.Line, string) bool { n++; return true })
	if n != int(l)+1 {
		t.Fatalf("ForEach visited %d slots, want %d", n, int(l)+1)
	}
}
