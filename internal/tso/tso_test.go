package tso

import (
	"testing"
	"testing/quick"

	"yashme/internal/pmm"
	"yashme/internal/vclock"
)

// recorder captures listener events for assertions.
type recorder struct {
	stores    []*CommittedStore
	clflushes []struct {
		tid  vclock.TID
		addr pmm.Addr
		seq  vclock.Seq
		cv   vclock.Stamp
	}
	clwbBuf []FBEntry
	clwbPer []struct {
		flush    FBEntry
		fenceTID vclock.TID
		fenceSeq vclock.Seq
		fenceCV  vclock.Stamp
	}
	fences []vclock.Seq
}

func (r *recorder) StoreCommitted(rec *CommittedStore) { r.stores = append(r.stores, rec) }
func (r *recorder) CLFlushCommitted(tid vclock.TID, addr pmm.Addr, seq vclock.Seq, cv vclock.Stamp) {
	r.clflushes = append(r.clflushes, struct {
		tid  vclock.TID
		addr pmm.Addr
		seq  vclock.Seq
		cv   vclock.Stamp
	}{tid, addr, seq, cv})
}
func (r *recorder) CLWBBuffered(tid vclock.TID, addr pmm.Addr, cv vclock.Stamp) {
	r.clwbBuf = append(r.clwbBuf, FBEntry{Addr: addr, CV: cv, TID: tid})
}
func (r *recorder) CLWBPersisted(flush FBEntry, fenceTID vclock.TID, fenceSeq vclock.Seq, fenceCV vclock.Stamp) {
	r.clwbPer = append(r.clwbPer, struct {
		flush    FBEntry
		fenceTID vclock.TID
		fenceSeq vclock.Seq
		fenceCV  vclock.Stamp
	}{flush, fenceTID, fenceSeq, fenceCV})
}
func (r *recorder) FenceCommitted(tid vclock.TID, seq vclock.Seq, cv vclock.Stamp) {
	r.fences = append(r.fences, seq)
}

func TestStoreBufferFIFO(t *testing.T) {
	r := &recorder{}
	m := NewMachine(r)
	m.EnqueueStore(0, 8, 8, 1, false, false)
	m.EnqueueStore(0, 16, 8, 2, false, false)
	m.EnqueueStore(0, 24, 8, 3, false, false)
	if m.SBLen(0) != 3 {
		t.Fatalf("SBLen = %d, want 3", m.SBLen(0))
	}
	m.DrainSB(0)
	if len(r.stores) != 3 {
		t.Fatalf("committed %d stores, want 3", len(r.stores))
	}
	for i, want := range []uint64{1, 2, 3} {
		if r.stores[i].Val != want {
			t.Errorf("store %d val = %d, want %d (FIFO violated)", i, r.stores[i].Val, want)
		}
		if r.stores[i].Seq != vclock.Seq(i+1) {
			t.Errorf("store %d seq = %d, want %d", i, r.stores[i].Seq, i+1)
		}
	}
}

func TestStoreBufferBypass(t *testing.T) {
	m := NewMachine(nil)
	m.SeedMemory(8, 8, 100)
	m.EnqueueStore(0, 8, 8, 200, false, false)
	// Issuing thread sees its own buffered store.
	if v, _ := m.Load(0, 8, 8, false); v != 200 {
		t.Errorf("own thread load = %d, want 200 (bypass)", v)
	}
	// Another thread still sees the old value.
	if v, _ := m.Load(1, 8, 8, false); v != 100 {
		t.Errorf("other thread load = %d, want 100", v)
	}
	m.DrainSB(0)
	if v, _ := m.Load(1, 8, 8, false); v != 200 {
		t.Errorf("after drain, other thread load = %d, want 200", v)
	}
}

func TestBypassReturnsNewestBufferedStore(t *testing.T) {
	m := NewMachine(nil)
	m.EnqueueStore(0, 8, 8, 1, false, false)
	m.EnqueueStore(0, 8, 8, 2, false, false)
	if v, _ := m.Load(0, 8, 8, false); v != 2 {
		t.Errorf("load = %d, want newest buffered store 2", v)
	}
}

func TestLoadOfUnwrittenAddressIsZero(t *testing.T) {
	m := NewMachine(nil)
	if v, rec := m.Load(0, 4096, 8, false); v != 0 || rec != nil {
		t.Errorf("unwritten load = (%d, %v), want (0, nil)", v, rec)
	}
}

func TestCLFlushCommitOrderAndClock(t *testing.T) {
	r := &recorder{}
	m := NewMachine(r)
	m.EnqueueStore(0, 8, 8, 1, false, false)
	m.EnqueueCLFlush(0, 8)
	m.DrainSB(0)
	if len(r.clflushes) != 1 {
		t.Fatalf("clflush events = %d, want 1", len(r.clflushes))
	}
	cf := r.clflushes[0]
	if cf.seq != 2 {
		t.Errorf("clflush seq = %d, want 2 (after the store)", cf.seq)
	}
	// The clflush clock must cover the earlier same-thread store.
	if !m.ClockArena().Contains(cf.cv, 0, r.stores[0].Seq) {
		t.Errorf("clflush CV %v does not cover the store (seq %d)", m.ClockArena().Materialize(cf.cv), r.stores[0].Seq)
	}
}

func TestCLWBNeedsFence(t *testing.T) {
	r := &recorder{}
	m := NewMachine(r)
	m.EnqueueStore(0, 8, 8, 1, false, false)
	m.EnqueueCLWB(0, 8)
	m.DrainSB(0)
	if len(r.clwbBuf) != 1 || len(r.clwbPer) != 0 {
		t.Fatalf("clwb buffered=%d persisted=%d, want 1/0 before fence", len(r.clwbBuf), len(r.clwbPer))
	}
	if m.FBLen(0) != 1 {
		t.Fatalf("FBLen = %d, want 1", m.FBLen(0))
	}
	m.EnqueueSFence(0)
	m.DrainSB(0)
	if len(r.clwbPer) != 1 {
		t.Fatalf("clwb persisted=%d after sfence, want 1", len(r.clwbPer))
	}
	if m.FBLen(0) != 0 {
		t.Fatalf("FBLen = %d after sfence, want 0", m.FBLen(0))
	}
	p := r.clwbPer[0]
	if !m.ClockArena().Contains(p.flush.CV, 0, r.stores[0].Seq) {
		t.Errorf("persisted clwb CV does not cover the store")
	}
	if p.fenceSeq <= r.stores[0].Seq {
		t.Errorf("fence seq %d not after store seq %d", p.fenceSeq, r.stores[0].Seq)
	}
}

func TestSFenceOnlyFlushesOwnThread(t *testing.T) {
	r := &recorder{}
	m := NewMachine(r)
	m.EnqueueCLWB(1, 8)
	m.DrainSB(1)
	m.EnqueueSFence(0)
	m.DrainSB(0)
	if len(r.clwbPer) != 0 {
		t.Fatal("thread 0's sfence persisted thread 1's clwb")
	}
	if m.FBLen(1) != 1 {
		t.Fatal("thread 1's flush buffer was disturbed")
	}
}

func TestMFenceDrainsAndPersists(t *testing.T) {
	r := &recorder{}
	m := NewMachine(r)
	m.EnqueueStore(0, 8, 8, 7, false, false)
	m.EnqueueCLWB(0, 8)
	m.MFence(0)
	if m.SBLen(0) != 0 || m.FBLen(0) != 0 {
		t.Fatal("mfence left buffered operations")
	}
	if len(r.stores) != 1 || len(r.clwbPer) != 1 || len(r.fences) != 1 {
		t.Fatalf("events after mfence: stores=%d clwbPer=%d fences=%d", len(r.stores), len(r.clwbPer), len(r.fences))
	}
}

func TestReleaseAcquirePropagatesClock(t *testing.T) {
	m := NewMachine(nil)
	// Thread 0: non-atomic store to x, release store to flag.
	m.EnqueueStore(0, 8, 8, 42, false, false)
	m.EnqueueStore(0, 16, 8, 1, true, true)
	m.DrainSB(0)
	storeSeq := vclock.Seq(1)
	// Thread 1 acquire-loads flag: its clock must now cover the store to x.
	if v, _ := m.Load(1, 16, 8, true); v != 1 {
		t.Fatalf("flag = %d", v)
	}
	if !m.ThreadCV(1).Contains(0, storeSeq) {
		t.Errorf("acquire did not propagate clock: %v", m.ThreadCV(1))
	}
}

func TestPlainLoadDoesNotAcquire(t *testing.T) {
	m := NewMachine(nil)
	m.EnqueueStore(0, 8, 8, 42, false, false)
	m.EnqueueStore(0, 16, 8, 1, true, true)
	m.DrainSB(0)
	m.Load(1, 16, 8, false) // non-acquire load
	if m.ThreadCV(1).Contains(0, 1) {
		t.Error("plain load propagated the publisher's clock")
	}
}

func TestRMWSemantics(t *testing.T) {
	r := &recorder{}
	m := NewMachine(r)
	m.SeedMemory(8, 8, 5)
	m.EnqueueStore(0, 16, 8, 9, false, false) // pending store to force a drain
	old, wrote := m.RMW(0, 8, 8, func(cur uint64) (uint64, bool) {
		return cur + 1, true
	})
	if old != 5 || !wrote {
		t.Fatalf("RMW = (%d, %v), want (5, true)", old, wrote)
	}
	if m.SBLen(0) != 0 {
		t.Error("RMW did not drain the store buffer")
	}
	if v, _ := m.Load(1, 8, 8, false); v != 6 {
		t.Errorf("post-RMW value = %d, want 6", v)
	}
	// The RMW's committed store must be atomic+release.
	last := r.stores[len(r.stores)-1]
	if !last.Atomic || !last.Release {
		t.Error("RMW store not atomic release")
	}
}

func TestRMWFailedCASDoesNotWrite(t *testing.T) {
	r := &recorder{}
	m := NewMachine(r)
	m.SeedMemory(8, 8, 5)
	old, wrote := m.RMW(0, 8, 8, func(cur uint64) (uint64, bool) {
		return 0, false
	})
	if old != 5 || wrote {
		t.Fatalf("failed CAS = (%d, %v), want (5, false)", old, wrote)
	}
	if len(r.stores) != 0 {
		t.Error("failed CAS committed a store")
	}
	if v, _ := m.Load(0, 8, 8, false); v != 5 {
		t.Errorf("value changed by failed CAS: %d", v)
	}
}

func TestTruncationBySize(t *testing.T) {
	m := NewMachine(nil)
	m.EnqueueStore(0, 8, 8, 0x1122334455667788, false, false)
	m.DrainSB(0)
	for size, want := range map[int]uint64{
		1: 0x88, 2: 0x7788, 4: 0x55667788, 8: 0x1122334455667788,
	} {
		if v, _ := m.Load(0, 8, size, false); v != want {
			t.Errorf("load size %d = %#x, want %#x", size, v, want)
		}
	}
}

func TestSeededMemoryHasNoClock(t *testing.T) {
	m := NewMachine(nil)
	m.SeedMemory(8, 8, 77)
	v, rec := m.Load(0, 8, 8, false)
	if v != 77 || rec == nil || rec.Seq != 0 {
		t.Fatalf("seeded load = (%d, %+v)", v, rec)
	}
}

func TestVolatileValueAndAddresses(t *testing.T) {
	m := NewMachine(nil)
	m.EnqueueStore(0, 8, 8, 1, false, false)
	m.EnqueueStore(0, 72, 8, 2, false, false)
	m.DrainSB(0)
	if rec, ok := m.VolatileValue(8); !ok || rec.Val != 1 {
		t.Error("VolatileValue(8) wrong")
	}
	if _, ok := m.VolatileValue(16); ok {
		t.Error("VolatileValue of unwritten address reported ok")
	}
	if got := len(m.Addresses()); got != 2 {
		t.Errorf("Addresses len = %d, want 2", got)
	}
}

// Property: sequence numbers are strictly increasing and unique across any
// interleaving of commits from multiple threads.
func TestSeqStrictlyIncreasingProperty(t *testing.T) {
	f := func(script []uint8) bool {
		r := &recorder{}
		m := NewMachine(r)
		for i, b := range script {
			tid := vclock.TID(b % 3)
			switch (b / 3) % 4 {
			case 0:
				m.EnqueueStore(tid, pmm.Addr(8*(i%10+1)), 8, uint64(i), false, false)
			case 1:
				m.EnqueueCLFlush(tid, pmm.Addr(8*(i%10+1)))
			case 2:
				m.EnqueueSFence(tid)
			case 3:
				m.EvictOne(tid)
			}
		}
		for tid := vclock.TID(0); tid < 3; tid++ {
			m.DrainSB(tid)
		}
		var seqs []vclock.Seq
		for _, s := range r.stores {
			seqs = append(seqs, s.Seq)
		}
		for _, c := range r.clflushes {
			seqs = append(seqs, c.seq)
		}
		for _, fs := range r.fences {
			seqs = append(seqs, fs)
		}
		seen := make(map[vclock.Seq]bool)
		for _, s := range seqs {
			if s == 0 || seen[s] {
				return false
			}
			seen[s] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: per-thread commit order preserves program (enqueue) order.
func TestPerThreadProgramOrderProperty(t *testing.T) {
	f := func(vals []uint8) bool {
		r := &recorder{}
		m := NewMachine(r)
		for i := range vals {
			m.EnqueueStore(0, pmm.Addr(8*(i+1)), 8, uint64(i), false, false)
		}
		// Interleave with another thread's activity.
		m.EnqueueStore(1, 4096, 8, 99, false, false)
		m.EvictOne(1)
		m.DrainSB(0)
		idx := 0
		for _, s := range r.stores {
			if s.TID != 0 {
				continue
			}
			if s.Val != uint64(idx) {
				return false
			}
			idx++
		}
		return idx == len(vals)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
