// Package tso simulates the x86-TSO storage system with Px86sim persistency
// operations (Raad et al., POPL 2020), as used by Yashme (ASPLOS '22 §2, §6).
//
// Each simulated thread has a store buffer S_τ holding stores, clflush, clwb
// and sfence operations that have not yet taken effect on the cache, and a
// flush buffer F_τ holding clwb operations that have left the store buffer
// but are not yet guaranteed persistent (they need a later fence by the same
// thread). Store buffers drain in FIFO order into a single global commit
// order; the global sequence counter σ numbers operations as they commit,
// exactly as in the paper's Figure 8. Loads bypass: a load first consults the
// issuing thread's own store buffer.
//
// The machine maintains per-thread happens-before clock vectors: committing
// an operation by thread τ raises CV_τ[τ] to the operation's σ; an atomic
// release store publishes a snapshot of CV_τ with its committed record; an
// acquire load joins the publisher's snapshot into the reader's clock.
// Because a thread's store buffer is FIFO, the clock snapshot taken when a
// clflush/clwb/sfence commits already covers every same-thread operation
// that program-order precedes it.
//
// The machine does not decide when buffers drain — the engine (the model
// checker) owns that nondeterminism and calls EvictOne / DrainSB explicitly.
package tso

import (
	"fmt"

	"yashme/internal/addridx"
	"yashme/internal/pmm"
	"yashme/internal/vclock"
)

// OpKind labels a store-buffer entry.
type OpKind int

// Store-buffer entry kinds.
const (
	OpStore OpKind = iota
	OpCLFlush
	OpCLWB
	OpSFence
)

func (k OpKind) String() string {
	switch k {
	case OpStore:
		return "store"
	case OpCLFlush:
		return "clflush"
	case OpCLWB:
		return "clwb"
	case OpSFence:
		return "sfence"
	}
	return fmt.Sprintf("OpKind(%d)", int(k))
}

// SBEntry is one operation buffered in a thread's store buffer.
type SBEntry struct {
	Kind    OpKind
	Addr    pmm.Addr // for stores: the target; for flushes: any address on the line
	Size    int
	Val     uint64
	Atomic  bool
	Release bool
}

// FBEntry is a clwb waiting in a thread's flush buffer for a fence.
type FBEntry struct {
	Addr pmm.Addr
	CV   vclock.VC // clock snapshot when the clwb left the store buffer
	TID  vclock.TID
}

// CommittedStore is the cache-visible record of a store that left a store
// buffer. The volatile memory map keeps the latest one per address.
type CommittedStore struct {
	Addr    pmm.Addr
	Size    int
	Val     uint64
	TID     vclock.TID
	Seq     vclock.Seq
	CV      vclock.VC // happens-before clock at commit (includes this store)
	Atomic  bool
	Release bool
}

// Listener receives commit events in the global commit order. The engine
// forwards them to the persistency-race detector, which implements the
// paper's Evict_SB / Evict_FB bookkeeping on top of them.
type Listener interface {
	// StoreCommitted fires when a store takes effect on the cache.
	StoreCommitted(rec *CommittedStore)
	// CLFlushCommitted fires when a clflush takes effect: the cache line of
	// addr is flushed to persistent storage at sequence number seq.
	CLFlushCommitted(tid vclock.TID, addr pmm.Addr, seq vclock.Seq, cv vclock.VC)
	// CLWBBuffered fires when a clwb leaves the store buffer and enters the
	// thread's flush buffer (not yet persistent).
	CLWBBuffered(tid vclock.TID, addr pmm.Addr, cv vclock.VC)
	// CLWBPersisted fires when a fence evicts a clwb from the flush buffer:
	// the write-back is now guaranteed persistent.
	CLWBPersisted(flush FBEntry, fenceTID vclock.TID, fenceSeq vclock.Seq, fenceCV vclock.VC)
	// FenceCommitted fires for sfence commits and mfence/RMW drains, after
	// the flush buffer has been processed.
	FenceCommitted(tid vclock.TID, seq vclock.Seq, cv vclock.VC)
}

// NopListener is a Listener that ignores every event; it is the "Jaaru only"
// configuration used to measure detector overhead (paper Table 5).
type NopListener struct{}

func (NopListener) StoreCommitted(*CommittedStore)                               {}
func (NopListener) CLFlushCommitted(vclock.TID, pmm.Addr, vclock.Seq, vclock.VC) {}
func (NopListener) CLWBBuffered(vclock.TID, pmm.Addr, vclock.VC)                 {}
func (NopListener) CLWBPersisted(FBEntry, vclock.TID, vclock.Seq, vclock.VC)     {}
func (NopListener) FenceCommitted(vclock.TID, vclock.Seq, vclock.VC)             {}

var _ Listener = NopListener{}

// MaxThreads caps the dense TID range a machine will grow to on demand. The
// simulator runs a handful of threads; a TID at or beyond this limit is a
// corrupt identifier, and indexing by it would silently allocate garbage
// state, so the machine panics instead.
const MaxThreads = 1 << 10

// Machine is one x86-TSO storage system instance. One Machine simulates one
// execution (pre-crash or post-crash); the engine creates a fresh Machine
// per execution, seeding its memory from the persisted image.
//
// Per-thread state is held in slices indexed directly by TID. This dense
// layout relies on the TID-density invariant: threads are numbered 0..n-1
// with no gaps (the engine spawns them that way and declares the count via
// SpawnThreads). A machine used without SpawnThreads grows its per-thread
// state on demand up to MaxThreads; after SpawnThreads, an out-of-range TID
// panics loudly rather than mis-indexing.
type Machine struct {
	listener Listener
	seq      vclock.Seq

	// declared is the thread count fixed by SpawnThreads, 0 when the
	// machine grows on demand.
	declared int

	sb [][]SBEntry // indexed by TID
	fb [][]FBEntry // indexed by TID
	cv []vclock.VC // indexed by TID

	// mem is the volatile cache/memory view: latest committed store per
	// address, interned by addridx (the heap's Addr space is dense).
	// Initial contents come from the persisted image. Records are immutable
	// once committed, so clones share them.
	mem addridx.Table[*CommittedStore]
}

// NewMachine returns an empty machine reporting to listener.
func NewMachine(listener Listener) *Machine {
	if listener == nil {
		listener = NopListener{}
	}
	return &Machine{listener: listener}
}

// ReserveMemory pre-sizes the memory view for addresses [0, n), so seeding
// a persisted image (ascending addresses) fills one allocation instead of
// growing geometrically.
func (m *Machine) ReserveMemory(n int) { m.mem.Reserve(n) }

// SpawnThreads declares that the execution runs threads 0..n-1 and fixes the
// machine's thread range: any later operation naming a TID outside [0, n)
// panics. Declaring the range up front documents the density invariant the
// slice-backed layout relies on and sizes the per-thread state once.
func (m *Machine) SpawnThreads(n int) {
	if n <= 0 || n > MaxThreads {
		panic(fmt.Sprintf("tso: thread count %d out of range [1, %d]", n, MaxThreads))
	}
	if n < m.declared || n < len(m.sb) {
		panic(fmt.Sprintf("tso: SpawnThreads(%d) would shrink an existing thread range of %d", n, max(m.declared, len(m.sb))))
	}
	m.growThreads(n)
	m.declared = n
}

// growThreads extends the per-thread slices to cover n threads.
func (m *Machine) growThreads(n int) {
	for len(m.sb) < n {
		m.sb = append(m.sb, nil)
		m.fb = append(m.fb, nil)
		m.cv = append(m.cv, nil)
	}
}

// checkTID validates tid against the declared (or on-demand) thread range
// and ensures its slots exist.
func (m *Machine) checkTID(tid vclock.TID) {
	if tid < 0 || int(tid) >= MaxThreads {
		panic(fmt.Sprintf("tso: thread id %d out of range [0, %d)", tid, MaxThreads))
	}
	if m.declared > 0 {
		if int(tid) >= m.declared {
			panic(fmt.Sprintf("tso: thread id %d outside the declared dense range [0, %d) — spawn threads contiguously", tid, m.declared))
		}
		return
	}
	m.growThreads(int(tid) + 1)
}

// Clone returns an independent machine with the same buffered and committed
// state, reporting subsequent events to listener (nil = NopListener).
// Committed store records are shared with the original: a CommittedStore is
// immutable once committed (its clock vector is snapshotted at commit time).
// Store buffers, flush buffers and per-thread clocks are deep-copied, so the
// two machines may run on independently.
//
// The engine's checkpoint layer deliberately does NOT snapshot machines: a
// crash discards every buffered operation by definition, and each post-crash
// machine is freshly seeded from the persisted image, so a snapshot only
// needs CurSeq (see internal/engine/checkpoint.go). Clone keeps the storage
// system snapshottable for tooling and tests regardless.
func (m *Machine) Clone(listener Listener) *Machine {
	if listener == nil {
		listener = NopListener{}
	}
	c := &Machine{
		listener: listener,
		seq:      m.seq,
		declared: m.declared,
		sb:       make([][]SBEntry, len(m.sb)),
		fb:       make([][]FBEntry, len(m.fb)),
		cv:       make([]vclock.VC, len(m.cv)),
		mem:      m.mem.Clone(), // flat: records are immutable once committed
	}
	for t, buf := range m.sb {
		if len(buf) > 0 {
			c.sb[t] = append([]SBEntry(nil), buf...)
		}
	}
	for t, buf := range m.fb {
		if len(buf) == 0 {
			continue
		}
		nb := make([]FBEntry, len(buf))
		for i, e := range buf {
			e.CV = e.CV.Clone()
			nb[i] = e
		}
		c.fb[t] = nb
	}
	for t, vc := range m.cv {
		c.cv[t] = vc.Clone()
	}
	return c
}

// SeedMemory installs an initial, already-persisted value. Seeded values
// have Seq 0 and carry no clock: they predate the execution.
func (m *Machine) SeedMemory(addr pmm.Addr, size int, val uint64) {
	m.mem.Set(addr, &CommittedStore{Addr: addr, Size: size, Val: val})
}

// CurSeq returns the last assigned global sequence number.
func (m *Machine) CurSeq() vclock.Seq { return m.seq }

// ThreadCV returns (a copy of) the thread's current happens-before clock.
func (m *Machine) ThreadCV(tid vclock.TID) vclock.VC { return m.threadCV(tid).Clone() }

// threadCV returns a pointer to the thread's live clock. The pointer is
// invalidated if the per-thread slices grow; use it immediately.
func (m *Machine) threadCV(tid vclock.TID) *vclock.VC {
	m.checkTID(tid)
	return &m.cv[tid]
}

// EnqueueStore appends a store to the thread's store buffer.
func (m *Machine) EnqueueStore(tid vclock.TID, addr pmm.Addr, size int, val uint64, atomic, release bool) {
	m.checkTID(tid)
	m.sb[tid] = append(m.sb[tid], SBEntry{Kind: OpStore, Addr: addr, Size: size, Val: val, Atomic: atomic, Release: release})
}

// EnqueueCLFlush appends a clflush; it commits in store-buffer order like a
// store (Px86sim Table 1: clflush is ordered with respect to writes).
func (m *Machine) EnqueueCLFlush(tid vclock.TID, addr pmm.Addr) {
	m.checkTID(tid)
	m.sb[tid] = append(m.sb[tid], SBEntry{Kind: OpCLFlush, Addr: addr})
}

// EnqueueCLWB appends a clwb; on eviction it moves to the flush buffer and
// becomes persistent only at the next same-thread fence, modelling clwb /
// clflushopt reordering freedom.
func (m *Machine) EnqueueCLWB(tid vclock.TID, addr pmm.Addr) {
	m.checkTID(tid)
	m.sb[tid] = append(m.sb[tid], SBEntry{Kind: OpCLWB, Addr: addr})
}

// EnqueueSFence appends an sfence; on eviction it flushes the thread's flush
// buffer.
func (m *Machine) EnqueueSFence(tid vclock.TID) {
	m.checkTID(tid)
	m.sb[tid] = append(m.sb[tid], SBEntry{Kind: OpSFence})
}

// SBLen returns the number of buffered operations for the thread.
func (m *Machine) SBLen(tid vclock.TID) int {
	if int(tid) >= len(m.sb) || tid < 0 {
		return 0
	}
	return len(m.sb[tid])
}

// FBLen returns the number of pending clwb operations for the thread.
func (m *Machine) FBLen(tid vclock.TID) int {
	if int(tid) >= len(m.fb) || tid < 0 {
		return 0
	}
	return len(m.fb[tid])
}

// EvictOne pops the oldest store-buffer entry of the thread and commits it.
// It reports whether an entry was evicted.
func (m *Machine) EvictOne(tid vclock.TID) bool {
	m.checkTID(tid)
	buf := m.sb[tid]
	if len(buf) == 0 {
		return false
	}
	e := buf[0]
	m.sb[tid] = buf[1:]
	m.commit(tid, e)
	return true
}

// DrainSB commits every buffered entry of the thread in order.
func (m *Machine) DrainSB(tid vclock.TID) {
	for m.EvictOne(tid) {
	}
}

func (m *Machine) commit(tid vclock.TID, e SBEntry) {
	switch e.Kind {
	case OpStore:
		m.seq++
		cv := m.threadCV(tid)
		cv.Set(tid, m.seq)
		rec := &CommittedStore{
			Addr: e.Addr, Size: e.Size, Val: e.Val,
			TID: tid, Seq: m.seq, CV: cv.Clone(),
			Atomic: e.Atomic, Release: e.Release,
		}
		m.mem.Set(e.Addr, rec)
		m.listener.StoreCommitted(rec)
	case OpCLFlush:
		m.seq++
		cv := m.threadCV(tid)
		cv.Set(tid, m.seq)
		m.listener.CLFlushCommitted(tid, e.Addr, m.seq, cv.Clone())
	case OpCLWB:
		cv := m.threadCV(tid).Clone()
		m.fb[tid] = append(m.fb[tid], FBEntry{Addr: e.Addr, CV: cv, TID: tid})
		m.listener.CLWBBuffered(tid, e.Addr, cv)
	case OpSFence:
		m.seq++
		cv := m.threadCV(tid)
		cv.Set(tid, m.seq)
		m.flushFB(tid, m.seq, cv.Clone())
		m.listener.FenceCommitted(tid, m.seq, cv.Clone())
	}
}

// flushFB persists every pending clwb of the thread (Evict_FB in the paper).
func (m *Machine) flushFB(tid vclock.TID, fenceSeq vclock.Seq, fenceCV vclock.VC) {
	for _, fbe := range m.fb[tid] {
		m.listener.CLWBPersisted(fbe, tid, fenceSeq, fenceCV)
	}
	m.fb[tid] = nil
}

// MFence drains the thread's store buffer, persists its flush buffer, and
// commits the fence (Exec_MFENCE in the paper's Figure 7).
func (m *Machine) MFence(tid vclock.TID) {
	m.DrainSB(tid)
	m.seq++
	cv := m.threadCV(tid)
	cv.Set(tid, m.seq)
	m.flushFB(tid, m.seq, cv.Clone())
	m.listener.FenceCommitted(tid, m.seq, cv.Clone())
}

// Load performs a load with store-buffer bypassing. acquire joins the
// publisher's clock when reading an atomic release store. The returned
// record is the committed store the load reads from; it is nil when the
// value comes from the thread's own store buffer or from seeded-but-absent
// memory (reads of never-written addresses return zero).
func (m *Machine) Load(tid vclock.TID, addr pmm.Addr, size int, acquire bool) (uint64, *CommittedStore) {
	v, rec, _ := m.LoadDetail(tid, addr, size, acquire)
	return v, rec
}

// LoadDetail is Load with an extra result reporting whether the value came
// from the thread's own store buffer (bypass). The engine uses it to tell
// current-execution values apart from values seeded across a crash.
func (m *Machine) LoadDetail(tid vclock.TID, addr pmm.Addr, size int, acquire bool) (uint64, *CommittedStore, bool) {
	// Bypass: most recent same-address store in the thread's own buffer.
	m.checkTID(tid)
	buf := m.sb[tid]
	for i := len(buf) - 1; i >= 0; i-- {
		if buf[i].Kind == OpStore && buf[i].Addr == addr {
			return truncate(buf[i].Val, size), nil, true
		}
	}
	rec := m.mem.At(addr)
	if rec == nil {
		return 0, nil, false
	}
	if acquire && rec.Release {
		m.threadCV(tid).Join(rec.CV)
	}
	return truncate(rec.Val, size), rec, false
}

// RMW performs a locked read-modify-write: it has full fence semantics
// (drains the store buffer and flush buffer first), reads the current value,
// applies f, and — if f elects to write — commits the new value atomically
// with release semantics and acquire semantics on the read.
func (m *Machine) RMW(tid vclock.TID, addr pmm.Addr, size int, f func(old uint64) (uint64, bool)) (uint64, bool) {
	m.MFence(tid)
	var old uint64
	if rec := m.mem.At(addr); rec != nil {
		old = truncate(rec.Val, size)
		if rec.Release {
			m.threadCV(tid).Join(rec.CV)
		}
	}
	newVal, write := f(old)
	if write {
		m.seq++
		cv := m.threadCV(tid)
		cv.Set(tid, m.seq)
		rec := &CommittedStore{
			Addr: addr, Size: size, Val: truncate(newVal, size),
			TID: tid, Seq: m.seq, CV: cv.Clone(),
			Atomic: true, Release: true,
		}
		m.mem.Set(addr, rec)
		m.listener.StoreCommitted(rec)
	}
	return old, write
}

// VolatileValue returns the current cache-visible value at addr (ignoring
// store buffers), for engine-side image construction.
func (m *Machine) VolatileValue(addr pmm.Addr) (*CommittedStore, bool) {
	rec := m.mem.At(addr)
	return rec, rec != nil
}

// Addresses returns every address with a cache-visible value, in ascending
// address order.
func (m *Machine) Addresses() []pmm.Addr {
	var out []pmm.Addr
	m.mem.ForEach(func(a pmm.Addr, rec *CommittedStore) bool {
		if rec != nil {
			out = append(out, a)
		}
		return true
	})
	return out
}

func truncate(v uint64, size int) uint64 {
	if size >= 8 {
		return v
	}
	return v & ((uint64(1) << (8 * size)) - 1)
}
