// Package tso simulates the x86-TSO storage system with Px86sim persistency
// operations (Raad et al., POPL 2020), as used by Yashme (ASPLOS '22 §2, §6).
//
// Each simulated thread has a store buffer S_τ holding stores, clflush, clwb
// and sfence operations that have not yet taken effect on the cache, and a
// flush buffer F_τ holding clwb operations that have left the store buffer
// but are not yet guaranteed persistent (they need a later fence by the same
// thread). Store buffers drain in FIFO order into a single global commit
// order; the global sequence counter σ numbers operations as they commit,
// exactly as in the paper's Figure 8. Loads bypass: a load first consults the
// issuing thread's own store buffer.
//
// The machine maintains per-thread happens-before clock vectors: committing
// an operation by thread τ raises CV_τ[τ] to the operation's σ; an atomic
// release store publishes a snapshot of CV_τ with its committed record; an
// acquire load joins the publisher's snapshot into the reader's clock.
// Because a thread's store buffer is FIFO, the clock snapshot taken when a
// clflush/clwb/sfence commits already covers every same-thread operation
// that program-order precedes it.
//
// The machine does not decide when buffers drain — the engine (the model
// checker) owns that nondeterminism and calls EvictOne / DrainSB explicitly.
package tso

import (
	"fmt"
	"sync"

	"yashme/internal/addridx"
	"yashme/internal/pmm"
	"yashme/internal/vclock"
)

// OpKind labels a store-buffer entry.
type OpKind int

// Store-buffer entry kinds.
const (
	OpStore OpKind = iota
	OpCLFlush
	OpCLWB
	OpSFence
)

func (k OpKind) String() string {
	switch k {
	case OpStore:
		return "store"
	case OpCLFlush:
		return "clflush"
	case OpCLWB:
		return "clwb"
	case OpSFence:
		return "sfence"
	}
	return fmt.Sprintf("OpKind(%d)", int(k))
}

// SBEntry is one operation buffered in a thread's store buffer.
type SBEntry struct {
	Kind    OpKind
	Addr    pmm.Addr // for stores: the target; for flushes: any address on the line
	Size    int
	Val     uint64
	Atomic  bool
	Release bool
}

// FBEntry is a clwb waiting in a thread's flush buffer for a fence.
type FBEntry struct {
	Addr pmm.Addr
	CV   vclock.Stamp // clock snapshot when the clwb left the store buffer
	TID  vclock.TID
}

// CommittedStore is the cache-visible record of a store that left a store
// buffer. The volatile memory map keeps the latest one per address.
type CommittedStore struct {
	Addr    pmm.Addr
	Size    int
	Val     uint64
	TID     vclock.TID
	Seq     vclock.Seq
	CV      vclock.Stamp // happens-before clock at commit (includes this store)
	Atomic  bool
	Release bool
}

// Listener receives commit events in the global commit order. The engine
// forwards them to the persistency-race detector, which implements the
// paper's Evict_SB / Evict_FB bookkeeping on top of them.
type Listener interface {
	// StoreCommitted fires when a store takes effect on the cache.
	StoreCommitted(rec *CommittedStore)
	// CLFlushCommitted fires when a clflush takes effect: the cache line of
	// addr is flushed to persistent storage at sequence number seq.
	CLFlushCommitted(tid vclock.TID, addr pmm.Addr, seq vclock.Seq, cv vclock.Stamp)
	// CLWBBuffered fires when a clwb leaves the store buffer and enters the
	// thread's flush buffer (not yet persistent).
	CLWBBuffered(tid vclock.TID, addr pmm.Addr, cv vclock.Stamp)
	// CLWBPersisted fires when a fence evicts a clwb from the flush buffer:
	// the write-back is now guaranteed persistent.
	CLWBPersisted(flush FBEntry, fenceTID vclock.TID, fenceSeq vclock.Seq, fenceCV vclock.Stamp)
	// FenceCommitted fires for sfence commits and mfence/RMW drains, after
	// the flush buffer has been processed.
	FenceCommitted(tid vclock.TID, seq vclock.Seq, cv vclock.Stamp)
}

// NopListener is a Listener that ignores every event; it is the "Jaaru only"
// configuration used to measure detector overhead (paper Table 5).
type NopListener struct{}

func (NopListener) StoreCommitted(*CommittedStore)                                  {}
func (NopListener) CLFlushCommitted(vclock.TID, pmm.Addr, vclock.Seq, vclock.Stamp) {}
func (NopListener) CLWBBuffered(vclock.TID, pmm.Addr, vclock.Stamp)                 {}
func (NopListener) CLWBPersisted(FBEntry, vclock.TID, vclock.Seq, vclock.Stamp)     {}
func (NopListener) FenceCommitted(vclock.TID, vclock.Seq, vclock.Stamp)             {}

var _ Listener = NopListener{}

// MaxThreads caps the dense TID range a machine will grow to on demand. The
// simulator runs a handful of threads; a TID at or beyond this limit is a
// corrupt identifier, and indexing by it would silently allocate garbage
// state, so the machine panics instead.
const MaxThreads = 1 << 10

// Machine is one x86-TSO storage system instance. One Machine simulates one
// execution (pre-crash or post-crash); the engine creates a fresh Machine
// per execution, seeding its memory from the persisted image.
//
// Per-thread state is held in slices indexed directly by TID. This dense
// layout relies on the TID-density invariant: threads are numbered 0..n-1
// with no gaps (the engine spawns them that way and declares the count via
// SpawnThreads). A machine used without SpawnThreads grows its per-thread
// state on demand up to MaxThreads; after SpawnThreads, an out-of-range TID
// panics loudly rather than mis-indexing.
type Machine struct {
	listener Listener
	seq      vclock.Seq

	// declared is the thread count fixed by SpawnThreads, 0 when the
	// machine grows on demand.
	declared int

	sb [][]SBEntry // indexed by TID
	fb [][]FBEntry // indexed by TID

	// Per-thread clocks in interned form: the thread's logical clock is
	// clocks.At(base[τ]) joined with {τ: self[τ]}. base[τ] only changes at
	// synchronizing events (acquire loads, RMWs), so committing a store is
	// allocation-free — the record's Stamp reuses the shared snapshot.
	base []vclock.Ref // indexed by TID
	self []vclock.Seq // indexed by TID

	// clocks holds the interned snapshots. The engine shares the
	// detector's arena via UseArena so record stamps resolve on both
	// sides; a stand-alone machine gets a private arena.
	clocks *vclock.Arena

	// mem is the volatile cache/memory view: latest committed store per
	// address, interned by addridx (the heap's Addr space is dense).
	// Initial contents come from the persisted image. Records are immutable
	// once committed, so clones share them.
	mem addridx.Table[*CommittedStore]

	// recSlab is the spare tail of a chunk-allocated CommittedStore block:
	// seeding a persisted image and committing stores both mint one record
	// per event, so handing out slab slots turns those per-record
	// allocations into one per chunk. Handed-out records are immutable and
	// freely shared; the unused tail is private (Clone drops it).
	recSlab []CommittedStore
}

// recycled carries the reusable backings of a retired machine between
// Retire and NewMachine.
type recycled struct {
	mem  addridx.Table[*CommittedStore]
	slab []CommittedStore
}

// retiredPool holds backings of retired machines. The engine runs one
// short-lived machine per crash scenario across a pool of workers; routing
// the dense memory table and the spare record slots through a sync.Pool
// means steady-state scenarios reuse an existing zeroed table instead of
// reallocating one each.
var retiredPool sync.Pool

// Retire hands m's memory-table backing and spare record slots to the pool
// NewMachine draws from. The machine must never be used again. Records it
// already handed out stay valid: they are immutable, referenced
// individually rather than through the table, and only the never-handed-out
// slab tail is reused.
func Retire(m *Machine) {
	if m == nil {
		return
	}
	m.mem.Reset()
	retiredPool.Put(&recycled{mem: m.mem, slab: m.recSlab})
	m.mem = addridx.Table[*CommittedStore]{}
	m.recSlab = nil
}

// newRecord hands out one record slot from the slab chunk.
func (m *Machine) newRecord() *CommittedStore {
	if len(m.recSlab) == 0 {
		m.recSlab = make([]CommittedStore, 64)
	}
	rec := &m.recSlab[0]
	m.recSlab = m.recSlab[1:]
	return rec
}

// arenaProvider is the optional listener interface a clock-consuming
// listener (the race detector) implements: its arena is adopted by
// NewMachine so the stamps the machine mints resolve on the listener's
// side without an explicit UseArena call.
type arenaProvider interface{ ClockArena() *vclock.Arena }

// NewMachine returns an empty machine reporting to listener. A listener
// that owns a clock arena (implements ClockArena) shares it with the
// machine; otherwise the machine gets a private arena.
func NewMachine(listener Listener) *Machine {
	if listener == nil {
		listener = NopListener{}
	}
	m := &Machine{listener: listener}
	if r, _ := retiredPool.Get().(*recycled); r != nil {
		m.mem = r.mem
		m.recSlab = r.slab
	}
	if p, ok := listener.(arenaProvider); ok {
		m.clocks = p.ClockArena()
	} else {
		m.clocks = vclock.NewArena(false)
	}
	return m
}

// UseArena points the machine at a shared clock arena (the detector's, in
// engine runs, so record stamps resolve identically on both sides). Call
// it before the first operation; stamps minted against a previous arena do
// not transfer.
func (m *Machine) UseArena(a *vclock.Arena) { m.clocks = a }

// ClockArena returns the arena the machine's stamps resolve in.
func (m *Machine) ClockArena() *vclock.Arena { return m.clocks }

// ReserveMemory pre-sizes the memory view for addresses [0, n), so seeding
// a persisted image (ascending addresses) fills one allocation instead of
// growing geometrically.
func (m *Machine) ReserveMemory(n int) { m.mem.Reserve(n) }

// SpawnThreads declares that the execution runs threads 0..n-1 and fixes the
// machine's thread range: any later operation naming a TID outside [0, n)
// panics. Declaring the range up front documents the density invariant the
// slice-backed layout relies on and sizes the per-thread state once.
func (m *Machine) SpawnThreads(n int) {
	if n <= 0 || n > MaxThreads {
		panic(fmt.Sprintf("tso: thread count %d out of range [1, %d]", n, MaxThreads))
	}
	if n < m.declared || n < len(m.sb) {
		panic(fmt.Sprintf("tso: SpawnThreads(%d) would shrink an existing thread range of %d", n, max(m.declared, len(m.sb))))
	}
	m.growThreads(n)
	m.declared = n
}

// growThreads extends the per-thread slices to cover n threads.
func (m *Machine) growThreads(n int) {
	for len(m.sb) < n {
		m.sb = append(m.sb, nil)
		m.fb = append(m.fb, nil)
		m.base = append(m.base, 0)
		m.self = append(m.self, 0)
	}
}

// checkTID validates tid against the declared (or on-demand) thread range
// and ensures its slots exist.
func (m *Machine) checkTID(tid vclock.TID) {
	if tid < 0 || int(tid) >= MaxThreads {
		panic(fmt.Sprintf("tso: thread id %d out of range [0, %d)", tid, MaxThreads))
	}
	if m.declared > 0 {
		if int(tid) >= m.declared {
			panic(fmt.Sprintf("tso: thread id %d outside the declared dense range [0, %d) — spawn threads contiguously", tid, m.declared))
		}
		return
	}
	m.growThreads(int(tid) + 1)
}

// Clone returns an independent machine with the same buffered and committed
// state, reporting subsequent events to listener (nil = NopListener).
// Committed store records are shared with the original: a CommittedStore is
// immutable once committed (its clock vector is snapshotted at commit time).
// Store buffers, flush buffers and per-thread clocks are deep-copied, so the
// two machines may run on independently.
//
// The engine's checkpoint layer deliberately does NOT snapshot machines: a
// crash discards every buffered operation by definition, and each post-crash
// machine is freshly seeded from the persisted image, so a snapshot only
// needs CurSeq (see internal/engine/checkpoint.go). Clone keeps the storage
// system snapshottable for tooling and tests regardless.
func (m *Machine) Clone(listener Listener) *Machine {
	if listener == nil {
		listener = NopListener{}
	}
	c := &Machine{
		listener: listener,
		seq:      m.seq,
		declared: m.declared,
		sb:       make([][]SBEntry, len(m.sb)),
		fb:       make([][]FBEntry, len(m.fb)),
		base:     append([]vclock.Ref(nil), m.base...),
		self:     append([]vclock.Seq(nil), m.self...),
		clocks:   m.clocks.Clone(), // capped view: snapshots are immutable
		mem:      m.mem.Clone(),    // flat: records are immutable once committed
	}
	// A clock-consuming listener (a cloned detector) brings its own arena
	// clone; adopt it so the pair diverges together, exactly as NewMachine
	// pairs a fresh machine with its detector.
	if p, ok := listener.(arenaProvider); ok {
		c.clocks = p.ClockArena()
	}
	for t, buf := range m.sb {
		if len(buf) > 0 {
			c.sb[t] = append([]SBEntry(nil), buf...)
		}
	}
	for t, buf := range m.fb {
		if len(buf) > 0 {
			c.fb[t] = append([]FBEntry(nil), buf...)
		}
	}
	return c
}

// SeedMemory installs an initial, already-persisted value. Seeded values
// have Seq 0 and carry no clock: they predate the execution.
func (m *Machine) SeedMemory(addr pmm.Addr, size int, val uint64) {
	rec := m.newRecord()
	*rec = CommittedStore{Addr: addr, Size: size, Val: val}
	m.mem.Set(addr, rec)
}

// CurSeq returns the last assigned global sequence number.
func (m *Machine) CurSeq() vclock.Seq { return m.seq }

// ThreadCV returns (a materialized copy of) the thread's current
// happens-before clock.
func (m *Machine) ThreadCV(tid vclock.TID) vclock.VC {
	m.checkTID(tid)
	return m.clocks.Materialize(m.snapshot(tid))
}

// snapshot returns the thread's current clock as a stamp (no allocation).
func (m *Machine) snapshot(tid vclock.TID) vclock.Stamp {
	return vclock.Stamp{Base: m.base[tid], Self: vclock.NewEpoch(tid, m.self[tid])}
}

// commitStamp assigns the next global sequence number to an operation by
// tid and returns the operation's clock. In interning mode this allocates
// nothing: the stamp reuses the thread's shared snapshot and carries the
// new (tid, seq) epoch as its self component. In owned mode it appends a
// private materialized copy, reproducing the per-record clock
// representation this layout replaced.
func (m *Machine) commitStamp(tid vclock.TID) vclock.Stamp {
	m.seq++
	m.self[tid] = m.seq
	st := vclock.Stamp{Base: m.base[tid], Self: vclock.NewEpoch(tid, m.seq)}
	if m.clocks.Owned() {
		st = m.clocks.Reintern(st)
	}
	return st
}

// joinThread merges a published stamp into the thread's clock (the acquire
// side of a release/acquire pair). The arena's epoch fast path makes the
// common already-covered case a single packed compare.
func (m *Machine) joinThread(tid vclock.TID, st vclock.Stamp) {
	if st == (vclock.Stamp{}) {
		return // seeded record: no clock to merge
	}
	m.base[tid] = m.clocks.JoinThread(m.base[tid], tid, m.self[tid], st)
}

// EnqueueStore appends a store to the thread's store buffer.
func (m *Machine) EnqueueStore(tid vclock.TID, addr pmm.Addr, size int, val uint64, atomic, release bool) {
	m.checkTID(tid)
	m.sb[tid] = append(m.sb[tid], SBEntry{Kind: OpStore, Addr: addr, Size: size, Val: val, Atomic: atomic, Release: release})
}

// EnqueueCLFlush appends a clflush; it commits in store-buffer order like a
// store (Px86sim Table 1: clflush is ordered with respect to writes).
func (m *Machine) EnqueueCLFlush(tid vclock.TID, addr pmm.Addr) {
	m.checkTID(tid)
	m.sb[tid] = append(m.sb[tid], SBEntry{Kind: OpCLFlush, Addr: addr})
}

// EnqueueCLWB appends a clwb; on eviction it moves to the flush buffer and
// becomes persistent only at the next same-thread fence, modelling clwb /
// clflushopt reordering freedom.
func (m *Machine) EnqueueCLWB(tid vclock.TID, addr pmm.Addr) {
	m.checkTID(tid)
	m.sb[tid] = append(m.sb[tid], SBEntry{Kind: OpCLWB, Addr: addr})
}

// EnqueueSFence appends an sfence; on eviction it flushes the thread's flush
// buffer.
func (m *Machine) EnqueueSFence(tid vclock.TID) {
	m.checkTID(tid)
	m.sb[tid] = append(m.sb[tid], SBEntry{Kind: OpSFence})
}

// SBLen returns the number of buffered operations for the thread.
func (m *Machine) SBLen(tid vclock.TID) int {
	if int(tid) >= len(m.sb) || tid < 0 {
		return 0
	}
	return len(m.sb[tid])
}

// FBLen returns the number of pending clwb operations for the thread.
func (m *Machine) FBLen(tid vclock.TID) int {
	if int(tid) >= len(m.fb) || tid < 0 {
		return 0
	}
	return len(m.fb[tid])
}

// EvictOne pops the oldest store-buffer entry of the thread and commits it.
// It reports whether an entry was evicted.
func (m *Machine) EvictOne(tid vclock.TID) bool {
	m.checkTID(tid)
	buf := m.sb[tid]
	if len(buf) == 0 {
		return false
	}
	e := buf[0]
	m.sb[tid] = buf[1:]
	m.commit(tid, e)
	return true
}

// DrainSB commits every buffered entry of the thread in order.
func (m *Machine) DrainSB(tid vclock.TID) {
	for m.EvictOne(tid) {
	}
}

func (m *Machine) commit(tid vclock.TID, e SBEntry) {
	switch e.Kind {
	case OpStore:
		st := m.commitStamp(tid)
		rec := m.newRecord()
		*rec = CommittedStore{
			Addr: e.Addr, Size: e.Size, Val: e.Val,
			TID: tid, Seq: m.seq, CV: st,
			Atomic: e.Atomic, Release: e.Release,
		}
		m.mem.Set(e.Addr, rec)
		m.listener.StoreCommitted(rec)
	case OpCLFlush:
		st := m.commitStamp(tid)
		m.listener.CLFlushCommitted(tid, e.Addr, m.seq, st)
	case OpCLWB:
		st := m.snapshot(tid)
		if m.clocks.Owned() {
			st = m.clocks.Reintern(st)
		}
		m.fb[tid] = append(m.fb[tid], FBEntry{Addr: e.Addr, CV: st, TID: tid})
		m.listener.CLWBBuffered(tid, e.Addr, st)
	case OpSFence:
		st := m.commitStamp(tid)
		m.flushFB(tid, m.seq, st)
		m.listener.FenceCommitted(tid, m.seq, st)
	}
}

// flushFB persists every pending clwb of the thread (Evict_FB in the paper).
func (m *Machine) flushFB(tid vclock.TID, fenceSeq vclock.Seq, fenceCV vclock.Stamp) {
	for _, fbe := range m.fb[tid] {
		m.listener.CLWBPersisted(fbe, tid, fenceSeq, fenceCV)
	}
	m.fb[tid] = nil
}

// MFence drains the thread's store buffer, persists its flush buffer, and
// commits the fence (Exec_MFENCE in the paper's Figure 7).
func (m *Machine) MFence(tid vclock.TID) {
	m.DrainSB(tid)
	st := m.commitStamp(tid)
	m.flushFB(tid, m.seq, st)
	m.listener.FenceCommitted(tid, m.seq, st)
}

// Load performs a load with store-buffer bypassing. acquire joins the
// publisher's clock when reading an atomic release store. The returned
// record is the committed store the load reads from; it is nil when the
// value comes from the thread's own store buffer or from seeded-but-absent
// memory (reads of never-written addresses return zero).
func (m *Machine) Load(tid vclock.TID, addr pmm.Addr, size int, acquire bool) (uint64, *CommittedStore) {
	v, rec, _ := m.LoadDetail(tid, addr, size, acquire)
	return v, rec
}

// LoadDetail is Load with an extra result reporting whether the value came
// from the thread's own store buffer (bypass). The engine uses it to tell
// current-execution values apart from values seeded across a crash.
func (m *Machine) LoadDetail(tid vclock.TID, addr pmm.Addr, size int, acquire bool) (uint64, *CommittedStore, bool) {
	// Bypass: most recent same-address store in the thread's own buffer.
	m.checkTID(tid)
	buf := m.sb[tid]
	for i := len(buf) - 1; i >= 0; i-- {
		if buf[i].Kind == OpStore && buf[i].Addr == addr {
			return truncate(buf[i].Val, size), nil, true
		}
	}
	rec := m.mem.At(addr)
	if rec == nil {
		return 0, nil, false
	}
	if acquire && rec.Release {
		m.joinThread(tid, rec.CV)
	}
	return truncate(rec.Val, size), rec, false
}

// RMW performs a locked read-modify-write: it has full fence semantics
// (drains the store buffer and flush buffer first), reads the current value,
// applies f, and — if f elects to write — commits the new value atomically
// with release semantics and acquire semantics on the read.
func (m *Machine) RMW(tid vclock.TID, addr pmm.Addr, size int, f func(old uint64) (uint64, bool)) (uint64, bool) {
	m.MFence(tid)
	var old uint64
	if rec := m.mem.At(addr); rec != nil {
		old = truncate(rec.Val, size)
		if rec.Release {
			m.joinThread(tid, rec.CV)
		}
	}
	newVal, write := f(old)
	if write {
		st := m.commitStamp(tid)
		rec := m.newRecord()
		*rec = CommittedStore{
			Addr: addr, Size: size, Val: truncate(newVal, size),
			TID: tid, Seq: m.seq, CV: st,
			Atomic: true, Release: true,
		}
		m.mem.Set(addr, rec)
		m.listener.StoreCommitted(rec)
	}
	return old, write
}

// VolatileValue returns the current cache-visible value at addr (ignoring
// store buffers), for engine-side image construction.
func (m *Machine) VolatileValue(addr pmm.Addr) (*CommittedStore, bool) {
	rec := m.mem.At(addr)
	return rec, rec != nil
}

// Addresses returns every address with a cache-visible value, in ascending
// address order.
func (m *Machine) Addresses() []pmm.Addr {
	var out []pmm.Addr
	m.mem.ForEach(func(a pmm.Addr, rec *CommittedStore) bool {
		if rec != nil {
			out = append(out, a)
		}
		return true
	})
	return out
}

func truncate(v uint64, size int) uint64 {
	if size >= 8 {
		return v
	}
	return v & ((uint64(1) << (8 * size)) - 1)
}
