package tso

import (
	"testing"

	"yashme/internal/pmm"
	"yashme/internal/vclock"
)

// The slice-backed per-thread state indexes directly by TID, which is only
// sound while TIDs are dense: threads 0..n-1, no gaps. These tests document
// the invariant and prove violations fail loudly instead of mis-indexing.

func mustPanic(t *testing.T, what string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s did not panic", what)
		}
	}()
	f()
}

func TestSpawnThreadsDeclaresDenseRange(t *testing.T) {
	m := NewMachine(nil)
	m.SpawnThreads(3)
	for tid := 0; tid < 3; tid++ {
		m.EnqueueStore(vclock.TID(tid), 0x1000+pmm.Addr(8*tid), 8, uint64(tid), false, false)
		m.DrainSB(vclock.TID(tid))
	}
	if m.CurSeq() != 3 {
		t.Fatalf("CurSeq = %d after 3 commits, want 3", m.CurSeq())
	}
}

func TestUndeclaredTIDOutsideSpawnedRangePanics(t *testing.T) {
	m := NewMachine(nil)
	m.SpawnThreads(2)
	mustPanic(t, "EnqueueStore with TID 5 after SpawnThreads(2)", func() {
		m.EnqueueStore(5, 0x1000, 8, 1, false, false)
	})
	mustPanic(t, "Load with TID 2 after SpawnThreads(2)", func() {
		m.Load(2, 0x1000, 8, false)
	})
	mustPanic(t, "MFence with negative TID", func() {
		m.MFence(-1)
	})
}

func TestSpawnThreadsCannotShrink(t *testing.T) {
	m := NewMachine(nil)
	m.SpawnThreads(4)
	mustPanic(t, "SpawnThreads(2) after SpawnThreads(4)", func() {
		m.SpawnThreads(2)
	})
	// Growing the declared range (e.g. recovery spawning more workers than
	// the pre-crash run) is allowed.
	m.SpawnThreads(6)
	m.EnqueueStore(5, 0x1000, 8, 1, false, false)
}

func TestOnDemandGrowthIsCapped(t *testing.T) {
	m := NewMachine(nil)
	// Without a declaration the machine grows dense slots on demand...
	m.EnqueueStore(2, 0x1000, 8, 1, false, false)
	if got := m.SBLen(2); got != 1 {
		t.Fatalf("SBLen(2) = %d, want 1", got)
	}
	// ...but a corrupt TID still fails loudly instead of allocating a
	// gigantic table.
	mustPanic(t, "EnqueueStore with TID >= MaxThreads", func() {
		m.EnqueueStore(MaxThreads, 0x1000, 8, 1, false, false)
	})
}

func TestCloneKeepsDeclaredRange(t *testing.T) {
	m := NewMachine(nil)
	m.SpawnThreads(2)
	c := m.Clone(nil)
	mustPanic(t, "clone op with TID outside the declared range", func() {
		c.EnqueueStore(3, 0x1000, 8, 1, false, false)
	})
}
