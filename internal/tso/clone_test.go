package tso

import "testing"

// TestCloneIndependence: a cloned machine and its original may run on
// independently — buffered state, clocks and committed memory must not leak
// either way. (The engine's checkpoint layer does not snapshot machines, but
// Clone keeps the storage system snapshottable for tooling; see Clone's doc.)
func TestCloneIndependence(t *testing.T) {
	m := NewMachine(nil)
	m.EnqueueStore(1, 0x1000, 8, 42, false, false)
	m.EnqueueCLWB(1, 0x1000)
	m.EvictOne(1)                                 // commit the store
	m.EvictOne(1)                                 // clwb moves to the flush buffer
	m.EnqueueStore(1, 0x1008, 8, 7, false, false) // stays buffered

	c := m.Clone(nil)
	seq := m.CurSeq()

	// Run the clone forward: drain thread 1, fence, and commit a second
	// thread's store.
	c.DrainSB(1)
	c.MFence(1)
	c.EnqueueStore(2, 0x2000, 8, 9, true, true)
	c.DrainSB(2)

	if m.CurSeq() != seq {
		t.Errorf("original CurSeq advanced to %d while only the clone ran", m.CurSeq())
	}
	if got := m.SBLen(1); got != 1 {
		t.Errorf("original SBLen(1) = %d after draining the clone, want 1", got)
	}
	if got := m.FBLen(1); got != 1 {
		t.Errorf("original FBLen(1) = %d after fencing the clone, want 1", got)
	}
	if _, ok := m.VolatileValue(0x2000); ok {
		t.Error("original sees a store committed only on the clone")
	}
	if _, ok := m.VolatileValue(0x1008); ok {
		t.Error("original sees a buffered store the clone committed")
	}
	// Clock independence: the clone's acquire joined thread 2's release;
	// the original's clock for thread 1 must not have moved.
	if got := m.ThreadCV(1).Get(1); got != 1 {
		t.Errorf("original ThreadCV(1)[1] = %d, want 1", got)
	}

	// The other direction: run the original forward and check the clone.
	cSeq := c.CurSeq()
	m.DrainSB(1)
	m.MFence(1)
	if c.CurSeq() != cSeq {
		t.Errorf("clone CurSeq advanced to %d while only the original ran", c.CurSeq())
	}
	v, ok := c.VolatileValue(0x1000)
	if !ok || v.Val != 42 {
		t.Errorf("clone lost the shared committed store: %+v, %v", v, ok)
	}

	// Slice-backed state: grow the original's per-thread buffers and clock
	// range after the clone. Shared backing arrays would let these writes
	// surface in the clone (and trip -race).
	cCV := c.ThreadCV(1).Max()
	m.EnqueueStore(3, 0x3000, 8, 1, false, false) // grows sb/fb/cv to thread 3
	m.EnqueueStore(1, 0x1010, 8, 5, false, false) // appends to thread 1's buffer
	if got := c.SBLen(3); got != 0 {
		t.Errorf("clone SBLen(3) = %d after the original grew to thread 3, want 0", got)
	}
	if got := c.SBLen(1); got != 0 {
		t.Errorf("clone SBLen(1) = %d after the original enqueued, want 0", got)
	}
	if got := c.ThreadCV(1).Max(); got != cCV {
		t.Errorf("clone ThreadCV(1) moved %d -> %d when only the original ran", cCV, got)
	}
}
