package tso

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"yashme/internal/pmm"
	"yashme/internal/vclock"
)

// Litmus harness: enumerate every interleaving of per-thread action lists,
// re-running each complete interleaving on a fresh machine, and collect the
// set of observable outcomes. Actions mutate a shared result slice; the
// outcome string is the result tuple at the end of the interleaving.
//
// This validates the simulator against the x86-TSO / Px86sim behaviours of
// the paper's §2 and Table 1 the way hardware memory models are validated:
// with litmus tests.

type litmusEnv struct {
	m   *Machine
	r   []uint64
	rec *flushRecorder
}

type litmusAction func(*litmusEnv)

// flushRecorder notes the global commit order of stores and flush events,
// for ordering assertions.
type flushRecorder struct {
	order []string
}

func (f *flushRecorder) StoreCommitted(rec *CommittedStore) {
	f.order = append(f.order, fmt.Sprintf("W%x=%d", uint64(rec.Addr), rec.Val))
}
func (f *flushRecorder) CLFlushCommitted(_ vclock.TID, addr pmm.Addr, _ vclock.Seq, _ vclock.Stamp) {
	f.order = append(f.order, fmt.Sprintf("F%x", uint64(addr)))
}
func (f *flushRecorder) CLWBBuffered(_ vclock.TID, addr pmm.Addr, _ vclock.Stamp) {
	f.order = append(f.order, fmt.Sprintf("wb%x", uint64(addr)))
}
func (f *flushRecorder) CLWBPersisted(flush FBEntry, _ vclock.TID, _ vclock.Seq, _ vclock.Stamp) {
	f.order = append(f.order, fmt.Sprintf("WB%x", uint64(flush.Addr)))
}
func (f *flushRecorder) FenceCommitted(vclock.TID, vclock.Seq, vclock.Stamp) {
	f.order = append(f.order, "SF")
}

// runLitmus enumerates interleavings and returns the sorted set of distinct
// outcome strings produced by render.
func runLitmus(t *testing.T, threads [][]litmusAction, nresults int, render func(*litmusEnv) string) []string {
	t.Helper()
	outcomes := map[string]bool{}
	var interleave func(seq []int, remaining []int)
	counts := make([]int, len(threads))
	total := 0
	for _, th := range threads {
		total += len(th)
	}
	var run func(seq []int)
	run = func(seq []int) {
		env := &litmusEnv{r: make([]uint64, nresults), rec: &flushRecorder{}}
		env.m = NewMachine(env.rec)
		idx := make([]int, len(threads))
		for _, tid := range seq {
			threads[tid][idx[tid]](env)
			idx[tid]++
		}
		outcomes[render(env)] = true
	}
	interleave = func(seq []int, counts []int) {
		if len(seq) == total {
			run(seq)
			return
		}
		for tid := range threads {
			if counts[tid] < len(threads[tid]) {
				counts[tid]++
				interleave(append(seq, tid), counts)
				counts[tid]--
			}
		}
	}
	interleave(nil, counts)
	var out []string
	for o := range outcomes {
		out = append(out, o)
	}
	sort.Strings(out)
	return out
}

func has(outcomes []string, want string) bool {
	for _, o := range outcomes {
		if o == want {
			return true
		}
	}
	return false
}

const (
	lx = pmm.Addr(0x1000)
	ly = pmm.Addr(0x2000) // different cache line
)

// Classic SB (store buffering): with store buffers, both threads can read 0
// from the other's location — the hallmark TSO weak behaviour. Both-1 and
// the asymmetric outcomes must be reachable too.
func TestLitmusStoreBuffering(t *testing.T) {
	tid0, tid1 := vclock.TID(0), vclock.TID(1)
	threads := [][]litmusAction{
		{
			func(e *litmusEnv) { e.m.EnqueueStore(tid0, lx, 8, 1, false, false) },
			func(e *litmusEnv) { e.r[0], _ = e.m.Load(tid0, ly, 8, false) },
		},
		{
			func(e *litmusEnv) { e.m.EnqueueStore(tid1, ly, 8, 1, false, false) },
			func(e *litmusEnv) { e.r[1], _ = e.m.Load(tid1, lx, 8, false) },
		},
		// Hardware drains store buffers asynchronously: model the drain as
		// independent interleaving pressure, not program-ordered actions.
		{
			func(e *litmusEnv) { e.m.DrainSB(tid0) },
			func(e *litmusEnv) { e.m.DrainSB(tid1) },
		},
	}
	outcomes := runLitmus(t, threads, 2, func(e *litmusEnv) string {
		return fmt.Sprintf("r0=%d r1=%d", e.r[0], e.r[1])
	})
	for _, want := range []string{"r0=0 r1=0", "r0=1 r1=1", "r0=0 r1=1", "r0=1 r1=0"} {
		if !has(outcomes, want) {
			t.Errorf("SB litmus: outcome %q unreachable (got %v)", want, outcomes)
		}
	}
}

// Store-buffer bypassing: a thread always sees its own latest store, so
// reading your own location after writing it can never return the old
// value (the "SB with own-read" shape).
func TestLitmusBypassForbidsStaleOwnRead(t *testing.T) {
	tid0 := vclock.TID(0)
	threads := [][]litmusAction{
		{
			func(e *litmusEnv) { e.m.EnqueueStore(tid0, lx, 8, 1, false, false) },
			func(e *litmusEnv) { e.r[0], _ = e.m.Load(tid0, lx, 8, false) },
			func(e *litmusEnv) { e.m.DrainSB(tid0) },
		},
		{
			func(e *litmusEnv) { e.m.EvictOne(tid0) }, // external eviction pressure
		},
	}
	outcomes := runLitmus(t, threads, 1, func(e *litmusEnv) string {
		return fmt.Sprintf("r0=%d", e.r[0])
	})
	if has(outcomes, "r0=0") {
		t.Errorf("bypass litmus: stale own-read observed (%v)", outcomes)
	}
}

// MP (message passing) with release/acquire: if the reader acquires the
// flag value 1, its clock must cover the data store — the hb edge data
// race detection depends on. Reading flag=1 without the data store in the
// clock must be unreachable.
func TestLitmusMessagePassingClocks(t *testing.T) {
	tid0, tid1 := vclock.TID(0), vclock.TID(1)
	threads := [][]litmusAction{
		{
			func(e *litmusEnv) { e.m.EnqueueStore(tid0, lx, 8, 1, false, false) }, // data
			func(e *litmusEnv) { e.m.EnqueueStore(tid0, ly, 8, 1, true, true) },   // flag (release)
			func(e *litmusEnv) { e.m.DrainSB(tid0) },
		},
		{
			func(e *litmusEnv) {
				flag, _ := e.m.Load(tid1, ly, 8, true) // acquire
				e.r[0] = flag
				if e.m.ThreadCV(tid1).Contains(tid0, 1) { // covers the data store (σ1)?
					e.r[1] = 1
				}
			},
		},
	}
	outcomes := runLitmus(t, threads, 2, func(e *litmusEnv) string {
		return fmt.Sprintf("flag=%d covered=%d", e.r[0], e.r[1])
	})
	if has(outcomes, "flag=1 covered=0") {
		t.Errorf("MP litmus: acquired flag without data in clock (%v)", outcomes)
	}
	if !has(outcomes, "flag=1 covered=1") || !has(outcomes, "flag=0 covered=0") {
		t.Errorf("MP litmus: expected outcomes missing (%v)", outcomes)
	}
}

// Table 1, Write→clflush row (✓): a clflush never commits before an earlier
// same-thread store — they drain FIFO, so the flush event always follows
// the store event in the global order.
func TestLitmusCLFlushOrderedAfterEarlierStore(t *testing.T) {
	tid0 := vclock.TID(0)
	threads := [][]litmusAction{
		{
			func(e *litmusEnv) { e.m.EnqueueStore(tid0, lx, 8, 1, false, false) },
			func(e *litmusEnv) { e.m.EnqueueCLFlush(tid0, lx) },
			func(e *litmusEnv) { e.m.EvictOne(tid0) },
			func(e *litmusEnv) { e.m.EvictOne(tid0) },
		},
		{
			func(e *litmusEnv) { e.m.EvictOne(tid0) }, // racing eviction pressure
		},
	}
	outcomes := runLitmus(t, threads, 0, func(e *litmusEnv) string {
		order := strings.Join(e.rec.order, " ")
		return order
	})
	for _, o := range outcomes {
		w := strings.Index(o, "W1000=1")
		f := strings.Index(o, "F1000")
		if w >= 0 && f >= 0 && f < w {
			t.Errorf("clflush committed before the earlier store: %q", o)
		}
	}
}

// Table 1, clflushopt/clwb rows (✗ vs CL): a clwb leaves the store buffer
// but persists only at the next same-thread fence — the write-back event
// (WB) must always appear after the fence-triggering sfence enters the
// order... precisely: no WB without a preceding SF is observable.
func TestLitmusCLWBPersistsOnlyAtFence(t *testing.T) {
	tid0 := vclock.TID(0)
	threads := [][]litmusAction{
		{
			func(e *litmusEnv) { e.m.EnqueueStore(tid0, lx, 8, 1, false, false) },
			func(e *litmusEnv) { e.m.EnqueueCLWB(tid0, lx) },
			func(e *litmusEnv) { e.m.DrainSB(tid0) }, // clwb buffered, NOT persistent
			func(e *litmusEnv) {
				if e.m.FBLen(tid0) == 1 {
					e.r[0] = 1 // write-back pending
				}
			},
			func(e *litmusEnv) { e.m.EnqueueSFence(tid0) },
			func(e *litmusEnv) { e.m.DrainSB(tid0) },
		},
	}
	outcomes := runLitmus(t, threads, 1, func(e *litmusEnv) string {
		order := strings.Join(e.rec.order, " ")
		return fmt.Sprintf("pending=%d order=%s", e.r[0], order)
	})
	for _, o := range outcomes {
		if !strings.Contains(o, "pending=1") {
			t.Errorf("clwb was persistent before the fence: %q", o)
		}
		// The persist event (WB) happens as part of the fence commit: it
		// can only exist in runs that contain the fence, and always after
		// the clwb left the store buffer (wb).
		wb := strings.Index(o, "WB1000")
		buffered := strings.Index(o, "wb1000")
		if wb >= 0 && !strings.Contains(o, "SF") {
			t.Errorf("write-back persisted without any fence: %q", o)
		}
		if wb >= 0 && (buffered < 0 || wb < buffered) {
			t.Errorf("write-back persisted before the clwb left the store buffer: %q", o)
		}
	}
}

// Total store order: once two stores from different threads commit, every
// thread agrees on the final value — no IRIW-style disagreement about the
// last writer.
func TestLitmusTotalStoreOrderAgreement(t *testing.T) {
	tid0, tid1 := vclock.TID(0), vclock.TID(1)
	threads := [][]litmusAction{
		{
			func(e *litmusEnv) { e.m.EnqueueStore(tid0, lx, 8, 1, false, false) },
			func(e *litmusEnv) { e.m.DrainSB(tid0) },
		},
		{
			func(e *litmusEnv) { e.m.EnqueueStore(tid1, lx, 8, 2, false, false) },
			func(e *litmusEnv) { e.m.DrainSB(tid1) },
		},
	}
	outcomes := runLitmus(t, threads, 2, func(e *litmusEnv) string {
		a, _ := e.m.Load(2, lx, 8, false) // two independent observers
		b, _ := e.m.Load(3, lx, 8, false)
		return fmt.Sprintf("a=%d b=%d", a, b)
	})
	for _, o := range outcomes {
		if o != "a=1 b=1" && o != "a=2 b=2" {
			t.Errorf("observers disagree on the final store: %q", o)
		}
	}
}

// mfence semantics (Table 1 mfence row: everything ordered): after MFence
// the thread has no buffered or pending operations, regardless of what the
// other thread interleaved.
func TestLitmusMFenceDrainsEverything(t *testing.T) {
	tid0, tid1 := vclock.TID(0), vclock.TID(1)
	threads := [][]litmusAction{
		{
			func(e *litmusEnv) { e.m.EnqueueStore(tid0, lx, 8, 1, false, false) },
			func(e *litmusEnv) { e.m.EnqueueCLWB(tid0, lx) },
			func(e *litmusEnv) { e.m.MFence(tid0) },
			func(e *litmusEnv) {
				e.r[0] = uint64(e.m.SBLen(tid0))
				e.r[1] = uint64(e.m.FBLen(tid0))
			},
		},
		{
			func(e *litmusEnv) { e.m.EnqueueStore(tid1, ly, 8, 9, false, false) },
			func(e *litmusEnv) { e.m.EvictOne(tid1) },
		},
	}
	outcomes := runLitmus(t, threads, 2, func(e *litmusEnv) string {
		return fmt.Sprintf("sb=%d fb=%d", e.r[0], e.r[1])
	})
	for _, o := range outcomes {
		if o != "sb=0 fb=0" {
			t.Errorf("mfence left buffered work: %q", o)
		}
	}
}
