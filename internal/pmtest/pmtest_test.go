package pmtest

import (
	"strings"
	"testing"

	"yashme/internal/engine"
	"yashme/internal/pmm"
)

func oneField(name string) (func(h *pmm.Heap), *pmm.Addr) {
	var addr pmm.Addr
	return func(h *pmm.Heap) {
		addr = h.AllocStruct(name, pmm.Layout{{Name: "x", Size: 8}}).F("x")
	}, &addr
}

func TestAssertPersistedPasses(t *testing.T) {
	setup, x := oneField("o")
	v := Check(setup, func(t *pmm.Thread, c *Checker) {
		t.Store64(*x, 1)
		t.CLFlush(*x)
		c.AssertPersisted(*x)
	})
	if len(v) != 0 {
		t.Fatalf("violations = %v", v)
	}
}

func TestAssertPersistedCatchesMissingFlush(t *testing.T) {
	setup, x := oneField("o")
	v := Check(setup, func(t *pmm.Thread, c *Checker) {
		t.Store64(*x, 1)
		c.AssertPersisted(*x) // no flush: violation
	})
	if len(v) != 1 || v[0].Rule != "isPersist" {
		t.Fatalf("violations = %v", v)
	}
	if !strings.Contains(v[0].Line, "o.x") {
		t.Fatalf("violation lacks field name: %v", v[0])
	}
}

func TestAssertPersistedCatchesCLWBWithoutFence(t *testing.T) {
	setup, x := oneField("o")
	v := Check(setup, func(t *pmm.Thread, c *Checker) {
		t.Store64(*x, 1)
		t.CLWB(*x) // no fence
		c.AssertPersisted(*x)
	})
	if len(v) != 1 {
		t.Fatalf("violations = %v", v)
	}
	v = Check(setup, func(t *pmm.Thread, c *Checker) {
		t.Store64(*x, 1)
		t.CLWB(*x)
		t.SFence()
		c.AssertPersisted(*x)
	})
	if len(v) != 0 {
		t.Fatalf("clwb+sfence flagged: %v", v)
	}
}

func TestAssertOrderedBefore(t *testing.T) {
	var a, b pmm.Addr
	setup := func(h *pmm.Heap) {
		o := h.AllocStruct("o", pmm.Layout{{Name: "a", Size: 8}})
		a = o.F("a")
		p := h.AllocStruct("p", pmm.Layout{{Name: "b", Size: 8}})
		b = p.F("b") // different cache line
	}
	// Correct: a persisted before b written.
	v := Check(setup, func(t *pmm.Thread, c *Checker) {
		t.Store64(a, 1)
		t.Persist(a, 8)
		t.Store64(b, 2)
		c.AssertOrderedBefore(a, b)
	})
	if len(v) != 0 {
		t.Fatalf("correct ordering flagged: %v", v)
	}
	// Buggy: b written before a's flush.
	v = Check(setup, func(t *pmm.Thread, c *Checker) {
		t.Store64(a, 1)
		t.Store64(b, 2)
		t.Persist(a, 8)
		c.AssertOrderedBefore(a, b)
	})
	if len(v) != 1 || v[0].Rule != "isOrderedBefore" {
		t.Fatalf("misordering not flagged: %v", v)
	}
}

func TestSameLineCoherenceOrdering(t *testing.T) {
	var key, value pmm.Addr
	setup := func(h *pmm.Heap) {
		pair := h.AllocStruct("Pair", pmm.Layout{{Name: "key", Size: 8}, {Name: "value", Size: 8}})
		key, value = pair.F("key"), pair.F("value")
	}
	// The CCEH argument: value committed before key, same line — ordered
	// by coherence even with no flush in between. PMTest accepts it...
	v := Check(setup, func(t *pmm.Thread, c *Checker) {
		t.Store64(value, 10)
		t.Store64(key, 1)
		c.AssertOrderedBefore(value, key)
	})
	if len(v) != 0 {
		t.Fatalf("coherence ordering flagged: %v", v)
	}
}

// The punchline of the comparison (§1): the fully-annotated CCEH insert
// passes every PMTest rule a developer would write — the flush is there,
// the ordering holds — while Yashme still reports both persistency races
// on the same protocol. Rule checking validates the protocol the developer
// INTENDED; it cannot see that the compiler may tear the stores.
func TestRuleCheckingCannotSeePersistencyRaces(t *testing.T) {
	var key, value pmm.Addr
	setup := func(h *pmm.Heap) {
		pair := h.AllocStruct("Pair", pmm.Layout{{Name: "key", Size: 8}, {Name: "value", Size: 8}})
		key, value = pair.F("key"), pair.F("value")
	}
	violations := Check(setup, func(t *pmm.Thread, c *Checker) {
		t.CAS64(key, 0, ^uint64(0)) // lock the slot
		t.Store64(value, 10)
		t.MFence()
		t.Store64(key, 1)
		t.CLFlush(key)
		c.AssertOrderedBefore(value, key) // holds: same line, value first
		c.AssertPersisted(key)            // holds: clflush committed
		c.AssertPersisted(value)          // holds: same line flushed
	})
	if len(violations) != 0 {
		t.Fatalf("annotated CCEH insert failed PMTest rules: %v", violations)
	}

	// Same protocol under Yashme: two persistency races.
	mk := func() pmm.Program {
		var k, v pmm.Addr
		return pmm.Program{
			Name: "cceh-annotated",
			Setup: func(h *pmm.Heap) {
				pair := h.AllocStruct("Pair", pmm.Layout{{Name: "key", Size: 8}, {Name: "value", Size: 8}})
				k, v = pair.F("key"), pair.F("value")
			},
			Workers: []func(*pmm.Thread){func(t *pmm.Thread) {
				t.CAS64(k, 0, ^uint64(0))
				t.Store64(v, 10)
				t.MFence()
				t.Store64(k, 1)
				t.CLFlush(k)
			}},
			PostCrash: func(t *pmm.Thread) {
				if t.Load64(k) == 1 {
					t.Load64(v)
				}
			},
		}
	}
	res := engine.Run(mk, engine.Options{Mode: engine.ModelCheck, Prefix: true})
	if res.Report.Count() != 2 {
		t.Fatalf("yashme races on the rule-clean protocol = %d, want 2", res.Report.Count())
	}
}

func TestUnwrittenAddressVacuouslyOK(t *testing.T) {
	setup, x := oneField("o")
	v := Check(setup, func(t *pmm.Thread, c *Checker) {
		c.AssertPersisted(*x)
		c.AssertOrderedBefore(*x, *x)
	})
	if len(v) != 0 {
		t.Fatalf("vacuous rules flagged: %v", v)
	}
}
