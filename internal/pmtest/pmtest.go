// Package pmtest implements a PMTest-style rule checker (Liu et al.,
// ASPLOS '19), the annotation-driven baseline of the paper's related work
// (§8): "PMTest lets developers annotate a program with checking rules to
// infer the persistency status of writes and ordering constraints between
// writes."
//
// Two rules are supported, mirroring the original's isPersist and
// isOrderedBefore:
//
//   - AssertPersisted(addr): every store to addr so far must be durably
//     persisted at this program point;
//   - AssertOrderedBefore(a, b): the latest store to a must be guaranteed
//     to persist no later than the latest store to b (a was persisted
//     before b was even written, or both sit on one cache line with a's
//     store committed first — the coherence argument CCEH relies on).
//
// Like PMTest (and unlike Yashme), the checker validates the rules the
// developer wrote against the current execution only: it finds
// missing-flush and misordering bugs, but has no concept of a non-atomic
// store being torn — annotate-and-check "fundamentally cannot detect
// persistency races" (§1).
package pmtest

import (
	"fmt"

	"yashme/internal/pmm"
	"yashme/internal/tso"
	"yashme/internal/vclock"
)

// Violation is one failed rule.
type Violation struct {
	Rule string
	Line string // the rule's textual description
}

func (v Violation) String() string { return v.Rule + ": " + v.Line }

// state tracks one address's persistence, like xfd but with commit order
// retained for ordering rules.
type state struct {
	seq       vclock.Seq
	persisted bool
	// persistSeq is the commit order position at which persistence was
	// guaranteed (flush completion), 0 if not persisted.
	persistSeq vclock.Seq
}

// Checker validates PMTest-style rules against a TSO event stream. It
// implements tso.Listener.
type Checker struct {
	labeler    func(pmm.Addr) string
	stores     map[pmm.Addr]*state
	pendingWB  map[vclock.TID][]pmm.Addr
	violations []Violation
}

// New returns an empty checker. labeler may be nil.
func New(labeler func(pmm.Addr) string) *Checker {
	if labeler == nil {
		labeler = func(a pmm.Addr) string { return fmt.Sprintf("0x%x", uint64(a)) }
	}
	return &Checker{
		labeler:   labeler,
		stores:    make(map[pmm.Addr]*state),
		pendingWB: make(map[vclock.TID][]pmm.Addr),
	}
}

// Violations returns the failed rules in detection order.
func (c *Checker) Violations() []Violation { return c.violations }

// StoreCommitted implements tso.Listener.
func (c *Checker) StoreCommitted(rec *tso.CommittedStore) {
	c.stores[rec.Addr] = &state{seq: rec.Seq}
}

// CLFlushCommitted implements tso.Listener.
func (c *Checker) CLFlushCommitted(_ vclock.TID, addr pmm.Addr, seq vclock.Seq, _ vclock.Stamp) {
	c.persistLine(addr, seq)
}

// CLWBBuffered implements tso.Listener.
func (c *Checker) CLWBBuffered(tid vclock.TID, addr pmm.Addr, _ vclock.Stamp) {
	c.pendingWB[tid] = append(c.pendingWB[tid], addr)
}

// CLWBPersisted implements tso.Listener.
func (c *Checker) CLWBPersisted(flush tso.FBEntry, _ vclock.TID, fenceSeq vclock.Seq, _ vclock.Stamp) {
	c.persistLine(flush.Addr, fenceSeq)
}

// FenceCommitted implements tso.Listener.
func (c *Checker) FenceCommitted(tid vclock.TID, seq vclock.Seq, _ vclock.Stamp) {
	for _, a := range c.pendingWB[tid] {
		c.persistLine(a, seq)
	}
	c.pendingWB[tid] = nil
}

func (c *Checker) persistLine(addr pmm.Addr, at vclock.Seq) {
	line := pmm.LineOf(addr)
	for a, s := range c.stores {
		if pmm.LineOf(a) == line && !s.persisted {
			s.persisted = true
			s.persistSeq = at
		}
	}
}

var _ tso.Listener = (*Checker)(nil)

// AssertPersisted checks the isPersist rule at the current point.
func (c *Checker) AssertPersisted(addr pmm.Addr) bool {
	s, ok := c.stores[addr]
	if !ok {
		return true // never written: vacuously persisted
	}
	if s.persisted {
		return true
	}
	c.violations = append(c.violations, Violation{
		Rule: "isPersist",
		Line: fmt.Sprintf("store to %s (σ%d) is not persisted", c.labeler(addr), s.seq),
	})
	return false
}

// AssertOrderedBefore checks the isOrderedBefore rule: the latest store to
// a must be guaranteed durable no later than the latest store to b.
func (c *Checker) AssertOrderedBefore(a, b pmm.Addr) bool {
	sa, okA := c.stores[a]
	sb, okB := c.stores[b]
	if !okA || !okB {
		return true
	}
	// Same cache line + a committed first: coherence orders persistence.
	if pmm.SameLine(a, b) && sa.seq < sb.seq {
		return true
	}
	// Otherwise a must have been persisted before b was written.
	if sa.persisted && sa.persistSeq < sb.seq {
		return true
	}
	c.violations = append(c.violations, Violation{
		Rule: "isOrderedBefore",
		Line: fmt.Sprintf("%s (σ%d) not guaranteed to persist before %s (σ%d)",
			c.labeler(a), sa.seq, c.labeler(b), sb.seq),
	})
	return false
}

// --- harness ---

// Annotated is a workload with embedded rule checks: the function receives
// the thread and the checker and calls Assert* at the points the developer
// annotated.
type Annotated func(t *pmm.Thread, c *Checker)

// Check runs an annotated single-threaded workload to completion and
// returns the rule violations. PMTest checks the given execution; there is
// no crash exploration at all — the rules themselves encode what should
// have been ordered or persisted.
func Check(setup func(h *pmm.Heap), body Annotated) []Violation {
	heap := pmm.NewHeap()
	if setup != nil {
		setup(heap)
	}
	checker := New(heap.LabelFor)
	ops := &seqOps{m: tso.NewMachine(checker)}
	for _, w := range heap.InitWrites() {
		ops.m.SeedMemory(w.Addr, w.Size, w.Val)
	}
	body(pmm.NewThread(ops, heap), checker)
	return checker.Violations()
}

// seqOps executes thread operations directly (sequential, eager commit).
type seqOps struct {
	m       *tso.Machine
	guarded bool
}

var _ pmm.Ops = (*seqOps)(nil)

func (o *seqOps) TID() int { return 0 }
func (o *seqOps) Store(a pmm.Addr, size int, v uint64, atomic, release bool) {
	o.m.EnqueueStore(0, a, size, v, atomic, release)
	o.m.DrainSB(0)
}
func (o *seqOps) Load(a pmm.Addr, size int, atomic, acquire bool) uint64 {
	v, _ := o.m.Load(0, a, size, acquire)
	return v
}
func (o *seqOps) RMW(a pmm.Addr, size int, f func(uint64) (uint64, bool)) (uint64, bool) {
	return o.m.RMW(0, a, size, f)
}
func (o *seqOps) CLFlush(a pmm.Addr) {
	o.m.EnqueueCLFlush(0, a)
	o.m.DrainSB(0)
}
func (o *seqOps) CLWB(a pmm.Addr) {
	o.m.EnqueueCLWB(0, a)
	o.m.DrainSB(0)
}
func (o *seqOps) SFence() {
	o.m.EnqueueSFence(0)
	o.m.DrainSB(0)
}
func (o *seqOps) MFence()                 { o.m.MFence(0) }
func (o *seqOps) Yield()                  {}
func (o *seqOps) SetChecksumGuard(b bool) { o.guarded = b }
