// Package analysis defines the engine's pluggable analysis-pass
// architecture: one simulated execution, N detectors.
//
// Historically the engine hard-wired the Yashme detector (internal/core):
// the scenario owned a *core.Detector, wired it into the TSO machine as the
// tso.Listener, and called its crash-time checks directly. Every other
// analysis — the XFDetector-style cross-failure detector the paper compares
// against (§1, §8), or a future missing-flush advisor in the style of
// Guo et al.'s fence-insertion work — had to bring its own runner, outside
// the workers / checkpoint / memoization machinery.
//
// This package turns the detector slot into a stack:
//
//   - Pass is the interface an analysis implements: the tso.Listener event
//     hooks (so it observes the same commit-order event stream the Yashme
//     detector reasons about), crash-time read checking, and the
//     Clone/signature/footprint support that lets passes ride the engine's
//     delta checkpoints and crash-image memoization;
//   - Register/NewStack is the registry the engine constructs passes
//     through ("yashme" is built in; other passes self-register from init
//     functions, linked via yashme/internal/analysis/all);
//   - Stack is what a scenario owns: the Yashme core model — always
//     present, because the engine's image derivation and candidate
//     provenance are functions of its execution state — plus the selected
//     extra passes, fanned out behind one tso.Listener.
//
// The default stack ("yashme" alone) collapses to exactly the old shape:
// the listener IS the core detector, no fan-out, no extra clones, no extra
// signature bytes — byte-identical results and allocation counts.
package analysis

import (
	"fmt"
	"sort"
	"sync"

	"yashme/internal/core"
	"yashme/internal/pmm"
	"yashme/internal/report"
	"yashme/internal/tso"
	"yashme/internal/vclock"
)

// Yashme is the name of the built-in flagship pass (the core detector).
const Yashme = "yashme"

// Config is what a pass factory gets to build one scenario's pass instance.
// It mirrors core.Config: passes that don't care about a knob ignore it.
type Config struct {
	// Prefix enables prefix-based detection-window expansion (Yashme §4.2).
	Prefix bool
	// EADR adapts detection to eADR platforms (§7.5).
	EADR bool
	// Benchmark names the program under test in reports.
	Benchmark string
	// Labeler renders an address as a field label for reports; may be nil.
	Labeler func(pmm.Addr) string
	// Suppress lists normalized field labels whose races are annotated away.
	Suppress []string
	// OwnedClocks disables the core detector's clock interning (the
	// engine's ClockInternOff escape hatch); see core.Config.OwnedClocks.
	OwnedClocks bool
}

// Pass is one analysis riding the engine's simulation. Beyond the
// tso.Listener event hooks, a pass must support the engine's scenario
// lifecycle: executions end at crashes (EndExecution), post-crash reads are
// classified (CrashRead), and — because scenarios resume from shared
// read-only snapshots — the pass must be cloneable and able to serialize
// its decision-relevant state into the crash-image memoization signature.
type Pass interface {
	tso.Listener

	// Name is the registry name the pass was selected under.
	Name() string
	// Report returns the pass's accumulated race reports.
	Report() *report.Set
	// SeedPersisted marks a Setup-time initial write as durable before the
	// first execution starts (initial values are persisted by definition).
	SeedPersisted(addr pmm.Addr)
	// EndExecution tells the pass the current execution crashed at crashSeq
	// and a post-crash execution begins.
	EndExecution(crashSeq vclock.Seq)
	// CrashRead classifies a post-crash load of addr (guarded marks
	// checksum-validation reads); a non-nil race was added to Report.
	CrashRead(addr pmm.Addr, guarded bool) *report.Race
	// Clone returns an independent deep copy; snapshots store clones and
	// every resume clones again (snapshots are shared, read-only templates).
	Clone() Pass
	// SetLabeler rebinds the report labeler after a resume re-runs Setup
	// against a fresh heap.
	SetLabeler(func(pmm.Addr) string)
	// AppendStateSignature serializes every byte of state the pass's future
	// verdicts depend on, deterministically, for crash-image memoization:
	// two points with equal signatures must be indistinguishable to the
	// pass. (The engine only memoizes when the whole stack agrees.)
	AppendStateSignature(buf []byte) []byte
	// FootprintBytes estimates the retained size of one clone, for
	// Stats.SnapshotBytes accounting.
	FootprintBytes() int64
}

// Factory builds a fresh pass instance for one scenario.
type Factory func(cfg Config) Pass

var (
	regMu    sync.Mutex
	registry = map[string]Factory{}
)

// Register adds a pass factory under name. Pass packages call it from init
// (link them via yashme/internal/analysis/all); a duplicate or reserved
// name panics — the registry is the single source of truth.
func Register(name string, f Factory) {
	if name == "" || f == nil {
		panic("analysis: Register with empty name or nil factory")
	}
	if name == Yashme {
		panic("analysis: " + Yashme + " is built in")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("analysis: duplicate Register(%q)", name))
	}
	registry[name] = f
}

// Names returns every selectable pass name ("yashme" plus the registered
// passes), sorted.
func Names() []string {
	regMu.Lock()
	defer regMu.Unlock()
	out := make([]string, 0, len(registry)+1)
	out = append(out, Yashme)
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Stack is one scenario's analysis stack. The Yashme core model is always
// constructed — the engine's persisted-image derivation and candidate
// provenance are functions of core.Execution state regardless of which
// passes are selected — but its report and race checks only count when
// "yashme" is among the selected names. Extra passes observe the same event
// stream through a fan-out listener and classify post-crash reads through
// CrashRead.
type Stack struct {
	names    []string // selection order, as validated by NewStack
	model    *core.Detector
	yashme   bool   // "yashme" selected: the model doubles as the flagship pass
	extras   []Pass // non-model passes, selection order
	listener tso.Listener
}

// NewStack validates names against the registry and builds the stack.
// nil or empty names selects the default, {"yashme"}.
func NewStack(names []string, cfg Config) (*Stack, error) {
	if len(names) == 0 {
		names = []string{Yashme}
	}
	s := &Stack{
		names: append([]string(nil), names...),
		model: core.New(core.Config{
			Prefix:      cfg.Prefix,
			EADR:        cfg.EADR,
			Benchmark:   cfg.Benchmark,
			Labeler:     cfg.Labeler,
			Suppress:    cfg.Suppress,
			OwnedClocks: cfg.OwnedClocks,
		}),
	}
	seen := make(map[string]bool, len(names))
	for _, name := range names {
		if seen[name] {
			return nil, fmt.Errorf("analysis: pass %q selected twice", name)
		}
		seen[name] = true
		if name == Yashme {
			s.yashme = true
			continue
		}
		regMu.Lock()
		f, ok := registry[name]
		regMu.Unlock()
		if !ok {
			return nil, fmt.Errorf("analysis: unknown pass %q (have %v)", name, Names())
		}
		s.extras = append(s.extras, f(cfg))
	}
	s.wireListener()
	return s, nil
}

// Rebuild reassembles a stack around already-materialized components — the
// checkpoint layer's resume path, where the model comes from a snapshot's
// keyframe (or keyframe + journal replay) and the extras are fresh clones
// of the snapshot's pass templates. names must be the same selection the
// snapshot was captured under.
func Rebuild(names []string, model *core.Detector, extras []Pass) *Stack {
	if len(names) == 0 {
		names = []string{Yashme}
	}
	s := &Stack{names: append([]string(nil), names...), model: model, extras: extras}
	for _, name := range names {
		if name == Yashme {
			s.yashme = true
		}
	}
	s.wireListener()
	return s
}

// wireListener picks the event path: the bare model when no extras are
// selected (the historical zero-overhead shape), a fan-out otherwise.
func (s *Stack) wireListener() {
	if len(s.extras) == 0 {
		s.listener = s.model
		return
	}
	s.listener = &fanout{model: s.model, extras: s.extras}
}

// Model returns the always-present Yashme core detector. The engine uses it
// for image derivation and candidate provenance even when "yashme" is not
// selected (its report is simply never surfaced then).
func (s *Stack) Model() *core.Detector { return s.model }

// Extras returns the non-model passes in selection order. Shared, read-only.
func (s *Stack) Extras() []Pass { return s.extras }

// Names returns the validated selection order.
func (s *Stack) Names() []string { return s.names }

// YashmeSelected reports whether the flagship pass is part of the stack.
func (s *Stack) YashmeSelected() bool { return s.yashme }

// Listener returns the tso.Listener the machine should publish events to:
// the model itself for a yashme-only stack, the fan-out otherwise.
func (s *Stack) Listener() tso.Listener { return s.listener }

// SeedPersisted marks a Setup-time initial write durable in every pass that
// tracks persistence state (the model derives this itself from the image).
func (s *Stack) SeedPersisted(addr pmm.Addr) {
	for _, p := range s.extras {
		p.SeedPersisted(addr)
	}
}

// EndExecution forwards the crash boundary to the model and every extra.
func (s *Stack) EndExecution(crashSeq vclock.Seq) {
	s.model.EndExecution(crashSeq)
	for _, p := range s.extras {
		p.EndExecution(crashSeq)
	}
}

// CrashRead classifies a post-crash load with every extra pass. (The model's
// candidate-based checks run separately, against the image's provenance —
// see engine.resolvePostCrashLoad — because they need the candidate store
// set, not just the address.)
func (s *Stack) CrashRead(addr pmm.Addr, guarded bool) {
	for _, p := range s.extras {
		p.CrashRead(addr, guarded)
	}
}

// Reports returns each selected pass's report set in selection order.
func (s *Stack) Reports() []*report.Set {
	out := make([]*report.Set, 0, len(s.names))
	ei := 0
	for _, name := range s.names {
		if name == Yashme {
			out = append(out, s.model.Report())
			continue
		}
		out = append(out, s.extras[ei].Report())
		ei++
	}
	return out
}

// PrimaryReport is the first selected pass's report — what engine.Result
// surfaces as Result.Report.
func (s *Stack) PrimaryReport() *report.Set { return s.Reports()[0] }

// CloneExtras deep-copies the extra passes (snapshot capture and resume).
// Returns nil for a yashme-only stack.
func CloneExtras(extras []Pass) []Pass {
	if len(extras) == 0 {
		return nil
	}
	out := make([]Pass, len(extras))
	for i, p := range extras {
		out[i] = p.Clone()
	}
	return out
}

// SetLabeler rebinds every pass's labeler after a resume re-ran Setup.
func (s *Stack) SetLabeler(l func(pmm.Addr) string) {
	s.model.SetLabeler(l)
	for _, p := range s.extras {
		p.SetLabeler(l)
	}
}

// AppendExtrasSignature appends every extra pass's state signature, in
// selection order, to the crash-image memoization buffer. A yashme-only
// stack appends nothing — the default signature bytes are unchanged.
func (s *Stack) AppendExtrasSignature(buf []byte) []byte {
	for _, p := range s.extras {
		buf = p.AppendStateSignature(buf)
	}
	return buf
}

// ExtrasFootprintBytes sums the extras' estimated clone sizes.
func ExtrasFootprintBytes(extras []Pass) int64 {
	var n int64
	for _, p := range extras {
		n += p.FootprintBytes()
	}
	return n
}

// fanout publishes each machine event to the model first (preserving the
// historical event order the Yashme detector saw), then to every extra pass
// in selection order.
type fanout struct {
	model  *core.Detector
	extras []Pass
}

var _ tso.Listener = (*fanout)(nil)

func (f *fanout) StoreCommitted(rec *tso.CommittedStore) {
	f.model.StoreCommitted(rec)
	for _, p := range f.extras {
		p.StoreCommitted(rec)
	}
}

func (f *fanout) CLFlushCommitted(tid vclock.TID, addr pmm.Addr, seq vclock.Seq, cv vclock.Stamp) {
	f.model.CLFlushCommitted(tid, addr, seq, cv)
	for _, p := range f.extras {
		p.CLFlushCommitted(tid, addr, seq, cv)
	}
}

func (f *fanout) CLWBBuffered(tid vclock.TID, addr pmm.Addr, cv vclock.Stamp) {
	f.model.CLWBBuffered(tid, addr, cv)
	for _, p := range f.extras {
		p.CLWBBuffered(tid, addr, cv)
	}
}

func (f *fanout) CLWBPersisted(flush tso.FBEntry, fenceTID vclock.TID, fenceSeq vclock.Seq, fenceCV vclock.Stamp) {
	f.model.CLWBPersisted(flush, fenceTID, fenceSeq, fenceCV)
	for _, p := range f.extras {
		p.CLWBPersisted(flush, fenceTID, fenceSeq, fenceCV)
	}
}

func (f *fanout) FenceCommitted(tid vclock.TID, seq vclock.Seq, cv vclock.Stamp) {
	f.model.FenceCommitted(tid, seq, cv)
	for _, p := range f.extras {
		p.FenceCommitted(tid, seq, cv)
	}
}
