// Package all links every built-in analysis pass into the binary: each
// pass package registers its factory from an init function, so a blank
// import of this package is what makes analysis.Names() complete. The CLIs
// import it (their -analyses flag can name any built-in pass); tests that
// exercise a specific pass import that pass package directly.
package all

import (
	_ "yashme/internal/xfd"
)
