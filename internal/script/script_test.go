package script

import (
	"strings"
	"testing"

	"yashme/internal/engine"
)

const figure1Src = `
program figure1

alloc pmobj val:8
init pmobj.val 0

thread
  store pmobj.val 0x1234567812345678
  clflush pmobj.val

post
  load pmobj.val
`

func TestParseAndRunFigure1(t *testing.T) {
	sc, err := Parse(figure1Src)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Name != "figure1" {
		t.Fatalf("name = %q", sc.Name)
	}
	res := engine.Run(sc.MakeProgram(), engine.Options{Mode: engine.ModelCheck, Prefix: true})
	races := res.Report.Races()
	if len(races) != 1 || races[0].Field != "pmobj.val" {
		t.Fatalf("races = %v", races)
	}
}

func TestArraysAndAllOps(t *testing.T) {
	src := `
program allops
alloc hdr lock:8 count:2 flag:1
array pairs 4 key:8 value:8
init pairs[0].key 7

thread
  cas hdr.lock 0 1
  storeatomic hdr.flag 1
  store hdr.count 3
  store pairs[1].key 0x10
  store pairs[1].value 0x20
  clwb pairs[1].key
  sfence
  persist hdr.count
  clflushopt hdr.lock
  mfence
  memset pairs 0
  yield
  storerel hdr.lock 0

post
  loadacq hdr.lock
  load pairs[1].key
  guard {
    load pairs[1].value
  }
`
	sc, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	res := engine.Run(sc.MakeProgram(), engine.Options{Mode: engine.ModelCheck, Prefix: true, MaxCrashPoints: 20})
	// pairs.key is read unguarded (harmful when racy); pairs.value only
	// under the checksum guard (benign).
	for _, r := range res.Report.Races() {
		if r.Field == "pairs.value" {
			t.Fatalf("guarded read reported harmful: %v", r)
		}
	}
	foundBenign := false
	for _, r := range res.Report.Benign() {
		if r.Field == "pairs.value" {
			foundBenign = true
		}
	}
	if !foundBenign {
		t.Fatalf("guarded racy read not classified benign:\n%s", res.Report)
	}
}

func TestMultiThreadAndMultiPost(t *testing.T) {
	src := `
program mt
alloc o x:8 f:8
thread
  store o.x 7
  clflush o.x
thread
  storerel o.f 1
post
  loadacq o.f
post
  load o.x
`
	sc, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	prog := sc.MakeProgram()()
	if len(prog.Workers) != 2 || len(prog.PostCrashWorkers) != 2 {
		t.Fatalf("threads=%d posts=%d", len(prog.Workers), len(prog.PostCrashWorkers))
	}
	res := engine.Run(sc.MakeProgram(), engine.Options{Mode: engine.ModelCheck, Prefix: true})
	found := false
	for _, r := range res.Report.Races() {
		if r.Field == "o.x" {
			found = true
		}
	}
	if !found {
		t.Fatal("script multithreaded race not found")
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"store x.y 1":                               "outside a thread",
		"program a b":                               "usage: program",
		"alloc o":                                   "usage: alloc",
		"alloc o x:3\nthread\n sfence":              "size must be",
		"array a 0 x:8\nthread\n sfence":            "bad array count",
		"alloc o x:8\nthread\n store o.y 1":         "no field",
		"alloc o x:8\nthread\n store q.x 1":         "unknown object",
		"alloc o x:8\nthread\n store o.x":           "usage: store",
		"alloc o x:8\nthread\n frob o.x":            "unknown operation",
		"alloc o x:8\nthread\n store o.x zz":        "bad value",
		"alloc o x:8\nthread\n sfence extra":        "takes no operands",
		"alloc o x:8\nthread\n guard {":             "unclosed guard",
		"alloc o x:8\nthread\n }":                   "unmatched }",
		"alloc o x:8\ninit o.x 1":                   "no thread block",
		"array a 2 x:8\nthread\n store a.x 1":       "is an array",
		"array a 2 x:8\nthread\n store a[5].x 1":    "out of range",
		"alloc o x:8\nalloc o y:8\nthread\n sfence": "duplicate allocation",
	}
	for src, wantErr := range cases {
		_, err := Parse(src)
		if err == nil {
			t.Errorf("no error for %q", src)
			continue
		}
		if !strings.Contains(err.Error(), wantErr) {
			t.Errorf("error for %q = %q, want substring %q", src, err, wantErr)
		}
	}
}

func TestParseErrorHasLineNumber(t *testing.T) {
	_, err := Parse("alloc o x:8\nthread\n store o.x\n")
	pe, ok := err.(*ParseError)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if pe.Line != 3 {
		t.Fatalf("error line = %d, want 3", pe.Line)
	}
}

func TestCommentsAndBlanksIgnored(t *testing.T) {
	src := `
# leading comment
program c   # trailing comment

alloc o x:8

thread
  # a comment between statements
  store o.x 1
`
	sc, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(sc.threads) != 1 || len(sc.threads[0]) != 1 {
		t.Fatalf("parsed shape wrong: %+v", sc.threads)
	}
}

func TestFixedScriptHasNoRaces(t *testing.T) {
	src := `
program fixed
alloc pmobj val:8
thread
  storerel pmobj.val 0x1234567812345678
  clflush pmobj.val
post
  loadacq pmobj.val
`
	sc, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	res := engine.Run(sc.MakeProgram(), engine.Options{Mode: engine.ModelCheck, Prefix: true})
	if res.Report.Count() != 0 {
		t.Fatalf("fixed script raced:\n%s", res.Report)
	}
}
