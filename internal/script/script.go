// Package script parses a small text format describing persistent-memory
// programs and turns it into runnable pmm.Programs, so the yashme CLI can
// check user-written PM code without recompiling anything — the stand-in
// for pointing the original tool's LLVM pass at your own program.
//
// Format (line-based, '#' comments):
//
//	program figure1
//
//	alloc pmobj val:8 flag:8      # a struct with named, sized fields
//	array seg 16 key:8 value:8    # an array of 16 structs
//	init pmobj.val 0              # fully-persisted initial value
//
//	thread                        # one pre-crash worker (repeatable)
//	  store pmobj.val 0x1234567812345678
//	  clflush pmobj.val
//
//	post                          # the recovery procedure (repeatable for
//	  load pmobj.val              # multithreaded recovery)
//
// Operations: store / storerel / storeatomic ADDR VALUE;
// load / loadacq ADDR; cas ADDR OLD NEW; clflush / clwb / clflushopt ADDR;
// sfence; mfence; persist ADDR; memset NAME BYTE; yield;
// guard { ... } (checksum-validation reads). ADDR is name.field or
// name[idx].field; VALUE is decimal or 0x-hex.
package script

import (
	"fmt"
	"strconv"
	"strings"

	"yashme/internal/pmm"
)

// Script is a parsed program description.
type Script struct {
	Name    string
	allocs  []allocDecl
	inits   []initDecl
	threads [][]stmt
	post    [][]stmt
}

type allocDecl struct {
	name   string
	count  int // 0 = plain struct
	layout pmm.Layout
	line   int
}

type initDecl struct {
	ref  addrRef
	val  uint64
	line int
}

type addrRef struct {
	obj   string
	index int // -1 = not an array access
	field string
}

func (r addrRef) String() string {
	if r.index >= 0 {
		return fmt.Sprintf("%s[%d].%s", r.obj, r.index, r.field)
	}
	return r.obj + "." + r.field
}

type stmt struct {
	op   string
	addr addrRef
	obj  string // for memset
	args []uint64
	line int
	// guard marks statements inside a guard block.
	guard bool
}

// ParseError is a script syntax or semantic error with its line number.
type ParseError struct {
	Line int
	Msg  string
}

func (e *ParseError) Error() string { return fmt.Sprintf("script: line %d: %s", e.Line, e.Msg) }

func errf(line int, format string, args ...interface{}) error {
	return &ParseError{Line: line, Msg: fmt.Sprintf(format, args...)}
}

// Parse reads the script source.
func Parse(src string) (*Script, error) {
	sc := &Script{Name: "script"}
	var cur *[]stmt
	inGuard := false
	for lineNo, raw := range strings.Split(src, "\n") {
		n := lineNo + 1
		line := raw
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "program":
			if len(fields) != 2 {
				return nil, errf(n, "usage: program NAME")
			}
			sc.Name = fields[1]
		case "alloc", "array":
			decl, err := parseAlloc(fields, n)
			if err != nil {
				return nil, err
			}
			sc.allocs = append(sc.allocs, decl)
		case "init":
			if len(fields) != 3 {
				return nil, errf(n, "usage: init OBJ.FIELD VALUE")
			}
			ref, err := parseAddr(fields[1], n)
			if err != nil {
				return nil, err
			}
			v, err := parseVal(fields[2], n)
			if err != nil {
				return nil, err
			}
			sc.inits = append(sc.inits, initDecl{ref: ref, val: v, line: n})
		case "thread":
			sc.threads = append(sc.threads, nil)
			cur = &sc.threads[len(sc.threads)-1]
			inGuard = false
		case "post":
			sc.post = append(sc.post, nil)
			cur = &sc.post[len(sc.post)-1]
			inGuard = false
		case "guard":
			if cur == nil {
				return nil, errf(n, "guard outside a thread/post block")
			}
			if len(fields) != 2 || fields[1] != "{" {
				return nil, errf(n, "usage: guard {")
			}
			inGuard = true
		case "}":
			if !inGuard {
				return nil, errf(n, "unmatched }")
			}
			inGuard = false
		default:
			if cur == nil {
				return nil, errf(n, "statement %q outside a thread/post block", fields[0])
			}
			st, err := parseStmt(fields, n)
			if err != nil {
				return nil, err
			}
			st.guard = inGuard
			*cur = append(*cur, st)
		}
	}
	if inGuard {
		return nil, errf(0, "unclosed guard block")
	}
	if err := sc.validate(); err != nil {
		return nil, err
	}
	return sc, nil
}

func parseAlloc(fields []string, n int) (allocDecl, error) {
	decl := allocDecl{line: n}
	idx := 1
	if fields[0] == "array" {
		if len(fields) < 4 {
			return decl, errf(n, "usage: array NAME COUNT field:size ...")
		}
		decl.name = fields[1]
		cnt, err := strconv.Atoi(fields[2])
		if err != nil || cnt <= 0 {
			return decl, errf(n, "bad array count %q", fields[2])
		}
		decl.count = cnt
		idx = 3
	} else {
		if len(fields) < 3 {
			return decl, errf(n, "usage: alloc NAME field:size ...")
		}
		decl.name = fields[1]
		idx = 2
	}
	for _, f := range fields[idx:] {
		parts := strings.SplitN(f, ":", 2)
		if len(parts) != 2 {
			return decl, errf(n, "bad field %q (want name:size)", f)
		}
		size, err := strconv.Atoi(parts[1])
		if err != nil {
			return decl, errf(n, "bad field size in %q", f)
		}
		switch size {
		case 1, 2, 4, 8:
		default:
			return decl, errf(n, "field size must be 1, 2, 4 or 8 (got %d)", size)
		}
		decl.layout = append(decl.layout, pmm.FieldDef{Name: parts[0], Size: size})
	}
	return decl, nil
}

func parseAddr(s string, n int) (addrRef, error) {
	ref := addrRef{index: -1}
	dot := strings.LastIndexByte(s, '.')
	if dot <= 0 || dot == len(s)-1 {
		return ref, errf(n, "bad address %q (want OBJ.FIELD)", s)
	}
	ref.field = s[dot+1:]
	obj := s[:dot]
	if br := strings.IndexByte(obj, '['); br >= 0 {
		if !strings.HasSuffix(obj, "]") {
			return ref, errf(n, "bad array index in %q", s)
		}
		idx, err := strconv.Atoi(obj[br+1 : len(obj)-1])
		if err != nil || idx < 0 {
			return ref, errf(n, "bad array index in %q", s)
		}
		ref.index = idx
		obj = obj[:br]
	}
	ref.obj = obj
	return ref, nil
}

func parseVal(s string, n int) (uint64, error) {
	v, err := strconv.ParseUint(s, 0, 64)
	if err != nil {
		return 0, errf(n, "bad value %q", s)
	}
	return v, nil
}

func parseStmt(fields []string, n int) (stmt, error) {
	st := stmt{op: fields[0], line: n, addr: addrRef{index: -1}}
	needAddr := func() error {
		ref, err := parseAddr(fields[1], n)
		if err != nil {
			return err
		}
		st.addr = ref
		return nil
	}
	needVals := func(k int) error {
		for _, f := range fields[2 : 2+k] {
			v, err := parseVal(f, n)
			if err != nil {
				return err
			}
			st.args = append(st.args, v)
		}
		return nil
	}
	switch st.op {
	case "store", "storerel", "storeatomic":
		if len(fields) != 3 {
			return st, errf(n, "usage: %s ADDR VALUE", st.op)
		}
		if err := needAddr(); err != nil {
			return st, err
		}
		return st, needVals(1)
	case "cas":
		if len(fields) != 4 {
			return st, errf(n, "usage: cas ADDR OLD NEW")
		}
		if err := needAddr(); err != nil {
			return st, err
		}
		return st, needVals(2)
	case "load", "loadacq", "clflush", "clwb", "clflushopt", "persist":
		if len(fields) != 2 {
			return st, errf(n, "usage: %s ADDR", st.op)
		}
		return st, needAddr()
	case "sfence", "mfence", "yield":
		if len(fields) != 1 {
			return st, errf(n, "%s takes no operands", st.op)
		}
		return st, nil
	case "memset":
		if len(fields) != 3 {
			return st, errf(n, "usage: memset OBJ BYTE")
		}
		st.obj = fields[1]
		v, err := parseVal(fields[2], n)
		if err != nil {
			return st, err
		}
		if v > 0xFF {
			return st, errf(n, "memset byte out of range")
		}
		st.args = []uint64{v}
		return st, nil
	}
	return st, errf(n, "unknown operation %q", st.op)
}

// validate checks that every referenced object and field exists.
func (sc *Script) validate() error {
	if len(sc.threads) == 0 {
		return errf(0, "no thread block")
	}
	decls := map[string]allocDecl{}
	for _, d := range sc.allocs {
		if _, dup := decls[d.name]; dup {
			return errf(d.line, "duplicate allocation %q", d.name)
		}
		decls[d.name] = d
	}
	checkRef := func(ref addrRef, line int) error {
		d, ok := decls[ref.obj]
		if !ok {
			return errf(line, "unknown object %q", ref.obj)
		}
		if ref.index >= 0 && (d.count == 0 || ref.index >= d.count) {
			return errf(line, "index %d out of range for %q", ref.index, ref.obj)
		}
		if ref.index < 0 && d.count > 0 {
			return errf(line, "%q is an array; use %s[i].%s", ref.obj, ref.obj, ref.field)
		}
		for _, f := range d.layout {
			if f.Name == ref.field {
				return nil
			}
		}
		return errf(line, "object %q has no field %q", ref.obj, ref.field)
	}
	for _, ini := range sc.inits {
		if err := checkRef(ini.ref, ini.line); err != nil {
			return err
		}
	}
	for _, blocks := range [][][]stmt{sc.threads, sc.post} {
		for _, block := range blocks {
			for _, st := range block {
				if st.obj != "" {
					if _, ok := decls[st.obj]; !ok {
						return errf(st.line, "unknown object %q", st.obj)
					}
					continue
				}
				if st.addr.obj != "" {
					if err := checkRef(st.addr, st.line); err != nil {
						return err
					}
				}
			}
		}
	}
	return nil
}

// MakeProgram returns the engine-compatible constructor.
func (sc *Script) MakeProgram() func() pmm.Program {
	return func() pmm.Program {
		structs := map[string]pmm.Struct{}
		arrays := map[string]pmm.Array{}
		sizes := map[string]int{}
		resolve := func(ref addrRef) (pmm.Addr, int) {
			var s pmm.Struct
			if ref.index >= 0 {
				s = arrays[ref.obj].At(ref.index)
			} else {
				s = structs[ref.obj]
			}
			return s.Field(ref.field)
		}
		run := func(block []stmt) func(*pmm.Thread) {
			return func(t *pmm.Thread) {
				for _, st := range block {
					if st.guard {
						st := st
						t.ChecksumGuard(func() { sc.exec(t, st, resolve, structs, arrays, sizes) })
					} else {
						sc.exec(t, st, resolve, structs, arrays, sizes)
					}
				}
			}
		}
		var workers, post []func(*pmm.Thread)
		for _, b := range sc.threads {
			workers = append(workers, run(b))
		}
		for _, b := range sc.post {
			post = append(post, run(b))
		}
		return pmm.Program{
			Name: sc.Name,
			Setup: func(h *pmm.Heap) {
				for _, d := range sc.allocs {
					if d.count > 0 {
						arrays[d.name] = h.AllocArray(d.name, d.layout, d.count)
						sizes[d.name] = arrays[d.name].Stride() * d.count
					} else {
						structs[d.name] = h.AllocStruct(d.name, d.layout)
						sizes[d.name] = structs[d.name].Size()
					}
				}
				for _, ini := range sc.inits {
					var s pmm.Struct
					if ini.ref.index >= 0 {
						s = arrays[ini.ref.obj].At(ini.ref.index)
					} else {
						s = structs[ini.ref.obj]
					}
					addr, size := s.Field(ini.ref.field)
					h.Init(addr, size, ini.val)
				}
			},
			Workers:          workers,
			PostCrashWorkers: post,
		}
	}
}

func (sc *Script) exec(t *pmm.Thread, st stmt, resolve func(addrRef) (pmm.Addr, int),
	structs map[string]pmm.Struct, arrays map[string]pmm.Array, sizes map[string]int) {
	switch st.op {
	case "store":
		a, size := resolve(st.addr)
		t.Store(a, size, st.args[0])
	case "storerel":
		a, size := resolve(st.addr)
		t.StoreRelease(a, size, st.args[0])
	case "storeatomic":
		a, size := resolve(st.addr)
		t.StoreAtomic(a, size, st.args[0])
	case "load":
		a, size := resolve(st.addr)
		t.Load(a, size)
	case "loadacq":
		a, size := resolve(st.addr)
		t.LoadAcquire(a, size)
	case "cas":
		a, size := resolve(st.addr)
		t.CAS(a, size, st.args[0], st.args[1])
	case "clflush":
		a, _ := resolve(st.addr)
		t.CLFlush(a)
	case "clwb":
		a, _ := resolve(st.addr)
		t.CLWB(a)
	case "clflushopt":
		a, _ := resolve(st.addr)
		t.CLFlushOpt(a)
	case "persist":
		a, size := resolve(st.addr)
		t.Persist(a, size)
	case "sfence":
		t.SFence()
	case "mfence":
		t.MFence()
	case "yield":
		t.Yield()
	case "memset":
		var base pmm.Addr
		if s, ok := structs[st.obj]; ok {
			base = s.Base()
		} else {
			base = arrays[st.obj].Base()
		}
		t.Memset(base, sizes[st.obj], byte(st.args[0]))
	}
}
