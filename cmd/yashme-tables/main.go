// Command yashme-tables regenerates the paper's evaluation artifacts from
// the live system: Table 2a/2b (compiler store-optimization study), Table 3
// (RECIPE/CCEH/FAST_FAIR races), Table 4 (PMDK/Memcached/Redis races),
// Table 5 (prefix vs. baseline on single executions plus Yashme-vs-Jaaru
// runtimes) and the §7.5 benign-race inventory.
//
// Usage:
//
//	yashme-tables              # everything
//	yashme-tables -table 5     # one table: 2a, 2b, 3, 4, 5, benign
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"yashme/internal/engine"
	"yashme/internal/tables"
)

// main delegates to run so deferred profile writers fire before exit.
func main() { os.Exit(run()) }

func run() int {
	which := flag.String("table", "all", "table to print: 2a | 2b | 3 | 4 | 5 | window | bugs | benign | all")
	format := flag.String("format", "text", "output format: text | markdown (2b, 3, 4 and 5 only)")
	workers := flag.Int("workers", 0, "crash scenarios run concurrently (0 = GOMAXPROCS, 1 = sequential; results identical)")
	checkpoint := flag.Bool("checkpoint", true, "model-check: resume crash scenarios from pre-crash snapshots (results identical; =false re-simulates every prefix)")
	directrun := flag.Bool("directrun", true, "run a solo runnable thread inline without scheduler handoffs (results identical; =false pays the handshake on every op)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()
	md := *format == "markdown"
	tables.Workers = *workers
	if !*checkpoint {
		tables.Checkpoint = engine.CheckpointOff
	}
	if !*directrun {
		tables.DirectRun = engine.DirectRunOff
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "yashme-tables: %v\n", err)
			return 2
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "yashme-tables: %v\n", err)
			return 2
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "yashme-tables: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "yashme-tables: %v\n", err)
			}
		}()
	}

	emit := func(name string) bool { return *which == "all" || *which == name }
	printed := false

	if emit("2a") {
		fmt.Println("=== Table 2a: compiler store optimizations ===")
		fmt.Print(tables.Table2aText())
		fmt.Println()
		printed = true
	}
	if emit("2b") {
		fmt.Println("=== Table 2b: memory operations, source vs generated code (clang -O3, x86-64 model) ===")
		if md {
			fmt.Print(tables.Table2bMarkdown())
		} else {
			fmt.Print(tables.Table2bText())
		}
		fmt.Println()
		printed = true
	}
	if emit("3") {
		fmt.Println("=== Table 3: races in CCEH, FAST_FAIR and RECIPE (model-checking mode) ===")
		if md {
			fmt.Print(tables.RaceRowsMarkdown(tables.Table3()))
		} else {
			fmt.Print(tables.RaceRowsText(tables.Table3()))
		}
		fmt.Println()
		printed = true
	}
	if emit("4") {
		fmt.Println("=== Table 4: races in PMDK, Redis and Memcached (random mode) ===")
		if md {
			fmt.Print(tables.RaceRowsMarkdown(tables.Table4()))
		} else {
			fmt.Print(tables.RaceRowsText(tables.Table4()))
		}
		fmt.Println()
		printed = true
	}
	if emit("5") {
		fmt.Println("=== Table 5: prefix vs baseline, single execution; Yashme vs Jaaru time ===")
		if md {
			fmt.Print(tables.Table5Markdown(tables.Table5()))
		} else {
			fmt.Print(tables.Table5Text(tables.Table5()))
		}
		fmt.Println()
		printed = true
	}
	if emit("window") {
		fmt.Println("=== E9: detection-window histogram (Figures 5b/6, quantified) ===")
		fmt.Print(tables.WindowText(tables.IndexSpecs()[0])) // CCEH
		fmt.Println()
		printed = true
	}
	if emit("bugs") {
		fmt.Println("=== Artifact appendix (Figs. 11-12): bug index with implementation sites ===")
		fmt.Print(tables.BugIndexText())
		fmt.Println()
		printed = true
	}
	if emit("benign") {
		fmt.Println("=== §7.5: benign checksum-guarded races ===")
		fmt.Print(tables.BenignText(tables.BenignRaces()))
		printed = true
	}
	if !printed {
		fmt.Fprintf(os.Stderr, "yashme-tables: unknown table %q\n", *which)
		return 2
	}
	return 0
}
