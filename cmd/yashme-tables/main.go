// Command yashme-tables regenerates the paper's evaluation artifacts from
// the live system: Table 2a/2b (compiler store-optimization study), Table 3
// (RECIPE/CCEH/FAST_FAIR races), Table 4 (PMDK/Memcached/Redis races),
// Table 5 (prefix vs. baseline on single executions plus Yashme-vs-Jaaru
// runtimes) and the §7.5 benign-race inventory. The detector runs happen
// once, up front, through internal/suite — concurrently under a shared
// worker budget — and every table is rendered from that one result.
//
// Usage:
//
//	yashme-tables                     # everything
//	yashme-tables -table 5            # one table: 2a, 2b, 3, 4, 5, window, bugs, benign, xfd
//	yashme-tables -table xfd          # Yashme vs XFDetector from one stacked run (-analyses yashme,xfd)
//	yashme-tables -json               # the unified suite result as JSON
//	yashme-tables -json -shard 1/2    # one deterministic shard (CI matrix)
//	yashme-tables -tags table3,pmdk   # restrict the suite by workload tags
package main

import (
	"flag"
	"fmt"
	"os"

	"yashme/internal/cliutil"
	"yashme/internal/suite"
	"yashme/internal/tables"
	"yashme/internal/workload"

	// Link the non-default analysis passes (-analyses, the xfd table).
	_ "yashme/internal/analysis/all"
)

// main delegates to run so deferred profile writers fire before exit.
func main() { os.Exit(run()) }

// tableSelection maps a -table value to the workload tags and variant
// groups its rendering needs, so narrow invocations only run the engine
// work they print.
var tableSelection = map[string]struct {
	tags     []string
	variants []string
}{
	"2a":     {nil, []string{}},
	"2b":     {nil, []string{}},
	"3":      {[]string{workload.TagTable3}, []string{suite.VariantRaces}},
	"4":      {[]string{workload.TagTable4}, []string{suite.VariantRaces}},
	"5":      {[]string{workload.TagTable5}, []string{suite.VariantTable5}},
	"window": {[]string{workload.TagWindow}, []string{suite.VariantRaces, suite.VariantWindow}},
	"bugs":   {[]string{workload.TagTable3, workload.TagTable4}, []string{suite.VariantRaces}},
	"benign": {[]string{workload.TagBenign}, []string{suite.VariantBenign}},
	"xfd":    {[]string{workload.TagXFD}, []string{suite.VariantRaces}},
	"all":    {nil, nil},
}

func run() int {
	which := flag.String("table", "all", "table to print: 2a | 2b | 3 | 4 | 5 | window | bugs | benign | xfd | all")
	format := flag.String("format", "text", "output format: text | markdown (2b, 3, 4 and 5 only)")
	seq := flag.Bool("seq", false, "run benchmarks sequentially (identical results; per-run timings don't overlap)")
	shared := cliutil.Register()
	flag.Parse()
	md := *format == "markdown"

	sel, ok := tableSelection[*which]
	if !ok {
		fmt.Fprintf(os.Stderr, "yashme-tables: unknown table %q\n", *which)
		return 2
	}
	cfg, err := shared.SuiteConfig()
	if err != nil {
		fmt.Fprintf(os.Stderr, "yashme-tables: %v\n", err)
		return 2
	}
	cfg.Sequential = *seq
	if cfg.Tags == nil {
		cfg.Tags = sel.tags
	}
	cfg.Variants = sel.variants
	// The comparison table needs both detectors in the stack; default the
	// pass selection for it unless -analyses chose explicitly.
	if *which == "xfd" && len(cfg.Analyses) == 0 {
		cfg.Analyses = []string{"yashme", "xfd"}
	}

	stop, err := shared.StartProfiles("yashme-tables")
	if err != nil {
		fmt.Fprintf(os.Stderr, "yashme-tables: %v\n", err)
		return 2
	}
	defer stop()

	// SIGINT/SIGTERM and -timeout cancel the suite at the next scenario
	// boundary; the tables below then render the partial result.
	ctx, cancelRun := shared.RunContext()
	defer cancelRun()

	// Tables 2a/2b are compiler-study renderings: their selection has a
	// non-nil empty variant list, meaning no detector runs at all.
	res := &suite.Result{}
	if sel.variants == nil || len(sel.variants) > 0 {
		res = suite.RunContext(ctx, cfg)
	}
	if res.Cancelled {
		fmt.Fprintln(os.Stderr, "yashme-tables: run interrupted — output below is partial")
	}

	if shared.JSON {
		out, err := res.JSON()
		if err != nil {
			fmt.Fprintf(os.Stderr, "yashme-tables: %v\n", err)
			return 2
		}
		os.Stdout.Write(out)
		fmt.Println()
		if res.Cancelled {
			return 3
		}
		return 0
	}

	emit := func(name string) bool { return *which == "all" || *which == name }

	if emit("2a") {
		fmt.Println("=== Table 2a: compiler store optimizations ===")
		fmt.Print(tables.Table2aText())
		fmt.Println()
	}
	if emit("2b") {
		fmt.Println("=== Table 2b: memory operations, source vs generated code (clang -O3, x86-64 model) ===")
		if md {
			fmt.Print(tables.Table2bMarkdown())
		} else {
			fmt.Print(tables.Table2bText())
		}
		fmt.Println()
	}
	if emit("3") {
		fmt.Println("=== Table 3: races in CCEH, FAST_FAIR and RECIPE (model-checking mode) ===")
		if md {
			fmt.Print(tables.RaceRowsMarkdown(tables.Table3(res)))
		} else {
			fmt.Print(tables.RaceRowsText(tables.Table3(res)))
		}
		fmt.Println()
	}
	if emit("4") {
		fmt.Println("=== Table 4: races in PMDK, Redis and Memcached (random mode) ===")
		if md {
			fmt.Print(tables.RaceRowsMarkdown(tables.Table4(res)))
		} else {
			fmt.Print(tables.RaceRowsText(tables.Table4(res)))
		}
		fmt.Println()
	}
	if emit("5") {
		fmt.Println("=== Table 5: prefix vs baseline, single execution; Yashme vs Jaaru time ===")
		if md {
			fmt.Print(tables.Table5Markdown(tables.Table5(res)))
		} else {
			fmt.Print(tables.Table5Text(tables.Table5(res)))
		}
		fmt.Println()
	}
	if emit("window") {
		fmt.Println("=== E9: detection-window histogram (Figures 5b/6, quantified) ===")
		fmt.Print(tables.WindowText(res, "CCEH"))
		fmt.Println()
	}
	if emit("bugs") {
		fmt.Println("=== Artifact appendix (Figs. 11-12): bug index with implementation sites ===")
		fmt.Print(tables.BugIndexText(res))
		fmt.Println()
	}
	if emit("xfd") {
		// In -table all the suite ran the default yashme-only stack, so the
		// comparison has no per-pass rows to render; it only prints when the
		// run actually stacked both detectors.
		if rows := tables.Comparison(res); len(rows) > 0 || *which == "xfd" {
			fmt.Println("=== E23: Yashme vs XFDetector, one simulation (§1/§8) ===")
			if md {
				fmt.Print(tables.ComparisonMarkdown(rows))
			} else {
				fmt.Print(tables.ComparisonText(rows))
			}
			fmt.Println()
		}
	}
	if emit("benign") {
		fmt.Println("=== §7.5: benign checksum-guarded races ===")
		fmt.Print(tables.BenignText(tables.BenignRaces(res)))
	}
	if res.Cancelled {
		return 3
	}
	return 0
}
