// Command yashme runs the persistency-race detector over any of the
// reproduced benchmarks, mirroring the paper's tooling: model-checking mode
// injects a crash before every flush/fence point; random mode explores
// seeded random executions with random crash points (§4, §7.1).
//
// Usage:
//
//	yashme -list
//	yashme -bench CCEH
//	yashme -bench Memcached -mode random -executions 40 -seed 7
//	yashme -bench Fast_Fair -prefix=false        # Table 5 baseline
//	yashme -bench Redis -benign                  # include benign races
//	yashme -bench CCEH -workers 1                # sequential (identical results)
//	yashme -file prog.ym -witness                # check a script (internal/script format)
//	yashme -tags table3 -json                    # suite mode: paper-mode sweep over a tag set
//	yashme -tags table4 -shard 1/2 -json         # one deterministic shard of it
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"yashme/internal/cliutil"
	"yashme/internal/engine"
	"yashme/internal/script"
	"yashme/internal/suite"
	"yashme/internal/workload"

	// Link every built-in benchmark's registration and every non-default
	// analysis pass (-analyses).
	_ "yashme/internal/analysis/all"
	_ "yashme/internal/workload/all"
)

// main delegates to run so deferred profile writers fire before exit.
func main() { os.Exit(run()) }

func run() int {
	var (
		list       = flag.Bool("list", false, "list available benchmarks and exit")
		bench      = flag.String("bench", "", "benchmark to check (see -list)")
		file       = flag.String("file", "", "check a user-written PM program script instead of a benchmark (see internal/script)")
		mode       = flag.String("mode", "", "model | random (default: the paper's mode for the benchmark)")
		prefix     = flag.Bool("prefix", true, "enable prefix-based detection-window expansion (§4.2)")
		seed       = flag.Int64("seed", 1, "scheduler / crash-point seed")
		executions = flag.Int("executions", 20, "random-mode executions")
		maxPoints  = flag.Int("max-crash-points", 0, "cap model-check crash points (0 = all)")
		benign     = flag.Bool("benign", false, "also print benign (checksum-guarded) races")
		jaaru      = flag.Bool("jaaru", false, "detector off: run the bare checking infrastructure")
		witness    = flag.Bool("witness", false, "record executions and print a witness per race (§5.1)")
		eadr       = flag.Bool("eadr", false, "detect only races possible on eADR platforms (§7.5)")
		suppress   = flag.String("suppress", "", "comma-separated field labels whose races are annotated away (§7.5)")
		schedules  = flag.Int("schedules", 1, "model-check: number of distinct thread schedules to explore")
		reads      = flag.Bool("explore-reads", false, "model-check: explore per-line persist-point read choices (Jaaru-style)")
		maxOps     = flag.Int("maxops", 0, "per-execution simulated-operation bound (0 = engine default)")
	)
	shared := cliutil.Register()
	flag.Parse()

	stop, err := shared.StartProfiles("yashme")
	if err != nil {
		fmt.Fprintf(os.Stderr, "yashme: %v\n", err)
		return 2
	}
	defer stop()

	// SIGINT/SIGTERM and -timeout cancel the run at the next scenario
	// boundary: partial results still print, the exit code says truncated.
	ctx, cancelRun := shared.RunContext()
	defer cancelRun()

	specs := workload.All()
	if *file != "" {
		src, err := os.ReadFile(*file)
		if err != nil {
			fmt.Fprintf(os.Stderr, "yashme: %v\n", err)
			return 2
		}
		parsed, err := script.Parse(string(src))
		if err != nil {
			fmt.Fprintf(os.Stderr, "yashme: %v\n", err)
			return 2
		}
		specs = []workload.Spec{{Name: parsed.Name, Make: parsed.MakeProgram(), ModelCheck: true}}
		*bench = parsed.Name
	}
	if *list {
		fmt.Println("available benchmarks:")
		for _, s := range specs {
			m := "random"
			if s.ModelCheck {
				m = "model"
			}
			fmt.Printf("  %-15s (paper mode: %s, tags: %s)\n", s.Name, m, strings.Join(s.Tags, ","))
		}
		return 0
	}

	// Suite mode: -tags/-shard select a registered sweep instead of a
	// single benchmark; the paper-mode race runs execute concurrently under
	// the shared worker budget.
	if *bench == "" && (shared.Tags != "" || shared.Shard != "" || shared.JSON) {
		cfg, err := shared.SuiteConfig()
		if err != nil {
			fmt.Fprintf(os.Stderr, "yashme: %v\n", err)
			return 2
		}
		cfg.Variants = []string{suite.VariantRaces}
		res := suite.RunContext(ctx, cfg)
		if res.Cancelled {
			fmt.Fprintln(os.Stderr, "yashme: run interrupted — results below are partial")
		}
		if shared.JSON {
			out, err := res.JSON()
			if err != nil {
				fmt.Fprintf(os.Stderr, "yashme: %v\n", err)
				return 2
			}
			os.Stdout.Write(out)
			fmt.Println()
		} else {
			for _, b := range res.Benchmarks {
				if run := b.Run(suite.RunRaces); run != nil {
					fmt.Printf("%-15s %d races, %d executions, %s\n",
						b.Name, run.RaceCount, run.Executions,
						time.Duration(run.ElapsedNs).Round(time.Microsecond))
					for _, a := range run.Analyses {
						fmt.Printf("    %-11s %d races\n", a.Name, a.RaceCount)
					}
				}
			}
			fmt.Printf("total: %d races\n", res.TotalRaces(suite.RunRaces))
		}
		if res.Cancelled {
			return 3
		}
		if res.TotalRaces(suite.RunRaces) > 0 {
			return 1
		}
		return 0
	}

	var spec *workload.Spec
	for i := range specs {
		if specs[i].Name == *bench {
			spec = &specs[i]
			break
		}
	}
	if spec == nil {
		fmt.Fprintf(os.Stderr, "yashme: unknown benchmark %q (use -list)\n", *bench)
		return 2
	}

	opts := engine.Options{
		Prefix:         *prefix,
		Seed:           *seed,
		Executions:     *executions,
		MaxCrashPoints: *maxPoints,
		DetectorOff:    *jaaru,
		Trace:          *witness,
		EADR:           *eadr,
		Schedules:      *schedules,
		ExploreReads:   *reads,
		MaxOps:         *maxOps,
	}
	shared.EngineOptions(&opts)
	if *suppress != "" {
		opts.Suppress = strings.Split(*suppress, ",")
	}
	switch {
	case *mode == "model" || (*mode == "" && spec.ModelCheck):
		opts.Mode = engine.ModelCheck
	case *mode == "random" || *mode == "":
		opts.Mode = engine.RandomMode
	default:
		fmt.Fprintf(os.Stderr, "yashme: unknown mode %q\n", *mode)
		return 2
	}

	start := time.Now()
	res := engine.RunContext(ctx, spec.Make, opts)
	elapsed := time.Since(start)

	if res.Cancelled {
		fmt.Fprintln(os.Stderr, "yashme: run interrupted — results below are partial")
	}
	fmt.Printf("benchmark %s, mode %s, prefix=%v: %d executions, %d crash points, %s\n",
		spec.Name, opts.Mode, *prefix, res.ExecutionsRun, res.CrashPoints, elapsed.Round(time.Microsecond))
	fmt.Printf("ops: %d stores, %d loads, %d flushes, %d fences, %d RMWs\n",
		res.Stats.Stores, res.Stats.Loads, res.Stats.Flushes, res.Stats.Fences, res.Stats.RMWs)
	races := res.Report.Races()
	fmt.Printf("persistency races: %d\n", len(races))
	for _, r := range races {
		fmt.Printf("  %s\n", r)
		if *witness && r.Witness != "" {
			for _, line := range strings.Split(strings.TrimRight(r.Witness, "\n"), "\n") {
				fmt.Printf("    %s\n", line)
			}
		}
	}
	// With a stacked -analyses selection, the primary pass's report is the
	// main listing above; the extra passes get their own sections.
	total := len(races)
	if len(res.Passes) > 1 {
		for _, p := range res.Passes[1:] {
			fmt.Printf("%s races: %d\n", p.Name, p.Report.Count())
			for _, r := range p.Report.Races() {
				fmt.Printf("  %s\n", r)
			}
			total += p.Report.Count()
		}
	}
	if *benign {
		fmt.Printf("benign (checksum-guarded) races: %d\n", res.Report.BenignCount())
		for _, r := range res.Report.Benign() {
			fmt.Printf("  %s\n", r)
		}
	}
	if res.Cancelled {
		return 3
	}
	if total > 0 {
		return 1
	}
	return 0
}
