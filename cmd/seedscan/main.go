// Command seedscan is a development helper: it scans scheduler seeds for
// each Table 5 benchmark and prints the single-execution prefix/baseline
// race counts per seed, used to pick the Table5Seed values recorded in the
// workload registry.
package main

import (
	"fmt"

	"yashme/internal/engine"
	"yashme/internal/workload"

	// Link every built-in benchmark's registration.
	_ "yashme/internal/workload/all"
)

func main() {
	for _, spec := range workload.Tagged(workload.TagTable5) {
		fmt.Printf("%-15s (paper %d/%d): ", spec.Name, spec.PaperPrefix, spec.PaperBaseline)
		for seed := int64(1); seed <= 20; seed++ {
			p := engine.Run(spec.Make, engine.Options{Mode: engine.RandomMode, Prefix: true, Seed: seed, Executions: 1})
			b := engine.Run(spec.Make, engine.Options{Mode: engine.RandomMode, Prefix: false, Seed: seed, Executions: 1})
			fmt.Printf("s%d=%d/%d ", seed, p.Report.Count(), b.Report.Count())
		}
		fmt.Println()
	}
}
