// Command benchguard is the CI perf canary for the suite's Table 3 sweep:
// it compares a freshly generated BENCH_suite.json against the committed
// baseline and exits non-zero if correctness or performance regressed.
//
//	go test -run xxx -bench BenchmarkSuiteTable3 .
//	go run ./cmd/benchguard -baseline <committed>.json -fresh BENCH_suite.json
//
// Five checks:
//
//   - every mode of the fresh artifact must report exactly 19 races — the
//     paper's Table 3 row count. A drift in either direction means a
//     detector or equivalence bug, not noise. The per-benchmark breakdown
//     the suite layer emits is printed alongside so a drift names its
//     benchmark immediately;
//   - the stacked mode (analysis stack yashme,xfd over the one simulation)
//     must additionally report exactly -xfd-races cross-failure races: the
//     19-race gate proves the extra pass didn't perturb the primary
//     detector, this one pins the extra pass's own output;
//   - checkpoint-on modes must report deduped_scenarios > 0: crash-image
//     memoization going inert is a silent perf regression the wall-clock
//     bar would not catch (-require-dedup=false to waive);
//   - for every mode present in both artifacts, fresh ns_per_op must not
//     exceed the baseline by more than -tolerance (default 25%). CI runners
//     are noisy, so the bar is deliberately loose; a real regression from a
//     scheduling or allocation change lands far beyond it;
//   - allocs_per_op and bytes_per_op get the same -tolerance bar. Allocation
//     counts are far less noisy than wall-clock, so these catch a refactor
//     that quietly reintroduces per-resume deep copies;
//   - the per-benchmark allocs_per_op breakdown gets the same bar too: the
//     mode-level number can hide one workload regressing while another
//     improves, and allocation counts are stable enough per benchmark to
//     gate individually;
//   - modes running with clock interning (clock_intern in the artifact) must
//     report epoch_hits > 0: the detector's O(1) epoch fast path going inert
//     silently degrades every happens-before check to a vector walk
//     (-require-epoch=false to waive);
//   - every mode of the baseline must still exist in the fresh artifact: a
//     mode vanishing from the sweep is a coverage regression, not something
//     to skip silently.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
)

// benchStat mirrors the per-benchmark breakdown of a mode.
type benchStat struct {
	Races            int    `json:"races"`
	XFDRaces         int    `json:"xfd_races"`
	SimulatedOps     int64  `json:"simulated_ops"`
	Handoffs         int64  `json:"handoffs"`
	DirectOps        int64  `json:"direct_ops"`
	SnapshotBytes    int64  `json:"snapshot_bytes"`
	JournalOps       int64  `json:"journal_ops"`
	DedupedScenarios int64  `json:"deduped_scenarios"`
	AllocsPerOp      uint64 `json:"allocs_per_op"`
	BytesPerOp       uint64 `json:"bytes_per_op"`
}

// measurement mirrors the per-mode object of BENCH_suite.json (written by
// BenchmarkSuiteTable3). Unknown fields are ignored so the guard tolerates
// artifact growth.
type measurement struct {
	NsPerOp          int64                 `json:"ns_per_op"`
	ClockIntern      bool                  `json:"clock_intern"`
	ClockInterned    int64                 `json:"clock_interned"`
	EpochHits        int64                 `json:"epoch_hits"`
	EpochMisses      int64                 `json:"epoch_misses"`
	SimulatedOps     int64                 `json:"simulated_ops"`
	Handoffs         int64                 `json:"handoffs"`
	DirectOps        int64                 `json:"direct_ops"`
	SnapshotBytes    int64                 `json:"snapshot_bytes"`
	JournalOps       int64                 `json:"journal_ops"`
	DedupedScenarios int64                 `json:"deduped_scenarios"`
	Races            float64               `json:"races"`
	XFDRaces         float64               `json:"xfd_races"`
	AllocsPerOp      uint64                `json:"allocs_per_op"`
	BytesPerOp       uint64                `json:"bytes_per_op"`
	Benchmarks       map[string]*benchStat `json:"benchmarks"`
}

type artifact struct {
	Benchmark string                  `json:"benchmark"`
	Modes     map[string]*measurement `json:"modes"`
}

func load(path string) (*artifact, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var a artifact
	if err := json.Unmarshal(data, &a); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(a.Modes) == 0 {
		return nil, fmt.Errorf("%s: no modes in artifact", path)
	}
	return &a, nil
}

// breakdown renders a mode's per-benchmark races as "CCEH:2 Fast_Fair:6 …".
func breakdown(m *measurement) string {
	if len(m.Benchmarks) == 0 {
		return ""
	}
	names := make([]string, 0, len(m.Benchmarks))
	for name := range m.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	parts := make([]string, 0, len(names))
	for _, name := range names {
		bs := m.Benchmarks[name]
		if m.XFDRaces > 0 {
			parts = append(parts, fmt.Sprintf("%s:%d/x%d", name, bs.Races, bs.XFDRaces))
		} else {
			parts = append(parts, fmt.Sprintf("%s:%d", name, bs.Races))
		}
	}
	return strings.Join(parts, " ")
}

func run() error {
	baselinePath := flag.String("baseline", "", "committed BENCH_suite.json to compare against")
	freshPath := flag.String("fresh", "BENCH_suite.json", "freshly generated artifact")
	wantRaces := flag.Float64("races", 19, "exact race count every mode must report (Table 3)")
	wantXFD := flag.Float64("xfd-races", 33, "exact cross-failure race count the stacked mode must report (0 = don't check)")
	tolerance := flag.Float64("tolerance", 0.25, "allowed fractional ns_per_op / allocs_per_op / bytes_per_op regression vs baseline")
	requireDedup := flag.Bool("require-dedup", true, "checkpoint-on modes must report deduped_scenarios > 0")
	requireEpoch := flag.Bool("require-epoch", true, "clock-interning modes must report epoch_hits > 0")
	flag.Parse()
	if *baselinePath == "" {
		return fmt.Errorf("-baseline is required")
	}
	baseline, err := load(*baselinePath)
	if err != nil {
		return err
	}
	fresh, err := load(*freshPath)
	if err != nil {
		return err
	}

	var names []string
	for name := range fresh.Modes {
		names = append(names, name)
	}
	sort.Strings(names)

	var failures []string
	for _, name := range names {
		m := fresh.Modes[name]
		if bd := breakdown(m); bd != "" {
			fmt.Printf("mode %-14s races: %s\n", name, bd)
		}
		if m.Races != *wantRaces {
			failures = append(failures, fmt.Sprintf(
				"mode %q: races = %v, want exactly %v", name, m.Races, *wantRaces))
		}
		// The stacked mode runs the yashme+xfd analysis stack over the one
		// simulation: the primary count is gated above (the extra pass must
		// not perturb it), and the cross-failure count is pinned too.
		if name == "stacked" && *wantXFD > 0 && m.XFDRaces != *wantXFD {
			failures = append(failures, fmt.Sprintf(
				"mode %q: xfd_races = %v, want exactly %v", name, m.XFDRaces, *wantXFD))
		}
		// Crash-image memoization must actually fire on the checkpoint-on
		// sweeps; zero skips means the signature layer went inert.
		if *requireDedup && strings.HasPrefix(name, "on") && m.DedupedScenarios == 0 {
			failures = append(failures, fmt.Sprintf(
				"mode %q: deduped_scenarios = 0; crash-image memoization is inert", name))
		}
		// The epoch fast path must actually fire wherever clock interning is
		// on; zero hits means every happens-before check fell back to the
		// component-wise vector walk.
		if *requireEpoch && m.ClockIntern && m.EpochHits == 0 {
			failures = append(failures, fmt.Sprintf(
				"mode %q: epoch_hits = 0; the clock-arena epoch fast path is inert", name))
		}
		base, ok := baseline.Modes[name]
		if !ok || base.NsPerOp <= 0 {
			fmt.Printf("mode %-14s %12d ns/op  (no baseline)\n", name, m.NsPerOp)
			continue
		}
		ratio := float64(m.NsPerOp) / float64(base.NsPerOp)
		fmt.Printf("mode %-14s %12d ns/op  baseline %12d  ratio %.3f\n",
			name, m.NsPerOp, base.NsPerOp, ratio)
		if ratio > 1+*tolerance {
			failures = append(failures, fmt.Sprintf(
				"mode %q: ns_per_op regressed %.1f%% (limit %.0f%%): %d -> %d",
				name, (ratio-1)*100, *tolerance*100, base.NsPerOp, m.NsPerOp))
		}
		// Allocation gates: same loose bar as wall-clock. These catch the
		// classic silent regression — a refactor that reintroduces per-resume
		// deep copies — which CI wall-clock noise can absorb.
		if base.AllocsPerOp > 0 && m.AllocsPerOp > 0 {
			r := float64(m.AllocsPerOp) / float64(base.AllocsPerOp)
			fmt.Printf("mode %-14s %12d allocs/op  baseline %12d  ratio %.3f\n",
				name, m.AllocsPerOp, base.AllocsPerOp, r)
			if r > 1+*tolerance {
				failures = append(failures, fmt.Sprintf(
					"mode %q: allocs_per_op regressed %.1f%% (limit %.0f%%): %d -> %d",
					name, (r-1)*100, *tolerance*100, base.AllocsPerOp, m.AllocsPerOp))
			}
		}
		if base.BytesPerOp > 0 && m.BytesPerOp > 0 {
			r := float64(m.BytesPerOp) / float64(base.BytesPerOp)
			fmt.Printf("mode %-14s %12d bytes/op   baseline %12d  ratio %.3f\n",
				name, m.BytesPerOp, base.BytesPerOp, r)
			if r > 1+*tolerance {
				failures = append(failures, fmt.Sprintf(
					"mode %q: bytes_per_op regressed %.1f%% (limit %.0f%%): %d -> %d",
					name, (r-1)*100, *tolerance*100, base.BytesPerOp, m.BytesPerOp))
			}
		}
		// Per-benchmark allocation gate: the mode total can hide one workload
		// regressing while another improves.
		var benchNames []string
		for bn := range m.Benchmarks {
			benchNames = append(benchNames, bn)
		}
		sort.Strings(benchNames)
		for _, bn := range benchNames {
			bs, bb := m.Benchmarks[bn], base.Benchmarks[bn]
			if bb == nil || bb.AllocsPerOp == 0 || bs.AllocsPerOp == 0 {
				continue
			}
			r := float64(bs.AllocsPerOp) / float64(bb.AllocsPerOp)
			if r > 1+*tolerance {
				failures = append(failures, fmt.Sprintf(
					"mode %q benchmark %q: allocs_per_op regressed %.1f%% (limit %.0f%%): %d -> %d",
					name, bn, (r-1)*100, *tolerance*100, bb.AllocsPerOp, bs.AllocsPerOp))
			}
		}
	}
	// The loop above only walks fresh modes, so it can never notice a mode
	// that exists in the baseline but not in the fresh artifact — a
	// benchmark configuration silently dropping out of the sweep is exactly
	// the kind of coverage regression a canary must catch.
	var baseNames []string
	for name := range baseline.Modes {
		baseNames = append(baseNames, name)
	}
	sort.Strings(baseNames)
	for _, name := range baseNames {
		if _, ok := fresh.Modes[name]; !ok {
			failures = append(failures, fmt.Sprintf(
				"mode %q: present in baseline but missing from fresh artifact (benchmark mode vanished)", name))
		}
	}

	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "FAIL:", f)
		}
		return fmt.Errorf("%d check(s) failed", len(failures))
	}
	fmt.Println("benchguard: all checks passed")
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchguard:", err)
		os.Exit(1)
	}
}
