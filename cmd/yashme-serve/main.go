// Command yashme-serve runs the persistency-race detector as a
// long-running HTTP service (internal/service): clients POST detection
// jobs, poll their status, cancel them, and read canonical suite results
// — with identical submissions answered from a content-addressed cache
// without simulating anything. All concurrent jobs share one machine-wide
// scenario budget, so job parallelism never oversubscribes GOMAXPROCS.
//
// Usage:
//
//	yashme-serve                                   # listen on 127.0.0.1:8321
//	yashme-serve -addr :9000 -jobs 4 -workers 8
//	curl -X POST localhost:8321/v1/jobs -d '{"tags":["table3"]}'
//	curl localhost:8321/v1/jobs/j000001            # poll
//	curl localhost:8321/v1/jobs/j000001/result     # canonical suite.Result JSON
//	curl -X DELETE localhost:8321/v1/jobs/j000001  # cancel
//	curl localhost:8321/v1/workloads               # registry with paper metadata
//	curl localhost:8321/metrics
//
// SIGINT/SIGTERM shut down gracefully: the listener closes, queued jobs
// are cancelled, running jobs drain until -drain expires and are then cut
// at their next scenario boundary.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"yashme/internal/engine"
	"yashme/internal/service"
)

func main() { os.Exit(run()) }

func run() int {
	var (
		addr       = flag.String("addr", "127.0.0.1:8321", "listen address")
		jobs       = flag.Int("jobs", 2, "suites run concurrently (they share the -workers budget; more jobs lets short ones overtake long ones)")
		queue      = flag.Int("queue", 64, "submission queue depth (full queue = HTTP 429)")
		workers    = flag.Int("workers", 0, "machine-wide scenario budget shared by every job (0 = GOMAXPROCS)")
		cacheMB    = flag.Int("cache-mb", 64, "result cache bound in MiB (0 disables caching)")
		jobTimeout = flag.Duration("job-timeout", 10*time.Minute, "default per-job wall-clock bound (jobs may set their own; 0 = none)")
		drain      = flag.Duration("drain", 30*time.Second, "graceful-shutdown drain for running jobs before they are cancelled")
	)
	flag.Parse()

	cacheBytes := int64(*cacheMB) << 20
	if *cacheMB <= 0 {
		cacheBytes = -1
	}
	mgr := service.NewManager(service.Config{
		Jobs:           *jobs,
		QueueDepth:     *queue,
		Budget:         engine.NewBudget(*workers),
		CacheBytes:     cacheBytes,
		DefaultTimeout: *jobTimeout,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "yashme-serve: %v\n", err)
		return 2
	}
	srv := &http.Server{Handler: service.NewHandler(mgr)}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	fmt.Printf("yashme-serve: listening on %s (%d job workers, budget %d, cache %d MiB)\n",
		ln.Addr(), *jobs, mgr.Budget().Size(), *cacheMB)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-serveErr:
		fmt.Fprintf(os.Stderr, "yashme-serve: %v\n", err)
		return 1
	case <-ctx.Done():
	}

	fmt.Fprintln(os.Stderr, "yashme-serve: shutting down — draining running jobs")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	// Manager first: queued jobs cancel, running ones drain (or are cut at
	// the deadline), which also unblocks any ?wait=1 long-polls before the
	// HTTP server waits out its in-flight requests.
	mgr.Shutdown(shutdownCtx)
	if err := srv.Shutdown(shutdownCtx); err != nil {
		fmt.Fprintf(os.Stderr, "yashme-serve: forced shutdown: %v\n", err)
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "yashme-serve: %v\n", err)
		return 1
	}
	fmt.Fprintln(os.Stderr, "yashme-serve: bye")
	return 0
}
