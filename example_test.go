package yashme_test

import (
	"fmt"

	"yashme"
)

// ExampleRun detects the paper's Figure 1 persistency race: a non-atomic
// 64-bit store that a compiler may tear, flushed too late to survive every
// crash.
func ExampleRun() {
	makeProg := func() yashme.Program {
		var val yashme.Addr
		return yashme.Program{
			Name: "figure1",
			Setup: func(h *yashme.Heap) {
				val = h.AllocStruct("pmobj", yashme.Layout{{Name: "val", Size: 8}}).F("val")
			},
			Workers: []func(*yashme.Thread){func(t *yashme.Thread) {
				t.Store64(val, 0x1234567812345678)
				t.CLFlush(val)
			}},
			PostCrash: func(t *yashme.Thread) { t.Load64(val) },
		}
	}
	res := yashme.Run(makeProg, yashme.Options{Mode: yashme.ModelCheck, Prefix: true})
	for _, race := range res.Report.Races() {
		fmt.Println(race.Field)
	}
	// Output: pmobj.val
}

// ExampleRun_fixed shows the paper's recommended repair: committing through
// an atomic release store (a plain mov on x86, but no tearing allowed)
// removes the race entirely.
func ExampleRun_fixed() {
	makeProg := func() yashme.Program {
		var val yashme.Addr
		return yashme.Program{
			Name: "figure1-fixed",
			Setup: func(h *yashme.Heap) {
				val = h.AllocStruct("pmobj", yashme.Layout{{Name: "val", Size: 8}}).F("val")
			},
			Workers: []func(*yashme.Thread){func(t *yashme.Thread) {
				t.StoreRelease64(val, 0x1234567812345678) // the fix
				t.CLFlush(val)
			}},
			PostCrash: func(t *yashme.Thread) { t.LoadAcquire64(val) },
		}
	}
	res := yashme.Run(makeProg, yashme.Options{Mode: yashme.ModelCheck, Prefix: true})
	fmt.Println("races:", res.Report.Count())
	// Output: races: 0
}

// ExampleRun_baseline contrasts the prefix expansion with the naive
// detector on the same single-execution exploration: crashing only at
// completion, the baseline is blind (the store was flushed) while the
// prefix detector still derives the racy execution.
func ExampleRun_baseline() {
	makeProg := func() yashme.Program {
		var val yashme.Addr
		return yashme.Program{
			Name: "window",
			Setup: func(h *yashme.Heap) {
				val = h.AllocStruct("o", yashme.Layout{{Name: "x", Size: 8}}).F("x")
			},
			Workers: []func(*yashme.Thread){func(t *yashme.Thread) {
				t.Store64(val, 7)
				t.CLFlush(val)
			}},
			PostCrash: func(t *yashme.Thread) { t.Load64(val) },
		}
	}
	prefix := yashme.RunOnce(makeProg, yashme.Options{Prefix: true}, 0, yashme.PersistLatest, 1)
	baseline := yashme.RunOnce(makeProg, yashme.Options{Prefix: false}, 0, yashme.PersistLatest, 1)
	fmt.Println("prefix:", prefix.Report.Count(), "baseline:", baseline.Report.Count())
	// Output: prefix: 1 baseline: 0
}
