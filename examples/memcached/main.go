// Memcached: drive the memcached-pmem reproduction with a client workload
// (set operations, then a restart that recovers the slab pool), comparing
// the prefix-based detector against the baseline on the same single random
// execution — the paper's Table 5 experiment for its largest benchmark.
//
// Run: go run ./examples/memcached
package main

import (
	"fmt"

	"yashme"
	"yashme/internal/memcachedpm"
)

func main() {
	mk := memcachedpm.New(4, nil)

	// One random execution, prefix on (the paper's configuration).
	prefix := yashme.Run(mk, yashme.Options{
		Mode: yashme.RandomMode, Prefix: true, Seed: 2, Executions: 1,
	})
	// The identical execution with the expansion disabled.
	baseline := yashme.Run(mk, yashme.Options{
		Mode: yashme.RandomMode, Prefix: false, Seed: 2, Executions: 1,
	})

	fmt.Printf("single random execution: prefix found %d races, baseline %d (paper: 4 vs 2)\n",
		prefix.Report.Count(), baseline.Report.Count())
	for _, r := range prefix.Report.Races() {
		fmt.Printf("  %s\n", r)
	}

	// Full sweep in model-checking mode reproduces the Table 4 inventory.
	full := yashme.Run(mk, yashme.Options{Mode: yashme.ModelCheck, Prefix: true})
	fmt.Printf("model-checking sweep: %d distinct racing fields (paper Table 4: 4)\n", full.Report.Count())
	for _, r := range full.Report.Races() {
		fmt.Printf("  %s\n", r.Field)
	}

	// Checksums keep payload corruption benign: recovery validates items
	// before serving them.
	var stats memcachedpm.Stats
	yashme.RunOnce(memcachedpm.New(6, &stats), yashme.Options{Prefix: true}, 0, yashme.PersistLatest, 1)
	fmt.Printf("restart recovered %d checksum-valid items (%d rejected)\n", stats.Recovered, stats.BadSums)
}
