// Recipe: model-check the persistent-memory indexes the paper evaluates
// (CCEH, FAST_FAIR and the RECIPE suite) and print the Table 3 bug
// inventory. This is the paper's §7.1 index methodology: drive each data
// structure through insertion/deletion/lookup operations, inject a crash
// before every flush/fence point, and race-check the recovery's loads.
//
// Run: go run ./examples/recipe
package main

import (
	"fmt"
	"time"

	"yashme"
	"yashme/internal/workload"

	// Link every built-in benchmark's registration.
	_ "yashme/internal/workload/all"
)

func main() {
	total := 0
	for _, spec := range workload.Tagged(workload.TagTable3) {
		start := time.Now()
		res := yashme.Run(spec.Make, yashme.Options{Mode: yashme.ModelCheck, Prefix: true})
		elapsed := time.Since(start)

		races := res.Report.Races()
		fmt.Printf("%-12s %2d races across %3d executions (%s)\n",
			spec.Name, len(races), res.ExecutionsRun, elapsed.Round(time.Millisecond))
		for _, r := range races {
			fmt.Printf("    %s\n", r.Field)
		}
		total += len(races)
	}
	fmt.Printf("total: %d persistency races (paper Table 3: 19)\n", total)
}
