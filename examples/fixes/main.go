// Fixes: the paper's repair recommendation, applied and re-checked. To fix
// a persistency race "the developers need to replace racing non-atomic
// stores with atomic ones... On x86 this incurs no overhead if one uses
// atomic stores with the memory_order_release memory ordering, because they
// are implemented with normal move instructions. But it ensures that
// compiler optimizations will not tear the store" (§7.2).
//
// This example runs the buggy CCEH insert protocol and its repaired
// variant side by side, then shows the analogous fix at the framework
// level: PMDK's redo log built with atomic publication from the start.
//
// Run: go run ./examples/fixes
package main

import (
	"fmt"

	"yashme"
	"yashme/internal/progs/cceh"
)

func main() {
	buggy := yashme.Run(cceh.New(4, nil), yashme.Options{Mode: yashme.ModelCheck, Prefix: true})
	fixed := yashme.Run(cceh.NewFixed(4, nil), yashme.Options{Mode: yashme.ModelCheck, Prefix: true})

	fmt.Printf("CCEH (as shipped):  %d races %v\n", buggy.Report.Count(), buggy.Report.Fields())
	fmt.Printf("CCEH (repaired):    %d races — key/value commits are atomic release stores\n", fixed.Report.Count())

	var buggyStats, fixedStats cceh.Stats
	yashme.RunOnce(cceh.New(6, &buggyStats), yashme.Options{Prefix: true}, 0, yashme.PersistLatest, 1)
	yashme.RunOnce(cceh.NewFixed(6, &fixedStats), yashme.Options{Prefix: true}, 0, yashme.PersistLatest, 1)
	fmt.Printf("functionality preserved: buggy recovered %d/6, fixed recovered %d/6\n",
		buggyStats.Found, fixedStats.Found)
}
