// Pmdktx: check the PMDK transactional data structures in random mode —
// the paper's methodology for programs too large to model check (§4, §7.1).
// Each of the five example structures (BTree, CTree, RBTree, hashmap-atomic,
// hashmap-tx) drives the pool's undo log, whose entry pointer is advanced
// with a plain store: Table 4 bug #1. The log contents themselves are only
// read under checksum validation, so their races are classified benign
// (§7.5).
//
// Run: go run ./examples/pmdktx
package main

import (
	"fmt"

	"yashme"
	"yashme/internal/pmdk"
)

func main() {
	structures := map[string]func() yashme.Program{
		"Btree":          pmdk.NewBTreeProg(5, nil),
		"Ctree":          pmdk.NewCTreeProg(5, nil),
		"RBtree":         pmdk.NewRBTreeProg(5, nil),
		"hashmap-atomic": pmdk.NewHashmapAtomicProg(5, nil),
		"hashmap-tx":     pmdk.NewHashmapTXProg(5, nil),
	}
	for _, name := range []string{"Btree", "Ctree", "RBtree", "hashmap-atomic", "hashmap-tx"} {
		res := yashme.Run(structures[name], yashme.Options{
			Mode:       yashme.RandomMode,
			Prefix:     true,
			Seed:       1,
			Executions: 20,
		})
		fmt.Printf("%-15s harmful=%d benign=%d (executions=%d)\n",
			name, res.Report.Count(), res.Report.BenignCount(), res.ExecutionsRun)
		for _, r := range res.Report.Races() {
			fmt.Printf("    harmful: %s\n", r.Field)
		}
		for _, r := range res.Report.Benign() {
			fmt.Printf("    benign:  %s (checksum-guarded)\n", r.Field)
		}
	}

	// Functional sanity: a clean run loses nothing.
	var stats pmdk.Stats
	yashme.RunOnce(pmdk.NewHashmapTXProg(6, &stats), yashme.Options{Prefix: true}, 0, yashme.PersistLatest, 1)
	fmt.Printf("hashmap-tx recovery check: found=%d missing=%d wrong=%d\n",
		stats.Found, stats.Missing, stats.Wrong)
}
