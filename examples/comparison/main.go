// Comparison: the paper's §1/§8 argument, executable — why prior PM bug
// detectors cannot find persistency races. Three checkers run over the same
// CCEH insert protocol:
//
//   - a PMTest-style rule checker: the developer's annotations (ordering,
//     persistence) all PASS — the protocol is exactly as intended;
//   - an XFDetector-style cross-failure detector: finds reads of
//     unpersisted data in crash windows, but never a race on a store it saw
//     flushed;
//   - Yashme: reports the two persistency races (Pair.key, Pair.value) that
//     survive even when every flush lands, because the compiler may tear
//     the non-atomic commits.
//
// Run: go run ./examples/comparison
package main

import (
	"fmt"

	"yashme"
	"yashme/internal/pmm"
	"yashme/internal/pmtest"
	"yashme/internal/progs/cceh"

	_ "yashme/internal/analysis/all" // link the xfd pass
)

func main() {
	// 1. PMTest-style rules over the annotated insert protocol.
	var key, value pmm.Addr
	setup := func(h *pmm.Heap) {
		pair := h.AllocStruct("Pair", pmm.Layout{{Name: "key", Size: 8}, {Name: "value", Size: 8}})
		key, value = pair.F("key"), pair.F("value")
	}
	violations := pmtest.Check(setup, func(t *pmm.Thread, c *pmtest.Checker) {
		t.CAS64(key, 0, ^uint64(0))
		t.Store64(value, 10)
		t.MFence()
		t.Store64(key, 1)
		t.CLFlush(key)
		c.AssertOrderedBefore(value, key)
		c.AssertPersisted(key)
		c.AssertPersisted(value)
	})
	fmt.Printf("PMTest-style rules:        %d violations (the protocol is as the developer intended)\n", len(violations))

	// 2. Cross-failure detection on the full CCEH driver, through the same
	// engine (the xfd analysis pass, one crash per flush/fence point of the
	// given execution).
	xfdRaces := yashme.Run(cceh.New(4, nil), yashme.Options{
		Mode:            yashme.ModelCheck,
		PersistPolicies: []yashme.PersistPolicy{yashme.PersistLatest},
		Analyses:        []string{"xfd"},
	}).Report
	flushedClaims := 0
	for _, r := range xfdRaces.Races() {
		if r.Flushed {
			flushedClaims++
		}
	}
	fmt.Printf("XFDetector-style checker:  %d cross-failure races, %d on flushed stores (structurally impossible)\n",
		xfdRaces.Count(), flushedClaims)

	// 3. Yashme on the same driver.
	res := yashme.Run(cceh.New(4, nil), yashme.Options{Mode: yashme.ModelCheck, Prefix: true})
	fmt.Printf("Yashme:                    %d persistency races %v\n", res.Report.Count(), res.Report.Fields())
	for _, r := range res.Report.Races() {
		if r.Flushed {
			fmt.Printf("  %s raced even though it was FLUSHED before the crash (prefix derivation)\n", r.Field)
		}
	}
}
