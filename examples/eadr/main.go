// Eadr: the paper's §7.5 discussion, executable. On eADR platforms the CPU
// cache is inside the persistence domain, so cache-line flushing is not
// required for durability — but persistency races are STILL possible: the
// compiler can tear a non-atomic store, and a crash can interrupt the torn
// store itself. Yashme's default mode is sound for eADR ("the absence of
// races on a non-eADR system implies the absence of races on eADR
// systems"); the adapted eADR mode reports only the races that survive.
//
// This example runs CCEH and FAST_FAIR in both modes and shows the
// containment: every eADR race is also a default-mode race, never the
// reverse.
//
// Run: go run ./examples/eadr
package main

import (
	"fmt"

	"yashme"
	"yashme/internal/workload"

	// Link every built-in benchmark's registration.
	_ "yashme/internal/workload/all"
)

func main() {
	for _, spec := range workload.Tagged(workload.TagTable3)[:2] { // CCEH, Fast_Fair
		def := yashme.Run(spec.Make, yashme.Options{Mode: yashme.ModelCheck, Prefix: true})
		eadr := yashme.Run(spec.Make, yashme.Options{Mode: yashme.ModelCheck, Prefix: true, EADR: true})

		defFields := map[string]bool{}
		for _, f := range def.Report.Fields() {
			defFields[f] = true
		}
		fmt.Printf("%s:\n  default (ADR) mode: %d races %v\n  eADR mode:          %d races %v\n",
			spec.Name, def.Report.Count(), def.Report.Fields(),
			eadr.Report.Count(), eadr.Report.Fields())
		for _, f := range eadr.Report.Fields() {
			if !defFields[f] {
				fmt.Printf("  VIOLATION: eADR-only race on %s\n", f)
			}
		}
	}
	fmt.Println("every eADR race is contained in the default mode's set (§7.5)")
}
