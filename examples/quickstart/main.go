// Quickstart: the paper's Figure 1 program, end to end.
//
// The pre-crash execution stores 0x1234567812345678 to pmobj->val and then
// flushes the cache line; the post-crash execution prints the field if it
// is non-zero. Because the store is non-atomic, the compiler may implement
// it with two 32-bit store instructions (gcc's ARM64 backend does exactly
// that), so a crash between them makes the store PARTIALLY persistent — the
// post-crash read can observe 0x12345678.
//
// Yashme reports the persistency race on pmobj.val even for crash points
// after the clflush, thanks to the prefix-based detection-window expansion;
// with TornValues enabled, the engine also synthesizes the torn value the
// paper's example prints.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"

	"yashme"
)

func main() {
	var observed []uint64
	makeProg := func() yashme.Program {
		var val yashme.Addr
		return yashme.Program{
			Name: "figure1",
			Setup: func(h *yashme.Heap) {
				pmobj := h.AllocStruct("pmobj", yashme.Layout{{Name: "val", Size: 8}})
				val = pmobj.F("val")
				h.Init(val, 8, 0)
			},
			Workers: []func(*yashme.Thread){func(t *yashme.Thread) {
				t.Store64(val, 0x1234567812345678) // pmobj->val = 0x1234567812345678;
				t.CLFlush(val)                     // flush(&pmobj->val);
			}},
			PostCrash: func(t *yashme.Thread) {
				if v := t.Load64(val); v != 0 { // if (pmobj->val != 0)
					observed = append(observed, v) //   printf("0x%PRIx64\n", pmobj->val);
				}
			},
		}
	}

	res := yashme.Run(makeProg, yashme.Options{
		Mode:       yashme.ModelCheck,
		Prefix:     true,
		TornValues: true,
		Workers:    1, // the observed slice is shared across program instances
	})

	fmt.Printf("explored %d executions (%d crash points)\n", res.ExecutionsRun, res.CrashPoints)
	for _, race := range res.Report.Races() {
		fmt.Println("detected:", race)
	}
	fmt.Println("post-crash reads observed:")
	for _, v := range observed {
		marker := ""
		if v == 0x12345678 {
			marker = "   <-- the torn value from the paper's Figure 1"
		}
		fmt.Printf("  0x%x%s\n", v, marker)
	}
}
