// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (see DESIGN.md's per-experiment index), plus ablation benches
// for the design choices the reproduction calls out. Run with
//
//	go test -bench=. -benchmem
//
// Each bench reports, besides time, the quantity the paper's artifact
// measures (races found, rows regenerated), via b.ReportMetric.
package yashme_test

import (
	"encoding/json"
	"os"
	"runtime"
	"testing"

	"yashme"
	"yashme/internal/compiler"
	"yashme/internal/engine"
	"yashme/internal/progs/cceh"
	"yashme/internal/suite"
	"yashme/internal/workload"

	// Link the xfd analysis pass (the stacked suite mode and the
	// related-work comparison select it via Options.Analyses).
	_ "yashme/internal/analysis/all"
)

// mustSpec fetches a registered workload by name (the suite import links
// every benchmark's registration into the test binary).
func mustSpec(tb testing.TB, name string) workload.Spec {
	tb.Helper()
	s, ok := workload.Lookup(name)
	if !ok {
		tb.Fatalf("workload %q not registered", name)
	}
	return s
}

// figure1 is the paper's Figure 1 program (E1).
func figure1() yashme.Program {
	var val yashme.Addr
	return yashme.Program{
		Name: "figure1",
		Setup: func(h *yashme.Heap) {
			val = h.AllocStruct("pmobj", yashme.Layout{{Name: "val", Size: 8}}).F("val")
		},
		Workers: []func(*yashme.Thread){func(t *yashme.Thread) {
			t.Store64(val, 0x1234567812345678)
			t.CLFlush(val)
		}},
		PostCrash: func(t *yashme.Thread) { t.Load64(val) },
	}
}

// BenchmarkFigure1 (E1): detect the Figure 1 persistency race by model
// checking the example program.
func BenchmarkFigure1(b *testing.B) {
	b.ReportAllocs()
	races := 0
	for i := 0; i < b.N; i++ {
		res := yashme.Run(figure1, yashme.Options{Mode: yashme.ModelCheck, Prefix: true})
		races = res.Report.Count()
	}
	b.ReportMetric(float64(races), "races")
}

// BenchmarkTable2a (E2): regenerate the compiler store-optimization study.
func BenchmarkTable2a(b *testing.B) {
	b.ReportAllocs()
	rows := 0
	for i := 0; i < b.N; i++ {
		rows = len(compiler.Table2a())
	}
	b.ReportMetric(float64(rows), "rows")
}

// BenchmarkTable2b (E3): regenerate the source-vs-assembly memop counts.
func BenchmarkTable2b(b *testing.B) {
	b.ReportAllocs()
	rows := 0
	for i := 0; i < b.N; i++ {
		rows = len(compiler.Table2b())
	}
	b.ReportMetric(float64(rows), "rows")
}

// BenchmarkTable3 (E4): model-check the six PM indexes through the suite
// runner; 19 races.
func BenchmarkTable3(b *testing.B) {
	b.ReportAllocs()
	races := 0
	for i := 0; i < b.N; i++ {
		res := suite.Run(suite.Config{
			Tags:     []string{workload.TagTable3},
			Variants: []string{suite.VariantRaces},
		})
		races = res.TotalRaces(suite.RunRaces)
	}
	b.ReportMetric(float64(races), "races")
}

// BenchmarkTable3Parallel (E17): the Table 3 model-checking sweep on 1, 4
// and GOMAXPROCS engine workers. Race counts are identical across worker
// counts (the plan/execute/merge determinism contract); only wall-clock
// changes.
func BenchmarkTable3Parallel(b *testing.B) {
	for _, workers := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		workers := workers
		b.Run("workers-"+itoa(workers), func(b *testing.B) {
			b.ReportAllocs()
			races := 0
			for i := 0; i < b.N; i++ {
				races = 0
				for _, spec := range workload.Tagged(workload.TagIndex) {
					res := engine.Run(spec.Make, engine.Options{
						Mode: engine.ModelCheck, Prefix: true, Workers: workers})
					races += res.Report.Count()
				}
			}
			b.ReportMetric(float64(races), "races")
		})
	}
}

// BenchmarkSuiteTable3 (E18/E20/E21): the Table 3 model-checking sweep,
// run through the concurrent suite layer, across the engine's two fast
// paths — checkpointed pre-crash execution (on/off) and the solo-thread
// direct-run lease (default / "-nodirect"). Race counts are identical in
// all four modes (the equivalence contracts); the simops metric is the
// checkpoint layer's win (snapshots remove the O(C·n) pre-crash
// re-simulation) and the handoffs/direct_ops split is the lease's win
// (leased operations skip the two-channel scheduler handshake). The parent
// benchmark writes the unified BENCH_suite.json artifact — aggregate plus
// per-benchmark breakdown per mode — so the perf trajectory is tracked
// across changes; cmd/benchguard compares a fresh run against the
// committed artifact in CI.
func BenchmarkSuiteTable3(b *testing.B) {
	type benchStat struct {
		Races            int    `json:"races"`
		XFDRaces         int    `json:"xfd_races,omitempty"`
		SimulatedOps     int64  `json:"simulated_ops"`
		Handoffs         int64  `json:"handoffs"`
		DirectOps        int64  `json:"direct_ops"`
		SnapshotBytes    int64  `json:"snapshot_bytes"`
		JournalOps       int64  `json:"journal_ops"`
		DedupedScenarios int64  `json:"deduped_scenarios"`
		ClockInterned    int64  `json:"clock_interned"`
		EpochHits        int64  `json:"epoch_hits"`
		EpochMisses      int64  `json:"epoch_misses"`
		AllocsPerOp      uint64 `json:"allocs_per_op"`
		BytesPerOp       uint64 `json:"bytes_per_op"`
	}
	type measurement struct {
		NsPerOp          int64                 `json:"ns_per_op"`
		ClockIntern      bool                  `json:"clock_intern"`
		SimulatedOps     int64                 `json:"simulated_ops"`
		Handoffs         int64                 `json:"handoffs"`
		DirectOps        int64                 `json:"direct_ops"`
		SnapshotBytes    int64                 `json:"snapshot_bytes"`
		JournalOps       int64                 `json:"journal_ops"`
		DedupedScenarios int64                 `json:"deduped_scenarios"`
		ClockInterned    int64                 `json:"clock_interned"`
		EpochHits        int64                 `json:"epoch_hits"`
		EpochMisses      int64                 `json:"epoch_misses"`
		Races            float64               `json:"races"`
		XFDRaces         float64               `json:"xfd_races,omitempty"`
		AllocsPerOp      uint64                `json:"allocs_per_op"`
		BytesPerOp       uint64                `json:"bytes_per_op"`
		Benchmarks       map[string]*benchStat `json:"benchmarks"`
	}
	results := map[string]*measurement{}
	for _, mode := range []struct {
		name     string
		ck       engine.CheckpointMode
		direct   engine.DirectRunMode
		analyses []string
		intern   engine.ClockInternMode
	}{
		{"on", engine.CheckpointOn, engine.DirectRunOn, nil, engine.ClockInternOn},
		{"off", engine.CheckpointOff, engine.DirectRunOn, nil, engine.ClockInternOn},
		{"on-nodirect", engine.CheckpointOn, engine.DirectRunOff, nil, engine.ClockInternOn},
		{"off-nodirect", engine.CheckpointOff, engine.DirectRunOff, nil, engine.ClockInternOn},
		// The stacked mode runs both detectors over the one simulation
		// (E23): the yashme race count must not move, the xfd count is the
		// cross-failure baseline's, and the ns/op delta is the marginal cost
		// of the second pass.
		{"stacked", engine.CheckpointOn, engine.DirectRunOn, []string{"yashme", "xfd"}, engine.ClockInternOn},
		// The owned mode is the -clockintern=false escape hatch (E24): one
		// private clock snapshot per commit, epoch fast path off. Identical
		// results; the allocs/bytes delta against "on" is the interning win.
		{"owned", engine.CheckpointOn, engine.DirectRunOn, nil, engine.ClockInternOff},
	} {
		mode := mode
		m := &measurement{Benchmarks: map[string]*benchStat{}}
		results[mode.name] = m
		b.Run("checkpoint-"+mode.name, func(b *testing.B) {
			b.ReportAllocs()
			var res *suite.Result
			// The testing package's alloc counters aren't readable from inside
			// the benchmark, so mirror them with ReadMemStats deltas for the
			// JSON artifact. Counts match -benchmem up to GC bookkeeping noise.
			var before, after runtime.MemStats
			runtime.ReadMemStats(&before)
			for i := 0; i < b.N; i++ {
				res = suite.Run(suite.Config{
					Tags:        []string{workload.TagTable3},
					Variants:    []string{suite.VariantRaces},
					Checkpoint:  mode.ck,
					DirectRun:   mode.direct,
					Analyses:    mode.analyses,
					ClockIntern: mode.intern,
				})
			}
			runtime.ReadMemStats(&after)
			stats := res.TotalStats()
			races := res.TotalRaces(suite.RunRaces)
			b.ReportMetric(float64(races), "races")
			b.ReportMetric(float64(stats.SimulatedOps), "simops")
			b.ReportMetric(float64(stats.Handoffs), "handoffs")
			m.NsPerOp = b.Elapsed().Nanoseconds() / int64(b.N)
			m.ClockIntern = mode.intern == engine.ClockInternOn
			m.SimulatedOps = stats.SimulatedOps
			m.Handoffs = stats.Handoffs
			m.DirectOps = stats.DirectOps
			m.SnapshotBytes = stats.SnapshotBytes
			m.JournalOps = stats.JournalOps
			m.DedupedScenarios = stats.DedupedScenarios
			m.ClockInterned = stats.ClockInterned
			m.EpochHits = stats.EpochHits
			m.EpochMisses = stats.EpochMisses
			m.Races = float64(races)
			m.AllocsPerOp = (after.Mallocs - before.Mallocs) / uint64(b.N)
			m.BytesPerOp = (after.TotalAlloc - before.TotalAlloc) / uint64(b.N)
			m.XFDRaces = 0 // the harness may invoke this closure several times
			for _, bench := range res.Benchmarks {
				run := bench.Run(suite.RunRaces)
				if run == nil {
					continue
				}
				bs := &benchStat{
					Races:            run.RaceCount,
					SimulatedOps:     run.Stats.SimulatedOps,
					Handoffs:         run.Stats.Handoffs,
					DirectOps:        run.Stats.DirectOps,
					SnapshotBytes:    run.Stats.SnapshotBytes,
					JournalOps:       run.Stats.JournalOps,
					DedupedScenarios: run.Stats.DedupedScenarios,
					ClockInterned:    run.Stats.ClockInterned,
					EpochHits:        run.Stats.EpochHits,
					EpochMisses:      run.Stats.EpochMisses,
				}
				if x := run.Analysis("xfd"); x != nil {
					bs.XFDRaces = x.RaceCount
					m.XFDRaces += float64(x.RaceCount)
				}
				m.Benchmarks[bench.Name] = bs
			}
			if m.XFDRaces > 0 {
				b.ReportMetric(m.XFDRaces, "xfd-races")
			}
			// Per-benchmark allocation profile (for cmd/benchguard's
			// per-benchmark gate): run each workload alone, sequentially,
			// off the benchmark clock.
			b.StopTimer()
			for name := range m.Benchmarks {
				var bb, ba runtime.MemStats
				runtime.ReadMemStats(&bb)
				suite.Run(suite.Config{
					Names:       []string{name},
					Variants:    []string{suite.VariantRaces},
					Checkpoint:  mode.ck,
					DirectRun:   mode.direct,
					Analyses:    mode.analyses,
					ClockIntern: mode.intern,
					Sequential:  true,
				})
				runtime.ReadMemStats(&ba)
				m.Benchmarks[name].AllocsPerOp = ba.Mallocs - bb.Mallocs
				m.Benchmarks[name].BytesPerOp = ba.TotalAlloc - bb.TotalAlloc
			}
			b.StartTimer()
		})
	}
	artifact := struct {
		Experiment string                  `json:"experiment"`
		Benchmark  string                  `json:"benchmark"`
		Modes      map[string]*measurement `json:"modes"`
		SimOpsWin  float64                 `json:"simops_ratio_off_over_on"`
	}{Experiment: "E24", Benchmark: "suite-table3", Modes: results}
	if on := results["on"].SimulatedOps; on > 0 {
		artifact.SimOpsWin = float64(results["off"].SimulatedOps) / float64(on)
	}
	data, err := json.MarshalIndent(artifact, "", "  ")
	if err != nil {
		b.Fatalf("marshal artifact: %v", err)
	}
	if err := os.WriteFile("BENCH_suite.json", append(data, '\n'), 0o644); err != nil {
		b.Fatalf("write BENCH_suite.json: %v", err)
	}
}

// BenchmarkSchedulerHandoff (E20): the per-operation scheduler cost in
// isolation — a Yield-heavy workload where every operation is a scheduling
// point and nothing else happens. With one thread the direct-run lease
// eliminates the handshake entirely; with four threads it can only cover
// the tail after three finish, so the pair brackets the lease's reach.
func BenchmarkSchedulerHandoff(b *testing.B) {
	mkProg := func(threads int) func() yashme.Program {
		return func() yashme.Program {
			var val yashme.Addr
			workers := make([]func(*yashme.Thread), threads)
			for w := range workers {
				workers[w] = func(t *yashme.Thread) {
					for i := 0; i < 500; i++ {
						t.Yield()
					}
				}
			}
			return yashme.Program{
				Name: "handoff",
				Setup: func(h *yashme.Heap) {
					val = h.AllocStruct("o", yashme.Layout{{Name: "v", Size: 8}}).F("v")
				},
				Workers:   workers,
				PostCrash: func(t *yashme.Thread) { t.Load64(val) },
			}
		}
	}
	for _, threads := range []int{1, 4} {
		for _, direct := range []struct {
			name string
			mode engine.DirectRunMode
		}{
			{"direct", engine.DirectRunOn},
			{"handshake", engine.DirectRunOff},
		} {
			threads, direct := threads, direct
			b.Run("threads-"+itoa(threads)+"/"+direct.name, func(b *testing.B) {
				b.ReportAllocs()
				mk := mkProg(threads)
				var handoffs, directOps int64
				for i := 0; i < b.N; i++ {
					res := yashme.RunOnce(mk, yashme.Options{
						Prefix: true, DirectRun: direct.mode}, 0, yashme.PersistLatest, 1)
					handoffs, directOps = res.Stats.Handoffs, res.Stats.DirectOps
				}
				b.ReportMetric(float64(handoffs), "handoffs")
				b.ReportMetric(float64(directOps), "directops")
			})
		}
	}
}

// BenchmarkSoloRecovery (E20): a full single-threaded model-checking sweep —
// the shape the lease targets end to end, since the pre-crash workload, every
// checkpointed resume, and every recovery execution all run solo.
func BenchmarkSoloRecovery(b *testing.B) {
	mk := func() yashme.Program {
		var base yashme.Addr
		return yashme.Program{
			Name: "solo",
			Setup: func(h *yashme.Heap) {
				base = h.AllocStruct("o", yashme.Layout{
					{Name: "a", Size: 8}, {Name: "b", Size: 8},
					{Name: "c", Size: 8}, {Name: "d", Size: 8},
				}).F("a")
			},
			Workers: []func(*yashme.Thread){func(t *yashme.Thread) {
				for i := 0; i < 40; i++ {
					t.Store64(base+yashme.Addr(8*(i%4)), uint64(i))
					t.CLWB(base + yashme.Addr(8*(i%4)))
					t.SFence()
				}
			}},
			PostCrash: func(t *yashme.Thread) {
				for i := 0; i < 4; i++ {
					t.Load64(base + yashme.Addr(8*i))
				}
			},
		}
	}
	for _, direct := range []struct {
		name string
		mode engine.DirectRunMode
	}{
		{"direct", engine.DirectRunOn},
		{"handshake", engine.DirectRunOff},
	} {
		direct := direct
		b.Run(direct.name, func(b *testing.B) {
			b.ReportAllocs()
			var directOps int64
			for i := 0; i < b.N; i++ {
				res := yashme.Run(mk, yashme.Options{
					Mode: yashme.ModelCheck, Prefix: true, DirectRun: direct.mode})
				directOps = res.Stats.DirectOps
			}
			b.ReportMetric(float64(directOps), "directops")
		})
	}
}

// BenchmarkTable4 (E5): random-mode sweep of PMDK, Memcached, Redis
// through the suite runner; 5 races.
func BenchmarkTable4(b *testing.B) {
	b.ReportAllocs()
	races := 0
	for i := 0; i < b.N; i++ {
		res := suite.Run(suite.Config{
			Tags:     []string{workload.TagTable4},
			Variants: []string{suite.VariantRaces},
		})
		races = res.TotalRaces(suite.RunRaces)
	}
	b.ReportMetric(float64(races), "races")
}

// BenchmarkTable5 (E6): the full prefix-vs-baseline single-execution
// comparison, per benchmark as sub-benchmarks. The prefix/baseline race
// counts are the paper's Table 5 columns; the Jaaru variant is the
// detector-off infrastructure time.
func BenchmarkTable5(b *testing.B) {
	for _, spec := range workload.Tagged(workload.TagTable5) {
		spec := spec
		b.Run(spec.Name+"/yashme-prefix", func(b *testing.B) {
			b.ReportAllocs()
			races := 0
			for i := 0; i < b.N; i++ {
				res := engine.Run(spec.Make, engine.Options{
					Mode: engine.RandomMode, Prefix: true, Seed: spec.Table5Seed, Executions: 1})
				races = res.Report.Count()
			}
			b.ReportMetric(float64(races), "races")
		})
		b.Run(spec.Name+"/yashme-baseline", func(b *testing.B) {
			b.ReportAllocs()
			races := 0
			for i := 0; i < b.N; i++ {
				res := engine.Run(spec.Make, engine.Options{
					Mode: engine.RandomMode, Prefix: false, Seed: spec.Table5Seed, Executions: 1})
				races = res.Report.Count()
			}
			b.ReportMetric(float64(races), "races")
		})
		b.Run(spec.Name+"/jaaru", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				engine.Run(spec.Make, engine.Options{
					Mode: engine.RandomMode, Prefix: true, Seed: spec.Table5Seed,
					Executions: 1, DetectorOff: true})
			}
		})
	}
}

// BenchmarkBenign (E7): the §7.5 benign checksum-race inventory; 10 races.
func BenchmarkBenign(b *testing.B) {
	b.ReportAllocs()
	races := 0
	for i := 0; i < b.N; i++ {
		res := suite.Run(suite.Config{
			Tags:     []string{workload.TagBenign},
			Variants: []string{suite.VariantBenign},
		})
		races = 0
		for _, bench := range res.Benchmarks {
			if run := bench.Run(suite.RunBenign); run != nil {
				races += len(run.Benign)
			}
		}
	}
	b.ReportMetric(float64(races), "benign-races")
}

// BenchmarkPrefixExpansion (E8): the §4.2 multithreaded scenario where no
// crash point exposes the race but the prefix analysis derives it.
func BenchmarkPrefixExpansion(b *testing.B) {
	b.ReportAllocs()
	mk := func() yashme.Program {
		var z, f yashme.Addr
		return yashme.Program{
			Name: "mt-prefix",
			Setup: func(h *yashme.Heap) {
				z = h.AllocStruct("zz", yashme.Layout{{Name: "z", Size: 8}}).F("z")
				f = h.AllocStruct("ff", yashme.Layout{{Name: "f", Size: 8}}).F("f")
			},
			Workers: []func(*yashme.Thread){
				func(t *yashme.Thread) { t.Store64(z, 7); t.CLFlush(z) },
				func(t *yashme.Thread) { t.StoreRelease64(f, 1) },
			},
			PostCrash: func(t *yashme.Thread) {
				t.LoadAcquire64(f)
				t.Load64(z)
			},
		}
	}
	races := 0
	for i := 0; i < b.N; i++ {
		res := yashme.Run(mk, yashme.Options{Mode: yashme.ModelCheck, Prefix: true})
		races = res.Report.Count()
	}
	b.ReportMetric(float64(races), "races")
}

// BenchmarkAblationPrefix quantifies the prefix expansion's value on the
// whole Table 5 suite: total races found in single executions with the
// expansion on vs off (the paper's 15-vs-3 / "5x" result).
func BenchmarkAblationPrefix(b *testing.B) {
	for _, prefix := range []bool{true, false} {
		name := "prefix-on"
		if !prefix {
			name = "prefix-off"
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			total := 0
			for i := 0; i < b.N; i++ {
				total = 0
				for _, spec := range workload.Tagged(workload.TagTable5) {
					res := engine.Run(spec.Make, engine.Options{
						Mode: engine.RandomMode, Prefix: prefix, Seed: spec.Table5Seed, Executions: 1})
					total += res.Report.Count()
				}
			}
			b.ReportMetric(float64(total), "races")
		})
	}
}

// BenchmarkAblationDetectorOverhead measures the cost of race checking
// itself: the same CCEH model-checking run with the detector on vs off
// (the Yashme-vs-Jaaru columns of Table 5, as a controlled pair).
func BenchmarkAblationDetectorOverhead(b *testing.B) {
	spec := mustSpec(b, "CCEH")
	for _, off := range []bool{false, true} {
		name := "detector-on"
		if off {
			name = "detector-off"
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				engine.Run(spec.Make, engine.Options{
					Mode: engine.ModelCheck, Prefix: true, DetectorOff: off})
			}
		})
	}
}

// BenchmarkAblationPersistPolicy measures how the persisted-image policy
// affects exploration cost and detection on FAST_FAIR.
func BenchmarkAblationPersistPolicy(b *testing.B) {
	spec := mustSpec(b, "Fast_Fair")
	policies := map[string][]engine.PersistPolicy{
		"latest":         {engine.PersistLatest},
		"minimal":        {engine.PersistMinimal},
		"latest+minimal": {engine.PersistLatest, engine.PersistMinimal},
	}
	for name, pp := range policies {
		pp := pp
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			races := 0
			for i := 0; i < b.N; i++ {
				res := engine.Run(spec.Make, engine.Options{
					Mode: engine.ModelCheck, Prefix: true, PersistPolicies: pp})
				races = res.Report.Count()
			}
			b.ReportMetric(float64(races), "races")
		})
	}
}

// BenchmarkAblationModeComparison compares model checking against random
// exploration budgets on the same program (P-Masstree).
func BenchmarkAblationModeComparison(b *testing.B) {
	spec := mustSpec(b, "P-Masstree")
	b.Run("model-check", func(b *testing.B) {
		b.ReportAllocs()
		races := 0
		for i := 0; i < b.N; i++ {
			res := engine.Run(spec.Make, engine.Options{Mode: engine.ModelCheck, Prefix: true})
			races = res.Report.Count()
		}
		b.ReportMetric(float64(races), "races")
	})
	for _, execs := range []int{1, 10, 40} {
		execs := execs
		b.Run("random-"+itoa(execs), func(b *testing.B) {
			b.ReportAllocs()
			races := 0
			for i := 0; i < b.N; i++ {
				res := engine.Run(spec.Make, engine.Options{
					Mode: engine.RandomMode, Prefix: true, Seed: 1, Executions: execs})
				races = res.Report.Count()
			}
			b.ReportMetric(float64(races), "races")
		})
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// BenchmarkRecoveryCrashes (multi-crash exploration, §6 exec stack): cost
// of exploring second crashes inside the recovery procedure.
func BenchmarkRecoveryCrashes(b *testing.B) {
	b.ReportAllocs()
	spec := mustSpec(b, "hashmap-tx")
	for i := 0; i < b.N; i++ {
		engine.Run(spec.Make, engine.Options{
			Mode: engine.ModelCheck, Prefix: true, MaxCrashPoints: 10, RecoveryCrashes: 3})
	}
}

// BenchmarkSimulatorThroughput measures raw simulation speed: simulated
// memory operations per second through the full stack (scheduler, TSO
// machine, detector) on a flush-heavy single-thread workload.
func BenchmarkSimulatorThroughput(b *testing.B) {
	mk := func() yashme.Program {
		var base yashme.Addr
		return yashme.Program{
			Name: "throughput",
			Setup: func(h *yashme.Heap) {
				base = h.AllocStruct("o", yashme.Layout{
					{Name: "a", Size: 8}, {Name: "b", Size: 8},
					{Name: "c", Size: 8}, {Name: "d", Size: 8},
				}).F("a")
			},
			Workers: []func(*yashme.Thread){func(t *yashme.Thread) {
				for i := 0; i < 250; i++ {
					t.Store64(base+yashme.Addr(8*(i%4)), uint64(i))
					t.Load64(base)
					t.CLWB(base)
					t.SFence()
				}
			}},
			PostCrash: func(t *yashme.Thread) { t.Load64(base) },
		}
	}
	b.ReportAllocs()
	var ops int64
	for i := 0; i < b.N; i++ {
		res := yashme.RunOnce(mk, yashme.Options{Prefix: true}, 0, yashme.PersistLatest, 1)
		ops = res.Stats.Stores + res.Stats.Loads + res.Stats.Flushes + res.Stats.Fences
	}
	b.ReportMetric(float64(ops)*float64(b.N)/b.Elapsed().Seconds(), "simops/s")
}

// BenchmarkAblationReadExploration measures the cost and yield of
// Jaaru-style read-choice exploration on CCEH.
func BenchmarkAblationReadExploration(b *testing.B) {
	spec := mustSpec(b, "CCEH")
	for _, explore := range []bool{false, true} {
		name := "policies-only"
		if explore {
			name = "explore-reads"
		}
		explore := explore
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			races, execs := 0, 0
			for i := 0; i < b.N; i++ {
				res := engine.Run(spec.Make, engine.Options{
					Mode: engine.ModelCheck, Prefix: true, ExploreReads: explore})
				races = res.Report.Count()
				execs = res.ExecutionsRun
			}
			b.ReportMetric(float64(races), "races")
			b.ReportMetric(float64(execs), "executions")
		})
	}
}

// BenchmarkAblationCandidateWidth quantifies checking ALL candidate stores
// per load against only the newest ones (the design choice DESIGN.md calls
// out), on Fast_Fair.
func BenchmarkAblationCandidateWidth(b *testing.B) {
	spec := mustSpec(b, "Fast_Fair")
	for _, limit := range []int{0, 1, 2} {
		name := "all"
		if limit > 0 {
			name = "newest-" + itoa(limit)
		}
		limit := limit
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			races := 0
			for i := 0; i < b.N; i++ {
				res := engine.Run(spec.Make, engine.Options{
					Mode: engine.ModelCheck, Prefix: true, CandidateLimit: limit})
				races = res.Report.Count()
			}
			b.ReportMetric(float64(races), "races")
		})
	}
}

// BenchmarkRelatedWorkComparison runs the cross-failure (XFDetector-style)
// baseline against Yashme on the same CCEH workload — the executable
// version of the paper's §1/§8 claim that prior tools cannot detect
// persistency races.
func BenchmarkRelatedWorkComparison(b *testing.B) {
	b.Run("yashme", func(b *testing.B) {
		b.ReportAllocs()
		races := 0
		for i := 0; i < b.N; i++ {
			res := yashme.Run(ccehProg(), yashme.Options{Mode: yashme.ModelCheck, Prefix: true})
			races = res.Report.Count()
		}
		b.ReportMetric(float64(races), "persistency-races")
	})
	b.Run("cross-failure", func(b *testing.B) {
		b.ReportAllocs()
		races := 0
		for i := 0; i < b.N; i++ {
			res := yashme.Run(ccehProg(), yashme.Options{
				Mode:            yashme.ModelCheck,
				PersistPolicies: []yashme.PersistPolicy{yashme.PersistLatest},
				Analyses:        []string{"xfd"},
			})
			races = res.Report.Count()
		}
		b.ReportMetric(float64(races), "cross-failure-races")
		b.ReportMetric(0, "persistency-races") // structurally zero
	})
}

func ccehProg() func() yashme.Program { return cceh.New(4, nil) }
