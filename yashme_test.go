package yashme_test

import (
	"testing"

	"yashme"
	"yashme/internal/suite"
	"yashme/internal/tables"
	"yashme/internal/workload"
)

// The public facade detects the Figure 1 race end to end.
func TestFacadeDetectsFigure1(t *testing.T) {
	res := yashme.Run(figure1, yashme.Options{Mode: yashme.ModelCheck, Prefix: true})
	races := res.Report.Races()
	if len(races) != 1 || races[0].Field != "pmobj.val" {
		t.Fatalf("races = %v", races)
	}
}

func TestFacadeRunOnce(t *testing.T) {
	res := yashme.RunOnce(figure1, yashme.Options{Prefix: true}, 0, yashme.PersistLatest, 1)
	if res.ExecutionsRun != 1 {
		t.Fatalf("RunOnce executed %d scenarios, want 1", res.ExecutionsRun)
	}
	if res.Report.Count() != 1 {
		t.Fatalf("RunOnce races = %d, want 1 (flushed store still races under prefix)", res.Report.Count())
	}
}

func TestFacadeConstants(t *testing.T) {
	if yashme.CacheLineSize != 64 {
		t.Fatalf("CacheLineSize = %d", yashme.CacheLineSize)
	}
	if yashme.ModelCheck == yashme.RandomMode {
		t.Fatal("modes not distinct")
	}
}

// The paper's headline result: 24 real persistency races across all
// benchmarks (19 in the indexes + 5 in the frameworks), plus the zero-race
// P-CLHT control ("found persistency bugs in all but one of the programs").
func TestHeadline24Races(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep")
	}
	res := suite.Run(suite.Config{
		Tags:     []string{workload.TagTable3, workload.TagTable4},
		Variants: []string{suite.VariantRaces},
	})
	t3 := tables.Table3(res)
	t4 := tables.Table4(res)
	if got := len(t3) + len(t4); got != 24 {
		t.Fatalf("total races = %d (%d + %d), paper reports 24", got, len(t3), len(t4))
	}
	for _, r := range t3 {
		if r.Benchmark == "P-CLHT" {
			t.Fatalf("P-CLHT must be the race-free control, found %v", r)
		}
	}
}
